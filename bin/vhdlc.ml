(* vhdlc — the command-line VHDL compiler and simulator.

   Mirrors the paper's invocation model: "The compiler accepts a file
   containing compilation units, a list of compiler directives, a working
   library where the successfully compiled units are placed and a reference
   library which can be referenced in addition to the work library but which
   can not be updated."

     vhdlc compile --work ./mylib a.vhd b.vhd
     vhdlc simulate --work ./mylib --top TB --ns 1000 --vcd out.vcd
     vhdlc dump --work ./mylib 'arch:TB(TEST)'
     vhdlc stats *)

open Cmdliner
module Telemetry = Vhdl_telemetry.Telemetry
module Perf = Vhdl_perf.Perf

let work_arg =
  let doc = "Working library directory (created if missing)." in
  Arg.(value & opt (some string) None & info [ "work" ] ~docv:"DIR" ~doc)

let ref_arg =
  let doc = "Reference library as NAME=DIR (read-only, repeatable)." in
  Arg.(value & opt_all string [] & info [ "ref" ] ~docv:"NAME=DIR" ~doc)

let make_compiler ?budgets ?provenance ?strategy work refs =
  let c = Vhdl_compiler.create ?work_dir:work ?budgets ?provenance ?strategy () in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
        let name = String.uppercase_ascii (String.sub spec 0 i) in
        let dir = String.sub spec (i + 1) (String.length spec - i - 1) in
        Vhdl_compiler.add_reference_library c ~name ~dir
      | None ->
        Printf.eprintf "warning: ignoring malformed --ref %s (want NAME=DIR)\n" spec)
    refs;
  c

(* error diagnostics surface through Compile_error (printed per file); this
   reports the rest — warnings and notes *)
let report_diags c =
  List.iter
    (fun d -> if not (Diag.is_error d) then Format.eprintf "%a@." Diag.pp d)
    (Vhdl_compiler.diagnostics c)

let fuel_arg =
  let doc = "Bound semantic-rule applications per compile (budget)." in
  Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Bound wall-clock seconds per compile (budget)." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let budgets_of ?elab_steps ?sim_step_fuel fuel deadline =
  {
    Supervisor.eval_fuel = fuel;
    elab_steps;
    deadline_s = deadline;
    sim_step_fuel;
  }

(* ------------------------------------------------------------------ *)
(* Telemetry surface, shared by compile and simulate *)

let trace_arg =
  let doc =
    "Write Chrome trace-event JSON of the pipeline span tree to $(docv) \
     (loads in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the telemetry counter report after the run.")

let metrics_out_arg =
  let doc = "Write the telemetry metrics as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let flame_arg =
  let doc =
    "Write the span tree as collapsed stacks ('folded' format) to $(docv) \
     — load with speedscope or flamegraph.pl.  Line values are span self \
     time in microseconds."
  in
  Arg.(value & opt (some string) None & info [ "flame" ] ~docv:"FILE" ~doc)

let flame_alloc_arg =
  let doc =
    "Write the span tree as collapsed stacks to $(docv) with line values \
     in self-allocated bytes instead of self time — an allocation \
     flamegraph.  Same folded format as --flame; totals conserve the \
     measured allocation exactly."
  in
  Arg.(value & opt (some string) None & info [ "flame-alloc" ] ~docv:"FILE" ~doc)

(* Run [f] with tracing armed if a trace or flame file was requested, then
   write the requested exports.  Exports are written even when [f] exits
   non-zero — the trace of a failing compile is the one you want to look
   at. *)
let with_telemetry ?(flame = None) ?(flame_alloc = None) ~trace ~metrics
    ~metrics_out f =
  Telemetry.reset ();
  let tracing = trace <> None || flame <> None || flame_alloc <> None in
  if tracing then Telemetry.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
        Vhdl_util.Unix_compat.write_file path (Telemetry.to_chrome_trace ())
      | None -> ());
      (match flame with
      | Some path ->
        Vhdl_util.Unix_compat.write_file path (Perf.Flame.folded (Telemetry.spans ()))
      | None -> ());
      (match flame_alloc with
      | Some path ->
        Vhdl_util.Unix_compat.write_file path
          (Perf.Flame.folded_alloc (Telemetry.spans ()))
      | None -> ());
      if tracing then begin
        Telemetry.set_tracing false;
        Telemetry.clear_spans ()
      end;
      if metrics then Format.printf "%a@." (fun fmt () -> Telemetry.pp_metrics fmt ()) ();
      match metrics_out with
      | Some path -> Vhdl_util.Unix_compat.write_file path (Telemetry.metrics_json ())
      | None -> ())
    f

(* ------------------------------------------------------------------ *)

let compile_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"VHDL source files.")
  in
  let phases =
    Arg.(value & flag & info [ "phases" ] ~doc:"Print the per-phase time breakdown.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ] ~doc:"Print the per-unit partial-result report.")
  in
  let profile_rules =
    Arg.(
      value & flag
      & info [ "profile-rules" ]
          ~doc:
            "Record attribute provenance and print the hot-rule profile \
             (per-production / per-attribute evaluation counts and self-cost).")
  in
  let reference =
    Arg.(
      value & flag
      & info [ "reference" ]
          ~doc:
            "Compile on the reference path: demand-driven evaluation with \
             copy elision off and the cascade's parse-tree memo bypassed — \
             the oracle the plan-based default is differentially tested \
             against. Slower; results must be identical.")
  in
  let run work refs phases report profile_rules reference trace flame
      flame_alloc metrics metrics_out fuel deadline files =
    with_telemetry ~flame ~flame_alloc ~trace ~metrics ~metrics_out @@ fun () ->
    (* everything allocated before this point — runtime and module init,
       parse tables, cmdliner — predates any phase frame; it is published
       below as the "startup" pseudo-phase so the phase.alloc_b.* table
       sums to gc.allocated_words instead of silently undercounting *)
    let startup_w = Telemetry.allocated_words_now () in
    let recorder = if profile_rules then Some (Provenance.create ()) else None in
    let strategy = if reference then Some Vhdl_compiler.Demand else None in
    let c =
      make_compiler ~budgets:(budgets_of fuel deadline) ?provenance:recorder
        ?strategy work refs
    in
    let ok = ref true in
    List.iter
      (fun file ->
        match Vhdl_compiler.compile_file c file with
        | units ->
          List.iter
            (fun u -> Printf.printf "%s: compiled %s\n" file u.Unit_info.u_key)
            units
        | exception Vhdl_compiler.Compile_error msgs ->
          ok := false;
          List.iter (fun d -> Format.eprintf "%s: %a@." file Diag.pp d) msgs)
      files;
    report_diags c;
    if report then Format.printf "%a" Supervisor.pp_report (Vhdl_compiler.last_report c);
    (match recorder with
    | Some r ->
      Format.printf "%a@." (fun fmt rows -> Stats.pp_profile fmt rows) (Provenance.profile r)
    | None -> ());
    if phases then
      Format.printf "%a@." Vhdl_util.Phase_timer.pp (Vhdl_compiler.timer c);
    (* close the attribution ledger: "startup" is pre-driver allocation,
       "driver" the in-region residual outside every phase frame, so
       the phase.alloc_b counters sum to gc.allocated_words *)
    let attributed_w = Vhdl_util.Phase_timer.total_alloc (Vhdl_compiler.timer c) in
    let lifetime_w = Telemetry.allocated_words_now () in
    let publish name w =
      if w > 0.0 then
        Telemetry.add
          (Telemetry.counter ("phase.alloc_b." ^ name))
          (int_of_float (w *. float_of_int Telemetry.bytes_per_word))
    in
    publish "startup" startup_w;
    publish "driver" (Float.max 0.0 (lifetime_w -. startup_w -. attributed_w));
    if !ok then 0 else 1
  in
  let doc = "Compile VHDL source files into the working library." in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const run $ work_arg $ ref_arg $ phases $ report $ profile_rules $ reference
      $ trace_arg $ flame_arg $ flame_alloc_arg $ metrics_arg $ metrics_out_arg
      $ fuel_arg $ deadline_arg $ files)

let simulate_cmd =
  let top =
    Arg.(
      required
      & opt (some string) None
      & info [ "top" ] ~docv:"ENTITY" ~doc:"Top-level entity to elaborate.")
  in
  let arch =
    Arg.(
      value
      & opt (some string) None
      & info [ "arch" ] ~docv:"NAME" ~doc:"Architecture (default: latest compiled).")
  in
  let configuration =
    Arg.(
      value
      & opt (some string) None
      & info [ "configuration" ] ~docv:"NAME" ~doc:"Elaborate through a configuration unit.")
  in
  let ns =
    Arg.(value & opt int 1000 & info [ "ns" ] ~docv:"N" ~doc:"Simulation horizon in ns.")
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Write a VCD waveform dump.")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Sources to compile first.")
  in
  let hierarchy =
    Arg.(value & flag & info [ "hierarchy" ] ~doc:"Print the elaborated hierarchy.")
  in
  let elab_steps =
    let doc = "Bound signals + processes + instances elaborated (budget)." in
    Arg.(value & opt (some int) None & info [ "elab-steps" ] ~docv:"N" ~doc)
  in
  let sim_fuel =
    let doc = "Bound process resumptions per simulated instant (budget)." in
    Arg.(value & opt (some int) None & info [ "sim-fuel" ] ~docv:"N" ~doc)
  in
  let run work refs top arch configuration ns vcd hierarchy trace metrics metrics_out
      elab_steps sim_fuel files =
    with_telemetry ~trace ~metrics ~metrics_out @@ fun () ->
    let c =
      make_compiler ~budgets:(budgets_of ?elab_steps ?sim_step_fuel:sim_fuel None None)
        work refs
    in
    try
      List.iter (fun f -> ignore (Vhdl_compiler.compile_file c f)) files;
      let sim = Vhdl_compiler.elaborate ?arch ?configuration c ~top () in
      if hierarchy then
        Format.printf "%a@." Name_server.pp (Vhdl_compiler.name_server sim);
      let outcome = Vhdl_compiler.run c sim ~max_ns:ns in
      List.iter
        (fun (t, sev, msg) ->
          Printf.printf "%-10s %s: %s\n" (Rt.format_time t) (Kernel.severity_name sev) msg)
        (Vhdl_compiler.messages sim);
      let st = Kernel.stats (Vhdl_compiler.kernel sim) in
      Printf.printf
        "simulation %s at %s: %d time steps, %d delta cycles, %d events, %d process runs\n"
        (match outcome with
        | Kernel.Quiescent -> "quiescent"
        | Kernel.Time_limit -> "reached the horizon"
        | Kernel.Stopped -> "stopped on failure"
        | Kernel.Fuel_exhausted -> "ran out of process-step fuel")
        (Rt.format_time (Kernel.now (Vhdl_compiler.kernel sim)))
        st.Kernel.time_steps st.Kernel.delta_cycles st.Kernel.events st.Kernel.process_runs;
      (match vcd with
      | Some path ->
        Vhdl_util.Unix_compat.write_file path
          (Trace.to_vcd (Vhdl_compiler.trace sim) ~timescale_fs:1);
        Printf.printf "VCD written to %s\n" path
      | None -> ());
      if st.Kernel.severities.Kernel.failures > 0 || st.Kernel.severities.Kernel.errors > 0
      then 1
      else 0
    with
    | Vhdl_compiler.Compile_error msgs ->
      List.iter (fun d -> Format.eprintf "%a@." Diag.pp d) msgs;
      1
    | Elaborate.Elaboration_error msg ->
      Printf.eprintf "elaboration: %s\n" msg;
      1
    | Rt.Simulation_error { time; msg } ->
      Printf.eprintf "simulation error at %s: %s\n" (Rt.format_time time) msg;
      1
  in
  let doc = "Compile (optionally), elaborate, and simulate a design." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ work_arg $ ref_arg $ top $ arch $ configuration $ ns $ vcd $ hierarchy
      $ trace_arg $ metrics_arg $ metrics_out_arg $ elab_steps $ sim_fuel $ files)

let dump_cmd =
  let key =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KEY" ~doc:"Unit key, e.g. 'entity:ADDER' or 'arch:ADDER(RTL)'.")
  in
  let run work refs key =
    let c = make_compiler work refs in
    match Library.dump (Vhdl_compiler.work_library c) ~library:"WORK" ~key with
    | Some text ->
      print_endline text;
      0
    | None ->
      Printf.eprintf "no unit %s in the working library\n" key;
      1
  in
  let doc = "Print the human-readable VIF of a compiled unit." in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const run $ work_arg $ ref_arg $ key)

(* ------------------------------------------------------------------ *)
(* explain: the provenance why-chain *)

(* "entity COUNTER" / "counter" / "unit@line 3" all name a report line *)
let unit_matches spec (r : Supervisor.unit_report) =
  let lc = String.lowercase_ascii in
  let name = lc r.Supervisor.ur_name and spec = lc spec in
  name = spec
  ||
  match String.rindex_opt name ' ' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1) = spec
  | None -> false

let explain_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"VHDL source file to compile and explain.")
  in
  let unit_ =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"UNIT"
          ~doc:"Design unit, e.g. 'COUNTER' or 'entity COUNTER' (case-insensitive).")
  in
  let spec =
    Arg.(
      required
      & pos 2 (some string) None
      & info [] ~docv:"NODE.ATTR"
          ~doc:
            "Attribute instance to explain: ATTR (on the unit's own node), \
             unit.ATTR, or n<ID>.ATTR with a node id from a previous slice.")
  in
  let depth =
    Arg.(
      value & opt int 6
      & info [ "depth" ] ~docv:"N" ~doc:"Depth bound of the printed why-chain.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Also write the slice as a GraphViz digraph (dot -Tsvg).")
  in
  let run work refs file unit_ spec depth dot =
    Telemetry.reset ();
    let recorder = Provenance.create () in
    let c = make_compiler ~provenance:recorder work refs in
    (try ignore (Vhdl_compiler.compile_file ~fail_on_error:false c file)
     with Vhdl_compiler.Compile_error msgs ->
       List.iter (fun d -> Format.eprintf "%s: %a@." file Diag.pp d) msgs);
    let report = Vhdl_compiler.last_report c in
    match List.find_opt (unit_matches unit_) report with
    | None ->
      Printf.eprintf "no design unit matching %s; units in %s:\n" unit_ file;
      List.iter
        (fun r -> Printf.eprintf "  %s\n" r.Supervisor.ur_name)
        report;
      1
    | Some r -> (
      let node, attr =
        match String.index_opt spec '.' with
        | None -> (r.Supervisor.ur_node, spec)
        | Some i -> (
          let node_spec = String.sub spec 0 i in
          let attr = String.sub spec (i + 1) (String.length spec - i - 1) in
          match node_spec with
          | "unit" -> (r.Supervisor.ur_node, attr)
          | _ when String.length node_spec > 1 && node_spec.[0] = 'n' -> (
            match int_of_string_opt (String.sub node_spec 1 (String.length node_spec - 1)) with
            | Some id -> (id, attr)
            | None ->
              Printf.eprintf "bad node spec %s (want 'unit' or n<ID>)\n" node_spec;
              exit 1)
          | _ ->
            Printf.eprintf "bad node spec %s (want 'unit' or n<ID>)\n" node_spec;
            exit 1)
      in
      match Provenance.find recorder ~node ~attr with
      | None ->
        Printf.eprintf "no recorded instance of %s at node n%d; attributes there:\n"
          attr node;
        List.iter
          (fun (rc : Provenance.record) -> Printf.eprintf "  %s\n" rc.Provenance.r_attr)
          (Provenance.instances_at recorder ~node);
        1
      | Some rc ->
        Format.printf "%a@."
          (fun fmt id -> Provenance.pp_why_chain ~depth recorder fmt id)
          rc.Provenance.r_id;
        (match dot with
        | Some path ->
          Vhdl_util.Unix_compat.write_file path
            (Provenance.to_dot ~depth recorder ~root:rc.Provenance.r_id);
          Printf.printf "DOT slice written to %s\n" path
        | None -> ());
        0)
  in
  let doc =
    "Explain why an attribute instance has its value: print the transitive \
     provenance slice (the why-chain) of its computation, crossing the \
     expression-AG cascade boundary."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ work_arg $ ref_arg $ file $ unit_ $ spec $ depth $ dot)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the table as a JSON array.")
  in
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "VHDL sources to compile with provenance recording; adds the \
             hot-rule profile of the compilation to the output.")
  in
  let run json files =
    let s1 = Stats.of_grammar ~name:"VHDL AG" (Main_grammar.grammar ()) in
    let s2 = Stats.of_grammar ~name:"expr AG" (Expr_eval.grammar ()) in
    let profile =
      match files with
      | [] -> None
      | files ->
        Telemetry.reset ();
        let recorder = Provenance.create () in
        let c = make_compiler ~provenance:recorder None [] in
        List.iter
          (fun file ->
            try ignore (Vhdl_compiler.compile_file ~fail_on_error:false c file)
            with Vhdl_compiler.Compile_error msgs ->
              List.iter (fun d -> Format.eprintf "%s: %a@." file Diag.pp d) msgs)
          files;
        Some (Provenance.profile recorder)
    in
    if json then begin
      match profile with
      | None -> print_endline (Stats.table_json [ s1; s2 ])
      | Some rows ->
        Printf.printf "{\"grammars\": %s, \"profile\": %s}\n"
          (Stats.table_json [ s1; s2 ])
          (Stats.profile_json rows)
    end
    else begin
      Format.printf "%a@." Stats.pp_table [ s1; s2 ];
      match profile with
      | None -> ()
      | Some rows -> Format.printf "%a@." (fun fmt r -> Stats.pp_profile fmt r) rows
    end;
    0
  in
  let doc = "Print the attribute-grammar statistics table (and, given sources, the hot-rule profile)." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ json $ files)

(* ------------------------------------------------------------------ *)
(* bench: the performance observatory front end (lib/perf).

   Measures a fixed suite of workload-generated experiments as benchmark
   sessions (warmup + repetitions on the monotonic wall clock, median/MAD
   and bootstrap CI, GC and telemetry-counter deltas, phase self-times),
   serializes them to the canonical BENCH_report.json schema, and diffs
   against a persisted baseline with a noise-aware regression gate. *)

let pp_secs s =
  if s >= 1.0 then Printf.sprintf "%.3fs" s
  else if s >= 1e-3 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.1fus" (s *. 1e6)

let print_sample (s : Perf.Sample.t) =
  let lo, hi = Perf.Sample.ci s in
  Printf.printf "%-34s %2d reps  median %8s  mad %8s  ci [%s, %s]\n"
    s.Perf.Sample.s_name (Perf.Sample.reps s)
    (pp_secs (Perf.Sample.median s))
    (pp_secs (Perf.Sample.mad s))
    (pp_secs lo) (pp_secs hi);
  if s.Perf.Sample.s_metrics <> [] then begin
    Printf.printf "   ";
    List.iter
      (fun (k, v) -> Printf.printf " %s %.0f" k v)
      s.Perf.Sample.s_metrics;
    print_newline ()
  end

let bench_suite ~scaling ~warmup ~repeats ~quota =
  (* the phase self-times of an experiment come from the phase timer of
     the compiler its last repetition created *)
  let last_timer : Vhdl_util.Phase_timer.t option ref = ref None in
  let phases () =
    match !last_timer with
    | Some t -> Vhdl_util.Phase_timer.report t
    | None -> []
  in
  let compile_metrics lines (s : Perf.Sample.t) =
    let m = Perf.Sample.median s in
    let rated counter label =
      match Perf.Sample.rate s counter with
      | Some r -> [ (label, r) ]
      | None -> []
    in
    Perf.Sample.with_metrics s
      (List.concat
         [
           [ ("lines", float_of_int lines) ];
           (if m > 0.0 then
              [ ("lines_per_min", float_of_int lines /. m *. 60.0) ]
            else []);
           rated "lexer.tokens" "tokens_per_s";
           rated "ag.attrs_evaluated" "attrs_per_s";
         ])
  in
  let compile_experiment name srcs =
    let lines = List.fold_left (fun a s -> a + Lexer.source_lines s) 0 srcs in
    Perf.run ~warmup ~repeats ?quota_s:quota ~phases ~name (fun () ->
        let c = Vhdl_compiler.create () in
        last_timer := Some (Vhdl_compiler.timer c);
        List.iter (fun s -> ignore (Vhdl_compiler.compile c s)) srcs)
    |> compile_metrics lines
  in
  let sim_experiment name ~stages ~max_ns =
    let src = Workload.divider_chain ~stages in
    let s =
      Perf.run ~warmup ~repeats ?quota_s:quota ~phases ~name (fun () ->
          let c = Vhdl_compiler.create () in
          last_timer := Some (Vhdl_compiler.timer c);
          ignore (Vhdl_compiler.compile c src);
          let sim = Vhdl_compiler.elaborate ~trace:false c ~top:"chain" () in
          ignore (Vhdl_compiler.run c sim ~max_ns))
    in
    let rated counter label =
      match Perf.Sample.rate s counter with
      | Some r -> [ (label, r) ]
      | None -> []
    in
    Perf.Sample.with_metrics s
      (List.concat
         [
           [ ("sim_ns", float_of_int max_ns) ];
           rated "sim.delta_cycles" "delta_cycles_per_s";
           rated "sim.events" "events_per_s";
         ])
  in
  if not scaling then
    [
      compile_experiment "compile/behavioral"
        [ Workload.behavioral ~name:"B1" ~states:12 ~exprs:24 ];
      compile_experiment "compile/structural"
        [ Workload.structural ~name:"N1" ~instances:30 ];
      compile_experiment "compile/expressions" [ Workload.expression_heavy ~n:60 ];
      compile_experiment "compile/packages" [ Workload.package ~name:"P1" ~n:20 ];
      sim_experiment "simulate/divider" ~stages:4 ~max_ns:4000;
    ]
  else
    (* the scaling curve: the same generators swept across design size;
       tokens/s, attrs/s and delta-cycles/s per size expose where
       throughput bends as designs grow *)
    List.concat
      [
        List.map
          (fun states ->
            compile_experiment
              (Printf.sprintf "scaling/behavioral/states=%d" states)
              [ Workload.behavioral ~name:"SB" ~states ~exprs:(2 * states) ])
          [ 5; 10; 20; 40 ];
        List.map
          (fun instances ->
            compile_experiment
              (Printf.sprintf "scaling/structural/instances=%d" instances)
              [ Workload.structural ~name:"SN" ~instances ])
          [ 10; 20; 40; 80 ];
        List.map
          (fun stages ->
            sim_experiment
              (Printf.sprintf "scaling/sim/stages=%d" stages)
              ~stages ~max_ns:4000)
          [ 2; 4; 8 ];
      ]

let bench_cmd =
  let save_baseline =
    let doc = "Also save this run's report as a baseline to $(docv)." in
    Arg.(value & opt (some string) None & info [ "save-baseline" ] ~docv:"FILE" ~doc)
  in
  let against =
    let doc =
      "Diff this run against the baseline report $(docv); exit non-zero if \
       any experiment regresses beyond the threshold and the noise."
    in
    Arg.(value & opt (some string) None & info [ "against" ] ~docv:"FILE" ~doc)
  in
  let out =
    let doc = "Write this run's report to $(docv) (BENCH_report.json schema)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let threshold =
    let doc = "Regression threshold as a fraction (0.25 = flag changes beyond +25%)." in
    Arg.(value & opt float 0.25 & info [ "threshold" ] ~docv:"FRACTION" ~doc)
  in
  let alloc_threshold =
    let doc =
      "Regression threshold for the allocation ([alloc]) rows: allocation \
       is near-deterministic rep to rep, so the default (0.5 = +50%) sits \
       far above its noise while catching real allocation regressions."
    in
    Arg.(value & opt float 0.5 & info [ "alloc-threshold" ] ~docv:"FRACTION" ~doc)
  in
  let repeats =
    Arg.(value & opt int 5 & info [ "repeats" ] ~docv:"N" ~doc:"Measured repetitions per experiment.")
  in
  let warmup =
    Arg.(value & opt int 1 & info [ "warmup" ] ~docv:"N" ~doc:"Unrecorded warmup runs per experiment.")
  in
  let quota =
    let doc = "Stop an experiment's repetitions once $(docv) seconds of measurement are spent." in
    Arg.(value & opt (some float) None & info [ "quota" ] ~docv:"SECONDS" ~doc)
  in
  let scaling =
    Arg.(
      value & flag
      & info [ "scaling" ]
          ~doc:
            "Run the scaling-curve suite instead: sweep generated designs \
             across sizes and report tokens/s, attrs/s, delta-cycles/s \
             versus design size.")
  in
  let run save against out threshold alloc_threshold repeats warmup quota scaling =
    Telemetry.reset ();
    let samples = bench_suite ~scaling ~warmup ~repeats ~quota in
    List.iter print_sample samples;
    let report = Perf.Report.make samples in
    (match out with
    | Some path ->
      Perf.Report.save path report;
      Printf.printf "report written to %s\n" path
    | None -> ());
    (match save with
    | Some path ->
      Perf.Report.save path report;
      Printf.printf "baseline saved to %s\n" path
    | None -> ());
    match against with
    | None -> 0
    | Some path -> (
      match Perf.Report.load path with
      | Error msg ->
        Printf.eprintf "cannot load baseline: %s\n" msg;
        2
      | Ok baseline ->
        let rows =
          Perf.Diff.compare_reports ~threshold ~alloc_threshold ~baseline
            ~current:report ()
        in
        Format.printf "%a@." Perf.Diff.pp rows;
        let regs = Perf.Diff.regressions rows in
        if regs = [] then begin
          Printf.printf "no regressions against %s (threshold +%.0f%%)\n" path
            (100.0 *. threshold);
          0
        end
        else begin
          Printf.printf "%d regression(s) against %s (threshold +%.0f%%)\n"
            (List.length regs) path (100.0 *. threshold);
          1
        end)
  in
  let doc =
    "Run the benchmark suite as statistical sessions (warmup, repetitions, \
     median/MAD, bootstrap CI, GC and counter deltas), write the canonical \
     report, and optionally gate against a persisted baseline."
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run $ save_baseline $ against $ out $ threshold $ alloc_threshold
      $ repeats $ warmup $ quota $ scaling)

(* ------------------------------------------------------------------ *)
(* serve / request: the resilient long-lived compile service.

   `vhdlc serve` runs the daemon in the foreground until SIGTERM/SIGINT
   (graceful drain) or a shutdown request.  `vhdlc request` is the client:
   it maps each response status to a stable exit code so scripts, the cram
   tests, and the chaos smoke can branch on outcomes. *)

let socket_arg =
  let doc = "Unix-domain socket path of the compile service." in
  Arg.(value & opt string "vhdl-serve.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let queue =
    Arg.(
      value & opt int 16
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission-queue capacity; requests beyond it are shed with [overload].")
  in
  let max_frame =
    Arg.(
      value
      & opt int Serve_protocol.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Largest accepted request frame payload.")
  in
  let default_deadline =
    Arg.(
      value & opt float 10.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Default per-request wall-clock deadline (requests may lower it).")
  in
  let max_deadline =
    Arg.(
      value & opt float 60.0
      & info [ "max-deadline" ] ~docv:"SECONDS"
          ~doc:"Upper bound on any request's deadline.")
  in
  let grace =
    Arg.(
      value & opt float 2.0
      & info [ "grace" ] ~docv:"SECONDS"
          ~doc:
            "Watchdog slack past the deadline before a wedged request is \
             broken and the worker recycled.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 2.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Partial request frames idle this long are rejected as torn.")
  in
  let allow_faults =
    Arg.(
      value & flag
      & info [ "allow-faults" ]
          ~doc:
            "Honor the poison=/spin_ms= fault-injection request fields \
             (chaos campaigns only).")
  in
  let recycle_every =
    Arg.(
      value & opt int 256
      & info [ "recycle-every" ] ~docv:"N"
          ~doc:"Replace the warm compiler every N requests (0 = never).")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the lifecycle log.") in
  let events =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Append the structured event log (one JSON object per line: \
             accept/admit/shed/start/finish/... with request ids) here.")
  in
  let flight_dir =
    Arg.(
      value & opt string "."
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for flight-recorder dumps (firewall trips, watchdog \
             fires, SIGUSR1).")
  in
  let flight_size =
    Arg.(
      value & opt int 256
      & info [ "flight-size" ] ~docv:"N"
          ~doc:"Events retained in the in-memory flight-recorder ring.")
  in
  let metrics_flush_every =
    Arg.(
      value & opt int 200
      & info [ "metrics-flush-every" ] ~docv:"TICKS"
          ~doc:
            "Flush telemetry JSON to --metrics-out every N event-loop ticks \
             (atomic rename; 0 = only at drain).")
  in
  let max_dumps =
    Arg.(
      value & opt int 32
      & info [ "max-dumps" ] ~docv:"N"
          ~doc:
            "Retention cap on flight/exemplar dump files in --flight-dir: \
             the oldest are deleted so a flapping firewall cannot fill the \
             disk (0 = unlimited).")
  in
  let span_cap =
    Arg.(
      value & opt int 512
      & info [ "span-cap" ] ~docv:"N"
          ~doc:
            "Per-request telemetry span buffer: each request's spans are \
             recorded (bounded by N) so slow requests can dump an exemplar \
             trace; 0 disables buffering and exemplars.")
  in
  let exemplar_k =
    Arg.(
      value & opt float 4.0
      & info [ "exemplar-k" ] ~docv:"K"
          ~doc:
            "Adaptive slow-request threshold when no --slo-p99-ms objective \
             is set: a request slower than K x the window p50 earns an \
             exemplar dump.")
  in
  let slo_window =
    Arg.(
      value & opt float 60.0
      & info [ "slo-window" ] ~docv:"SECONDS"
          ~doc:"Width of the rolling SLO window (`vhdlc request --slo`).")
  in
  let slo_p99_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-p99-ms" ] ~docv:"MS"
          ~doc:"Objective: windowed p99 service latency; breaches are logged.")
  in
  let slo_shed_pct =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo-shed-pct" ] ~docv:"PCT"
          ~doc:"Objective: windowed shed rate in percent; breaches are logged.")
  in
  let heap_growth_pct =
    Arg.(
      value & opt float 0.0
      & info [ "heap-growth-pct" ] ~docv:"PCT"
          ~doc:
            "Heap-health watchdog: when the linear fit over the sampled \
             live-words window grows past PCT percent, emit one heap_breach \
             event and dump the flight recorder (0 = disabled).")
  in
  let run socket queue max_frame default_deadline max_deadline grace idle_timeout
      allow_faults recycle_every quiet refs fuel metrics_out events flight_dir
      flight_size metrics_flush_every max_dumps span_cap exemplar_k slo_window
      slo_p99_ms slo_shed_pct heap_growth_pct =
    Telemetry.reset ();
    let log = if quiet then ignore else fun m -> Printf.eprintf "vhdlc serve: %s\n%!" m in
    let worker =
      {
        Serve_worker.w_default_deadline_s = default_deadline;
        w_max_deadline_s = Float.max default_deadline max_deadline;
        w_watchdog_grace_s = grace;
        w_allow_faults = allow_faults;
        w_recycle_every = recycle_every;
        w_budgets = budgets_of fuel None;
        w_ref_libs =
          List.filter_map
            (fun spec ->
              match String.index_opt spec '=' with
              | Some i ->
                Some
                  ( String.uppercase_ascii (String.sub spec 0 i),
                    String.sub spec (i + 1) (String.length spec - i - 1) )
              | None -> None)
            refs;
      }
    in
    let daemon =
      Serve_daemon.create
        {
          Serve_daemon.d_socket = socket;
          d_queue_capacity = queue;
          d_max_frame = max_frame;
          d_idle_timeout_s = idle_timeout;
          d_worker = worker;
          d_metrics_out = metrics_out;
          d_metrics_flush_ticks = metrics_flush_every;
          d_obs =
            {
              Obs_log.o_events_out = events;
              o_ring_events = flight_size;
              o_ring_requests = Obs_log.default_config.Obs_log.o_ring_requests;
              o_flight_dir = flight_dir;
              o_max_dumps = max_dumps;
              o_exemplar_min_gap_s =
                Obs_log.default_config.Obs_log.o_exemplar_min_gap_s;
            };
          d_slo_window_s = slo_window;
          d_slo = { Obs_slo.o_p99_ms = slo_p99_ms; o_shed_pct = slo_shed_pct };
          d_span_cap = span_cap;
          d_exemplar_k = exemplar_k;
          d_exemplar_min_obs = Serve_daemon.default_config.Serve_daemon.d_exemplar_min_obs;
          d_heap_growth_pct = heap_growth_pct;
          d_log = log;
        }
    in
    Serve_daemon.serve daemon;
    0
  in
  let doc =
    "Run the compile service: a long-lived daemon answering compile and \
     simulate requests from a warm compiler, with admission control, \
     per-request deadlines, a wedge watchdog, and graceful drain."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ queue $ max_frame $ default_deadline $ max_deadline
      $ grace $ idle_timeout $ allow_faults $ recycle_every $ quiet
      $ ref_arg $ fuel_arg $ metrics_out_arg $ events $ flight_dir $ flight_size
      $ metrics_flush_every $ max_dumps $ span_cap $ exemplar_k $ slo_window
      $ slo_p99_ms $ slo_shed_pct $ heap_growth_pct)

let request_cmd =
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Send a liveness probe.") in
  let stats_serve =
    Arg.(value & flag & info [ "stats" ] ~doc:"Fetch the daemon's serve.* counters.")
  in
  let slo =
    Arg.(
      value & flag
      & info [ "slo" ]
          ~doc:
            "Fetch the daemon's rolling SLO window: p50/p95/p99 service \
             latency, shed and internal rates, objective status.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"With --stats or --slo: answer with a JSON body.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to drain and exit.")
  in
  let top =
    Arg.(
      value
      & opt (some string) None
      & info [ "top" ] ~docv:"ENTITY"
          ~doc:"Simulate: elaborate and run this entity (implies a simulate request).")
  in
  let ns =
    Arg.(value & opt int 1000 & info [ "ns" ] ~docv:"N" ~doc:"Simulate: horizon in ns.")
  in
  let poison =
    Arg.(
      value
      & opt (some string) None
      & info [ "poison" ] ~docv:"KEY"
          ~doc:
            "Fault injection: poison this unit key (e.g. entity:BAD); the \
             daemon must run with --allow-faults.")
  in
  let spin_ms =
    Arg.(
      value & opt int 0
      & info [ "spin-ms" ] ~docv:"MS"
          ~doc:"Fault injection: busy-wait this long before the work (wedge probe).")
  in
  let timeout =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Give up on the response after this long.")
  in
  let wait_ready =
    Arg.(
      value & flag
      & info [ "wait-ready" ]
          ~doc:"Poll until the daemon answers pings before sending (startup races).")
  in
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"VHDL sources forming the request body.")
  in
  let run socket ping stats_serve slo json shutdown top ns poison spin_ms fuel
      deadline timeout wait_ xs =
    let source =
      String.concat "\n" (List.map Vhdl_util.Unix_compat.read_file xs)
    in
    let verb =
      if ping then Serve_protocol.Ping
      else if stats_serve then Serve_protocol.Stats
      else if slo then Serve_protocol.Slo
      else if shutdown then Serve_protocol.Shutdown
      else if top <> None then Serve_protocol.Simulate
      else Serve_protocol.Compile
    in
    let rq =
      Serve_protocol.request verb ?deadline_s:deadline ?fuel ?top ~max_ns:ns ?poison
        ~spin_ms ~json ~source
    in
    let ready =
      if wait_ then Serve_client.wait_ready ~socket () else Ok ()
    in
    match ready with
    | Error msg ->
      Printf.eprintf "vhdlc request: %s\n" msg;
      7
    | Ok () -> (
      match Serve_client.roundtrip ~timeout_s:timeout ~socket rq with
      | Error msg ->
        Printf.eprintf "vhdlc request: %s\n" msg;
        7
      | Ok resp ->
        print_string resp.Serve_protocol.rs_body;
        (match resp.Serve_protocol.rs_status with
        | Serve_protocol.Ok_ -> ()
        | st ->
          Printf.eprintf "vhdlc request: [%s]%s%s%s\n" (Serve_protocol.status_name st)
            (match resp.Serve_protocol.rs_request_id with
            | Some rid -> Printf.sprintf " rid=%d" rid
            | None -> "")
            (match resp.Serve_protocol.rs_retry_after_s with
            | Some s -> Printf.sprintf " retry after %.3fs" s
            | None -> "")
            (if resp.Serve_protocol.rs_wedged then " (request wedged; worker recycled)"
             else ""));
        Serve_protocol.status_exit_code resp.Serve_protocol.rs_status)
  in
  let doc =
    "Send one request to a running compile service and print the response; \
     the exit code encodes the response status (0 ok, 1 error, 2 internal, \
     3 timeout, 4 overload, 5 draining, 6 bad-request, 7 transport)."
  in
  Cmd.v (Cmd.info "request" ~doc)
    Term.(
      const run $ socket_arg $ ping $ stats_serve $ slo $ json $ shutdown $ top
      $ ns $ poison $ spin_ms $ fuel_arg $ deadline_arg $ timeout $ wait_ready
      $ files)

(* `vhdlc top`: a live dashboard over the daemon's machine-readable stats
   (the same JSON document `vhdlc request --stats --json` prints). *)

let top_cmd =
  let module J = Perf.Json_in in
  let once =
    Arg.(value & flag & info [ "once" ] ~doc:"Render one frame and exit.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw stats JSON instead of the dashboard (scripting).")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Refresh period.")
  in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N"
          ~doc:"Stop after N frames (0 = run until interrupted).")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Render from the daemon's periodically-flushed telemetry JSON \
             (--metrics-out) instead of the socket.  A missing or \
             partially-written file is retried on the next refresh, never \
             a crash.")
  in
  let jpath doc path =
    List.fold_left (fun acc k -> Option.bind acc (J.mem k)) (Some doc) path
  in
  let jint doc path =
    Option.value ~default:0 (Option.bind (jpath doc path) J.to_int)
  in
  let jnum doc path =
    Option.value ~default:0.0 (Option.bind (jpath doc path) J.to_num)
  in
  let jstr doc path =
    Option.value ~default:"-" (Option.bind (jpath doc path) J.to_str)
  in
  let ms us = Printf.sprintf "%.1fms" (us /. 1000.0) in
  let render socket doc =
    let b = Buffer.create 512 in
    let led k = jint doc [ "ledger"; "serve." ^ k ] in
    Printf.bprintf b "compile service @ %s — uptime %.1fs%s\n" socket
      (jnum doc [ "uptime_s" ])
      (if jpath doc [ "draining" ] = Some (J.Bool true) then " — DRAINING" else "");
    Printf.bprintf b "queue    %d/%d deep   retry-after %.3fs\n"
      (jint doc [ "queue"; "depth" ])
      (jint doc [ "queue"; "capacity" ])
      (jnum doc [ "queue"; "retry_after_s" ]);
    Printf.bprintf b "worker   generation %d   served %d\n"
      (jint doc [ "worker"; "generation" ])
      (jint doc [ "worker"; "served" ]);
    Printf.bprintf b "latency  p50 %s   p90 %s   p99 %s   (process lifetime)\n"
      (ms (jnum doc [ "latency_us"; "p50" ]))
      (ms (jnum doc [ "latency_us"; "p90" ]))
      (ms (jnum doc [ "latency_us"; "p99" ]));
    Printf.bprintf b
      "window   %.0fs: %d requests   p50 %s  p95 %s  p99 %s   shed %.1f%%  \
       internal %.1f%%\n"
      (jnum doc [ "slo"; "window_s" ])
      (jint doc [ "slo"; "requests" ])
      (ms (jnum doc [ "slo"; "p50_us" ]))
      (ms (jnum doc [ "slo"; "p95_us" ]))
      (ms (jnum doc [ "slo"; "p99_us" ]))
      (jnum doc [ "slo"; "shed_pct" ])
      (jnum doc [ "slo"; "internal_pct" ]);
    (match jpath doc [ "slo"; "phase_us" ] with
    | Some (J.Obj pairs) -> (
      let phases =
        List.filter_map
          (fun (k, v) -> Option.map (fun x -> (k, x)) (J.to_num v))
          pairs
      in
      match Obs_attr.attribution phases with
      | "" -> ()
      | att -> Printf.bprintf b "driven   by %s\n" att)
    | _ -> ());
    (match jpath doc [ "slo"; "alloc_phase_b" ] with
    | Some (J.Obj pairs) -> (
      let allocs =
        List.filter_map
          (fun (k, v) -> Option.map (fun x -> (k, x)) (J.to_num v))
          pairs
      in
      match Obs_attr.attribution allocs with
      | "" -> ()
      | att ->
        Printf.bprintf b "alloc    %.0fkB in window — by %s\n"
          (jnum doc [ "slo"; "alloc_b" ] /. 1024.0)
          att)
    | _ -> ());
    Printf.bprintf b "heap     live %.1fMB   top %.1fMB\n"
      (jnum doc [ "heap"; "live_words" ] *. 8.0 /. 1048576.0)
      (jnum doc [ "heap"; "top_words" ] *. 8.0 /. 1048576.0);
    (match jpath doc [ "last_request" ] with
    | Some (J.Obj _ as lr) ->
      Printf.bprintf b "last     rid %d  %s  [%s]  %s\n"
        (jint lr [ "rid" ]) (jstr lr [ "verb" ]) (jstr lr [ "status" ])
        (ms (jnum lr [ "service_us" ]))
    | _ -> Printf.bprintf b "last     (no request serviced yet)\n");
    Printf.bprintf b "ledger   requests %d = answered %d + shed %d + client_gone %d\n"
      (led "requests") (led "answered") (led "shed") (led "client_gone");
    Printf.bprintf b
      "faults   torn %d  oversized %d  bad-request %d  contained %d  timeouts \
       %d  wedges %d  recycles %d\n"
      (led "torn_frames") (led "oversized") (led "bad_requests")
      (led "faults_contained") (led "timeouts") (led "wedges")
      (led "worker_recycles");
    Printf.bprintf b
      "obs      events %d   flight-dumps %d   slo-breaches %d   heap-breaches \
       %d\n"
      (led "events") (led "flight_dumps") (led "slo_breaches")
      (led "heap_breaches");
    Buffer.contents b
  in
  (* the fallback view over the periodically-flushed telemetry JSON —
     process-lifetime numbers, no live window, but it works with no
     socket and survives the file not being there yet *)
  let render_metrics path doc =
    let b = Buffer.create 512 in
    let c k = jint doc [ "counters"; "serve." ^ k ] in
    let h k = jnum doc [ "histograms"; "serve.latency_us"; k ] in
    Printf.bprintf b "compile service metrics @ %s (periodic flush)\n" path;
    Printf.bprintf b "ledger   requests %d = answered %d + shed %d + client_gone %d\n"
      (c "requests") (c "answered") (c "shed") (c "client_gone");
    Printf.bprintf b "latency  p50 %s   p90 %s   p99 %s   (%d samples, process lifetime)\n"
      (ms (h "p50")) (ms (h "p90")) (ms (h "p99"))
      (jint doc [ "histograms"; "serve.latency_us"; "count" ]);
    Printf.bprintf b
      "faults   torn %d  oversized %d  bad-request %d  contained %d  timeouts \
       %d  wedges %d  recycles %d\n"
      (c "torn_frames") (c "oversized") (c "bad_requests")
      (c "faults_contained") (c "timeouts") (c "wedges") (c "worker_recycles");
    Printf.bprintf b
      "obs      events %d   flight-dumps %d   exemplars %d   slo-breaches %d  \
       heap-breaches %d\n"
      (c "events") (c "flight_dumps") (c "exemplars") (c "slo_breaches")
      (c "heap_breaches");
    Printf.bprintf b "heap     live %.1fMB   top %.1fMB\n"
      (jnum doc [ "gauges"; "gc.heap_words" ] *. 8.0 /. 1048576.0)
      (jnum doc [ "gauges"; "gc.top_heap_words" ] *. 8.0 /. 1048576.0);
    Buffer.contents b
  in
  let run socket metrics_file once json interval frames =
    match metrics_file with
    | Some path ->
      (* flushes are periodic: the file may not exist yet, and a foreign
         writer may leave junk — both are "not ready", retried on the
         next refresh, never a crash *)
      let rec mloop n =
        (match
           match Vhdl_util.Unix_compat.read_file path with
           | exception Sys_error msg -> Error msg
           | text -> (
             match J.parse (String.trim text) with
             | Error e -> Error (Printf.sprintf "%s: unparseable (%s)" path e)
             | Ok doc -> Ok (text, doc))
         with
        | Error msg ->
          Printf.eprintf "vhdlc top: metrics not ready (%s); retrying\n%!" msg
        | Ok (text, doc) ->
          if json then print_string text
          else begin
            if not once && n > 0 then print_string "\027[H\027[2J";
            print_string (render_metrics path doc);
            flush stdout
          end);
        if once || (frames > 0 && n + 1 >= frames) then 0
        else begin
          Unix.sleepf interval;
          mloop (n + 1)
        end
      in
      mloop 0
    | None ->
      let rq = Serve_protocol.request ~json:true Serve_protocol.Stats in
      let rec loop n =
        match Serve_client.roundtrip ~timeout_s:5.0 ~socket rq with
        | Error msg ->
          Printf.eprintf "vhdlc top: %s\n" msg;
          7
        | Ok resp when resp.Serve_protocol.rs_status <> Serve_protocol.Ok_ ->
          Printf.eprintf "vhdlc top: [%s]\n"
            (Serve_protocol.status_name resp.Serve_protocol.rs_status);
          Serve_protocol.status_exit_code resp.Serve_protocol.rs_status
        | Ok resp -> (
          match J.parse (String.trim resp.Serve_protocol.rs_body) with
          | Error e ->
            Printf.eprintf "vhdlc top: unparseable stats body: %s\n" e;
            7
          | Ok doc ->
            if json then print_string resp.Serve_protocol.rs_body
            else begin
              if not once && n > 0 then print_string "\027[H\027[2J";
              print_string (render socket doc);
              flush stdout
            end;
            if once || (frames > 0 && n + 1 >= frames) then 0
            else begin
              Unix.sleepf interval;
              loop (n + 1)
            end)
      in
      loop 0
  in
  let doc =
    "Live dashboard over a running compile service: queue depth, worker \
     state, latency percentiles, rolling SLO window, fate ledger.  Use \
     --once --json for scripting."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ socket_arg $ metrics_file $ once $ json $ interval $ frames)

(* `vhdlc analyze`: offline analytics over a serve event log — the
   post-mortem counterpart of `vhdlc top`.  Percentiles replay the log
   through the live window's own estimator (Obs_analyze), so offline and
   online numbers agree; --against diffs two logs with the bench gate's
   noise-aware significance rule. *)

let analyze_cmd =
  let log_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"EVENTS.jsonl"
          ~doc:"Event log written by `vhdlc serve --events`.")
  in
  let against =
    Arg.(
      value
      & opt (some file) None
      & info [ "against" ] ~docv:"BASE.jsonl"
          ~doc:
            "Baseline event log: diff per-request latency and per-phase \
             self-time against it; only median shifts that clear \
             --threshold with disjoint bootstrap confidence intervals are \
             called regressions (exit 1 when any are).")
  in
  let window =
    Arg.(
      value & opt float 60.0
      & info [ "window" ] ~docv:"SECONDS" ~doc:"Timeline slice width.")
  in
  let top_k =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"How many slowest requests to list.")
  in
  let threshold =
    Arg.(
      value & opt float 0.25
      & info [ "threshold" ] ~docv:"FRACTION"
          ~doc:"--against significance threshold on the median ratio.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let load path =
    match Obs_event.read_log path with
    | Error msg -> Error msg
    | Ok (events, warnings) ->
      List.iter (fun w -> Printf.eprintf "vhdlc analyze: warning: %s\n" w) warnings;
      Ok events
  in
  let diff_row_json (r : Perf.Diff.row) =
    let module J = Telemetry.Json in
    let num x = if Float.is_nan x then "null" else J.float x in
    J.obj
      [
        ("name", J.str r.Perf.Diff.d_name);
        ("base_s", num r.Perf.Diff.d_base);
        ("cur_s", num r.Perf.Diff.d_cur);
        ("ratio", num r.Perf.Diff.d_ratio);
        ("verdict", J.str (Perf.Diff.verdict_name r.Perf.Diff.d_verdict));
      ]
  in
  let run log_file against window top_k threshold json =
    match load log_file with
    | Error msg ->
      Printf.eprintf "vhdlc analyze: %s\n" msg;
      2
    | Ok events -> (
      (match Obs_event.check_log events with
      | [] -> ()
      | v :: _ as vs ->
        Printf.eprintf "vhdlc analyze: %d event-grammar violation(s); first: %s\n"
          (List.length vs) v);
      let report = Obs_analyze.analyze ~window_s:window ~top_k events in
      match against with
      | None ->
        if json then print_endline (Obs_analyze.to_json report)
        else Format.printf "%a@." Obs_analyze.pp report;
        0
      | Some base_path -> (
        match load base_path with
        | Error msg ->
          Printf.eprintf "vhdlc analyze: %s\n" msg;
          2
        | Ok base_events ->
          let rows =
            Obs_analyze.against ~threshold ~base:base_events ~cur:events ()
          in
          let regressions = Perf.Diff.regressions rows in
          if json then
            print_endline
              (Telemetry.Json.obj
                 [
                   ("report", Obs_analyze.to_json report);
                   ("baseline", Telemetry.Json.str base_path);
                   ("diff", Telemetry.Json.arr (List.map diff_row_json rows));
                   ("regressions", Telemetry.Json.int (List.length regressions));
                 ])
          else begin
            Format.printf "%a@." Obs_analyze.pp report;
            Format.printf "vs %s:@.%a" base_path Perf.Diff.pp rows
          end;
          if regressions <> [] then 1 else 0))
  in
  let doc =
    "Offline analytics over a compile-service event log: windowed \
     percentiles with per-phase attribution, shed/internal breakdown, the \
     slowest requests, a timeline — and --against to flag real latency or \
     phase regressions between two serving runs."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const run $ log_file $ against $ window $ top_k $ threshold $ json)

let () =
  let doc = "a VHDL compiler and simulator built from attribute grammars" in
  let info = Cmd.info "vhdlc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            compile_cmd; simulate_cmd; dump_cmd; explain_cmd; stats_cmd; bench_cmd;
            serve_cmd; request_cmd; top_cmd; analyze_cmd;
          ]))
