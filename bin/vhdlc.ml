(* vhdlc — the command-line VHDL compiler and simulator.

   Mirrors the paper's invocation model: "The compiler accepts a file
   containing compilation units, a list of compiler directives, a working
   library where the successfully compiled units are placed and a reference
   library which can be referenced in addition to the work library but which
   can not be updated."

     vhdlc compile --work ./mylib a.vhd b.vhd
     vhdlc simulate --work ./mylib --top TB --ns 1000 --vcd out.vcd
     vhdlc dump --work ./mylib 'arch:TB(TEST)'
     vhdlc stats *)

open Cmdliner
module Telemetry = Vhdl_telemetry.Telemetry

let work_arg =
  let doc = "Working library directory (created if missing)." in
  Arg.(value & opt (some string) None & info [ "work" ] ~docv:"DIR" ~doc)

let ref_arg =
  let doc = "Reference library as NAME=DIR (read-only, repeatable)." in
  Arg.(value & opt_all string [] & info [ "ref" ] ~docv:"NAME=DIR" ~doc)

let make_compiler ?budgets work refs =
  let c = Vhdl_compiler.create ?work_dir:work ?budgets () in
  List.iter
    (fun spec ->
      match String.index_opt spec '=' with
      | Some i ->
        let name = String.uppercase_ascii (String.sub spec 0 i) in
        let dir = String.sub spec (i + 1) (String.length spec - i - 1) in
        Vhdl_compiler.add_reference_library c ~name ~dir
      | None ->
        Printf.eprintf "warning: ignoring malformed --ref %s (want NAME=DIR)\n" spec)
    refs;
  c

(* error diagnostics surface through Compile_error (printed per file); this
   reports the rest — warnings and notes *)
let report_diags c =
  List.iter
    (fun d -> if not (Diag.is_error d) then Format.eprintf "%a@." Diag.pp d)
    (Vhdl_compiler.diagnostics c)

let fuel_arg =
  let doc = "Bound semantic-rule applications per compile (budget)." in
  Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc = "Bound wall-clock seconds per compile (budget)." in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let budgets_of ?elab_steps ?sim_step_fuel fuel deadline =
  {
    Supervisor.eval_fuel = fuel;
    elab_steps;
    deadline_s = deadline;
    sim_step_fuel;
  }

(* ------------------------------------------------------------------ *)
(* Telemetry surface, shared by compile and simulate *)

let trace_arg =
  let doc =
    "Write Chrome trace-event JSON of the pipeline span tree to $(docv) \
     (loads in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the telemetry counter report after the run.")

let metrics_out_arg =
  let doc = "Write the telemetry metrics as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

(* Run [f] with tracing armed if a trace file was requested, then write the
   requested exports.  Exports are written even when [f] exits non-zero —
   the trace of a failing compile is the one you want to look at. *)
let with_telemetry ~trace ~metrics ~metrics_out f =
  Telemetry.reset ();
  if trace <> None then Telemetry.set_tracing true;
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | Some path ->
        Vhdl_util.Unix_compat.write_file path (Telemetry.to_chrome_trace ());
        Telemetry.set_tracing false;
        Telemetry.clear_spans ()
      | None -> ());
      if metrics then Format.printf "%a@." (fun fmt () -> Telemetry.pp_metrics fmt ()) ();
      match metrics_out with
      | Some path -> Vhdl_util.Unix_compat.write_file path (Telemetry.metrics_json ())
      | None -> ())
    f

(* ------------------------------------------------------------------ *)

let compile_cmd =
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"VHDL source files.")
  in
  let phases =
    Arg.(value & flag & info [ "phases" ] ~doc:"Print the per-phase time breakdown.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ] ~doc:"Print the per-unit partial-result report.")
  in
  let run work refs phases report trace metrics metrics_out fuel deadline files =
    with_telemetry ~trace ~metrics ~metrics_out @@ fun () ->
    let c = make_compiler ~budgets:(budgets_of fuel deadline) work refs in
    let ok = ref true in
    List.iter
      (fun file ->
        match Vhdl_compiler.compile_file c file with
        | units ->
          List.iter
            (fun u -> Printf.printf "%s: compiled %s\n" file u.Unit_info.u_key)
            units
        | exception Vhdl_compiler.Compile_error msgs ->
          ok := false;
          List.iter (fun d -> Format.eprintf "%s: %a@." file Diag.pp d) msgs)
      files;
    report_diags c;
    if report then Format.printf "%a" Supervisor.pp_report (Vhdl_compiler.last_report c);
    if phases then
      Format.printf "%a@." Vhdl_util.Phase_timer.pp (Vhdl_compiler.timer c);
    if !ok then 0 else 1
  in
  let doc = "Compile VHDL source files into the working library." in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const run $ work_arg $ ref_arg $ phases $ report $ trace_arg $ metrics_arg
      $ metrics_out_arg $ fuel_arg $ deadline_arg $ files)

let simulate_cmd =
  let top =
    Arg.(
      required
      & opt (some string) None
      & info [ "top" ] ~docv:"ENTITY" ~doc:"Top-level entity to elaborate.")
  in
  let arch =
    Arg.(
      value
      & opt (some string) None
      & info [ "arch" ] ~docv:"NAME" ~doc:"Architecture (default: latest compiled).")
  in
  let configuration =
    Arg.(
      value
      & opt (some string) None
      & info [ "configuration" ] ~docv:"NAME" ~doc:"Elaborate through a configuration unit.")
  in
  let ns =
    Arg.(value & opt int 1000 & info [ "ns" ] ~docv:"N" ~doc:"Simulation horizon in ns.")
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Write a VCD waveform dump.")
  in
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"Sources to compile first.")
  in
  let hierarchy =
    Arg.(value & flag & info [ "hierarchy" ] ~doc:"Print the elaborated hierarchy.")
  in
  let elab_steps =
    let doc = "Bound signals + processes + instances elaborated (budget)." in
    Arg.(value & opt (some int) None & info [ "elab-steps" ] ~docv:"N" ~doc)
  in
  let sim_fuel =
    let doc = "Bound process resumptions per simulated instant (budget)." in
    Arg.(value & opt (some int) None & info [ "sim-fuel" ] ~docv:"N" ~doc)
  in
  let run work refs top arch configuration ns vcd hierarchy trace metrics metrics_out
      elab_steps sim_fuel files =
    with_telemetry ~trace ~metrics ~metrics_out @@ fun () ->
    let c =
      make_compiler ~budgets:(budgets_of ?elab_steps ?sim_step_fuel:sim_fuel None None)
        work refs
    in
    try
      List.iter (fun f -> ignore (Vhdl_compiler.compile_file c f)) files;
      let sim = Vhdl_compiler.elaborate ?arch ?configuration c ~top () in
      if hierarchy then
        Format.printf "%a@." Name_server.pp (Vhdl_compiler.name_server sim);
      let outcome = Vhdl_compiler.run c sim ~max_ns:ns in
      List.iter
        (fun (t, sev, msg) ->
          Printf.printf "%-10s %s: %s\n" (Rt.format_time t) (Kernel.severity_name sev) msg)
        (Vhdl_compiler.messages sim);
      let st = Kernel.stats (Vhdl_compiler.kernel sim) in
      Printf.printf
        "simulation %s at %s: %d time steps, %d delta cycles, %d events, %d process runs\n"
        (match outcome with
        | Kernel.Quiescent -> "quiescent"
        | Kernel.Time_limit -> "reached the horizon"
        | Kernel.Stopped -> "stopped on failure"
        | Kernel.Fuel_exhausted -> "ran out of process-step fuel")
        (Rt.format_time (Kernel.now (Vhdl_compiler.kernel sim)))
        st.Kernel.time_steps st.Kernel.delta_cycles st.Kernel.events st.Kernel.process_runs;
      (match vcd with
      | Some path ->
        Vhdl_util.Unix_compat.write_file path
          (Trace.to_vcd (Vhdl_compiler.trace sim) ~timescale_fs:1);
        Printf.printf "VCD written to %s\n" path
      | None -> ());
      if st.Kernel.severities.Kernel.failures > 0 || st.Kernel.severities.Kernel.errors > 0
      then 1
      else 0
    with
    | Vhdl_compiler.Compile_error msgs ->
      List.iter (fun d -> Format.eprintf "%a@." Diag.pp d) msgs;
      1
    | Elaborate.Elaboration_error msg ->
      Printf.eprintf "elaboration: %s\n" msg;
      1
    | Rt.Simulation_error { time; msg } ->
      Printf.eprintf "simulation error at %s: %s\n" (Rt.format_time time) msg;
      1
  in
  let doc = "Compile (optionally), elaborate, and simulate a design." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ work_arg $ ref_arg $ top $ arch $ configuration $ ns $ vcd $ hierarchy
      $ trace_arg $ metrics_arg $ metrics_out_arg $ elab_steps $ sim_fuel $ files)

let dump_cmd =
  let key =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KEY" ~doc:"Unit key, e.g. 'entity:ADDER' or 'arch:ADDER(RTL)'.")
  in
  let run work refs key =
    let c = make_compiler work refs in
    match Library.dump (Vhdl_compiler.work_library c) ~library:"WORK" ~key with
    | Some text ->
      print_endline text;
      0
    | None ->
      Printf.eprintf "no unit %s in the working library\n" key;
      1
  in
  let doc = "Print the human-readable VIF of a compiled unit." in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const run $ work_arg $ ref_arg $ key)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the table as a JSON array.")
  in
  let run json =
    let s1 = Stats.of_grammar ~name:"VHDL AG" (Main_grammar.grammar ()) in
    let s2 = Stats.of_grammar ~name:"expr AG" (Expr_eval.grammar ()) in
    if json then print_endline (Stats.table_json [ s1; s2 ])
    else Format.printf "%a@." Stats.pp_table [ s1; s2 ];
    0
  in
  let doc = "Print the attribute-grammar statistics table." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ json)

let () =
  let doc = "a VHDL compiler and simulator built from attribute grammars" in
  let info = Cmd.info "vhdlc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ compile_cmd; simulate_cmd; dump_cmd; stats_cmd ]))
