(* vhdlfuzz — the differential fuzzing harness.

   Random VHDL designs are compiled twice (demand-driven vs staged
   attribute evaluation), elaborated, and simulated; any divergence in
   units, VIF, diagnostics, traces, or messages — or any evaluator escape —
   is delta-debugged down to a small reproducer.

     vhdlfuzz --smoke                          # fixed seeds, CI-sized
     vhdlfuzz --soak --seed 1234 --count 5000  # open-ended campaign
     vhdlfuzz --replay test/corpus/foo.vhd     # re-check one reproducer
     vhdlfuzz --smoke --inject-fault           # prove the oracle catches bugs *)

open Cmdliner
module Telemetry = Vhdl_telemetry.Telemetry
module Json_in = Vhdl_perf.Perf.Json_in

(* headline telemetry counters accumulated over the whole campaign — how
   much work the pipeline actually did across every seed *)
let pp_campaign_telemetry fmt () =
  let c = Telemetry.counter_value in
  Telemetry.sample_gc ();
  Format.fprintf fmt
    "telemetry: %d tokens, %d attrs evaluated (%d memo hits), %d cascade \
     evaluations, %d resyncs, %d delta cycles, %d events, %.1f MW peak heap"
    (c "lexer.tokens") (c "ag.attrs_evaluated") (c "ag.memo_hits")
    (c "cascade.evaluations") (c "lalr.resyncs") (c "sim.delta_cycles")
    (c "sim.events")
    (Telemetry.gauge_value (Telemetry.gauge "gc.top_heap_words") /. 1e6)

(* Observability invariants checked over the chaos daemon's event log
   after the campaign drains:

   - the log is well-formed (the [Obs_event.check_log] grammar: monotone
     accept ids, every event names an accepted request, exactly one
     start per substantive response with balanced finishes);
   - every firewall trip (a [finish] with status [internal]) and every
     watchdog fire (a [finish] flagged wedged) produced a flight dump
     event naming the offending request id, and the dump file exists;
   - every [finish] carries a phase breakdown ([ph_*] fields) summing
     to within 10% of its [service_us] (the sum itself is checked by
     [Obs_event.check_log]; presence is checked here), and an allocation
     breakdown ([al_*] fields + [alloc_b], whose sum invariant
     [Obs_event.check_log] also enforces);
   - every [heap_breach] event left a flight dump with reason ["heap"];
   - at least one slow shot produced a rid-named exemplar dump whose
     embedded Chrome trace loads as a JSON array;
   - the number of dump files on disk never exceeds the retention cap;
   - the rolling SLO window's p99 agrees with the process-lifetime
     telemetry histogram within 20% (same bucketing, window spans the
     whole campaign), and [Obs_analyze] reproduces it offline within
     the same bound. *)
let check_chaos_obs ~events_path ~obs_dir ~max_dumps ~slo_p99_us ~hist_p99_us =
  let violations = ref [] in
  let notes = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (match Obs_event.read_log events_path with
  | Error msg -> violation "event log unreadable: %s" msg
  | Ok (events, warnings) ->
    List.iter (fun w -> notes := ("serve-chaos: " ^ w) :: !notes) warnings;
    List.iter (fun e -> violation "event log: %s" e) (Obs_event.check_log events);
    let finishes_with pred =
      List.filter
        (fun (e : Obs_event.t) -> e.Obs_event.e_kind = Obs_event.Finish && pred e)
        events
    in
    let dumps reason =
      List.filter
        (fun (e : Obs_event.t) ->
          e.Obs_event.e_kind = Obs_event.Dump
          && Obs_event.field_str e "reason" = Some reason)
        events
    in
    let check_dumped ~what ~reason culprits =
      let dump_rids =
        List.filter_map (fun (e : Obs_event.t) -> e.Obs_event.e_rid) (dumps reason)
      in
      List.iter
        (fun (e : Obs_event.t) ->
          match e.Obs_event.e_rid with
          | None -> violation "%s finish without a rid" what
          | Some rid ->
            if not (List.mem rid dump_rids) then
              violation "%s on rid %d left no %s flight dump" what rid reason)
        culprits
    in
    check_dumped ~what:"firewall trip" ~reason:"firewall"
      (finishes_with (fun e -> Obs_event.field_str e "status" = Some "internal"));
    check_dumped ~what:"watchdog fire" ~reason:"watchdog"
      (finishes_with (fun e -> Obs_event.field e "wedged" <> None));
    List.iter
      (fun (e : Obs_event.t) ->
        match (Obs_event.field_str e "path", e.Obs_event.e_rid) with
        | Some path, rid ->
          if not (Sys.file_exists path) then
            violation "dump event names a missing file %s" path;
          (match rid with
          | Some r ->
            let marker = Printf.sprintf "-rid%d-" r in
            let contains s sub =
              let n = String.length sub in
              let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
              go 0
            in
            if not (contains (Filename.basename path) marker) then
              violation "dump for rid %d not named after it: %s" r path
          | None -> ())
        | None, _ -> violation "dump event without a path field")
      (dumps "firewall" @ dumps "watchdog");
    (* tail triage: every finish explains its latency phase by phase *)
    List.iter
      (fun (e : Obs_event.t) ->
        let rid = Option.value e.Obs_event.e_rid ~default:(-1) in
        if Obs_event.phase_fields e = [] then
          violation "finish rid %d carries no phase attribution" rid;
        if Obs_event.field_num e "service_us" = None then
          violation "finish rid %d carries no service_us" rid;
        if Obs_event.field_num e "alloc_b" = None then
          violation "finish rid %d carries no alloc_b" rid)
      (finishes_with (fun _ -> true));
    (* heap watchdog: every breach dumped the flight recorder *)
    let heap_breach_count =
      List.length
        (List.filter
           (fun (e : Obs_event.t) -> e.Obs_event.e_kind = Obs_event.Heap_breach)
           events)
    in
    let heap_dumps = List.length (dumps "heap") in
    if heap_dumps < heap_breach_count then
      violation "%d heap_breach event(s) but only %d heap flight dump(s)"
        heap_breach_count heap_dumps;
    (* slow shots leave exemplars: rid-named, with a loadable trace *)
    (match dumps "exemplar" with
    | [] ->
      violation
        "no slow shot produced an exemplar dump (wedge shots should clear \
         the adaptive threshold)"
    | exemplars ->
      List.iter
        (fun (e : Obs_event.t) ->
          match (Obs_event.field_str e "path", e.Obs_event.e_rid) with
          | Some path, Some rid ->
            let base = Filename.basename path in
            let marker = Printf.sprintf "-rid%d." rid in
            let contains s sub =
              let n = String.length sub in
              let rec go i =
                i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
              in
              go 0
            in
            if not (contains base marker) then
              violation "exemplar for rid %d not named after it: %s" rid path;
            if not (Sys.file_exists path) then
              violation "exemplar event names a missing file %s" path
            else (
              match
                Json_in.parse (Vhdl_util.Unix_compat.read_file path)
              with
              | Error msg -> violation "exemplar %s unparseable: %s" path msg
              | Ok doc -> (
                match Json_in.mem "trace" doc with
                | Some (Json_in.Arr _) -> ()
                | _ ->
                  violation "exemplar %s: no loadable Chrome trace array" path))
          | _, _ -> violation "exemplar dump event missing path or rid")
        exemplars;
      notes :=
        Printf.sprintf "serve-chaos: %d exemplar dump(s), traces load"
          (List.length exemplars)
        :: !notes);
    (* retention: dump files on disk never exceed the cap *)
    let dump_files =
      try
        Array.to_list (Sys.readdir obs_dir)
        |> List.filter (fun f ->
               Filename.check_suffix f ".json"
               && (String.length f >= 7 && String.sub f 0 7 = "flight-"
                  || String.length f >= 9 && String.sub f 0 9 = "exemplar-"))
      with Sys_error _ -> []
    in
    if max_dumps > 0 && List.length dump_files > max_dumps then
      violation "%d dump files on disk exceed the --max-dumps cap %d"
        (List.length dump_files) max_dumps;
    (* offline analytics agree with the live window *)
    (match slo_p99_us with
    | Some slo when slo > 0.0 ->
      let offline =
        (Obs_analyze.analyze events).Obs_analyze.a_summary.Obs_slo.s_p99_us
      in
      let drift = abs_float (offline -. slo) /. slo in
      if drift > 0.20 then
        violation "analyze p99 %.0fus disagrees with live slo p99 %.0fus (%.0f%%)"
          offline slo (100.0 *. drift)
      else
        notes :=
          Printf.sprintf
            "serve-chaos: analyze p99 %.0fus vs live slo p99 %.0fus (%.1f%% apart)"
            offline slo (100.0 *. drift)
          :: !notes
    | _ -> ());
    let count k = List.length (List.filter (fun (e : Obs_event.t) -> e.Obs_event.e_kind = k) events) in
    notes :=
      Printf.sprintf
        "serve-chaos: event log OK — %d events (%d accepts, %d start/finish \
         pairs, %d sheds, %d dumps)"
        (List.length events) (count Obs_event.Accept) (count Obs_event.Finish)
        (count Obs_event.Shed) (count Obs_event.Dump)
      :: !notes);
  (match (slo_p99_us, hist_p99_us) with
  | Some slo, Some hist ->
    let drift = if hist = 0.0 then 0.0 else abs_float (slo -. hist) /. hist in
    if drift > 0.20 then
      violation "slo window p99 %.0fus disagrees with histogram p99 %.0fus (%.0f%%)"
        slo hist (100.0 *. drift)
    else
      notes :=
        Printf.sprintf
          "serve-chaos: slo window p99 %.0fus vs histogram p99 %.0fus (%.1f%% apart)"
          slo hist (100.0 *. drift)
        :: !notes
  | _ -> violation "could not compare slo p99 against the telemetry histogram");
  (List.rev !notes, List.rev !violations)

(* The serve chaos campaign: fork a daemon child with fault injection
   allowed and a deliberately small queue, fire hundreds of randomized
   healthy/faulty requests at it, then check the zero-deaths invariant —
   every shot resolved as the fault site predicts, the daemon's ledger
   balances, it still answers pings, and it drains to a clean exit.
   The child also keeps a structured event log and flight recorder,
   checked post-mortem by {!check_chaos_obs}. *)
let run_serve_chaos ~seed ~shots ~quiet =
  let log = if quiet then fun _ -> () else fun s -> print_endline s in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vhdl-chaos-%d.sock" (Unix.getpid ()))
  in
  let obs_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vhdl-chaos-%d.obs" (Unix.getpid ()))
  in
  Vhdl_util.Unix_compat.mkdir_p obs_dir;
  let events_path = Filename.concat obs_dir "events.jsonl" in
  let daemon_cfg =
    {
      Serve_daemon.default_config with
      Serve_daemon.d_socket = socket;
      d_queue_capacity = 4 (* smaller than the campaign's burst width *);
      d_idle_timeout_s = 0.5;
      d_worker =
        {
          Serve_worker.default_config with
          Serve_worker.w_allow_faults = true;
          w_watchdog_grace_s = 0.3;
          w_recycle_every = 64;
        };
      d_obs =
        {
          Obs_log.o_events_out = Some events_path;
          o_ring_events = 512;
          o_ring_requests = 64;
          o_flight_dir = obs_dir;
          (* generous cap: the per-fault dump-coverage checks need every
             flight dump to still exist; the count-vs-cap invariant is
             still asserted post-mortem (prune mechanics get a tight cap
             in the unit battery) *)
          o_max_dumps = 128;
          o_exemplar_min_gap_s = 0.5;
        };
      (* one window spanning the whole campaign, so the windowed p99 is
         comparable against the process-lifetime histogram *)
      d_slo_window_s = 3600.0;
      (* armed so the post-campaign planted hog has something to trip *)
      d_heap_growth_pct = 25.0;
    }
  in
  match Unix.fork () with
  | 0 ->
    (* child: the daemon under test *)
    Telemetry.reset ();
    Serve_daemon.serve (Serve_daemon.create daemon_cfg);
    Stdlib.exit 0
  | pid -> (
    let kill_daemon () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid)
    in
    match Serve_client.wait_ready ~socket () with
    | Error msg ->
      kill_daemon ();
      Printf.eprintf "serve-chaos: %s\n" msg;
      1
    | Ok () ->
      log (Printf.sprintf "serve-chaos: daemon pid %d on %s; firing %d shots" pid
             socket shots);
      let s = Serve_chaos.run ~seed ~shots ~socket () in
      if not quiet then List.iter print_endline s.Serve_chaos.log;
      Format.printf "%a@?" Serve_chaos.pp_summary s;
      (* live SLO window and lifetime histogram, straight from the daemon *)
      let json_num rq path =
        match Serve_client.roundtrip ~timeout_s:10.0 ~socket rq with
        | Error _ -> None
        | Ok resp -> (
          match Json_in.parse (String.trim resp.Serve_protocol.rs_body) with
          | Error _ -> None
          | Ok doc ->
            Option.bind
              (List.fold_left
                 (fun acc k -> Option.bind acc (Json_in.mem k))
                 (Some doc) path)
              Json_in.to_num)
      in
      let slo_p99_us =
        json_num (Serve_protocol.request ~json:true Serve_protocol.Slo)
          [ "slo"; "p99_us" ]
      in
      let hist_p99_us =
        json_num (Serve_protocol.request ~json:true Serve_protocol.Stats)
          [ "latency_us"; "p99" ]
      in
      (* planted hog: one request retains 64 MB on the worker; the heap
         watchdog must notice the step and — being edge-triggered — fire
         exactly one heap_breach for the whole episode *)
      let heap_breaches () =
        match
          json_num (Serve_protocol.request ~json:true Serve_protocol.Stats)
            [ "ledger"; "serve.heap_breaches" ]
        with
        | Some n -> int_of_float n
        | None -> -1
      in
      let hog_violation =
        let before = heap_breaches () in
        match
          Serve_client.roundtrip ~timeout_s:10.0 ~socket
            (Serve_protocol.request ~hog_kb:(64 * 1024) Serve_protocol.Ping)
        with
        | Error msg -> Some (Printf.sprintf "hog request failed: %s" msg)
        | Ok _ -> (
          (* the watchdog samples once per tick: give the ring time to
             see the step, then time to prove it does not re-fire *)
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec wait () =
            if heap_breaches () > before then None
            else if Unix.gettimeofday () > deadline then
              Some "planted 64MB hog tripped no heap_breach within 10s"
            else begin
              Unix.sleepf 0.2;
              wait ()
            end
          in
          match wait () with
          | Some v -> Some v
          | None ->
            Unix.sleepf 2.0;
            let fired = heap_breaches () - before in
            if fired <> 1 then
              Some
                (Printf.sprintf
                   "planted hog tripped %d heap_breaches; the edge trigger \
                    promises exactly 1"
                   fired)
            else None)
      in
      (match hog_violation with
      | Some v -> Printf.printf "VIOLATION: %s\n" v
      | None ->
        log "serve-chaos: planted hog tripped exactly one heap_breach + dump");
      (* graceful shutdown must leave a clean exit status *)
      let clean_exit =
        match
          Serve_client.roundtrip ~timeout_s:10.0 ~socket
            (Serve_protocol.request Serve_protocol.Shutdown)
        with
        | Ok _ -> (
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> true
          | _, _ -> false)
        | Error msg ->
          Printf.eprintf "serve-chaos: shutdown request failed: %s\n" msg;
          kill_daemon ();
          false
      in
      if not clean_exit then print_endline "VIOLATION: daemon did not exit cleanly";
      (* the drained daemon's log is complete: run the post-mortem checks *)
      let obs_notes, obs_violations =
        check_chaos_obs ~events_path ~obs_dir ~max_dumps:128 ~slo_p99_us
          ~hist_p99_us
      in
      List.iter print_endline obs_notes;
      List.iter (fun v -> Printf.printf "VIOLATION: %s\n" v) obs_violations;
      if
        s.Serve_chaos.violations = [] && obs_violations = [] && clean_exit
        && hog_violation = None
      then begin
        Printf.printf "serve-chaos: %d shots, zero daemon deaths, all invariants hold\n"
          s.Serve_chaos.shots;
        (* clean campaign: clear the scratch log and dumps *)
        Array.iter
          (fun f -> try Sys.remove (Filename.concat obs_dir f) with Sys_error _ -> ())
          (try Sys.readdir obs_dir with Sys_error _ -> [||]);
        (try Unix.rmdir obs_dir with Unix.Unix_error _ -> ());
        0
      end
      else begin
        Printf.printf "serve-chaos: forensics kept in %s\n" obs_dir;
        1
      end)

let run smoke soak replay_files seed count size max_ns inject_fault budget
    corpus_dir gen_only serve_chaos shots quiet =
  let log = if quiet then fun _ -> () else fun s -> print_endline s in
  if serve_chaos then run_serve_chaos ~seed ~shots ~quiet
  else if replay_files <> [] then begin
    if inject_fault then Difftest_fault.arm ();
    let bad = ref 0 in
    List.iter
      (fun path ->
        let v = Difftest.replay ~inject_fault path in
        Printf.printf "%s: %s\n" path (Difftest_oracle.describe v);
        match v with
        | Difftest_oracle.Agree _ -> ()
        | _ -> incr bad)
      replay_files;
    if !bad = 0 then 0 else 1
  end
  else if gen_only then begin
    (* print one generated design; handy when tuning the generator *)
    let d = Difftest_gen.generate ~seed ~size in
    Printf.printf "-- seed %d shape %s top %s max-ns %d\n%s"
      seed
      (Difftest_gen.shape_name ~seed)
      (Option.value d.Difftest_gen.d_top ~default:"-")
      d.Difftest_gen.d_max_ns d.Difftest_gen.d_source;
    0
  end
  else if smoke || soak then begin
    let seeds =
      if smoke then Difftest.smoke_seeds
      else List.init count (fun i -> seed + i)
    in
    let s =
      if budget then Difftest.run_budget_campaign ?corpus_dir ~log ~seeds ~size ()
      else Difftest.run_campaign ~inject_fault ?corpus_dir ~log ~seeds ~size ()
    in
    Format.printf "%a@." Difftest.pp_summary s;
    Format.printf "%a@." pp_campaign_telemetry ();
    ignore max_ns;
    if s.Difftest.divergences = 0 && s.Difftest.crashes = 0 then 0 else 1
  end
  else begin
    prerr_endline "nothing to do: pass --smoke, --soak, --gen, or --replay FILE";
    2
  end

let cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Deterministic CI campaign: 100 fixed seeds.")
  in
  let soak =
    Arg.(value & flag & info [ "soak" ] ~doc:"Open-ended campaign from --seed, --count designs.")
  in
  let replay =
    Arg.(value & opt_all file [] & info [ "replay" ] ~docv:"FILE" ~doc:"Re-run the oracle on a corpus file (repeatable).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"First seed of a soak campaign.")
  in
  let count =
    Arg.(value & opt int 500 & info [ "count" ] ~docv:"N" ~doc:"Designs per soak campaign.")
  in
  let size =
    Arg.(value & opt int 2 & info [ "size" ] ~docv:"N" ~doc:"Design size factor (1 = tiny).")
  in
  let max_ns =
    Arg.(value & opt int 0 & info [ "max-ns" ] ~docv:"N" ~doc:"Override the simulation horizon (0 = per-design default).")
  in
  let inject_fault =
    Arg.(value & flag & info [ "inject-fault" ] ~doc:"Arm the semantic-rule flip (integer literals +1 on the staged side) to validate the oracle.")
  in
  let budget =
    Arg.(value & flag & info [ "budget" ] ~doc:"Containment campaign: run each design once under tight resource budgets; any raw exception escape or internal-error diagnostic is a finding (shrunk and archived like a divergence).")
  in
  let corpus_dir =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory for shrunk reproducers (created if missing).")
  in
  let gen_only =
    Arg.(value & flag & info [ "gen" ] ~doc:"Print the design for --seed and exit.")
  in
  let serve_chaos =
    Arg.(
      value & flag
      & info [ "serve-chaos" ]
          ~doc:
            "Chaos campaign against a live compile-service daemon (forked as \
             a child): randomized healthy and faulty requests — torn frames, \
             bad magic, oversized declarations, poisoned units, wedged \
             requests, deadline busts, client aborts, overload bursts — with \
             a zero-daemon-deaths invariant and a telemetry-ledger check.")
  in
  let shots =
    Arg.(
      value & opt int 240
      & info [ "shots" ] ~docv:"N" ~doc:"Requests per serve-chaos campaign.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the final summary.") in
  let doc = "differential fuzzer: demand vs staged attribute evaluation" in
  Cmd.v
    (Cmd.info "vhdlfuzz" ~version:"1.0.0" ~doc)
    Term.(
      const run $ smoke $ soak $ replay $ seed $ count $ size $ max_ns
      $ inject_fault $ budget $ corpus_dir $ gen_only $ serve_chaos $ shots $ quiet)

let () = exit (Cmd.eval' cmd)
