(* vhdlfuzz — the differential fuzzing harness.

   Random VHDL designs are compiled twice (demand-driven vs staged
   attribute evaluation), elaborated, and simulated; any divergence in
   units, VIF, diagnostics, traces, or messages — or any evaluator escape —
   is delta-debugged down to a small reproducer.

     vhdlfuzz --smoke                          # fixed seeds, CI-sized
     vhdlfuzz --soak --seed 1234 --count 5000  # open-ended campaign
     vhdlfuzz --replay test/corpus/foo.vhd     # re-check one reproducer
     vhdlfuzz --smoke --inject-fault           # prove the oracle catches bugs *)

open Cmdliner
module Telemetry = Vhdl_telemetry.Telemetry

(* headline telemetry counters accumulated over the whole campaign — how
   much work the pipeline actually did across every seed *)
let pp_campaign_telemetry fmt () =
  let c = Telemetry.counter_value in
  Telemetry.sample_gc ();
  Format.fprintf fmt
    "telemetry: %d tokens, %d attrs evaluated (%d memo hits), %d cascade \
     evaluations, %d resyncs, %d delta cycles, %d events, %.1f MW peak heap"
    (c "lexer.tokens") (c "ag.attrs_evaluated") (c "ag.memo_hits")
    (c "cascade.evaluations") (c "lalr.resyncs") (c "sim.delta_cycles")
    (c "sim.events")
    (Telemetry.gauge_value (Telemetry.gauge "gc.top_heap_words") /. 1e6)

(* The serve chaos campaign: fork a daemon child with fault injection
   allowed and a deliberately small queue, fire hundreds of randomized
   healthy/faulty requests at it, then check the zero-deaths invariant —
   every shot resolved as the fault site predicts, the daemon's ledger
   balances, it still answers pings, and it drains to a clean exit. *)
let run_serve_chaos ~seed ~shots ~quiet =
  let log = if quiet then fun _ -> () else fun s -> print_endline s in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vhdl-chaos-%d.sock" (Unix.getpid ()))
  in
  let daemon_cfg =
    {
      Serve_daemon.default_config with
      Serve_daemon.d_socket = socket;
      d_queue_capacity = 4 (* smaller than the campaign's burst width *);
      d_idle_timeout_s = 0.5;
      d_worker =
        {
          Serve_worker.default_config with
          Serve_worker.w_allow_faults = true;
          w_watchdog_grace_s = 0.3;
          w_recycle_every = 64;
        };
    }
  in
  match Unix.fork () with
  | 0 ->
    (* child: the daemon under test *)
    Telemetry.reset ();
    Serve_daemon.serve (Serve_daemon.create daemon_cfg);
    Stdlib.exit 0
  | pid -> (
    let kill_daemon () =
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid)
    in
    match Serve_client.wait_ready ~socket () with
    | Error msg ->
      kill_daemon ();
      Printf.eprintf "serve-chaos: %s\n" msg;
      1
    | Ok () ->
      log (Printf.sprintf "serve-chaos: daemon pid %d on %s; firing %d shots" pid
             socket shots);
      let s = Serve_chaos.run ~seed ~shots ~socket () in
      if not quiet then List.iter print_endline s.Serve_chaos.log;
      Format.printf "%a@?" Serve_chaos.pp_summary s;
      (* graceful shutdown must leave a clean exit status *)
      let clean_exit =
        match
          Serve_client.roundtrip ~timeout_s:10.0 ~socket
            (Serve_protocol.request Serve_protocol.Shutdown)
        with
        | Ok _ -> (
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> true
          | _, _ -> false)
        | Error msg ->
          Printf.eprintf "serve-chaos: shutdown request failed: %s\n" msg;
          kill_daemon ();
          false
      in
      if not clean_exit then print_endline "VIOLATION: daemon did not exit cleanly";
      if s.Serve_chaos.violations = [] && clean_exit then begin
        Printf.printf "serve-chaos: %d shots, zero daemon deaths, all invariants hold\n"
          s.Serve_chaos.shots;
        0
      end
      else 1)

let run smoke soak replay_files seed count size max_ns inject_fault budget
    corpus_dir gen_only serve_chaos shots quiet =
  let log = if quiet then fun _ -> () else fun s -> print_endline s in
  if serve_chaos then run_serve_chaos ~seed ~shots ~quiet
  else if replay_files <> [] then begin
    if inject_fault then Difftest_fault.arm ();
    let bad = ref 0 in
    List.iter
      (fun path ->
        let v = Difftest.replay ~inject_fault path in
        Printf.printf "%s: %s\n" path (Difftest_oracle.describe v);
        match v with
        | Difftest_oracle.Agree _ -> ()
        | _ -> incr bad)
      replay_files;
    if !bad = 0 then 0 else 1
  end
  else if gen_only then begin
    (* print one generated design; handy when tuning the generator *)
    let d = Difftest_gen.generate ~seed ~size in
    Printf.printf "-- seed %d shape %s top %s max-ns %d\n%s"
      seed
      (Difftest_gen.shape_name ~seed)
      (Option.value d.Difftest_gen.d_top ~default:"-")
      d.Difftest_gen.d_max_ns d.Difftest_gen.d_source;
    0
  end
  else if smoke || soak then begin
    let seeds =
      if smoke then Difftest.smoke_seeds
      else List.init count (fun i -> seed + i)
    in
    let s =
      if budget then Difftest.run_budget_campaign ?corpus_dir ~log ~seeds ~size ()
      else Difftest.run_campaign ~inject_fault ?corpus_dir ~log ~seeds ~size ()
    in
    Format.printf "%a@." Difftest.pp_summary s;
    Format.printf "%a@." pp_campaign_telemetry ();
    ignore max_ns;
    if s.Difftest.divergences = 0 && s.Difftest.crashes = 0 then 0 else 1
  end
  else begin
    prerr_endline "nothing to do: pass --smoke, --soak, --gen, or --replay FILE";
    2
  end

let cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Deterministic CI campaign: 100 fixed seeds.")
  in
  let soak =
    Arg.(value & flag & info [ "soak" ] ~doc:"Open-ended campaign from --seed, --count designs.")
  in
  let replay =
    Arg.(value & opt_all file [] & info [ "replay" ] ~docv:"FILE" ~doc:"Re-run the oracle on a corpus file (repeatable).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"First seed of a soak campaign.")
  in
  let count =
    Arg.(value & opt int 500 & info [ "count" ] ~docv:"N" ~doc:"Designs per soak campaign.")
  in
  let size =
    Arg.(value & opt int 2 & info [ "size" ] ~docv:"N" ~doc:"Design size factor (1 = tiny).")
  in
  let max_ns =
    Arg.(value & opt int 0 & info [ "max-ns" ] ~docv:"N" ~doc:"Override the simulation horizon (0 = per-design default).")
  in
  let inject_fault =
    Arg.(value & flag & info [ "inject-fault" ] ~doc:"Arm the semantic-rule flip (integer literals +1 on the staged side) to validate the oracle.")
  in
  let budget =
    Arg.(value & flag & info [ "budget" ] ~doc:"Containment campaign: run each design once under tight resource budgets; any raw exception escape or internal-error diagnostic is a finding (shrunk and archived like a divergence).")
  in
  let corpus_dir =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory for shrunk reproducers (created if missing).")
  in
  let gen_only =
    Arg.(value & flag & info [ "gen" ] ~doc:"Print the design for --seed and exit.")
  in
  let serve_chaos =
    Arg.(
      value & flag
      & info [ "serve-chaos" ]
          ~doc:
            "Chaos campaign against a live compile-service daemon (forked as \
             a child): randomized healthy and faulty requests — torn frames, \
             bad magic, oversized declarations, poisoned units, wedged \
             requests, deadline busts, client aborts, overload bursts — with \
             a zero-daemon-deaths invariant and a telemetry-ledger check.")
  in
  let shots =
    Arg.(
      value & opt int 240
      & info [ "shots" ] ~docv:"N" ~doc:"Requests per serve-chaos campaign.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the final summary.") in
  let doc = "differential fuzzer: demand vs staged attribute evaluation" in
  Cmd.v
    (Cmd.info "vhdlfuzz" ~version:"1.0.0" ~doc)
    Term.(
      const run $ smoke $ soak $ replay $ seed $ count $ size $ max_ns
      $ inject_fault $ budget $ corpus_dir $ gen_only $ serve_chaos $ shots $ quiet)

let () = exit (Cmd.eval' cmd)
