(* vhdlfuzz — the differential fuzzing harness.

   Random VHDL designs are compiled twice (demand-driven vs staged
   attribute evaluation), elaborated, and simulated; any divergence in
   units, VIF, diagnostics, traces, or messages — or any evaluator escape —
   is delta-debugged down to a small reproducer.

     vhdlfuzz --smoke                          # fixed seeds, CI-sized
     vhdlfuzz --soak --seed 1234 --count 5000  # open-ended campaign
     vhdlfuzz --replay test/corpus/foo.vhd     # re-check one reproducer
     vhdlfuzz --smoke --inject-fault           # prove the oracle catches bugs *)

open Cmdliner
module Telemetry = Vhdl_telemetry.Telemetry

(* headline telemetry counters accumulated over the whole campaign — how
   much work the pipeline actually did across every seed *)
let pp_campaign_telemetry fmt () =
  let c = Telemetry.counter_value in
  Telemetry.sample_gc ();
  Format.fprintf fmt
    "telemetry: %d tokens, %d attrs evaluated (%d memo hits), %d cascade \
     evaluations, %d resyncs, %d delta cycles, %d events, %.1f MW peak heap"
    (c "lexer.tokens") (c "ag.attrs_evaluated") (c "ag.memo_hits")
    (c "cascade.evaluations") (c "lalr.resyncs") (c "sim.delta_cycles")
    (c "sim.events")
    (Telemetry.gauge_value (Telemetry.gauge "gc.top_heap_words") /. 1e6)

let run smoke soak replay_files seed count size max_ns inject_fault budget
    corpus_dir gen_only quiet =
  let log = if quiet then fun _ -> () else fun s -> print_endline s in
  if replay_files <> [] then begin
    if inject_fault then Difftest_fault.arm ();
    let bad = ref 0 in
    List.iter
      (fun path ->
        let v = Difftest.replay ~inject_fault path in
        Printf.printf "%s: %s\n" path (Difftest_oracle.describe v);
        match v with
        | Difftest_oracle.Agree _ -> ()
        | _ -> incr bad)
      replay_files;
    if !bad = 0 then 0 else 1
  end
  else if gen_only then begin
    (* print one generated design; handy when tuning the generator *)
    let d = Difftest_gen.generate ~seed ~size in
    Printf.printf "-- seed %d shape %s top %s max-ns %d\n%s"
      seed
      (Difftest_gen.shape_name ~seed)
      (Option.value d.Difftest_gen.d_top ~default:"-")
      d.Difftest_gen.d_max_ns d.Difftest_gen.d_source;
    0
  end
  else if smoke || soak then begin
    let seeds =
      if smoke then Difftest.smoke_seeds
      else List.init count (fun i -> seed + i)
    in
    let s =
      if budget then Difftest.run_budget_campaign ?corpus_dir ~log ~seeds ~size ()
      else Difftest.run_campaign ~inject_fault ?corpus_dir ~log ~seeds ~size ()
    in
    Format.printf "%a@." Difftest.pp_summary s;
    Format.printf "%a@." pp_campaign_telemetry ();
    ignore max_ns;
    if s.Difftest.divergences = 0 && s.Difftest.crashes = 0 then 0 else 1
  end
  else begin
    prerr_endline "nothing to do: pass --smoke, --soak, --gen, or --replay FILE";
    2
  end

let cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Deterministic CI campaign: 100 fixed seeds.")
  in
  let soak =
    Arg.(value & flag & info [ "soak" ] ~doc:"Open-ended campaign from --seed, --count designs.")
  in
  let replay =
    Arg.(value & opt_all file [] & info [ "replay" ] ~docv:"FILE" ~doc:"Re-run the oracle on a corpus file (repeatable).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"First seed of a soak campaign.")
  in
  let count =
    Arg.(value & opt int 500 & info [ "count" ] ~docv:"N" ~doc:"Designs per soak campaign.")
  in
  let size =
    Arg.(value & opt int 2 & info [ "size" ] ~docv:"N" ~doc:"Design size factor (1 = tiny).")
  in
  let max_ns =
    Arg.(value & opt int 0 & info [ "max-ns" ] ~docv:"N" ~doc:"Override the simulation horizon (0 = per-design default).")
  in
  let inject_fault =
    Arg.(value & flag & info [ "inject-fault" ] ~doc:"Arm the semantic-rule flip (integer literals +1 on the staged side) to validate the oracle.")
  in
  let budget =
    Arg.(value & flag & info [ "budget" ] ~doc:"Containment campaign: run each design once under tight resource budgets; any raw exception escape or internal-error diagnostic is a finding (shrunk and archived like a divergence).")
  in
  let corpus_dir =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory for shrunk reproducers (created if missing).")
  in
  let gen_only =
    Arg.(value & flag & info [ "gen" ] ~doc:"Print the design for --seed and exit.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print the final summary.") in
  let doc = "differential fuzzer: demand vs staged attribute evaluation" in
  Cmd.v
    (Cmd.info "vhdlfuzz" ~version:"1.0.0" ~doc)
    Term.(
      const run $ smoke $ soak $ replay $ seed $ count $ size $ max_ns
      $ inject_fault $ budget $ corpus_dir $ gen_only $ quiet)

let () = exit (Cmd.eval' cmd)
