(** Design libraries: where compiled units (VIF) live.

    The compiler takes "a working library where the successfully compiled
    units are placed and a reference library which can be referenced ... but
    which can not be updated" (paper §2).  A library may be disk-backed (one
    VIF file per unit) or memory-only; foreign references are resolved by
    reading the VIF back and recursively loading its dependencies — the
    activity the paper measures at 40-60% of total compilation time. *)

module U = Vhdl_util.Unix_compat
module Tm = Vhdl_telemetry.Telemetry

let m_reads = Tm.counter "vif.reads"
let m_writes = Tm.counter "vif.writes"
let m_read_bytes = Tm.counter "vif.read_bytes"
let m_write_bytes = Tm.counter "vif.write_bytes"
let m_unit_bytes = Tm.histogram "vif.unit_bytes"

type t = {
  lib_name : string;
  lib_dir : string option; (* disk directory; None = memory-only *)
  units : (string, Unit_info.compiled_unit) Hashtbl.t; (* by key *)
  loaded_files : (string, unit) Hashtbl.t; (* VIF files already parsed *)
  mutable references : (string * t) list; (* read-only reference libraries *)
  writable : bool;
  (* instrumentation for the PERF-PHASE experiment *)
  mutable read_seconds : float;
  mutable write_seconds : float;
  mutable reads : int;
  mutable writes : int;
  mutable sequence : int; (* compilation order stamp *)
}

exception Library_error of string

let err fmt = Format.kasprintf (fun s -> raise (Library_error s)) fmt

(* key "arch:ADDER(RTL)" -> file "arch@ADDER@RTL@.vif" *)
let file_of_key key =
  String.map (fun c -> match c with ':' | '(' | ')' -> '@' | c -> c) key ^ ".vif"

let create ?dir ~name () =
  let t =
    {
      lib_name = name;
      lib_dir = dir;
      units = Hashtbl.create 64;
      loaded_files = Hashtbl.create 64;
      references = [];
      writable = true;
      read_seconds = 0.0;
      write_seconds = 0.0;
      reads = 0;
      writes = 0;
      sequence = 0;
    }
  in
  (match dir with
  | Some d -> U.mkdir_p d
  | None -> ());
  t

(** Attach a read-only reference library under logical name [as_name]. *)
let add_reference t ~as_name ref_lib = t.references <- t.references @ [ (as_name, ref_lib) ]

(* VIF I/O time is charged to its own phase of the ambient compile timer
   ([phase] is "VIF read" or "VIF write"), which both carves it out of the
   enclosing phase and records each file transfer as a telemetry span. *)
let timed phase cell f =
  Vhdl_util.Phase_timer.time_ambient phase (fun () ->
      let start = U.now () in
      Fun.protect ~finally:(fun () -> cell := !cell +. (U.now () -. start)) f)

(** Write [u] into the library (memory and, if disk-backed, its VIF file).
    The sequence stamp records compilation order — the input to the
    latest-compiled-architecture default rule. *)
let insert t (u : Unit_info.compiled_unit) =
  if not t.writable then err "library %s is read-only" t.lib_name;
  t.sequence <- max (t.sequence + 1) (u.Unit_info.u_sequence + 1);
  let u = { u with Unit_info.u_library = t.lib_name; u_sequence = t.sequence } in
  Hashtbl.replace t.units u.Unit_info.u_key u;
  match t.lib_dir with
  | None -> ()
  | Some dir ->
    let cell = ref t.write_seconds in
    timed "VIF write" cell (fun () ->
        t.writes <- t.writes + 1;
        Tm.incr m_writes;
        let file = file_of_key u.Unit_info.u_key in
        Hashtbl.replace t.loaded_files file ();
        let text = Vif_units.to_string u in
        Tm.add m_write_bytes (String.length text);
        Tm.observe m_unit_bytes (float_of_int (String.length text));
        U.write_file (Filename.concat dir file) text);
    t.write_seconds <- !cell

let rec resolve_library t name =
  if String.equal name t.lib_name || String.equal name "WORK" then Some t
  else
    match List.assoc_opt name t.references with
    | Some lib -> Some lib
    | None ->
      (* a reference library may itself re-export references *)
      List.find_map
        (fun (_, lib) -> if lib.lib_name = name then Some lib else resolve_library lib name)
        t.references

(** Find a unit: memory first, then the VIF file, recursively loading the
    unit's own foreign references (the paper's "reads the VIF from disk,
    resolving any nested foreign references"). *)
let rec find t ~library ~key : Unit_info.compiled_unit option =
  match resolve_library t library with
  | None -> None
  | Some lib -> (
    match Hashtbl.find_opt lib.units key with
    | Some u -> Some u
    | None -> (
      match lib.lib_dir with
      | None -> None
      | Some dir ->
        let file = file_of_key key in
        let path = Filename.concat dir file in
        if not (Sys.file_exists path) then None
        else begin
          let cell = ref lib.read_seconds in
          let u =
            timed "VIF read" cell (fun () ->
                lib.reads <- lib.reads + 1;
                Tm.incr m_reads;
                let text = U.read_file path in
                Tm.add m_read_bytes (String.length text);
                Vif_units.of_string text)
          in
          lib.read_seconds <- !cell;
          Hashtbl.replace lib.loaded_files file ();
          Hashtbl.replace lib.units key u;
          (* fix up nested foreign references *)
          List.iter
            (fun (dep_lib, dep_key) -> ignore (find t ~library:dep_lib ~key:dep_key))
            u.Unit_info.u_deps;
          Some u
        end))

(** All units currently known (loading every VIF file of disk-backed
    libraries first). *)
let all t : Unit_info.compiled_unit list =
  let load_dir lib =
    match lib.lib_dir with
    | None -> ()
    | Some dir ->
      if Sys.file_exists dir then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".vif" && not (Hashtbl.mem lib.loaded_files f)
            then begin
              let path = Filename.concat dir f in
              let cell = ref lib.read_seconds in
              let u =
                timed "VIF read" cell (fun () ->
                    lib.reads <- lib.reads + 1;
                    Tm.incr m_reads;
                    let text = U.read_file path in
                    Tm.add m_read_bytes (String.length text);
                    Vif_units.of_string text)
              in
              lib.read_seconds <- !cell;
              Hashtbl.replace lib.loaded_files f ();
              if not (Hashtbl.mem lib.units u.Unit_info.u_key) then
                Hashtbl.replace lib.units u.Unit_info.u_key u
            end)
          (Sys.readdir dir)
  in
  load_dir t;
  List.iter (fun (_, lib) -> load_dir lib) t.references;
  let acc = ref [] in
  Hashtbl.iter (fun _ u -> acc := u :: !acc) t.units;
  List.iter
    (fun (_, lib) -> Hashtbl.iter (fun _ u -> acc := u :: !acc) lib.units)
    t.references;
  List.sort
    (fun (a : Unit_info.compiled_unit) b -> compare a.Unit_info.u_sequence b.Unit_info.u_sequence)
    !acc

(** Human-readable dump of one unit (paper: "produces a human-readable form
    of the VIF, used for both debugging and documentation"). *)
let dump t ~library ~key =
  match find t ~library ~key with
  | Some u -> Some (Vif_units.to_string_indented u)
  | None -> None

type io_stats = {
  io_reads : int;
  io_writes : int;
  io_read_seconds : float;
  io_write_seconds : float;
}

let io_stats t =
  {
    io_reads = t.reads;
    io_writes = t.writes;
    io_read_seconds = t.read_seconds;
    io_write_seconds = t.write_seconds;
  }

(** Drop the in-memory unit cache (disk files stay), forcing subsequent
    [find]s to re-read VIF — each compiler invocation in the original system
    re-read its foreign references from the library. *)
let clear_cache t =
  Hashtbl.reset t.units;
  Hashtbl.reset t.loaded_files;
  List.iter
    (fun (_, lib) ->
      Hashtbl.reset lib.units;
      Hashtbl.reset lib.loaded_files)
    t.references

let reset_io_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.read_seconds <- 0.0;
  t.write_seconds <- 0.0
