(** Design libraries: where compiled units (VIF) live.

    A library may be disk-backed (one VIF file per unit) or memory-only;
    foreign references are resolved by reading VIF back and recursively
    loading dependencies — the activity the paper measures at 40-60% of
    compilation time. *)

type t

exception Library_error of string

val file_of_key : string -> string
(** Deterministic VIF file name for a unit key. *)

val create : ?dir:string -> name:string -> unit -> t
(** A library named [name]; [dir] makes it disk-backed (created if
    missing). *)

val add_reference : t -> as_name:string -> t -> unit
(** Attach a read-only reference library under a logical name. *)

val insert : t -> Unit_info.compiled_unit -> unit
(** Write a unit (memory + VIF file).  Stamps compilation order — the input
    to the latest-compiled-architecture default rule (§3.3). *)

val resolve_library : t -> string -> t option

val find : t -> library:string -> key:string -> Unit_info.compiled_unit option
(** Memory first, then the VIF file, recursively loading the unit's foreign
    references. *)

val all : t -> Unit_info.compiled_unit list
(** Every known unit, in compilation order (loads all VIF files of
    disk-backed libraries). *)

val dump : t -> library:string -> key:string -> string option
(** The paper's human-readable VIF form, for debugging and documentation. *)

type io_stats = {
  io_reads : int;
  io_writes : int;
  io_read_seconds : float;
  io_write_seconds : float;
}

val io_stats : t -> io_stats
val reset_io_stats : t -> unit

val clear_cache : t -> unit
(** Drop the in-memory unit cache (disk files stay): subsequent [find]s
    re-read VIF, as each compiler invocation did in the original system. *)
