(** VIF serialization of denotations and design units. *)

module S = Vhdl_util.Sexp
open Vif

(* ------------------------------------------------------------------ *)
(* Denotations *)

let sexp_of_param (p : Denot.param) =
  S.List
    [
      S.Atom p.Denot.p_name;
      sexp_of_arg_mode p.Denot.p_mode;
      S.Atom
        (match p.Denot.p_class with
        | Denot.Cconstant -> "constant"
        | Denot.Cvariable -> "variable"
        | Denot.Csignal -> "signal");
      sexp_of_ty p.Denot.p_ty;
      sexp_of_opt sexp_of_expr p.Denot.p_default;
    ]

let param_of_sexp = function
  | S.List [ S.Atom name; mode; S.Atom cls; ty; default ] ->
    {
      Denot.p_name = name;
      p_mode = arg_mode_of_sexp mode;
      p_class =
        (match cls with
        | "constant" -> Denot.Cconstant
        | "variable" -> Denot.Cvariable
        | "signal" -> Denot.Csignal
        | _ -> fail "bad parameter class");
      p_ty = ty_of_sexp ty;
      p_default = opt_of_sexp expr_of_sexp default;
    }
  | _ -> fail "bad parameter"

let sexp_of_subprog_sig (s : Denot.subprog_sig) =
  S.record "subprog"
    [
      ("name", S.Atom s.Denot.ss_name);
      ("mangled", S.Atom s.Denot.ss_mangled);
      ("kind", S.Atom (match s.Denot.ss_kind with `Function -> "function" | `Procedure -> "procedure"));
      ("params", S.List (List.map sexp_of_param s.Denot.ss_params));
      ("ret", sexp_of_opt sexp_of_ty s.Denot.ss_ret);
      ("builtin", S.bool s.Denot.ss_builtin);
    ]

let subprog_sig_of_sexp sexp =
  let tag, fields = S.untag sexp in
  if tag <> "subprog" then fail "expected subprog";
  {
    Denot.ss_name = S.to_atom (S.field "name" fields);
    ss_mangled = S.to_atom (S.field "mangled" fields);
    ss_kind =
      (match S.to_atom (S.field "kind" fields) with
      | "function" -> `Function
      | _ -> `Procedure);
    ss_params = List.map param_of_sexp (S.to_list (S.field "params" fields));
    ss_ret = opt_of_sexp ty_of_sexp (S.field "ret" fields);
    ss_builtin = S.to_bool (S.field "builtin" fields);
  }

let sexp_of_slot = function
  | Denot.Sl_frame { level; index } -> S.List [ S.Atom "frame"; S.int level; S.int index ]
  | Denot.Sl_signal sref -> S.List [ S.Atom "signal"; sexp_of_sref sref ]
  | Denot.Sl_generic i -> S.List [ S.Atom "generic"; S.int i ]
  | Denot.Sl_static v -> S.List [ S.Atom "static"; sexp_of_value v ]
  | Denot.Sl_unit_const name -> S.List [ S.Atom "uconst"; S.Atom name ]

let slot_of_sexp = function
  | S.List [ S.Atom "frame"; level; index ] ->
    Denot.Sl_frame { level = S.to_int level; index = S.to_int index }
  | S.List [ S.Atom "signal"; sref ] -> Denot.Sl_signal (sref_of_sexp sref)
  | S.List [ S.Atom "generic"; i ] -> Denot.Sl_generic (S.to_int i)
  | S.List [ S.Atom "static"; v ] -> Denot.Sl_static (value_of_sexp v)
  | S.List [ S.Atom "uconst"; S.Atom name ] -> Denot.Sl_unit_const name
  | _ -> fail "bad slot"

let rec sexp_of_denot (d : Denot.t) =
  match d with
  | Denot.Dobject { name; cls; ty; mode; slot } ->
    S.List
      [
        S.Atom "object";
        S.Atom name;
        S.Atom
          (match cls with
          | Denot.Cconstant -> "constant"
          | Denot.Cvariable -> "variable"
          | Denot.Csignal -> "signal");
        sexp_of_ty ty;
        sexp_of_opt sexp_of_arg_mode mode;
        sexp_of_slot slot;
      ]
  | Denot.Dtype ty -> S.List [ S.Atom "type"; sexp_of_ty ty ]
  | Denot.Dsubtype ty -> S.List [ S.Atom "subtype"; sexp_of_ty ty ]
  | Denot.Denum_lit { ty; pos; image } ->
    S.List [ S.Atom "enumlit"; sexp_of_ty ty; S.int pos; S.Atom image ]
  | Denot.Dsubprog s -> S.List [ S.Atom "subprog"; sexp_of_subprog_sig s ]
  | Denot.Dcomponent { name; generics; ports } ->
    S.List
      [
        S.Atom "component"; S.Atom name;
        S.List (List.map sexp_of_generic generics);
        S.List (List.map sexp_of_port ports);
      ]
  | Denot.Dattr_decl { name; ty } -> S.List [ S.Atom "attrdecl"; S.Atom name; sexp_of_ty ty ]
  | Denot.Dattr_value { of_name; attr; value; ty } ->
    S.List
      [ S.Atom "attrval"; S.Atom of_name; S.Atom attr; sexp_of_value value; sexp_of_ty ty ]
  | Denot.Dunit { library; unit_name } ->
    S.List [ S.Atom "unit"; S.Atom library; S.Atom unit_name ]
  | Denot.Dlibrary l -> S.List [ S.Atom "library"; S.Atom l ]
  | Denot.Dlabel l -> S.List [ S.Atom "label"; S.Atom l ]
  | Denot.Dphys_unit { ty; scale; image } ->
    S.List [ S.Atom "physunit"; sexp_of_ty ty; S.int scale; S.Atom image ]

and sexp_of_generic (g : Kir.generic_decl) =
  S.List [ S.Atom g.Kir.gd_name; sexp_of_ty g.Kir.gd_ty; sexp_of_opt sexp_of_expr g.Kir.gd_default ]

and sexp_of_port (p : Kir.port_decl) =
  S.List
    [
      S.Atom p.Kir.pd_name; sexp_of_arg_mode p.Kir.pd_mode; sexp_of_ty p.Kir.pd_ty;
      sexp_of_opt sexp_of_expr p.Kir.pd_default;
    ]

let generic_of_sexp = function
  | S.List [ S.Atom name; ty; default ] ->
    { Kir.gd_name = name; gd_ty = ty_of_sexp ty; gd_default = opt_of_sexp expr_of_sexp default }
  | _ -> fail "bad generic"

let port_of_sexp = function
  | S.List [ S.Atom name; mode; ty; default ] ->
    {
      Kir.pd_name = name;
      pd_mode = arg_mode_of_sexp mode;
      pd_ty = ty_of_sexp ty;
      pd_default = opt_of_sexp expr_of_sexp default;
    }
  | _ -> fail "bad port"

let denot_of_sexp sexp : Denot.t =
  match sexp with
  | S.List [ S.Atom "object"; S.Atom name; S.Atom cls; ty; mode; slot ] ->
    Denot.Dobject
      {
        name;
        cls =
          (match cls with
          | "constant" -> Denot.Cconstant
          | "variable" -> Denot.Cvariable
          | "signal" -> Denot.Csignal
          | _ -> fail "bad object class");
        ty = ty_of_sexp ty;
        mode = opt_of_sexp arg_mode_of_sexp mode;
        slot = slot_of_sexp slot;
      }
  | S.List [ S.Atom "type"; ty ] -> Denot.Dtype (ty_of_sexp ty)
  | S.List [ S.Atom "subtype"; ty ] -> Denot.Dsubtype (ty_of_sexp ty)
  | S.List [ S.Atom "enumlit"; ty; pos; S.Atom image ] ->
    Denot.Denum_lit { ty = ty_of_sexp ty; pos = S.to_int pos; image }
  | S.List [ S.Atom "subprog"; s ] -> Denot.Dsubprog (subprog_sig_of_sexp s)
  | S.List [ S.Atom "component"; S.Atom name; S.List generics; S.List ports ] ->
    Denot.Dcomponent
      {
        name;
        generics = List.map generic_of_sexp generics;
        ports = List.map port_of_sexp ports;
      }
  | S.List [ S.Atom "attrdecl"; S.Atom name; ty ] ->
    Denot.Dattr_decl { name; ty = ty_of_sexp ty }
  | S.List [ S.Atom "attrval"; S.Atom of_name; S.Atom attr; value; ty ] ->
    Denot.Dattr_value
      { of_name; attr; value = value_of_sexp value; ty = ty_of_sexp ty }
  | S.List [ S.Atom "unit"; S.Atom library; S.Atom unit_name ] ->
    Denot.Dunit { library; unit_name }
  | S.List [ S.Atom "library"; S.Atom l ] -> Denot.Dlibrary l
  | S.List [ S.Atom "label"; S.Atom l ] -> Denot.Dlabel l
  | S.List [ S.Atom "physunit"; ty; scale; S.Atom image ] ->
    Denot.Dphys_unit { ty = ty_of_sexp ty; scale = S.to_int scale; image }
  | _ -> fail "bad denotation: %s" (S.to_string sexp)

(* ------------------------------------------------------------------ *)
(* Unit structures *)

let sexp_of_signal_decl (sd : Kir.signal_decl) =
  S.List
    [
      S.Atom sd.Kir.sd_name;
      sexp_of_ty sd.Kir.sd_ty;
      sexp_of_opt sexp_of_expr sd.Kir.sd_init;
      sexp_of_opt (fun (Kir.F_user f) -> S.Atom f) sd.Kir.sd_resolution;
      S.Atom
        (match sd.Kir.sd_kind with `Plain -> "plain" | `Bus -> "bus" | `Register -> "register");
      sexp_of_opt sexp_of_expr sd.Kir.sd_disconnect;
    ]

let signal_decl_of_sexp = function
  | S.List [ S.Atom name; ty; init; resolution; S.Atom kind; disc ] ->
    {
      Kir.sd_name = name;
      sd_ty = ty_of_sexp ty;
      sd_init = opt_of_sexp expr_of_sexp init;
      sd_resolution = opt_of_sexp (fun s -> Kir.F_user (S.to_atom s)) resolution;
      sd_kind =
        (match kind with
        | "bus" -> `Bus
        | "register" -> `Register
        | _ -> `Plain);
      sd_disconnect = opt_of_sexp expr_of_sexp disc;
    }
  | _ -> fail "bad signal declaration"

let sexp_of_local (l : Kir.local) =
  S.List [ S.Atom l.Kir.l_name; sexp_of_ty l.Kir.l_ty; sexp_of_opt sexp_of_expr l.Kir.l_init ]

let local_of_sexp = function
  | S.List [ S.Atom name; ty; init ] ->
    { Kir.l_name = name; l_ty = ty_of_sexp ty; l_init = opt_of_sexp expr_of_sexp init }
  | _ -> fail "bad local"

let sexp_of_subprogram (s : Kir.subprogram) =
  S.record "body"
    [
      ("name", S.Atom s.Kir.sub_name);
      ("kind", S.Atom (match s.Kir.sub_kind with `Function -> "function" | `Procedure -> "procedure"));
      ("params", S.List (List.map sexp_of_local s.Kir.sub_params));
      ("modes", S.List (List.map sexp_of_arg_mode s.Kir.sub_param_modes));
      ("locals", S.List (List.map sexp_of_local s.Kir.sub_locals));
      ("ret", sexp_of_opt sexp_of_ty s.Kir.sub_ret);
      ("level", S.int s.Kir.sub_level);
      ("body", sexp_of_stmts s.Kir.sub_body);
    ]

let subprogram_of_sexp sexp =
  let tag, fields = S.untag sexp in
  if tag <> "body" then fail "expected subprogram body";
  {
    Kir.sub_name = S.to_atom (S.field "name" fields);
    sub_kind =
      (match S.to_atom (S.field "kind" fields) with
      | "function" -> `Function
      | _ -> `Procedure);
    sub_params = List.map local_of_sexp (S.to_list (S.field "params" fields));
    sub_param_modes = List.map arg_mode_of_sexp (S.to_list (S.field "modes" fields));
    sub_locals = List.map local_of_sexp (S.to_list (S.field "locals" fields));
    sub_ret = opt_of_sexp ty_of_sexp (S.field "ret" fields);
    sub_level = S.to_int (S.field "level" fields);
    sub_body = stmts_of_sexp (S.field "body" fields);
  }

let sexp_of_process (p : Kir.process) =
  S.record "process"
    [
      ("label", S.Atom p.Kir.proc_label);
      ("sensitivity", S.List (List.map sexp_of_sref p.Kir.proc_sensitivity));
      ("locals", S.List (List.map sexp_of_local p.Kir.proc_locals));
      ("body", sexp_of_stmts p.Kir.proc_body);
      ("postponed_wait", S.bool p.Kir.proc_postponed_wait);
    ]

let process_of_sexp sexp =
  let tag, fields = S.untag sexp in
  if tag <> "process" then fail "expected process";
  {
    Kir.proc_label = S.to_atom (S.field "label" fields);
    proc_sensitivity = List.map sref_of_sexp (S.to_list (S.field "sensitivity" fields));
    proc_locals = List.map local_of_sexp (S.to_list (S.field "locals" fields));
    proc_body = stmts_of_sexp (S.field "body" fields);
    proc_postponed_wait = S.to_bool (S.field "postponed_wait" fields);
  }

let sexp_of_actual = function
  | Kir.Act_open -> S.Atom "open"
  | Kir.Act_expr e -> S.List [ S.Atom "expr"; sexp_of_expr e ]
  | Kir.Act_signal sref -> S.List [ S.Atom "signal"; sexp_of_sref sref ]
  | Kir.Act_signal_slice (sref, (lo, d, hi)) ->
    S.List
      [
        S.Atom "slice"; sexp_of_sref sref; sexp_of_expr lo;
        S.Atom (match d with Types.To -> "to" | Types.Downto -> "downto");
        sexp_of_expr hi;
      ]
  | Kir.Act_signal_index (sref, ix) ->
    S.List [ S.Atom "sigindex"; sexp_of_sref sref; sexp_of_expr ix ]

let actual_of_sexp = function
  | S.List [ S.Atom "slice"; sref; lo; S.Atom d; hi ] ->
    Kir.Act_signal_slice
      ( sref_of_sexp sref,
        ( expr_of_sexp lo,
          (if d = "downto" then Types.Downto else Types.To),
          expr_of_sexp hi ) )
  | S.Atom "open" -> Kir.Act_open
  | S.List [ S.Atom "expr"; e ] -> Kir.Act_expr (expr_of_sexp e)
  | S.List [ S.Atom "signal"; sref ] -> Kir.Act_signal (sref_of_sexp sref)
  | S.List [ S.Atom "sigindex"; sref; ix ] ->
    Kir.Act_signal_index (sref_of_sexp sref, expr_of_sexp ix)
  | _ -> fail "bad actual"

let sexp_of_map m =
  S.List (List.map (fun (f, a) -> S.List [ S.Atom f; sexp_of_actual a ]) m)

let map_of_sexp = function
  | S.List items ->
    List.map
      (fun i ->
        match i with
        | S.List [ S.Atom f; a ] -> (f, actual_of_sexp a)
        | _ -> fail "bad association")
      items
  | _ -> fail "bad association list"

let rec sexp_of_concurrent (c : Kir.concurrent) =
  match c with
  | Kir.C_process p -> S.List [ S.Atom "process"; sexp_of_process p ]
  | Kir.C_instance i ->
    S.List
      [
        S.Atom "instance"; S.Atom i.Kir.inst_label; S.Atom i.Kir.inst_component;
        sexp_of_map i.Kir.inst_generic_map; sexp_of_map i.Kir.inst_port_map;
      ]
  | Kir.C_block { blk_label; blk_guard; blk_body } ->
    S.List
      [
        S.Atom "block"; S.Atom blk_label; sexp_of_opt sexp_of_expr blk_guard;
        S.List (List.map sexp_of_concurrent blk_body);
      ]
  | Kir.C_generate { gen_label; gen_var; gen_range = l, d, r; gen_body } ->
    S.List
      [
        S.Atom "generate"; S.Atom gen_label; S.Atom gen_var; sexp_of_expr l;
        sexp_of_dir d; sexp_of_expr r;
        S.List (List.map sexp_of_concurrent gen_body);
      ]
  | Kir.C_if_generate { ig_label; ig_cond; ig_body } ->
    S.List
      [
        S.Atom "ifgenerate"; S.Atom ig_label; sexp_of_expr ig_cond;
        S.List (List.map sexp_of_concurrent ig_body);
      ]

let rec concurrent_of_sexp sexp : Kir.concurrent =
  match sexp with
  | S.List [ S.Atom "process"; p ] -> Kir.C_process (process_of_sexp p)
  | S.List [ S.Atom "instance"; S.Atom label; S.Atom comp; gmap; pmap ] ->
    Kir.C_instance
      {
        Kir.inst_label = label;
        inst_component = comp;
        inst_generic_map = map_of_sexp gmap;
        inst_port_map = map_of_sexp pmap;
      }
  | S.List [ S.Atom "block"; S.Atom label; guard; S.List body ] ->
    Kir.C_block
      {
        blk_label = label;
        blk_guard = opt_of_sexp expr_of_sexp guard;
        blk_body = List.map concurrent_of_sexp body;
      }
  | S.List [ S.Atom "generate"; S.Atom label; S.Atom var; l; d; r; S.List body ] ->
    Kir.C_generate
      {
        gen_label = label;
        gen_var = var;
        gen_range = (expr_of_sexp l, dir_of_sexp d, expr_of_sexp r);
        gen_body = List.map concurrent_of_sexp body;
      }
  | S.List [ S.Atom "ifgenerate"; S.Atom label; cond; S.List body ] ->
    Kir.C_if_generate
      {
        ig_label = label;
        ig_cond = expr_of_sexp cond;
        ig_body = List.map concurrent_of_sexp body;
      }
  | _ -> fail "bad concurrent statement"

let sexp_of_config_spec (cs : Unit_info.config_spec) =
  S.List
    [
      (match cs.Unit_info.cs_scope with
      | `Labels ls -> S.List (S.Atom "labels" :: List.map S.atom ls)
      | `All -> S.Atom "all"
      | `Others -> S.Atom "others");
      S.Atom cs.Unit_info.cs_component;
      S.Atom cs.Unit_info.cs_binding.Unit_info.b_library;
      S.Atom cs.Unit_info.cs_binding.Unit_info.b_entity;
      sexp_of_opt S.atom cs.Unit_info.cs_binding.Unit_info.b_arch;
    ]

let config_spec_of_sexp = function
  | S.List [ scope; S.Atom comp; S.Atom lib; S.Atom ent; arch ] ->
    {
      Unit_info.cs_scope =
        (match scope with
        | S.List (S.Atom "labels" :: ls) -> `Labels (List.map S.to_atom ls)
        | S.Atom "all" -> `All
        | _ -> `Others);
      cs_component = comp;
      cs_binding =
        {
          Unit_info.b_library = lib;
          b_entity = ent;
          b_arch = opt_of_sexp S.to_atom arch;
        };
    }
  | _ -> fail "bad configuration specification"

(* ------------------------------------------------------------------ *)
(* Design units *)

let sexp_of_info (info : Unit_info.info) =
  match info with
  | Unit_info.Uentity en ->
    S.record "entity"
      [
        ("name", S.Atom en.Unit_info.en_name);
        ("generics", S.List (List.map sexp_of_generic en.Unit_info.en_generics));
        ("ports", S.List (List.map sexp_of_port en.Unit_info.en_ports));
        ( "context",
          S.List
            (List.map
               (fun (n, d) -> S.List [ S.Atom n; sexp_of_denot d ])
               en.Unit_info.en_context) );
      ]
  | Unit_info.Uarch ar ->
    S.record "architecture"
      [
        ("name", S.Atom ar.Unit_info.ar_name);
        ("entity", S.Atom ar.Unit_info.ar_entity);
        ( "constants",
          S.List
            (List.map
               (fun (n, ty, e) -> S.List [ S.Atom n; sexp_of_ty ty; sexp_of_expr e ])
               ar.Unit_info.ar_constants) );
        ("signals", S.List (List.map sexp_of_signal_decl ar.Unit_info.ar_signals));
        ( "components",
          S.List
            (List.map
               (fun (n, g, p) ->
                 S.List
                   [ S.Atom n; S.List (List.map sexp_of_generic g); S.List (List.map sexp_of_port p) ])
               ar.Unit_info.ar_components) );
        ("subprograms", S.List (List.map sexp_of_subprogram ar.Unit_info.ar_subprograms));
        ("body", S.List (List.map sexp_of_concurrent ar.Unit_info.ar_body));
        ("configspecs", S.List (List.map sexp_of_config_spec ar.Unit_info.ar_config_specs));
      ]
  | Unit_info.Upackage pk ->
    S.record "package"
      [
        ("name", S.Atom pk.Unit_info.pk_name);
        ( "exports",
          S.List
            (List.map
               (fun (n, d) -> S.List [ S.Atom n; sexp_of_denot d ])
               pk.Unit_info.pk_exports) );
        ("signals", S.List (List.map sexp_of_signal_decl pk.Unit_info.pk_signals));
        ( "subprogdecls",
          S.List (List.map sexp_of_subprog_sig pk.Unit_info.pk_subprogram_decls) );
      ]
  | Unit_info.Upackage_body pb ->
    S.record "packagebody"
      [
        ("name", S.Atom pb.Unit_info.pb_name);
        ("subprograms", S.List (List.map sexp_of_subprogram pb.Unit_info.pb_subprograms));
        ( "deferred",
          S.List
            (List.map
               (fun (n, v) -> S.List [ S.Atom n; Vif.sexp_of_value v ])
               pb.Unit_info.pb_deferred) );
      ]
  | Unit_info.Uconfig cf ->
    S.record "configuration"
      [
        ("name", S.Atom cf.Unit_info.cf_name);
        ("entity", S.Atom cf.Unit_info.cf_entity);
        ("arch", S.Atom cf.Unit_info.cf_arch);
        ("specs", S.List (List.map sexp_of_config_spec cf.Unit_info.cf_specs));
      ]

let info_of_sexp sexp : Unit_info.info =
  let tag, fields = S.untag sexp in
  match tag with
  | "entity" ->
    Unit_info.Uentity
      {
        Unit_info.en_name = S.to_atom (S.field "name" fields);
        en_generics = List.map generic_of_sexp (S.to_list (S.field "generics" fields));
        en_ports = List.map port_of_sexp (S.to_list (S.field "ports" fields));
        en_context =
          (match S.field_opt "context" fields with
          | None -> []
          | Some ctx ->
            List.map
              (fun e ->
                match e with
                | S.List [ S.Atom n; d ] -> (n, denot_of_sexp d)
                | _ -> fail "bad context binding")
              (S.to_list ctx));
      }
  | "architecture" ->
    Unit_info.Uarch
      {
        Unit_info.ar_name = S.to_atom (S.field "name" fields);
        ar_entity = S.to_atom (S.field "entity" fields);
        ar_constants =
          List.map
            (fun c ->
              match c with
              | S.List [ S.Atom n; ty; e ] -> (n, ty_of_sexp ty, expr_of_sexp e)
              | _ -> fail "bad architecture constant")
            (S.to_list (S.field "constants" fields));
        ar_signals = List.map signal_decl_of_sexp (S.to_list (S.field "signals" fields));
        ar_components =
          List.map
            (fun c ->
              match c with
              | S.List [ S.Atom n; S.List g; S.List p ] ->
                (n, List.map generic_of_sexp g, List.map port_of_sexp p)
              | _ -> fail "bad component")
            (S.to_list (S.field "components" fields));
        ar_subprograms =
          List.map subprogram_of_sexp (S.to_list (S.field "subprograms" fields));
        ar_body = List.map concurrent_of_sexp (S.to_list (S.field "body" fields));
        ar_config_specs =
          List.map config_spec_of_sexp (S.to_list (S.field "configspecs" fields));
      }
  | "package" ->
    Unit_info.Upackage
      {
        Unit_info.pk_name = S.to_atom (S.field "name" fields);
        pk_exports =
          List.map
            (fun e ->
              match e with
              | S.List [ S.Atom n; d ] -> (n, denot_of_sexp d)
              | _ -> fail "bad export")
            (S.to_list (S.field "exports" fields));
        pk_signals = List.map signal_decl_of_sexp (S.to_list (S.field "signals" fields));
        pk_subprogram_decls =
          List.map subprog_sig_of_sexp (S.to_list (S.field "subprogdecls" fields));
      }
  | "packagebody" ->
    Unit_info.Upackage_body
      {
        Unit_info.pb_name = S.to_atom (S.field "name" fields);
        pb_subprograms =
          List.map subprogram_of_sexp (S.to_list (S.field "subprograms" fields));
        pb_deferred =
          List.map
            (fun x ->
              match S.to_list x with
              | [ n; v ] -> (S.to_atom n, Vif.value_of_sexp v)
              | _ -> failwith "deferred constant entry")
            (S.to_list (S.field "deferred" fields));
      }
  | "configuration" ->
    Unit_info.Uconfig
      {
        Unit_info.cf_name = S.to_atom (S.field "name" fields);
        cf_entity = S.to_atom (S.field "entity" fields);
        cf_arch = S.to_atom (S.field "arch" fields);
        cf_specs = List.map config_spec_of_sexp (S.to_list (S.field "specs" fields));
      }
  | t -> fail "unknown unit tag %s" t

let sexp_of_unit (u : Unit_info.compiled_unit) =
  S.record "vif"
    [
      ("library", S.Atom u.Unit_info.u_library);
      ("key", S.Atom u.Unit_info.u_key);
      ("info", sexp_of_info u.Unit_info.u_info);
      ( "deps",
        S.List (List.map (fun (l, k) -> S.List [ S.Atom l; S.Atom k ]) u.Unit_info.u_deps) );
      ("source_lines", S.int u.Unit_info.u_source_lines);
      ("sequence", S.int u.Unit_info.u_sequence);
    ]

let unit_of_sexp sexp : Unit_info.compiled_unit =
  let tag, fields = S.untag sexp in
  if tag <> "vif" then fail "expected a VIF unit";
  {
    Unit_info.u_library = S.to_atom (S.field "library" fields);
    u_key = S.to_atom (S.field "key" fields);
    u_info = info_of_sexp (S.field "info" fields);
    u_deps =
      List.map
        (fun d ->
          match d with
          | S.List [ S.Atom l; S.Atom k ] -> (l, k)
          | _ -> fail "bad dependency")
        (S.to_list (S.field "deps" fields));
    u_source_lines = S.to_int (S.field "source_lines" fields);
    u_sequence = S.to_int (S.field "sequence" fields);
  }

(** Serialize a unit to its VIF text. *)
let to_string u = S.to_string (sexp_of_unit u)

(** The paper's human-readable VIF dump. *)
let to_string_indented u = S.to_string_indented (sexp_of_unit u)

let of_string s = wrap_decode unit_of_sexp (S.of_string s)
