(** VIF — the VHDL Intermediate Format (paper §2.2, §4.3).

    "Our compiler supports a machine-readable intermediate language that is
    generated for each separately-compilable unit and read in when that unit
    is referenced from another."

    The concrete syntax is s-expressions; {!to_string_indented} provides the
    paper's "human-readable form of the VIF (used for both debugging and
    documentation)".  Like the original, VIF values are applicative: they
    are built by attribute evaluation and never mutated. *)

module S = Vhdl_util.Sexp

exception Vif_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Vif_error s)) fmt

let wrap_decode f sexp =
  try f sexp with
  | S.Decode_error m -> fail "VIF decode error: %s" m
  | Failure m -> fail "VIF decode error: %s" m

(* ------------------------------------------------------------------ *)
(* Types *)

let rec sexp_of_ty (t : Types.t) =
  let kind =
    match t.Types.kind with
    | Types.Kint -> S.List [ S.Atom "int" ]
    | Types.Kfloat -> S.List [ S.Atom "float" ]
    | Types.Kenum lits ->
      S.List (S.Atom "enum" :: List.map S.atom (Array.to_list lits))
    | Types.Kphys units ->
      S.List
        (S.Atom "phys"
        :: List.map (fun (u, scale) -> S.List [ S.Atom u; S.int scale ]) units)
    | Types.Karray { index; elem } ->
      S.List [ S.Atom "array"; sexp_of_ty index; sexp_of_ty elem ]
    | Types.Krecord fields ->
      S.List
        (S.Atom "record"
        :: List.map (fun (n, ft) -> S.List [ S.Atom n; sexp_of_ty ft ]) fields)
    | Types.Kaccess designated -> S.List [ S.Atom "access"; sexp_of_ty designated ]
  in
  let constr =
    match t.Types.constr with
    | None -> []
    | Some (Types.Crange (l, d, r)) ->
      [ S.List [ S.Atom "range"; S.int l; sexp_of_dir d; S.int r ] ]
    | Some (Types.Cfloat_range (l, d, r)) ->
      [
        S.List
          [
            S.Atom "frange"; S.Atom (string_of_float l); sexp_of_dir d;
            S.Atom (string_of_float r);
          ];
      ]
  in
  S.List ((S.Atom t.Types.base :: kind :: constr))

and sexp_of_dir = function
  | Types.To -> S.Atom "to"
  | Types.Downto -> S.Atom "downto"

let dir_of_sexp s =
  match S.to_atom s with
  | "to" -> Types.To
  | "downto" -> Types.Downto
  | d -> fail "bad direction %s" d

let rec ty_of_sexp sexp =
  match sexp with
  | S.List (S.Atom base :: kind :: rest) ->
    let k =
      match kind with
      | S.List [ S.Atom "int" ] -> Types.Kint
      | S.List [ S.Atom "float" ] -> Types.Kfloat
      | S.List (S.Atom "enum" :: lits) ->
        Types.Kenum (Array.of_list (List.map S.to_atom lits))
      | S.List (S.Atom "phys" :: units) ->
        Types.Kphys
          (List.map
             (fun u ->
               match u with
               | S.List [ S.Atom name; scale ] -> (name, S.to_int scale)
               | _ -> fail "bad physical unit")
             units)
      | S.List [ S.Atom "array"; index; elem ] ->
        Types.Karray { index = ty_of_sexp index; elem = ty_of_sexp elem }
      | S.List [ S.Atom "access"; designated ] -> Types.Kaccess (ty_of_sexp designated)
      | S.List (S.Atom "record" :: fields) ->
        Types.Krecord
          (List.map
             (fun f ->
               match f with
               | S.List [ S.Atom n; ft ] -> (n, ty_of_sexp ft)
               | _ -> fail "bad record field")
             fields)
      | _ -> fail "bad type kind"
    in
    let constr =
      match rest with
      | [] -> None
      | [ S.List [ S.Atom "range"; l; d; r ] ] ->
        Some (Types.Crange (S.to_int l, dir_of_sexp d, S.to_int r))
      | [ S.List [ S.Atom "frange"; S.Atom l; d; S.Atom r ] ] ->
        Some (Types.Cfloat_range (float_of_string l, dir_of_sexp d, float_of_string r))
      | _ -> fail "bad type constraint"
    in
    { Types.base; kind = k; constr }
  | _ -> fail "bad type"

(* ------------------------------------------------------------------ *)
(* Values *)

let rec sexp_of_value (v : Value.t) =
  match v with
  | Value.Vint n -> S.List [ S.Atom "i"; S.int n ]
  | Value.Vfloat x -> S.List [ S.Atom "f"; S.Atom (string_of_float x) ]
  | Value.Venum n -> S.List [ S.Atom "e"; S.int n ]
  | Value.Vphys n -> S.List [ S.Atom "p"; S.int n ]
  | Value.Varray { bounds = l, d, r; elems } ->
    S.List
      (S.Atom "a" :: S.int l :: sexp_of_dir d :: S.int r
      :: List.map sexp_of_value (Array.to_list elems))
  | Value.Vrecord fields ->
    S.List
      (S.Atom "r"
      :: List.map (fun (n, fv) -> S.List [ S.Atom n; sexp_of_value fv ]) fields)
  | Value.Vnull -> S.Atom "null"
  | Value.Vaccess _ ->
    (* access values are variable-local and never reach the VIF; a constant
       folded to one would be a front-end bug *)
    failwith "Vif: access values are not serializable"

let rec value_of_sexp sexp =
  match sexp with
  | S.Atom "null" -> Value.Vnull
  | S.List [ S.Atom "i"; n ] -> Value.Vint (S.to_int n)
  | S.List [ S.Atom "f"; S.Atom x ] -> Value.Vfloat (float_of_string x)
  | S.List [ S.Atom "e"; n ] -> Value.Venum (S.to_int n)
  | S.List [ S.Atom "p"; n ] -> Value.Vphys (S.to_int n)
  | S.List (S.Atom "a" :: l :: d :: r :: elems) ->
    Value.Varray
      {
        bounds = (S.to_int l, dir_of_sexp d, S.to_int r);
        elems = Array.of_list (List.map value_of_sexp elems);
      }
  | S.List (S.Atom "r" :: fields) ->
    Value.Vrecord
      (List.map
         (fun f ->
           match f with
           | S.List [ S.Atom n; fv ] -> (n, value_of_sexp fv)
           | _ -> fail "bad record value field")
         fields)
  | _ -> fail "bad value"

(* ------------------------------------------------------------------ *)
(* KIR expressions and statements *)

let sexp_of_sref = function
  | Kir.Sig_local i -> S.List [ S.Atom "local"; S.int i ]
  | Kir.Sig_guard -> S.Atom "guard"
  | Kir.Sig_global { package; name } -> S.List [ S.Atom "global"; S.Atom package; S.Atom name ]
  | Kir.Sig_param i -> S.List [ S.Atom "param"; S.int i ]

let sref_of_sexp = function
  | S.List [ S.Atom "local"; i ] -> Kir.Sig_local (S.to_int i)
  | S.Atom "guard" -> Kir.Sig_guard
  | S.List [ S.Atom "param"; i ] -> Kir.Sig_param (S.to_int i)
  | S.List [ S.Atom "global"; S.Atom package; S.Atom name ] ->
    Kir.Sig_global { package; name }
  | _ -> fail "bad signal reference"

let binop_names =
  [
    (Kir.Band, "and"); (Kir.Bor, "or"); (Kir.Bnand, "nand"); (Kir.Bnor, "nor");
    (Kir.Bxor, "xor"); (Kir.Beq, "eq"); (Kir.Bneq, "neq"); (Kir.Blt, "lt");
    (Kir.Ble, "le"); (Kir.Bgt, "gt"); (Kir.Bge, "ge"); (Kir.Badd, "add");
    (Kir.Bsub, "sub"); (Kir.Bconcat, "concat"); (Kir.Bmul, "mul"); (Kir.Bdiv, "div");
    (Kir.Bmod, "mod"); (Kir.Brem, "rem"); (Kir.Bexp, "exp");
  ]

let binop_of_name n =
  match List.find_opt (fun (_, s) -> s = n) binop_names with
  | Some (op, _) -> op
  | None -> fail "bad binop %s" n

let unop_names = [ (Kir.Uneg, "neg"); (Kir.Uplus, "plus"); (Kir.Uabs, "abs"); (Kir.Unot, "not") ]

let sattr_names =
  [ (Kir.Sa_event, "event"); (Kir.Sa_active, "active"); (Kir.Sa_last_value, "last_value");
    (Kir.Sa_stable, "stable"); (Kir.Sa_last_event, "last_event") ]

let aattr_names =
  [ (Kir.At_left, "left"); (Kir.At_right, "right"); (Kir.At_high, "high");
    (Kir.At_low, "low"); (Kir.At_length, "length") ]

let sexp_of_opt f = function
  | None -> S.Atom "none"
  | Some x -> S.List [ S.Atom "some"; f x ]

let opt_of_sexp f = function
  | S.Atom "none" -> None
  | S.List [ S.Atom "some"; x ] -> Some (f x)
  | _ -> fail "bad option"

let rec sexp_of_expr (e : Kir.expr) =
  match e with
  | Kir.Elit v -> S.List [ S.Atom "lit"; sexp_of_value v ]
  | Kir.Enull -> S.Atom "enull"
  | Kir.Enew (ty, init) ->
    S.List [ S.Atom "new"; sexp_of_ty ty; sexp_of_opt sexp_of_expr init ]
  | Kir.Ederef a -> S.List [ S.Atom "deref"; sexp_of_expr a ]
  | Kir.Evar { level; index; name } ->
    S.List [ S.Atom "var"; S.int level; S.int index; S.Atom name ]
  | Kir.Egeneric { index; name } -> S.List [ S.Atom "generic"; S.int index; S.Atom name ]
  | Kir.Eunit_const { name } -> S.List [ S.Atom "uconst"; S.Atom name ]
  | Kir.Esig sref -> S.List [ S.Atom "sig"; sexp_of_sref sref ]
  | Kir.Esig_attr (sref, a) ->
    S.List [ S.Atom "sattr"; sexp_of_sref sref; S.Atom (List.assoc a sattr_names) ]
  | Kir.Ebin (op, a, b) ->
    S.List [ S.Atom "bin"; S.Atom (List.assoc op binop_names); sexp_of_expr a; sexp_of_expr b ]
  | Kir.Eun (op, a) -> S.List [ S.Atom "un"; S.Atom (List.assoc op unop_names); sexp_of_expr a ]
  | Kir.Eindex (a, i) -> S.List [ S.Atom "index"; sexp_of_expr a; sexp_of_expr i ]
  | Kir.Eslice (a, (l, d, r)) ->
    S.List [ S.Atom "slice"; sexp_of_expr a; sexp_of_expr l; sexp_of_dir d; sexp_of_expr r ]
  | Kir.Efield (a, f) -> S.List [ S.Atom "field"; sexp_of_expr a; S.Atom f ]
  | Kir.Eaggregate (els, shape) ->
    S.List
      [
        S.Atom "agg";
        S.List
          (List.map
             (fun el ->
               match el with
               | Kir.Ag_pos e -> S.List [ S.Atom "pos"; sexp_of_expr e ]
               | Kir.Ag_named (i, e) -> S.List [ S.Atom "named"; S.int i; sexp_of_expr e ]
               | Kir.Ag_field (f, e) -> S.List [ S.Atom "fld"; S.Atom f; sexp_of_expr e ]
               | Kir.Ag_others e -> S.List [ S.Atom "others"; sexp_of_expr e ])
             els);
        (match shape with
        | Kir.Sh_array None -> S.List [ S.Atom "array" ]
        | Kir.Sh_array (Some (l, d, r)) ->
          S.List [ S.Atom "array"; S.int l; sexp_of_dir d; S.int r ]
        | Kir.Sh_record fields -> S.List (S.Atom "record" :: List.map S.atom fields));
      ]
  | Kir.Ecall (Kir.F_user f, args) ->
    S.List (S.Atom "call" :: S.Atom f :: List.map sexp_of_expr args)
  | Kir.Econvert (c, a) ->
    let cs =
      match c with
      | Kir.To_integer -> S.Atom "to_int"
      | Kir.To_float -> S.Atom "to_float"
      | Kir.To_pos -> S.Atom "to_pos"
      | Kir.To_val ty -> S.List [ S.Atom "to_val"; sexp_of_ty ty ]
    in
    S.List [ S.Atom "conv"; cs; sexp_of_expr a ]
  | Kir.Earray_attr (a, at) ->
    S.List [ S.Atom "aattr"; sexp_of_expr a; S.Atom (List.assoc at aattr_names) ]

let rec expr_of_sexp sexp : Kir.expr =
  match sexp with
  | S.Atom "enull" -> Kir.Enull
  | S.List [ S.Atom "new"; ty; init ] ->
    Kir.Enew (ty_of_sexp ty, opt_of_sexp expr_of_sexp init)
  | S.List [ S.Atom "deref"; a ] -> Kir.Ederef (expr_of_sexp a)
  | S.List [ S.Atom "lit"; v ] -> Kir.Elit (value_of_sexp v)
  | S.List [ S.Atom "var"; level; index; S.Atom name ] ->
    Kir.Evar { level = S.to_int level; index = S.to_int index; name }
  | S.List [ S.Atom "generic"; index; S.Atom name ] ->
    Kir.Egeneric { index = S.to_int index; name }
  | S.List [ S.Atom "uconst"; S.Atom name ] -> Kir.Eunit_const { name }
  | S.List [ S.Atom "sig"; sref ] -> Kir.Esig (sref_of_sexp sref)
  | S.List [ S.Atom "sattr"; sref; S.Atom a ] ->
    let attr =
      match List.find_opt (fun (_, n) -> n = a) sattr_names with
      | Some (at, _) -> at
      | None -> fail "bad signal attribute %s" a
    in
    Kir.Esig_attr (sref_of_sexp sref, attr)
  | S.List [ S.Atom "bin"; S.Atom op; a; b ] ->
    Kir.Ebin (binop_of_name op, expr_of_sexp a, expr_of_sexp b)
  | S.List [ S.Atom "un"; S.Atom op; a ] ->
    let u =
      match List.find_opt (fun (_, n) -> n = op) unop_names with
      | Some (u, _) -> u
      | None -> fail "bad unop %s" op
    in
    Kir.Eun (u, expr_of_sexp a)
  | S.List [ S.Atom "index"; a; i ] -> Kir.Eindex (expr_of_sexp a, expr_of_sexp i)
  | S.List [ S.Atom "slice"; a; l; d; r ] ->
    Kir.Eslice (expr_of_sexp a, (expr_of_sexp l, dir_of_sexp d, expr_of_sexp r))
  | S.List [ S.Atom "field"; a; S.Atom f ] -> Kir.Efield (expr_of_sexp a, f)
  | S.List [ S.Atom "agg"; S.List els; shape ] ->
    let els =
      List.map
        (fun el ->
          match el with
          | S.List [ S.Atom "pos"; e ] -> Kir.Ag_pos (expr_of_sexp e)
          | S.List [ S.Atom "named"; i; e ] -> Kir.Ag_named (S.to_int i, expr_of_sexp e)
          | S.List [ S.Atom "fld"; S.Atom f; e ] -> Kir.Ag_field (f, expr_of_sexp e)
          | S.List [ S.Atom "others"; e ] -> Kir.Ag_others (expr_of_sexp e)
          | _ -> fail "bad aggregate element")
        els
    in
    let shape =
      match shape with
      | S.List [ S.Atom "array" ] -> Kir.Sh_array None
      | S.List [ S.Atom "array"; l; d; r ] ->
        Kir.Sh_array (Some (S.to_int l, dir_of_sexp d, S.to_int r))
      | S.List (S.Atom "record" :: fields) -> Kir.Sh_record (List.map S.to_atom fields)
      | _ -> fail "bad aggregate shape"
    in
    Kir.Eaggregate (els, shape)
  | S.List (S.Atom "call" :: S.Atom f :: args) ->
    Kir.Ecall (Kir.F_user f, List.map expr_of_sexp args)
  | S.List [ S.Atom "conv"; cs; a ] ->
    let c =
      match cs with
      | S.Atom "to_int" -> Kir.To_integer
      | S.Atom "to_float" -> Kir.To_float
      | S.Atom "to_pos" -> Kir.To_pos
      | S.List [ S.Atom "to_val"; ty ] -> Kir.To_val (ty_of_sexp ty)
      | _ -> fail "bad conversion"
    in
    Kir.Econvert (c, expr_of_sexp a)
  | S.List [ S.Atom "aattr"; a; S.Atom at ] ->
    let attr =
      match List.find_opt (fun (_, n) -> n = at) aattr_names with
      | Some (x, _) -> x
      | None -> fail "bad array attribute %s" at
    in
    Kir.Earray_attr (expr_of_sexp a, attr)
  | _ -> fail "bad expression: %s" (S.to_string sexp)

let rec sexp_of_target (t : Kir.target) =
  match t with
  | Kir.Tvar { level; index; name } ->
    S.List [ S.Atom "tvar"; S.int level; S.int index; S.Atom name ]
  | Kir.Tindex (t', i) -> S.List [ S.Atom "tindex"; sexp_of_target t'; sexp_of_expr i ]
  | Kir.Tslice (t', (l, d, r)) ->
    S.List [ S.Atom "tslice"; sexp_of_target t'; sexp_of_expr l; sexp_of_dir d; sexp_of_expr r ]
  | Kir.Tfield (t', f) -> S.List [ S.Atom "tfield"; sexp_of_target t'; S.Atom f ]
  | Kir.Tderef t' -> S.List [ S.Atom "tderef"; sexp_of_target t' ]

let rec target_of_sexp sexp : Kir.target =
  match sexp with
  | S.List [ S.Atom "tderef"; t ] -> Kir.Tderef (target_of_sexp t)
  | S.List [ S.Atom "tvar"; level; index; S.Atom name ] ->
    Kir.Tvar { level = S.to_int level; index = S.to_int index; name }
  | S.List [ S.Atom "tindex"; t; i ] -> Kir.Tindex (target_of_sexp t, expr_of_sexp i)
  | S.List [ S.Atom "tslice"; t; l; d; r ] ->
    Kir.Tslice (target_of_sexp t, (expr_of_sexp l, dir_of_sexp d, expr_of_sexp r))
  | S.List [ S.Atom "tfield"; t; S.Atom f ] -> Kir.Tfield (target_of_sexp t, f)
  | _ -> fail "bad target"

let rec sexp_of_sig_target (t : Kir.sig_target) =
  match t with
  | Kir.Ts_sig sref -> S.List [ S.Atom "ssig"; sexp_of_sref sref ]
  | Kir.Ts_index (t', i) -> S.List [ S.Atom "sindex"; sexp_of_sig_target t'; sexp_of_expr i ]
  | Kir.Ts_slice (t', (l, d, r)) ->
    S.List
      [ S.Atom "sslice"; sexp_of_sig_target t'; sexp_of_expr l; sexp_of_dir d; sexp_of_expr r ]
  | Kir.Ts_field (t', f) -> S.List [ S.Atom "sfield"; sexp_of_sig_target t'; S.Atom f ]

let rec sig_target_of_sexp sexp : Kir.sig_target =
  match sexp with
  | S.List [ S.Atom "ssig"; sref ] -> Kir.Ts_sig (sref_of_sexp sref)
  | S.List [ S.Atom "sindex"; t; i ] -> Kir.Ts_index (sig_target_of_sexp t, expr_of_sexp i)
  | S.List [ S.Atom "sslice"; t; l; d; r ] ->
    Kir.Ts_slice (sig_target_of_sexp t, (expr_of_sexp l, dir_of_sexp d, expr_of_sexp r))
  | S.List [ S.Atom "sfield"; t; S.Atom f ] -> Kir.Ts_field (sig_target_of_sexp t, f)
  | _ -> fail "bad signal target"

let rec sexp_of_stmt (st : Kir.stmt) =
  match st with
  | Kir.Snull -> S.Atom "null"
  | Kir.Sassign (t, e, ty) ->
    S.List [ S.Atom "assign"; sexp_of_target t; sexp_of_expr e; sexp_of_opt sexp_of_ty ty ]
  | Kir.Ssig_assign { target; mode; waveform; guarded; line } ->
    S.List
      [
        S.Atom "sassign";
        sexp_of_sig_target target;
        S.Atom (match mode with Kir.Inertial -> "inertial" | Kir.Transport -> "transport");
        S.List
          (List.map
             (fun (w : Kir.waveform_element) ->
               S.List
                 [
                   sexp_of_opt sexp_of_expr w.Kir.wv_value;
                   sexp_of_opt sexp_of_expr w.Kir.wv_after;
                 ])
             waveform);
        S.bool guarded;
        S.int line;
      ]
  | Kir.Sif (arms, els) ->
    S.List
      [
        S.Atom "if";
        S.List
          (List.map
             (fun (c, body) -> S.List [ sexp_of_expr c; sexp_of_stmts body ])
             arms);
        sexp_of_stmts els;
      ]
  | Kir.Scase (e, alts) ->
    S.List
      [
        S.Atom "case";
        sexp_of_expr e;
        S.List
          (List.map
             (fun (choices, body) ->
               S.List
                 [
                   S.List
                     (List.map
                        (fun c ->
                          match c with
                          | Kir.Ch_value v -> S.List [ S.Atom "v"; sexp_of_value v ]
                          | Kir.Ch_range (l, d, r) ->
                            S.List [ S.Atom "rng"; S.int l; sexp_of_dir d; S.int r ]
                          | Kir.Ch_others -> S.Atom "others")
                        choices);
                   sexp_of_stmts body;
                 ])
             alts);
      ]
  | Kir.Sfor { var; var_name; range = l, d, r; body; loop_label } ->
    S.List
      [
        S.Atom "for"; S.int var; S.Atom var_name; sexp_of_expr l; sexp_of_dir d;
        sexp_of_expr r; sexp_of_stmts body; sexp_of_opt S.atom loop_label;
      ]
  | Kir.Swhile (c, body, lbl) ->
    S.List [ S.Atom "while"; sexp_of_expr c; sexp_of_stmts body; sexp_of_opt S.atom lbl ]
  | Kir.Sloop (body, lbl) -> S.List [ S.Atom "loop"; sexp_of_stmts body; sexp_of_opt S.atom lbl ]
  | Kir.Sexit { cond; label } ->
    S.List [ S.Atom "exit"; sexp_of_opt sexp_of_expr cond; sexp_of_opt S.atom label ]
  | Kir.Snext { cond; label } ->
    S.List [ S.Atom "next"; sexp_of_opt sexp_of_expr cond; sexp_of_opt S.atom label ]
  | Kir.Swait { on; until; for_; line } ->
    S.List
      [
        S.Atom "wait";
        S.List (List.map sexp_of_sref on);
        sexp_of_opt sexp_of_expr until;
        sexp_of_opt sexp_of_expr for_;
        S.int line;
      ]
  | Kir.Sdisconnect t -> S.List [ S.Atom "disconnect"; sexp_of_sig_target t ]
  | Kir.Sreturn e -> S.List [ S.Atom "return"; sexp_of_opt sexp_of_expr e ]
  | Kir.Sassert { cond; report; severity; line } ->
    S.List
      [
        S.Atom "assert"; sexp_of_expr cond; sexp_of_opt sexp_of_expr report;
        sexp_of_opt sexp_of_expr severity; S.int line;
      ]
  | Kir.Scall (Kir.P_user p, args) ->
    S.List
      [
        S.Atom "pcall";
        S.Atom p;
        S.List
          (List.map
             (fun (a : Kir.call_arg) ->
               S.List
                 [
                   S.Atom
                     (match a.Kir.ca_mode with
                     | Kir.Arg_in -> "in"
                     | Kir.Arg_out -> "out"
                     | Kir.Arg_inout -> "inout");
                   sexp_of_expr a.Kir.ca_expr;
                   sexp_of_opt sexp_of_target a.Kir.ca_target;
                   sexp_of_opt sexp_of_sref a.Kir.ca_signal;
                 ])
             args);
      ]

and sexp_of_stmts body = S.List (List.map sexp_of_stmt body)

let arg_mode_of_sexp = function
  | S.Atom "in" -> Kir.Arg_in
  | S.Atom "out" -> Kir.Arg_out
  | S.Atom "inout" -> Kir.Arg_inout
  | _ -> fail "bad mode"

let sexp_of_arg_mode = function
  | Kir.Arg_in -> S.Atom "in"
  | Kir.Arg_out -> S.Atom "out"
  | Kir.Arg_inout -> S.Atom "inout"

let rec stmt_of_sexp sexp : Kir.stmt =
  match sexp with
  | S.Atom "null" -> Kir.Snull
  | S.List [ S.Atom "assign"; t; e; ty ] ->
    Kir.Sassign (target_of_sexp t, expr_of_sexp e, opt_of_sexp ty_of_sexp ty)
  | S.List [ S.Atom "sassign"; t; S.Atom mode; S.List waves; guarded; line ] ->
    Kir.Ssig_assign
      {
        target = sig_target_of_sexp t;
        mode = (if mode = "transport" then Kir.Transport else Kir.Inertial);
        waveform =
          List.map
            (fun w ->
              match w with
              | S.List [ v; after ] ->
                {
                  Kir.wv_value = opt_of_sexp expr_of_sexp v;
                  wv_after = opt_of_sexp expr_of_sexp after;
                }
              | _ -> fail "bad waveform element")
            waves;
        guarded = S.to_bool guarded;
        line = S.to_int line;
      }
  | S.List [ S.Atom "if"; S.List arms; els ] ->
    Kir.Sif
      ( List.map
          (fun arm ->
            match arm with
            | S.List [ c; body ] -> (expr_of_sexp c, stmts_of_sexp body)
            | _ -> fail "bad if arm")
          arms,
        stmts_of_sexp els )
  | S.List [ S.Atom "case"; e; S.List alts ] ->
    Kir.Scase
      ( expr_of_sexp e,
        List.map
          (fun alt ->
            match alt with
            | S.List [ S.List choices; body ] ->
              ( List.map
                  (fun c ->
                    match c with
                    | S.List [ S.Atom "v"; v ] -> Kir.Ch_value (value_of_sexp v)
                    | S.List [ S.Atom "rng"; l; d; r ] ->
                      Kir.Ch_range (S.to_int l, dir_of_sexp d, S.to_int r)
                    | S.Atom "others" -> Kir.Ch_others
                    | _ -> fail "bad choice")
                  choices,
                stmts_of_sexp body )
            | _ -> fail "bad case alternative")
          alts )
  | S.List [ S.Atom "for"; var; S.Atom var_name; l; d; r; body; lbl ] ->
    Kir.Sfor
      {
        var = S.to_int var;
        var_name;
        range = (expr_of_sexp l, dir_of_sexp d, expr_of_sexp r);
        body = stmts_of_sexp body;
        loop_label = opt_of_sexp S.to_atom lbl;
      }
  | S.List [ S.Atom "while"; c; body; lbl ] ->
    Kir.Swhile (expr_of_sexp c, stmts_of_sexp body, opt_of_sexp S.to_atom lbl)
  | S.List [ S.Atom "loop"; body; lbl ] ->
    Kir.Sloop (stmts_of_sexp body, opt_of_sexp S.to_atom lbl)
  | S.List [ S.Atom "exit"; c; lbl ] ->
    Kir.Sexit { cond = opt_of_sexp expr_of_sexp c; label = opt_of_sexp S.to_atom lbl }
  | S.List [ S.Atom "next"; c; lbl ] ->
    Kir.Snext { cond = opt_of_sexp expr_of_sexp c; label = opt_of_sexp S.to_atom lbl }
  | S.List [ S.Atom "wait"; S.List on; until; for_; line ] ->
    Kir.Swait
      {
        on = List.map sref_of_sexp on;
        until = opt_of_sexp expr_of_sexp until;
        for_ = opt_of_sexp expr_of_sexp for_;
        line = S.to_int line;
      }
  | S.List [ S.Atom "disconnect"; t ] -> Kir.Sdisconnect (sig_target_of_sexp t)
  | S.List [ S.Atom "return"; e ] -> Kir.Sreturn (opt_of_sexp expr_of_sexp e)
  | S.List [ S.Atom "assert"; c; report; severity; line ] ->
    Kir.Sassert
      {
        cond = expr_of_sexp c;
        report = opt_of_sexp expr_of_sexp report;
        severity = opt_of_sexp expr_of_sexp severity;
        line = S.to_int line;
      }
  | S.List [ S.Atom "pcall"; S.Atom p; S.List args ] ->
    Kir.Scall
      ( Kir.P_user p,
        List.map
          (fun a ->
            match a with
            | S.List [ mode; e; t; sg ] ->
              {
                Kir.ca_mode = arg_mode_of_sexp mode;
                ca_expr = expr_of_sexp e;
                ca_target = opt_of_sexp target_of_sexp t;
                ca_signal = opt_of_sexp sref_of_sexp sg;
              }
            | _ -> fail "bad call argument")
          args )
  | _ -> fail "bad statement: %s" (S.to_string sexp)

and stmts_of_sexp = function
  | S.List stmts -> List.map stmt_of_sexp stmts
  | _ -> fail "bad statement list"
