(** Per-phase wall-clock accounting.

    Used by the compilation pipeline to reproduce the paper's §2.2 phase
    breakdown (VIF read/write 40-60%, code generation 20-30%, attribute
    evaluation "a very small percent"). *)

type t = {
  mutable phases : (string * float) list; (* reverse order of first use *)
  table : (string, float ref) Hashtbl.t;
}

let create () = { phases = []; table = Hashtbl.create 16 }

let cell t name =
  match Hashtbl.find_opt t.table name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add t.table name r;
    t.phases <- (name, 0.0) :: t.phases;
    r

(** [time t name f] runs [f ()] and charges its wall-clock duration to the
    phase [name].  Re-entrant uses of the same phase accumulate. *)
let time t name f =
  let r = cell t name in
  let start = Unix_compat.now () in
  Fun.protect ~finally:(fun () -> r := !r +. (Unix_compat.now () -. start)) f

let add t name seconds =
  let r = cell t name in
  r := !r +. seconds

let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.table 0.0

(** Phases in order of first use, with accumulated seconds. *)
let report t =
  List.rev_map (fun (name, _) -> (name, !(Hashtbl.find t.table name))) t.phases

let pp fmt t =
  let tot = total t in
  let tot = if tot <= 0.0 then 1.0 else tot in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, secs) ->
      Format.fprintf fmt "%-28s %8.4fs  (%5.1f%%)@," name secs (100.0 *. secs /. tot))
    (report t);
  Format.fprintf fmt "%-28s %8.4fs@]" "total" (total t)
