(** Per-phase wall-clock accounting, built on the telemetry span layer.

    Used by the compilation pipeline to reproduce the paper's §2.2 phase
    breakdown (VIF read/write 40-60%, code generation 20-30%, attribute
    evaluation "a very small percent").

    Phases nest: the cascade runs inside attribute evaluation, VIF reads
    happen inside both.  Each [time]/[time_ambient] call pushes a frame on
    a process-wide stack and charges only its {e self time} — total minus
    the time spent in nested frames — to its phase, so the breakdown sums
    to wall clock without the negative-adjustment bookkeeping this module's
    callers used to do by hand.  Every frame is also recorded as a
    telemetry span (category ["phase"]) from the same two clock reads, so
    the phase table and the span tree cannot disagree.

    Layers that cannot see the compiler's timer (the cascade, the VIF
    library) charge the {e ambient} timer: whichever timer's [time] frame
    is dynamically enclosing.  Outside any [time] extent, [time_ambient]
    with tracing off is a plain call. *)

module Telemetry = Vhdl_telemetry.Telemetry

type t = {
  mutable phases : (string * unit) list; (* reverse order of first use *)
  table : (string, float ref) Hashtbl.t;
}

let create () = { phases = []; table = Hashtbl.create 16 }

let cell t name =
  match Hashtbl.find_opt t.table name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add t.table name r;
    t.phases <- (name, ()) :: t.phases;
    r

(* ------------------------------------------------------------------ *)
(* The process-wide frame stack (the compiler is single-threaded) *)

type frame = {
  f_timer : t option; (* where this frame's self time is charged *)
  f_name : string;
  mutable f_child : float; (* seconds spent in nested frames *)
}

let stack : frame list ref = ref []
let ambient : t option ref = ref None

let run_frame timer name f =
  let frame = { f_timer = timer; f_name = name; f_child = 0.0 } in
  (* register the phase at frame open so [report] lists phases in order of
     first use, not first completion *)
  (match timer with Some t -> ignore (cell t name) | None -> ());
  stack := frame :: !stack;
  let start = Telemetry.now_s () in
  Fun.protect
    ~finally:(fun () ->
      let total = Telemetry.now_s () -. start in
      (match !stack with
      | top :: rest when top == frame -> stack := rest
      | _ -> () (* an escape unwound through us; leave the stack alone *));
      (match !stack with
      | parent :: _ -> parent.f_child <- parent.f_child +. total
      | [] -> ());
      (match frame.f_timer with
      | Some t ->
        let r = cell t frame.f_name in
        r := !r +. (total -. frame.f_child)
      | None -> ());
      Telemetry.record_span ~cat:"phase" ~name:frame.f_name ~start_s:start
        ~dur_s:total ();
      (* phase boundary: refresh the gc.* gauges so metrics exports see the
         heap as it stood when the last phase closed *)
      Telemetry.sample_gc ())
    f

(** [time t name f] runs [f ()] charging its self time to phase [name] of
    [t], and makes [t] the ambient timer for the dynamic extent of [f]. *)
let time t name f =
  let saved = !ambient in
  ambient := Some t;
  Fun.protect
    ~finally:(fun () -> ambient := saved)
    (fun () -> run_frame (Some t) name f)

(** [time_ambient name f] charges a frame to the ambient timer — the timer
    of the dynamically enclosing [time], if any.  With no ambient timer and
    tracing off this is a plain call to [f]. *)
let time_ambient name f =
  match !ambient with
  | Some _ as timer -> run_frame timer name f
  | None -> if Telemetry.tracing () then run_frame None name f else f ()

let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.table 0.0

(** Phases in order of first use, with accumulated self-time seconds. *)
let report t =
  List.rev_map (fun (name, ()) -> (name, !(Hashtbl.find t.table name))) t.phases

let pp fmt t =
  let tot = total t in
  let tot = if tot <= 0.0 then 1.0 else tot in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, secs) ->
      Format.fprintf fmt "%-28s %8.4fs  (%5.1f%%)@," name secs (100.0 *. secs /. tot))
    (report t);
  Format.fprintf fmt "%-28s %8.4fs@]" "total" (total t)
