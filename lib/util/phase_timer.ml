(** Per-phase wall-clock {e and} allocation accounting, built on the
    telemetry span layer.

    Used by the compilation pipeline to reproduce the paper's §2.2 phase
    breakdown (VIF read/write 40-60%, code generation 20-30%, attribute
    evaluation "a very small percent").

    Phases nest: the cascade runs inside attribute evaluation, VIF reads
    happen inside both.  Each [time]/[time_ambient] call pushes a frame on
    a process-wide stack and charges only its {e self time} — total minus
    the time spent in nested frames — to its phase, so the breakdown sums
    to wall clock without the negative-adjustment bookkeeping this module's
    callers used to do by hand.  Allocated words ride the same frame
    stack with the same child-subtraction, so the per-phase allocation
    breakdown sums to the run's GC allocation delta.  Every frame is also
    recorded as a telemetry span (category ["phase"]) from the same two
    clock reads, so the phase table and the span tree cannot disagree.

    Layers that cannot see the compiler's timer (the cascade, the VIF
    library) charge the {e ambient} timer: whichever timer's [time] frame
    is dynamically enclosing.  Outside any [time] extent, [time_ambient]
    with tracing off is a plain call. *)

module Telemetry = Vhdl_telemetry.Telemetry

type t = {
  mutable phases : (string * unit) list; (* reverse order of first use *)
  table : (string, float ref) Hashtbl.t; (* self-time seconds *)
  alloc : (string, float ref) Hashtbl.t; (* self-allocated words *)
}

let create () = { phases = []; table = Hashtbl.create 16; alloc = Hashtbl.create 16 }

let cell t name =
  match Hashtbl.find_opt t.table name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add t.table name r;
    t.phases <- (name, ()) :: t.phases;
    r

let alloc_cell t name =
  match Hashtbl.find_opt t.alloc name with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add t.alloc name r;
    r

(* ------------------------------------------------------------------ *)
(* The process-wide frame stack (the compiler is single-threaded) *)

type frame = {
  f_timer : t option; (* where this frame's self time is charged *)
  f_name : string;
  mutable f_child : float; (* seconds spent in nested frames *)
  mutable f_child_aw : float; (* words allocated by nested frames *)
}

let stack : frame list ref = ref []
let ambient : t option ref = ref None

(* per-phase allocation is also a process-wide telemetry counter
   (phase.alloc_b.<name>, bytes) so `--metrics` carries the memory
   breakdown without a handle on the timer *)
let metric_name name =
  let buf = Buffer.create (String.length name + 13) in
  Buffer.add_string buf "phase.alloc_b.";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let run_frame timer name f =
  let frame = { f_timer = timer; f_name = name; f_child = 0.0; f_child_aw = 0.0 } in
  (* register the phase at frame open so [report] lists phases in order of
     first use, not first completion *)
  (match timer with Some t -> ignore (cell t name) | None -> ());
  stack := frame :: !stack;
  let start = Telemetry.now_s () in
  let aw0 = Telemetry.allocated_words_now () in
  Fun.protect
    ~finally:(fun () ->
      let total_aw = Telemetry.allocated_words_now () -. aw0 in
      let total = Telemetry.now_s () -. start in
      (match !stack with
      | top :: rest when top == frame -> stack := rest
      | _ -> () (* an escape unwound through us; leave the stack alone *));
      (match !stack with
      | parent :: _ ->
        parent.f_child <- parent.f_child +. total;
        parent.f_child_aw <- parent.f_child_aw +. total_aw
      | [] -> ());
      let self_aw = Float.max 0.0 (total_aw -. frame.f_child_aw) in
      (match frame.f_timer with
      | Some t ->
        let r = cell t frame.f_name in
        r := !r +. (total -. frame.f_child);
        let a = alloc_cell t frame.f_name in
        a := !a +. self_aw
      | None -> ());
      Telemetry.add
        (Telemetry.counter (metric_name frame.f_name))
        (int_of_float (self_aw *. float_of_int Telemetry.bytes_per_word));
      Telemetry.record_span ~cat:"phase" ~alloc_w:total_aw ~name:frame.f_name
        ~start_s:start ~dur_s:total ();
      (* phase boundary: refresh the gc.* gauges so metrics exports see the
         heap as it stood when the last phase closed *)
      Telemetry.sample_gc ())
    f

(** [time t name f] runs [f ()] charging its self time to phase [name] of
    [t], and makes [t] the ambient timer for the dynamic extent of [f]. *)
let time t name f =
  let saved = !ambient in
  ambient := Some t;
  Fun.protect
    ~finally:(fun () -> ambient := saved)
    (fun () -> run_frame (Some t) name f)

(** [time_ambient name f] charges a frame to the ambient timer — the timer
    of the dynamically enclosing [time], if any.  With no ambient timer and
    tracing off this is a plain call to [f]. *)
let time_ambient name f =
  match !ambient with
  | Some _ as timer -> run_frame timer name f
  | None -> if Telemetry.tracing () then run_frame None name f else f ()

let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.table 0.0
let total_alloc t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.alloc 0.0

(** Phases in order of first use, with accumulated self-time seconds. *)
let report t =
  List.rev_map (fun (name, ()) -> (name, !(Hashtbl.find t.table name))) t.phases

(** Phases in order of first use, with accumulated self-allocated words. *)
let report_alloc t =
  List.rev_map
    (fun (name, ()) ->
      ( name,
        match Hashtbl.find_opt t.alloc name with Some r -> !r | None -> 0.0 ))
    t.phases

let pp_bytes fmt b =
  if b >= 1048576.0 then Format.fprintf fmt "%8.1fMB" (b /. 1048576.0)
  else if b >= 1024.0 then Format.fprintf fmt "%8.1fkB" (b /. 1024.0)
  else Format.fprintf fmt "%8.0fB " b

let pp fmt t =
  let tot = total t in
  let tot = if tot <= 0.0 then 1.0 else tot in
  let aw = report_alloc t in
  let bytes name =
    Option.value (List.assoc_opt name aw) ~default:0.0
    *. float_of_int Telemetry.bytes_per_word
  in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, secs) ->
      Format.fprintf fmt "%-28s %8.4fs  (%5.1f%%)  alloc %a@," name secs
        (100.0 *. secs /. tot) pp_bytes (bytes name))
    (report t);
  Format.fprintf fmt "%-28s %8.4fs            alloc %a@]" "total" (total t)
    pp_bytes
    (total_alloc t *. float_of_int Telemetry.bytes_per_word)
