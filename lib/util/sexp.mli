(** Minimal self-contained s-expressions — the concrete syntax of the VIF.
    Hand-rolled reader and printers (the installed sexplib0 has no
    parser). *)

type t =
  | Atom of string
  | List of t list

exception Parse_error of { pos : int; msg : string }
exception Decode_error of string

val atom : string -> t
val list : t list -> t
val int : int -> t
val bool : bool -> t
val string : string -> t

val to_string : t -> string
val to_string_indented : t -> string
(** Multi-line indented form — the paper's human-readable VIF dump. *)

val pp_indented : Format.formatter -> t -> unit

val of_string : string -> t
(** @raise Parse_error on malformed input (line comments with [;] are
    skipped). *)

val of_string_many : string -> t list

val to_atom : t -> string
val to_list : t -> t list
val to_int : t -> int
val to_bool : t -> bool

val record : string -> (string * t) list -> t
(** [(tag (field value) ...)] *)

val untag : t -> string * t list
val field : string -> t list -> t
val field_opt : string -> t list -> t option
