(** String interning: maps strings to dense integer ids and back.

    Grammar symbols and attribute names are interned so that the AG engine
    and LALR generator can use arrays indexed by symbol id. *)

type t = {
  table : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable next : int;
}

let create () = { table = Hashtbl.create 64; names = Array.make 64 ""; next = 0 }

let intern t name =
  match Hashtbl.find_opt t.table name with
  | Some id -> id
  | None ->
    let id = t.next in
    if id >= Array.length t.names then begin
      let bigger = Array.make (2 * Array.length t.names) "" in
      Array.blit t.names 0 bigger 0 (Array.length t.names);
      t.names <- bigger
    end;
    t.names.(id) <- name;
    t.next <- id + 1;
    Hashtbl.add t.table name id;
    id

let find_opt t name = Hashtbl.find_opt t.table name

let name t id =
  if id < 0 || id >= t.next then invalid_arg "Interner.name: id out of range";
  t.names.(id)

let count t = t.next

let iter t f =
  for id = 0 to t.next - 1 do
    f id t.names.(id)
  done
