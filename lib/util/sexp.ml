(** Minimal self-contained s-expression library.

    Used as the concrete syntax of the VIF intermediate format (see
    [Vhdl_vif]).  We hand-roll both printer and parser because the installed
    [sexplib0] ships only the type and printers, no reader. *)

type t =
  | Atom of string
  | List of t list

exception Parse_error of { pos : int; msg : string }

let atom s = Atom s
let list l = List l
let int n = Atom (string_of_int n)
let bool b = Atom (if b then "true" else "false")
let string = atom

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_buffer buf = function
  | Atom s -> Buffer.add_string buf (if needs_quoting s then quote s else s)
  | List l ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        to_buffer buf x)
      l;
    Buffer.add_char buf ')'

let to_string sexp =
  let buf = Buffer.create 256 in
  to_buffer buf sexp;
  Buffer.contents buf

(* Indented printer: used for the human-readable VIF dump the paper mentions
   as a debugging/documentation aid. *)
let rec pp_indented fmt = function
  | Atom _ as a -> Format.pp_print_string fmt (to_string a)
  | List l when List.for_all (function Atom _ -> true | List _ -> false) l ->
    Format.pp_print_string fmt (to_string (List l))
  | List l ->
    Format.fprintf fmt "@[<v 1>(";
    List.iteri
      (fun i x ->
        if i > 0 then Format.pp_print_cut fmt ();
        pp_indented fmt x)
      l;
    Format.fprintf fmt ")@]"

let to_string_indented sexp = Format.asprintf "%a" pp_indented sexp

type parser_state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error { pos = st.pos; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some ';' ->
    (* comment to end of line *)
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_ws st
  | Some _ | None -> ()

let parse_quoted st =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some c -> Buffer.add_char buf c
      | None -> error st "unterminated escape");
      advance st;
      loop ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Atom (Buffer.contents buf)

let parse_bare st =
  let start = st.pos in
  let rec loop () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
    | Some _ ->
      advance st;
      loop ()
  in
  loop ();
  if st.pos = start then error st "empty atom";
  Atom (String.sub st.src start (st.pos - start))

let rec parse_one st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '(' ->
    advance st;
    let rec items acc =
      skip_ws st;
      match peek st with
      | Some ')' ->
        advance st;
        List (List.rev acc)
      | None -> error st "unterminated list"
      | Some _ -> items (parse_one st :: acc)
    in
    items []
  | Some ')' -> error st "unexpected ')'"
  | Some '"' -> parse_quoted st
  | Some _ -> parse_bare st

let of_string src =
  let st = { src; pos = 0 } in
  let sexp = parse_one st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some _ -> error st "trailing input");
  sexp

let of_string_many src =
  let st = { src; pos = 0 } in
  let rec loop acc =
    skip_ws st;
    match peek st with
    | None -> List.rev acc
    | Some _ -> loop (parse_one st :: acc)
  in
  loop []

(* Accessors with descriptive failures: VIF decoding uses these. *)

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let to_atom = function
  | Atom s -> s
  | List _ as l -> decode_error "expected atom, got %s" (to_string l)

let to_list = function
  | List l -> l
  | Atom _ as a -> decode_error "expected list, got %s" (to_string a)

let to_int sexp =
  let s = to_atom sexp in
  match int_of_string_opt s with
  | Some n -> n
  | None -> decode_error "expected integer, got %s" s

let to_bool sexp =
  match to_atom sexp with
  | "true" -> true
  | "false" -> false
  | s -> decode_error "expected bool, got %s" s

(* A tagged record form: (tag (field value) ...) *)
let record tag fields = List (Atom tag :: List.map (fun (k, v) -> List [ Atom k; v ]) fields)

let untag = function
  | List (Atom tag :: rest) -> (tag, rest)
  | s -> decode_error "expected tagged list, got %s" (to_string s)

let field name fields =
  let rec find = function
    | [] -> decode_error "missing field %s" name
    | List [ Atom k; v ] :: _ when k = name -> v
    | _ :: rest -> find rest
  in
  find fields

let field_opt name fields =
  let rec find = function
    | [] -> None
    | List [ Atom k; v ] :: _ when k = name -> Some v
    | _ :: rest -> find rest
  in
  find fields
