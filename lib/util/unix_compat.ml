(** Small portability shims so the libraries depend only on the stdlib.

    We avoid a [unix] dependency in the core libraries; monotonic-ish time
    comes from [Sys.time]-independent [Unix.gettimeofday] equivalents where
    available, falling back to the GC clock. *)

(* Monotonic wall-clock seconds (since first telemetry clock read).
   [Sys.time] is CPU time — it undercounts anything that blocks on IO or is
   descheduled, which is exactly what throughput experiments must not do —
   so this delegates to the telemetry clock (CLOCK_MONOTONIC), keeping
   every timing consumer on the same time base. *)
let now () = Vhdl_telemetry.Telemetry.now_s ()

(** Create a directory (and parents) if missing. *)
let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    (try Sys.mkdir path 0o755 with Sys_error _ -> ())
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(** Stripped line count: blank lines and pure comment lines removed, the
    convention Figure 2 of the paper uses ("stripped of blank lines and
    comments").  [comment_prefixes] are line-comment markers. *)
let stripped_line_count ?(comment_prefixes = [ "(*"; "--"; ";" ]) contents =
  let is_blank_or_comment line =
    let line = String.trim line in
    line = ""
    || List.exists
         (fun p ->
           String.length line >= String.length p
           && String.sub line 0 (String.length p) = p)
         comment_prefixes
  in
  String.split_on_char '\n' contents
  |> List.filter (fun l -> not (is_blank_or_comment l))
  |> List.length
