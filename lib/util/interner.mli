(** String interning: dense integer ids for grammar symbols and attribute
    names, so the engines can use arrays indexed by id. *)

type t

val create : unit -> t
val intern : t -> string -> int
(** Id for a name, allocating on first use. *)

val find_opt : t -> string -> int option
val name : t -> int -> string
val count : t -> int
val iter : t -> (int -> string -> unit) -> unit
