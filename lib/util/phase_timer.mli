(** Per-phase wall-clock accounting, for the paper's §2.2 phase-breakdown
    experiment (PERF-PHASE).

    Built on the telemetry span layer: every timed frame is also recorded
    as a telemetry span (category ["phase"]) from the same clock reads, and
    nested frames charge only their self time, so the phase table sums to
    wall clock and cannot disagree with the span tree. *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk, charging its self time (total minus nested frames) to the
    named phase, and making [t] the ambient timer for the thunk's dynamic
    extent.  Re-entrant uses accumulate. *)

val time_ambient : string -> (unit -> 'a) -> 'a
(** Run a thunk as a nested frame of the ambient timer — whichever timer's
    {!time} is dynamically enclosing.  Layers that cannot see the compiler
    (the expression cascade, the VIF library) use this to charge their own
    phase.  Outside any {!time} extent with tracing off, a plain call. *)

val total : t -> float

val total_alloc : t -> float
(** Summed self-allocated words across all phases. *)

val report : t -> (string * float) list
(** Phases in order of first use with accumulated self-time seconds. *)

val report_alloc : t -> (string * float) list
(** Phases in order of first use with accumulated self-allocated words
    (minor + direct-major, promotions excluded) — same child-subtraction
    discipline as {!report}, so the table sums to the run's allocation
    delta.  Each phase's self-allocation is also published as the
    [phase.alloc_b.<name>] telemetry counter, in bytes. *)

val pp : Format.formatter -> t -> unit
