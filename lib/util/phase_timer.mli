(** Per-phase wall-clock accounting, for the paper's §2.2 phase-breakdown
    experiment (PERF-PHASE). *)

type t

val create : unit -> t

val time : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk, charging its duration to the named phase (re-entrant uses
    accumulate). *)

val add : t -> string -> float -> unit
(** Adjust a phase by [seconds] (may be negative, for carving a sub-phase
    out of its parent). *)

val total : t -> float

val report : t -> (string * float) list
(** Phases in order of first use with accumulated seconds. *)

val pp : Format.formatter -> t -> unit
