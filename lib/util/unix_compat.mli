(** Small filesystem and timing helpers (no [unix] dependency). *)

val now : unit -> float
(** Monotonic wall-clock seconds (the telemetry clock) — the time base of
    the phase timer and the benchmark harness. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents. *)

val read_file : string -> string

val write_file : string -> string -> unit
(** Write atomically enough for our purposes (truncate + write). *)

val stripped_line_count : ?comment_prefixes:string list -> string -> int
(** Non-blank lines that do not start with a comment prefix — the line
    discipline of the paper's Figure 2 size counts. *)
