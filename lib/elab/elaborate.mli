(** Elaboration: from compiled design units to a runnable simulation model
    — the "link" step of the paper's pipeline.

    Implements the §3.3 binding rules: explicit configuration
    specifications in the architecture, then the configuration unit, then
    the default rule — bind to the entity with the component's name and its
    {e latest compiled architecture} (the usage-history-dependent default
    the paper calls out as making descriptions non-deterministic). *)

type library_view = {
  lv_find : library:string -> key:string -> Unit_info.compiled_unit option;
  lv_all : unit -> Unit_info.compiled_unit list;
}

exception Elaboration_error of string

exception Budget_exhausted of { steps : int; limit : int }
(** The [?step_budget] of {!elaborate} ran out: the design expanded into
    more signals + processes + instances than the budget allows. *)

type model = {
  m_kernel : Kernel.t;
  m_ns : Name_server.t;
  m_trace : Trace.t;
  m_globals : (string * string, Rt.signal) Hashtbl.t;
  m_functions_loaded : int; (* instrumentation *)
  m_instances : int;
}

val latest_arch :
  library_view -> library:string -> entity:string -> Unit_info.arch_info option
(** The §3.3 default: the architecture of [entity] with the highest
    compilation-order stamp. *)

type top =
  | Top_entity of { entity : string; arch : string option }
  | Top_configuration of string

val elaborate : ?trace_signals:bool -> ?step_budget:int -> library_view -> top -> model
(** Build the instance hierarchy, create runtime signals and processes,
    substitute generics and elaboration-time constants into the KIR, and
    register everything with a fresh kernel and name server.
    [step_budget] bounds the hierarchy expansion (@raise Budget_exhausted
    beyond it). *)
