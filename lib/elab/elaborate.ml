(** Elaboration: from compiled design units to a runnable simulation model.

    This is the "link" step of the paper's pipeline (their generated C is
    compiled and linked with the simulation kernel).  It implements the
    §3.3 binding rules: explicit configuration specifications in the
    architecture, then the configuration unit, then the *default rule* —
    bind to the entity with the component's name and its **latest compiled
    architecture**, the usage-history-dependent default the paper calls out
    as making descriptions non-deterministic. *)

type library_view = {
  lv_find : library:string -> key:string -> Unit_info.compiled_unit option;
  lv_all : unit -> Unit_info.compiled_unit list;
}

exception Elaboration_error of string

exception Budget_exhausted of { steps : int; limit : int }

let err fmt = Format.kasprintf (fun s -> raise (Elaboration_error s)) fmt

module Tm = Vhdl_telemetry.Telemetry

let m_steps = Tm.counter "elab.steps"
let m_instances = Tm.counter "elab.instances"

type model = {
  m_kernel : Kernel.t;
  m_ns : Name_server.t;
  m_trace : Trace.t;
  m_globals : (string * string, Rt.signal) Hashtbl.t;
  m_functions_loaded : int; (* instrumentation *)
  m_instances : int;
}

(* ------------------------------------------------------------------ *)
(* Library helpers *)

let find_entity lv ~library name =
  match lv.lv_find ~library ~key:("entity:" ^ name) with
  | Some { Unit_info.u_info = Unit_info.Uentity en; _ } -> Some en
  | _ -> None

let find_arch lv ~library ~entity name =
  match lv.lv_find ~library ~key:(Printf.sprintf "arch:%s(%s)" entity name) with
  | Some { Unit_info.u_info = Unit_info.Uarch ar; _ } -> Some ar
  | _ -> None

(** The paper's default rule: the latest compiled architecture of [entity]
    (highest compilation sequence stamp). *)
let latest_arch lv ~library ~entity =
  let prefix = Printf.sprintf "arch:%s(" entity in
  lv.lv_all ()
  |> List.filter (fun (u : Unit_info.compiled_unit) ->
         u.Unit_info.u_library = library
         && String.length u.Unit_info.u_key >= String.length prefix
         && String.sub u.Unit_info.u_key 0 (String.length prefix) = prefix)
  |> List.fold_left
       (fun best (u : Unit_info.compiled_unit) ->
         match (best, u.Unit_info.u_info) with
         | None, Unit_info.Uarch ar -> Some (u.Unit_info.u_sequence, ar)
         | Some (seq, _), Unit_info.Uarch ar when u.Unit_info.u_sequence > seq ->
           Some (u.Unit_info.u_sequence, ar)
         | _ -> best)
       None
  |> Option.map snd

(* all subprogram bodies in the library, by mangled name (packages carry no
   generics, so these are instance-independent) *)
let package_functions lv =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (u : Unit_info.compiled_unit) ->
      match u.Unit_info.u_info with
      | Unit_info.Upackage_body pb ->
        List.iter
          (fun (s : Kir.subprogram) -> Hashtbl.replace tbl s.Kir.sub_name s)
          pb.Unit_info.pb_subprograms
      | _ -> ())
    (lv.lv_all ());
  tbl

(* deferred package constants (LRM 4.3.1.1): values supplied by package
   bodies, keyed "PKG.NAME"; every unit-constant substitution falls back
   to this table *)
let package_deferred lv =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (u : Unit_info.compiled_unit) ->
      match u.Unit_info.u_info with
      | Unit_info.Upackage_body pb ->
        List.iter (fun (n, v) -> Hashtbl.replace tbl n v) pb.Unit_info.pb_deferred
      | _ -> ())
    (lv.lv_all ());
  tbl

(* ------------------------------------------------------------------ *)
(* Elaboration context *)

type ctx = {
  lv : library_view;
  kernel : Kernel.t;
  ns : Name_server.t;
  trace : Trace.t;
  globals : (string * string, Rt.signal) Hashtbl.t;
  pkg_functions : (string, Kir.subprogram) Hashtbl.t;
  pkg_deferred : (string, Value.t) Hashtbl.t;
  mutable sig_counter : int;
  mutable instance_count : int;
  trace_signals : bool;
  step_budget : int option; (* elaboration-step budget, None = unlimited *)
  mutable steps_used : int;
}

(* One elaboration step = one signal, process, or instance brought into
   existence.  A design that expands beyond the budget (runaway generate
   recursion, a hierarchy bomb) surfaces as [Budget_exhausted], never as an
   unbounded build. *)
let charge ctx =
  ctx.steps_used <- ctx.steps_used + 1;
  Tm.incr m_steps;
  match ctx.step_budget with
  | Some limit when ctx.steps_used > limit ->
    raise (Budget_exhausted { steps = ctx.steps_used; limit })
  | _ -> ()

let fresh_sig_id ctx =
  let id = ctx.sig_counter in
  ctx.sig_counter <- id + 1;
  id

let eval_static ?(subst = None) (e : Kir.expr) =
  let e =
    match subst with
    | Some s -> Kir_util.subst_expr s e
    | None -> e
  in
  Const_eval.eval_opt Const_eval.empty e

(* Evaluate an elaboration-time expression that may call user functions
   (LRM 4.3.1.2 default expressions, architecture constants): a signal-less
   interpreter environment over the given function table. *)
let interp_eval ctx ~functions ~what (e : Kir.expr) : Value.t option =
  let env =
    {
      Interp.e_signals = [||];
      e_sig_params = [||];
      e_guard = None;
      e_globals = ctx.globals;
      e_functions = functions;
      e_proc_id = -1;
      e_proc_name = "init:" ^ what;
      e_now = (fun () -> 0);
      e_display = Array.make 16 None;
      e_level = 0;
      e_emit = (fun ~severity:_ ~line:_ _ -> ());
    }
  in
  match Interp.eval env e with
  | v -> Some v
  | exception Rt.Simulation_error _ -> None

let make_signal ctx ?functions ~path ~ty ~kind ~resolution ~init_expr ~subst () =
  charge ctx;
  let eval_with_functions e =
    match functions with
    | None -> None
    | Some functions ->
      interp_eval ctx ~functions ~what:path (Kir_util.subst_expr subst e)
  in
  let init =
    match init_expr with
    | None -> Value.default_of ty
    | Some e -> (
      match eval_static ~subst:(Some subst) e with
      | Some v -> v
      | None -> (
        match eval_with_functions e with
        | Some v -> v
        | None -> err "initialiser of %s cannot be evaluated at elaboration" path))
  in
  let s =
    Rt.make_signal ~id:(fresh_sig_id ctx) ~name:path ~ty ~kind ~resolution ~init
  in
  Kernel.register_signal ctx.kernel s;
  Name_server.register ctx.ns path (Name_server.Signal s);
  if ctx.trace_signals then Trace.watch ctx.trace path s;
  s

(* global package signals, created once *)
let elaborate_package_signals ctx =
  List.iter
    (fun (u : Unit_info.compiled_unit) ->
      match u.Unit_info.u_info with
      | Unit_info.Upackage pk ->
        List.iter
          (fun (sd : Kir.signal_decl) ->
            let path = Printf.sprintf ":%s:%s" pk.Unit_info.pk_name sd.Kir.sd_name in
            if not (Hashtbl.mem ctx.globals (pk.Unit_info.pk_name, sd.Kir.sd_name)) then begin
              let subst =
                {
                  Kir_util.generic = (fun _ -> None);
                  unit_const = (fun n -> Hashtbl.find_opt ctx.pkg_deferred n);
                }
              in
              let s =
                make_signal ctx ~functions:ctx.pkg_functions ~path ~ty:sd.Kir.sd_ty
                  ~kind:sd.Kir.sd_kind ~resolution:None ~init_expr:sd.Kir.sd_init
                  ~subst ()
              in
              Hashtbl.replace ctx.globals (pk.Unit_info.pk_name, sd.Kir.sd_name) s
            end)
          pk.Unit_info.pk_signals
      | _ -> ())
    (ctx.lv.lv_all ())

(* ------------------------------------------------------------------ *)
(* Instance elaboration *)

(* Resolution functions need an interpreter environment with the instance's
   function table. *)
let resolution_closure ~functions ~kernel name =
  let env =
    {
      Interp.e_signals = [||];
      e_sig_params = [||];
      e_guard = None;
      e_globals = Hashtbl.create 1;
      e_functions = functions;
      e_proc_id = -1;
      e_proc_name = "resolution:" ^ name;
      e_now = (fun () -> Kernel.now kernel);
      e_display = Array.make 16 None;
      e_level = 0;
      e_emit = (fun ~severity:_ ~line:_ _ -> ());
    }
  in
  fun (values : Value.t list) ->
    let arg =
      Value.Varray
        {
          bounds = (0, Types.To, List.length values - 1);
          elems = Array.of_list values;
        }
    in
    Interp.call_function env name [ arg ]

let rec elaborate_instance ctx ~path ~(entity : Unit_info.entity_info)
    ~(arch : Unit_info.arch_info) ~(generic_values : (int * Value.t) list)
    ~(port_signals : Rt.signal option array) ~(config_specs : Unit_info.config_spec list) :
    unit =
  charge ctx;
  ctx.instance_count <- ctx.instance_count + 1;
  Tm.incr m_instances;
  Name_server.register ctx.ns path
    (Name_server.Instance
       {
         instance_path = path;
         entity = entity.Unit_info.en_name;
         architecture = arch.Unit_info.ar_name;
       });
  (* generics substitution, then architecture constants in order *)
  let unit_consts : (string, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let subst : Kir_util.subst =
    {
      Kir_util.generic = (fun i -> List.assoc_opt i generic_values);
      unit_const =
        (fun name ->
          match Hashtbl.find_opt unit_consts name with
          | Some v -> Some v
          | None -> Hashtbl.find_opt ctx.pkg_deferred name);
    }
  in
  (* constants may call the architecture's own functions; each constant
     sees the table with every earlier constant already substituted *)
  let instance_functions () =
    let functions = Hashtbl.copy ctx.pkg_functions in
    List.iter
      (fun (s : Kir.subprogram) ->
        Hashtbl.replace functions s.Kir.sub_name
          { s with Kir.sub_body = Kir_util.subst_stmts subst s.Kir.sub_body })
      arch.Unit_info.ar_subprograms;
    functions
  in
  List.iter
    (fun (name, ty, init) ->
      ignore ty;
      match eval_static ~subst:(Some subst) init with
      | Some v -> Hashtbl.replace unit_consts name v
      | None -> (
        match
          interp_eval ctx ~functions:(instance_functions ()) ~what:(path ^ ":" ^ name)
            (Kir_util.subst_expr subst init)
        with
        | Some v -> Hashtbl.replace unit_consts name v
        | None -> err "constant %s of %s cannot be evaluated at elaboration" name path))
    arch.Unit_info.ar_constants;
  (* instance-private function table: package functions + substituted arch
     subprograms *)
  let functions = instance_functions () in
  let resolution_of = function
    | Some (Kir.F_user name) -> Some (resolution_closure ~functions ~kernel:ctx.kernel name)
    | None -> None
  in
  (* signal table: ports first, then architecture (and block) signals *)
  let n_ports = List.length entity.Unit_info.en_ports in
  let n_local = List.length arch.Unit_info.ar_signals in
  let table = Array.make (n_ports + n_local) None in
  List.iteri
    (fun i (p : Kir.port_decl) ->
      let s =
        match port_signals.(i) with
        | Some s -> s (* connected: share the actual's signal object *)
        | None ->
          make_signal ctx ~functions
            ~path:(Printf.sprintf "%s:%s" path p.Kir.pd_name)
            ~ty:p.Kir.pd_ty ~kind:`Plain ~resolution:None ~init_expr:p.Kir.pd_default
            ~subst ()
      in
      table.(i) <- Some s)
    entity.Unit_info.en_ports;
  List.iteri
    (fun i (sd : Kir.signal_decl) ->
      let s =
        make_signal ctx ~functions
          ~path:(Printf.sprintf "%s:%s" path sd.Kir.sd_name)
          ~ty:sd.Kir.sd_ty ~kind:sd.Kir.sd_kind
          ~resolution:(resolution_of sd.Kir.sd_resolution)
          ~init_expr:sd.Kir.sd_init ~subst ()
      in
      (match sd.Kir.sd_disconnect with
      | Some e -> (
        match eval_static ~subst:(Some subst) e with
        | Some v -> s.Rt.sig_disconnect <- Value.as_int v
        | None ->
          err "disconnection time of %s cannot be evaluated at elaboration"
            sd.Kir.sd_name)
      | None -> ());
      table.(n_ports + i) <- Some s)
    arch.Unit_info.ar_signals;
  let signals =
    Array.map
      (function
        | Some s -> s
        | None -> err "signal table hole in %s" path)
      table
  in
  elaborate_concurrents ctx ~path ~entity ~arch ~subst ~functions ~signals ~guard:None
    ~config_specs arch.Unit_info.ar_body

and elaborate_concurrents ctx ~path ~entity ~arch ~subst ~functions ~signals ~guard
    ~config_specs concs =
  List.iter
    (fun (c : Kir.concurrent) ->
      match c with
      | Kir.C_process p -> elaborate_process ctx ~path ~subst ~functions ~signals ~guard p
      | Kir.C_instance inst ->
        elaborate_sub_instance ctx ~path ~entity ~arch ~subst ~functions ~signals
          ~config_specs inst
      | Kir.C_block { blk_label; blk_guard; blk_body } ->
        let guard_sig =
          match blk_guard with
          | None -> None
          | Some guard_expr ->
            let gpath = Printf.sprintf "%s:%s:GUARD" path blk_label in
            let g =
              make_signal ctx ~path:gpath ~ty:Std.boolean ~kind:`Plain ~resolution:None
                ~init_expr:None ~subst ()
            in
            (* implicit driver process for the guard *)
            let guard_expr = Kir_util.subst_expr subst guard_expr in
            let body =
              [
                Kir.Ssig_assign
                  {
                    target = Kir.Ts_sig Kir.Sig_guard;
                    mode = Kir.Inertial;
                    waveform = [ { Kir.wv_value = Some guard_expr; wv_after = None } ];
                    guarded = false;
                    line = 0;
                  };
              ]
            in
            let sens = Kir_util.signals_read_expr guard_expr in
            elaborate_process ctx ~path ~subst ~functions ~signals ~guard:(Some g)
              {
                Kir.proc_label = blk_label ^ "_guard";
                proc_sensitivity = sens;
                proc_locals = [];
                proc_body = body;
                proc_postponed_wait = true;
              };
            Some g
        in
        elaborate_concurrents ctx ~path:(Printf.sprintf "%s:%s" path blk_label) ~entity
          ~arch ~subst ~functions ~signals
          ~guard:(match guard_sig with Some g -> Some g | None -> guard)
          ~config_specs blk_body
      | Kir.C_generate { gen_label; gen_var; gen_range = lo, d, hi; gen_body } ->
        (* expand the generate statement: the parameter rides through the
           body as a unit constant substituted per iteration *)
        let bound e =
          match eval_static ~subst:(Some subst) e with
          | Some v -> Value.as_int v
          | None -> err "generate range of %s is not static" gen_label
        in
        let rewrap =
          match eval_static ~subst:(Some subst) lo with
          | Some (Value.Venum _) -> fun i -> Value.Venum i
          | _ -> fun i -> Value.Vint i
        in
        List.iter
          (fun i ->
            let subst' =
              {
                subst with
                Kir_util.unit_const =
                  (fun name ->
                    if String.equal name gen_var then Some (rewrap i)
                    else subst.Kir_util.unit_const name);
              }
            in
            elaborate_concurrents ctx
              ~path:(Printf.sprintf "%s:%s(%d)" path gen_label i)
              ~entity ~arch ~subst:subst' ~functions ~signals ~guard ~config_specs
              gen_body)
          (Value.range_indices (bound lo, d, bound hi))
      | Kir.C_if_generate { ig_label; ig_cond; ig_body } -> (
        match eval_static ~subst:(Some subst) ig_cond with
        | Some v when Value.truth v ->
          elaborate_concurrents ctx
            ~path:(Printf.sprintf "%s:%s" path ig_label)
            ~entity ~arch ~subst ~functions ~signals ~guard ~config_specs ig_body
        | Some _ -> ()
        | None -> err "if-generate condition of %s is not static" ig_label))
    concs

and elaborate_process ctx ~path ~subst ~functions ~signals ~guard (p : Kir.process) =
  charge ctx;
  let proc_path = Printf.sprintf "%s:%s" path p.Kir.proc_label in
  let body = Kir_util.subst_stmts subst p.Kir.proc_body in
  let env_ref = ref None in
  let resolve_sref = function
    | Kir.Sig_local i ->
      if i < Array.length signals then signals.(i)
      else err "sensitivity index %d out of range in %s" i proc_path
    | Kir.Sig_guard -> (
      match guard with
      | Some g -> g
      | None -> err "process %s uses GUARD outside a guarded block" proc_path)
    | Kir.Sig_global { package; name } -> (
      match Hashtbl.find_opt ctx.globals (package, name) with
      | Some s -> s
      | None -> err "global signal %s.%s not elaborated" package name)
    | Kir.Sig_param _ -> err "signal parameter in the sensitivity of %s" proc_path
  in
  let sensitivity = List.map resolve_sref p.Kir.proc_sensitivity in
  (* the frame persists across process restarts (LRM: variables are
     initialized once at elaboration) *)
  let n_locals = List.length p.Kir.proc_locals in
  let frame =
    {
      Interp.vars = Array.make (max 1 n_locals) (Value.Vint 0);
      loop_vars = Array.make (max 1 (Kir_util.loop_depth body)) (Value.Vint 0);
    }
  in
  let proc =
    Kernel.add_process ctx.kernel ~name:proc_path ~sensitivity
      ~has_wait:(Kir_util.has_wait body)
      ~body:(fun () ->
        match !env_ref with
        | Some env -> List.iter (Interp.exec env) body
        | None -> err "process %s has no environment" proc_path)
  in
  let display = Array.make 16 None in
  display.(0) <- Some frame;
  let env =
    {
      Interp.e_signals = signals;
      e_sig_params = [||];
      e_guard = guard;
      e_globals = ctx.globals;
      e_functions = functions;
      e_proc_id = proc.Rt.proc_id;
      e_proc_name = proc_path;
      e_now = (fun () -> Kernel.now ctx.kernel);
      e_display = display;
      e_level = 0;
      e_emit =
        (fun ~severity ~line msg -> Kernel.emit ctx.kernel ~severity ~line msg);
    }
  in
  env_ref := Some env;
  (* initialize locals (may call functions) *)
  List.iteri
    (fun i (l : Kir.local) ->
      let init =
        match l.Kir.l_init with
        | Some e -> (
          let e = Kir_util.subst_expr subst e in
          match Const_eval.eval_opt Const_eval.empty e with
          | Some v -> v
          | None -> Interp.eval env e)
        | None -> Value.default_of l.Kir.l_ty
      in
      frame.Interp.vars.(i) <- init)
    p.Kir.proc_locals;
  Name_server.register ctx.ns proc_path (Name_server.Process proc)

and elaborate_sub_instance ctx ~path ~entity:_ ~arch ~subst ~functions:_ ~signals
    ~config_specs (inst : Kir.instance) =
  let inst_path = Printf.sprintf "%s:%s" path inst.Kir.inst_label in
  (* component declaration (for defaults of unassociated generics/ports) *)
  let comp_generics, comp_ports =
    match
      List.find_opt
        (fun (n, _, _) -> n = inst.Kir.inst_component)
        arch.Unit_info.ar_components
    with
    | Some (_, g, p) -> (g, p)
    | None -> ([], [])
  in
  (* binding resolution: arch config specs, then the configuration unit's
     specs, then the default rule *)
  let work = "WORK" in
  let spec_matches (cs : Unit_info.config_spec) =
    cs.Unit_info.cs_component = inst.Kir.inst_component
    &&
    match cs.Unit_info.cs_scope with
    | `Labels ls -> List.mem inst.Kir.inst_label ls
    | `All | `Others -> true
  in
  let binding =
    match List.find_opt spec_matches arch.Unit_info.ar_config_specs with
    | Some cs -> Some cs.Unit_info.cs_binding
    | None -> (
      match List.find_opt spec_matches config_specs with
      | Some cs -> Some cs.Unit_info.cs_binding
      | None -> None)
  in
  let library, entity_name, arch_name =
    match binding with
    | Some b -> (b.Unit_info.b_library, b.Unit_info.b_entity, b.Unit_info.b_arch)
    | None -> (work, inst.Kir.inst_component, None)
  in
  let sub_entity =
    match find_entity ctx.lv ~library entity_name with
    | Some en -> en
    | None -> err "no entity %s in library %s for instance %s" entity_name library inst_path
  in
  let sub_arch =
    match arch_name with
    | Some a -> (
      match find_arch ctx.lv ~library ~entity:entity_name a with
      | Some ar -> ar
      | None -> err "no architecture %s of %s for instance %s" a entity_name inst_path)
    | None -> (
      match latest_arch ctx.lv ~library ~entity:entity_name with
      | Some ar -> ar (* the paper's §3.3 latest-compiled default *)
      | None -> err "entity %s has no architecture (instance %s)" entity_name inst_path)
  in
  (* generic values in formal order *)
  let generic_values =
    List.mapi
      (fun i (g : Kir.generic_decl) ->
        let actual =
          List.assoc_opt g.Kir.gd_name inst.Kir.inst_generic_map
        in
        let value =
          match actual with
          | Some (Kir.Act_expr e) -> (
            match eval_static ~subst:(Some subst) e with
            | Some v -> Some v
            | None -> err "generic %s of %s is not static" g.Kir.gd_name inst_path)
          | Some Kir.Act_open | None -> (
            match g.Kir.gd_default with
            | Some e -> eval_static ~subst:(Some subst) e
            | None -> None)
          | Some (Kir.Act_signal _) | Some (Kir.Act_signal_index _)
          | Some (Kir.Act_signal_slice _) ->
            err "signal actual for generic %s of %s" g.Kir.gd_name inst_path
        in
        match value with
        | Some v -> (i, v)
        | None -> err "generic %s of %s has no value" g.Kir.gd_name inst_path)
      sub_entity.Unit_info.en_generics
  in
  ignore comp_generics;
  (* port connections in the sub-entity's formal order *)
  let connectors = ref [] in
  let port_signals =
    Array.of_list
      (List.map
         (fun (p : Kir.port_decl) ->
           match List.assoc_opt p.Kir.pd_name inst.Kir.inst_port_map with
           | Some (Kir.Act_signal sref) -> (
             match sref with
             | Kir.Sig_local i when i < Array.length signals -> Some signals.(i)
             | Kir.Sig_global { package; name } -> Hashtbl.find_opt ctx.globals (package, name)
             | _ -> None)
           | Some (Kir.Act_signal_index (sref, ix_expr)) ->
             (* element association: a fresh port signal plus an implicit
                connector process created below *)
             let parent =
               match sref with
               | Kir.Sig_local i when i < Array.length signals -> signals.(i)
               | Kir.Sig_global { package; name } -> (
                 match Hashtbl.find_opt ctx.globals (package, name) with
                 | Some s -> s
                 | None -> err "global signal %s.%s not elaborated" package name)
               | _ -> err "bad element actual for port %s of %s" p.Kir.pd_name inst_path
             in
             let ix =
               match eval_static ~subst:(Some subst) ix_expr with
               | Some v -> Value.as_int v
               | None -> err "element index for port %s of %s is not static" p.Kir.pd_name inst_path
             in
             let init =
               match Value.array_get parent.Rt.current ix with
               | Some v -> v
               | None -> err "element index %d out of range for %s" ix parent.Rt.sig_name
             in
             let port_sig =
               make_signal ctx
                 ~path:(Printf.sprintf "%s:%s" inst_path p.Kir.pd_name)
                 ~ty:p.Kir.pd_ty ~kind:`Plain ~resolution:None ~init_expr:None ~subst ()
             in
             port_sig.Rt.current <- init;
             port_sig.Rt.last_value <- init;
             connectors := (p.Kir.pd_mode, parent, `Ix ix, port_sig, p.Kir.pd_name) :: !connectors;
             Some port_sig
           | Some (Kir.Act_signal_slice (sref, (lo_e, dir, hi_e))) ->
             (* slice association: like element association, over a static
                index range *)
             let parent =
               match sref with
               | Kir.Sig_local i when i < Array.length signals -> signals.(i)
               | Kir.Sig_global { package; name } -> (
                 match Hashtbl.find_opt ctx.globals (package, name) with
                 | Some s -> s
                 | None -> err "global signal %s.%s not elaborated" package name)
               | _ -> err "bad slice actual for port %s of %s" p.Kir.pd_name inst_path
             in
             let static e =
               match eval_static ~subst:(Some subst) e with
               | Some v -> Value.as_int v
               | None ->
                 err "slice bound for port %s of %s is not static" p.Kir.pd_name inst_path
             in
             let rng = (static lo_e, dir, static hi_e) in
             let rebound_to_port v =
               (* the slice keeps the parent's index values; inside the
                  instance the port's own bounds apply *)
               match (v, Types.range p.Kir.pd_ty) with
               | Value.Varray { elems; _ }, Some (l, d, r)
                 when Value.range_length (l, d, r) = Array.length elems ->
                 Value.Varray { bounds = (l, d, r); elems }
               | _ -> v
             in
             let init =
               try rebound_to_port (Value_ops.slice parent.Rt.current rng)
               with Value_ops.Runtime_error m ->
                 err "slice actual for port %s of %s: %s" p.Kir.pd_name inst_path m
             in
             let port_sig =
               make_signal ctx
                 ~path:(Printf.sprintf "%s:%s" inst_path p.Kir.pd_name)
                 ~ty:p.Kir.pd_ty ~kind:`Plain ~resolution:None ~init_expr:None ~subst ()
             in
             port_sig.Rt.current <- init;
             port_sig.Rt.last_value <- init;
             connectors :=
               (p.Kir.pd_mode, parent, `Slice (rng, rebound_to_port), port_sig, p.Kir.pd_name)
               :: !connectors;
             Some port_sig
           | Some (Kir.Act_expr e) ->
             (* expression actual: a fresh signal holding the value *)
             let v =
               match eval_static ~subst:(Some subst) e with
               | Some v -> v
               | None -> Value.default_of p.Kir.pd_ty
             in
             let s =
               make_signal ctx
                 ~path:(Printf.sprintf "%s:%s" inst_path p.Kir.pd_name)
                 ~ty:p.Kir.pd_ty ~kind:`Plain ~resolution:None ~init_expr:None ~subst ()
             in
             s.Rt.current <- v;
             s.Rt.last_value <- v;
             Some s
           | Some Kir.Act_open | None -> None)
         sub_entity.Unit_info.en_ports)
  in
  ignore comp_ports;
  (* implicit connector processes for element associations *)
  List.iter
    (fun (mode, parent, part, port_sig, pname) ->
      let connect ~src ~run label sensitivity =
        let proc_ref = ref None in
        let proc =
          Kernel.add_process ctx.kernel
            ~name:(Printf.sprintf "%s:%s:%s" inst_path pname label)
            ~sensitivity ~has_wait:false
            ~body:(fun () ->
              match !proc_ref with
              | Some proc -> run proc.Rt.proc_id
              | None -> ())
        in
        ignore src;
        proc_ref := Some proc
      in
      let now () = Kernel.now ctx.kernel in
      let owned_indices =
        match part with
        | `Ix ix -> [ ix ]
        | `Slice ((lo, d, hi), _) -> Value.range_indices (lo, d, hi)
      in
      let read_part () =
        match part with
        | `Ix ix -> Value.array_get parent.Rt.current ix
        | `Slice (rng, rebound) -> (
          try Some (rebound (Value_ops.slice parent.Rt.current rng))
          with Value_ops.Runtime_error _ -> None)
      in
      let write_part base =
        match part with
        | `Ix ix -> Value_ops.update_index base ix port_sig.Rt.current
        | `Slice (rng, _) -> Value_ops.update_slice base rng port_sig.Rt.current
      in
      (match mode with
      | Kir.Arg_in | Kir.Arg_inout ->
        (* port follows the parent part *)
        connect ~src:parent "conn_in" [ parent ] ~run:(fun pid ->
            match read_part () with
            | Some v ->
              let d = Rt.driver_of port_sig ~proc_id:pid in
              Rt.schedule d ~mode:Kir.Inertial ~transactions:[ (now (), Some v) ]
            | None -> ())
      | Kir.Arg_out -> ());
      match mode with
      | Kir.Arg_out | Kir.Arg_inout ->
        (* parent part follows the port *)
        connect ~src:port_sig "conn_out" [ port_sig ] ~run:(fun pid ->
            let d = Rt.driver_of parent ~proc_id:pid in
            d.Rt.drv_indices <- Some owned_indices;
            let base =
              match List.rev d.Rt.drv_wave with
              | (_, Some v) :: _ -> v
              | (_, None) :: _ | [] -> d.Rt.drv_value
            in
            let whole = write_part base in
            Rt.schedule d ~mode:Kir.Inertial ~transactions:[ (now (), Some whole) ];
            (* schedule clears ownership-agnostic state; restore the mask *)
            d.Rt.drv_indices <- Some owned_indices)
      | Kir.Arg_in -> ())
    !connectors;
  elaborate_instance ctx ~path:inst_path ~entity:sub_entity ~arch:sub_arch ~generic_values
    ~port_signals ~config_specs:[]

(* ------------------------------------------------------------------ *)
(* Entry point *)

type top =
  | Top_entity of { entity : string; arch : string option }
  | Top_configuration of string

(** Elaborate [top] from [lv] into a fresh kernel.  [step_budget] bounds
    the number of elaboration steps (signals + processes + instances);
    beyond it {!Budget_exhausted} is raised — callers convert it into a
    budget diagnostic. *)
let elaborate ?(trace_signals = true) ?step_budget (lv : library_view) (top : top) :
    model =
  let kernel = Kernel.create () in
  let ctx =
    {
      lv;
      kernel;
      ns = Name_server.create ();
      trace = Trace.create ();
      globals = Hashtbl.create 16;
      pkg_functions =
        (let deferred = package_deferred lv in
         let subst =
           {
             Kir_util.generic = (fun _ -> None);
             unit_const = (fun name -> Hashtbl.find_opt deferred name);
           }
         in
         let tbl = package_functions lv in
         Hashtbl.iter
           (fun k (s : Kir.subprogram) ->
             Hashtbl.replace tbl k
               { s with Kir.sub_body = Kir_util.subst_stmts subst s.Kir.sub_body })
           (Hashtbl.copy tbl);
         tbl);
      pkg_deferred = package_deferred lv;
      sig_counter = 0;
      instance_count = 0;
      trace_signals;
      step_budget;
      steps_used = 0;
    }
  in
  elaborate_package_signals ctx;
  let entity_name, arch_name, config_specs =
    match top with
    | Top_entity { entity; arch } -> (entity, arch, [])
    | Top_configuration name -> (
      match lv.lv_find ~library:"WORK" ~key:("config:" ^ name) with
      | Some { Unit_info.u_info = Unit_info.Uconfig cf; _ } ->
        (cf.Unit_info.cf_entity, Some cf.Unit_info.cf_arch, cf.Unit_info.cf_specs)
      | _ -> err "no configuration %s in the working library" name)
  in
  let entity =
    match find_entity lv ~library:"WORK" entity_name with
    | Some en -> en
    | None -> err "no entity %s in the working library" entity_name
  in
  let arch =
    match arch_name with
    | Some a -> (
      match find_arch lv ~library:"WORK" ~entity:entity_name a with
      | Some ar -> ar
      | None -> err "no architecture %s of entity %s" a entity_name)
    | None -> (
      match latest_arch lv ~library:"WORK" ~entity:entity_name with
      | Some ar -> ar
      | None -> err "entity %s has no architecture" entity_name)
  in
  let n_ports = List.length entity.Unit_info.en_ports in
  elaborate_instance ctx
    ~path:(":" ^ String.lowercase_ascii entity_name)
    ~entity ~arch ~generic_values:[]
    ~port_signals:(Array.make (max 1 n_ports) None)
    ~config_specs;
  {
    m_kernel = kernel;
    m_ns = ctx.ns;
    m_trace = ctx.trace;
    m_globals = ctx.globals;
    m_functions_loaded = Hashtbl.length ctx.pkg_functions;
    m_instances = ctx.instance_count;
  }
