(** The daemon's warm worker: one long-lived compiler servicing requests
    behind a request-level firewall and an out-of-band watchdog.

    {!handle} is total: every admitted request gets a structured response.
    Budget escapes become [timeout], contained internal escapes become
    [internal], and a request wedged past its deadline is broken by the
    SIGALRM watchdog, answered [timeout wedged=1], and the worker state
    recycled.  Only process-fatal conditions ([Out_of_memory],
    [Sys.Break]) propagate. *)

type config = {
  w_default_deadline_s : float; (* when the request names none *)
  w_max_deadline_s : float; (* requests cannot ask for more *)
  w_watchdog_grace_s : float; (* watchdog = deadline + grace *)
  w_allow_faults : bool; (* honor poison= / spin_ms= / hog_kb= request fields *)
  w_recycle_every : int; (* fresh compiler every N requests; 0 = never *)
  w_budgets : Supervisor.budgets; (* base limits under request overrides *)
  w_ref_libs : (string * string) list; (* reference libraries (name, dir) *)
}

val default_config : config

type t

val create : config -> t

val generation : t -> int
(** Bumped by every {!recycle}. *)

val served : t -> int
(** Requests handled so far (across recycles). *)

val last_phases : t -> (string * float) list
(** Per-phase self-time (compiler phase name, seconds) charged by the
    last {!handle} — the compiler's phase timer diffed around the
    request, robust to mid-request recycles. *)

val last_allocs : t -> (string * float) list
(** Per-phase self-allocated words charged by the last {!handle} — the
    phase timer's allocation table diffed around the request, same
    discipline as {!last_phases}. *)

val last_alloc_minor_w : t -> float
(** Minor-heap words the last {!handle} allocated. *)

val last_alloc_major_w : t -> float
(** Direct major-heap words (promotions excluded) of the last {!handle}. *)

val last_alloc_w : t -> float
(** Total words of the last {!handle}: minor + direct-major. *)

val recycle : t -> unit
(** Replace the warm compiler with a fresh one. *)

exception Wedged of { after_s : float }
(** Raised by the watchdog's SIGALRM handler inside the wedged request. *)

val with_watchdog : seconds:float -> (unit -> 'a) -> 'a
(** Run [f] under an interval-timer watchdog that raises {!Wedged} in it
    after [seconds].  Exposed for the unit battery. *)

val handle : t -> Serve_protocol.request -> Serve_protocol.response
(** Process one admitted request (see module description). *)
