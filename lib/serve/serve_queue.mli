(** Bounded admission queue with load shedding and an honest retry-after
    hint (EWMA of recent service times x backlog depth). *)

type 'a t

val create : capacity:int -> 'a t
val length : 'a t -> int
val capacity : 'a t -> int

val note_service_time : 'a t -> float -> unit
(** Record a completed request's service time — feeds the retry hint. *)

val retry_after_s : 'a t -> float
(** Expected time for the current backlog (plus in-flight work) to drain. *)

type 'a admission =
  | Admitted
  | Shed of { retry_after_s : float }

val admit : 'a t -> 'a -> 'a admission
(** Enqueue, or shed with a retry hint when the queue is at capacity. *)

val pop : 'a t -> 'a option

val drain : 'a t -> 'a list
(** Empty the queue, returning the entries in arrival order.  Also
    resets the service-time EWMA: a drained queue starts a new epoch. *)
