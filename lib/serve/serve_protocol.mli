(** The wire protocol of the compile service: length-prefixed frames over a
    Unix-domain stream socket, one request and one response per connection.

    Frame = 4 magic bytes ["AGVS"] + 4-byte big-endian payload length +
    payload.  Payload = one [vhdl-serve/1] header line + free-form body
    (VHDL source on requests; diagnostics/results on responses). *)

val magic : string
val header_bytes : int
val version_tag : string

val default_max_frame : int
(** Default payload-size limit (4 MiB). *)

(** {1 Framing} *)

type frame_error =
  | Bad_magic
  | Oversized of int (* declared payload length *)
  | Torn of string (* EOF / idle timeout mid-frame *)

val frame_error_to_string : frame_error -> string

val frame : string -> string
(** Wrap a payload in a frame. *)

val parse_frame :
  ?max_frame:int ->
  string ->
  [ `Frame of string * int | `Incomplete of int | `Error of frame_error ]
(** Incremental parse over buffered bytes.  [`Frame (payload, consumed)] on
    a complete frame; [`Incomplete n] needs at least [n] more bytes.  Pure —
    the daemon's per-connection reader and the unit battery share it. *)

(** {1 Requests} *)

type verb =
  | Ping
  | Compile
  | Simulate
  | Stats
  | Slo (* rolling SLO windows: p50/p95/p99, shed and internal rates *)
  | Shutdown

val verb_name : verb -> string
val verb_of_name : string -> verb option

type request = {
  rq_verb : verb;
  rq_deadline_s : float option; (* per-request wall-clock budget *)
  rq_fuel : int option; (* per-request rule-application budget *)
  rq_top : string option; (* Simulate: entity to elaborate *)
  rq_max_ns : int; (* Simulate: horizon (default 1000) *)
  rq_poison : string option; (* fault injection (daemon must allow) *)
  rq_spin_ms : int; (* fault injection: busy-wait before work *)
  rq_hog_kb : int; (* fault injection: retain this many kB in the worker *)
  rq_json : bool; (* Stats/Slo: answer with a JSON body *)
  rq_source : string;
}

val request :
  ?deadline_s:float ->
  ?fuel:int ->
  ?top:string ->
  ?max_ns:int ->
  ?poison:string ->
  ?spin_ms:int ->
  ?hog_kb:int ->
  ?json:bool ->
  ?source:string ->
  verb ->
  request

val encode_request : request -> string
val decode_request : string -> (request, string) result

(** {1 Responses} *)

type status =
  | Ok_
  | Error_ (* user-level diagnostics *)
  | Internal (* a contained escape answered for the request *)
  | Timeout (* budget / watchdog *)
  | Overload (* shed: queue full *)
  | Draining (* shed: daemon shutting down *)
  | Bad_request (* unparseable payload or oversized frame *)

val status_name : status -> string
val status_of_name : string -> status option

val status_exit_code : status -> int
(** The stable exit code [vhdlc request] maps each status to. *)

type response = {
  rs_status : status;
  rs_retry_after_s : float option;
  rs_wedged : bool; (* the watchdog fired; the worker was recycled *)
  rs_request_id : int option; (* the daemon's id: correlates the response
                                 with event-log lines and trace spans *)
  rs_body : string;
}

val response :
  ?retry_after_s:float -> ?wedged:bool -> ?request_id:int -> ?body:string ->
  status -> response

val encode_response : response -> string
val decode_response : string -> (response, string) result
