(** The compile-service daemon: a select-based event loop over a
    Unix-domain socket, one request and one response per connection.

    Robustness layers, outermost first:

    - {b framing}: per-connection bytes accumulate through the pure
      {!Serve_protocol.parse_frame}; bad magic, oversized declarations,
      and torn frames (EOF or idle timeout mid-frame) are answered
      [bad-request] and counted without disturbing the loop;
    - {b admission}: a complete frame must clear the bounded
      {!Serve_queue} — a full queue sheds with [overload] and an honest
      retry-after hint, a draining daemon sheds with [draining];
    - {b processing}: one queued request per loop tick runs on the warm
      {!Serve_worker}, whose firewall and watchdog guarantee a structured
      response;
    - {b shutdown}: SIGTERM/SIGINT start a graceful drain — in-flight and
      already-queued requests are answered, new ones shed, telemetry
      flushed — and the socket file is removed.

    Accounting invariant, asserted by the chaos campaign: every complete
    or failed frame resolves to exactly one of [answered], [shed], or
    [client_gone], so [serve.requests = serve.answered + serve.shed +
    serve.client_gone] at all times. *)

module Tm = Vhdl_telemetry.Telemetry

let m_requests = Tm.counter "serve.requests"
let m_answered = Tm.counter "serve.answered"
let m_shed = Tm.counter "serve.shed"
let m_client_gone = Tm.counter "serve.client_gone"
let m_torn = Tm.counter "serve.torn_frames"
let m_oversized = Tm.counter "serve.oversized"
let m_bad_requests = Tm.counter "serve.bad_requests"
let m_connections = Tm.counter "serve.connections"
let m_latency = Tm.histogram "serve.latency_us"
let g_queue_depth = Tm.gauge "serve.queue_depth"

type config = {
  d_socket : string;
  d_queue_capacity : int;
  d_max_frame : int;
  d_idle_timeout_s : float; (* partial frame older than this is torn *)
  d_worker : Serve_worker.config;
  d_metrics_out : string option; (* flush telemetry JSON here on exit *)
  d_log : string -> unit;
}

let default_config =
  {
    d_socket = "vhdl-serve.sock";
    d_queue_capacity = 16;
    d_max_frame = Serve_protocol.default_max_frame;
    d_idle_timeout_s = 2.0;
    d_worker = Serve_worker.default_config;
    d_metrics_out = None;
    d_log = ignore;
  }

(* one client connection, from accept to close *)
type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable last_read : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  worker : Serve_worker.t;
  queue : (conn * Serve_protocol.request * float) Serve_queue.t;
  mutable conns : conn list; (* still reading their request frame *)
  mutable draining : bool;
  mutable stop : bool; (* drain finished: leave the loop *)
}

let now = Vhdl_util.Unix_compat.now

(* ------------------------------------------------------------------ *)
(* Response delivery.  The write is blocking (responses are small and
   local); a peer that vanished mid-response surfaces as EPIPE/ECONNRESET
   — with SIGPIPE ignored — and is accounted [client_gone]. *)

type fate =
  | Answered
  | Shed_
  | Client_gone

let count_fate = function
  | Answered -> Tm.incr m_answered
  | Shed_ -> Tm.incr m_shed
  | Client_gone -> Tm.incr m_client_gone

let send_response conn (resp : Serve_protocol.response) : fate =
  let bytes = Serve_protocol.frame (Serve_protocol.encode_response resp) in
  let shed_status =
    match resp.Serve_protocol.rs_status with
    | Serve_protocol.Overload | Serve_protocol.Draining -> true
    | _ -> false
  in
  match
    Unix.clear_nonblock conn.fd;
    let n = String.length bytes in
    let rec write_all off =
      if off < n then
        let w = Unix.write_substring conn.fd bytes off (n - off) in
        write_all (off + w)
    in
    write_all 0
  with
  | () -> if shed_status then Shed_ else Answered
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    Client_gone

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

(** Resolve one request attempt: count it, deliver, count the fate. *)
let finish t conn resp =
  Tm.incr m_requests;
  count_fate (send_response conn resp);
  close_conn t conn

(* ------------------------------------------------------------------ *)
(* Frame and request intake *)

let stats_body t =
  let b = Buffer.create 256 in
  let c name = Printf.bprintf b "%s %d\n" name (Tm.counter_value name) in
  List.iter c
    [
      "serve.requests"; "serve.answered"; "serve.shed"; "serve.client_gone";
      "serve.torn_frames"; "serve.oversized"; "serve.bad_requests";
      "serve.faults_contained"; "serve.timeouts"; "serve.wedges";
      "serve.worker_recycles"; "serve.connections";
    ];
  Printf.bprintf b "serve.queue_depth %d\n" (Serve_queue.length t.queue);
  Printf.bprintf b "serve.latency_us.p50 %.0f\n" (Tm.percentile m_latency 0.50);
  Printf.bprintf b "serve.latency_us.p99 %.0f\n" (Tm.percentile m_latency 0.99);
  Printf.bprintf b "serve.worker_generation %d\n" (Serve_worker.generation t.worker);
  Printf.bprintf b "serve.worker_served %d\n" (Serve_worker.served t.worker);
  Buffer.contents b

(** A complete frame arrived on [conn]: decode, dispatch daemon-level
    verbs, or pass admission. *)
let intake t conn payload =
  match Serve_protocol.decode_request payload with
  | Error msg ->
    Tm.incr m_bad_requests;
    finish t conn
      (Serve_protocol.response Serve_protocol.Bad_request ~body:(msg ^ "\n"))
  | Ok rq -> (
    match rq.Serve_protocol.rq_verb with
    | Serve_protocol.Stats ->
      finish t conn (Serve_protocol.response Serve_protocol.Ok_ ~body:(stats_body t))
    | Serve_protocol.Shutdown ->
      t.cfg.d_log "shutdown requested; draining";
      t.draining <- true;
      finish t conn (Serve_protocol.response Serve_protocol.Ok_ ~body:"draining\n")
    | _ when t.draining ->
      finish t conn (Serve_protocol.response Serve_protocol.Draining ~body:"daemon is draining\n")
    | _ -> (
      match Serve_queue.admit t.queue (conn, rq, now ()) with
      | Serve_queue.Admitted ->
        Tm.set g_queue_depth (float_of_int (Serve_queue.length t.queue));
        (* admitted: the conn leaves the reading list; it is answered when
           its request is popped and processed *)
        t.conns <- List.filter (fun c -> c != conn) t.conns
      | Serve_queue.Shed { retry_after_s } ->
        finish t conn
          (Serve_protocol.response Serve_protocol.Overload ~retry_after_s
             ~body:
               (Printf.sprintf "queue full (%d deep); retry after %.3fs\n"
                  (Serve_queue.capacity t.queue) retry_after_s))))

let frame_failure t conn err =
  (match err with
  | Serve_protocol.Torn _ -> Tm.incr m_torn
  | Serve_protocol.Oversized _ -> Tm.incr m_oversized
  | Serve_protocol.Bad_magic -> Tm.incr m_bad_requests);
  finish t conn
    (Serve_protocol.response Serve_protocol.Bad_request
       ~body:(Serve_protocol.frame_error_to_string err ^ "\n"))

(** Drain readable bytes from [conn]; act once a frame completes or the
    framing fails.  EOF with a partial frame is a torn frame from a
    vanished client. *)
let service_readable t conn =
  let chunk = Bytes.create 4096 in
  let rec read_avail () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes conn.buf chunk 0 n;
      conn.last_read <- now ();
      read_avail ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `More
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> `Eof
  in
  let eof = read_avail () = `Eof in
  match Serve_protocol.parse_frame ~max_frame:t.cfg.d_max_frame (Buffer.contents conn.buf) with
  | `Frame (payload, _) -> intake t conn payload
  | `Error err -> frame_failure t conn err
  | `Incomplete _ when eof ->
    if Buffer.length conn.buf = 0 then begin
      (* connected and left without a byte: not a request *)
      close_conn t conn
    end
    else begin
      Tm.incr m_torn;
      Tm.incr m_requests;
      Tm.incr m_client_gone;
      close_conn t conn
    end
  | `Incomplete _ -> ()

(** Partial frames whose client stopped sending: torn after the idle
    timeout, so a stalled writer cannot pin a connection forever. *)
let reap_idle t =
  let deadline = now () -. t.cfg.d_idle_timeout_s in
  List.iter
    (fun conn ->
      if conn.last_read < deadline && Buffer.length conn.buf > 0 then
        frame_failure t conn
          (Serve_protocol.Torn
             (Printf.sprintf "idle %.1fs mid-frame" t.cfg.d_idle_timeout_s))
      else if conn.last_read < deadline then close_conn t conn)
    t.conns

(* ------------------------------------------------------------------ *)
(* Processing *)

(** Pop and answer one admitted request.  The compile itself is blocking —
    the daemon is single-threaded by design; boundedness comes from the
    per-request deadline and the watchdog, not concurrency.  (Frames that
    arrive during a long compile sit in kernel socket buffers and are read
    on the next tick; the admission queue fills — and sheds — then.) *)
let process_one t =
  match Serve_queue.pop t.queue with
  | None -> false
  | Some (conn, rq, admitted_at) ->
    Tm.set g_queue_depth (float_of_int (Serve_queue.length t.queue));
    let resp = Serve_worker.handle t.worker rq in
    let elapsed = now () -. admitted_at in
    Serve_queue.note_service_time t.queue elapsed;
    Tm.observe m_latency (elapsed *. 1e6);
    finish t conn resp;
    true

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let signal_drain = ref false

let create (cfg : config) =
  (* every write to a peer that hung up must surface as EPIPE for the
     fate accounting, never as a fatal signal — also covers callers that
     drive [tick] directly instead of going through [serve] *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.d_socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  {
    cfg;
    listen_fd;
    worker = Serve_worker.create cfg.d_worker;
    queue = Serve_queue.create ~capacity:cfg.d_queue_capacity;
    conns = [];
    draining = false;
    stop = false;
  }

let accept_ready t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Tm.incr m_connections;
      let c = { fd; buf = Buffer.create 256; last_read = now () } in
      t.conns <- c :: t.conns;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  loop ()

let flush_metrics t =
  match t.cfg.d_metrics_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Tm.metrics_json ());
    close_out oc

(** Graceful drain: answer everything already admitted, shed the rest,
    flush telemetry, remove the socket. *)
let shutdown t =
  t.cfg.d_log "draining: answering queued requests";
  while process_one t do () done;
  List.iter
    (fun conn ->
      Tm.incr m_requests;
      count_fate
        (send_response conn
           (Serve_protocol.response Serve_protocol.Draining ~body:"daemon is draining\n"));
      close_conn t conn)
    t.conns;
  flush_metrics t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.d_socket with Unix.Unix_error _ -> ());
  t.cfg.d_log "stopped"

(** One event-loop tick: accept, read, reap idle partials, process one
    queued request.  Exposed for the unit battery; {!serve} loops it. *)
let tick ?(timeout_s = 0.05) t =
  if !signal_drain then begin
    signal_drain := false;
    if t.draining then t.stop <- true else t.draining <- true;
    t.cfg.d_log "signal received; draining"
  end;
  let read_fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
  (match Unix.select read_fds [] [] timeout_s with
  | ready, _, _ ->
    if List.mem t.listen_fd ready then accept_ready t;
    (* oldest connection first, so same-tick admission is FIFO-fair *)
    List.iter
      (fun conn -> if List.mem conn.fd ready then service_readable t conn)
      (List.rev (List.filter (fun c -> List.mem c.fd ready) t.conns))
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  reap_idle t;
  while process_one t do () done;
  if t.draining && Serve_queue.length t.queue = 0 then t.stop <- true

(** Run the daemon until a drain completes.  Installs SIGTERM/SIGINT
    drain handlers and ignores SIGPIPE for the duration. *)
let serve t =
  let drain_handler = Sys.Signal_handle (fun _ -> signal_drain := true) in
  let old_term = Sys.signal Sys.sigterm drain_handler in
  let old_int = Sys.signal Sys.sigint drain_handler in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigpipe old_pipe)
    (fun () ->
      t.cfg.d_log (Printf.sprintf "listening on %s" t.cfg.d_socket);
      while not t.stop do
        tick t
      done;
      shutdown t)
