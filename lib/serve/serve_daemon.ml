(** The compile-service daemon: a select-based event loop over a
    Unix-domain socket, one request and one response per connection.

    Robustness layers, outermost first:

    - {b framing}: per-connection bytes accumulate through the pure
      {!Serve_protocol.parse_frame}; bad magic, oversized declarations,
      and torn frames (EOF or idle timeout mid-frame) are answered
      [bad-request] and counted without disturbing the loop;
    - {b admission}: a complete frame must clear the bounded
      {!Serve_queue} — a full queue sheds with [overload] and an honest
      retry-after hint, a draining daemon sheds with [draining];
    - {b processing}: one queued request per loop tick runs on the warm
      {!Serve_worker}, whose firewall and watchdog guarantee a structured
      response;
    - {b shutdown}: SIGTERM/SIGINT start a graceful drain — in-flight and
      already-queued requests are answered, new ones shed, telemetry
      flushed — and the socket file is removed.

    Observability (lib/obs), threaded through every layer above:

    - every accepted connection is assigned a monotone {b request id},
      echoed in the response header ([rid=N]), carried by every event
      about that request, and attached to the request's telemetry span —
      one number correlates the client's response, the log, and the
      trace;
    - the daemon narrates itself as {b typed events} (accept / admit /
      shed / start / finish / reject / recycle / drain / breach / dump /
      flush) into the always-on flight-recorder ring and, when
      configured, an append-only JSONL sink;
    - the {b flight recorder} is dumped to a timestamped file when the
      request firewall trips, when the watchdog breaks a wedged request,
      and on SIGUSR1 — crash forensics without always-on logging cost;
    - {b rolling SLO windows} summarize the last window of service
      latency (p50/p95/p99), shed rate and [internal] rate, are
      queryable live via the [slo] verb, and are checked each second
      against configured objectives (breaches are events).

    Accounting invariant, asserted by the chaos campaign: every complete
    or failed frame resolves to exactly one of [answered], [shed], or
    [client_gone], so [serve.requests = serve.answered + serve.shed +
    serve.client_gone] at all times.  Event-grammar invariant, asserted
    over the log: every substantive response has exactly one [start] and
    one [finish] sharing its request id. *)

module Tm = Vhdl_telemetry.Telemetry

let m_requests = Tm.counter "serve.requests"
let m_answered = Tm.counter "serve.answered"
let m_shed = Tm.counter "serve.shed"
let m_client_gone = Tm.counter "serve.client_gone"
let m_torn = Tm.counter "serve.torn_frames"
let m_oversized = Tm.counter "serve.oversized"
let m_bad_requests = Tm.counter "serve.bad_requests"
let m_connections = Tm.counter "serve.connections"
let m_breaches = Tm.counter "serve.slo_breaches"
let m_heap_breaches = Tm.counter "serve.heap_breaches"
let m_latency = Tm.histogram "serve.latency_us"
let g_queue_depth = Tm.gauge "serve.queue_depth"

type config = {
  d_socket : string;
  d_queue_capacity : int;
  d_max_frame : int;
  d_idle_timeout_s : float; (* partial frame older than this is torn *)
  d_worker : Serve_worker.config;
  d_metrics_out : string option; (* telemetry JSON: periodic + at drain *)
  d_metrics_flush_ticks : int; (* flush every N ticks (0 = drain only) *)
  d_obs : Obs_log.config; (* event log + flight recorder *)
  d_slo_window_s : float; (* rolling-window width *)
  d_slo : Obs_slo.objectives; (* breach thresholds (may be empty) *)
  d_span_cap : int; (* per-request span buffer (0 = no exemplars) *)
  d_exemplar_k : float; (* slow = k x window p50, absent an objective *)
  d_exemplar_min_obs : int; (* window samples before k*p50 is trusted *)
  d_heap_growth_pct : float; (* heap watchdog threshold (0 = disabled) *)
  d_log : string -> unit;
}

let default_config =
  {
    d_socket = "vhdl-serve.sock";
    d_queue_capacity = 16;
    d_max_frame = Serve_protocol.default_max_frame;
    d_idle_timeout_s = 2.0;
    d_worker = Serve_worker.default_config;
    d_metrics_out = None;
    d_metrics_flush_ticks = 200;
    d_obs = Obs_log.default_config;
    d_slo_window_s = 60.0;
    d_slo = Obs_slo.no_objectives;
    d_span_cap = 512;
    d_exemplar_k = 4.0;
    d_exemplar_min_obs = 8;
    d_heap_growth_pct = 0.0;
    d_log = ignore;
  }

(* one client connection, from accept to close *)
type conn = {
  fd : Unix.file_descr;
  rid : int; (* the request id, assigned at accept *)
  buf : Buffer.t;
  mutable last_read : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  worker : Serve_worker.t;
  queue : (conn * Serve_protocol.request * float) Serve_queue.t;
  obs : Obs_log.t;
  slo : Obs_slo.t;
  mutable next_rid : int;
  mutable ticks : int;
  mutable last_slo_check : float;
  mutable breached : string list; (* metrics currently in breach *)
  mutable last_request : (int * string * string * float) option;
      (* rid, verb, status, service seconds — for stats and dumps *)
  heap_ts : float array; (* heap watchdog ring: sample times ... *)
  heap_w : float array; (* ... and live heap words *)
  mutable heap_len : int; (* samples currently in the ring *)
  mutable heap_pos : int; (* next slot to write *)
  mutable conns : conn list; (* still reading their request frame *)
  mutable draining : bool;
  mutable stop : bool; (* drain finished: leave the loop *)
}

let now = Vhdl_util.Unix_compat.now

(* ------------------------------------------------------------------ *)
(* Response delivery.  The write is blocking (responses are small and
   local); a peer that vanished mid-response surfaces as EPIPE/ECONNRESET
   — with SIGPIPE ignored — and is accounted [client_gone]. *)

type fate =
  | Answered
  | Shed_
  | Client_gone

let count_fate = function
  | Answered -> Tm.incr m_answered
  | Shed_ -> Tm.incr m_shed
  | Client_gone -> Tm.incr m_client_gone

let fate_name = function
  | Answered -> "answered"
  | Shed_ -> "shed"
  | Client_gone -> "client_gone"

let send_response conn (resp : Serve_protocol.response) : fate =
  let bytes = Serve_protocol.frame (Serve_protocol.encode_response resp) in
  let shed_status =
    match resp.Serve_protocol.rs_status with
    | Serve_protocol.Overload | Serve_protocol.Draining -> true
    | _ -> false
  in
  match
    Unix.clear_nonblock conn.fd;
    let n = String.length bytes in
    let rec write_all off =
      if off < n then
        let w = Unix.write_substring conn.fd bytes off (n - off) in
        write_all (off + w)
    in
    write_all 0
  with
  | () -> if shed_status then Shed_ else Answered
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    Client_gone

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

(** The [start] event: response computation for [conn]'s request begins.
    Every substantive response is bracketed by exactly one of these and
    the [finish] that {!finish} emits. *)
let emit_start t conn ~verb ?queue_wait_us ?reason () =
  Obs_log.event t.obs ~rid:conn.rid
    ~fields:
      (List.concat
         [
           [ ("verb", Obs_event.S verb) ];
           (match queue_wait_us with
           | Some x -> [ ("queue_wait_us", Obs_event.F x) ]
           | None -> []);
           (match reason with
           | Some r -> [ ("reason", Obs_event.S r) ]
           | None -> []);
         ])
    Obs_event.Start

(** Resolve one request attempt: count it, stamp the request id into the
    response header, deliver, count and log the fate, feed the SLO
    window.  Admission rejections become [shed] events; everything else
    becomes the [finish] that pairs with the request's [start], stamped
    with its per-phase attribution ([ph_*] fields, microseconds).

    [observe_latency:false] keeps daemon-verb answers (stats, slo,
    bad-request) out of the SLO window's latency sample — the window
    summarizes compile service time, not bookkeeping — while their
    finish events still carry [service_us] and phases so the log-level
    phase-sum invariant holds for every finish. *)
let finish ?service_us ?(phases = []) ?(allocs = []) ?alloc_b
    ?(alloc_minor_b = 0.0) ?(alloc_major_b = 0.0) ?(observe_latency = true) t
    conn resp =
  Tm.incr m_requests;
  let resp = { resp with Serve_protocol.rs_request_id = Some conn.rid } in
  let fate = send_response conn resp in
  count_fate fate;
  let status = resp.Serve_protocol.rs_status in
  let shed =
    match status with
    | Serve_protocol.Overload | Serve_protocol.Draining -> true
    | _ -> false
  in
  Obs_slo.observe t.slo ~now:(now ())
    ?latency_us:(if observe_latency then service_us else None)
    ~phases:(if observe_latency then phases else [])
    ~allocs:(if observe_latency then allocs else [])
    ~alloc_b:
      (if observe_latency then Option.value alloc_b ~default:0.0 else 0.0)
    ~shed
    ~internal:(status = Serve_protocol.Internal) ();
  let base =
    [
      ( (if shed then "reason" else "status"),
        Obs_event.S (Serve_protocol.status_name status) );
      ("fate", Obs_event.S (fate_name fate));
    ]
  in
  if shed then
    Obs_log.event t.obs ~rid:conn.rid
      ~fields:
        (base
        @
        match resp.Serve_protocol.rs_retry_after_s with
        | Some s -> [ ("retry_after_s", Obs_event.F s) ]
        | None -> [])
      Obs_event.Shed
  else
    Obs_log.event t.obs ~rid:conn.rid
      ~fields:
        (List.concat
           [
             base;
             (match service_us with
             | Some x -> [ ("service_us", Obs_event.F x) ]
             | None -> []);
             Obs_attr.fields phases;
             (* the allocation attribution: al_* per phase plus the
                totals the check_log invariant ties them to *)
             (match alloc_b with
             | Some total ->
               Obs_attr.fields_alloc allocs
               @ [
                   ("alloc_b", Obs_event.F total);
                   ("alloc_minor_b", Obs_event.F alloc_minor_b);
                   ("alloc_major_b", Obs_event.F alloc_major_b);
                 ]
             | None -> []);
             (if resp.Serve_protocol.rs_wedged then [ ("wedged", Obs_event.I 1) ]
              else []);
           ])
      Obs_event.Finish;
  close_conn t conn

(** Finish for requests the daemon answers inline (stats, slo, shutdown,
    bad frames): the whole service time is daemon bookkeeping, so the
    attribution is all ["other"], and the SLO window is not fed. *)
let finish_inline ~t0 t conn resp =
  let svc = (now () -. t0) *. 1e6 in
  finish ~service_us:svc
    ~phases:[ ("other", svc) ]
    ~allocs:[ ("other", 0.0) ]
    ~alloc_b:0.0 ~observe_latency:false t conn resp

(* ------------------------------------------------------------------ *)
(* Flight dumps *)

(** Dump the flight recorder (plus the live SLO summary) to a
    timestamped file — on firewall trips, watchdog fires, SIGUSR1, or by
    an embedder's explicit request. *)
let flight_dump t ~reason ?rid () =
  let extra =
    [ ("slo", Obs_slo.summary_json (Obs_slo.summary t.slo ~now:(now ()))) ]
  in
  match Obs_log.dump_flight t.obs ~extra ~reason ?rid () with
  | Ok path ->
    Obs_log.event t.obs ?rid
      ~fields:[ ("path", Obs_event.S path); ("reason", Obs_event.S reason) ]
      Obs_event.Dump;
    t.cfg.d_log (Printf.sprintf "flight dump %s (%s)" path reason)
  | Error msg -> t.cfg.d_log (Printf.sprintf "flight dump failed: %s" msg)

let dump_flight_now ?(reason = "manual") t =
  let rid = Option.map (fun (r, _, _, _) -> r) t.last_request in
  flight_dump t ~reason ?rid ()

(* ------------------------------------------------------------------ *)
(* Frame and request intake *)

let stats_body t =
  Tm.sample_gc (); (* stats must show the heap as of now, not of the
                      last phase close *)
  let b = Buffer.create 256 in
  let c name = Printf.bprintf b "%s %d\n" name (Tm.counter_value name) in
  List.iter c
    [
      "serve.requests"; "serve.answered"; "serve.shed"; "serve.client_gone";
      "serve.torn_frames"; "serve.oversized"; "serve.bad_requests";
      "serve.faults_contained"; "serve.timeouts"; "serve.wedges";
      "serve.worker_recycles"; "serve.connections"; "serve.events";
      "serve.flight_dumps"; "serve.slo_breaches"; "serve.heap_breaches";
    ];
  Printf.bprintf b "serve.queue_depth %d\n" (Serve_queue.length t.queue);
  Printf.bprintf b "serve.latency_us.p50 %.0f\n" (Tm.percentile m_latency 0.50);
  Printf.bprintf b "serve.latency_us.p99 %.0f\n" (Tm.percentile m_latency 0.99);
  Printf.bprintf b "serve.worker_generation %d\n" (Serve_worker.generation t.worker);
  Printf.bprintf b "serve.worker_served %d\n" (Serve_worker.served t.worker);
  let st = Gc.quick_stat () in
  Printf.bprintf b "gc.heap_words %d\n" st.Gc.heap_words;
  Printf.bprintf b "gc.top_heap_words %d\n" st.Gc.top_heap_words;
  Buffer.contents b

(** The machine-readable stats document `vhdlc request stats --json` and
    `vhdlc top` read: ledger, queue, worker, latency percentiles, the
    last serviced request, and the live SLO window. *)
let stats_json t =
  Tm.sample_gc ();
  let module J = Tm.Json in
  let c name = (name, J.int (Tm.counter_value name)) in
  let st = Gc.quick_stat () in
  J.obj
    [
      ("uptime_s", J.float (now ()));
      ("draining", (if t.draining then "true" else "false"));
      ( "ledger",
        J.obj
          (List.map c
             [
               "serve.requests"; "serve.answered"; "serve.shed";
               "serve.client_gone"; "serve.torn_frames"; "serve.oversized";
               "serve.bad_requests"; "serve.faults_contained"; "serve.timeouts";
               "serve.wedges"; "serve.worker_recycles"; "serve.connections";
               "serve.events"; "serve.flight_dumps"; "serve.slo_breaches";
               "serve.heap_breaches";
             ]) );
      ( "queue",
        J.obj
          [
            ("depth", J.int (Serve_queue.length t.queue));
            ("capacity", J.int (Serve_queue.capacity t.queue));
            ("retry_after_s", J.float (Serve_queue.retry_after_s t.queue));
          ] );
      ( "worker",
        J.obj
          [
            ("generation", J.int (Serve_worker.generation t.worker));
            ("served", J.int (Serve_worker.served t.worker));
          ] );
      ( "latency_us",
        J.obj
          [
            ("p50", J.float (Tm.percentile m_latency 0.50));
            ("p90", J.float (Tm.percentile m_latency 0.90));
            ("p99", J.float (Tm.percentile m_latency 0.99));
          ] );
      ( "heap",
        J.obj
          [
            ("live_words", J.int st.Gc.heap_words);
            ("top_words", J.int st.Gc.top_heap_words);
            ("allocated_words", J.float (Tm.allocated_words_now ()));
          ] );
      ( "last_request",
        match t.last_request with
        | None -> "null"
        | Some (rid, verb, status, service_s) ->
          J.obj
            [
              ("rid", J.int rid);
              ("verb", J.str verb);
              ("status", J.str status);
              ("service_us", J.float (service_s *. 1e6));
            ] );
      ("slo", Obs_slo.summary_json (Obs_slo.summary t.slo ~now:(now ())));
    ]

let pp_objective b name limit value breached =
  match limit with
  | None -> ()
  | Some l ->
    Printf.bprintf b "objective %s <= %.3f: %.3f (%s)\n" name l value
      (if breached then "BREACHED" else "ok")

let slo_body t =
  let s = Obs_slo.summary t.slo ~now:(now ()) in
  let b = Buffer.create 256 in
  Printf.bprintf b "%s\n" (Format.asprintf "%a" Obs_slo.pp_summary s);
  (match Obs_attr.attribution s.Obs_slo.s_phase_us with
  | "" -> ()
  | att -> Printf.bprintf b "driven by: %s\n" att);
  (match Obs_attr.attribution s.Obs_slo.s_alloc_phase_b with
  | "" -> ()
  | att -> Printf.bprintf b "allocated by: %s\n" att);
  let breached metric = List.mem metric t.breached in
  pp_objective b "p99_ms" t.cfg.d_slo.Obs_slo.o_p99_ms
    (s.Obs_slo.s_p99_us /. 1000.0) (breached "p99_ms");
  pp_objective b "shed_pct" t.cfg.d_slo.Obs_slo.o_shed_pct s.Obs_slo.s_shed_pct
    (breached "shed_pct");
  Printf.bprintf b "breaches_total %d\n" (Tm.counter_value "serve.slo_breaches");
  Buffer.contents b

let slo_json t =
  let module J = Tm.Json in
  let opt = function None -> "null" | Some x -> J.float x in
  J.obj
    [
      ("slo", Obs_slo.summary_json (Obs_slo.summary t.slo ~now:(now ())));
      ( "objectives",
        J.obj
          [
            ("p99_ms", opt t.cfg.d_slo.Obs_slo.o_p99_ms);
            ("shed_pct", opt t.cfg.d_slo.Obs_slo.o_shed_pct);
          ] );
      ("breached", J.arr (List.map J.str t.breached));
      ("breaches_total", J.int (Tm.counter_value "serve.slo_breaches"));
    ]

(** Flip into draining exactly once, with the event that records why. *)
let begin_drain t ~reason =
  if not t.draining then begin
    t.draining <- true;
    Obs_log.event t.obs
      ~fields:
        [ ("phase", Obs_event.S "begin"); ("reason", Obs_event.S reason) ]
      Obs_event.Drain;
    t.cfg.d_log (reason ^ "; draining")
  end

(** A complete frame arrived on [conn]: decode, dispatch daemon-level
    verbs, or pass admission. *)
let intake t conn payload =
  let t0 = now () in
  match Serve_protocol.decode_request payload with
  | Error msg ->
    Tm.incr m_bad_requests;
    emit_start t conn ~verb:"invalid" ~reason:msg ();
    finish_inline ~t0 t conn
      (Serve_protocol.response Serve_protocol.Bad_request ~body:(msg ^ "\n"))
  | Ok rq -> (
    match rq.Serve_protocol.rq_verb with
    | Serve_protocol.Stats ->
      emit_start t conn ~verb:"stats" ();
      let body =
        if rq.Serve_protocol.rq_json then stats_json t ^ "\n" else stats_body t
      in
      finish_inline ~t0 t conn (Serve_protocol.response Serve_protocol.Ok_ ~body)
    | Serve_protocol.Slo ->
      emit_start t conn ~verb:"slo" ();
      let body =
        if rq.Serve_protocol.rq_json then slo_json t ^ "\n" else slo_body t
      in
      finish_inline ~t0 t conn (Serve_protocol.response Serve_protocol.Ok_ ~body)
    | Serve_protocol.Shutdown ->
      emit_start t conn ~verb:"shutdown" ();
      begin_drain t ~reason:"shutdown requested";
      finish_inline ~t0 t conn
        (Serve_protocol.response Serve_protocol.Ok_ ~body:"draining\n")
    | _ when t.draining ->
      finish t conn (Serve_protocol.response Serve_protocol.Draining ~body:"daemon is draining\n")
    | _ -> (
      match Serve_queue.admit t.queue (conn, rq, now ()) with
      | Serve_queue.Admitted ->
        Tm.set g_queue_depth (float_of_int (Serve_queue.length t.queue));
        Obs_log.event t.obs ~rid:conn.rid
          ~fields:[ ("queue_depth", Obs_event.I (Serve_queue.length t.queue)) ]
          Obs_event.Admit;
        (* admitted: the conn leaves the reading list; it is answered when
           its request is popped and processed *)
        t.conns <- List.filter (fun c -> c != conn) t.conns
      | Serve_queue.Shed { retry_after_s } ->
        finish t conn
          (Serve_protocol.response Serve_protocol.Overload ~retry_after_s
             ~body:
               (Printf.sprintf "queue full (%d deep); retry after %.3fs\n"
                  (Serve_queue.capacity t.queue) retry_after_s))))

let frame_failure t conn err =
  let t0 = now () in
  (match err with
  | Serve_protocol.Torn _ -> Tm.incr m_torn
  | Serve_protocol.Oversized _ -> Tm.incr m_oversized
  | Serve_protocol.Bad_magic -> Tm.incr m_bad_requests);
  emit_start t conn ~verb:"invalid"
    ~reason:(Serve_protocol.frame_error_to_string err) ();
  finish_inline ~t0 t conn
    (Serve_protocol.response Serve_protocol.Bad_request
       ~body:(Serve_protocol.frame_error_to_string err ^ "\n"))

(** Drain readable bytes from [conn]; act once a frame completes or the
    framing fails.  EOF with a partial frame is a torn frame from a
    vanished client. *)
let service_readable t conn =
  let chunk = Bytes.create 4096 in
  let rec read_avail () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | n ->
      Buffer.add_subbytes conn.buf chunk 0 n;
      conn.last_read <- now ();
      read_avail ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `More
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> `Eof
  in
  let eof = read_avail () = `Eof in
  match Serve_protocol.parse_frame ~max_frame:t.cfg.d_max_frame (Buffer.contents conn.buf) with
  | `Frame (payload, _) -> intake t conn payload
  | `Error err -> frame_failure t conn err
  | `Incomplete _ when eof ->
    if Buffer.length conn.buf = 0 then begin
      (* connected and left without a byte: not a request *)
      Obs_log.event t.obs ~rid:conn.rid
        ~fields:[ ("reason", Obs_event.S "closed without a request") ]
        Obs_event.Reject;
      close_conn t conn
    end
    else begin
      Tm.incr m_torn;
      Tm.incr m_requests;
      Tm.incr m_client_gone;
      Obs_log.event t.obs ~rid:conn.rid
        ~fields:
          [
            ("reason", Obs_event.S "torn frame: client vanished mid-frame");
            ("fate", Obs_event.S "client_gone");
          ]
        Obs_event.Reject;
      close_conn t conn
    end
  | `Incomplete _ -> ()

(** Partial frames whose client stopped sending: torn after the idle
    timeout, so a stalled writer cannot pin a connection forever. *)
let reap_idle t =
  let deadline = now () -. t.cfg.d_idle_timeout_s in
  List.iter
    (fun conn ->
      if conn.last_read < deadline && Buffer.length conn.buf > 0 then
        frame_failure t conn
          (Serve_protocol.Torn
             (Printf.sprintf "idle %.1fs mid-frame" t.cfg.d_idle_timeout_s))
      else if conn.last_read < deadline then close_conn t conn)
    t.conns

(* ------------------------------------------------------------------ *)
(* Processing *)

(** Write the slow-request exemplar for [rid]: the request's span tree
    as a Chrome trace, its phase breakdown, its counter delta.  Quiet on
    rate-limit suppression; a failed write is logged, never fatal. *)
let exemplar_dump t ~rid ~verb ~status ~service_us ~threshold_us ~phases
    ~spans ~spans_dropped =
  let x =
    {
      Obs_log.x_rid = rid;
      x_verb = verb;
      x_status = status;
      x_service_us = service_us;
      x_threshold_us = threshold_us;
      x_phases_us = phases;
      x_trace = Tm.to_chrome_trace ~process_name:"vhdlc-serve" ~spans ();
      x_spans_dropped = spans_dropped;
    }
  in
  match Obs_log.dump_exemplar t.obs x with
  | Ok None -> () (* rate-limited: the counter remembers, the disk rests *)
  | Ok (Some path) ->
    Obs_log.event t.obs ~rid
      ~fields:
        [
          ("path", Obs_event.S path);
          ("reason", Obs_event.S "exemplar");
          ("service_us", Obs_event.F service_us);
          ("threshold_us", Obs_event.F threshold_us);
        ]
      Obs_event.Dump;
    t.cfg.d_log
      (Printf.sprintf "exemplar %s (rid %d: %.0fus over %.0fus threshold)"
         path rid service_us threshold_us)
  | Error msg -> t.cfg.d_log (Printf.sprintf "exemplar dump failed: %s" msg)

(** Pop and answer one admitted request.  The compile itself is blocking —
    the daemon is single-threaded by design; boundedness comes from the
    per-request deadline and the watchdog, not concurrency.  (Frames that
    arrive during a long compile sit in kernel socket buffers and are read
    on the next tick; the admission queue fills — and sheds — then.) *)
let process_one t =
  match Serve_queue.pop t.queue with
  | None -> false
  | Some (conn, rq, admitted_at) ->
    Tm.set g_queue_depth (float_of_int (Serve_queue.length t.queue));
    let verb = Serve_protocol.verb_name rq.Serve_protocol.rq_verb in
    let started = now () in
    emit_start t conn ~verb ~queue_wait_us:((started -. admitted_at) *. 1e6) ();
    let snap = Tm.snapshot () in
    let gen0 = Serve_worker.generation t.worker in
    let run () =
      Tm.with_span ~cat:"serve"
        ~args:[ ("rid", string_of_int conn.rid); ("verb", verb) ]
        "serve.request"
        (fun () -> Serve_worker.handle t.worker rq)
    in
    (* the request's spans are buffered (bounded) whether or not global
       tracing is on, so a slow request can always produce an exemplar *)
    let resp, req_spans, spans_dropped =
      if t.cfg.d_span_cap > 0 then
        Tm.with_request_spans ~cap:t.cfg.d_span_cap run
      else (run (), [], 0)
    in
    let elapsed = now () -. admitted_at in
    Serve_queue.note_service_time t.queue elapsed;
    Tm.observe m_latency (elapsed *. 1e6);
    Obs_log.note_request_delta t.obs ~rid:conn.rid (Tm.delta snap);
    if Serve_worker.generation t.worker > gen0 then
      Obs_log.event t.obs ~rid:conn.rid
        ~fields:
          [
            ("generation", Obs_event.I (Serve_worker.generation t.worker));
            ( "reason",
              Obs_event.S
                (if resp.Serve_protocol.rs_wedged then "wedged"
                 else if resp.Serve_protocol.rs_status = Serve_protocol.Internal
                 then "firewall"
                 else "periodic") );
          ]
        Obs_event.Recycle;
    (* the post-mortem moments: a tripped firewall or a fired watchdog
       leaves its evidence on disk, named after the offending request *)
    if resp.Serve_protocol.rs_wedged then
      flight_dump t ~reason:"watchdog" ~rid:conn.rid ()
    else if resp.Serve_protocol.rs_status = Serve_protocol.Internal then
      flight_dump t ~reason:"firewall" ~rid:conn.rid ();
    let status = Serve_protocol.status_name resp.Serve_protocol.rs_status in
    t.last_request <- Some (conn.rid, verb, status, elapsed);
    let service_us = elapsed *. 1e6 in
    let phases =
      Obs_attr.with_other ~service_us
        (List.map
           (fun (name, s) -> (name, s *. 1e6))
           (Serve_worker.last_phases t.worker))
    in
    (* the slow bar is set by the window as it was BEFORE this request
       is observed — a request cannot raise its own threshold *)
    let threshold_us =
      if t.cfg.d_span_cap > 0 then
        Obs_attr.exemplar_threshold_us ~objectives:t.cfg.d_slo
          ~summary:(Obs_slo.summary t.slo ~now:(now ()))
          ~k:t.cfg.d_exemplar_k ~min_observed:t.cfg.d_exemplar_min_obs
      else None
    in
    let bpw = float_of_int Tm.bytes_per_word in
    let alloc_b = Serve_worker.last_alloc_w t.worker *. bpw in
    let allocs =
      Obs_attr.with_other_alloc ~alloc_b
        (List.map
           (fun (name, w) -> (name, w *. bpw))
           (Serve_worker.last_allocs t.worker))
    in
    let rid = conn.rid in
    finish ~service_us ~phases ~allocs ~alloc_b
      ~alloc_minor_b:(Serve_worker.last_alloc_minor_w t.worker *. bpw)
      ~alloc_major_b:(Serve_worker.last_alloc_major_w t.worker *. bpw)
      t conn resp;
    (match threshold_us with
    | Some th when service_us > th ->
      exemplar_dump t ~rid ~verb ~status ~service_us ~threshold_us:th ~phases
        ~spans:req_spans ~spans_dropped
    | Some _ | None -> ());
    true

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let signal_drain = ref false
let signal_dump = ref false

let create (cfg : config) =
  (* every write to a peer that hung up must surface as EPIPE for the
     fate accounting, never as a fatal signal — also covers callers that
     drive [tick] directly instead of going through [serve] *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink cfg.d_socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.d_socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  {
    cfg;
    listen_fd;
    worker = Serve_worker.create cfg.d_worker;
    queue = Serve_queue.create ~capacity:cfg.d_queue_capacity;
    obs = Obs_log.create cfg.d_obs;
    slo = Obs_slo.create ~window_s:cfg.d_slo_window_s ();
    next_rid = 0;
    ticks = 0;
    last_slo_check = now ();
    breached = [];
    last_request = None;
    heap_ts = Array.make 64 0.0;
    heap_w = Array.make 64 0.0;
    heap_len = 0;
    heap_pos = 0;
    conns = [];
    draining = false;
    stop = false;
  }

let accept_ready t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Tm.incr m_connections;
      t.next_rid <- t.next_rid + 1;
      let c = { fd; rid = t.next_rid; buf = Buffer.create 256; last_read = now () } in
      Obs_log.event t.obs ~rid:c.rid Obs_event.Accept;
      t.conns <- c :: t.conns;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  loop ()

(** Write the telemetry JSON via a temp file + atomic rename, so a
    SIGKILL mid-write can never leave a half-written metrics file — a
    reader sees the previous interval or this one, nothing in between. *)
let flush_metrics ?(event = true) t =
  match t.cfg.d_metrics_out with
  | None -> ()
  | Some path ->
    (* the gc.* gauges otherwise refresh only at phase-frame close, so an
       idle daemon would flush stale heap numbers forever *)
    Tm.sample_gc ();
    let tmp = path ^ ".tmp" in
    (try
       Vhdl_util.Unix_compat.write_file tmp (Tm.metrics_json ());
       Unix.rename tmp path;
       if event then
         Obs_log.event t.obs ~fields:[ ("path", Obs_event.S path) ] Obs_event.Flush
     with Sys_error msg | Unix.Unix_error (_, msg, _) ->
       t.cfg.d_log (Printf.sprintf "metrics flush failed: %s" msg))

(** Once a second: summarize the window, compare against the objectives,
    and log transitions into breach (edge-triggered, one event per
    metric per excursion — a sustained breach is one event, not a
    torrent). *)
let check_slo t =
  let ts = now () in
  if ts -. t.last_slo_check >= 1.0 then begin
    t.last_slo_check <- ts;
    let s = Obs_slo.summary t.slo ~now:ts in
    let brs = Obs_slo.breaches t.cfg.d_slo s in
    let attribution = Obs_attr.attribution s.Obs_slo.s_phase_us in
    List.iter
      (fun (b : Obs_slo.breach) ->
        if not (List.mem b.Obs_slo.br_metric t.breached) then begin
          Tm.incr m_breaches;
          Obs_log.event t.obs
            ~fields:
              (List.concat
                 [
                   [
                     ("metric", Obs_event.S b.Obs_slo.br_metric);
                     ("value", Obs_event.F b.Obs_slo.br_value);
                     ("objective", Obs_event.F b.Obs_slo.br_objective);
                     ("window_requests", Obs_event.I s.Obs_slo.s_requests);
                   ];
                   (if attribution = "" then []
                    else [ ("attribution", Obs_event.S attribution) ]);
                 ])
            Obs_event.Breach;
          t.cfg.d_log
            (Printf.sprintf "SLO breach: %s %.3f exceeds %.3f%s"
               b.Obs_slo.br_metric b.Obs_slo.br_value b.Obs_slo.br_objective
               (if attribution = "" then ""
                else " (driven by: " ^ attribution ^ ")"))
        end)
      brs;
    t.breached <- List.map (fun (b : Obs_slo.breach) -> b.Obs_slo.br_metric) brs
  end

(** Heap-health watchdog: push one (time, live words) sample into the
    ring per tick and, once the ring holds enough history, least-squares
    fit live words against time.  When the fitted growth across the
    sampled window exceeds [d_heap_growth_pct] percent, emit one
    [heap_breach] event, dump the flight recorder, and clear the ring —
    the edge trigger: a heap that leaked and then plateaus fires exactly
    once, and re-arming requires fresh post-breach history. *)
let heap_check t ~live_w =
  let n = t.heap_len in
  if t.cfg.d_heap_growth_pct > 0.0 && n >= 16 then begin
    let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
    let t_min = ref infinity and t_max = ref neg_infinity in
    for i = 0 to n - 1 do
      if t.heap_ts.(i) < !t_min then t_min := t.heap_ts.(i);
      if t.heap_ts.(i) > !t_max then t_max := t.heap_ts.(i)
    done;
    for i = 0 to n - 1 do
      let x = t.heap_ts.(i) -. !t_min and y = t.heap_w.(i) in
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y)
    done;
    let fn = float_of_int n in
    let denom = (fn *. !sxx) -. (!sx *. !sx) in
    if denom > 0.0 then begin
      let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
      let intercept = (!sy -. (slope *. !sx)) /. fn in
      let span = !t_max -. !t_min in
      let growth_pct = 100.0 *. slope *. span /. Float.max intercept 1.0 in
      if growth_pct > t.cfg.d_heap_growth_pct then begin
        Tm.incr m_heap_breaches;
        Obs_log.event t.obs
          ~fields:
            [
              ("live_words", Obs_event.F live_w);
              ("growth_pct", Obs_event.F growth_pct);
              ("window_s", Obs_event.F span);
              ("objective", Obs_event.F t.cfg.d_heap_growth_pct);
            ]
          Obs_event.Heap_breach;
        t.cfg.d_log
          (Printf.sprintf
             "heap breach: live words grew %.1f%% over %.1fs (objective %.1f%%)"
             growth_pct span t.cfg.d_heap_growth_pct);
        flight_dump t ~reason:"heap"
          ?rid:(Option.map (fun (r, _, _, _) -> r) t.last_request)
          ();
        (* re-arm: drop the pre-breach history so the plateau that
           follows a one-time step does not re-fire *)
        t.heap_len <- 0;
        t.heap_pos <- 0
      end
    end
  end

let heap_sample t =
  let ts = now () in
  let live_w = float_of_int (Gc.quick_stat ()).Gc.heap_words in
  t.heap_ts.(t.heap_pos) <- ts;
  t.heap_w.(t.heap_pos) <- live_w;
  t.heap_pos <- (t.heap_pos + 1) mod Array.length t.heap_ts;
  if t.heap_len < Array.length t.heap_ts then t.heap_len <- t.heap_len + 1;
  heap_check t ~live_w

(** Graceful drain: answer everything already admitted, shed the rest,
    flush telemetry, remove the socket. *)
let shutdown t =
  t.cfg.d_log "draining: answering queued requests";
  while process_one t do () done;
  List.iter
    (fun conn ->
      finish t conn
        (Serve_protocol.response Serve_protocol.Draining ~body:"daemon is draining\n"))
    t.conns;
  flush_metrics ~event:false t;
  Obs_log.event t.obs
    ~fields:[ ("phase", Obs_event.S "stopped") ]
    Obs_event.Drain;
  Obs_log.close t.obs;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.d_socket with Unix.Unix_error _ -> ());
  t.cfg.d_log "stopped"

(** One event-loop tick: accept, read, reap idle partials, process the
    queued requests, keep the periodic duties (SLO check, metrics
    flush).  Exposed for the unit battery; {!serve} loops it. *)
let tick ?(timeout_s = 0.05) t =
  if !signal_drain then begin
    signal_drain := false;
    if t.draining then t.stop <- true else begin_drain t ~reason:"signal received"
  end;
  if !signal_dump then begin
    signal_dump := false;
    dump_flight_now ~reason:"sigusr1" t
  end;
  t.ticks <- t.ticks + 1;
  let read_fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
  (match Unix.select read_fds [] [] timeout_s with
  | ready, _, _ ->
    if List.mem t.listen_fd ready then accept_ready t;
    (* oldest connection first, so same-tick admission is FIFO-fair *)
    List.iter
      (fun conn -> if List.mem conn.fd ready then service_readable t conn)
      (List.rev (List.filter (fun c -> List.mem c.fd ready) t.conns))
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  reap_idle t;
  while process_one t do () done;
  check_slo t;
  heap_sample t;
  if t.cfg.d_metrics_flush_ticks > 0 && t.ticks mod t.cfg.d_metrics_flush_ticks = 0
  then flush_metrics t;
  if t.draining && Serve_queue.length t.queue = 0 then t.stop <- true

(** Run the daemon until a drain completes.  Installs SIGTERM/SIGINT
    drain handlers and a SIGUSR1 flight-dump handler, and ignores
    SIGPIPE for the duration. *)
let serve t =
  let drain_handler = Sys.Signal_handle (fun _ -> signal_drain := true) in
  let dump_handler = Sys.Signal_handle (fun _ -> signal_dump := true) in
  let old_term = Sys.signal Sys.sigterm drain_handler in
  let old_int = Sys.signal Sys.sigint drain_handler in
  let old_usr1 = Sys.signal Sys.sigusr1 dump_handler in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      Sys.set_signal Sys.sigusr1 old_usr1;
      Sys.set_signal Sys.sigpipe old_pipe)
    (fun () ->
      t.cfg.d_log (Printf.sprintf "listening on %s" t.cfg.d_socket);
      while not t.stop do
        tick t
      done;
      shutdown t)
