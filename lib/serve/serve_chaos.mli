(** The chaos campaign: randomized healthy and faulty requests fired at a
    live daemon, with per-shot expectations and end-of-campaign invariant
    checks (see the implementation header for the full contract). *)

type outcome =
  | Status of Serve_protocol.status * bool (* wedged *)
  | No_reply (* expected for torn frames and client aborts *)
  | Transport of string

type shot = {
  s_index : int;
  s_label : string;
  s_outcome : outcome;
}

type summary = {
  shots : int;
  answered : int; (* shots that got a structured response *)
  shed : int; (* overload/draining responses *)
  no_reply : int; (* fault shots that by design expect none *)
  transport_failures : int;
  by_status : (string * int) list;
  daemon_counters : (string * int) list; (* from the final stats verb *)
  violations : string list; (* empty = every invariant held *)
  log : string list; (* one line per shot, campaign order *)
}

val run :
  ?seed:int ->
  ?shots:int ->
  ?burst_every:int ->
  ?burst_width:int ->
  socket:string ->
  unit ->
  summary
(** Fire [shots] (default 240) at the daemon on [socket]; every
    [burst_every] shots a [burst_width]-wide concurrent burst exercises
    admission shedding.  Deterministic for a given [seed].  The daemon
    must run with fault injection allowed and a queue smaller than the
    burst width for the full mix to land. *)

val pp_summary : Format.formatter -> summary -> unit
