(** The wire protocol of the compile service: length-prefixed frames over a
    Unix-domain stream socket, one request and one response per connection.

    A frame is an 8-byte header — 4 magic bytes ["AGVS"] then a 4-byte
    big-endian payload length — followed by the payload.  Framing failures
    are first-class: a frame whose magic is wrong, whose declared length
    exceeds the daemon's limit, or whose payload never fully arrives (a
    "torn" frame) is detected and rejected without disturbing the daemon.

    The payload is line-oriented text: a version-tagged header line
    ([vhdl-serve/1 VERB key=value ...]) followed by free-form body text
    (VHDL source on requests, diagnostics and results on responses).  Text
    keeps torn-frame and fuzz corpora human-readable, and the single header
    line keeps decoding allocation-lean. *)

let magic = "AGVS"
let header_bytes = 8
let version_tag = "vhdl-serve/1"

let default_max_frame = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing *)

type frame_error =
  | Bad_magic
  | Oversized of int (* declared payload length *)
  | Torn of string (* EOF / idle timeout mid-frame: what was missing *)

let frame_error_to_string = function
  | Bad_magic -> "bad frame magic"
  | Oversized n -> Printf.sprintf "declared payload of %d bytes exceeds the frame limit" n
  | Torn what -> Printf.sprintf "torn frame: %s" what

(** Wrap a payload in a frame. *)
let frame payload =
  let n = String.length payload in
  let b = Bytes.create (header_bytes + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 5 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 6 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b header_bytes n;
  Bytes.unsafe_to_string b

(** Incremental frame parse over whatever bytes have been buffered so far.
    Pure, so the daemon's per-connection reader and the unit battery share
    it.  [`Incomplete n] means at least [n] more bytes are needed. *)
let parse_frame ?(max_frame = default_max_frame) buf :
    [ `Frame of string * int | `Incomplete of int | `Error of frame_error ] =
  let have = String.length buf in
  if have < header_bytes then
    if have > 0 && not (String.sub buf 0 (min 4 have) = String.sub magic 0 (min 4 have))
    then `Error Bad_magic
    else `Incomplete (header_bytes - have)
  else if String.sub buf 0 4 <> magic then `Error Bad_magic
  else
    let len =
      (Char.code buf.[4] lsl 24)
      lor (Char.code buf.[5] lsl 16)
      lor (Char.code buf.[6] lsl 8)
      lor Char.code buf.[7]
    in
    if len > max_frame then `Error (Oversized len)
    else if have < header_bytes + len then `Incomplete (header_bytes + len - have)
    else `Frame (String.sub buf header_bytes len, header_bytes + len)

(* ------------------------------------------------------------------ *)
(* Requests *)

type verb =
  | Ping (* liveness probe; body ignored *)
  | Compile (* compile the body into the warm working library *)
  | Simulate (* compile the body (if any), elaborate rq_top, run *)
  | Stats (* serve.* telemetry counters and latency percentiles *)
  | Slo (* rolling SLO windows: p50/p95/p99, shed and internal rates *)
  | Shutdown (* answer, then drain and exit *)

let verb_name = function
  | Ping -> "ping"
  | Compile -> "compile"
  | Simulate -> "simulate"
  | Stats -> "stats"
  | Slo -> "slo"
  | Shutdown -> "shutdown"

let verb_of_name = function
  | "ping" -> Some Ping
  | "compile" -> Some Compile
  | "simulate" -> Some Simulate
  | "stats" -> Some Stats
  | "slo" -> Some Slo
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  rq_verb : verb;
  rq_deadline_s : float option; (* per-request wall-clock budget *)
  rq_fuel : int option; (* per-request rule-application budget *)
  rq_top : string option; (* Simulate: entity to elaborate *)
  rq_max_ns : int; (* Simulate: horizon *)
  rq_poison : string option; (* fault injection (daemon must allow) *)
  rq_spin_ms : int; (* fault injection: busy-wait before work *)
  rq_hog_kb : int; (* fault injection: retain this many kB in the worker *)
  rq_json : bool; (* Stats/Slo: answer with a JSON body *)
  rq_source : string; (* VHDL source text *)
}

let request ?deadline_s ?fuel ?top ?(max_ns = 1000) ?poison ?(spin_ms = 0)
    ?(hog_kb = 0) ?(json = false) ?(source = "") verb =
  {
    rq_verb = verb;
    rq_deadline_s = deadline_s;
    rq_fuel = fuel;
    rq_top = top;
    rq_max_ns = max_ns;
    rq_poison = poison;
    rq_spin_ms = spin_ms;
    rq_hog_kb = hog_kb;
    rq_json = json;
    rq_source = source;
  }

(* ------------------------------------------------------------------ *)
(* Responses *)

type status =
  | Ok_ (* the work succeeded *)
  | Error_ (* user-level diagnostics *)
  | Internal (* a contained escape: the firewall answered for the request *)
  | Timeout (* a budget (deadline/fuel) or the watchdog ended the request *)
  | Overload (* shed at admission: the queue was full *)
  | Draining (* shed at admission: the daemon is shutting down *)
  | Bad_request (* unparseable frame payload or oversized frame *)

let status_name = function
  | Ok_ -> "ok"
  | Error_ -> "error"
  | Internal -> "internal"
  | Timeout -> "timeout"
  | Overload -> "overload"
  | Draining -> "draining"
  | Bad_request -> "bad-request"

let status_of_name = function
  | "ok" -> Some Ok_
  | "error" -> Some Error_
  | "internal" -> Some Internal
  | "timeout" -> Some Timeout
  | "overload" -> Some Overload
  | "draining" -> Some Draining
  | "bad-request" -> Some Bad_request
  | _ -> None

(** Exit code [vhdlc request] maps each status to (transport failures are
    7) — stable, so scripts and the chaos campaign can branch on it. *)
let status_exit_code = function
  | Ok_ -> 0
  | Error_ -> 1
  | Internal -> 2
  | Timeout -> 3
  | Overload -> 4
  | Draining -> 5
  | Bad_request -> 6

type response = {
  rs_status : status;
  rs_retry_after_s : float option; (* Overload: when to try again *)
  rs_wedged : bool; (* Timeout: the watchdog fired, worker recycled *)
  rs_request_id : int option; (* the daemon's id for this request *)
  rs_body : string;
}

let response ?retry_after_s ?(wedged = false) ?request_id ?(body = "") status =
  {
    rs_status = status;
    rs_retry_after_s = retry_after_s;
    rs_wedged = wedged;
    rs_request_id = request_id;
    rs_body = body;
  }

(* ------------------------------------------------------------------ *)
(* Encoding: one header line, then the body *)

let opt_field name to_string = function
  | None -> []
  | Some v -> [ Printf.sprintf "%s=%s" name (to_string v) ]

let split_header payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
    (String.sub payload 0 i, String.sub payload (i + 1) (String.length payload - i - 1))

(* "k=v" fields after the verb/status word; values never contain spaces *)
let parse_fields words =
  List.filter_map
    (fun w ->
      match String.index_opt w '=' with
      | Some i -> Some (String.sub w 0 i, String.sub w (i + 1) (String.length w - i - 1))
      | None -> None)
    words

let encode_request (r : request) =
  let fields =
    List.concat
      [
        opt_field "deadline" (Printf.sprintf "%g") r.rq_deadline_s;
        opt_field "fuel" string_of_int r.rq_fuel;
        opt_field "top" Fun.id r.rq_top;
        (if r.rq_max_ns <> 1000 then [ Printf.sprintf "ns=%d" r.rq_max_ns ] else []);
        opt_field "poison" Fun.id r.rq_poison;
        (if r.rq_spin_ms <> 0 then [ Printf.sprintf "spin_ms=%d" r.rq_spin_ms ] else []);
        (if r.rq_hog_kb <> 0 then [ Printf.sprintf "hog_kb=%d" r.rq_hog_kb ] else []);
        (if r.rq_json then [ "json=1" ] else []);
      ]
  in
  String.concat " " (version_tag :: verb_name r.rq_verb :: fields)
  ^ "\n" ^ r.rq_source

let decode_request payload : (request, string) result =
  let header, body = split_header payload in
  match String.split_on_char ' ' header with
  | tag :: verb :: fields when tag = version_tag -> (
    match verb_of_name verb with
    | None -> Error (Printf.sprintf "unknown verb %S" verb)
    | Some v -> (
      let fields = parse_fields fields in
      let f name = List.assoc_opt name fields in
      let int_field name ~default =
        match f name with
        | None -> Ok default
        | Some s -> (
          match int_of_string_opt s with
          | Some n -> Ok n
          | None -> Error (Printf.sprintf "bad integer for %s: %S" name s))
      in
      let float_opt name =
        match f name with
        | None -> Ok None
        | Some s -> (
          match float_of_string_opt s with
          | Some x -> Ok (Some x)
          | None -> Error (Printf.sprintf "bad number for %s: %S" name s))
      in
      match (float_opt "deadline", int_field "ns" ~default:1000,
             int_field "spin_ms" ~default:0, int_field "hog_kb" ~default:0) with
      | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e ->
        Error e
      | Ok deadline, Ok max_ns, Ok spin_ms, Ok hog_kb ->
        let fuel =
          match f "fuel" with Some s -> int_of_string_opt s | None -> None
        in
        Ok
          {
            rq_verb = v;
            rq_deadline_s = deadline;
            rq_fuel = fuel;
            rq_top = f "top";
            rq_max_ns = max_ns;
            rq_poison = f "poison";
            rq_spin_ms = spin_ms;
            rq_hog_kb = hog_kb;
            rq_json = List.mem_assoc "json" fields;
            rq_source = body;
          }))
  | tag :: _ when tag <> version_tag ->
    Error (Printf.sprintf "unknown protocol version %S (want %s)" tag version_tag)
  | _ -> Error "empty request header"

let encode_response (r : response) =
  let fields =
    List.concat
      [
        opt_field "retry_after" (Printf.sprintf "%.3f") r.rs_retry_after_s;
        (if r.rs_wedged then [ "wedged=1" ] else []);
        opt_field "rid" string_of_int r.rs_request_id;
      ]
  in
  String.concat " " (version_tag :: status_name r.rs_status :: fields)
  ^ "\n" ^ r.rs_body

let decode_response payload : (response, string) result =
  let header, body = split_header payload in
  match String.split_on_char ' ' header with
  | tag :: status :: fields when tag = version_tag -> (
    match status_of_name status with
    | None -> Error (Printf.sprintf "unknown status %S" status)
    | Some s ->
      let fields = parse_fields fields in
      Ok
        {
          rs_status = s;
          rs_retry_after_s =
            Option.bind (List.assoc_opt "retry_after" fields) float_of_string_opt;
          rs_wedged = List.mem_assoc "wedged" fields;
          rs_request_id = Option.bind (List.assoc_opt "rid" fields) int_of_string_opt;
          rs_body = body;
        })
  | tag :: _ when tag <> version_tag ->
    Error (Printf.sprintf "unknown protocol version %S (want %s)" tag version_tag)
  | _ -> Error "empty response header"
