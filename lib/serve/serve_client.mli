(** Blocking client side of the compile service.  Transport failures are
    [Error msg]; protocol-level failures arrive as structured responses. *)

val connect : string -> (Unix.file_descr, string) result
(** Open a connection to the daemon's socket. *)

val send_all : Unix.file_descr -> string -> (unit, string) result

val recv_response :
  ?timeout_s:float -> Unix.file_descr -> (Serve_protocol.response, string) result
(** Read until one complete response frame (or EOF / timeout). *)

val roundtrip :
  ?timeout_s:float ->
  socket:string ->
  Serve_protocol.request ->
  (Serve_protocol.response, string) result
(** One request, one response ([timeout_s] bounds the wait; default 30s). *)

val send_raw :
  ?timeout_s:float ->
  ?await_reply:bool ->
  socket:string ->
  string ->
  (Serve_protocol.response option, string) result
(** Deliver arbitrary bytes — the chaos campaign's torn frames, bad magic,
    and oversized declarations.  [await_reply] (default false) also reads
    and decodes a response frame. *)

val wait_ready :
  ?attempts:int -> ?interval_s:float -> socket:string -> unit -> (unit, string) result
(** Poll with pings until the daemon answers (it may still be binding). *)
