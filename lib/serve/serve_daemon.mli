(** The compile-service daemon: a select-based event loop over a
    Unix-domain socket, one request and one response per connection.

    Framing failures are answered [bad-request]; admission sheds with
    [overload] (retry-after hint) or [draining]; processing runs on the
    warm {!Serve_worker} whose firewall and watchdog guarantee a
    structured response; SIGTERM/SIGINT drain gracefully.  Invariant:
    [serve.requests = serve.answered + serve.shed + serve.client_gone].

    Observability: every accepted connection gets a monotone request id
    (echoed as [rid=N] in the response header and attached to the
    request's trace span); the daemon narrates itself as typed
    {!Obs_event} events into the {!Obs_ring} flight recorder and an
    optional JSONL sink; rolling {!Obs_slo} windows are queryable via
    the [slo] verb and checked against objectives once a second; the
    flight recorder is dumped on firewall trips, watchdog fires, and
    SIGUSR1.  Event-grammar invariant: every substantive response has
    exactly one [start] and one [finish] sharing its request id.

    Tail triage: every [finish] carries the request's per-phase
    attribution ([ph_*] fields summing to [service_us]); each request's
    spans are buffered (bounded by [d_span_cap]) whether or not global
    tracing is on, and a request slower than the adaptive threshold
    (the p99 objective, else [d_exemplar_k] x window p50) produces a
    rid-named exemplar dump — phase breakdown, counter delta, Chrome
    trace — rate-limited and retention-capped.

    Allocation attribution: every [finish] also carries per-phase
    allocated bytes ([al_*] fields summing to [alloc_b], split into
    [alloc_minor_b]/[alloc_major_b]), measured by GC-counter deltas on
    the worker; SLO windows fold them into bytes-per-window and a
    per-phase "allocated by" breakdown.  A heap-health watchdog samples
    live words into a ring each tick and, when the least-squares fit
    grows past [d_heap_growth_pct] over the window, emits one
    edge-triggered [heap_breach] event plus a flight dump, then re-arms
    on the next episode. *)

type config = {
  d_socket : string;
  d_queue_capacity : int;
  d_max_frame : int;
  d_idle_timeout_s : float; (* partial frame older than this is torn *)
  d_worker : Serve_worker.config;
  d_metrics_out : string option; (* telemetry JSON: periodic + at drain *)
  d_metrics_flush_ticks : int; (* flush every N ticks (0 = drain only) *)
  d_obs : Obs_log.config; (* event log + flight recorder *)
  d_slo_window_s : float; (* rolling-window width *)
  d_slo : Obs_slo.objectives; (* breach thresholds (may be empty) *)
  d_span_cap : int; (* per-request span buffer (0 = no exemplars) *)
  d_exemplar_k : float; (* slow = k x window p50, absent an objective *)
  d_exemplar_min_obs : int; (* window samples before k*p50 is trusted *)
  d_heap_growth_pct : float;
      (* heap-health watchdog: emit [heap_breach] + flight dump when the
         linear fit over the live-words ring grows past this percentage
         across the sampled window (0 = disabled) *)
  d_log : string -> unit;
}

val default_config : config

type t

val create : config -> t
(** Bind and listen on [d_socket] (an existing socket file is replaced)
    and warm up the worker. *)

val tick : ?timeout_s:float -> t -> unit
(** One event-loop turn: accept, read, reap idle partial frames, drain the
    admission queue, check SLO objectives, run a periodic metrics flush
    when due.  Exposed for the unit battery; {!serve} loops it. *)

val dump_flight_now : ?reason:string -> t -> unit
(** Dump the flight recorder on demand (what the SIGUSR1 handler does),
    tagged with the last serviced request's id. *)

val serve : t -> unit
(** Run until a drain completes (SIGTERM/SIGINT or a [shutdown] request).
    Installs drain and SIGUSR1 flight-dump handlers and ignores SIGPIPE
    for the duration; on exit the telemetry is flushed and the socket
    file removed. *)

val shutdown : t -> unit
(** Drain immediately: answer queued requests, shed reading connections,
    flush telemetry (atomic rename), close the event log, unlink the
    socket. *)
