(** The compile-service daemon: a select-based event loop over a
    Unix-domain socket, one request and one response per connection.

    Framing failures are answered [bad-request]; admission sheds with
    [overload] (retry-after hint) or [draining]; processing runs on the
    warm {!Serve_worker} whose firewall and watchdog guarantee a
    structured response; SIGTERM/SIGINT drain gracefully.  Invariant:
    [serve.requests = serve.answered + serve.shed + serve.client_gone]. *)

type config = {
  d_socket : string;
  d_queue_capacity : int;
  d_max_frame : int;
  d_idle_timeout_s : float; (* partial frame older than this is torn *)
  d_worker : Serve_worker.config;
  d_metrics_out : string option; (* flush telemetry JSON here on exit *)
  d_log : string -> unit;
}

val default_config : config

type t

val create : config -> t
(** Bind and listen on [d_socket] (an existing socket file is replaced)
    and warm up the worker. *)

val tick : ?timeout_s:float -> t -> unit
(** One event-loop turn: accept, read, reap idle partial frames, drain the
    admission queue.  Exposed for the unit battery; {!serve} loops it. *)

val serve : t -> unit
(** Run until a drain completes (SIGTERM/SIGINT or a [shutdown] request).
    Installs drain handlers and ignores SIGPIPE for the duration; on exit
    the telemetry is flushed and the socket file removed. *)

val shutdown : t -> unit
(** Drain immediately: answer queued requests, shed reading connections,
    flush telemetry, close and unlink the socket. *)
