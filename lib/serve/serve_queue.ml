(** Bounded admission queue with load shedding.

    Admission control is the first robustness layer of the daemon: a
    traffic spike must turn into explicit, cheap [overload] rejections
    carrying a retry-after hint, never into unbounded queueing (memory
    growth + every queued client timing out at once).

    The retry-after hint is honest: an exponentially-weighted moving
    average of recent service times, multiplied by the backlog a new
    request would sit behind.  A client that waits that long and retries
    lands in a queue that has (on average) just drained. *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutable ewma_service_s : float; (* EWMA of recent service times *)
}

let ewma_alpha = 0.2
let default_service_s = 0.05 (* before any request has been measured *)

let create ~capacity =
  { capacity = max 0 capacity; q = Queue.create (); ewma_service_s = default_service_s }

let length t = Queue.length t.q
let capacity t = t.capacity

(** Record a completed request's service time — feeds the retry hint. *)
let note_service_time t seconds =
  if seconds >= 0.0 then
    t.ewma_service_s <-
      ((1.0 -. ewma_alpha) *. t.ewma_service_s) +. (ewma_alpha *. seconds)

(** The hint given to a shed client: expected time for the current backlog
    (plus the in-flight request) to drain. *)
let retry_after_s t =
  Float.max 0.05 (t.ewma_service_s *. float_of_int (Queue.length t.q + 1))

type 'a admission =
  | Admitted
  | Shed of { retry_after_s : float }

let admit t x =
  if Queue.length t.q >= t.capacity then Shed { retry_after_s = retry_after_s t }
  else begin
    Queue.push x t.q;
    Admitted
  end

let pop t = Queue.take_opt t.q

(** Drain the queue (graceful shutdown answers each entry before close).
    The service-time EWMA resets with it: a drained queue starts a new
    service epoch, so hints after a drain reflect fresh measurements
    rather than the regime that was just abandoned. *)
let drain t =
  let xs = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  t.ewma_service_s <- default_service_s;
  xs
