(** The chaos campaign: hundreds of randomized healthy and faulty requests
    fired at a live daemon, with per-shot expectations and end-of-campaign
    invariant checks.

    Shot mix: healthy compiles and simulates (workload generators), pings,
    concurrent bursts (to exercise admission shedding), and every site in
    {!Difftest_fault.serve_faults} — torn frames, bad magic, oversized
    declarations, poisoned units, wedged requests, deadline busts, client
    aborts.  Deterministic for a given seed.

    What must hold (violations are collected, not thrown):
    - the daemon answers every shot that expects a reply, with the status
      the fault site predicts (poison → [internal], wedge → [timeout]
      with [wedged=1], bust → [timeout], framing faults → [bad-request]);
    - burst shots resolve as [ok] or a clean [overload] shed — nothing
      hangs, nothing dies;
    - the daemon's own books balance: [serve.requests =
      serve.answered + serve.shed + serve.client_gone], and the fault
      counters cover the faults the campaign landed;
    - the daemon still answers a ping after everything above. *)

type outcome =
  | Status of Serve_protocol.status * bool (* wedged *)
  | No_reply (* expected for torn frames and client aborts *)
  | Transport of string

type shot = {
  s_index : int;
  s_label : string;
  s_outcome : outcome;
}

type summary = {
  shots : int;
  answered : int; (* shots that got a structured response *)
  shed : int; (* overload/draining responses *)
  no_reply : int; (* fault shots that by design expect none *)
  transport_failures : int;
  by_status : (string * int) list;
  daemon_counters : (string * int) list; (* from the final stats verb *)
  violations : string list;
  log : string list; (* one line per shot, campaign order *)
}

let outcome_label = function
  | Status (st, wedged) ->
    Serve_protocol.status_name st ^ (if wedged then " wedged" else "")
  | No_reply -> "no-reply"
  | Transport msg -> "transport: " ^ msg

(* ------------------------------------------------------------------ *)
(* Shot construction *)

let healthy_compile rng i =
  let pick = Random.State.int rng 3 in
  let source =
    match pick with
    | 0 -> Workload.behavioral ~name:(Printf.sprintf "CH%d" i) ~states:3 ~exprs:4
    | 1 -> Workload.package ~name:(Printf.sprintf "CP%d" i) ~n:3
    | _ -> Workload.expression_heavy ~n:5
  in
  Serve_protocol.request Serve_protocol.Compile ~source

let healthy_simulate i =
  ignore i;
  Serve_protocol.request Serve_protocol.Simulate
    ~source:(Workload.divider_chain ~stages:2) ~top:"CHAIN" ~max_ns:200

(* the poisoned unit plus a healthy sibling: the sibling must survive *)
let poison_source = "entity BAD is end BAD;\nentity FINE is end FINE;\n"

let bust_source = lazy (Workload.expression_heavy ~n:300)

(* ------------------------------------------------------------------ *)
(* Firing *)

let fire_fault ~socket (fault : Difftest_fault.serve_fault) : outcome =
  let expect_reply raw =
    match Serve_client.send_raw ~timeout_s:10.0 ~await_reply:true ~socket raw with
    | Ok (Some r) -> Status (r.Serve_protocol.rs_status, r.Serve_protocol.rs_wedged)
    | Ok None -> No_reply
    | Error msg -> Transport msg
  in
  let rq_reply rq =
    match Serve_client.roundtrip ~timeout_s:30.0 ~socket rq with
    | Ok r -> Status (r.Serve_protocol.rs_status, r.Serve_protocol.rs_wedged)
    | Error msg -> Transport msg
  in
  match fault with
  | Difftest_fault.Torn_frame ->
    (* promise 64 payload bytes, deliver 10, hang up *)
    let full =
      Serve_protocol.frame (String.make 64 'x')
    in
    let torn = String.sub full 0 (Serve_protocol.header_bytes + 10) in
    (match Serve_client.send_raw ~socket torn with
    | Ok _ -> No_reply
    | Error msg -> Transport msg)
  | Difftest_fault.Bad_magic -> expect_reply "NOPE\x00\x00\x00\x04ping"
  | Difftest_fault.Oversized_frame ->
    (* declared length far beyond any sane frame limit *)
    expect_reply "AGVS\x7f\xff\xff\xff"
  | Difftest_fault.Poison_unit ->
    rq_reply
      (Serve_protocol.request Serve_protocol.Compile ~poison:"entity:BAD"
         ~source:poison_source)
  | Difftest_fault.Wedged_request ->
    (* spin far past deadline + grace: only the watchdog can end this *)
    rq_reply
      (Serve_protocol.request Serve_protocol.Compile ~deadline_s:0.1 ~spin_ms:5000
         ~source:"entity W is end W;\n")
  | Difftest_fault.Deadline_bust ->
    (* work the in-band budgets must stop: tiny deadline and tiny fuel
       against a cascade-heavy source — whichever trips first, the
       request ends as a structured timeout *)
    rq_reply
      (Serve_protocol.request Serve_protocol.Compile ~deadline_s:0.005 ~fuel:60
         ~source:(Lazy.force bust_source))
  | Difftest_fault.Client_abort ->
    (* complete request, then vanish before the response *)
    let rq = Serve_protocol.request Serve_protocol.Ping in
    (match
       Serve_client.send_raw ~socket
         (Serve_protocol.frame (Serve_protocol.encode_request rq))
     with
    | Ok _ -> No_reply
    | Error msg -> Transport msg)

(** A burst: [width] connections all send before any reads, so the queue
    must fill and shed.  Returns one outcome per connection. *)
let fire_burst ~socket ~width : outcome list =
  let conns =
    List.init width (fun i ->
        match Serve_client.connect socket with
        | Error msg -> Error msg
        | Ok fd -> (
          let rq =
            Serve_protocol.request Serve_protocol.Compile
              ~source:(Printf.sprintf "entity B%d is end B%d;\n" i i)
          in
          match
            Serve_client.send_all fd
              (Serve_protocol.frame (Serve_protocol.encode_request rq))
          with
          | Ok () -> Ok fd
          | Error msg ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error msg))
  in
  List.map
    (function
      | Error msg -> Transport msg
      | Ok fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match Serve_client.recv_response ~timeout_s:30.0 fd with
            | Ok r -> Status (r.Serve_protocol.rs_status, r.Serve_protocol.rs_wedged)
            | Error msg -> Transport msg))
    conns

(* ------------------------------------------------------------------ *)
(* Expectations *)

let check_shot (s : shot) : string option =
  let bad want =
    Some
      (Printf.sprintf "shot %d (%s): expected %s, got %s" s.s_index s.s_label want
         (outcome_label s.s_outcome))
  in
  match (s.s_label, s.s_outcome) with
  | _, Transport msg ->
    Some (Printf.sprintf "shot %d (%s): transport failure: %s" s.s_index s.s_label msg)
  | ("fault:torn-frame" | "fault:client-abort"), No_reply -> None
  | ("fault:torn-frame" | "fault:client-abort"), _ -> bad "no reply"
  | ("fault:bad-magic" | "fault:oversized-frame"), Status (Serve_protocol.Bad_request, _)
    ->
    None
  | ("fault:bad-magic" | "fault:oversized-frame"), _ -> bad "bad-request"
  | "fault:poison-unit", Status (Serve_protocol.Internal, _) -> None
  | "fault:poison-unit", _ -> bad "internal"
  | "fault:wedged-request", Status (Serve_protocol.Timeout, true) -> None
  | "fault:wedged-request", _ -> bad "timeout wedged"
  | "fault:deadline-bust", Status (Serve_protocol.Timeout, _) -> None
  | "fault:deadline-bust", _ -> bad "timeout"
  | _, Status ((Serve_protocol.Ok_ | Serve_protocol.Overload), _) ->
    None (* healthy and burst shots: answered or cleanly shed *)
  | _, _ -> bad "ok or overload"

(* ------------------------------------------------------------------ *)
(* The campaign *)

let parse_stats body =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ name; v ] -> (
        match int_of_string_opt v with
        | Some n -> Some (name, n)
        | None -> (
          (* percentiles arrive as floats; keep them rounded *)
          match float_of_string_opt v with
          | Some f -> Some (name, int_of_float f)
          | None -> None))
      | _ -> None)
    (String.split_on_char '\n' body)

let counter counters name = Option.value (List.assoc_opt name counters) ~default:0

let run ?(seed = 0) ?(shots = 240) ?(burst_every = 40) ?(burst_width = 6) ~socket () :
    summary =
  let rng = Random.State.make [| seed; 0x5e2e |] in
  let faults = Array.of_list Difftest_fault.serve_faults in
  let results = ref [] in
  let log = ref [] in
  let n = ref 0 in
  let record label outcome =
    incr n;
    let s = { s_index = !n; s_label = label; s_outcome = outcome } in
    results := s :: !results;
    log := Printf.sprintf "shot %03d %-22s -> %s" !n label (outcome_label outcome) :: !log
  in
  let rq_outcome rq =
    match Serve_client.roundtrip ~timeout_s:30.0 ~socket rq with
    | Ok r -> Status (r.Serve_protocol.rs_status, r.Serve_protocol.rs_wedged)
    | Error msg -> Transport msg
  in
  while !n < shots do
    if burst_every > 0 && !n > 0 && !n mod burst_every = 0 then
      List.iteri
        (fun i o -> record (Printf.sprintf "burst[%d]" i) o)
        (fire_burst ~socket ~width:burst_width)
    else begin
      let roll = Random.State.int rng 100 in
      if roll < 35 then record "healthy:compile" (rq_outcome (healthy_compile rng !n))
      else if roll < 50 then record "healthy:simulate" (rq_outcome (healthy_simulate !n))
      else if roll < 60 then
        record "healthy:ping" (rq_outcome (Serve_protocol.request Serve_protocol.Ping))
      else begin
        let f = faults.(Random.State.int rng (Array.length faults)) in
        record
          ("fault:" ^ Difftest_fault.serve_fault_name f)
          (fire_fault ~socket f)
      end
    end
  done;
  let all = List.rev !results in
  let violations = List.filter_map check_shot all in
  (* the daemon's own books, via the stats verb *)
  let daemon_counters, violations =
    match
      Serve_client.roundtrip ~timeout_s:10.0 ~socket
        (Serve_protocol.request Serve_protocol.Stats)
    with
    | Ok { Serve_protocol.rs_status = Serve_protocol.Ok_; rs_body; _ } ->
      let cs = parse_stats rs_body in
      let c = counter cs in
      let sum = c "serve.answered" + c "serve.shed" + c "serve.client_gone" in
      let v = ref [] in
      if c "serve.requests" <> sum then
        v :=
          Printf.sprintf
            "ledger imbalance: serve.requests=%d but answered+shed+client_gone=%d"
            (c "serve.requests") sum
          :: !v;
      let landed label =
        List.length
          (List.filter
             (fun s ->
               s.s_label = label
               && match s.s_outcome with Status _ -> true | _ -> false)
             all)
      in
      if c "serve.faults_contained" < landed "fault:poison-unit" then
        v :=
          Printf.sprintf "serve.faults_contained=%d < poison shots answered=%d"
            (c "serve.faults_contained") (landed "fault:poison-unit")
          :: !v;
      if c "serve.wedges" < landed "fault:wedged-request" then
        v :=
          Printf.sprintf "serve.wedges=%d < wedge shots answered=%d" (c "serve.wedges")
            (landed "fault:wedged-request")
          :: !v;
      (cs, violations @ List.rev !v)
    | Ok r ->
      ( [],
        violations
        @ [
            "stats verb answered "
            ^ Serve_protocol.status_name r.Serve_protocol.rs_status;
          ] )
    | Error msg -> ([], violations @ [ "stats verb unreachable: " ^ msg ])
  in
  (* the zero-deaths invariant: the daemon must still answer *)
  let violations =
    match
      Serve_client.roundtrip ~timeout_s:10.0 ~socket
        (Serve_protocol.request Serve_protocol.Ping)
    with
    | Ok _ -> violations
    | Error msg -> violations @ [ "daemon dead after campaign: " ^ msg ]
  in
  let count p = List.length (List.filter p all) in
  let status_counts =
    List.filter_map
      (fun st ->
        let k =
          count (fun s ->
              match s.s_outcome with Status (st', _) -> st' = st | _ -> false)
        in
        if k = 0 then None else Some (Serve_protocol.status_name st, k))
      [
        Serve_protocol.Ok_; Serve_protocol.Error_; Serve_protocol.Internal;
        Serve_protocol.Timeout; Serve_protocol.Overload; Serve_protocol.Draining;
        Serve_protocol.Bad_request;
      ]
  in
  {
    shots = !n;
    answered =
      count (fun s ->
          match s.s_outcome with
          | Status ((Serve_protocol.Overload | Serve_protocol.Draining), _) -> false
          | Status _ -> true
          | _ -> false);
    shed =
      count (fun s ->
          match s.s_outcome with
          | Status ((Serve_protocol.Overload | Serve_protocol.Draining), _) -> true
          | _ -> false);
    no_reply = count (fun s -> s.s_outcome = No_reply);
    transport_failures =
      count (fun s -> match s.s_outcome with Transport _ -> true | _ -> false);
    by_status = status_counts;
    daemon_counters;
    violations;
    log = List.rev !log;
  }

let pp_summary fmt (s : summary) =
  Format.fprintf fmt "campaign: %d shots — %d answered, %d shed, %d no-reply, %d transport@\n"
    s.shots s.answered s.shed s.no_reply s.transport_failures;
  List.iter (fun (st, k) -> Format.fprintf fmt "  status %-12s %d@\n" st k) s.by_status;
  List.iter
    (fun (name, v) ->
      if String.length name >= 6 && String.sub name 0 6 = "serve." then
        Format.fprintf fmt "  daemon %-28s %d@\n" name v)
    s.daemon_counters;
  if s.violations = [] then Format.fprintf fmt "  invariants: all hold@\n"
  else
    List.iter (fun v -> Format.fprintf fmt "  VIOLATION: %s@\n" v) s.violations
