(** The daemon's warm worker: one long-lived compiler servicing requests
    behind a request-level firewall and an out-of-band watchdog.

    The worker is where "one bad request must never take the process down"
    is enforced:

    - every request runs under a deadline wired into the {!Supervisor}
      budgets (the evaluator's tick hook trips {!Supervisor.Deadline}), so
      oversized work ends as a structured [timeout] response;
    - the request firewall converts {e every} non-fatal escape — including
      [Stack_overflow] and exceptions the per-unit supervisor does not
      classify — into an [internal] response while the daemon keeps
      serving;
    - a SIGALRM watchdog covers the escapes budgets cannot: code wedged
      outside the evaluator's tick hook (an injected spin, a pathological
      loop).  When it fires, the in-flight request is answered [timeout
      wedged=1] and the worker state is recycled, because a computation
      interrupted at an arbitrary safepoint may have left the warm state
      inconsistent;
    - the warm compiler is recycled every [recycle_every] requests anyway,
      bounding diagnostic and library growth over a long-lived process.

    Warmth is the point of the daemon: the LALR tables, both attribute
    grammars, and the expression-AG memo are process-global and stay hot
    across requests, and the working library persists between requests of
    the same worker generation. *)

module Tm = Vhdl_telemetry.Telemetry

let m_faults_contained = Tm.counter "serve.faults_contained"
let m_timeouts = Tm.counter "serve.timeouts"
let m_wedges = Tm.counter "serve.wedges"
let m_recycles = Tm.counter "serve.worker_recycles"

type config = {
  w_default_deadline_s : float; (* when the request names none *)
  w_max_deadline_s : float; (* requests cannot ask for more *)
  w_watchdog_grace_s : float; (* watchdog = deadline + grace *)
  w_allow_faults : bool; (* honor poison= / spin_ms= / hog_kb= request fields *)
  w_recycle_every : int; (* fresh compiler every N requests *)
  w_budgets : Supervisor.budgets; (* base limits under request overrides *)
  w_ref_libs : (string * string) list; (* reference libraries (name, dir) *)
}

let default_config =
  {
    w_default_deadline_s = 10.0;
    w_max_deadline_s = 60.0;
    w_watchdog_grace_s = 2.0;
    w_allow_faults = false;
    w_recycle_every = 256;
    w_budgets = Supervisor.no_budgets;
    w_ref_libs = [];
  }

type t = {
  cfg : config;
  mutable compiler : Vhdl_compiler.t;
  mutable served : int; (* requests handled by this worker *)
  mutable generation : int; (* bumped by every recycle *)
  mutable last_phases : (string * float) list;
      (* per-phase self-time (seconds) of the last handled request *)
  mutable last_allocs : (string * float) list;
      (* per-phase self-allocated words of the last handled request *)
  mutable last_alloc_minor_w : float; (* minor words of the last request *)
  mutable last_alloc_major_w : float; (* direct-major words (promotions excluded) *)
  mutable hog : Bytes.t list;
      (* fault injection: blocks retained by hog_kb= requests — the planted
         leak the heap-health watchdog must catch *)
}

let fresh_compiler cfg =
  let c = Vhdl_compiler.create ~budgets:cfg.w_budgets () in
  List.iter
    (fun (name, dir) -> Vhdl_compiler.add_reference_library c ~name ~dir)
    cfg.w_ref_libs;
  c

let create cfg =
  {
    cfg;
    compiler = fresh_compiler cfg;
    served = 0;
    generation = 0;
    last_phases = [];
    last_allocs = [];
    last_alloc_minor_w = 0.0;
    last_alloc_major_w = 0.0;
    hog = [];
  }

let generation t = t.generation
let served t = t.served
let last_phases t = t.last_phases
let last_allocs t = t.last_allocs
let last_alloc_minor_w t = t.last_alloc_minor_w
let last_alloc_major_w t = t.last_alloc_major_w

(** Total words the last request allocated (minor + direct-major). *)
let last_alloc_w t = t.last_alloc_minor_w +. t.last_alloc_major_w

(** Replace the warm compiler — after a wedge or an unclassified escape
    (the interrupted state may be inconsistent), and periodically to bound
    accumulated diagnostics and library growth. *)
let recycle t =
  t.compiler <- fresh_compiler t.cfg;
  t.generation <- t.generation + 1;
  t.hog <- []; (* a fresh worker drops the planted leak with the rest *)
  Tm.incr m_recycles

(* ------------------------------------------------------------------ *)
(* Watchdog: an out-of-band interval timer that breaks wedged requests.

   Budgets only fire from the evaluator's tick hook; a request wedged
   anywhere else (fault injection proves these exist) would hang the
   daemon forever.  SIGALRM is delivered at allocation safepoints, so the
   handler's exception lands inside the wedged loop.  The [armed] flag
   closes the race where the alarm fires between the protected region
   ending and the timer being cleared. *)

exception Wedged of { after_s : float }

let watchdog_armed = ref false

let with_watchdog ~seconds f =
  if seconds <= 0.0 then f ()
  else begin
    let previous =
      Sys.signal Sys.sigalrm
        (Sys.Signal_handle
           (fun _ -> if !watchdog_armed then raise (Wedged { after_s = seconds })))
    in
    watchdog_armed := true;
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_value = seconds; Unix.it_interval = 0.0 });
    Fun.protect
      ~finally:(fun () ->
        watchdog_armed := false;
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_value = 0.0; Unix.it_interval = 0.0 });
        Sys.set_signal Sys.sigalrm previous)
      f
  end

(* ------------------------------------------------------------------ *)
(* Request processing *)

let effective_deadline cfg (rq : Serve_protocol.request) =
  let asked = Option.value rq.Serve_protocol.rq_deadline_s ~default:cfg.w_default_deadline_s in
  Float.min (Float.max asked 0.001) cfg.w_max_deadline_s

let request_budgets cfg (rq : Serve_protocol.request) ~deadline_s =
  {
    Supervisor.eval_fuel =
      (match rq.Serve_protocol.rq_fuel with
      | Some f -> Some f
      | None -> cfg.w_budgets.Supervisor.eval_fuel);
    elab_steps = cfg.w_budgets.Supervisor.elab_steps;
    deadline_s = Some deadline_s;
    sim_step_fuel = cfg.w_budgets.Supervisor.sim_step_fuel;
  }

let pp_diag_lines buf diags =
  List.iter
    (fun d -> Buffer.add_string buf (Format.asprintf "diag %a\n" Diag.pp d))
    diags

(* classify the request's own diagnostics into a response status *)
let status_of_diags diags : Serve_protocol.status =
  if Diag.has_budget diags then Serve_protocol.Timeout
  else if Diag.has_internal diags then Serve_protocol.Internal
  else if Diag.has_errors diags then Serve_protocol.Error_
  else Serve_protocol.Ok_

(* diagnostics accumulated on the warm compiler by THIS request only *)
let diags_delta c ~before =
  let all = Vhdl_compiler.diagnostics c in
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t in
  drop before all

let run_compile t (rq : Serve_protocol.request) : Serve_protocol.response =
  let c = t.compiler in
  let before = List.length (Vhdl_compiler.diagnostics c) in
  let units =
    try Vhdl_compiler.compile ~fail_on_error:false c rq.Serve_protocol.rq_source
    with Vhdl_compiler.Compile_error _ ->
      (* nothing parsed: the diagnostics carry the reason *)
      []
  in
  let diags = diags_delta c ~before in
  let buf = Buffer.create 256 in
  List.iter
    (fun u -> Buffer.add_string buf (Printf.sprintf "compiled %s\n" u.Unit_info.u_key))
    units;
  pp_diag_lines buf diags;
  List.iter
    (fun (r : Supervisor.unit_report) ->
      Buffer.add_string buf
        (Printf.sprintf "unit %s %s\n"
           (Supervisor.status_name r.Supervisor.ur_status)
           r.Supervisor.ur_name))
    (Vhdl_compiler.last_report c);
  Serve_protocol.response (status_of_diags diags) ~body:(Buffer.contents buf)

let run_simulate t (rq : Serve_protocol.request) : Serve_protocol.response =
  let c = t.compiler in
  let before = List.length (Vhdl_compiler.diagnostics c) in
  let compile_ok =
    if rq.Serve_protocol.rq_source = "" then true
    else
      match Vhdl_compiler.compile ~fail_on_error:false c rq.Serve_protocol.rq_source with
      | _ -> not (Diag.has_errors (diags_delta c ~before))
      | exception Vhdl_compiler.Compile_error _ -> false
  in
  let buf = Buffer.create 256 in
  if not compile_ok then begin
    pp_diag_lines buf (diags_delta c ~before);
    Serve_protocol.response (status_of_diags (diags_delta c ~before))
      ~body:(Buffer.contents buf)
  end
  else
    match rq.Serve_protocol.rq_top with
    | None ->
      Serve_protocol.response Serve_protocol.Bad_request
        ~body:"simulate needs top=ENTITY\n"
    | Some top -> (
      match
        let sim = Vhdl_compiler.elaborate ~trace:false c ~top () in
        let outcome = Vhdl_compiler.run c sim ~max_ns:rq.Serve_protocol.rq_max_ns in
        (sim, outcome)
      with
      | sim, outcome ->
        List.iter
          (fun (time, sev, msg) ->
            Buffer.add_string buf
              (Printf.sprintf "message %s %s: %s\n" (Rt.format_time time)
                 (Kernel.severity_name sev) msg))
          (Vhdl_compiler.messages sim);
        let st = Kernel.stats (Vhdl_compiler.kernel sim) in
        Buffer.add_string buf
          (Printf.sprintf "simulated %s at %s: %d delta cycles, %d events\n"
             (match outcome with
             | Kernel.Quiescent -> "quiescent"
             | Kernel.Time_limit -> "horizon"
             | Kernel.Stopped -> "stopped"
             | Kernel.Fuel_exhausted -> "fuel-exhausted")
             (Rt.format_time (Kernel.now (Vhdl_compiler.kernel sim)))
             st.Kernel.delta_cycles st.Kernel.events);
        pp_diag_lines buf (diags_delta c ~before);
        Serve_protocol.response (status_of_diags (diags_delta c ~before))
          ~body:(Buffer.contents buf)
      | exception Vhdl_compiler.Compile_error ds ->
        (* elaboration ran under the supervisor firewall: budget and
           internal escapes arrive here as structured diagnostics *)
        pp_diag_lines buf ds;
        Serve_protocol.response (status_of_diags ds) ~body:(Buffer.contents buf)
      | exception Elaborate.Elaboration_error msg ->
        Buffer.add_string buf (Printf.sprintf "diag elaboration: %s\n" msg);
        Serve_protocol.response Serve_protocol.Error_ ~body:(Buffer.contents buf)
      | exception Rt.Simulation_error { time; msg } ->
        Buffer.add_string buf
          (Printf.sprintf "diag simulation error at %s: %s\n" (Rt.format_time time) msg);
        Serve_protocol.response Serve_protocol.Error_ ~body:(Buffer.contents buf))

(* the injected busy-wait: allocates so the watchdog's SIGALRM lands *)
let spin_for ms =
  let until = Vhdl_util.Unix_compat.now () +. (float_of_int ms /. 1000.0) in
  while Vhdl_util.Unix_compat.now () < until do
    ignore (Sys.opaque_identity (ref 0))
  done

let run_verb t (rq : Serve_protocol.request) : Serve_protocol.response =
  match rq.Serve_protocol.rq_verb with
  | Serve_protocol.Ping -> Serve_protocol.response Serve_protocol.Ok_ ~body:"pong\n"
  | Serve_protocol.Compile -> run_compile t rq
  | Serve_protocol.Simulate -> run_simulate t rq
  | Serve_protocol.Stats | Serve_protocol.Slo | Serve_protocol.Shutdown ->
    (* daemon-level verbs; reaching the worker is a dispatch bug upstream *)
    Serve_protocol.response Serve_protocol.Bad_request
      ~body:"verb handled by the daemon\n"

(** Handle one admitted request.  Total: always returns a response, never
    raises (fatal conditions like [Out_of_memory] excepted). *)
(* this request's phase self-times: the compiler's (cumulative) phase
   timer diffed around the request.  The timer OBJECT is captured before
   the work so a mid-request recycle — which swaps in a fresh compiler
   and fresh timer — still diffs against the timer the request actually
   charged. *)
let phase_delta ~before ~after =
  List.filter_map
    (fun (name, total) ->
      let prior =
        Option.value (List.assoc_opt name before) ~default:0.0
      in
      let d = total -. prior in
      if d > 0.0 then Some (name, d) else None)
    after

let handle t (rq : Serve_protocol.request) : Serve_protocol.response =
  t.served <- t.served + 1;
  let timer0 = Vhdl_compiler.timer t.compiler in
  let phases_before = Vhdl_util.Phase_timer.report timer0 in
  let allocs_before = Vhdl_util.Phase_timer.report_alloc timer0 in
  (* exact minor count from the external — [Gc.counters]' own word
     fields are flushed only at collection boundaries on OCaml 5.1 *)
  let mi0 = Gc.minor_words () in
  let _, pr0, ma0 = Gc.counters () in
  let deadline_s = effective_deadline t.cfg rq in
  Vhdl_compiler.set_budgets t.compiler (request_budgets t.cfg rq ~deadline_s);
  let fault_denied =
    (not t.cfg.w_allow_faults)
    && (rq.Serve_protocol.rq_poison <> None
       || rq.Serve_protocol.rq_spin_ms > 0
       || rq.Serve_protocol.rq_hog_kb > 0)
  in
  let resp =
    if fault_denied then
      Serve_protocol.response Serve_protocol.Bad_request
        ~body:"fault-injection fields need a daemon started with --allow-faults\n"
    else
      match
        with_watchdog ~seconds:(deadline_s +. t.cfg.w_watchdog_grace_s) (fun () ->
            if rq.Serve_protocol.rq_spin_ms > 0 then spin_for rq.Serve_protocol.rq_spin_ms;
            (* the planted leak: retain the block on the worker so the live
               heap actually grows and stays grown *)
            if rq.Serve_protocol.rq_hog_kb > 0 then
              t.hog <- Bytes.create (rq.Serve_protocol.rq_hog_kb * 1024) :: t.hog;
            match rq.Serve_protocol.rq_poison with
            | Some key -> Difftest_fault.with_poison key (fun () -> run_verb t rq)
            | None -> run_verb t rq)
      with
      | resp -> resp
      | exception Wedged { after_s } ->
        (* the watchdog broke a wedged request: answer it, then recycle —
           state interrupted at an arbitrary safepoint is not trusted *)
        Tm.incr m_wedges;
        recycle t;
        Serve_protocol.response Serve_protocol.Timeout ~wedged:true
          ~body:
            (Printf.sprintf
               "diag [budget:serve] request wedged: watchdog fired after %.3fs \
                (deadline %.3fs + grace); worker recycled\n"
               after_s deadline_s)
      | exception Out_of_memory -> raise Out_of_memory
      | exception Sys.Break -> raise Sys.Break
      | exception exn ->
        (* the request-level firewall: wider than the per-unit supervisor —
           whatever escaped, the daemon answers and keeps serving *)
        recycle t;
        Serve_protocol.response Serve_protocol.Internal
          ~body:
            (Printf.sprintf "diag [internal:serve] request firewall: %s; worker recycled\n"
               (Printexc.to_string exn))
  in
  t.last_phases <-
    phase_delta ~before:phases_before
      ~after:(Vhdl_util.Phase_timer.report timer0);
  t.last_allocs <-
    phase_delta ~before:allocs_before
      ~after:(Vhdl_util.Phase_timer.report_alloc timer0);
  let mi1 = Gc.minor_words () in
  let _, pr1, ma1 = Gc.counters () in
  t.last_alloc_minor_w <- Float.max 0.0 (mi1 -. mi0);
  t.last_alloc_major_w <- Float.max 0.0 (ma1 -. pr1 -. (ma0 -. pr0));
  (match resp.Serve_protocol.rs_status with
  | Serve_protocol.Internal -> Tm.incr m_faults_contained
  | Serve_protocol.Timeout -> Tm.incr m_timeouts
  | _ -> ());
  if t.cfg.w_recycle_every > 0 && t.served mod t.cfg.w_recycle_every = 0 then recycle t;
  resp
