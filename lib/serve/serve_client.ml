(** Blocking client side of the compile service — `vhdlc request`, the
    smoke scripts, and the chaos campaign all speak through it.

    [roundtrip] is the healthy path.  [send_raw] sends arbitrary bytes —
    the chaos campaign uses it to deliver torn frames, bad magic, and
    oversized declarations exactly as a broken client would. *)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "send: %s" (Unix.error_message e))
    else Ok ()
  in
  go 0

(** Read until one complete response frame (or EOF / timeout). *)
let recv_response ?(timeout_s = 30.0) fd =
  let deadline = Vhdl_util.Unix_compat.now () +. timeout_s in
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Serve_protocol.parse_frame (Buffer.contents buf) with
    | `Frame (payload, _) -> Serve_protocol.decode_response payload
    | `Error err -> Error (Serve_protocol.frame_error_to_string err)
    | `Incomplete _ ->
      let left = deadline -. Vhdl_util.Unix_compat.now () in
      if left <= 0.0 then Error "timed out waiting for the response"
      else (
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> Error "timed out waiting for the response"
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            if Buffer.length buf = 0 then Error "connection closed before any response"
            else Error "connection closed mid-response"
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "recv: %s" (Unix.error_message e)))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let with_conn socket f =
  match connect socket with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> f fd)

(** One request, one response. *)
let roundtrip ?timeout_s ~socket (rq : Serve_protocol.request) :
    (Serve_protocol.response, string) result =
  with_conn socket (fun fd ->
      match send_all fd (Serve_protocol.frame (Serve_protocol.encode_request rq)) with
      | Error _ as e -> e
      | Ok () -> recv_response ?timeout_s fd)

(** Deliver arbitrary bytes.  [await_reply] additionally reads and decodes
    a response frame; without it the connection just closes — from the
    daemon's side, a client that vanished. *)
let send_raw ?timeout_s ?(await_reply = false) ~socket bytes :
    (Serve_protocol.response option, string) result =
  with_conn socket (fun fd ->
      match send_all fd bytes with
      | Error _ as e -> e
      | Ok () ->
        if not await_reply then Ok None
        else (
          match recv_response ?timeout_s fd with
          | Ok r -> Ok (Some r)
          | Error _ as e -> e))

(** Poll until the daemon answers a ping (it may still be binding). *)
let wait_ready ?(attempts = 100) ?(interval_s = 0.05) ~socket () =
  let rec go n =
    if n <= 0 then Error (Printf.sprintf "daemon on %s never became ready" socket)
    else
      match roundtrip ~timeout_s:1.0 ~socket (Serve_protocol.request Serve_protocol.Ping) with
      | Ok _ -> Ok ()
      | Error _ ->
        ignore (Unix.select [] [] [] interval_s);
        go (n - 1)
  in
  go attempts
