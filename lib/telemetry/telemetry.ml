(** Unified telemetry: a process-wide registry of counters, gauges and
    histograms, plus span-based structured tracing with Chrome trace-event
    export.

    Every layer of the pipeline registers its instruments once, at module
    initialization, and bumps them unconditionally — an increment of a
    mutable record field, cheap enough to leave on everywhere.  Spans are
    different: they read the clock twice and allocate an event record, so
    they sit behind a process-wide flag ({!set_tracing}); with tracing off
    the span layer is a null sink, a single flag test per call.

    The registry is process-wide and single-threaded, matching the
    compiler: instruments are identified by dotted names
    ([layer.instrument], e.g. ["ag.memo_hits"]), {!reset} zeroes everything
    between runs, and three exports read it back out: a human-readable
    report ({!pp_metrics}), a machine-readable JSON dump ({!metrics_json}),
    and Chrome trace-event JSON of the span tree ({!to_chrome_trace}) that
    loads in [chrome://tracing] / Perfetto. *)

(* The process clock: monotonic wall time (CLOCK_MONOTONIC via the
   bechamel stub), in seconds since the first read.  [Sys.time] would be
   CPU time — fine for a single-threaded hot loop, wrong for anything that
   sleeps, waits on IO, or gets descheduled, and far too coarse for span
   timestamps.  Every timing consumer above this library
   (Vhdl_util.Unix_compat.now, Phase_timer, the bench harness) reads this
   clock so phase tables, span trees and benchmark sessions agree. *)
let clock_epoch = Monotonic_clock.now ()

let now_s () =
  Int64.to_float (Int64.sub (Monotonic_clock.now ()) clock_epoch) *. 1e-9

(* ------------------------------------------------------------------ *)
(* Minimal JSON construction (no external dependency): values are built
   as strings with correct escaping.  Shared by the metric/trace exports
   and by callers (Stats.to_json, the bench result files). *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = "\"" ^ escape s ^ "\""
  let int n = string_of_int n

  (* JSON has no NaN/Infinity literals *)
  let float x =
    if Float.is_nan x then "null"
    else if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.6g" x

  let arr items = "[" ^ String.concat "," items ^ "]"

  let obj fields =
    "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"
end

(* ------------------------------------------------------------------ *)
(* Instruments *)

type counter = {
  c_name : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  mutable g_value : float;
}

(* Histograms keep power-of-two buckets alongside count/sum/min/max:
   bucket 0 holds values < 1, bucket i holds [2^(i-1), 2^i).  Constant
   memory, O(1) observe, and enough resolution for the p50/p90/p99
   summaries the reports print. *)
let histogram_buckets = 64

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_bucket : int array;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

(* registration order preserved for the reports *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref [] (* reverse registration order *)

let register name make =
  match Hashtbl.find_opt registry name with
  | Some i -> i
  | None ->
    let i = make () in
    Hashtbl.add registry name i;
    order := name :: !order;
    i

(** [counter name] returns the process-wide counter [name], creating it on
    first use.  Registration is idempotent: every call site naming the same
    counter shares one cell. *)
let counter name =
  match register name (fun () -> Counter { c_name = name; c_value = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg (name ^ " is registered as a non-counter instrument")

let gauge name =
  match register name (fun () -> Gauge { g_name = name; g_value = 0.0 }) with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ " is registered as a non-gauge instrument")

let histogram name =
  match
    register name (fun () ->
        Histogram
          {
            h_name = name;
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            h_bucket = Array.make histogram_buckets 0;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ " is registered as a non-histogram instrument")

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let bucket_of x =
  if not (x >= 1.0) then 0 (* also catches NaN *)
  else min (histogram_buckets - 1) (1 + int_of_float (Float.log2 x))

let observe h x =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. x;
  if x < h.h_min then h.h_min <- x;
  if x > h.h_max then h.h_max <- x;
  let b = bucket_of x in
  h.h_bucket.(b) <- h.h_bucket.(b) + 1

(** Approximate quantile [p] (in [0,1]) from the power-of-two buckets:
    the upper bound of the bucket holding the p-th observation, clamped to
    the observed [min,max].  Exact to within a factor of two, which is what
    a latency/size summary needs. *)
let percentile h p =
  if h.h_count = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (Float.ceil (p *. float_of_int h.h_count))) in
    let target = min target h.h_count in
    let rec walk i cum =
      if i >= histogram_buckets then h.h_max
      else
        let cum = cum + h.h_bucket.(i) in
        if cum >= target then if i = 0 then 1.0 else Float.pow 2.0 (float_of_int i)
        else walk (i + 1) cum
    in
    Float.min h.h_max (Float.max h.h_min (walk 0 0))
  end

(** Current value of a counter by name, 0 if never registered — the
    convenient form for reports and tests. *)
let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c.c_value
  | _ -> 0

(* ------------------------------------------------------------------ *)
(* GC gauges *)

(** Refresh the [gc.*] gauges from [Gc.quick_stat].  Called at phase
    boundaries (every {!Vhdl_util.Phase_timer} frame close) and before any
    metrics export, so [--metrics] / {!metrics_json} always carry the
    memory picture of the run: collection counts, live/total heap words,
    the peak heap, and total words allocated.  [quick_stat] does not force
    a heap walk, so the sample is cheap enough for every boundary. *)
let sample_gc () =
  let s = Gc.quick_stat () in
  let g name v = set (gauge name) v in
  g "gc.minor_collections" (float_of_int s.Gc.minor_collections);
  g "gc.major_collections" (float_of_int s.Gc.major_collections);
  g "gc.compactions" (float_of_int s.Gc.compactions);
  g "gc.heap_words" (float_of_int s.Gc.heap_words);
  g "gc.top_heap_words" (float_of_int s.Gc.top_heap_words);
  (* [quick_stat]'s word counters are flushed only at collection
     boundaries on OCaml 5.1; the [Gc.minor_words] external reads the
     live young pointer, so splice it in for an exact total *)
  g "gc.allocated_words" (Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words)

(* ------------------------------------------------------------------ *)
(* Allocation accounting primitives.

   OCaml 5.1 has no [Gc.Memprof], so allocation attribution rides on the
   GC's own word counters, exactly as time attribution rides on the
   monotonic clock.  Two tiers:

   - [minor_words_now] is the allocation-free snapshot ([Gc.minor_words]
     is an unboxed external): the per-span and per-rule mechanism, where
     the snapshot itself must not perturb what it measures.  It counts
     minor-heap allocation only — the overwhelming share in this
     allocation profile — so a span that allocates nothing reports
     exactly 0.
   - [allocated_words_now] is the full count (minor + direct-major,
     promotions excluded); it allocates a tuple, so it is reserved for
     coarse boundaries — phase frames, whole requests, bench
     repetitions — where a dozen words of bookkeeping vanish against
     megabytes of work.  The minor component comes from the exact
     external, NOT from [Gc.counters]: on OCaml 5.1 the latter's word
     counts are flushed only at collection boundaries, so a window
     without a minor collection would otherwise read as (nearly) zero
     and the deferred words would land in the next window's delta. *)

let bytes_per_word = Sys.word_size / 8

let minor_words_now () = Gc.minor_words ()

let allocated_words_now () =
  let _, pr, ma = Gc.counters () in
  Gc.minor_words () +. ma -. pr

(* ------------------------------------------------------------------ *)
(* Spans *)

(** One completed span.  Timestamps are seconds since process start
    ([now_s]); depth is the nesting level at open time (root = 0). *)
type span = {
  sp_name : string;
  sp_cat : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_alloc_w : float;
      (* words allocated while the span was open (children included);
         self-allocation is derived by the flame exporter exactly as
         self-time is — total minus direct children *)
  sp_args : (string * string) list;
}

let tracing_on = ref false
let spans_acc : span list ref = ref [] (* completion order, newest first *)
let spans_count = ref 0 (* length of spans_acc *)
let open_depth = ref 0
let open_args : (string * string) list list ref = ref [] (* per open span *)

(* Bounded-capture mode for {!with_request_spans}: [Some (base, cap)]
   means at most [cap] spans may accumulate past the [base] count; the
   excess is counted, not stored, so a pathological request cannot grow
   the heap while it is being traced. *)
let span_limit : (int * int) option ref = ref None
let span_dropped = ref 0

let set_tracing b =
  tracing_on := b;
  if not b then begin
    open_depth := 0;
    open_args := []
  end

let tracing () = !tracing_on

(** Record a completed span measured by the caller (used by
    {!Vhdl_util.Phase_timer} so the phase accounting and the span tree come
    from the same two clock reads and cannot disagree).  No-op when tracing
    is off.  [depth] defaults to the current open-span depth. *)
let record_span ?(cat = "phase") ?(args = []) ?depth ?(alloc_w = 0.0) ~name
    ~start_s ~dur_s () =
  if !tracing_on then (
    match !span_limit with
    | Some (base, cap) when !spans_count - base >= cap ->
      span_dropped := !span_dropped + 1
    | _ ->
      spans_acc :=
        {
          sp_name = name;
          sp_cat = cat;
          sp_start = start_s;
          sp_dur = dur_s;
          sp_depth = (match depth with Some d -> d | None -> !open_depth);
          sp_alloc_w = alloc_w;
          sp_args = args;
        }
        :: !spans_acc;
      spans_count := !spans_count + 1)

(** [with_span ~cat name f] runs [f] inside a span.  With tracing off this
    is a single flag test around [f].  Spans close even when [f] escapes
    with an exception, so the tree stays well-formed.

    Allocation accounting: the allocation snapshot ([Gc.minor_words], an
    allocation-free external) is read {e last} before [f] and {e first}
    after it, so the span's own bookkeeping — the closing clock read,
    the span record — never charges to the span itself.  A span whose
    body allocates nothing reports [sp_alloc_w = 0.0] exactly; the few
    words of per-child bookkeeping charge to the parent. *)
(* Per-depth allocation snapshots.  A [float array] holds its floats
   unboxed, so writing and reading a snapshot allocates nothing —
   whereas a [let]-bound float from the unboxed [Gc.minor_words]
   external gets boxed (2 words) the moment it is stored or passed,
   and that boxing would land inside the span's own window.  This
   array is the invariant behind [sp_alloc_w = 0.0] for
   allocation-free spans. *)
let alloc_snap = ref (Array.make 64 0.0)

let with_span ?(cat = "span") ?(args = []) name f =
  if not !tracing_on then f ()
  else begin
    let depth = !open_depth in
    open_depth := depth + 1;
    open_args := args :: !open_args;
    if depth >= Array.length !alloc_snap then begin
      let bigger = Array.make (2 * Array.length !alloc_snap) 0.0 in
      Array.blit !alloc_snap 0 bigger 0 (Array.length !alloc_snap);
      alloc_snap := bigger
    end;
    (* [aw1] is read at the call site, before any boxing for the call
       itself — the order that keeps the span's closing bookkeeping out
       of its own allocation window *)
    let close start aw1 =
      let alloc_w = aw1 -. !alloc_snap.(depth) in
      let dur = now_s () -. start in
      let args =
        match !open_args with
        | a :: rest ->
          open_args := rest;
          a
        | [] -> []
      in
      open_depth := depth;
      record_span ~cat ~args ~depth ~alloc_w ~name ~start_s:start ~dur_s:dur ()
    in
    let start = now_s () in
    !alloc_snap.(depth) <- Gc.minor_words ();
    match f () with
    | v ->
      let aw1 = Gc.minor_words () in
      close start aw1;
      v
    | exception exn ->
      let aw1 = Gc.minor_words () in
      close start aw1;
      raise exn
  end

(** Attach a key/value argument to the innermost open span (no-op when
    tracing is off or no span is open) — for values only known mid-span,
    like a token count. *)
let annotate key v =
  match !open_args with
  | args :: rest -> open_args := ((key, v) :: args) :: rest
  | [] -> ()

(** Completed spans, oldest first. *)
let spans () = List.rev !spans_acc

let clear_spans () =
  spans_acc := [];
  spans_count := 0

(** [with_request_spans ~cap f] runs [f] with tracing forced on and the
    spans it completes captured into a bounded buffer: returns
    [(result, spans, dropped)] where [spans] is oldest-first and
    [dropped] counts completions past [cap] (earliest spans win — the
    request's opening structure is the diagnostic payload).  When
    tracing was off on entry the global accumulator is restored on
    exit, so a long-lived daemon can trace every request without the
    process-wide span list growing; when tracing was already on the
    captured spans also stay in the global list, as a plain
    {!with_span} nest would.  Exceptions restore state and re-raise. *)
let with_request_spans ?(cap = 512) f =
  let was_on = !tracing_on in
  let saved_acc = !spans_acc and base_count = !spans_count in
  let saved_depth = !open_depth and saved_args = !open_args in
  tracing_on := true;
  span_limit := Some (base_count, cap);
  let saved_dropped = !span_dropped in
  span_dropped := 0;
  let restore () =
    span_limit := None;
    let fresh = !spans_count - base_count in
    let rec take n l =
      if n <= 0 then []
      else match l with [] -> [] | x :: tl -> x :: take (n - 1) tl
    in
    let captured = List.rev (take fresh !spans_acc) in
    let dropped = !span_dropped in
    span_dropped := saved_dropped;
    if not was_on then begin
      tracing_on := false;
      spans_acc := saved_acc;
      spans_count := base_count;
      open_depth := saved_depth;
      open_args := saved_args
    end;
    (captured, dropped)
  in
  match f () with
  | v ->
    let captured, dropped = restore () in
    (v, captured, dropped)
  | exception exn ->
    ignore (restore ());
    raise exn

(* ------------------------------------------------------------------ *)
(* Reset *)

(** Zero every registered instrument and drop recorded spans.  The tracing
    flag is left alone: a run resets at its start, not its end. *)
let reset () =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity;
        Array.fill h.h_bucket 0 histogram_buckets 0)
    registry;
  clear_spans ()

(* ------------------------------------------------------------------ *)
(* Counter snapshots *)

(** Current value of every registered counter, for {!delta} — the
    supervisor snapshots at each design-unit boundary so per-unit reports
    attribute work to the unit that did it, not to the whole run. *)
let snapshot () =
  Hashtbl.fold
    (fun name i acc ->
      match i with
      | Counter c -> (name, c.c_value) :: acc
      | Gauge _ | Histogram _ -> acc)
    registry []

(** Counters that moved since [snapshot], as (name, increment) pairs in
    name order; counters registered after the snapshot count from zero. *)
let delta snap =
  Hashtbl.fold
    (fun name i acc ->
      match i with
      | Counter c ->
        let base = Option.value (List.assoc_opt name snap) ~default:0 in
        if c.c_value <> base then (name, c.c_value - base) :: acc else acc
      | Gauge _ | Histogram _ -> acc)
    registry []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Reports *)

let instruments () =
  List.rev_map (fun name -> (name, Hashtbl.find registry name)) !order
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Human-readable metrics report: all registered instruments in name
    order.  [nonzero] (default true) hides instruments that never fired —
    the interesting view after a run. *)
let pp_metrics ?(nonzero = true) fmt () =
  sample_gc ();
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (name, i) ->
      match i with
      | Counter c ->
        if (not nonzero) || c.c_value <> 0 then
          Format.fprintf fmt "%-34s %12d@," name c.c_value
      | Gauge g ->
        if (not nonzero) || g.g_value <> 0.0 then
          Format.fprintf fmt "%-34s %12.4f@," name g.g_value
      | Histogram h ->
        if (not nonzero) || h.h_count <> 0 then
          Format.fprintf fmt
            "%-34s %12d  sum %.0f  min %.0f  max %.0f  mean %.1f  p50 %.0f  p90 \
             %.0f  p99 %.0f@,"
            name h.h_count h.h_sum
            (if h.h_count = 0 then 0.0 else h.h_min)
            (if h.h_count = 0 then 0.0 else h.h_max)
            (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count)
            (percentile h 0.50) (percentile h 0.90) (percentile h 0.99))
    (instruments ());
  Format.fprintf fmt "@]"

(** Machine-readable dump of every registered instrument:
    [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)
let metrics_json () =
  sample_gc ();
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, i) ->
      match i with
      | Counter c -> counters := (name, Json.int c.c_value) :: !counters
      | Gauge g -> gauges := (name, Json.float g.g_value) :: !gauges
      | Histogram h ->
        histograms :=
          ( name,
            Json.obj
              [
                ("count", Json.int h.h_count);
                ("sum", Json.float h.h_sum);
                ("min", Json.float (if h.h_count = 0 then 0.0 else h.h_min));
                ("max", Json.float (if h.h_count = 0 then 0.0 else h.h_max));
                ("p50", Json.float (percentile h 0.50));
                ("p90", Json.float (percentile h 0.90));
                ("p99", Json.float (percentile h 0.99));
              ] )
          :: !histograms)
    (instruments ());
  Json.obj
    [
      ("counters", Json.obj (List.rev !counters));
      ("gauges", Json.obj (List.rev !gauges));
      ("histograms", Json.obj (List.rev !histograms));
    ]

(** Chrome trace-event JSON of the recorded spans: an array of complete
    ("ph":"X") events with microsecond [ts]/[dur], one process, one thread
    — the format [chrome://tracing] and Perfetto load directly.  Nesting is
    carried by timestamp containment, which the single-threaded span stack
    guarantees.  [spans] (oldest first, e.g. a {!with_request_spans}
    capture) overrides the process-global recording. *)
let to_chrome_trace ?(process_name = "vhdlc") ?spans:span_override () =
  let us x = Printf.sprintf "%.3f" (x *. 1e6) in
  let events =
    List.map
      (fun sp ->
        let base =
          [
            ("name", Json.str sp.sp_name);
            ("cat", Json.str sp.sp_cat);
            ("ph", Json.str "X");
            ("ts", us sp.sp_start);
            ("dur", us sp.sp_dur);
            ("pid", Json.int 1);
            ("tid", Json.int 1);
          ]
        in
        let args =
          ("depth", Json.int sp.sp_depth)
          :: ("alloc_w", Json.float sp.sp_alloc_w)
          :: List.rev_map (fun (k, v) -> (k, Json.str v)) sp.sp_args
        in
        Json.obj (base @ [ ("args", Json.obj args) ]))
      (List.sort
         (fun a b -> compare a.sp_start b.sp_start)
         (match span_override with Some l -> l | None -> spans ()))
  in
  let meta =
    Json.obj
      [
        ("name", Json.str "process_name");
        ("ph", Json.str "M");
        ("pid", Json.int 1);
        ("tid", Json.int 1);
        ("args", Json.obj [ ("name", Json.str process_name) ]);
      ]
  in
  Json.arr (meta :: events)
