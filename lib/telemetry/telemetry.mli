(** Unified telemetry: a process-wide registry of counters, gauges and
    histograms, plus span-based structured tracing with Chrome trace-event
    export.

    This interface is the locked public surface.  The span frame stack,
    the bounded-capture state behind {!with_request_spans}, and the
    allocation-snapshot bookkeeping are implementation details — code
    outside this module observes them only through the functions below. *)

val now_s : unit -> float
(** Monotonic wall time in seconds since the first read — the one clock
    every timing consumer (spans, phase tables, the bench harness)
    shares. *)

(** Minimal JSON construction (no external dependency). *)
module Json : sig
  val escape : string -> string
  val str : string -> string
  val int : int -> string

  val float : float -> string
  (** NaN prints as [null]; integral values print without a fraction. *)

  val arr : string list -> string
  val obj : (string * string) list -> string
end

(** {1 Instruments} *)

type counter = {
  c_name : string;
  mutable c_value : int;
}

type gauge = {
  g_name : string;
  mutable g_value : float;
}

val histogram_buckets : int
(** Power-of-two bucket count (64): bucket 0 holds values < 1, bucket i
    holds [2^(i-1), 2^i). *)

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_bucket : int array;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

val counter : string -> counter
(** The process-wide counter of that dotted name, created on first use;
    registration is idempotent, so every call site shares one cell. *)

val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val bucket_of : float -> int
val observe : histogram -> float -> unit

val percentile : histogram -> float -> float
(** Approximate quantile from the power-of-two buckets, clamped to the
    observed [min,max] — exact to within a factor of two. *)

val counter_value : string -> int
(** Current value of a counter by name, 0 if never registered. *)

val sample_gc : unit -> unit
(** Refresh the [gc.*] gauges from [Gc.quick_stat] — collection counts,
    live/peak heap words, total allocated words. *)

(** {1 Allocation accounting} *)

val bytes_per_word : int

val minor_words_now : unit -> float
(** Allocation-free snapshot of minor-heap words allocated so far
    ([Gc.minor_words]) — the per-span / per-rule mechanism. *)

val allocated_words_now : unit -> float
(** Total words allocated so far (minor + direct-major, promotions
    excluded), from [Gc.counters]; itself allocates a few words, so it
    is for coarse boundaries (phases, requests, bench repetitions). *)

(** {1 Spans} *)

(** One completed span.  Timestamps are seconds since process start;
    depth is the nesting level at open time (root = 0); [sp_alloc_w] is
    the words allocated while the span was open, children included. *)
type span = {
  sp_name : string;
  sp_cat : string;
  sp_start : float;
  sp_dur : float;
  sp_depth : int;
  sp_alloc_w : float;
  sp_args : (string * string) list;
}

val set_tracing : bool -> unit
val tracing : unit -> bool

val record_span :
  ?cat:string ->
  ?args:(string * string) list ->
  ?depth:int ->
  ?alloc_w:float ->
  name:string ->
  start_s:float ->
  dur_s:float ->
  unit ->
  unit
(** Record a completed span measured by the caller (how {!Vhdl_util.Phase_timer}
    keeps phase accounting and the span tree on the same clock reads).
    No-op when tracing is off. *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run [f] inside a span — a single flag test when tracing is off.  The
    span closes even when [f] escapes.  Allocation is snapshotted
    allocation-free around [f], so a span whose body allocates nothing
    reports [sp_alloc_w = 0.0] exactly. *)

val annotate : string -> string -> unit
(** Attach a key/value argument to the innermost open span. *)

val spans : unit -> span list
(** Completed spans, oldest first. *)

val clear_spans : unit -> unit

val with_request_spans : ?cap:int -> (unit -> 'a) -> 'a * span list * int
(** Run [f] with tracing forced on and its spans captured into a bounded
    buffer: [(result, spans, dropped)], oldest-first, [dropped] counting
    completions past [cap].  When tracing was off on entry the global
    accumulator is restored on exit. *)

(** {1 Registry-wide operations} *)

val reset : unit -> unit
(** Zero every registered instrument and drop recorded spans; the
    tracing flag is left alone. *)

val snapshot : unit -> (string * int) list
(** Current value of every registered counter, for {!delta}. *)

val delta : (string * int) list -> (string * int) list
(** Counters that moved since [snapshot], in name order. *)

val instruments : unit -> (string * instrument) list
(** Every registered instrument, in name order. *)

val pp_metrics : ?nonzero:bool -> Format.formatter -> unit -> unit
val metrics_json : unit -> string

val to_chrome_trace : ?process_name:string -> ?spans:span list -> unit -> string
(** Chrome trace-event JSON of the recorded spans ([spans] overrides the
    process-global recording). *)
