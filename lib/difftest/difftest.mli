(** Differential fuzzing campaigns: generate → dual-compile → compare →
    shrink → persist reproducers.

    The deterministic smoke campaign (fixed seed range, ~100 designs) runs
    under [dune runtest]; the open-ended soak campaign lives behind
    [bin/vhdlfuzz --soak] and the [@fuzz-smoke] alias so it never blocks
    tier-1. *)

type summary = {
  mutable total : int;
  mutable compiled : int; (* designs both sides accepted *)
  mutable simulated : int; (* designs that also ran to the horizon *)
  mutable rejected : int; (* designs both sides rejected identically *)
  mutable divergences : int;
  mutable crashes : int;
  mutable shrunk : (int * string * Difftest_oracle.verdict) list;
      (* (seed, minimized source, verdict) for each failure, newest first *)
  mutable reproducer_files : string list;
}

val run_campaign :
  ?inject_fault:bool ->
  ?corpus_dir:string ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  seeds:int list ->
  size:int ->
  unit ->
  summary
(** Fuzz every seed.  On a divergence or crash the design is minimized with
    {!Difftest_shrink.shrink} (re-running the oracle as the predicate) and,
    when [corpus_dir] is given, written there as a replayable reproducer. *)

val smoke_seeds : int list
(** The fixed seed range of the smoke campaign (100 seeds). *)

val default_campaign_budgets : Supervisor.budgets
(** Budgets of {!run_budget_campaign}: tight enough to trip on runaway
    behavior, loose enough that ordinary generated designs pass. *)

val run_budget_campaign :
  ?budgets:Supervisor.budgets ->
  ?corpus_dir:string ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  seeds:int list ->
  size:int ->
  unit ->
  summary
(** Containment campaign ([vhdlfuzz --budget]): each design runs once
    under resource budgets through {!Difftest_oracle.check_contained}; any
    raw exception escape or internal-error diagnostic counts as a crash
    and is shrunk/archived like a differential finding. *)

(** {1 Reproducer corpus} *)

val save_reproducer :
  dir:string ->
  seed:int ->
  top:string option ->
  max_ns:int ->
  verdict:Difftest_oracle.verdict ->
  string ->
  string
(** Write a reproducer file ([vhdlfuzz] header comments + source); returns
    the path. *)

type corpus_entry = {
  ce_path : string;
  ce_top : string option;
  ce_max_ns : int;
  ce_source : string;
}

val load_corpus_file : string -> corpus_entry
(** Parse the [-- vhdlfuzz] header comments of a corpus file.  Plain VHDL
    files (no header) replay with [top = None] and the default horizon. *)

val replay : ?inject_fault:bool -> string -> Difftest_oracle.verdict
(** Re-run the oracle on a corpus file. *)

val pp_summary : Format.formatter -> summary -> unit
