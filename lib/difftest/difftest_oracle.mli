(** The dual-evaluator differential oracle.

    Each design is compiled twice — once on the [Demand] reference path
    (goal-directed memoizing evaluation, cold cascade, no copy elision),
    once on the [Staged] default (per-unit {!Analysis.plan} runs with
    copy elision and the warm LEF→tree memo) — then both results are
    elaborated and simulated to a bounded horizon.  The oracle asserts
    identical compiled unit keys, identical human-readable VIF for every
    unit, identical diagnostics, and identical simulation traces,
    assert/report output, and kernel outcome. *)

(** What one strategy produced (everything rendered to strings so the two
    sides compare structurally). *)
type side = {
  s_label : string;
  s_phase : string; (* "compile" | "elaborate" | "simulate" | "done" *)
  s_rejected : string option; (* compile/elaboration diagnostics, if rejected *)
  s_crash : string option; (* Cycle / Missing_rule / Internal / unexpected exn *)
  s_units : string list;
  s_vif : string list;
  s_diags : string list;
  s_outcome : string;
  s_trace : string list;
  s_messages : string list;
}

type verdict =
  | Agree of {
      compiled : bool;
      simulated : bool;
      units : int;
      trace_changes : int;
    }
  | Divergence of { stage : string; detail : string }
  | Crash of { side_ : string; stage : string; detail : string }

val run_side :
  strategy:Vhdl_compiler.strategy ->
  ?inject_fault:bool ->
  max_ns:int ->
  top:string option ->
  string ->
  side
(** Compile (and, with a top, elaborate + simulate) one source text under
    one strategy.  [inject_fault] activates the armed semantic-rule flip
    around the staged side only. *)

val check : ?inject_fault:bool -> Difftest_gen.design -> verdict
(** Run both sides on a design and compare. *)

val check_source : ?inject_fault:bool -> ?max_ns:int -> top:string option -> string -> verdict

val check_contained :
  ?budgets:Supervisor.budgets -> ?max_ns:int -> top:string option -> string -> verdict
(** Single-side containment oracle for budget campaigns (where the two
    strategies legitimately disagree): every phase must succeed, reject
    with diagnostics, or report a budget exhaustion.  A raw exception
    escape or an [Internal]-origin diagnostic is a [Crash] finding. *)

val same_class : verdict -> verdict -> bool
(** Same verdict constructor and stage — the shrinker's "still interesting"
    test (details may drift while a design shrinks). *)

val describe : verdict -> string
