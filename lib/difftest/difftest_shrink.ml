(** Delta debugging over source lines (see the .mli). *)

type stats = {
  tests_run : int;
  lines_before : int;
  lines_after : int;
}

exception Budget_exhausted

let split_lines s = String.split_on_char '\n' s
let join_lines ls = String.concat "\n" ls

(* [chunks n ls] partitions [ls] into [n] contiguous chunks (some possibly
   a line longer than others). *)
let chunks n ls =
  let len = List.length ls in
  let base = len / n and extra = len mod n in
  let rec take k ls acc =
    if k = 0 then (List.rev acc, ls)
    else
      match ls with
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) rest (x :: acc)
  in
  let rec go i ls acc =
    if i >= n || ls = [] then List.rev acc
    else
      let sz = base + if i < extra then 1 else 0 in
      let chunk, rest = take sz ls [] in
      go (i + 1) rest (if chunk = [] then acc else chunk :: acc)
  in
  go 0 ls []

let without i parts = List.concat (List.filteri (fun j _ -> j <> i) parts)

let shrink ?(max_tests = 600) ~interesting source =
  let tests = ref 0 in
  let test ls =
    if !tests >= max_tests then raise Budget_exhausted;
    incr tests;
    interesting (join_lines ls)
  in
  let lines0 = split_lines source in
  let best = ref lines0 in
  let ddmin lines =
    (* invariant: [lines] is interesting *)
    let rec go lines n =
      best := lines;
      let len = List.length lines in
      if len <= 1 then lines
      else
        let n = min n len in
        let parts = chunks n lines in
        let nparts = List.length parts in
        (* try dropping one chunk at a time *)
        let rec try_drop i =
          if i >= nparts then None
          else
            let candidate = without i parts in
            if candidate <> [] && test candidate then Some candidate
            else try_drop (i + 1)
        in
        match try_drop 0 with
        | Some reduced -> go reduced (max 2 (n - 1))
        | None -> if n < len then go lines (min len (2 * n)) else lines
    in
    go lines 2
  in
  let single_sweep lines =
    (* remove single lines to a fixpoint (catches stragglers ddmin's chunk
       boundaries missed) *)
    let changed = ref true in
    let cur = ref lines in
    while !changed do
      changed := false;
      let i = ref 0 in
      while !i < List.length !cur && List.length !cur > 1 do
        let candidate = List.filteri (fun j _ -> j <> !i) !cur in
        if test candidate then begin
          cur := candidate;
          best := candidate;
          changed := true
        end
        else incr i
      done
    done;
    !cur
  in
  let final =
    try single_sweep (ddmin lines0) with Budget_exhausted -> !best
  in
  ( join_lines final,
    {
      tests_run = !tests;
      lines_before = List.length lines0;
      lines_after = List.length final;
    } )
