(** Seeded random VHDL design generation for the differential fuzzer.

    The generator is conservative by construction: expressions are typed,
    divisors and exponents are literal and small, every defining integer
    expression is bounded by a top-level [mod], signal topologies are
    acyclic, and process/concurrent drivers never overlap — so designs
    compile, elaborate, and quiesce, and the oracle's budget goes to
    demand-vs-staged agreement rather than to parse errors.  Part of the
    shapes compose the [lib/workload] generators (netlists, behavioral
    state machines, configurations) with randomized parameters. *)

type design = {
  d_seed : int;
  d_source : string;
  d_top : string option;
  d_max_ns : int;
}

let rand_from ~seed = Random.State.make [| seed; 0x5eed; 0xd1ff |]

(* ------------------------------------------------------------------ *)
(* Random expression strings *)

let pick st l = List.nth l (Random.State.int st (List.length l))

let small_lit st = string_of_int (Random.State.int st 10)
let nonzero_lit st = string_of_int (1 + Random.State.int st 8)

let rec int_expr st ~env ~depth =
  if depth <= 0 || (env = [] && Random.State.int st 4 = 0) then
    match env with
    | [] -> small_lit st
    | _ -> if Random.State.bool st then small_lit st else pick st env
  else
    let sub () = int_expr st ~env ~depth:(depth - 1) in
    match Random.State.int st 8 with
    | 0 -> Printf.sprintf "(%s + %s)" (sub ()) (sub ())
    | 1 -> Printf.sprintf "(%s - %s)" (sub ()) (sub ())
    | 2 -> Printf.sprintf "(%s * %s)" (sub ()) (sub ())
    | 3 -> Printf.sprintf "(%s mod %s)" (sub ()) (nonzero_lit st)
    | 4 -> Printf.sprintf "(%s / %s)" (sub ()) (nonzero_lit st)
    | 5 -> Printf.sprintf "(abs (%s))" (sub ())
    | 6 -> Printf.sprintf "(-%s)" (sub ())
    | _ -> Printf.sprintf "((%s mod 5) ** 2)" (sub ())

and bool_expr st ~env ~depth =
  if depth <= 0 then
    if Random.State.bool st then "true" else "false"
  else
    let isub () = int_expr st ~env ~depth:(depth - 1) in
    let bsub () = bool_expr st ~env ~depth:(depth - 1) in
    match Random.State.int st 7 with
    | 0 -> Printf.sprintf "(%s < %s)" (isub ()) (isub ())
    | 1 -> Printf.sprintf "(%s >= %s)" (isub ()) (isub ())
    | 2 -> Printf.sprintf "(%s = %s)" (isub ()) (isub ())
    | 3 -> Printf.sprintf "(%s /= %s)" (isub ()) (isub ())
    | 4 -> Printf.sprintf "(%s and %s)" (bsub ()) (bsub ())
    | 5 -> Printf.sprintf "(%s or %s)" (bsub ()) (bsub ())
    | _ -> Printf.sprintf "(not %s)" (bsub ())

(* Every defining occurrence goes through this bound so folded constants and
   simulated signal values stay far inside INTEGER'RANGE even when clocked
   processes iterate the expression. *)
let bounded e = Printf.sprintf "(%s) mod 9973" e

(* ------------------------------------------------------------------ *)
(* Shape 1: expression-heavy constants and concurrent assignments *)

let gen_exprs st ~size b =
  let n = 2 + (size * 3) + Random.State.int st 4 in
  let add = Buffer.add_string b in
  add "entity FZTOP is\nend FZTOP;\n\narchitecture fz of FZTOP is\n";
  let env = ref [] in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "K%d" i in
    add
      (Printf.sprintf "  constant %s : integer := %s;\n" name
         (bounded (int_expr st ~env:!env ~depth:(1 + Random.State.int st 3))));
    env := name :: !env
  done;
  for i = 0 to (n / 2) - 1 do
    add (Printf.sprintf "  signal w%d : integer := 0;\n" i)
  done;
  add "begin\n";
  for i = 0 to (n / 2) - 1 do
    add
      (Printf.sprintf "  w%d <= %s after %d ns;\n" i
         (bounded (int_expr st ~env:!env ~depth:2))
         (1 + Random.State.int st 6))
  done;
  add "end fz;\n";
  (Some "FZTOP", 40)

(* ------------------------------------------------------------------ *)
(* Shape 2: random process/signal topology under a clock *)

let gen_processes st ~size b =
  let add = Buffer.add_string b in
  let n_proc = 1 + size + Random.State.int st 2 in
  let n_sig = 2 + (size * 2) in
  let n_conc = 1 + size in
  add "entity FZTOP is\nend FZTOP;\n\narchitecture fz of FZTOP is\n";
  add "  signal clk : bit := '0';\n";
  for i = 0 to n_sig - 1 do
    add (Printf.sprintf "  signal s%d : integer := %d;\n" i (Random.State.int st 10))
  done;
  for i = 0 to n_conc - 1 do
    add (Printf.sprintf "  signal c%d : integer := 0;\n" i)
  done;
  add "  signal flag : bit := '0';\n";
  add "begin\n";
  add "  clock : process\n  begin\n    clk <= not clk after 5 ns;\n    wait for 5 ns;\n  end process;\n";
  let sig_env = List.init n_sig (Printf.sprintf "s%d") in
  for p = 0 to n_proc - 1 do
    (* each process drives a disjoint slice of the s* signals (single driver
       per signal), reading any of them *)
    let lo = p * n_sig / n_proc and hi = ((p + 1) * n_sig / n_proc) - 1 in
    add (Printf.sprintf "  p%d : process (clk)\n    variable t : integer := 0;\n  begin\n" p);
    add "    if clk'event and clk = '1' then\n";
    add
      (Printf.sprintf "      t := %s;\n"
         (bounded (int_expr st ~env:sig_env ~depth:2)));
    for i = lo to hi do
      add
        (Printf.sprintf "      s%d <= %s;\n" i
           (bounded (int_expr st ~env:("t" :: sig_env) ~depth:2)))
    done;
    if p = 0 then begin
      add
        (Printf.sprintf "      if %s then\n        flag <= not flag;\n      end if;\n"
           (bool_expr st ~env:sig_env ~depth:2));
      add
        (Printf.sprintf
           "      assert %s report \"fuzz invariant\" severity note;\n"
           (bool_expr st ~env:sig_env ~depth:1))
    end;
    add "    end if;\n  end process;\n"
  done;
  (* concurrent assignments form an acyclic chain over the c* signals *)
  for i = 0 to n_conc - 1 do
    let env = sig_env @ List.init i (Printf.sprintf "c%d") in
    add
      (Printf.sprintf "  c%d <= %s after %d ns;\n" i
         (bounded (int_expr st ~env ~depth:2))
         (1 + Random.State.int st 4))
  done;
  add "end fz;\n";
  (Some "FZTOP", 60)

(* ------------------------------------------------------------------ *)
(* Shape 3: package + body + a using entity (multi-unit library flow) *)

let gen_package st ~size b =
  let add = Buffer.add_string b in
  let n_const = 2 + size and n_fun = 1 + (size / 2) in
  add "package FZPKG is\n";
  let env = ref [] in
  for i = 0 to n_const - 1 do
    let name = Printf.sprintf "P%d" i in
    add
      (Printf.sprintf "  constant %s : integer := %s;\n" name
         (bounded (int_expr st ~env:!env ~depth:2)));
    env := name :: !env
  done;
  for i = 0 to n_fun - 1 do
    add (Printf.sprintf "  function FF%d (x : integer) return integer;\n" i)
  done;
  add "end FZPKG;\n\npackage body FZPKG is\n";
  for i = 0 to n_fun - 1 do
    add
      (Printf.sprintf
         "  function FF%d (x : integer) return integer is\n  begin\n    return %s;\n  end FF%d;\n"
         i
         (bounded (int_expr st ~env:("x" :: !env) ~depth:2))
         i)
  done;
  add "end FZPKG;\n\n";
  add "use work.FZPKG.all;\n\nentity FZTOP is\nend FZTOP;\n\narchitecture fz of FZTOP is\n";
  add
    (Printf.sprintf "  constant Q : integer := %s;\n"
       (bounded (int_expr st ~env:!env ~depth:2)));
  add "  signal r : integer := 0;\n  signal u : integer := 0;\nbegin\n";
  add
    (Printf.sprintf "  r <= %s after 2 ns;\n"
       (bounded (Printf.sprintf "FF0(%s) + Q" (int_expr st ~env:!env ~depth:1))));
  add
    (Printf.sprintf "  u <= %s after 3 ns;\n"
       (bounded (int_expr st ~env:("Q" :: "r" :: !env) ~depth:2)));
  add "end fz;\n";
  (Some "FZTOP", 20)

(* ------------------------------------------------------------------ *)
(* Shape 4: enumeration state machine with a case statement *)

let gen_enum_fsm st ~size b =
  let add = Buffer.add_string b in
  let n_states = 2 + size + Random.State.int st 3 in
  add "entity FZTOP is\nend FZTOP;\n\narchitecture fz of FZTOP is\n";
  add "  type fz_state is (";
  for s = 0 to n_states - 1 do
    if s > 0 then add ", ";
    add (Printf.sprintf "ST%d" s)
  done;
  add ");\n  signal st : fz_state := ST0;\n";
  add "  signal clk : bit := '0';\n  signal code : integer := 0;\n  signal acc : integer := 0;\nbegin\n";
  add "  clock : process\n  begin\n    clk <= not clk after 5 ns;\n    wait for 5 ns;\n  end process;\n";
  add "  fsm : process (clk)\n  begin\n    if clk'event and clk = '1' then\n      case st is\n";
  for s = 0 to n_states - 1 do
    (* random successor keeps the walk interesting; any successor is valid *)
    let next = Random.State.int st n_states in
    add (Printf.sprintf "        when ST%d => st <= ST%d;\n" s next)
  done;
  add "      end case;\n";
  add
    (Printf.sprintf "      acc <= %s;\n"
       (bounded (int_expr st ~env:[ "acc"; "code" ] ~depth:2)));
  add "    end if;\n  end process;\n";
  add "  code <= fz_state'pos(st);\n";
  add "end fz;\n";
  (Some "FZTOP", 60)

(* ------------------------------------------------------------------ *)
(* Shape 5/6: compositions of the lib/workload generators *)

let gen_structural st ~size b =
  let instances = 1 + (size * 4) + Random.State.int st 8 in
  Buffer.add_string b (Workload.structural ~name:"FZNET" ~instances);
  (Some "FZNET", 30)

let gen_configured st ~size b =
  (* the per-label configuration binds A(i mod 3), so at least A0..A2 *)
  let archs = 3 + Random.State.int st 2 in
  let instances = 1 + size + Random.State.int st 4 in
  let style = if Random.State.bool st then `Per_label else `All in
  Buffer.add_string b (Workload.multi_arch_library ~archs);
  let netlist, config = Workload.config_workload ~style ~instances () in
  Buffer.add_string b netlist;
  Buffer.add_string b "\n";
  Buffer.add_string b config;
  (Some "BOARD", 20)

let gen_behavioral st ~size b =
  let states = 2 + size + Random.State.int st 4 in
  let exprs = 1 + (size * 2) + Random.State.int st 6 in
  Buffer.add_string b (Workload.behavioral ~name:"FZBEH" ~states ~exprs);
  (Some "FZBEH", 40)

(* ------------------------------------------------------------------ *)

let shapes =
  [|
    ("exprs", gen_exprs);
    ("processes", gen_processes);
    ("package", gen_package);
    ("enum-fsm", gen_enum_fsm);
    ("structural", gen_structural);
    ("configured", gen_configured);
    ("behavioral", gen_behavioral);
  |]

let shape_index ~seed =
  let st = rand_from ~seed in
  Random.State.int st (Array.length shapes)

let shape_name ~seed = fst shapes.(shape_index ~seed)

let generate ~seed ~size =
  let st = rand_from ~seed in
  let idx = Random.State.int st (Array.length shapes) in
  let _, gen = shapes.(idx) in
  let b = Buffer.create 4096 in
  let top, max_ns = gen st ~size b in
  { d_seed = seed; d_source = Buffer.contents b; d_top = top; d_max_ns = max_ns }

(* ------------------------------------------------------------------ *)
(* Random runtime values (shared with the Value_ops property tests) *)

let int_array ?(min_len = 0) ?(max_len = 12) st =
  let n = min_len + Random.State.int st (max_len - min_len + 1) in
  let lo = Random.State.int st 8 in
  Value.Varray
    {
      bounds = (lo, Value.To, lo + n - 1);
      elems = Array.init n (fun _ -> Value.Vint (Random.State.int st 2001 - 1000));
    }

let bit_vector ?(min_len = 1) ?(max_len = 16) st =
  let n = min_len + Random.State.int st (max_len - min_len + 1) in
  Value.Varray
    {
      bounds = (0, Value.To, n - 1);
      elems = Array.init n (fun _ -> Value.Venum (Random.State.int st 2));
    }

let rec value ?(depth = 2) st =
  if depth <= 0 then
    match Random.State.int st 4 with
    | 0 -> Value.Vint (Random.State.int st 2001 - 1000)
    | 1 -> Value.Vfloat (Random.State.float st 100.0 -. 50.0)
    | 2 -> Value.Venum (Random.State.int st 4)
    | _ -> Value.Vphys (Random.State.int st 10_000)
  else
    match Random.State.int st 6 with
    | 0 | 1 -> value ~depth:0 st
    | 2 -> int_array st
    | 3 -> bit_vector st
    | 4 ->
      let n = 1 + Random.State.int st 4 in
      Value.Vrecord
        (List.init n (fun i -> (Printf.sprintf "F%d" i, value ~depth:(depth - 1) st)))
    | _ ->
      let n = Random.State.int st 5 in
      Value.Varray
        {
          bounds = (0, Value.To, n - 1);
          elems = Array.init n (fun _ -> value ~depth:0 st);
        }
