(** Differential fuzzing campaigns and the reproducer corpus (see .mli). *)

type summary = {
  mutable total : int;
  mutable compiled : int;
  mutable simulated : int;
  mutable rejected : int;
  mutable divergences : int;
  mutable crashes : int;
  mutable shrunk : (int * string * Difftest_oracle.verdict) list;
  mutable reproducer_files : string list;
}

let smoke_seeds = List.init 100 (fun i -> i + 1)

(* ------------------------------------------------------------------ *)
(* Reproducer corpus *)

let save_reproducer ~dir ~seed ~top ~max_ns ~verdict source =
  Vhdl_util.Unix_compat.mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "shrunk_seed%d.vhd" seed) in
  let b = Buffer.create 1024 in
  Buffer.add_string b "-- vhdlfuzz reproducer\n";
  Buffer.add_string b (Printf.sprintf "-- seed: %d\n" seed);
  Buffer.add_string b
    (Printf.sprintf "-- top: %s\n" (Option.value top ~default:"-"));
  Buffer.add_string b (Printf.sprintf "-- max-ns: %d\n" max_ns);
  (* a divergence's detail can span many lines (VIF dumps); every line
     must stay a comment or the header corrupts the reproducer *)
  String.split_on_char '\n' (Difftest_oracle.describe verdict)
  |> List.iter (fun line ->
         Buffer.add_string b (Printf.sprintf "-- verdict: %s\n" line));
  Buffer.add_string b source;
  if source = "" || source.[String.length source - 1] <> '\n' then
    Buffer.add_char b '\n';
  Vhdl_util.Unix_compat.write_file path (Buffer.contents b);
  path

type corpus_entry = {
  ce_path : string;
  ce_top : string option;
  ce_max_ns : int;
  ce_source : string;
}

let header_field line key =
  let prefix = "-- " ^ key ^ ":" in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (String.trim
         (String.sub line (String.length prefix)
            (String.length line - String.length prefix)))
  else None

let load_corpus_file path =
  let source = Vhdl_util.Unix_compat.read_file path in
  let top = ref None and max_ns = ref 50 in
  List.iter
    (fun line ->
      (match header_field line "top" with
      | Some "-" -> ()
      | Some t -> top := Some t
      | None -> ());
      match header_field line "max-ns" with
      | Some n -> ( match int_of_string_opt n with Some n -> max_ns := n | None -> ())
      | None -> ())
    (String.split_on_char '\n' source);
  { ce_path = path; ce_top = !top; ce_max_ns = !max_ns; ce_source = source }

let replay ?(inject_fault = false) path =
  let e = load_corpus_file path in
  Difftest_oracle.check_source ~inject_fault ~max_ns:e.ce_max_ns ~top:e.ce_top
    e.ce_source

(* ------------------------------------------------------------------ *)
(* Campaigns *)

let run_campaign ?(inject_fault = false) ?corpus_dir ?(shrink_budget = 600)
    ?(log = fun _ -> ()) ~seeds ~size () =
  if inject_fault then Difftest_fault.arm ();
  let s =
    {
      total = 0;
      compiled = 0;
      simulated = 0;
      rejected = 0;
      divergences = 0;
      crashes = 0;
      shrunk = [];
      reproducer_files = [];
    }
  in
  List.iter
    (fun seed ->
      let design = Difftest_gen.generate ~seed ~size in
      let verdict = Difftest_oracle.check ~inject_fault design in
      s.total <- s.total + 1;
      (match verdict with
      | Difftest_oracle.Agree { compiled; simulated; _ } ->
        if compiled then begin
          s.compiled <- s.compiled + 1;
          if simulated then s.simulated <- s.simulated + 1
        end
        else s.rejected <- s.rejected + 1
      | Difftest_oracle.Divergence _ -> s.divergences <- s.divergences + 1
      | Difftest_oracle.Crash _ -> s.crashes <- s.crashes + 1);
      match verdict with
      | Difftest_oracle.Agree _ ->
        log
          (Printf.sprintf "seed %d (%s): %s" seed
             (Difftest_gen.shape_name ~seed)
             (Difftest_oracle.describe verdict))
      | _ ->
        log
          (Printf.sprintf "seed %d (%s): %s — shrinking" seed
             (Difftest_gen.shape_name ~seed)
             (Difftest_oracle.describe verdict));
        let interesting src =
          Difftest_oracle.same_class verdict
            (Difftest_oracle.check_source ~inject_fault
               ~max_ns:design.Difftest_gen.d_max_ns
               ~top:design.Difftest_gen.d_top src)
        in
        let minimized, st =
          Difftest_shrink.shrink ~max_tests:shrink_budget ~interesting
            design.Difftest_gen.d_source
        in
        log
          (Printf.sprintf "seed %d: shrunk %d -> %d lines (%d oracle runs)" seed
             st.Difftest_shrink.lines_before st.Difftest_shrink.lines_after
             st.Difftest_shrink.tests_run);
        s.shrunk <- (seed, minimized, verdict) :: s.shrunk;
        Option.iter
          (fun dir ->
            let path =
              save_reproducer ~dir ~seed ~top:design.Difftest_gen.d_top
                ~max_ns:design.Difftest_gen.d_max_ns ~verdict minimized
            in
            s.reproducer_files <- path :: s.reproducer_files;
            log (Printf.sprintf "seed %d: reproducer written to %s" seed path))
          corpus_dir)
    seeds;
  s

(* Tight enough to trip on runaway behavior, loose enough that ordinary
   generated designs compile and simulate untouched. *)
let default_campaign_budgets =
  {
    Supervisor.eval_fuel = Some 2_000_000;
    elab_steps = Some 50_000;
    deadline_s = Some 20.0;
    sim_step_fuel = Some 100_000;
  }

let run_budget_campaign ?(budgets = default_campaign_budgets) ?corpus_dir
    ?(shrink_budget = 600) ?(log = fun _ -> ()) ~seeds ~size () =
  let s =
    {
      total = 0;
      compiled = 0;
      simulated = 0;
      rejected = 0;
      divergences = 0;
      crashes = 0;
      shrunk = [];
      reproducer_files = [];
    }
  in
  List.iter
    (fun seed ->
      let design = Difftest_gen.generate ~seed ~size in
      let contained src =
        Difftest_oracle.check_contained ~budgets ~max_ns:design.Difftest_gen.d_max_ns
          ~top:design.Difftest_gen.d_top src
      in
      let verdict = contained design.Difftest_gen.d_source in
      s.total <- s.total + 1;
      match verdict with
      | Difftest_oracle.Agree { compiled; simulated; _ } ->
        if compiled then begin
          s.compiled <- s.compiled + 1;
          if simulated then s.simulated <- s.simulated + 1
        end
        else s.rejected <- s.rejected + 1;
        log
          (Printf.sprintf "seed %d (%s): %s" seed
             (Difftest_gen.shape_name ~seed)
             (Difftest_oracle.describe verdict))
      | Difftest_oracle.Divergence _ | Difftest_oracle.Crash _ ->
        s.crashes <- s.crashes + 1;
        log
          (Printf.sprintf "seed %d (%s): %s — shrinking" seed
             (Difftest_gen.shape_name ~seed)
             (Difftest_oracle.describe verdict));
        let interesting src = Difftest_oracle.same_class verdict (contained src) in
        let minimized, st =
          Difftest_shrink.shrink ~max_tests:shrink_budget ~interesting
            design.Difftest_gen.d_source
        in
        log
          (Printf.sprintf "seed %d: shrunk %d -> %d lines (%d oracle runs)" seed
             st.Difftest_shrink.lines_before st.Difftest_shrink.lines_after
             st.Difftest_shrink.tests_run);
        s.shrunk <- (seed, minimized, verdict) :: s.shrunk;
        Option.iter
          (fun dir ->
            let path =
              save_reproducer ~dir ~seed ~top:design.Difftest_gen.d_top
                ~max_ns:design.Difftest_gen.d_max_ns ~verdict minimized
            in
            s.reproducer_files <- path :: s.reproducer_files;
            log (Printf.sprintf "seed %d: reproducer written to %s" seed path))
          corpus_dir)
    seeds;
  s

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>designs:      %d@,both compiled: %d@,simulated:    %d@,rejected:     \
     %d@,divergences:  %d@,crashes:      %d@]"
    s.total s.compiled s.simulated s.rejected s.divergences s.crashes
