(** Seeded random VHDL design generation for the differential fuzzer.

    Every design is generated from a PRNG seed alone, so a seed list is a
    complete, replayable test campaign.  Designs are valid by construction
    (typed expression generation, acyclic signal topologies, literal-only
    divisors, mod-bounded arithmetic) so that the dual-evaluator oracle
    spends its budget on agreement checking rather than on parse errors. *)

type design = {
  d_seed : int;
  d_source : string; (* one source text, possibly several design units *)
  d_top : string option; (* entity to elaborate and simulate, if any *)
  d_max_ns : int; (* simulation horizon *)
}

val generate : seed:int -> size:int -> design
(** Generate one design.  [size] scales declaration, process, and
    expression counts (1 = tiny, 5 = hundreds of lines). *)

val shape_name : seed:int -> string
(** The design-shape family the seed maps to (for campaign logs). *)

(** {1 Random expression strings} *)

val int_expr : Random.State.t -> env:string list -> depth:int -> string
(** A type-correct VHDL integer expression over literals and the integer
    names in [env]; divisors are nonzero literals, exponents tiny. *)

val bool_expr : Random.State.t -> env:string list -> depth:int -> string
(** A BOOLEAN expression (comparisons over [int_expr] plus logic). *)

(** {1 Random runtime values} (shared with the Value_ops property tests) *)

val value : ?depth:int -> Random.State.t -> Value.t
(** A random scalar or composite {!Value.t}. *)

val int_array : ?min_len:int -> ?max_len:int -> Random.State.t -> Value.t
(** A [Varray] of [Vint] with a random ascending bound. *)

val bit_vector : ?min_len:int -> ?max_len:int -> Random.State.t -> Value.t
(** A [Varray] of bit [Venum]s. *)
