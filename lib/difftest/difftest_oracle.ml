(** The dual-evaluator differential oracle (see the .mli).

    Rendering everything to strings before comparison keeps the diffing
    dumb and the failure reports readable; a divergence's [detail] is the
    first differing line of the first differing section. *)

type side = {
  s_label : string;
  s_phase : string;
  s_rejected : string option;
  s_crash : string option;
  s_units : string list;
  s_vif : string list;
  s_diags : string list;
  s_outcome : string;
  s_trace : string list;
  s_messages : string list;
}

type verdict =
  | Agree of {
      compiled : bool;
      simulated : bool;
      units : int;
      trace_changes : int;
    }
  | Divergence of { stage : string; detail : string }
  | Crash of { side_ : string; stage : string; detail : string }

let empty_side label phase =
  {
    s_label = label;
    s_phase = phase;
    s_rejected = None;
    s_crash = None;
    s_units = [];
    s_vif = [];
    s_diags = [];
    s_outcome = "";
    s_trace = [];
    s_messages = [];
  }

let render_diags diags =
  List.map (fun d -> Format.asprintf "%a" Diag.pp d) diags

let render_outcome = function
  | Kernel.Quiescent -> "quiescent"
  | Kernel.Time_limit -> "time-limit"
  | Kernel.Stopped -> "stopped"
  | Kernel.Fuel_exhausted -> "fuel-exhausted"

let render_change (c : Trace.change) =
  Printf.sprintf "%s %s = %a" (Rt.format_time c.Trace.c_time) c.Trace.c_path
    (fun () -> Format.asprintf "%a" Value.pp)
    c.Trace.c_value

let render_message (t, sev, msg) =
  Printf.sprintf "%s [%d] %s" (Rt.format_time t) sev msg

let label_of = function
  | Vhdl_compiler.Demand -> "demand"
  | Vhdl_compiler.Staged -> "staged"

(* The VIF dump embeds [(sequence N)] — a process-global compilation-order
   stamp that necessarily differs between the two compiler instances.  The
   *relative* order (what the latest-architecture default rule consumes) is
   already compared through the unit-key lists, so the absolute stamp is
   masked before diffing. *)
let mask_sequence text =
  let b = Buffer.create (String.length text) in
  let n = String.length text in
  let key = "(sequence " in
  let klen = String.length key in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub text !i klen = key then begin
      Buffer.add_string b key;
      i := !i + klen;
      while !i < n && text.[!i] >= '0' && text.[!i] <= '9' do incr i done;
      Buffer.add_char b 'N'
    end
    else begin
      Buffer.add_char b text.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* Dynamic semantic errors (constraint violations, division by zero at
   simulation time) are legitimate VHDL behavior, deterministic, and must
   simply agree between the sides; evaluator escapes and internal errors
   are crashes the fuzzer exists to catch. *)
let classify_exn = function
  | Evaluator.Cycle { prod_name; attr_name } ->
    `Crash (Printf.sprintf "Evaluator.Cycle in %s.%s" prod_name attr_name)
  | Evaluator.Missing_rule { prod_name; attr_name; pos } ->
    `Crash
      (Printf.sprintf "Evaluator.Missing_rule %s.%s@%d" prod_name attr_name pos)
  | Analysis.Circular { prod_name; _ } ->
    `Crash (Printf.sprintf "Analysis.Circular in %s" prod_name)
  | Analysis.Not_orderable { symbol } ->
    `Crash (Printf.sprintf "Analysis.Not_orderable %s" symbol)
  | Pval.Internal msg -> `Crash (Printf.sprintf "Pval.Internal %s" msg)
  | Elaborate.Elaboration_error msg -> `Reject (Printf.sprintf "elaboration: %s" msg)
  | Rt.Simulation_error { time; msg } ->
    `Runtime (Printf.sprintf "simulation error at %s: %s" (Rt.format_time time) msg)
  | Value_ops.Runtime_error msg -> `Runtime (Printf.sprintf "runtime error: %s" msg)
  | Stack_overflow -> `Crash "Stack_overflow"
  | e -> `Crash (Printexc.to_string e)

(* An [Internal]-origin diagnostic is a compiler defect the firewall
   contained — still a finding for the fuzzer, exactly like the raw escape
   it used to be.  [Budget]-origin diagnostics are expected behavior under
   a budget campaign and never count as crashes. *)
let internal_crash diags =
  match List.filter Diag.is_internal diags with
  | [] -> None
  | ds -> Some ("contained: " ^ String.concat "\n" (render_diags ds))

let run_side ~strategy ?(inject_fault = false) ~max_ns ~top source =
  let label = label_of strategy in
  let fault = inject_fault && strategy = Vhdl_compiler.Staged in
  Difftest_fault.with_active fault (fun () ->
      let c = Vhdl_compiler.create ~strategy () in
      let side = empty_side label "compile" in
      match Vhdl_compiler.compile c source with
      | exception Vhdl_compiler.Compile_error diags -> (
        match internal_crash diags with
        | Some d -> { side with s_crash = Some d }
        | None ->
          { side with s_rejected = Some (String.concat "\n" (render_diags diags)) })
      | exception e -> (
        match classify_exn e with
        | `Crash d -> { side with s_crash = Some d }
        | `Reject d | `Runtime d -> { side with s_rejected = Some d })
      | _ when internal_crash (Vhdl_compiler.diagnostics c) <> None ->
        { side with s_crash = internal_crash (Vhdl_compiler.diagnostics c) }
      | units -> (
        let keys = List.map (fun (u : Unit_info.compiled_unit) -> u.Unit_info.u_key) units in
        let vif =
          List.map
            (fun key ->
              match Library.dump (Vhdl_compiler.work_library c) ~library:"WORK" ~key with
              | Some text -> key ^ "\n" ^ mask_sequence text
              | None -> key ^ "\n<no VIF>")
            keys
        in
        let side =
          {
            side with
            s_units = keys;
            s_vif = vif;
            s_diags = render_diags (Vhdl_compiler.diagnostics c);
          }
        in
        match top with
        | None -> { side with s_phase = "done" }
        | Some top -> (
          let side = { side with s_phase = "elaborate" } in
          match Vhdl_compiler.elaborate c ~top () with
          | exception Vhdl_compiler.Compile_error diags -> (
            match internal_crash diags with
            | Some d -> { side with s_crash = Some d }
            | None ->
              { side with s_rejected = Some (String.concat "\n" (render_diags diags)) })
          | exception e -> (
            match classify_exn e with
            | `Crash d -> { side with s_crash = Some d }
            | `Reject d | `Runtime d -> { side with s_rejected = Some d })
          | sim -> (
            let side = { side with s_phase = "simulate" } in
            let finish side =
              {
                side with
                s_trace = List.map render_change (Trace.changes (Vhdl_compiler.trace sim));
                s_messages = List.map render_message (Vhdl_compiler.messages sim);
              }
            in
            match Vhdl_compiler.run c sim ~max_ns with
            | exception e -> (
              match classify_exn e with
              | `Crash d -> finish { side with s_crash = Some d }
              | `Reject d | `Runtime d ->
                finish { side with s_outcome = "error: " ^ d; s_phase = "done" })
            | outcome ->
              finish
                { side with s_outcome = render_outcome outcome; s_phase = "done" }))))

(* ------------------------------------------------------------------ *)
(* Comparison *)

let first_diff xs ys =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: _, [] -> Some (Printf.sprintf "#%d only on demand side: %s" i x)
    | [], y :: _ -> Some (Printf.sprintf "#%d only on staged side: %s" i y)
    | x :: xs, y :: ys ->
      if String.equal x y then go (i + 1) xs ys
      else Some (Printf.sprintf "#%d demand: %s | staged: %s" i x y)
  in
  go 0 xs ys

let compare_sides (a : side) (b : side) =
  match (a.s_crash, b.s_crash) with
  | Some d, _ -> Crash { side_ = a.s_label; stage = a.s_phase; detail = d }
  | None, Some d -> Crash { side_ = b.s_label; stage = b.s_phase; detail = d }
  | None, None -> (
    match (a.s_rejected, b.s_rejected) with
    | Some da, Some db ->
      if String.equal da db then
        Agree { compiled = false; simulated = false; units = 0; trace_changes = 0 }
      else
        Divergence
          {
            stage = "diagnostics";
            detail = Printf.sprintf "demand: %s | staged: %s" da db;
          }
    | Some da, None ->
      Divergence
        { stage = a.s_phase; detail = "only demand side rejected: " ^ da }
    | None, Some db ->
      Divergence
        { stage = b.s_phase; detail = "only staged side rejected: " ^ db }
    | None, None -> (
      let sections =
        [
          ("units", a.s_units, b.s_units);
          ("vif", a.s_vif, b.s_vif);
          ("diagnostics", a.s_diags, b.s_diags);
          ("outcome", [ a.s_outcome ], [ b.s_outcome ]);
          ("trace", a.s_trace, b.s_trace);
          ("messages", a.s_messages, b.s_messages);
        ]
      in
      let rec scan = function
        | [] ->
          Agree
            {
              compiled = true;
              simulated = a.s_phase = "done" && a.s_outcome <> "";
              units = List.length a.s_units;
              trace_changes = List.length a.s_trace;
            }
        | (stage, xs, ys) :: rest -> (
          match first_diff xs ys with
          | None -> scan rest
          | Some detail -> Divergence { stage; detail })
      in
      scan sections))

let check_source ?(inject_fault = false) ?(max_ns = 50) ~top source =
  let demand =
    run_side ~strategy:Vhdl_compiler.Demand ~inject_fault ~max_ns ~top source
  in
  let staged =
    run_side ~strategy:Vhdl_compiler.Staged ~inject_fault ~max_ns ~top source
  in
  compare_sides demand staged

let check ?(inject_fault = false) (d : Difftest_gen.design) =
  check_source ~inject_fault ~max_ns:d.Difftest_gen.d_max_ns ~top:d.Difftest_gen.d_top
    d.Difftest_gen.d_source

(* ------------------------------------------------------------------ *)
(* Containment checking (budget campaigns) *)

(* Under resource budgets the demand and staged strategies legitimately
   disagree (staged applies more rules before the fuel dies), so the
   dual-evaluator comparison is invalid; instead a single side is held to
   the containment contract: every phase either succeeds, rejects with
   diagnostics, or reports a budget exhaustion — a raw exception escape or
   an internal-error diagnostic is the finding. *)
let check_contained ?(budgets = Supervisor.no_budgets) ?(max_ns = 50) ~top source =
  let c = Vhdl_compiler.create ~budgets () in
  let agree ~compiled ~simulated ~units =
    Agree { compiled; simulated; units; trace_changes = 0 }
  in
  let crash ~stage d = Crash { side_ = "contained"; stage; detail = d } in
  match Vhdl_compiler.compile c source with
  | exception Vhdl_compiler.Compile_error diags -> (
    match internal_crash diags with
    | Some d -> crash ~stage:"compile" d
    | None -> agree ~compiled:false ~simulated:false ~units:0)
  | exception e -> (
    match classify_exn e with
    | `Crash d -> crash ~stage:"compile" d
    | `Reject _ | `Runtime _ -> agree ~compiled:false ~simulated:false ~units:0)
  | units -> (
    let n = List.length units in
    match internal_crash (Vhdl_compiler.diagnostics c) with
    | Some d -> crash ~stage:"compile" d
    | None -> (
      match top with
      | None -> agree ~compiled:true ~simulated:false ~units:n
      | Some top -> (
        match Vhdl_compiler.elaborate c ~top () with
        | exception Vhdl_compiler.Compile_error diags -> (
          match internal_crash diags with
          | Some d -> crash ~stage:"elaborate" d
          | None -> agree ~compiled:true ~simulated:false ~units:n)
        | exception e -> (
          match classify_exn e with
          | `Crash d -> crash ~stage:"elaborate" d
          | `Reject _ | `Runtime _ -> agree ~compiled:true ~simulated:false ~units:n)
        | sim -> (
          match Vhdl_compiler.run c sim ~max_ns with
          | exception e -> (
            match classify_exn e with
            | `Crash d -> crash ~stage:"simulate" d
            | `Reject _ | `Runtime _ -> agree ~compiled:true ~simulated:true ~units:n)
          | _outcome -> agree ~compiled:true ~simulated:true ~units:n))))

let same_class v1 v2 =
  match (v1, v2) with
  | Agree _, Agree _ -> true
  | Divergence { stage = s1; _ }, Divergence { stage = s2; _ } -> String.equal s1 s2
  | Crash _, Crash _ -> true
  | _ -> false

let describe = function
  | Agree { compiled; simulated; units; trace_changes } ->
    if not compiled then "agree (rejected by both)"
    else
      Printf.sprintf "agree (%d units%s%s)" units
        (if simulated then ", simulated" else "")
        (if trace_changes > 0 then Printf.sprintf ", %d trace changes" trace_changes
         else "")
  | Divergence { stage; detail } -> Printf.sprintf "DIVERGENCE at %s: %s" stage detail
  | Crash { side_; stage; detail } ->
    Printf.sprintf "CRASH on %s side at %s: %s" side_ stage detail
