(** Delta-debugging minimization of failing designs.

    Classic ddmin over source lines: repeatedly drop chunks (halving the
    granularity as chunks stop being removable), then sweep single lines to
    a fixpoint.  The caller's [interesting] predicate re-runs the oracle on
    a candidate and answers whether it still exhibits the original failure
    class — candidates that no longer parse are simply uninteresting, which
    is what makes line-level shrinking sound. *)

type stats = {
  tests_run : int; (* oracle invocations spent *)
  lines_before : int;
  lines_after : int;
}

val shrink :
  ?max_tests:int ->
  interesting:(string -> bool) ->
  string ->
  string * stats
(** Minimize a source text.  [interesting source] must be true for the
    input; the result is a (locally) 1-minimal interesting source.
    [max_tests] bounds oracle invocations (default 600); on exhaustion the
    smallest interesting candidate found so far is returned. *)
