(** Fault injection for validating the differential oracle.

    [arm] flips one semantic rule of the expression AG — the integer-literal
    candidate rule ([primary_LINT]) — so that while [set_active true] every
    integer literal evaluates to its value plus one.  The oracle activates
    the flip around the staged-strategy compile only, so an armed fault
    makes the two evaluation strategies genuinely disagree the way a real
    semantic-rule regression would.  With the flag inactive the wrapped
    rule is behavior-identical to the original. *)

val arm : unit -> unit
(** Install the flipped rule (idempotent; mutates the shared grammar). *)

val armed : unit -> bool

val set_active : bool -> unit
(** Turn the flip on or off at rule-application time. *)

val active : unit -> bool

val with_active : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the flip forced on/off, restoring the previous state
    even on exceptions. *)

val with_poison : string -> (unit -> 'a) -> 'a
(** Run a thunk with a poison installed on one unit key (e.g.
    ["entity:BAD"]): as that unit finishes analysis, a [Pval.Internal] is
    raised from inside its UNITS semantic rule via {!Session.insert_hook}.
    Exercises the per-unit exception firewall — the poisoned unit must
    surface as an internal-error diagnostic while sibling units compile. *)

val with_wedge : string -> (unit -> 'a) -> 'a
(** Run a thunk with a wedge installed on one unit key: as that unit
    finishes analysis, the {!Session.insert_hook} spins forever (allocating,
    so asynchronous exceptions are still delivered).  No in-band budget can
    fire — only an out-of-band watchdog (the serve worker's SIGALRM timer)
    breaks the loop.  Exercises wedged-request detection and worker
    recycling. *)

(** {1 Serve-layer fault sites}

    The catalog the chaos campaign ([vhdlfuzz --serve-chaos]) and the serve
    unit battery draw from.  The serve layer maps each site to concrete wire
    or request behavior. *)

type serve_fault =
  | Torn_frame (* header promises more payload than is ever sent *)
  | Bad_magic (* frame does not start with the protocol magic *)
  | Oversized_frame (* declared length beyond the daemon's max frame *)
  | Poison_unit (* Pval.Internal raised mid-analysis via insert_hook *)
  | Wedged_request (* request that spins past the watchdog deadline *)
  | Deadline_bust (* work too large for the request's deadline budget *)
  | Client_abort (* client disconnects before reading the response *)

val serve_faults : serve_fault list
val serve_fault_name : serve_fault -> string
