(** Fault injection: flip the integer-literal semantic rule of the
    expression AG under a runtime flag (see the .mli).

    The grammars are built lazily and shared process-wide (as Linguist
    generates its evaluator once), so the flip cannot rebuild a second
    grammar; instead the installed wrapper consults [active_flag] at
    rule-application time and perturbs only [Pval.Cands] results carrying
    integer-literal candidates. *)

let armed_flag = ref false
let active_flag = ref false

let armed () = !armed_flag
let active () = !active_flag
let set_active b = active_flag := b


(* Bump an integer-literal candidate: both the KIR code and the static
   value, the way a miscompiled semantic function would. *)
let perturb_cand = function
  | Pval.Cv { ty; code = Kir.Elit (Value.Vint n); static = Some (Value.Vint _) } ->
    Pval.Cv
      {
        ty;
        code = Kir.Elit (Value.Vint (n + 1));
        static = Some (Value.Vint (n + 1));
      }
  | c -> c

let rec perturb (v : Pval.t) =
  match v with
  | Pval.Cands cs -> Pval.Cands (List.map perturb_cand cs)
  | Pval.Pair (a, b) -> Pval.Pair (perturb a, perturb b)
  | v -> v

let arm () =
  if not !armed_flag then begin
    armed_flag := true;
    let g = Expr_eval.grammar () in
    let n = Grammar.n_productions g in
    for i = 0 to n - 1 do
      let p = Grammar.production g i in
      if p.Grammar.prod_name = "primary_LINT" then
        Array.iteri
          (fun j (r : Pval.t Grammar.rule) ->
            let orig = r.Grammar.compute in
            p.Grammar.rules.(j) <-
              {
                r with
                Grammar.compute =
                  (fun args ->
                    let v = orig args in
                    if !active_flag then perturb v else v);
              })
          p.Grammar.rules
    done
  end

(* Activating implies arming: callers (the oracle's [inject_fault]) need
   the wrapper installed, not just the flag raised. *)
let with_active b f =
  if b then arm ();
  let prev = !active_flag in
  active_flag := b;
  Fun.protect ~finally:(fun () -> active_flag := prev) f

(* ------------------------------------------------------------------ *)
(* Poison injection: a [Pval.Internal] raised from inside one unit's UNITS
   rule, through the [Session.insert_hook] called as the unit finishes
   analysis.  Exercises the per-unit exception firewall: the poisoned unit
   must yield an internal-error diagnostic while its siblings compile. *)

let poison_key = ref None

let poison_hook (u : Unit_info.compiled_unit) =
  match !poison_key with
  | Some key when u.Unit_info.u_key = key ->
    Pval.internal "injected poison in %s" key
  | _ -> ()

let with_poison key f =
  let prev_key = !poison_key in
  let prev_hook = !Session.insert_hook in
  poison_key := Some key;
  Session.insert_hook := poison_hook;
  Fun.protect
    ~finally:(fun () ->
      poison_key := prev_key;
      Session.insert_hook := prev_hook)
    f

(* ------------------------------------------------------------------ *)
(* Wedge injection: a unit whose analysis never finishes.  The hook spins
   (allocating, so asynchronous exceptions from signal handlers are
   delivered at the allocation safepoints) when the selected unit reaches
   [Session.insert_hook] — the evaluator's tick hook is never reached
   again, so fuel and deadline budgets cannot fire.  Only an out-of-band
   watchdog (the serve worker's SIGALRM timer) can break the loop. *)

let wedge_key = ref None

let wedge_hook (u : Unit_info.compiled_unit) =
  match !wedge_key with
  | Some key when u.Unit_info.u_key = key ->
    while true do
      ignore (Sys.opaque_identity (ref 0))
    done
  | _ -> ()

let with_wedge key f =
  let prev_key = !wedge_key in
  let prev_hook = !Session.insert_hook in
  wedge_key := Some key;
  Session.insert_hook := wedge_hook;
  Fun.protect
    ~finally:(fun () ->
      wedge_key := prev_key;
      Session.insert_hook := prev_hook)
    f

(* ------------------------------------------------------------------ *)
(* Serve-layer fault sites: the catalog the chaos campaign and the serve
   unit battery draw from.  The serve layer maps each site to concrete
   wire or request behavior (lib/serve/serve_chaos.ml); keeping the
   catalog here keeps every injectable fault in one module. *)

type serve_fault =
  | Torn_frame (* header promises more payload than is ever sent *)
  | Bad_magic (* frame does not start with the protocol magic *)
  | Oversized_frame (* declared length beyond the daemon's max frame *)
  | Poison_unit (* Pval.Internal raised mid-analysis via insert_hook *)
  | Wedged_request (* request that spins past the watchdog deadline *)
  | Deadline_bust (* work too large for the request's deadline budget *)
  | Client_abort (* client disconnects before reading the response *)

let serve_faults =
  [
    Torn_frame;
    Bad_magic;
    Oversized_frame;
    Poison_unit;
    Wedged_request;
    Deadline_bust;
    Client_abort;
  ]

let serve_fault_name = function
  | Torn_frame -> "torn-frame"
  | Bad_magic -> "bad-magic"
  | Oversized_frame -> "oversized-frame"
  | Poison_unit -> "poison-unit"
  | Wedged_request -> "wedged-request"
  | Deadline_bust -> "deadline-bust"
  | Client_abort -> "client-abort"
