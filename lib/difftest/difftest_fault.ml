(** Fault injection: flip the integer-literal semantic rule of the
    expression AG under a runtime flag (see the .mli).

    The grammars are built lazily and shared process-wide (as Linguist
    generates its evaluator once), so the flip cannot rebuild a second
    grammar; instead the installed wrapper consults [active_flag] at
    rule-application time and perturbs only [Pval.Cands] results carrying
    integer-literal candidates. *)

let armed_flag = ref false
let active_flag = ref false

let armed () = !armed_flag
let active () = !active_flag
let set_active b = active_flag := b


(* Bump an integer-literal candidate: both the KIR code and the static
   value, the way a miscompiled semantic function would. *)
let perturb_cand = function
  | Pval.Cv { ty; code = Kir.Elit (Value.Vint n); static = Some (Value.Vint _) } ->
    Pval.Cv
      {
        ty;
        code = Kir.Elit (Value.Vint (n + 1));
        static = Some (Value.Vint (n + 1));
      }
  | c -> c

let rec perturb (v : Pval.t) =
  match v with
  | Pval.Cands cs -> Pval.Cands (List.map perturb_cand cs)
  | Pval.Pair (a, b) -> Pval.Pair (perturb a, perturb b)
  | v -> v

let arm () =
  if not !armed_flag then begin
    armed_flag := true;
    let g = Expr_eval.grammar () in
    let n = Grammar.n_productions g in
    for i = 0 to n - 1 do
      let p = Grammar.production g i in
      if p.Grammar.prod_name = "primary_LINT" then
        Array.iteri
          (fun j (r : Pval.t Grammar.rule) ->
            let orig = r.Grammar.compute in
            p.Grammar.rules.(j) <-
              {
                r with
                Grammar.compute =
                  (fun args ->
                    let v = orig args in
                    if !active_flag then perturb v else v);
              })
          p.Grammar.rules
    done
  end

(* Activating implies arming: callers (the oracle's [inject_fault]) need
   the wrapper installed, not just the flag raised. *)
let with_active b f =
  if b then arm ();
  let prev = !active_flag in
  active_flag := b;
  Fun.protect ~finally:(fun () -> active_flag := prev) f

(* ------------------------------------------------------------------ *)
(* Poison injection: a [Pval.Internal] raised from inside one unit's UNITS
   rule, through the [Session.insert_hook] called as the unit finishes
   analysis.  Exercises the per-unit exception firewall: the poisoned unit
   must yield an internal-error diagnostic while its siblings compile. *)

let poison_key = ref None

let poison_hook (u : Unit_info.compiled_unit) =
  match !poison_key with
  | Some key when u.Unit_info.u_key = key ->
    Pval.internal "injected poison in %s" key
  | _ -> ()

let with_poison key f =
  let prev_key = !poison_key in
  let prev_hook = !Session.insert_hook in
  poison_key := Some key;
  Session.insert_hook := poison_hook;
  Fun.protect
    ~finally:(fun () ->
      poison_key := prev_key;
      Session.insert_hook := prev_hook)
    f
