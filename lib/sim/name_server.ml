(** The Name Server: "provides the means of identifying by name each object
    in the simulated system" (paper §2.1, module 4 of the virtual machine).

    Hierarchical instance paths use colon separators: [:top:u1:q]. *)

type entry =
  | Signal of Rt.signal
  | Process of Rt.proc
  | Instance of { instance_path : string; entity : string; architecture : string }

type t = {
  table : (string, entry) Hashtbl.t;
  mutable paths : string list; (* registration order, newest first *)
}

let create () = { table = Hashtbl.create 64; paths = [] }

let register t path entry =
  if not (Hashtbl.mem t.table path) then t.paths <- path :: t.paths;
  Hashtbl.replace t.table path entry

let find t path = Hashtbl.find_opt t.table path

let find_signal t path =
  match find t path with
  | Some (Signal s) -> Some s
  | _ -> None

let signals t =
  List.rev t.paths
  |> List.filter_map (fun p ->
         match Hashtbl.find_opt t.table p with
         | Some (Signal s) -> Some (p, s)
         | _ -> None)

let processes t =
  List.rev t.paths
  |> List.filter_map (fun p ->
         match Hashtbl.find_opt t.table p with
         | Some (Process pr) -> Some (p, pr)
         | _ -> None)

let instances t =
  List.rev t.paths
  |> List.filter_map (fun p ->
         match Hashtbl.find_opt t.table p with
         | Some (Instance { entity; architecture; _ }) -> Some (p, entity, architecture)
         | _ -> None)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun path ->
      match Hashtbl.find_opt t.table path with
      | Some (Signal s) ->
        Format.fprintf fmt "signal   %-40s : %s@," path (Types.short_name s.Rt.sig_ty)
      | Some (Process _) -> Format.fprintf fmt "process  %s@," path
      | Some (Instance { entity; architecture; _ }) ->
        Format.fprintf fmt "instance %-40s : %s(%s)@," path entity architecture
      | None -> ())
    (List.rev t.paths);
  Format.fprintf fmt "@]"
