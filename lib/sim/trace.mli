(** Waveform tracing: change-dump observers attached to signals, with an
    in-memory change log and a VCD rendering (the VHDL-I/O role of the
    paper's virtual machine alongside assert/report output). *)

type change = {
  c_time : Rt.time;
  c_path : string;
  c_value : Value.t;
}

type t

val create : unit -> t

val watch : t -> string -> Rt.signal -> unit
(** Observe a signal: records the initial value and every event. *)

val changes : t -> change list
(** All recorded changes, oldest first. *)

val value_at : t -> path:string -> time:Rt.time -> Value.t option
(** Value of [path] at [time] according to the log. *)

val history : t -> path:string -> (Rt.time * Value.t) list
(** One signal's (time, value) pairs in time order. *)

val to_vcd : t -> timescale_fs:int -> string
(** Render the change log as an IEEE-1364 VCD document (loadable by
    GTKWave).  Scopes nest following the [:]-separated hierarchical signal
    paths; two-valued enumerations (BIT, BOOLEAN) dump as scalars, larger
    enumerations and integers as binary vectors, reals as [r] changes.
    Initial values appear in a [$dumpvars] block at time 0; later times
    emit only actual changes. *)
