(** The simulation kernel: IEEE 1076 simulation-cycle semantics.

    Event-driven scheduler with delta cycles; processes are OCaml-5 effect
    fibers suspended on the {!Interp.Wait} effect. *)

type severity_counts = {
  mutable notes : int;
  mutable warnings : int;
  mutable errors : int;
  mutable failures : int;
}

type stats = {
  mutable delta_cycles : int;
  mutable time_steps : int;
  mutable events : int;
  mutable transactions : int;
  mutable process_runs : int;
  severities : severity_counts;
}

type t

exception Failure_severity of { time : Rt.time; msg : string }

val severity_name : int -> string
(** 0 = note, 1 = warning, 2 = error, 3+ = failure. *)

val create : ?delta_limit:int -> ?step_fuel:int -> unit -> t
(** A fresh kernel.  [delta_limit] bounds delta cycles per simulated instant
    (combinational-loop detection); [step_fuel] bounds process resumptions
    per simulated instant (runaway-process containment). *)

val set_step_fuel : t -> int option -> unit
(** Bound (or unbound, with [None]) the number of process resumptions the
    kernel will perform within one simulated instant, across its delta
    cycles.  Exhaustion ends {!run} with the {!Fuel_exhausted} outcome
    rather than hanging or raising. *)

val now : t -> Rt.time
val stats : t -> stats

val set_message_handler : t -> (Rt.time -> severity:int -> string -> unit) -> unit
(** Where assert/report messages go (default: stderr). *)

val register_signal : t -> Rt.signal -> unit

val emit : t -> severity:int -> line:int -> string -> unit
(** Record an assertion/report message; severity >= 3 (FAILURE) stops the
    simulation by raising {!Failure_severity}. *)

val add_process :
  t ->
  name:string ->
  sensitivity:Rt.signal list ->
  has_wait:bool ->
  body:(unit -> unit) ->
  Rt.proc
(** Register a process.  [body] runs the statement list once; the kernel
    restarts it forever, appending the implicit wait when [sensitivity] is
    non-empty (LRM 9.2).  A sensitivity-free body without waits runs once
    and terminates. *)

type outcome =
  | Quiescent (* no more events scheduled *)
  | Time_limit (* reached max_time *)
  | Stopped (* a FAILURE assertion or explicit stop *)
  | Fuel_exhausted (* the per-instant process-step fuel ran out *)

val run : t -> max_time:Rt.time -> outcome
(** Initialization phase (every process runs to its first wait), then the
    cycle loop up to [max_time] inclusive. *)

val stop : t -> unit
(** Request a stop from a message handler or observer. *)
