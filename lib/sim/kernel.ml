(** The simulation kernel: IEEE 1076 simulation-cycle semantics.

    Event-driven scheduler with delta cycles: advance time to the next
    transaction or timeout, update signals (resolve drivers, detect events),
    resume processes whose wait conditions are met, repeat until quiescent
    at the current time, then advance again.  Processes are OCaml-5 effect
    fibers suspended on the {!Interp.Wait} effect. *)

module Tm = Vhdl_telemetry.Telemetry

let m_delta_cycles = Tm.counter "sim.delta_cycles"
let m_time_steps = Tm.counter "sim.time_steps"
let m_events = Tm.counter "sim.events"
let m_transactions = Tm.counter "sim.transactions"
let m_process_runs = Tm.counter "sim.process_runs"
let m_messages = Tm.counter "sim.messages"

type severity_counts = {
  mutable notes : int;
  mutable warnings : int;
  mutable errors : int;
  mutable failures : int;
}

type stats = {
  mutable delta_cycles : int;
  mutable time_steps : int;
  mutable events : int;
  mutable transactions : int;
  mutable process_runs : int;
  severities : severity_counts;
}

type t = {
  mutable now : Rt.time;
  mutable signals : Rt.signal list;
  mutable processes : Rt.proc list;
  mutable next_proc_id : int;
  stats : stats;
  mutable on_message : Rt.time -> severity:int -> string -> unit;
  mutable delta_limit : int;
  mutable step_fuel : int option; (* process resumptions per instant *)
  mutable steps_this_instant : int;
  mutable stopped : bool;
}

exception Failure_severity of { time : Rt.time; msg : string }

let severity_name = function
  | 0 -> "note"
  | 1 -> "warning"
  | 2 -> "error"
  | _ -> "failure"

let create ?(delta_limit = 5000) ?step_fuel () =
  {
    now = 0;
    signals = [];
    processes = [];
    next_proc_id = 0;
    stats =
      {
        delta_cycles = 0;
        time_steps = 0;
        events = 0;
        transactions = 0;
        process_runs = 0;
        severities = { notes = 0; warnings = 0; errors = 0; failures = 0 };
      };
    on_message =
      (fun time ~severity msg ->
        Printf.eprintf "%s: %s: %s\n%!" (Rt.format_time time) (severity_name severity) msg);
    delta_limit;
    step_fuel;
    steps_this_instant = 0;
    stopped = false;
  }

(** Bound the number of process resumptions the kernel will perform within
    one simulated instant (across its delta cycles) — the complement of
    [delta_limit] for designs whose processes chatter without advancing
    time.  Exhaustion ends the run with the {!Fuel_exhausted} outcome. *)
let set_step_fuel k fuel = k.step_fuel <- fuel

let now k = k.now
let stats k = k.stats

let set_message_handler k f = k.on_message <- f

let register_signal k s = k.signals <- s :: k.signals

let fresh_proc_id k =
  let id = k.next_proc_id in
  k.next_proc_id <- id + 1;
  id

(** Record an assertion/report message; FAILURE stops the simulation. *)
let emit k ~severity ~line:_ msg =
  (match severity with
  | 0 -> k.stats.severities.notes <- k.stats.severities.notes + 1
  | 1 -> k.stats.severities.warnings <- k.stats.severities.warnings + 1
  | 2 -> k.stats.severities.errors <- k.stats.severities.errors + 1
  | _ -> k.stats.severities.failures <- k.stats.severities.failures + 1);
  Tm.incr m_messages;
  k.on_message k.now ~severity msg;
  if severity >= 3 then raise (Failure_severity { time = k.now; msg })

(** Register a process.  [body] runs the statement list once; the kernel
    restarts it forever, appending the implicit wait when [sensitivity] is
    given (LRM 9.2).  [has_wait] tells us whether a sensitivity-free body
    can suspend at all; if not, it runs once and terminates. *)
let add_process k ~name ~(sensitivity : Rt.signal list) ~has_wait ~(body : unit -> unit) =
  let proc =
    {
      Rt.proc_id = fresh_proc_id k;
      proc_name = name;
      proc_state = Rt.Ready;
      resume = (fun () -> ());
      wake_signals = [];
      wake_until = None;
      wake_at = None;
    }
  in
  let open Effect.Deep in
  let fiber () =
    if sensitivity = [] && not has_wait then body ()
    else begin
      while true do
        body ();
        if sensitivity <> [] then
          Effect.perform
            (Interp.Wait { Interp.wr_on = sensitivity; wr_until = None; wr_for = None })
      done
    end
  in
  let handler =
    {
      retc = (fun () -> proc.Rt.proc_state <- Rt.Terminated);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Interp.Wait req ->
            Some
              (fun (cont : (a, _) continuation) ->
                proc.Rt.wake_signals <- req.Interp.wr_on;
                proc.Rt.wake_until <- req.Interp.wr_until;
                proc.Rt.wake_at <- req.Interp.wr_for;
                proc.Rt.proc_state <- Rt.Waiting;
                proc.Rt.resume <- (fun () -> continue cont ()))
          | _ -> None);
    }
  in
  proc.Rt.resume <- (fun () -> match_with fiber () handler);
  k.processes <- k.processes @ [ proc ];
  proc

let run_ready k =
  let any = ref false in
  List.iter
    (fun p ->
      if p.Rt.proc_state = Rt.Ready then begin
        any := true;
        k.steps_this_instant <- k.steps_this_instant + 1;
        p.Rt.proc_state <- Rt.Waiting;
        (* default: if the body doesn't set wake conditions it waits forever *)
        p.Rt.wake_signals <- [];
        p.Rt.wake_until <- None;
        p.Rt.wake_at <- None;
        k.stats.process_runs <- k.stats.process_runs + 1;
        Tm.incr m_process_runs;
        p.Rt.resume ()
      end)
    k.processes;
  !any

(* earliest point of interest: driver transactions and process timeouts *)
let next_event_time k =
  let mins = ref None in
  let consider t =
    match !mins with
    | None -> mins := Some t
    | Some m -> if t < m then mins := Some t
  in
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          match Rt.next_transaction_time d with
          | Some t -> consider t
          | None -> ())
        s.Rt.drivers)
    k.signals;
  List.iter
    (fun p ->
      if p.Rt.proc_state = Rt.Waiting then
        match p.Rt.wake_at with
        | Some t -> consider t
        | None -> ())
    k.processes;
  !mins

(* apply all transactions due at [now]; returns signals that became active *)
let apply_transactions k =
  let touched = ref [] in
  List.iter
    (fun s ->
      let any = ref false in
      List.iter
        (fun d ->
          let rec pop () =
            match d.Rt.drv_wave with
            | (t, v) :: rest when t <= k.now ->
              (match v with
              | Some v ->
                d.Rt.drv_value <- v;
                d.Rt.drv_connected <- true
              | None -> d.Rt.drv_connected <- false);
              d.Rt.drv_wave <- rest;
              any := true;
              k.stats.transactions <- k.stats.transactions + 1;
              Tm.incr m_transactions;
              pop ()
            | _ -> ()
          in
          pop ())
        s.Rt.drivers;
      if !any then touched := s :: !touched)
    k.signals;
  List.iter
    (fun s ->
      if Rt.update_signal ~now:k.now s then begin
        k.stats.events <- k.stats.events + 1;
        Tm.incr m_events
      end)
    !touched;
  !touched <> []

let wake_processes k =
  let any = ref false in
  List.iter
    (fun p ->
      if p.Rt.proc_state = Rt.Waiting then begin
        let timeout =
          match p.Rt.wake_at with
          | Some t -> t <= k.now
          | None -> false
        in
        let sig_event = List.exists (fun s -> s.Rt.event) p.Rt.wake_signals in
        let cond_ok =
          match p.Rt.wake_until with
          | None -> true
          | Some f -> ( try f () with _ -> false)
        in
        if timeout || (sig_event && cond_ok) then begin
          p.Rt.proc_state <- Rt.Ready;
          any := true
        end
      end)
    k.processes;
  !any

let clear_flags k =
  List.iter
    (fun s ->
      s.Rt.active <- false;
      s.Rt.event <- false)
    k.signals

type outcome =
  | Quiescent (* no more events scheduled *)
  | Time_limit (* reached max_time *)
  | Stopped (* a FAILURE assertion or explicit stop *)
  | Fuel_exhausted (* the per-instant process-step fuel ran out *)

(** Run the simulation until [max_time] (inclusive).  The initialization
    phase runs every process once, then the cycle loop proceeds. *)
let run k ~max_time =
  let outcome = ref Quiescent in
  (try
     (* initialization: every process executes until its first wait *)
     ignore (run_ready k);
     (* handle transactions scheduled at time 0 by initialization *)
     let continue_sim = ref true in
     let deltas_here = ref 0 in
     while !continue_sim && not k.stopped do
       match next_event_time k with
       | None -> continue_sim := false
       | Some t when t > max_time ->
         k.now <- max_time;
         outcome := Time_limit;
         continue_sim := false
       | Some t ->
         if t = k.now then begin
           incr deltas_here;
           k.stats.delta_cycles <- k.stats.delta_cycles + 1;
           Tm.incr m_delta_cycles;
           if !deltas_here > k.delta_limit then
             Rt.sim_error ~time:k.now "delta-cycle limit exceeded (combinational loop?)"
         end
         else begin
           deltas_here := 0;
           k.steps_this_instant <- 0;
           k.stats.time_steps <- k.stats.time_steps + 1;
           Tm.incr m_time_steps;
           k.now <- t
         end;
         clear_flags k;
         let _had_events = apply_transactions k in
         let woke = wake_processes k in
         if woke then ignore (run_ready k);
         match k.step_fuel with
         | Some fuel when k.steps_this_instant > fuel ->
           outcome := Fuel_exhausted;
           continue_sim := false
         | _ -> ()
     done
   with Failure_severity _ -> outcome := Stopped);
  !outcome

(** Force a stop from a message handler or observer. *)
let stop k = k.stopped <- true
