(** The KIR interpreter: executes process bodies and subprograms.

    This is the "programmable in terms of C primitives" half of the paper's
    virtual machine — where their generated C executes natively, our KIR is
    interpreted.  Processes suspend on wait statements by performing the
    {!Wait} effect, captured by the kernel scheduler. *)

type frame = {
  vars : Value.t array;
  loop_vars : Value.t array;  (** by nesting depth; negative frame indices *)
}

type env = {
  e_signals : Rt.signal array;  (** instance signal table (ports first) *)
  e_guard : Rt.signal option;
  e_globals : (string * string, Rt.signal) Hashtbl.t;
  e_functions : (string, Kir.subprogram) Hashtbl.t;
  e_proc_id : int;
  e_proc_name : string;
  e_now : unit -> Rt.time;
  e_sig_params : Rt.signal option array;
      (** by parameter index: the signals bound to the running procedure's
          signal-class parameters ([None] for value parameters) *)
  e_display : frame option array;  (** by absolute level (shallow binding) *)
  e_level : int;  (** absolute level of the running frame *)
  e_emit : severity:int -> line:int -> string -> unit;  (** assert/report *)
}

type wait_req = {
  wr_on : Rt.signal list;
  wr_until : (unit -> bool) option;
  wr_for : Rt.time option;  (** absolute wake time *)
}

type _ Effect.t += Wait : wait_req -> unit Effect.t
(** Performed by a wait statement; the kernel's effect handler captures the
    continuation and resumes it when a wake condition holds. *)

exception Return_exc of Value.t option

val eval : env -> Kir.expr -> Value.t
(** Evaluate an expression.  Raises {!Rt.Simulation_error} on dynamic
    errors (division by zero, constraint violations, unbound references). *)

val exec : env -> Kir.stmt -> unit
(** Execute one statement; may perform {!Wait}. *)

val call_function : env -> string -> Value.t list -> Value.t
(** Call a function by mangled name with evaluated arguments (used by
    resolution closures and elaboration-time evaluation). *)
