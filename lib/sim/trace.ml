(** Waveform tracing: change-dump observers attached to signals.

    Provides both an in-memory change log (used by tests and examples) and a
    VCD-style textual dump — the VHDL-I/O role of the paper's virtual
    machine, alongside assert/report output. *)

type change = {
  c_time : Rt.time;
  c_path : string;
  c_value : Value.t;
}

type t = {
  mutable changes : change list; (* newest first *)
  mutable watched : (string * Rt.signal) list;
}

let create () = { changes = []; watched = [] }

(** Observe [s]; records every event (and the initial value at time 0). *)
let watch t path (s : Rt.signal) =
  t.watched <- t.watched @ [ (path, s) ];
  t.changes <- { c_time = 0; c_path = path; c_value = s.Rt.current } :: t.changes;
  s.Rt.observers <-
    (fun time s -> t.changes <- { c_time = time; c_path = path; c_value = s.Rt.current } :: t.changes)
    :: s.Rt.observers

let changes t = List.rev t.changes

(** Value of [path] at [time] according to the log. *)
let value_at t ~path ~time =
  List.fold_left
    (fun acc c ->
      if c.c_path = path && c.c_time <= time then
        match acc with
        | Some prev when prev.c_time > c.c_time -> acc
        | _ -> Some c
      else acc)
    None t.changes
  |> Option.map (fun c -> c.c_value)

(** History of one signal: (time, value) pairs in time order. *)
let history t ~path =
  changes t |> List.filter_map (fun c -> if c.c_path = path then Some (c.c_time, c.c_value) else None)

let vcd_id i =
  (* printable short id *)
  let chars = "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  let n = String.length chars in
  if i < n then String.make 1 chars.[i]
  else Printf.sprintf "%c%c" chars.[i mod n] chars.[(i / n) mod n]

let vcd_value v =
  match v with
  | Value.Venum n -> Printf.sprintf "b%d" n
  | Value.Vint n -> Printf.sprintf "b%s" (if n = 0 then "0" else Printf.sprintf "%x" n)
  | Value.Vphys n -> Printf.sprintf "b%x" n
  | Value.Vfloat x -> Printf.sprintf "r%g" x
  | Value.Varray { elems; _ } ->
    "b"
    ^ String.concat ""
        (Array.to_list
           (Array.map
              (function
                | Value.Venum n -> string_of_int (n land 1)
                | _ -> "x")
              elems))
  | Value.Vrecord _ | Value.Vnull | Value.Vaccess _ -> "bx"

(** Render the full change log as a VCD document. *)
let to_vcd t ~timescale_fs:_ =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "$timescale 1 fs $end\n$scope module top $end\n";
  List.iteri
    (fun i (path, s) ->
      let width =
        match s.Rt.sig_ty.Types.kind with
        | Types.Karray _ -> (
          match s.Rt.current with
          | Value.Varray { elems; _ } -> Array.length elems
          | _ -> 1)
        | _ -> 1
      in
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" width (vcd_id i)
           (String.map (fun c -> if c = ':' then '.' else c) path)))
    t.watched;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let ids = List.mapi (fun i (path, _) -> (path, vcd_id i)) t.watched in
  let by_time = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let cell = Option.value (Hashtbl.find_opt by_time c.c_time) ~default:[] in
      Hashtbl.replace by_time c.c_time (c :: cell))
    t.changes;
  let times = List.sort_uniq compare (Hashtbl.fold (fun t _ acc -> t :: acc) by_time []) in
  List.iter
    (fun time ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" time);
      List.iter
        (fun c ->
          match List.assoc_opt c.c_path ids with
          | Some id -> Buffer.add_string buf (Printf.sprintf "%s %s\n" (vcd_value c.c_value) id)
          | None -> ())
        (List.rev (Option.value (Hashtbl.find_opt by_time time) ~default:[])))
    times;
  Buffer.contents buf
