(** Waveform tracing: change-dump observers attached to signals.

    Provides both an in-memory change log (used by tests and examples) and a
    VCD-style textual dump — the VHDL-I/O role of the paper's virtual
    machine, alongside assert/report output. *)

type change = {
  c_time : Rt.time;
  c_path : string;
  c_value : Value.t;
}

type t = {
  mutable changes : change list; (* newest first *)
  mutable watched : (string * Rt.signal) list;
}

let create () = { changes = []; watched = [] }

(** Observe [s]; records every event (and the initial value at time 0). *)
let watch t path (s : Rt.signal) =
  t.watched <- t.watched @ [ (path, s) ];
  t.changes <- { c_time = 0; c_path = path; c_value = s.Rt.current } :: t.changes;
  s.Rt.observers <-
    (fun time s -> t.changes <- { c_time = time; c_path = path; c_value = s.Rt.current } :: t.changes)
    :: s.Rt.observers

let changes t = List.rev t.changes

(** Value of [path] at [time] according to the log. *)
let value_at t ~path ~time =
  List.fold_left
    (fun acc c ->
      if c.c_path = path && c.c_time <= time then
        match acc with
        | Some prev when prev.c_time > c.c_time -> acc
        | _ -> Some c
      else acc)
    None t.changes
  |> Option.map (fun c -> c.c_value)

(** History of one signal: (time, value) pairs in time order. *)
let history t ~path =
  changes t |> List.filter_map (fun c -> if c.c_path = path then Some (c.c_time, c.c_value) else None)

(* ------------------------------------------------------------------ *)
(* VCD rendering (IEEE 1364 §18.2) — loadable by GTKWave *)

let vcd_id i =
  (* printable short identifier code: '!' .. '~' minus '"' (harmless but
     confuses some readers), base-extended for many signals *)
  let chars = "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  let n = String.length chars in
  if i < n then String.make 1 chars.[i]
  else Printf.sprintf "%c%c" chars.[i mod n] chars.[(i / n) mod n]

let timescale_label fs =
  let rec scale n = function
    | _ :: rest when n mod 1000 = 0 && n >= 1000 -> scale (n / 1000) rest
    | unit :: _ -> (n, unit)
    | [] -> (n, "fs")
  in
  let n, unit = scale (max 1 fs) [ "fs"; "ps"; "ns"; "us"; "ms"; "s" ] in
  if n = 1 || n = 10 || n = 100 then Printf.sprintf "%d %s" n unit
  else Printf.sprintf "%d fs" (max 1 fs)

(* fixed-width two's-complement binary, most significant bit first *)
let bin_of_int ~width n =
  String.init width (fun i -> if (n lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let bits_for n =
  (* bits needed for positions 0 .. n-1 *)
  let rec go b cap = if cap >= n then b else go (b + 1) (cap * 2) in
  go 1 2

let bit_digit = function
  | Value.Venum 0 -> '0'
  | Value.Venum 1 -> '1'
  | _ -> 'x'

(* One VCD variable per watched signal: declaration type/width plus the
   value-change rendering (the full change token, identifier included). *)
type vcd_var = {
  v_id : string;
  v_scope : string list; (* enclosing module path, outermost first *)
  v_name : string;
  v_type : string;
  v_width : int;
  v_render : Value.t -> string;
}

let vcd_var i (path, (s : Rt.signal)) =
  let id = vcd_id i in
  let comps =
    match List.filter (fun c -> c <> "") (String.split_on_char ':' path) with
    | [] -> [ path ]
    | cs -> cs
  in
  let rec split = function
    | [ last ] -> ([], last)
    | c :: rest ->
      let scope, last = split rest in
      (c :: scope, last)
    | [] -> ([], path)
  in
  let scope, name = split comps in
  let vector width render =
    (id, "wire", width, fun v -> Printf.sprintf "b%s %s" (render v) id)
  in
  let v_id, v_type, v_width, v_render =
    match s.Rt.sig_ty.Types.kind with
    | Types.Kint ->
      ( id,
        "integer",
        32,
        fun v ->
          match v with
          | Value.Vint n -> Printf.sprintf "b%s %s" (bin_of_int ~width:32 n) id
          | _ -> Printf.sprintf "bx %s" id )
    | Types.Kphys _ ->
      ( id,
        "integer",
        64,
        fun v ->
          match v with
          | Value.Vphys n | Value.Vint n ->
            Printf.sprintf "b%s %s" (bin_of_int ~width:64 n) id
          | _ -> Printf.sprintf "bx %s" id )
    | Types.Kfloat ->
      ( id,
        "real",
        64,
        fun v ->
          match v with
          | Value.Vfloat x -> Printf.sprintf "r%.16g %s" x id
          | _ -> Printf.sprintf "r0 %s" id )
    | Types.Kenum lits when Array.length lits <= 2 ->
      (* two-valued enumeration (BIT, BOOLEAN): a scalar — change tokens
         are the bare digit glued to the identifier *)
      ( id,
        "wire",
        1,
        fun v -> Printf.sprintf "%c%s" (bit_digit v) id )
    | Types.Kenum lits ->
      let width = bits_for (Array.length lits) in
      vector width (fun v ->
          match v with
          | Value.Venum n -> bin_of_int ~width n
          | _ -> "x")
    | Types.Karray _ ->
      let width =
        match s.Rt.current with
        | Value.Varray { elems; _ } -> max 1 (Array.length elems)
        | _ -> 1
      in
      vector width (fun v ->
          match v with
          | Value.Varray { elems; _ } ->
            String.init (Array.length elems) (fun i -> bit_digit elems.(i))
          | _ -> "x")
    | Types.Krecord _ | Types.Kaccess _ -> vector 1 (fun _ -> "x")
  in
  { v_id; v_scope = scope; v_name = name; v_type; v_width; v_render }

(* Nested $scope tree: group variables by their hierarchical path. *)
type scope_tree = {
  mutable sub : (string * scope_tree) list; (* insertion order *)
  mutable vars : vcd_var list; (* reversed *)
}

let rec insert_var tree scope v =
  match scope with
  | [] -> tree.vars <- v :: tree.vars
  | c :: rest ->
    let child =
      match List.assoc_opt c tree.sub with
      | Some t -> t
      | None ->
        let t = { sub = []; vars = [] } in
        tree.sub <- tree.sub @ [ (c, t) ];
        t
    in
    insert_var child rest v

let rec emit_scope buf name tree =
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" name);
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "$var %s %d %s %s $end\n" v.v_type v.v_width v.v_id v.v_name))
    (List.rev tree.vars);
  List.iter (fun (n, t) -> emit_scope buf n t) tree.sub;
  Buffer.add_string buf "$upscope $end\n"

(** Render the full change log as an IEEE-1364 VCD document.  Scopes nest
    following the [:]-separated hierarchical paths; two-valued enumerations
    (BIT, BOOLEAN) are scalars, larger enumerations and integers dump as
    binary vectors, reals as [r] changes.  The initial values appear in a
    [$dumpvars] block at time 0; later times emit only actual changes. *)
let to_vcd t ~timescale_fs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "$version vhdlc simulation $end\n";
  Buffer.add_string buf
    (Printf.sprintf "$timescale %s $end\n" (timescale_label timescale_fs));
  let vars = List.mapi vcd_var t.watched in
  let root = { sub = []; vars = [] } in
  List.iter (fun v -> insert_var root v.v_scope v) vars;
  (* scope-less signals live in a synthetic "top" module; if everything is
     under one hierarchy the tree already provides it *)
  (match (root.vars, root.sub) with
  | [], [ (name, only) ] -> emit_scope buf name only
  | _ -> emit_scope buf "top" { sub = root.sub; vars = root.vars });
  Buffer.add_string buf "$enddefinitions $end\n";
  let var_of_path =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (path, _) -> Hashtbl.replace tbl path (List.nth vars i)) t.watched;
    tbl
  in
  (* group by time, collapsing to the last change per signal per instant
     (delta cycles within one time step show only the settled value) *)
  let by_time = Hashtbl.create 64 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt var_of_path c.c_path with
      | None -> ()
      | Some v ->
        let cell =
          match Hashtbl.find_opt by_time c.c_time with
          | Some cell -> cell
          | None ->
            let cell = Hashtbl.create 8 in
            Hashtbl.replace by_time c.c_time cell;
            cell
        in
        (* the log is newest first: keep the first (= last) token seen *)
        if not (Hashtbl.mem cell v.v_id) then Hashtbl.replace cell v.v_id (v.v_render c.c_value))
    t.changes;
  let times = List.sort compare (Hashtbl.fold (fun t _ acc -> t :: acc) by_time []) in
  let last_token = Hashtbl.create 16 in
  let emit_time time tokens =
    let changed =
      List.filter
        (fun (id, tok) ->
          match Hashtbl.find_opt last_token id with
          | Some prev when String.equal prev tok -> false
          | _ ->
            Hashtbl.replace last_token id tok;
            true)
        tokens
    in
    if changed <> [] then begin
      Buffer.add_string buf (Printf.sprintf "#%d\n" time);
      List.iter (fun (_, tok) -> Buffer.add_string buf (tok ^ "\n")) changed
    end
  in
  (* time 0 is the $dumpvars block: every variable's initial value *)
  let time0 =
    match Hashtbl.find_opt by_time 0 with
    | Some cell -> cell
    | None -> Hashtbl.create 1
  in
  Buffer.add_string buf "#0\n$dumpvars\n";
  List.iteri
    (fun i (_, (s : Rt.signal)) ->
      let v = List.nth vars i in
      let tok =
        match Hashtbl.find_opt time0 v.v_id with
        | Some tok -> tok
        | None -> v.v_render s.Rt.current
      in
      Hashtbl.replace last_token v.v_id tok;
      Buffer.add_string buf (tok ^ "\n"))
    t.watched;
  Buffer.add_string buf "$end\n";
  List.iter
    (fun time ->
      if time > 0 then
        emit_time time
          (Hashtbl.fold (fun id tok acc -> (id, tok) :: acc) (Hashtbl.find by_time time) []
          |> List.sort compare))
    times;
  Buffer.contents buf
