(** Runtime objects of the simulation kernel.

    Signals follow IEEE 1076 semantics: each process driving a signal owns a
    *driver* holding a projected output waveform; the effective value is the
    resolution of the connected drivers' values.  Times are femtoseconds
    (the primary unit of STD.STANDARD.TIME). *)

type time = int

let fs = 1
let ns = 1_000_000

type signal = {
  sig_id : int;
  sig_name : string; (* hierarchical path, e.g. ":top:u1:q" *)
  sig_ty : Types.t;
  sig_kind : [ `Plain | `Bus | `Register ];
  sig_resolution : (Value.t list -> Value.t) option;
  mutable current : Value.t;
  mutable last_value : Value.t; (* value before the last event *)
  mutable last_event : time;
  mutable active : bool; (* a transaction occurred this cycle *)
  mutable event : bool; (* the value changed this cycle *)
  mutable drivers : driver list;
  mutable sig_disconnect : time;
      (* disconnection specification (LRM 5.3): delay before a guarded
         disconnect takes effect; 0 = immediate *)
  mutable watchers : watcher list; (* processes to consider on an event *)
  mutable observers : (time -> signal -> unit) list; (* tracing hooks *)
}

and driver = {
  drv_signal : signal;
  drv_owner : int; (* process id *)
  mutable drv_value : Value.t; (* current driving value *)
  mutable drv_connected : bool; (* false after a guarded disconnect *)
  (* projected output waveform: strictly ascending times, all > "now" or
     = now for the next delta cycle *)
  mutable drv_wave : (time * Value.t option) list; (* None = null: disconnect *)
  (* LRM drivers are per scalar subelement: a driver created by element
     association owns only these indices of a composite signal, and
     disjoint element drivers merge without a resolution function *)
  mutable drv_indices : int list option;
}

and watcher = {
  w_proc : proc;
}

and proc_state =
  | Ready (* run (again) this delta *)
  | Waiting
  | Terminated (* ran off a wait-free body or was killed *)

and proc = {
  proc_id : int;
  proc_name : string;
  mutable proc_state : proc_state;
  mutable resume : unit -> unit; (* continues the fiber *)
  (* wake conditions while Waiting *)
  mutable wake_signals : signal list;
  mutable wake_until : (unit -> bool) option;
  mutable wake_at : time option;
}

let make_signal ~id ~name ~ty ~kind ~resolution ~init =
  {
    sig_id = id;
    sig_name = name;
    sig_ty = ty;
    sig_kind = kind;
    sig_resolution = resolution;
    current = init;
    last_value = init;
    last_event = 0;
    active = false;
    event = false;
    drivers = [];
    sig_disconnect = 0;
    watchers = [];
    observers = [];
  }

(** The driver of [proc_id] on [s], created on first use (LRM: one driver
    per process per driven signal). *)
let driver_of s ~proc_id =
  match List.find_opt (fun d -> d.drv_owner = proc_id) s.drivers with
  | Some d -> d
  | None ->
    let d =
      {
        drv_signal = s;
        drv_owner = proc_id;
        drv_value = s.current;
        drv_connected = true;
        drv_wave = [];
        drv_indices = None;
      }
    in
    s.drivers <- s.drivers @ [ d ];
    d

(** Schedule [transactions] on [d] at absolute times (already >= now).

    Transport delay: delete all pending transactions at or after the first
    new one.  Inertial delay: additionally delete every earlier pending
    transaction (pulse rejection for the common single-element case,
    per LRM 8.3.1 simplified — see DESIGN.md). *)
let schedule d ~mode ~(transactions : (time * Value.t option) list) =
  match transactions with
  | [] -> ()
  | (t0, _) :: _ ->
    let kept =
      match mode with
      | Kir.Transport -> List.filter (fun (t, _) -> t < t0) d.drv_wave
      | Kir.Inertial -> []
    in
    (* a null transaction disconnects only when it matures; a waveform that
       starts with a value reconnects the driver immediately *)
    (match transactions with
    | (_, Some _) :: _ -> d.drv_connected <- true
    | _ -> ());
    (* the LRM requires waveform elements in ascending time order; sort
       defensively so an out-of-order waveform cannot corrupt the queue *)
    d.drv_wave <-
      List.stable_sort (fun (a, _) (b, _) -> compare a b) (kept @ transactions)

let disconnect d = d.drv_connected <- false

(** Earliest pending transaction time of a driver. *)
let next_transaction_time d =
  match d.drv_wave with
  | (t, _) :: _ -> Some t
  | [] -> None

exception Simulation_error of { time : time; msg : string }

let sim_error ~time fmt =
  Format.kasprintf (fun msg -> raise (Simulation_error { time; msg })) fmt

(** Update a signal whose drivers have new values: resolve, detect events.
    Returns [true] if an event occurred. *)
let update_signal ~now s =
  let connected = List.filter (fun d -> d.drv_connected) s.drivers in
  let driving_values = List.map (fun d -> d.drv_value) connected in
  let new_value =
    match (driving_values, s.sig_resolution) with
    | [], _ -> (
      (* all drivers disconnected: bus keeps its value only through the
         resolution function on an empty list; register keeps last value *)
      match (s.sig_kind, s.sig_resolution) with
      | `Bus, Some f -> ( try f [] with _ -> s.current)
      | _ -> s.current)
    | [ v ], None -> v
    | [ v ], Some f -> f [ v ]
    | _ :: _ :: _, Some f -> f driving_values
    | _ :: _ :: _, None ->
      (* element drivers owning disjoint indices merge element-wise *)
      let all_indices =
        List.map (fun d -> d.drv_indices) connected
      in
      if List.for_all (fun i -> i <> None) all_indices then begin
        let flat = List.concat_map (fun i -> Option.value i ~default:[]) all_indices in
        let distinct = List.sort_uniq compare flat in
        if List.length distinct <> List.length flat then
          sim_error ~time:now "signal %s: overlapping element drivers" s.sig_name
        else
          List.fold_left
            (fun acc d ->
              List.fold_left
                (fun acc ix ->
                  match Value.array_get d.drv_value ix with
                  | Some e -> (
                    try Value_ops.update_index acc ix e
                    with Value_ops.Runtime_error m -> sim_error ~time:now "%s" m)
                  | None -> acc)
                acc
                (Option.value d.drv_indices ~default:[]))
            s.current connected
      end
      else
        sim_error ~time:now "signal %s has multiple drivers but no resolution function"
          s.sig_name
  in
  s.active <- true;
  if not (Value.equal new_value s.current) then begin
    s.last_value <- s.current;
    s.current <- new_value;
    s.last_event <- now;
    s.event <- true;
    List.iter (fun f -> f now s) s.observers;
    true
  end
  else false

let format_time t =
  if t mod 1_000_000 = 0 then Printf.sprintf "%d ns" (t / 1_000_000)
  else if t mod 1_000 = 0 then Printf.sprintf "%d ps" (t / 1_000)
  else Printf.sprintf "%d fs" t
