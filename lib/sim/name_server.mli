(** The Name Server — "the means of identifying by name each object in the
    simulated system" (paper §2.1).  Hierarchical paths use colons:
    [:top:u1:q]. *)

type entry =
  | Signal of Rt.signal
  | Process of Rt.proc
  | Instance of { instance_path : string; entity : string; architecture : string }

type t

val create : unit -> t
val register : t -> string -> entry -> unit
val find : t -> string -> entry option
val find_signal : t -> string -> Rt.signal option

val signals : t -> (string * Rt.signal) list
(** All signals in registration order. *)

val processes : t -> (string * Rt.proc) list
val instances : t -> (string * string * string) list
(** (path, entity, architecture) of every instance. *)

val pp : Format.formatter -> t -> unit
