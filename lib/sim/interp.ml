(** The KIR interpreter: executes process bodies and subprograms.

    This is the "programmable in terms of C primitives" half of the paper's
    virtual machine — where their generated C executes natively, our KIR is
    interpreted.  Processes suspend on wait statements by performing the
    {!Wait} effect, captured by the kernel scheduler. *)

type frame = {
  vars : Value.t array;
  loop_vars : Value.t array;
}

type env = {
  e_signals : Rt.signal array; (* instance signal table (ports first) *)
  e_guard : Rt.signal option;
  e_globals : (string * string, Rt.signal) Hashtbl.t;
  e_functions : (string, Kir.subprogram) Hashtbl.t;
  e_proc_id : int;
  e_proc_name : string;
  e_now : unit -> Rt.time;
  e_sig_params : Rt.signal option array;
      (* by parameter index: the signals bound to the running procedure's
         signal-class parameters (None for value parameters) *)
  e_display : frame option array; (* by absolute level *)
  e_level : int; (* absolute level of the running frame *)
  e_emit : severity:int -> line:int -> string -> unit; (* assert/report *)
}

type wait_req = {
  wr_on : Rt.signal list;
  wr_until : (unit -> bool) option;
  wr_for : Rt.time option; (* absolute wake time *)
}

type _ Effect.t += Wait : wait_req -> unit Effect.t

exception Return_exc of Value.t option
exception Exit_exc of string option (* labeled exit: None = innermost *)
exception Next_exc of string option

let error env fmt = Rt.sim_error ~time:(env.e_now ()) fmt

let signal_of env = function
  | Kir.Sig_local i ->
    if i < Array.length env.e_signals then env.e_signals.(i)
    else error env "signal index %d out of range in %s" i env.e_proc_name
  | Kir.Sig_guard -> (
    match env.e_guard with
    | Some g -> g
    | None -> error env "GUARD referenced outside a guarded block")
  | Kir.Sig_global { package; name } -> (
    match Hashtbl.find_opt env.e_globals (package, name) with
    | Some s -> s
    | None -> error env "global signal %s.%s is not elaborated" package name)
  | Kir.Sig_param i -> (
    match if i < Array.length env.e_sig_params then env.e_sig_params.(i) else None with
    | Some s -> s
    | None ->
      error env
        "signal parameter #%d is unbound (signal-class parameters are only \
         supported in procedure calls)" i)

let frame_at env ~rel_level =
  let abs = env.e_level - rel_level in
  if abs < 0 || abs >= Array.length env.e_display then
    error env "frame level %d out of range" abs
  else
    match env.e_display.(abs) with
    | Some f -> f
    | None -> error env "no frame at level %d" abs

let read_var env ~level ~index ~name =
  let f = frame_at env ~rel_level:level in
  if index >= 0 then begin
    if index < Array.length f.vars then f.vars.(index)
    else error env "variable %s: slot %d out of range" name index
  end
  else begin
    let li = -index - 1 in
    if li < Array.length f.loop_vars then f.loop_vars.(li)
    else error env "loop variable %s: slot %d out of range" name li
  end

(* an unlabelled exit/next targets the innermost loop; a labelled one only
   the loop bearing that label *)
let loop_matches loop_label raised_label =
  match raised_label with
  | None -> true
  | Some l -> loop_label = Some l

let write_var env ~level ~index v =
  let f = frame_at env ~rel_level:level in
  if index >= 0 then f.vars.(index) <- v
  else f.loop_vars.(-index - 1) <- v

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec eval env (e : Kir.expr) : Value.t =
  match e with
  | Kir.Enull -> Value.Vnull
  | Kir.Enew (ty, init) ->
    let v = match init with Some e -> eval env e | None -> Value.default_of ty in
    Value.Vaccess (ref v)
  | Kir.Ederef e -> (
    match eval env e with
    | Value.Vaccess r -> !r
    | Value.Vnull -> error env "dereference of a null access value"
    | _ -> error env "dereference of a non-access value")
  | Kir.Elit v -> v
  | Kir.Evar { level; index; name } -> read_var env ~level ~index ~name
  | Kir.Egeneric { name; _ } -> error env "generic %s was not substituted at elaboration" name
  | Kir.Eunit_const { name } -> error env "constant %s was not substituted at elaboration" name
  | Kir.Esig sref -> (signal_of env sref).Rt.current
  | Kir.Esig_attr (sref, attr) -> (
    let s = signal_of env sref in
    match attr with
    | Kir.Sa_event -> Value.vbool s.Rt.event
    | Kir.Sa_active -> Value.vbool s.Rt.active
    | Kir.Sa_stable -> Value.vbool (not s.Rt.event)
    | Kir.Sa_last_value -> s.Rt.last_value
    | Kir.Sa_last_event -> Value.Vphys (env.e_now () - s.Rt.last_event))
  | Kir.Ebin (op, a, b) -> (
    (* short-circuit boolean and/or *)
    match op with
    | Kir.Band -> (
      match eval env a with
      | Value.Venum 0 -> Value.vbool false
      | Value.Venum 1 -> eval env b
      | va -> Value_ops.binop op va (eval env b))
    | Kir.Bor -> (
      match eval env a with
      | Value.Venum 1 -> Value.vbool true
      | Value.Venum 0 -> eval env b
      | va -> Value_ops.binop op va (eval env b))
    | _ -> Value_ops.binop op (eval env a) (eval env b))
  | Kir.Eun (op, a) -> Value_ops.unop op (eval env a)
  | Kir.Eindex (a, i) -> Value_ops.index (eval env a) (Value.as_int (eval env i))
  | Kir.Eslice (a, (l, d, r)) ->
    Value_ops.slice (eval env a) (Value.as_int (eval env l), d, Value.as_int (eval env r))
  | Kir.Efield (a, f) -> Value_ops.field (eval env a) f
  | Kir.Eaggregate (els, shape) -> eval_aggregate env els shape
  | Kir.Ecall (Kir.F_user f, args) -> call_function env f (List.map (eval env) args)
  | Kir.Econvert (conv, a) -> (
    let v = eval env a in
    match conv with
    | Kir.To_integer -> (
      match v with
      | Value.Vfloat x -> Value.Vint (int_of_float (Float.round x))
      | v -> Value.Vint (Value.as_int v))
    | Kir.To_float -> (
      match v with
      | Value.Vint n -> Value.Vfloat (float_of_int n)
      | v -> v)
    | Kir.To_pos -> Value.Vint (Value.as_int v)
    | Kir.To_val ty ->
      let n = Value.as_int v in
      let result =
        match ty.Types.kind with
        | Types.Kenum lits ->
          if n < 0 || n >= Array.length lits then
            error env "T'VAL(%d) out of range for %s" n (Types.short_name ty)
          else Value.Venum n
        | Types.Kphys _ -> Value.Vphys n
        | _ -> Value.Vint n
      in
      (try Value_ops.check_constraint ty result
       with Value_ops.Runtime_error m -> error env "%s" m);
      result)
  | Kir.Earray_attr (a, attr) -> (
    match eval env a with
    | Value.Varray { bounds = l, d, r; _ } ->
      Value.Vint
        (match attr with
        | Kir.At_left -> l
        | Kir.At_right -> r
        | Kir.At_high -> ( match d with Kir.To -> r | Kir.Downto -> l)
        | Kir.At_low -> ( match d with Kir.To -> l | Kir.Downto -> r)
        | Kir.At_length -> Value.range_length (l, d, r))
    | _ -> error env "array attribute of a non-array value")

and eval_aggregate env els shape =
  match shape with
  | Kir.Sh_record field_names ->
    let named =
      List.filter_map
        (function Kir.Ag_field (f, e) -> Some (f, e) | _ -> None)
        els
    in
    let positional = List.filter_map (function Kir.Ag_pos e -> Some e | _ -> None) els in
    Value.Vrecord
      (List.mapi
         (fun i name ->
           match List.assoc_opt name named with
           | Some e -> (name, eval env e)
           | None -> (
             match List.nth_opt positional i with
             | Some e -> (name, eval env e)
             | None -> error env "record aggregate misses field %s" name))
         field_names)
  | Kir.Sh_array bounds_opt ->
    let positional = List.filter_map (function Kir.Ag_pos e -> Some e | _ -> None) els in
    let named = List.filter_map (function Kir.Ag_named (i, e) -> Some (i, e) | _ -> None) els in
    let others = List.find_map (function Kir.Ag_others e -> Some e | _ -> None) els in
    let bounds =
      match bounds_opt with
      | Some b -> b
      | None -> (1, Types.To, List.length positional + List.length named)
    in
    let len = Value.range_length bounds in
    let slots = Array.make len None in
    List.iteri (fun k e -> if k < len then slots.(k) <- Some (eval env e)) positional;
    List.iter
      (fun (i, e) ->
        match Value.array_offset bounds i with
        | Some off -> slots.(off) <- Some (eval env e)
        | None -> error env "aggregate choice %d out of bounds" i)
      named;
    Value.Varray
      {
        bounds;
        elems =
          Array.map
            (fun slot ->
              match slot with
              | Some v -> v
              | None -> (
                match others with
                | Some e -> eval env e
                | None -> error env "aggregate leaves elements undefined"))
            slots;
      }

and call_function env mangled (args : Value.t list) : Value.t =
  match run_subprogram env mangled args with
  | Some v, _ -> v
  | None, _ -> error env "function %s returned no value" mangled

(* Run a subprogram: returns (return value, final frame) — the frame is
   needed for out-parameter copy-back. *)
and run_subprogram ?(sig_params = [||]) env mangled (args : Value.t list) :
    Value.t option * frame =
  let sub =
    match Hashtbl.find_opt env.e_functions mangled with
    | Some s -> s
    | None -> error env "subprogram %s is not linked" mangled
  in
  let n_params = List.length sub.Kir.sub_params in
  let n_locals = List.length sub.Kir.sub_locals in
  let level = sub.Kir.sub_level in
  let frame =
    {
      vars = Array.make (max 1 (n_params + n_locals)) (Value.Vint 0);
      loop_vars = Array.make (max 1 (Kir_util.loop_depth sub.Kir.sub_body)) (Value.Vint 0);
    }
  in
  List.iteri (fun i v -> frame.vars.(i) <- v) args;
  (* display save/restore around the call (shallow binding) *)
  let saved =
    if level < Array.length env.e_display then env.e_display.(level) else None
  in
  if level >= Array.length env.e_display then error env "call nesting too deep";
  env.e_display.(level) <- Some frame;
  let inner = { env with e_level = level; e_sig_params = sig_params } in
  (* locals with initializers *)
  List.iteri
    (fun i (l : Kir.local) ->
      let v =
        match l.Kir.l_init with
        | Some e -> eval inner e
        | None -> Value.default_of l.Kir.l_ty
      in
      frame.vars.(n_params + i) <- v)
    sub.Kir.sub_locals;
  let result =
    match List.iter (exec inner) sub.Kir.sub_body with
    | () -> None
    | exception Return_exc v -> v
  in
  env.e_display.(level) <- saved;
  (result, frame)

(* ------------------------------------------------------------------ *)
(* Targets *)

and assign_target env (t : Kir.target) (v : Value.t) : unit =
  match t with
  | Kir.Tvar { level; index; _ } -> write_var env ~level ~index v
  | Kir.Tderef t' -> (
    match read_target env t' with
    | Value.Vaccess r -> r := v
    | Value.Vnull -> error env "dereference of a null access value in assignment"
    | _ -> error env "dereference of a non-access value in assignment")
  | Kir.Tindex (t', i) ->
    let old = read_target env t' in
    assign_target env t' (Value_ops.update_index old (Value.as_int (eval env i)) v)
  | Kir.Tslice (t', (l, d, r)) ->
    let old = read_target env t' in
    assign_target env t'
      (Value_ops.update_slice old (Value.as_int (eval env l), d, Value.as_int (eval env r)) v)
  | Kir.Tfield (t', f) ->
    let old = read_target env t' in
    assign_target env t' (Value_ops.update_field old f v)

and read_target env (t : Kir.target) : Value.t =
  match t with
  | Kir.Tvar { level; index; name } -> read_var env ~level ~index ~name
  | Kir.Tderef t' -> (
    match read_target env t' with
    | Value.Vaccess r -> !r
    | Value.Vnull -> error env "dereference of a null access value"
    | _ -> error env "dereference of a non-access value")
  | Kir.Tindex (t', i) -> Value_ops.index (read_target env t') (Value.as_int (eval env i))
  | Kir.Tslice (t', (l, d, r)) ->
    Value_ops.slice (read_target env t')
      (Value.as_int (eval env l), d, Value.as_int (eval env r))
  | Kir.Tfield (t', f) -> Value_ops.field (read_target env t') f

(* Signal targets: root signal plus a path-update function applied to the
   driver's projected value (read-modify-write of composite drivers; see
   DESIGN.md). *)
and sig_target_parts env (t : Kir.sig_target) : Rt.signal * (Value.t -> Value.t -> Value.t) =
  match t with
  | Kir.Ts_sig sref -> (signal_of env sref, fun _old v -> v)
  | Kir.Ts_index (t', i) ->
    let s, update = sig_target_parts env t' in
    let idx = Value.as_int (eval env i) in
    (s, fun old v -> update old (Value_ops.update_index (apply_path env t' old) idx v))
  | Kir.Ts_slice (t', (l, d, r)) ->
    let s, update = sig_target_parts env t' in
    let rng = (Value.as_int (eval env l), d, Value.as_int (eval env r)) in
    (s, fun old v -> update old (Value_ops.update_slice (apply_path env t' old) rng v))
  | Kir.Ts_field (t', f) ->
    let s, update = sig_target_parts env t' in
    (s, fun old v -> update old (Value_ops.update_field (apply_path env t' old) f v))

(* project the current (old) whole-signal value down the path prefix *)
and apply_path env (t : Kir.sig_target) (whole : Value.t) : Value.t =
  match t with
  | Kir.Ts_sig _ -> whole
  | Kir.Ts_index (t', i) ->
    Value_ops.index (apply_path env t' whole) (Value.as_int (eval env i))
  | Kir.Ts_slice (t', (l, d, r)) ->
    Value_ops.slice (apply_path env t' whole)
      (Value.as_int (eval env l), d, Value.as_int (eval env r))
  | Kir.Ts_field (t', f) -> Value_ops.field (apply_path env t' whole) f

(* ------------------------------------------------------------------ *)
(* Statements *)

and exec env (st : Kir.stmt) : unit =
  match st with
  | Kir.Snull -> ()
  | Kir.Sassign (t, e, check_ty) ->
    let v = eval env e in
    (match check_ty with
    | Some ty -> (
      try Value_ops.check_constraint ty v
      with Value_ops.Runtime_error m -> error env "%s" m)
    | None -> ());
    assign_target env t v
  | Kir.Ssig_assign { target; mode; waveform; line; _ } -> (
    let s, update = sig_target_parts env target in
    let d = Rt.driver_of s ~proc_id:env.e_proc_id in
    let now = env.e_now () in
    (* base value each transaction modifies (for composite paths) *)
    let base =
      match List.rev d.Rt.drv_wave with
      | (_, Some v) :: _ -> v
      | (_, None) :: _ | [] -> d.Rt.drv_value
    in
    let transactions, _ =
      List.fold_left
        (fun (acc, base) (w : Kir.waveform_element) ->
          let delay =
            match w.Kir.wv_after with
            | None -> 0
            | Some e -> Value.as_int (eval env e)
          in
          if delay < 0 then error env "negative delay in signal assignment at line %d" line;
          match w.Kir.wv_value with
          | None ->
            (* null transaction: disconnect the driver when it matures
               (LRM 8.3: only guarded signals may be assigned null) *)
            if s.Rt.sig_kind = `Plain then
              error env "line %d: null transaction on the unguarded signal %s" line
                s.Rt.sig_name;
            ((now + delay, None) :: acc, base)
          | Some ve ->
            let v = eval env ve in
            let whole = update base v in
            ((now + delay, Some whole) :: acc, whole))
        ([], base) waveform
    in
    let transactions = List.rev transactions in
    (* range check scalar element assignments against the signal subtype *)
    (match transactions with
    | (_, Some v) :: _ -> (
      try Value_ops.check_constraint s.Rt.sig_ty v
      with Value_ops.Runtime_error m -> error env "line %d: %s" line m)
    | (_, None) :: _ | [] -> ());
    Rt.schedule d ~mode ~transactions)
  | Kir.Sdisconnect target ->
    let s, _ = sig_target_parts env target in
    let d = Rt.driver_of s ~proc_id:env.e_proc_id in
    if s.Rt.sig_disconnect > 0 then
      (* disconnection specification: the driver lets go only after the
         declared delay (a pending null transaction) *)
      Rt.schedule d ~mode:Kir.Transport
        ~transactions:[ (env.e_now () + s.Rt.sig_disconnect, None) ]
    else Rt.disconnect d
  | Kir.Sif (arms, els) -> (
    let rec go = function
      | [] -> List.iter (exec env) els
      | (c, body) :: rest ->
        if Value.truth (eval env c) then List.iter (exec env) body else go rest
    in
    go arms)
  | Kir.Scase (e, alts) -> (
    let v = eval env e in
    let matches choice =
      match choice with
      | Kir.Ch_others -> true
      | Kir.Ch_value cv -> Value.equal v cv
      | Kir.Ch_range (l, d, r) -> (
        match v with
        | Value.Vint n | Value.Venum n ->
          let lo, hi = match d with Kir.To -> (l, r) | Kir.Downto -> (r, l) in
          n >= lo && n <= hi
        | _ -> false)
    in
    match List.find_opt (fun (choices, _) -> List.exists matches choices) alts with
    | Some (_, body) -> List.iter (exec env) body
    | None -> error env "case statement: no choice matches %s" (Value.image v))
  | Kir.Sfor { var; range = lo_e, d, hi_e; body; loop_label; _ } -> (
    let vlo = eval env lo_e and vhi = eval env hi_e in
    let rewrap =
      match vlo with
      | Value.Venum _ -> fun n -> Value.Venum n
      | Value.Vphys _ -> fun n -> Value.Vphys n
      | _ -> fun n -> Value.Vint n
    in
    let indices = Value.range_indices (Value.as_int vlo, d, Value.as_int vhi) in
    try
      List.iter
        (fun i ->
          write_var env ~level:0 ~index:(-var - 1) (rewrap i);
          try List.iter (exec env) body
          with Next_exc l when loop_matches loop_label l -> ())
        indices
    with Exit_exc l when loop_matches loop_label l -> ())
  | Kir.Swhile (c, body, loop_label) -> (
    try
      while Value.truth (eval env c) do
        try List.iter (exec env) body
        with Next_exc l when loop_matches loop_label l -> ()
      done
    with Exit_exc l when loop_matches loop_label l -> ())
  | Kir.Sloop (body, loop_label) -> (
    try
      while true do
        try List.iter (exec env) body
        with Next_exc l when loop_matches loop_label l -> ()
      done
    with Exit_exc l when loop_matches loop_label l -> ())
  | Kir.Sexit { cond; label } -> (
    match cond with
    | None -> raise (Exit_exc label)
    | Some c -> if Value.truth (eval env c) then raise (Exit_exc label))
  | Kir.Snext { cond; label } -> (
    match cond with
    | None -> raise (Next_exc label)
    | Some c -> if Value.truth (eval env c) then raise (Next_exc label))
  | Kir.Swait { on; until; for_; line = _ } ->
    let signals = List.map (signal_of env) on in
    let until_fn = Option.map (fun c () -> Value.truth (eval env c)) until in
    let wake_at =
      Option.map (fun e -> env.e_now () + Value.as_int (eval env e)) for_
    in
    Effect.perform (Wait { wr_on = signals; wr_until = until_fn; wr_for = wake_at })
  | Kir.Sreturn e -> raise (Return_exc (Option.map (eval env) e))
  | Kir.Sassert { cond; report; severity; line } ->
    if not (Value.truth (eval env cond)) then begin
      let msg =
        match report with
        | Some e -> Std.value_string (eval env e)
        | None -> "Assertion violation."
      in
      let sev =
        match severity with
        | Some e -> Value.as_int (eval env e)
        | None -> 2 (* ERROR *)
      in
      env.e_emit ~severity:sev ~line msg
    end
  | Kir.Scall (Kir.P_user mangled, args) ->
    let arg_values = List.map (fun (a : Kir.call_arg) -> eval env a.Kir.ca_expr) args in
    let sig_params =
      Array.of_list
        (List.map
           (fun (a : Kir.call_arg) -> Option.map (signal_of env) a.Kir.ca_signal)
           args)
    in
    let _, frame = run_subprogram ~sig_params env mangled arg_values in
    (* copy back out/inout parameters *)
    List.iteri
      (fun i (a : Kir.call_arg) ->
        match (a.Kir.ca_mode, a.Kir.ca_target) with
        | (Kir.Arg_out | Kir.Arg_inout), Some t -> assign_target env t frame.vars.(i)
        | _ -> ())
      args
