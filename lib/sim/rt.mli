(** Simulation runtime data: signals, drivers, processes.

    This is the paper's simulation-kernel substrate, IEEE-1076 semantics:
    every process driving a signal owns one {!driver} whose *projected
    output waveform* the kernel matures; signals resolve their connected
    drivers' values (through a resolution function when there are several)
    and record events for the waiting processes. *)

type time = int
(** Simulation time in femtoseconds (the primary unit of TIME). *)

val fs : time
val ns : time

type signal = {
  sig_id : int;
  sig_name : string;  (** hierarchical path, e.g. [":top:u1:q"] *)
  sig_ty : Types.t;
  sig_kind : [ `Plain | `Bus | `Register ];
  sig_resolution : (Value.t list -> Value.t) option;
  mutable current : Value.t;
  mutable last_value : Value.t;  (** value before the last event *)
  mutable last_event : time;
  mutable active : bool;  (** a transaction occurred this cycle *)
  mutable event : bool;  (** the value changed this cycle *)
  mutable drivers : driver list;
  mutable sig_disconnect : time;
      (** disconnection specification (LRM 5.3): delay before a guarded
          disconnect takes effect; 0 = immediate *)
  mutable watchers : watcher list;  (** processes to consider on an event *)
  mutable observers : (time -> signal -> unit) list;  (** tracing hooks *)
}

and driver = {
  drv_signal : signal;
  drv_owner : int;  (** process id *)
  mutable drv_value : Value.t;  (** current driving value *)
  mutable drv_connected : bool;  (** false after a guarded disconnect *)
  mutable drv_wave : (time * Value.t option) list;
      (** projected output waveform, ascending times; [None] is a null
          transaction: the driver disconnects when it matures *)
  mutable drv_indices : int list option;
      (** LRM drivers are per scalar subelement: a driver created by element
          association owns only these indices of a composite signal, and
          disjoint element drivers merge without a resolution function *)
}

and watcher = { w_proc : proc }

and proc_state =
  | Ready  (** run (again) this delta *)
  | Waiting
  | Terminated  (** ran off a wait-free body or was killed *)

and proc = {
  proc_id : int;
  proc_name : string;
  mutable proc_state : proc_state;
  mutable resume : unit -> unit;  (** continues the fiber *)
  mutable wake_signals : signal list;
  mutable wake_until : (unit -> bool) option;
  mutable wake_at : time option;
}

exception Simulation_error of { time : time; msg : string }

val sim_error : time:time -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Simulation_error} with a formatted message. *)

val make_signal :
  id:int ->
  name:string ->
  ty:Types.t ->
  kind:[ `Plain | `Bus | `Register ] ->
  resolution:(Value.t list -> Value.t) option ->
  init:Value.t ->
  signal

val driver_of : signal -> proc_id:int -> driver
(** The driver of [proc_id] on the signal, created on first use (LRM: one
    driver per process per driven signal). *)

val schedule :
  driver -> mode:Kir.delay_mode -> transactions:(time * Value.t option) list -> unit
(** Edit the projected output waveform.  Transport delay deletes pending
    transactions at or after the first new one; inertial delay deletes all
    pending transactions (pulse rejection).  A leading value transaction
    reconnects the driver; null transactions disconnect when they mature. *)

val disconnect : driver -> unit
(** Immediate disconnect (a guarded assignment whose guard fell, with no
    disconnection specification). *)

val next_transaction_time : driver -> time option

val update_signal : now:time -> signal -> bool
(** Resolve the connected drivers into a new current value: single driver
    passes through (via the resolution function if one exists), several
    resolve or merge element-wise when they own disjoint indices.  Returns
    [true] if an event occurred (and notifies observers). *)

val format_time : time -> string
(** ["15 ns"], ["20 ps"], ["7 fs"] — smallest exact unit. *)
