(** Synthetic VHDL workload generators.

    The paper's throughput figures come from "hundreds of thousands of lines
    of customer's VHDL models" we do not have; these parameterized
    generators produce the same structural shapes (behavioral processes,
    structural netlists, expression-heavy arithmetic, packages and
    configuration-heavy libraries) for the PERF-* experiments. *)

let buf_add = Buffer.add_string

(** A package of [n] constants and [n] small functions. *)
let package ~name ~n =
  let b = Buffer.create 1024 in
  buf_add b (Printf.sprintf "package %s is\n" name);
  for i = 0 to n - 1 do
    buf_add b (Printf.sprintf "  constant C%d : integer := %d;\n" i (i * 3 + 1));
    buf_add b (Printf.sprintf "  function F%d (x : integer) return integer;\n" i)
  done;
  buf_add b (Printf.sprintf "end %s;\n\n" name);
  buf_add b (Printf.sprintf "package body %s is\n" name);
  for i = 0 to n - 1 do
    buf_add b
      (Printf.sprintf "  function F%d (x : integer) return integer is\n  begin\n    return x * %d + C%d;\n  end F%d;\n"
         i (i + 2) i i)
  done;
  buf_add b (Printf.sprintf "end %s;\n" name);
  Buffer.contents b

(** A behavioral entity: a state machine over an enumeration with [states]
    states and a computation process of [exprs] expression statements. *)
let behavioral ~name ~states ~exprs =
  let b = Buffer.create 4096 in
  buf_add b (Printf.sprintf "entity %s is\n  port (clk : in bit; rst : in bit; dout : out integer);\nend %s;\n\n" name name);
  buf_add b (Printf.sprintf "architecture behav of %s is\n" name);
  buf_add b "  type state_t is (";
  for s = 0 to states - 1 do
    if s > 0 then buf_add b ", ";
    buf_add b (Printf.sprintf "S%d" s)
  done;
  buf_add b ");\n  signal state : state_t := S0;\n  signal acc : integer := 0;\n";
  buf_add b "begin\n";
  buf_add b "  fsm : process (clk)\n  begin\n    if clk'event and clk = '1' then\n      if rst = '1' then\n        state <= S0;\n      else\n        case state is\n";
  for s = 0 to states - 1 do
    buf_add b
      (Printf.sprintf "          when S%d => state <= S%d;\n" s ((s + 1) mod states))
  done;
  buf_add b "        end case;\n      end if;\n    end if;\n  end process;\n";
  buf_add b "  compute : process (state)\n    variable t : integer := 0;\n  begin\n";
  for i = 0 to exprs - 1 do
    buf_add b
      (Printf.sprintf "    t := (t + %d) * 3 mod 9973 + %d - (t / 7);\n" (i + 1) (i * 5 + 2))
  done;
  buf_add b "    acc <= t;\n  end process;\n  dout <= acc;\n";
  buf_add b "end behav;\n";
  Buffer.contents b

(** A leaf gate entity used by structural netlists. *)
let gate_entity ~name =
  Printf.sprintf
    "entity %s is\n  port (a, b : in bit; y : out bit);\nend %s;\narchitecture rtl of %s is\nbegin\n  y <= a and b after 1 ns;\nend rtl;\n"
    name name name

(** A structural netlist instantiating [instances] copies of GATE in a
    chain. *)
let structural ~name ~instances =
  let b = Buffer.create 4096 in
  buf_add b (gate_entity ~name:"GATE");
  buf_add b "\n";
  buf_add b (Printf.sprintf "entity %s is\n  port (x : in bit; y : out bit);\nend %s;\n\n" name name);
  buf_add b (Printf.sprintf "architecture net of %s is\n" name);
  buf_add b "  component GATE\n    port (a, b : in bit; y : out bit);\n  end component;\n";
  for i = 0 to instances do
    buf_add b (Printf.sprintf "  signal w%d : bit;\n" i)
  done;
  buf_add b "begin\n  w0 <= x;\n";
  for i = 1 to instances do
    buf_add b (Printf.sprintf "  g%d : GATE port map (a => w%d, b => w%d, y => w%d);\n" i (i - 1) (i - 1) i)
  done;
  buf_add b (Printf.sprintf "  y <= w%d;\n" instances);
  buf_add b "end net;\n";
  Buffer.contents b

(** Expression-heavy source: [n] constant declarations with rich arithmetic
    (exercising the cascade / ABL-CASCADE experiment). *)
let expression_heavy ~n =
  let b = Buffer.create 4096 in
  buf_add b "entity exprs is\nend exprs;\n\narchitecture a of exprs is\n";
  for i = 0 to n - 1 do
    buf_add b
      (Printf.sprintf
         "  constant K%d : integer := ((%d + 3) * 7 - %d / 2 + (%d mod 11)) * (2 ** 3) + abs (-%d);\n"
         i i (i + 1) (i * 13) i)
  done;
  buf_add b "begin\nend a;\n";
  Buffer.contents b

(** Entity/arch pairs for a library the configuration workload binds
    against: [n] alternative architectures of one entity. *)
let multi_arch_library ~archs =
  let b = Buffer.create 4096 in
  buf_add b "entity CELL is\n  port (a : in bit; y : out bit);\nend CELL;\n\n";
  for i = 0 to archs - 1 do
    buf_add b
      (Printf.sprintf
         "architecture A%d of CELL is\nbegin\n  y <= not a after %d ns;\nend A%d;\n\n" i
         (i + 1) i)
  done;
  Buffer.contents b

(** A self-clocking toggle-flip-flop divider chain of [stages] stages:
    the SIM-THROUGHPUT workload.  Every clock edge ripples through the
    chain at halving frequency, so event count scales with [stages] while
    the design stays a few dozen lines. *)
let divider_chain ~stages =
  Printf.sprintf
    {|
entity tff is
  port (clk : in bit; q : out bit);
end tff;
architecture behav of tff is
  signal state : bit := '0';
begin
  flip : process (clk)
  begin
    if clk'event and clk = '0' then
      state <= not state;
    end if;
  end process;
  q <= state;
end behav;

entity chain is end chain;
architecture t of chain is
  component tff
    port (clk : in bit; q : out bit);
  end component;
  type taps_t is array (0 to %d) of bit;
  signal taps : taps_t;
  signal clk : bit := '0';
begin
  first : tff port map (clk => clk, q => taps(0));
  g : for i in 1 to %d generate
    s : tff port map (clk => taps(i - 1), q => taps(i));
  end generate;
  clock : process
  begin
    clk <= not clk after 5 ns;
    wait for 5 ns;
  end process;
end t;
|}
    stages stages

(** A netlist of CELL instances plus a configuration unit binding each
    instance explicitly: the PERF-CONFIG workload whose compilation is
    dominated by reading foreign VIF.  [style] chooses between one spec per
    instance and a single [for all] spec — the latter is the paper's "very
    few source lines that cause large data structures ... to be read into
    memory" shape. *)
let config_workload ?(style = `Per_label) ~instances () =
  let netlist = Buffer.create 4096 in
  buf_add netlist "entity BOARD is\nend BOARD;\n\narchitecture net of BOARD is\n";
  buf_add netlist "  component CELL\n    port (a : in bit; y : out bit);\n  end component;\n";
  for i = 0 to instances do
    buf_add netlist (Printf.sprintf "  signal n%d : bit;\n" i)
  done;
  buf_add netlist "begin\n";
  for i = 1 to instances do
    buf_add netlist
      (Printf.sprintf "  c%d : CELL port map (a => n%d, y => n%d);\n" i (i - 1) i)
  done;
  buf_add netlist "end net;\n";
  let config = Buffer.create 1024 in
  buf_add config "configuration CFG of BOARD is\n  for net\n";
  (match style with
  | `Per_label ->
    for i = 1 to instances do
      buf_add config
        (Printf.sprintf "    for c%d : CELL use entity WORK.CELL(A%d);\n" i (i mod 3));
      buf_add config "    end for;\n"
    done
  | `All ->
    buf_add config "    for all : CELL use entity WORK.CELL(A1);\n    end for;\n");
  buf_add config "  end for;\nend CFG;\n";
  (Buffer.contents netlist, Buffer.contents config)
