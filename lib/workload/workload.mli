(** Synthetic VHDL workload generators — stand-ins for the paper's
    "hundreds of thousands of lines of customer's VHDL models" in the
    PERF-* experiments.  All generators produce code accepted by the
    compiler (enforced by test/test_workload.ml). *)

val package : name:string -> n:int -> string
(** A package of [n] constants and [n] small functions, with its body. *)

val behavioral : name:string -> states:int -> exprs:int -> string
(** A clocked state machine over an [states]-literal enumeration plus a
    computation process of [exprs] assignment statements. *)

val gate_entity : name:string -> string
(** A leaf and-gate entity/architecture pair. *)

val structural : name:string -> instances:int -> string
(** A netlist chaining [instances] GATE components. *)

val expression_heavy : n:int -> string
(** [n] constant declarations with rich arithmetic — the cascade
    stressor. *)

val multi_arch_library : archs:int -> string
(** One entity with [archs] alternative architectures (latest-compiled
    default-rule experiments). *)

val divider_chain : stages:int -> string
(** A self-clocking toggle-flip-flop divider chain (top entity CHAIN) —
    the simulator-throughput workload; event count scales with [stages]. *)

val config_workload :
  ?style:[ `Per_label | `All ] -> instances:int -> unit -> string * string
(** A netlist of CELL instances plus a configuration unit binding them:
    [`Per_label] emits one component configuration per instance, [`All] a
    single [for all] — the paper's "very few source lines that cause large
    data structures to be read" shape.  Returns (netlist, configuration). *)
