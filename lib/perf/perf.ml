(** The performance observatory: statistical benchmark sessions, a
    canonical report schema with persisted baselines, a noise-aware
    regression gate, and profile export from telemetry spans.

    The paper's evaluation is quantitative — lines/minute, phase
    percentages, configuration cost — and this library is what turns
    each re-measurement of those numbers into a comparable data point:

    - {!run} measures a thunk with warmup, N repetitions on the
      monotonic wall clock, GC/allocation deltas, telemetry counter
      deltas and phase self-times ({!Sample});
    - {!Report} serializes a list of samples plus machine/commit
      metadata to the [BENCH_report.json] schema, and reads it back;
    - {!Diff} compares two reports with a noise-aware significance test
      (median ratio gated by bootstrap-CI separation) — the regression
      gate behind [vhdlc bench --against];
    - {!Flame} converts the telemetry span tree into collapsed-stack
      ("folded") output that flamegraph.pl and speedscope load directly.

    All timing uses {!Telemetry.now_s} — monotonic wall clock, never
    [Sys.time] (CPU time), which undercounts IO and descheduling. *)

module Telemetry = Vhdl_telemetry.Telemetry
module Json = Telemetry.Json

let now = Telemetry.now_s

(* ------------------------------------------------------------------ *)
(* Statistics *)

module Stat = struct
  (* Medians and the median absolute deviation: the robust location/scale
     pair.  Benchmark repetition times are contaminated by scheduler and
     GC outliers; mean/stddev would let one bad repetition move the whole
     estimate, the median ignores it. *)

  let sorted a =
    let b = Array.copy a in
    Array.sort compare b;
    b

  let median_sorted b =
    let n = Array.length b in
    if n = 0 then nan
    else if n land 1 = 1 then b.(n / 2)
    else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0

  let median a = median_sorted (sorted a)

  let mean a =
    let n = Array.length a in
    if n = 0 then nan else Array.fold_left ( +. ) 0.0 a /. float_of_int n

  (** Median absolute deviation from the median (unscaled). *)
  let mad a =
    if Array.length a = 0 then nan
    else begin
      let m = median a in
      median (Array.map (fun x -> Float.abs (x -. m)) a)
    end

  (* A small deterministic xorshift PRNG: the bootstrap must not perturb
     (or depend on) the global [Random] state, and a fixed seed keeps
     reports reproducible. *)
  let bootstrap_ci ?(seed = 0x9e3779b9) ?(iters = 1000) ?(confidence = 0.95) a =
    let n = Array.length a in
    if n = 0 then (nan, nan)
    else if n = 1 then (a.(0), a.(0))
    else begin
      let state = ref (if seed = 0 then 1 else seed) in
      let rand_int bound =
        let s = !state in
        let s = s lxor (s lsl 13) in
        let s = s lxor (s lsr 17) in
        let s = s lxor (s lsl 5) in
        state := s land 0x3FFFFFFF;
        !state mod bound
      in
      let resample = Array.make n 0.0 in
      let medians =
        Array.init iters (fun _ ->
            for i = 0 to n - 1 do
              resample.(i) <- a.(rand_int n)
            done;
            median resample)
      in
      let ms = sorted medians in
      let alpha = (1.0 -. confidence) /. 2.0 in
      let idx p =
        let i = int_of_float (p *. float_of_int (iters - 1)) in
        ms.(max 0 (min (iters - 1) i))
      in
      (idx alpha, idx (1.0 -. alpha))
    end
end

(* ------------------------------------------------------------------ *)
(* GC deltas *)

module Gc_delta = struct
  (** How much memory work a measured section did: collection counts and
      words allocated are deltas over the section; [heap_words] and
      [top_heap_words] are the absolute heap size / process peak at its
      end (a peak has no meaningful delta). *)
  type t = {
    minor_collections : int;
    major_collections : int;
    compactions : int;
    allocated_words : float;
    heap_words : int;
    top_heap_words : int;
  }

  let zero =
    {
      minor_collections = 0;
      major_collections = 0;
      compactions = 0;
      allocated_words = 0.0;
      heap_words = 0;
      top_heap_words = 0;
    }

  let allocated (s : Gc.stat) = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

  let between (a : Gc.stat) (b : Gc.stat) =
    {
      minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      major_collections = b.Gc.major_collections - a.Gc.major_collections;
      compactions = b.Gc.compactions - a.Gc.compactions;
      allocated_words = allocated b -. allocated a;
      heap_words = b.Gc.heap_words;
      top_heap_words = b.Gc.top_heap_words;
    }

  let measure f =
    let a = Gc.quick_stat () in
    f ();
    between a (Gc.quick_stat ())
end

(* ------------------------------------------------------------------ *)
(* Samples *)

module Sample = struct
  (** One measured experiment: the repetition times plus everything the
      run racked up — GC work, telemetry counter deltas, phase
      self-times, and derived rate metrics (lines/minute, attrs/s, ...). *)
  type t = {
    s_name : string;
    s_warmup : int;
    s_times : float array; (* seconds per repetition, monotonic wall clock *)
    s_allocs : float array; (* words allocated per repetition *)
    s_gc : Gc_delta.t; (* over all measured repetitions *)
    s_counters : (string * int) list; (* telemetry counter deltas, name order *)
    s_phases : (string * float) list; (* phase self-time seconds *)
    s_metrics : (string * float) list; (* derived rates, caller-defined *)
  }

  let reps s = Array.length s.s_times
  let median s = Stat.median s.s_times
  let mad s = Stat.mad s.s_times
  let ci s = Stat.bootstrap_ci s.s_times

  (** Median words allocated per repetition (nan when the sample predates
      allocation capture — old baselines load with [s_allocs = [||]]). *)
  let alloc_median s =
    if Array.length s.s_allocs = 0 then nan else Stat.median s.s_allocs

  let alloc_ci s = Stat.bootstrap_ci s.s_allocs

  (** Median bytes allocated per repetition. *)
  let alloc_bytes_median s =
    alloc_median s *. float_of_int Telemetry.bytes_per_word

  (** Counter delta per second of median repetition — the tokens/s,
      attrs/s, delta-cycles/s figures of the scaling curves. *)
  let rate s counter =
    match List.assoc_opt counter s.s_counters with
    | None -> None
    | Some total ->
      let m = median s in
      let n = reps s in
      if n = 0 || not (m > 0.0) then None
      else Some (float_of_int total /. float_of_int n /. m)

  let with_metrics s metrics = { s with s_metrics = metrics }
end

(* ------------------------------------------------------------------ *)
(* The perturbation hook (a test seam)

   VHDLC_PERF_PERTURB="MS" busy-waits an extra MS milliseconds inside
   every measured repetition; "NAME:MS" only perturbs experiments whose
   name contains NAME.  This is how the regression gate is tested end to
   end — an injected artificial slowdown in one experiment must flip
   [vhdlc bench --against] to a non-zero exit — without patching the
   compiler. *)

let perturb_env = "VHDLC_PERF_PERTURB"

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let perturb_s ~name =
  match Sys.getenv_opt perturb_env with
  | None -> 0.0
  | Some v ->
    let target, ms =
      match String.rindex_opt v ':' with
      | Some i -> (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
      | None -> ("", v)
    in
    if target = "" || contains ~sub:target name then
      Option.value (float_of_string_opt ms) ~default:0.0 /. 1000.0
    else 0.0

(* busy-wait on the monotonic clock: [Unix.sleepf] would be invisible to
   a CPU clock, and the whole point of this hook is to be visible to the
   wall clock the harness measures with *)
let spin seconds =
  let t0 = now () in
  while now () -. t0 < seconds do
    ()
  done

(* The allocation twin of VHDLC_PERF_PERTURB: "BYTES" allocates an extra
   BYTES bytes in every measured repetition, "NAME:BYTES" only in
   experiments whose name contains NAME.  This is how the alloc half of
   the regression gate is tested end to end — a planted 2x bytes/compile
   blow-up must flip [vhdlc bench --against] to a non-zero exit. *)

let perturb_alloc_env = "VHDLC_PERF_PERTURB_ALLOC"

let perturb_alloc_b ~name =
  match Sys.getenv_opt perturb_alloc_env with
  | None -> 0
  | Some v ->
    let target, bytes =
      match String.rindex_opt v ':' with
      | Some i -> (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))
      | None -> ("", v)
    in
    if target = "" || contains ~sub:target name then
      max 0 (Option.value (int_of_string_opt bytes) ~default:0)
    else 0

(* visible to the GC allocation counters whether or not the block
   survives; opaque_identity keeps flambda-style optimizers from
   deleting the dead allocation *)
let alloc_ballast bytes =
  if bytes > 0 then ignore (Sys.opaque_identity (Bytes.create bytes))

(* ------------------------------------------------------------------ *)
(* The session runner *)

(** [run ~name f] measures [f]: [warmup] unrecorded calls, then up to
    [repeats] timed repetitions (stopping early once [quota_s] seconds of
    measurement are spent, never below one repetition).  Telemetry
    counters are snapshotted around the measured portion, so
    [s_counters] attributes work to this experiment only; [phases]
    (read after the last repetition) supplies the phase self-times. *)
let run ?(warmup = 1) ?(repeats = 5) ?quota_s ?phases ~name f =
  let extra = perturb_s ~name in
  let extra_b = perturb_alloc_b ~name in
  let call () =
    f ();
    if extra > 0.0 then spin extra;
    alloc_ballast extra_b
  in
  for _ = 1 to warmup do
    call ()
  done;
  let snap = Telemetry.snapshot () in
  let gc0 = Gc.quick_stat () in
  let times = ref [] in
  let allocs = ref [] in
  let t_begin = now () in
  let n = ref 0 in
  let within_quota () =
    match quota_s with None -> true | Some q -> !n = 0 || now () -. t_begin < q
  in
  while !n < max 1 repeats && within_quota () do
    let t0 = now () in
    let a0 = Telemetry.allocated_words_now () in
    call ();
    (* the counter read itself allocates a tuple, charged to the *next*
       repetition's delta — a few words against millions, not worth a
       correction term *)
    let a1 = Telemetry.allocated_words_now () in
    times := (now () -. t0) :: !times;
    allocs := Float.max 0.0 (a1 -. a0) :: !allocs;
    incr n
  done;
  let gc = Gc_delta.between gc0 (Gc.quick_stat ()) in
  {
    Sample.s_name = name;
    s_warmup = warmup;
    s_times = Array.of_list (List.rev !times);
    s_allocs = Array.of_list (List.rev !allocs);
    s_gc = gc;
    s_counters = Telemetry.delta snap;
    s_phases = (match phases with Some f -> f () | None -> []);
    s_metrics = [];
  }

(* ------------------------------------------------------------------ *)
(* A small JSON reader (for loading persisted baselines).  The writer
   side lives in [Telemetry.Json]; this is its inverse, tolerant enough
   for the schema we emit. *)

module Json_in = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : (t, string) result =
    let pos = ref 0 in
    let len = String.length s in
    let peek () = if !pos < len then Some s.[!pos] else None in
    let next () =
      if !pos >= len then raise (Bad "unexpected end of JSON");
      let c = s.[!pos] in
      incr pos;
      c
    in
    let skip_ws () =
      while
        !pos < len
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let lit word v =
      String.iter (fun c -> if next () <> c then raise (Bad "bad literal")) word;
      v
    in
    let string_body () =
      if next () <> '"' then raise (Bad "expected string");
      let buf = Buffer.create 16 in
      let rec go () =
        match next () with
        | '"' -> Buffer.contents buf
        | '\\' ->
          (match next () with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 > len then raise (Bad "bad \\u escape");
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
            | _ -> Buffer.add_char buf '?')
          | c -> Buffer.add_char buf c);
          go ()
        | c ->
          Buffer.add_char buf c;
          go ()
      in
      go ()
    in
    let number () =
      let start = !pos in
      while
        !pos < len
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr pos
      done;
      if !pos = start then raise (Bad "bad JSON value");
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> raise (Bad "bad number")
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> Str (string_body ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | _ -> number ()
    and arr () =
      ignore (next ());
      skip_ws ();
      if peek () = Some ']' then begin
        ignore (next ());
        Arr []
      end
      else
        let rec items acc =
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> items (v :: acc)
          | ']' -> Arr (List.rev (v :: acc))
          | _ -> raise (Bad "bad array")
        in
        items []
    and obj () =
      ignore (next ());
      skip_ws ();
      if peek () = Some '}' then begin
        ignore (next ());
        Obj []
      end
      else
        let rec fields acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          if next () <> ':' then raise (Bad "expected colon");
          let v = value () in
          skip_ws ();
          match next () with
          | ',' -> fields ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | _ -> raise (Bad "bad object")
        in
        fields []
    in
    match
      let v = value () in
      skip_ws ();
      if !pos <> len then raise (Bad "trailing garbage");
      v
    with
    | v -> Ok v
    | exception Bad msg -> Error msg

  let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None
  let to_str = function Str s -> Some s | _ -> None
  let to_num = function Num f -> Some f | _ -> None
  let to_int = function Num f -> Some (int_of_float f) | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Reports *)

module Report = struct
  (** The canonical benchmark report: machine/commit metadata plus one
      entry per experiment.  This is the only shape the harness writes
      ([BENCH_report.json]) and the only shape the gate reads. *)
  type t = {
    r_schema : string;
    r_meta : (string * string) list;
    r_samples : Sample.t list;
  }

  let schema = "vhdl-bench/1"

  (* --- machine metadata, all best-effort --- *)

  (* not Unix_compat.read_file: that sizes the read with
     in_channel_length, which is 0 for /proc files — stream to EOF
     instead *)
  let read_file_opt path =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let b = Buffer.create 4096 in
          let chunk = Bytes.create 4096 in
          let rec loop () =
            let n = input ic chunk 0 (Bytes.length chunk) in
            if n > 0 then begin
              Buffer.add_subbytes b chunk 0 n;
              loop ()
            end
          in
          loop ();
          Some (Buffer.contents b))
    with _ -> None

  (* resolve .git/HEAD by hand: the harness must not shell out *)
  let git_commit () =
    match read_file_opt ".git/HEAD" with
    | None -> "unknown"
    | Some head -> (
      let head = String.trim head in
      if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
        let r = String.sub head 5 (String.length head - 5) in
        match read_file_opt (Filename.concat ".git" r) with
        | Some hash -> String.trim hash
        | None -> (
          (* the ref may live in packed-refs *)
          match read_file_opt ".git/packed-refs" with
          | None -> "unknown"
          | Some packed -> (
            let matching =
              String.split_on_char '\n' packed
              |> List.find_opt (fun line ->
                     match String.index_opt line ' ' with
                     | Some i ->
                       String.sub line (i + 1) (String.length line - i - 1) = r
                     | None -> false)
            in
            match matching with
            | Some line -> String.sub line 0 (String.index line ' ')
            | None -> "unknown"))
      end
      else head)

  (* the stack limit is the ulimit that actually bites a recursive
     evaluator; /proc is Linux-only, hence best-effort *)
  let stack_limit () =
    match read_file_opt "/proc/self/limits" with
    | None -> "unknown"
    | Some limits -> (
      let line =
        String.split_on_char '\n' limits
        |> List.find_opt (fun l -> contains ~sub:"Max stack size" l)
      in
      match line with
      | None -> "unknown"
      | Some l -> (
        match
          String.split_on_char ' ' l |> List.filter (fun w -> w <> "")
        with
        | _ :: _ :: _ :: soft :: _ -> soft
        | _ -> "unknown"))

  let iso8601 t =
    let tm = Unix.gmtime t in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec

  let machine_meta () =
    [
      ("created", iso8601 (Unix.gettimeofday ()));
      ("hostname", (try Unix.gethostname () with _ -> "unknown"));
      ("os", Sys.os_type);
      ("ocaml", Sys.ocaml_version);
      ("word_size", string_of_int Sys.word_size);
      ("commit", git_commit ());
      ("stack_limit", stack_limit ());
    ]

  let make ?(meta = []) samples =
    { r_schema = schema; r_meta = machine_meta () @ meta; r_samples = samples }

  (* --- writer --- *)

  let sample_json (s : Sample.t) =
    let lo, hi = Sample.ci s in
    let gc = s.Sample.s_gc in
    Json.obj
      [
        ("name", Json.str s.Sample.s_name);
        ("warmup", Json.int s.Sample.s_warmup);
        ("reps", Json.int (Sample.reps s));
        ( "times_s",
          Json.arr (Array.to_list (Array.map Json.float s.Sample.s_times)) );
        ("median_s", Json.float (Sample.median s));
        ("mad_s", Json.float (Sample.mad s));
        ("ci_lo_s", Json.float lo);
        ("ci_hi_s", Json.float hi);
        ( "allocs_w",
          Json.arr (Array.to_list (Array.map Json.float s.Sample.s_allocs)) );
        ("alloc_b_per_rep", Json.float (Sample.alloc_bytes_median s));
        ( "gc",
          Json.obj
            [
              ("minor_collections", Json.int gc.Gc_delta.minor_collections);
              ("major_collections", Json.int gc.Gc_delta.major_collections);
              ("compactions", Json.int gc.Gc_delta.compactions);
              ("allocated_words", Json.float gc.Gc_delta.allocated_words);
              ("heap_words", Json.int gc.Gc_delta.heap_words);
              ("top_heap_words", Json.int gc.Gc_delta.top_heap_words);
            ] );
        ( "counters",
          Json.obj (List.map (fun (k, v) -> (k, Json.int v)) s.Sample.s_counters) );
        ( "phases",
          Json.obj (List.map (fun (k, v) -> (k, Json.float v)) s.Sample.s_phases) );
        ( "metrics",
          Json.obj (List.map (fun (k, v) -> (k, Json.float v)) s.Sample.s_metrics) );
      ]

  let to_json r =
    Json.obj
      [
        ("schema", Json.str r.r_schema);
        ("meta", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) r.r_meta));
        ("experiments", Json.arr (List.map sample_json r.r_samples));
      ]

  (* --- reader --- *)

  let ( let* ) o f = match o with Some v -> f v | None -> None

  let fields_of = function
    | Json_in.Obj fields -> fields
    | _ -> []

  let sample_of_json j =
    let* name = Option.bind (Json_in.mem "name" j) Json_in.to_str in
    let* times = Json_in.mem "times_s" j in
    let* times =
      match times with
      | Json_in.Arr items ->
        let nums = List.filter_map Json_in.to_num items in
        if List.length nums = List.length items then Some (Array.of_list nums)
        else None
      | _ -> None
    in
    let warmup =
      Option.value (Option.bind (Json_in.mem "warmup" j) Json_in.to_int) ~default:0
    in
    (* absent in pre-alloc baselines: load as [||], the diff then skips
       the alloc row for that experiment rather than failing the parse *)
    let allocs =
      match Json_in.mem "allocs_w" j with
      | Some (Json_in.Arr items) ->
        Array.of_list (List.filter_map Json_in.to_num items)
      | _ -> [||]
    in
    let gc =
      match Json_in.mem "gc" j with
      | None -> Gc_delta.zero
      | Some g ->
        let i k d = Option.value (Option.bind (Json_in.mem k g) Json_in.to_int) ~default:d in
        let f k d = Option.value (Option.bind (Json_in.mem k g) Json_in.to_num) ~default:d in
        {
          Gc_delta.minor_collections = i "minor_collections" 0;
          major_collections = i "major_collections" 0;
          compactions = i "compactions" 0;
          allocated_words = f "allocated_words" 0.0;
          heap_words = i "heap_words" 0;
          top_heap_words = i "top_heap_words" 0;
        }
    in
    let num_fields key =
      match Json_in.mem key j with
      | Some o ->
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (Json_in.to_num v))
          (fields_of o)
      | None -> []
    in
    let int_fields key = List.map (fun (k, v) -> (k, int_of_float v)) (num_fields key) in
    Some
      {
        Sample.s_name = name;
        s_warmup = warmup;
        s_times = times;
        s_allocs = allocs;
        s_gc = gc;
        s_counters = int_fields "counters";
        s_phases = num_fields "phases";
        s_metrics = num_fields "metrics";
      }

  let of_json text =
    match Json_in.parse text with
    | Error msg -> Error ("bad JSON: " ^ msg)
    | Ok j -> (
      match Option.bind (Json_in.mem "schema" j) Json_in.to_str with
      | Some s when s = schema -> (
        let meta =
          match Json_in.mem "meta" j with
          | Some m ->
            List.filter_map
              (fun (k, v) -> Option.map (fun s -> (k, s)) (Json_in.to_str v))
              (fields_of m)
          | None -> []
        in
        match Json_in.mem "experiments" j with
        | Some (Json_in.Arr items) -> (
          let samples = List.filter_map sample_of_json items in
          if List.length samples = List.length items then
            Ok { r_schema = schema; r_meta = meta; r_samples = samples }
          else Error "malformed experiment entry")
        | _ -> Error "missing experiments array")
      | Some other -> Error ("unsupported schema " ^ other)
      | None -> Error "missing schema field")

  let save path r = Vhdl_util.Unix_compat.write_file path (to_json r)

  let load path =
    match read_file_opt path with
    | None -> Error (path ^ ": cannot read")
    | Some text -> (
      match of_json text with
      | Ok r -> Ok r
      | Error msg -> Error (path ^ ": " ^ msg))
end

(* ------------------------------------------------------------------ *)
(* Baseline diffing: the regression gate *)

module Diff = struct
  type verdict = Regression | Improvement | Unchanged | Added | Removed

  type row = {
    d_name : string;
    d_base : float; (* baseline median seconds (nan when Added) *)
    d_cur : float; (* current median seconds (nan when Removed) *)
    d_ratio : float; (* cur / base (nan when either side missing) *)
    d_verdict : verdict;
  }

  (* Noise-aware significance: a change only counts when the median
     ratio clears [threshold] AND the bootstrap confidence intervals of
     the two medians do not overlap.  The ratio test supplies the
     practical floor ("we don't care below 25%"), the CI test the
     statistical one ("and it must exceed the run-to-run noise") — a
     2x slowdown with tight reps trips both, sub-noise jitter overlaps
     the intervals and is ignored no matter the ratio. *)
  let verdict_of_stats ~threshold ~base:(bm, (blo, bhi)) ~cur:(cm, (clo, chi)) =
    let disjoint_above = clo > bhi in
    let disjoint_below = chi < blo in
    if cm > bm *. (1.0 +. threshold) && disjoint_above then Regression
    else if cm < bm /. (1.0 +. threshold) && disjoint_below then Improvement
    else Unchanged

  let verdict ~threshold (base : Sample.t) (cur : Sample.t) =
    verdict_of_stats ~threshold
      ~base:(Sample.median base, Sample.ci base)
      ~cur:(Sample.median cur, Sample.ci cur)

  (* Allocation rows ride the same row type with a marker suffix; their
     d_base/d_cur are bytes per repetition, and [pp] formats them as
     such.  The default alloc threshold is tighter than the time one:
     repetition-to-repetition allocation is near-deterministic (no
     scheduler in the way), so 50% is already far above the noise while
     a planted 2x blow-up clears it with room to spare. *)
  let alloc_suffix = " [alloc]"

  let is_alloc_row r =
    let n = String.length r.d_name and l = String.length alloc_suffix in
    n >= l && String.sub r.d_name (n - l) l = alloc_suffix

  let alloc_row ~alloc_threshold ~name (base : Sample.t) (cur : Sample.t) =
    if Array.length base.Sample.s_allocs = 0 || Array.length cur.Sample.s_allocs = 0
    then None (* one side predates allocation capture: nothing to gate *)
    else begin
      let bpw = float_of_int Telemetry.bytes_per_word in
      let bm = Sample.alloc_median base and cm = Sample.alloc_median cur in
      Some
        {
          d_name = name ^ alloc_suffix;
          d_base = bm *. bpw;
          d_cur = cm *. bpw;
          d_ratio = (if bm > 0.0 then cm /. bm else nan);
          d_verdict =
            verdict_of_stats ~threshold:alloc_threshold
              ~base:(bm, Sample.alloc_ci base)
              ~cur:(cm, Sample.alloc_ci cur);
        }
    end

  let compare_reports ?(threshold = 0.25) ?(alloc_threshold = 0.5)
      ~(baseline : Report.t) ~(current : Report.t) () =
    let base_by_name =
      List.map (fun (s : Sample.t) -> (s.Sample.s_name, s)) baseline.Report.r_samples
    in
    let cur_names =
      List.map (fun (s : Sample.t) -> s.Sample.s_name) current.Report.r_samples
    in
    let rows =
      List.concat_map
        (fun (cur : Sample.t) ->
          let name = cur.Sample.s_name in
          match List.assoc_opt name base_by_name with
          | None ->
            [
              {
                d_name = name;
                d_base = nan;
                d_cur = Sample.median cur;
                d_ratio = nan;
                d_verdict = Added;
              };
            ]
          | Some base ->
            let bm = Sample.median base and cm = Sample.median cur in
            {
              d_name = name;
              d_base = bm;
              d_cur = cm;
              d_ratio = (if bm > 0.0 then cm /. bm else nan);
              d_verdict = verdict ~threshold base cur;
            }
            :: Option.to_list (alloc_row ~alloc_threshold ~name base cur))
        current.Report.r_samples
    in
    let removed =
      List.filter_map
        (fun (name, (base : Sample.t)) ->
          if List.mem name cur_names then None
          else
            Some
              {
                d_name = name;
                d_base = Sample.median base;
                d_cur = nan;
                d_ratio = nan;
                d_verdict = Removed;
              })
        base_by_name
    in
    rows @ removed

  (** Same gate over raw named series (seconds) instead of persisted
      reports — what `vhdlc analyze --against` feeds with per-request
      latency and per-phase samples extracted from two event logs.  The
      significance rule is identical to {!compare_reports}: median ratio
      over [threshold] {e and} disjoint bootstrap CIs.  A side with
      fewer than [min_samples] (default 3) observations has no
      defensible CI, so the row is [Unchanged] rather than a verdict
      built on one or two points. *)
  let compare_series ?(threshold = 0.25) ?(min_samples = 3)
      ~(base : (string * float array) list)
      ~(cur : (string * float array) list) () =
    let median vs = if Array.length vs = 0 then nan else Stat.median vs in
    let stats vs = (Stat.median vs, Stat.bootstrap_ci vs) in
    let cur_names = List.map fst cur in
    let rows =
      List.map
        (fun (name, cvs) ->
          match List.assoc_opt name base with
          | None ->
            {
              d_name = name;
              d_base = nan;
              d_cur = median cvs;
              d_ratio = nan;
              d_verdict = Added;
            }
          | Some bvs ->
            let bm = median bvs and cm = median cvs in
            let verdict =
              if Array.length bvs < min_samples || Array.length cvs < min_samples
              then Unchanged
              else verdict_of_stats ~threshold ~base:(stats bvs) ~cur:(stats cvs)
            in
            {
              d_name = name;
              d_base = bm;
              d_cur = cm;
              d_ratio = (if bm > 0.0 then cm /. bm else nan);
              d_verdict = verdict;
            })
        cur
    in
    let removed =
      List.filter_map
        (fun (name, bvs) ->
          if List.mem name cur_names then None
          else
            Some
              {
                d_name = name;
                d_base = median bvs;
                d_cur = nan;
                d_ratio = nan;
                d_verdict = Removed;
              })
        base
    in
    rows @ removed

  let regressions rows = List.filter (fun r -> r.d_verdict = Regression) rows

  let verdict_name = function
    | Regression -> "REGRESSION"
    | Improvement -> "improvement"
    | Unchanged -> "unchanged"
    | Added -> "added"
    | Removed -> "removed"

  let pp_seconds fmt s =
    if Float.is_nan s then Format.fprintf fmt "%10s" "-"
    else if s >= 1.0 then Format.fprintf fmt "%9.3fs" s
    else if s >= 1e-3 then Format.fprintf fmt "%8.2fms" (s *. 1e3)
    else Format.fprintf fmt "%8.1fus" (s *. 1e6)

  let pp_bytes fmt b =
    if Float.is_nan b then Format.fprintf fmt "%10s" "-"
    else if b >= 1048576.0 then Format.fprintf fmt "%8.2fMB" (b /. 1048576.0)
    else if b >= 1024.0 then Format.fprintf fmt "%8.2fkB" (b /. 1024.0)
    else Format.fprintf fmt "%9.0fB" b

  let pp fmt rows =
    Format.fprintf fmt "@[<v>%-36s %10s %10s %8s  %s@,"
      "experiment" "baseline" "current" "ratio" "verdict";
    List.iter
      (fun r ->
        let pp_value = if is_alloc_row r then pp_bytes else pp_seconds in
        Format.fprintf fmt "%-36s %a %a %7s  %s@," r.d_name pp_value r.d_base
          pp_value r.d_cur
          (if Float.is_nan r.d_ratio then "-"
           else Printf.sprintf "%.2fx" r.d_ratio)
          (verdict_name r.d_verdict))
      rows;
    Format.fprintf fmt "@]"
end

(* ------------------------------------------------------------------ *)
(* Collapsed-stack export *)

module Flame = struct
  (* The telemetry span list is flat (completion order); nesting is
     implied by interval containment, which the single-threaded span
     stack guarantees.  Rebuilding the stack is one scan over the spans
     in start order: a frame is popped as soon as a span falls outside
     it, a span's folded path is the names on the stack under it, and a
     frame's self time is its duration minus its direct children's. *)

  type frame = {
    fr_start : float;
    fr_end : float;
    fr_alloc : float; (* words allocated while open, children included *)
    fr_path : string list; (* innermost first *)
    mutable fr_child : float; (* seconds spent in direct children *)
    mutable fr_child_aw : float; (* words allocated by direct children *)
  }

  let eps = 1e-9

  (* (reversed path, self seconds, self allocated words) per span, in
     visit order.  Allocation self-attribution is the same subtraction
     as time: a span's total minus its direct children's totals. *)
  let annotate (spans : Telemetry.span list) =
    let spans =
      List.sort
        (fun (a : Telemetry.span) (b : Telemetry.span) ->
          match compare a.Telemetry.sp_start b.Telemetry.sp_start with
          | 0 -> compare b.Telemetry.sp_dur a.Telemetry.sp_dur (* parents first *)
          | c -> c)
        spans
    in
    let stack = ref [] in
    let finished = ref [] in
    let contains fr s e = fr.fr_start <= s +. eps && e <= fr.fr_end +. eps in
    List.iter
      (fun (sp : Telemetry.span) ->
        let s = sp.Telemetry.sp_start in
        let e = s +. sp.Telemetry.sp_dur in
        let rec pop () =
          match !stack with
          | top :: rest when not (contains top s e) ->
            stack := rest;
            pop ()
          | _ -> ()
        in
        pop ();
        let parent_path =
          match !stack with
          | parent :: _ ->
            parent.fr_child <- parent.fr_child +. sp.Telemetry.sp_dur;
            parent.fr_child_aw <- parent.fr_child_aw +. sp.Telemetry.sp_alloc_w;
            parent.fr_path
          | [] -> []
        in
        let fr =
          {
            fr_start = s;
            fr_end = e;
            fr_alloc = sp.Telemetry.sp_alloc_w;
            fr_path = sp.Telemetry.sp_name :: parent_path;
            fr_child = 0.0;
            fr_child_aw = 0.0;
          }
        in
        stack := fr :: !stack;
        finished := fr :: !finished)
      spans;
    List.rev_map
      (fun fr ->
        ( fr.fr_path,
          Float.max 0.0 (fr.fr_end -. fr.fr_start -. fr.fr_child),
          Float.max 0.0 (fr.fr_alloc -. fr.fr_child_aw) ))
      !finished

  let sum_by_name extract spans =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun ((path, _, _) as entry) ->
        match path with
        | name :: _ ->
          Hashtbl.replace tbl name
            (extract entry
            +. Option.value (Hashtbl.find_opt tbl name) ~default:0.0)
        | [] -> ())
      (annotate spans);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare

  (** Aggregated self time per span name, in seconds — the totals the
      folded output must add up to. *)
  let self_times spans = sum_by_name (fun (_, self, _) -> self) spans

  (** Aggregated self-allocated words per span name — the totals
      {!folded_alloc} conserves exactly. *)
  let self_allocs spans = sum_by_name (fun (_, _, aw) -> aw) spans

  let folded_by extract ~scale spans =
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun ((path, _, _) as entry) ->
        let key = String.concat ";" (List.rev path) in
        if not (Hashtbl.mem tbl key) then order := key :: !order;
        Hashtbl.replace tbl key
          (extract entry +. Option.value (Hashtbl.find_opt tbl key) ~default:0.0))
      (annotate spans);
    let buf = Buffer.create 256 in
    List.iter
      (fun key ->
        let count = int_of_float (Float.round (Hashtbl.find tbl key *. scale)) in
        if count > 0 then
          Buffer.add_string buf (Printf.sprintf "%s %d\n" key count))
      (List.rev !order);
    Buffer.contents buf

  (** Collapsed-stack ("folded") output: one line per distinct stack,
      [root;child;leaf <self-microseconds>], the input format of
      flamegraph.pl and of speedscope's "from text" importer.  Stacks
      whose self time rounds to zero microseconds are dropped. *)
  let folded spans = folded_by (fun (_, self, _) -> self) ~scale:1e6 spans

  (** The allocation flamegraph: same folded format with self-allocated
      {e bytes} as the counts.  Word counts are integral, so the per-line
      byte conversion is exact and the folded totals equal
      {!self_allocs} (times the word size) with no rounding drift;
      zero-allocation stacks are dropped. *)
  let folded_alloc spans =
    folded_by
      (fun (_, _, aw) -> aw)
      ~scale:(float_of_int Telemetry.bytes_per_word)
      spans
end
