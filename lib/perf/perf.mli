(** The performance observatory: statistical benchmark sessions, the
    canonical [BENCH_report.json] schema with persisted baselines, a
    noise-aware regression gate, and collapsed-stack profile export from
    telemetry spans.

    All timing uses the monotonic wall clock ({!Vhdl_telemetry.Telemetry.now_s}),
    never [Sys.time] (CPU time). *)

module Telemetry = Vhdl_telemetry.Telemetry

(** Robust statistics over repetition times. *)
module Stat : sig
  val median : float array -> float
  val mean : float array -> float

  val mad : float array -> float
  (** Median absolute deviation from the median (unscaled) — the robust
      spread estimate the significance test is built on. *)

  val bootstrap_ci :
    ?seed:int -> ?iters:int -> ?confidence:float -> float array -> float * float
  (** Percentile-bootstrap confidence interval of the median (default
      95%, 1000 resamples, deterministic seed). *)
end

(** GC/allocation deltas over a measured section. *)
module Gc_delta : sig
  type t = {
    minor_collections : int;
    major_collections : int;
    compactions : int;
    allocated_words : float;
    heap_words : int; (* live heap words at section end *)
    top_heap_words : int; (* process peak heap words *)
  }

  val zero : t
  val measure : (unit -> unit) -> t
end

(** One measured experiment. *)
module Sample : sig
  type t = {
    s_name : string;
    s_warmup : int;
    s_times : float array; (* seconds per repetition, monotonic wall clock *)
    s_allocs : float array; (* words allocated per repetition *)
    s_gc : Gc_delta.t; (* over all measured repetitions *)
    s_counters : (string * int) list; (* telemetry counter deltas *)
    s_phases : (string * float) list; (* phase self-time seconds *)
    s_metrics : (string * float) list; (* derived rates, caller-defined *)
  }

  val reps : t -> int
  val median : t -> float
  val mad : t -> float
  val ci : t -> float * float

  val alloc_median : t -> float
  (** Median words allocated per repetition; [nan] when the sample
      predates allocation capture ([s_allocs = [||]]). *)

  val alloc_ci : t -> float * float

  val alloc_bytes_median : t -> float
  (** {!alloc_median} in bytes — the bytes/compile figure the report
      persists and the gate compares. *)

  val rate : t -> string -> float option
  (** [rate s counter] is the counter's per-repetition delta divided by
      the median repetition time — tokens/s, attrs/s, delta-cycles/s. *)

  val with_metrics : t -> (string * float) list -> t
end

val perturb_env : string
(** ["VHDLC_PERF_PERTURB"] — the artificial-slowdown test seam: ["MS"]
    busy-waits MS extra milliseconds in every measured repetition,
    ["NAME:MS"] only in experiments whose name contains NAME.  This is
    how the regression gate's non-zero exit is exercised end to end. *)

val perturb_s : name:string -> float
(** Extra seconds the hook injects into experiment [name] (0 when the
    variable is unset or names a different experiment). *)

val perturb_alloc_env : string
(** ["VHDLC_PERF_PERTURB_ALLOC"] — the allocation twin of the slowdown
    seam: ["BYTES"] allocates BYTES extra bytes in every measured
    repetition, ["NAME:BYTES"] only in experiments whose name contains
    NAME.  Exercises the alloc half of the regression gate end to end. *)

val perturb_alloc_b : name:string -> int
(** Extra bytes the hook injects into experiment [name] (0 when unset or
    targeting a different experiment). *)

val run :
  ?warmup:int ->
  ?repeats:int ->
  ?quota_s:float ->
  ?phases:(unit -> (string * float) list) ->
  name:string ->
  (unit -> unit) ->
  Sample.t
(** [run ~name f] measures [f]: [warmup] (default 1) unrecorded calls,
    then up to [repeats] (default 5) timed repetitions on the monotonic
    wall clock, stopping early once [quota_s] seconds of measurement are
    spent (never below one repetition).  Telemetry counters are
    snapshotted around the measured portion; [phases] is read once after
    the last repetition (pass the compiler's phase-timer report). *)

(** Minimal JSON reader — the inverse of [Telemetry.Json], used to load
    persisted baselines. *)
module Json_in : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val mem : string -> t -> t option
  val to_str : t -> string option
  val to_num : t -> float option
  val to_int : t -> int option
end

(** The canonical benchmark report. *)
module Report : sig
  type t = {
    r_schema : string;
    r_meta : (string * string) list;
    r_samples : Sample.t list;
  }

  val schema : string
  (** ["vhdl-bench/1"]. *)

  val make : ?meta:(string * string) list -> Sample.t list -> t
  (** Attach machine metadata (created/hostname/os/ocaml/word size/git
      commit/stack ulimit, all best-effort) plus [meta] to the samples. *)

  val to_json : t -> string
  val of_json : string -> (t, string) result
  val save : string -> t -> unit
  val load : string -> (t, string) result
end

(** Baseline diffing: the regression gate behind [vhdlc bench --against]. *)
module Diff : sig
  type verdict = Regression | Improvement | Unchanged | Added | Removed

  type row = {
    d_name : string;
    d_base : float; (* baseline median seconds (nan when Added) *)
    d_cur : float; (* current median seconds (nan when Removed) *)
    d_ratio : float; (* cur / base *)
    d_verdict : verdict;
  }

  val alloc_suffix : string
  (** [" [alloc]"] — appended to the experiment name on allocation rows,
      whose [d_base]/[d_cur] are bytes per repetition, not seconds. *)

  val is_alloc_row : row -> bool

  val compare_reports :
    ?threshold:float ->
    ?alloc_threshold:float ->
    baseline:Report.t ->
    current:Report.t ->
    unit ->
    row list
  (** Match experiments by name and classify each.  A change is only
      significant when the median ratio clears [threshold] (default
      0.25, i.e. 25%) {e and} the bootstrap confidence intervals of the
      two medians are disjoint — so a 2x slowdown is flagged while
      sub-noise jitter is not, regardless of sample luck.

      When both sides carry per-repetition allocation samples, each
      experiment also yields a ["name [alloc]"] row gated the same way
      at [alloc_threshold] (default 0.5 — allocation is near-
      deterministic rep to rep, so 50% is far above noise while a
      planted 2x blow-up trips it).  Experiments whose baseline predates
      allocation capture get no alloc row. *)

  val compare_series :
    ?threshold:float ->
    ?min_samples:int ->
    base:(string * float array) list ->
    cur:(string * float array) list ->
    unit ->
    row list
  (** The same noise-aware gate over raw named series (values in
      seconds) instead of persisted reports — used by
      [vhdlc analyze --against] on per-request latency and per-phase
      samples from two event logs.  A side with fewer than
      [min_samples] (default 3) observations yields [Unchanged]. *)

  val regressions : row list -> row list
  val verdict_name : verdict -> string
  val pp : Format.formatter -> row list -> unit
end

(** Collapsed-stack ("folded") export of the telemetry span tree. *)
module Flame : sig
  val self_times : Telemetry.span list -> (string * float) list
  (** Aggregated self time (duration minus direct children) per span
      name, seconds, sorted by name. *)

  val self_allocs : Telemetry.span list -> (string * float) list
  (** Aggregated self-allocated words ([sp_alloc_w] minus direct
      children's) per span name, sorted by name. *)

  val folded : Telemetry.span list -> string
  (** One line per distinct stack, [root;child;leaf <self-us>] — the
      input format of flamegraph.pl and speedscope.  Lines whose self
      time rounds to zero microseconds are dropped, so the folded totals
      equal {!self_times} within rounding. *)

  val folded_alloc : Telemetry.span list -> string
  (** The allocation flamegraph: same folded format with self-allocated
      bytes as the counts.  Word counts are integral, so the folded
      totals equal {!self_allocs} (times the word size) {e exactly};
      zero-allocation stacks are dropped. *)
end
