(** Package STD.STANDARD: the predefined types, their literals, and the
    environment every design unit starts from (LRM 14.2).

    The paper's compiler reads STANDARD like any other package from the
    STD design library; here it is built-in, but it flows through the
    same [Env] and [Denot] machinery as user packages. *)

(** {1 Predefined types} *)

val boolean : Types.t
val bit : Types.t
val character : Types.t
val severity_level : Types.t
val integer : Types.t
val natural : Types.t
val positive : Types.t
val real : Types.t
val time : Types.t
val string_ty : Types.t
val bit_vector : Types.t

val all_types : (string * Types.t) list
(** Name -> type for every type STANDARD declares (subtypes excluded). *)

val time_units : (string * int) list
(** Physical units of TIME with their scale in femtoseconds (the primary
    unit, so TIME values span about 2.5 hours in a 63-bit int). *)

(** {1 The initial environment} *)

val env : unit -> Env.t
(** Everything STANDARD makes visible: types, subtypes, enumeration
    literals, and the units of TIME. *)

val enum_literal_bindings : Types.t -> (string * Denot.t) list
(** The literal bindings an enumeration type declaration introduces. *)

(** {1 Value conversions} *)

val string_value : string -> Value.t
(** An OCaml string as a STANDARD.STRING value (bounds 1 to n). *)

val value_string : Value.t -> string
(** Inverse of {!string_value}; non-character elements print as ['?']. *)

val bit_vector_value : string -> Value.t
(** A bit-string literal ("0101") as a BIT_VECTOR value. *)

val character_literals : string array
(** The 128 CHARACTER literal images, indexed by position. *)
