(** KIR traversals shared by the front end and the elaborator. *)

(** {1 Signal usage} *)

val signals_read_expr : Kir.expr -> Kir.sig_ref list
(** Signals an expression reads, in first-occurrence order — the implicit
    sensitivity of concurrent signal assignments and until-clauses. *)

val signals_read_exprs : Kir.expr list -> Kir.sig_ref list

val signals_read_expr_acc : Kir.sig_ref list -> Kir.expr -> Kir.sig_ref list
(** Accumulating form (reverse order, deduplicated) for callers folding
    over several expressions. *)

val driven_signals : Kir.stmt list -> Kir.sig_ref list
(** Root signals assigned anywhere in a process body.  The kernel creates
    one driver per (process, signal) pair (LRM 12). *)

(** {1 Elaboration-time substitution}

    Generics and unit constants are replaced by their per-instance values
    when the code is "linked" with the kernel. *)

type subst = {
  generic : int -> Value.t option;
  unit_const : string -> Value.t option;
}

val subst_expr : subst -> Kir.expr -> Kir.expr
val subst_stmt : subst -> Kir.stmt -> Kir.stmt
val subst_stmts : subst -> Kir.stmt list -> Kir.stmt list

(** {1 Shape queries} *)

val loop_depth : Kir.stmt list -> int
(** Maximum for-loop nesting depth: sizes the loop-variable stack of a
    frame (loop variables live at negative frame indices). *)

val has_wait : Kir.stmt list -> bool
(** Whether a body contains a wait statement (process legality: a process
    has either a sensitivity list or waits, never both). *)

val may_wait : Kir.stmt list -> bool
(** Conservative form of {!has_wait}: procedure calls count, since the
    callee may wait. *)

(** {1 Anonymous-label normalization} *)

val normalize_labels : Kir.concurrent list -> Kir.concurrent list
(** Rename the ['%']-prefixed gensym labels of anonymous concurrent
    statements positionally (["csa_1"], ["proc_2"], ... per prefix, in
    source order), recursing into blocks and generates.  Called when an
    architecture is assembled so compiled units never depend on attribute
    evaluation order. *)
