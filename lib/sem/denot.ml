(** Denotations: what a name may stand for.

    The applicative environment ({!Env}) maps identifiers to lists of
    denotations; LEF tokens carry denotations into the expression AG (the
    paper's token-value mechanism); overload resolution filters candidate
    lists. *)

type obj_class =
  | Cconstant
  | Cvariable
  | Csignal

(** Where the generated code finds the object's storage. *)
type slot =
  | Sl_frame of { level : int; index : int } (* variable/constant in a frame *)
  | Sl_signal of Kir.sig_ref
  | Sl_generic of int
  | Sl_static of Value.t (* folded constant *)
  | Sl_unit_const of string (* architecture constant, elaboration-time value *)

type param = {
  p_name : string;
  p_mode : Kir.arg_mode;
  p_class : obj_class; (* constant (default for in) / variable / signal *)
  p_ty : Types.t;
  p_default : Kir.expr option;
}

type subprog_sig = {
  ss_name : string; (* source name, original case-folded *)
  ss_mangled : string; (* unique qualified name used by KIR calls *)
  ss_kind : [ `Function | `Procedure ];
  ss_params : param list;
  ss_ret : Types.t option;
  ss_builtin : bool;
}

type t =
  | Dobject of {
      name : string;
      cls : obj_class;
      ty : Types.t;
      mode : Kir.arg_mode option; (* for ports/parameters *)
      slot : slot;
    }
  | Dtype of Types.t
  | Dsubtype of Types.t
  | Denum_lit of { ty : Types.t; pos : int; image : string }
  | Dsubprog of subprog_sig
  | Dcomponent of {
      name : string;
      generics : Kir.generic_decl list;
      ports : Kir.port_decl list;
    }
  | Dattr_decl of { name : string; ty : Types.t } (* user-defined attribute *)
  | Dattr_value of { of_name : string; attr : string; value : Value.t; ty : Types.t }
  | Dunit of { library : string; unit_name : string } (* entity/package name made visible *)
  | Dlibrary of string (* a design library made visible by a LIBRARY clause *)
  | Dlabel of string
  | Dphys_unit of { ty : Types.t; scale : int; image : string } (* ns, us, ... *)

let describe = function
  | Dobject { cls = Cconstant; _ } -> "constant"
  | Dobject { cls = Cvariable; _ } -> "variable"
  | Dobject { cls = Csignal; _ } -> "signal"
  | Dtype _ -> "type"
  | Dsubtype _ -> "subtype"
  | Denum_lit _ -> "enumeration literal"
  | Dsubprog { ss_kind = `Function; _ } -> "function"
  | Dsubprog { ss_kind = `Procedure; _ } -> "procedure"
  | Dcomponent _ -> "component"
  | Dattr_decl _ -> "attribute"
  | Dattr_value _ -> "attribute value"
  | Dunit _ -> "design unit"
  | Dlibrary _ -> "library"
  | Dlabel _ -> "label"
  | Dphys_unit _ -> "physical unit"

(** Overloadable denotations coexist under one name (LRM 10.3): subprograms
    and enumeration literals.  Everything else hides. *)
let overloadable = function
  | Dsubprog _ | Denum_lit _ -> true
  | Dobject _ | Dtype _ | Dsubtype _ | Dcomponent _ | Dattr_decl _ | Dattr_value _
  | Dunit _ | Dlibrary _ | Dlabel _ | Dphys_unit _ -> false

let type_of = function
  | Dobject { ty; _ } -> Some ty
  | Dtype ty | Dsubtype ty -> Some ty
  | Denum_lit { ty; _ } -> Some ty
  | Dsubprog { ss_ret; _ } -> ss_ret
  | Dattr_value { ty; _ } -> Some ty
  | Dphys_unit { ty; _ } -> Some ty
  | Dcomponent _ | Dattr_decl _ | Dunit _ | Dlibrary _ | Dlabel _ -> None
