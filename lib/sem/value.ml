(** Values: shared between static (compile-time) evaluation and the
    simulation kernel's runtime.

    Physical values (TIME) are kept in primary units — femtoseconds for
    STANDARD.TIME — so simulation arithmetic is exact integer arithmetic. *)

type dir = Types.dir =
  | To
  | Downto

type t =
  | Vint of int
  | Vfloat of float
  | Venum of int (* position number in the base enumeration *)
  | Vphys of int (* multiples of the primary unit *)
  | Varray of { bounds : int * dir * int; elems : t array }
  | Vrecord of (string * t) list
  | Vnull (* the null access value *)
  | Vaccess of t ref
      (* an allocated object (LRM 3.3).  The cell itself is the identity:
         access equality is physical equality of the ref.  Access values
         exist only in variables, never in signals or the VIF. *)

let vbool b = Venum (if b then 1 else 0) (* STANDARD.BOOLEAN: (FALSE, TRUE) *)

let truth = function
  | Venum 1 -> true
  | Venum 0 -> false
  | _ -> invalid_arg "Value.truth: not a boolean"

let as_int = function
  | Vint n -> n
  | Venum n -> n
  | Vphys n -> n
  | _ -> invalid_arg "Value.as_int"

let as_float = function
  | Vfloat x -> x
  | _ -> invalid_arg "Value.as_float"

(** Length of an index range. *)
let range_length (l, d, r) =
  match d with
  | To -> if r >= l then r - l + 1 else 0
  | Downto -> if l >= r then l - r + 1 else 0

(** Left-to-right index list of a range, in declaration order. *)
let range_indices (l, d, r) =
  match d with
  | To -> if r >= l then List.init (r - l + 1) (fun i -> l + i) else []
  | Downto -> if l >= r then List.init (l - r + 1) (fun i -> l - i) else []

(** Flat position of index [i] in an array with [bounds]. *)
let array_offset (l, d, r) i =
  let ok = match d with To -> i >= l && i <= r | Downto -> i <= l && i >= r in
  if not ok then None else Some (match d with To -> i - l | Downto -> l - i)

let array_get v i =
  match v with
  | Varray { bounds; elems } -> (
    match array_offset bounds i with
    | Some off -> Some elems.(off)
    | None -> None)
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vfloat x, Vfloat y -> x = y
  | Venum x, Venum y -> x = y
  | Vphys x, Vphys y -> x = y
  | Varray { elems = xs; _ }, Varray { elems = ys; _ } ->
    (* array equality in VHDL ignores bounds, comparing element sequences *)
    Array.length xs = Array.length ys
    && begin
         let rec go i = i >= Array.length xs || (equal xs.(i) ys.(i) && go (i + 1)) in
         go 0
       end
  | Vrecord xs, Vrecord ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (nx, vx) (ny, vy) -> nx = ny && equal vx vy) xs ys
  | Vnull, Vnull -> true
  | Vaccess x, Vaccess y -> x == y (* access equality is cell identity *)
  | (Vint _ | Vfloat _ | Venum _ | Vphys _ | Varray _ | Vrecord _ | Vnull | Vaccess _), _ ->
    false

(** Lexicographic comparison (arrays of scalars, per VHDL relational ops). *)
let rec compare_v a b =
  match (a, b) with
  | Vint x, Vint y -> compare x y
  | Vfloat x, Vfloat y -> compare x y
  | Venum x, Venum y -> compare x y
  | Vphys x, Vphys y -> compare x y
  | Varray { elems = xs; _ }, Varray { elems = ys; _ } ->
    let nx = Array.length xs and ny = Array.length ys in
    let rec go i =
      if i >= nx && i >= ny then 0
      else if i >= nx then -1
      else if i >= ny then 1
      else
        match compare_v xs.(i) ys.(i) with
        | 0 -> go (i + 1)
        | c -> c
    in
    go 0
  | Vrecord _, Vrecord _ -> invalid_arg "Value.compare_v: records are not ordered"
  | _ -> invalid_arg "Value.compare_v: type mismatch"

(** Default initial value of a type: leftmost value for scalars (per the
    LRM), element-wise defaults for composites. *)
let rec default_of (ty : Types.t) =
  match ty.Types.kind with
  | Types.Kint -> (
    match Types.range ty with
    | Some (l, _, _) -> Vint l
    | None -> Vint 0)
  | Types.Kfloat -> (
    match ty.Types.constr with
    | Some (Types.Cfloat_range (l, _, _)) -> Vfloat l
    | _ -> Vfloat 0.0)
  | Types.Kenum _ -> (
    match Types.range ty with
    | Some (l, _, _) -> Venum l
    | None -> Venum 0)
  | Types.Kphys _ -> (
    match Types.range ty with
    | Some (l, _, _) -> Vphys l
    | None -> Vphys 0)
  | Types.Karray { elem; _ } -> (
    match Types.range ty with
    | Some (l, d, r) ->
      Varray
        {
          bounds = (l, d, r);
          elems = Array.init (range_length (l, d, r)) (fun _ -> default_of elem);
        }
    | None -> Varray { bounds = (1, To, 0); elems = [||] })
  | Types.Krecord fields ->
    Vrecord (List.map (fun (name, fty) -> (name, default_of fty)) fields)
  | Types.Kaccess _ -> Vnull

(** Printable image, used by report/assert output and the tracer. *)
let rec image ?ty v =
  let enum_image pos =
    match ty with
    | Some t -> (
      match Types.enum_literals t with
      | Some lits when pos >= 0 && pos < Array.length lits -> lits.(pos)
      | _ -> string_of_int pos)
    | None -> string_of_int pos
  in
  match v with
  | Vint n -> string_of_int n
  | Vfloat x -> Printf.sprintf "%g" x
  | Venum pos -> enum_image pos
  | Vphys n -> (
    match ty with
    | Some { Types.kind = Types.Kphys ((u, _) :: _); _ } -> Printf.sprintf "%d %s" n u
    | _ -> string_of_int n)
  | Varray { elems; _ } ->
    let elem_ty = Option.bind ty Types.element_type in
    (* strings of characters print as string literals *)
    let all_chars =
      match elem_ty with
      | Some t -> (
        match Types.enum_literals t with
        | Some lits ->
          Array.for_all
            (function
              | Venum p -> p < Array.length lits && String.length lits.(p) = 3
              | _ -> false)
            elems
        | None -> false)
      | None -> false
    in
    if all_chars then
      "\""
      ^ String.concat ""
          (Array.to_list
             (Array.map
                (fun e ->
                  match (e, elem_ty) with
                  | Venum p, Some t -> (
                    match Types.enum_literals t with
                    | Some lits -> String.sub lits.(p) 1 1
                    | None -> "?")
                  | _ -> "?")
                elems))
      ^ "\""
    else
      "("
      ^ String.concat ", " (Array.to_list (Array.map (fun e -> image ?ty:elem_ty e) elems))
      ^ ")"
  | Vrecord fields ->
    "("
    ^ String.concat ", "
        (List.map
           (fun (name, v) ->
             let fty = Option.bind ty (fun t -> Types.field_type t name) in
             Printf.sprintf "%s => %s" name (image ?ty:fty v))
           fields)
    ^ ")"
  | Vnull -> "null"
  | Vaccess r -> Printf.sprintf "access(%s)" (image !r)

let pp fmt v = Format.pp_print_string fmt (image v)
