(** Static evaluation of KIR expressions.

    Used for constant declarations, type ranges, case choices, and generic
    defaults at analysis time, and again at elaboration time once generic
    actuals are known.  Signals and user subprogram calls are not static in
    this subset. *)

exception Not_static of string

let not_static fmt = Format.kasprintf (fun s -> raise (Not_static s)) fmt

type ctx = {
  generics : (int * Value.t) list; (* generic index -> value *)
  frame : Value.t option array list; (* innermost first; loop vars etc. *)
}

let empty = { generics = []; frame = [] }

let with_generics generics = { empty with generics }

let rec eval ctx (e : Kir.expr) : Value.t =
  match e with
  | Kir.Elit v -> v
  | Kir.Enull -> Value.Vnull
  | Kir.Enew _ -> not_static "allocators are evaluated at run time"
  | Kir.Ederef _ -> not_static "access dereference is not static"
  | Kir.Evar { level; index; name } -> (
    (* levels count outward from the innermost frame *)
    match List.nth_opt ctx.frame level with
    | Some frame when index < Array.length frame -> (
      match frame.(index) with
      | Some v -> v
      | None -> not_static "variable %s is not static" name)
    | _ -> not_static "variable %s is not static" name)
  | Kir.Egeneric { index; name } -> (
    match List.assoc_opt index ctx.generics with
    | Some v -> v
    | None -> not_static "generic %s is not yet bound" name)
  | Kir.Esig _ | Kir.Esig_attr _ -> not_static "signal values are not static"
  | Kir.Eunit_const { name } -> not_static "constant %s is not known until elaboration" name
  | Kir.Ebin (op, a, b) -> (
    (* short-circuit per LRM for and/or on booleans *)
    match op with
    | Kir.Band ->
      let va = eval ctx a in
      (match va with
      | Value.Venum 0 -> Value.vbool false
      | Value.Venum 1 -> eval ctx b
      | _ -> Value_ops.binop op va (eval ctx b))
    | Kir.Bor ->
      let va = eval ctx a in
      (match va with
      | Value.Venum 1 -> Value.vbool true
      | Value.Venum 0 -> eval ctx b
      | _ -> Value_ops.binop op va (eval ctx b))
    | _ -> Value_ops.binop op (eval ctx a) (eval ctx b))
  | Kir.Eun (op, a) -> Value_ops.unop op (eval ctx a)
  | Kir.Eindex (a, i) -> Value_ops.index (eval ctx a) (Value.as_int (eval ctx i))
  | Kir.Eslice (a, (l, d, r)) ->
    Value_ops.slice (eval ctx a)
      (Value.as_int (eval ctx l), d, Value.as_int (eval ctx r))
  | Kir.Efield (a, f) -> Value_ops.field (eval ctx a) f
  | Kir.Eaggregate (elements, shape) -> eval_aggregate ctx elements shape
  | Kir.Ecall (Kir.F_user f, _) -> not_static "call to %s is not static" f
  | Kir.Econvert (Kir.To_integer, a) -> (
    match eval ctx a with
    | Value.Vfloat x -> Value.Vint (int_of_float (Float.round x))
    | Value.Vint n -> Value.Vint n
    | _ -> not_static "integer conversion of a non-numeric value")
  | Kir.Econvert (Kir.To_float, a) -> (
    match eval ctx a with
    | Value.Vint n -> Value.Vfloat (float_of_int n)
    | Value.Vfloat x -> Value.Vfloat x
    | _ -> not_static "real conversion of a non-numeric value")
  | Kir.Econvert (Kir.To_pos, a) -> Value.Vint (Value.as_int (eval ctx a))
  | Kir.Econvert (Kir.To_val ty, a) ->
    let n = Value.as_int (eval ctx a) in
    let v =
      match ty.Types.kind with
      | Types.Kenum _ -> Value.Venum n
      | Types.Kphys _ -> Value.Vphys n
      | _ -> Value.Vint n
    in
    Value_ops.check_constraint ty v;
    v
  | Kir.Earray_attr (a, attr) -> (
    match eval ctx a with
    | Value.Varray { bounds = l, d, r; _ } ->
      let v =
        match attr with
        | Kir.At_left -> l
        | Kir.At_right -> r
        | Kir.At_high -> ( match d with Kir.To -> r | Kir.Downto -> l)
        | Kir.At_low -> ( match d with Kir.To -> l | Kir.Downto -> r)
        | Kir.At_length -> Value.range_length (l, d, r)
      in
      Value.Vint v
    | _ -> not_static "array attribute of a non-array value")

and eval_aggregate ctx elements shape =
  match shape with
  | Kir.Sh_record field_names ->
    let fields =
      List.map
        (fun name ->
          let value =
            List.find_map
              (function
                | Kir.Ag_field (f, e) when f = name -> Some (eval ctx e)
                | Kir.Ag_field _ -> None
                | Kir.Ag_pos _ -> None
                | Kir.Ag_named _ -> None
                | Kir.Ag_others e -> Some (eval ctx e))
              elements
          in
          match value with
          | Some v -> (name, v)
          | None -> not_static "record aggregate misses field %s" name)
        field_names
    in
    (* positional elements fill fields in order when no names are given *)
    let positional = List.filter_map (function Kir.Ag_pos e -> Some e | _ -> None) elements in
    if positional <> [] then
      Value.Vrecord
        (List.mapi
           (fun i name ->
             match List.nth_opt positional i with
             | Some e -> (name, eval ctx e)
             | None -> List.nth fields i)
           field_names)
    else Value.Vrecord fields
  | Kir.Sh_array bounds_opt ->
    let positional = List.filter_map (function Kir.Ag_pos e -> Some e | _ -> None) elements in
    let named = List.filter_map (function Kir.Ag_named (i, e) -> Some (i, e) | _ -> None) elements in
    let others = List.find_map (function Kir.Ag_others e -> Some e | _ -> None) elements in
    let bounds =
      match bounds_opt with
      | Some b -> b
      | None ->
        (* positional aggregate without context: index from 1 upward *)
        let n = List.length positional + List.length named in
        (1, Types.To, n)
    in
    let len = Value.range_length bounds in
    let elems = Array.make len None in
    List.iteri
      (fun k e -> if k < len then elems.(k) <- Some (eval ctx e))
      positional;
    List.iter
      (fun (i, e) ->
        match Value.array_offset bounds i with
        | Some off -> elems.(off) <- Some (eval ctx e)
        | None -> not_static "aggregate choice %d out of bounds" i)
      named;
    let filled =
      Array.map
        (fun slot ->
          match slot with
          | Some v -> v
          | None -> (
            match others with
            | Some e -> eval ctx e
            | None -> not_static "aggregate leaves elements undefined"))
        elems
    in
    Value.Varray { bounds; elems = filled }

(** Best-effort fold: literal when static, original expression otherwise. *)
let fold ctx e =
  match eval ctx e with
  | v -> Kir.Elit v
  | exception Not_static _ -> e
  | exception Value_ops.Runtime_error _ -> e

let eval_opt ctx e =
  match eval ctx e with
  | v -> Some v
  | exception Not_static _ -> None
  | exception Value_ops.Runtime_error _ -> None
