(** Runtime support: the predefined VHDL operations.

    This is the paper's "runtime support functions [that] perform all the
    predefined VHDL operations" — one of the four modules of the target
    virtual machine.  Both the constant folder ({!Const_eval}) and the
    simulation kernel evaluate KIR operators through this module. *)

exception Runtime_error of string
(** Raised by every operation on a dynamic error: division by zero,
    out-of-bounds index, constraint violation, shape mismatch. *)

(** {1 Integer arithmetic with VHDL semantics} *)

val vhdl_mod : int -> int -> int
(** LRM 7.2.4: the result has the sign of the divisor. *)

val vhdl_rem : int -> int -> int
(** LRM 7.2.4: the result has the sign of the dividend. *)

val int_pow : int -> int -> int
(** [int_pow base exp] by repeated squaring; negative exponents raise. *)

(** {1 Operator dispatch} *)

val binop : Kir.binop -> Value.t -> Value.t -> Value.t
(** Apply a binary operator: arithmetic, logical (on BOOLEAN/BIT and
    one-dimensional arrays thereof), ordering (lexicographic on arrays),
    equality, and concatenation. *)

val unop : Kir.unop -> Value.t -> Value.t

val concat : Value.t -> Value.t -> Value.t
(** Array concatenation; the result keeps the left operand's left bound
    and direction (LRM 7.2.3). *)

(** {1 Composite access} *)

val index : Value.t -> int -> Value.t
val slice : Value.t -> int * Value.dir * int -> Value.t
val field : Value.t -> string -> Value.t

(** {1 Functional update (assignment to parts of composites)} *)

val update_index : Value.t -> int -> Value.t -> Value.t
val update_slice : Value.t -> int * Value.dir * int -> Value.t -> Value.t
val update_field : Value.t -> string -> Value.t -> Value.t

(** {1 Constraint checks} *)

val check_constraint : Types.t -> Value.t -> unit
(** Range check on assignment (LRM 3); raises {!Runtime_error} when the
    value lies outside the subtype's constraint. *)
