(** VHDL type descriptors.

    VHDL (like Ada) has name equivalence: two types are compatible iff they
    have the same *base type*.  Base types are identified by their fully
    qualified name (e.g. ["STD.STANDARD.INTEGER"], ["WORK.PKG.WORD"]), which
    also keeps identity stable across separate compilation through the VIF.
    A subtype shares its base name and adds a constraint.

    Supported type classes: integer, floating, enumeration, physical
    (TIME), arrays (constrained, unconstrained, and multi-dimensional via
    nested lowering), records, and access types.  File types are outside
    the subset (see DESIGN.md). *)

type dir =
  | To
  | Downto

type t = {
  base : string; (* qualified base-type name: the identity *)
  kind : kind;
  constr : constr option; (* subtype constraint, if any *)
}

and kind =
  | Kint
  | Kfloat
  | Kenum of string array (* literal images, position = pos number *)
  | Kphys of (string * int) list (* units as multiples of the primary unit *)
  | Karray of { index : t; elem : t }
  | Krecord of (string * t) list
  | Kaccess of t (* designated type *)

and constr =
  | Crange of int * dir * int (* scalar range / array index constraint *)
  | Cfloat_range of float * dir * float

let same_base a b = String.equal a.base b.base

(** Compatibility for assignment/association: same base type.  (Subtype
    constraints are checked dynamically, as in a real VHDL simulator.) *)
let compatible a b = same_base a b

let is_scalar t =
  match t.kind with
  | Kint | Kfloat | Kenum _ | Kphys _ -> true
  | Karray _ | Krecord _ | Kaccess _ -> false

let is_discrete t =
  match t.kind with
  | Kint | Kenum _ -> true
  | Kfloat | Kphys _ | Karray _ | Krecord _ | Kaccess _ -> false

let is_array t =
  match t.kind with
  | Karray _ -> true
  | _ -> false

let element_type t =
  match t.kind with
  | Karray { elem; _ } -> Some elem
  | _ -> None

let index_type t =
  match t.kind with
  | Karray { index; _ } -> Some index
  | _ -> None

let is_constrained_array t =
  match (t.kind, t.constr) with
  | Karray _, Some _ -> true
  | _ -> false

(** Derive a subtype of [t] with constraint [constr]. *)
let subtype ?(name = "") t ~constr =
  ignore name;
  { t with constr = Some constr }

(** Bounds of a discrete (sub)type, if statically known. *)
let bounds t =
  match t.constr with
  | Some (Crange (lo, To, hi)) -> Some (lo, hi)
  | Some (Crange (hi, Downto, lo)) -> Some (lo, hi)
  | _ -> None

(** Range with direction, as declared. *)
let range t =
  match t.constr with
  | Some (Crange (l, d, r)) -> Some (l, d, r)
  | _ -> None

let enum_literals t =
  match t.kind with
  | Kenum lits -> Some lits
  | _ -> None

(** Position of enumeration literal [image] in the base type. *)
let enum_pos t image =
  match t.kind with
  | Kenum lits ->
    let n = Array.length lits in
    let rec scan i = if i >= n then None else if lits.(i) = image then Some i else scan (i + 1) in
    scan 0
  | _ -> None

let record_fields t =
  match t.kind with
  | Krecord fields -> Some fields
  | _ -> None

let field_type t name =
  match t.kind with
  | Krecord fields -> List.assoc_opt name fields
  | _ -> None

(** Physical-unit scale factor relative to the primary unit. *)
let phys_unit_scale t unit_name =
  match t.kind with
  | Kphys units -> List.assoc_opt unit_name units
  | _ -> None

let rec pp fmt t =
  match t.constr with
  | None -> Format.pp_print_string fmt t.base
  | Some (Crange (l, d, r)) ->
    Format.fprintf fmt "%s range %d %s %d" t.base l
      (match d with To -> "to" | Downto -> "downto")
      r
  | Some (Cfloat_range (l, d, r)) ->
    Format.fprintf fmt "%s range %g %s %g" t.base l
      (match d with To -> "to" | Downto -> "downto")
      r

and to_string t = Format.asprintf "%a" pp t

(* short display name: last component of the qualified base name *)
let short_name t =
  match String.rindex_opt t.base '.' with
  | Some i -> String.sub t.base (i + 1) (String.length t.base - i - 1)
  | None -> t.base
