(** Compiler diagnostics — the values of the ubiquitous MSGS attribute.

    In the paper, messages "must be concatenated with other messages and
    propagated to the root of the semantic tree", which is exactly how the
    MSGS merge class uses {!merge}. *)

type severity =
  | Note
  | Warning
  | Error

type t = {
  line : int;
  severity : severity;
  message : string;
}

let make ?(severity = Error) ~line fmt =
  Format.kasprintf (fun message -> { line; severity; message }) fmt

let error ~line fmt = make ~severity:Error ~line fmt
let warning ~line fmt = make ~severity:Warning ~line fmt

let is_error d = d.severity = Error

let severity_string = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let pp fmt d =
  Format.fprintf fmt "line %d: %s: %s" d.line (severity_string d.severity) d.message

let pp_list fmt ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp fmt ds

let has_errors ds = List.exists is_error ds
