(** Compiler diagnostics — the values of the ubiquitous MSGS attribute.

    In the paper, messages "must be concatenated with other messages and
    propagated to the root of the semantic tree", which is exactly how the
    MSGS merge class uses {!merge}.

    Beyond ordinary user diagnostics, two structured origins exist for the
    crash-containment subsystem: [Internal] marks a compiler defect that
    the per-unit exception firewall converted into a report instead of a
    process death, and [Budget] marks a resource budget (evaluation fuel,
    elaboration steps, wall-clock deadline, simulation step fuel) running
    out.  Both carry the pipeline phase and, when known, the design unit
    being processed. *)

type severity =
  | Note
  | Warning
  | Error

(** Where a diagnostic came from.  [User] is a property of the source text;
    the other two describe the compiler's own behavior on it. *)
type origin =
  | User
  | Internal of { phase : string; unit_name : string option }
  | Budget of { phase : string; unit_name : string option }

type t = {
  line : int;
  severity : severity;
  message : string;
  origin : origin;
}

let make ?(severity = Error) ?(origin = User) ~line fmt =
  Format.kasprintf (fun message -> { line; severity; message; origin }) fmt

let error ~line fmt = make ~severity:Error ~line fmt
let warning ~line fmt = make ~severity:Warning ~line fmt

let internal_error ~phase ?unit_name ~line fmt =
  make ~severity:Error ~origin:(Internal { phase; unit_name }) ~line fmt

let budget_error ~phase ?unit_name ~line fmt =
  make ~severity:Error ~origin:(Budget { phase; unit_name }) ~line fmt

let is_error d = d.severity = Error

let is_internal d =
  match d.origin with
  | Internal _ -> true
  | User | Budget _ -> false

let is_budget d =
  match d.origin with
  | Budget _ -> true
  | User | Internal _ -> false

let severity_string = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let origin_tag = function
  | User -> ""
  | Internal { phase; unit_name } ->
    Printf.sprintf "[internal:%s%s] " phase
      (match unit_name with Some u -> ":" ^ u | None -> "")
  | Budget { phase; unit_name } ->
    Printf.sprintf "[budget:%s%s] " phase
      (match unit_name with Some u -> ":" ^ u | None -> "")

let pp fmt d =
  Format.fprintf fmt "line %d: %s: %s%s" d.line (severity_string d.severity)
    (origin_tag d.origin) d.message

let pp_list fmt ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp fmt ds

let has_errors ds = List.exists is_error ds
let has_internal ds = List.exists is_internal ds
let has_budget ds = List.exists is_budget ds
