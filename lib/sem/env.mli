(** Applicative environments — the paper's ENV attribute (§4.3).

    "To build a new ENV value that binds ID to some other object(s) we
    create a new ENV node and insert it at the front ... so that the old
    ENV value is not changed."

    Lookup returns the visible denotations: the most recent
    non-overloadable binding hides older ones; overloadable bindings
    (subprograms, enumeration literals) accumulate. *)

module type S = sig
  type t

  val empty : t
  val extend : t -> string -> Denot.t -> t
  val extend_many : t -> (string * Denot.t) list -> t
  val lookup : t -> string -> Denot.t list
  val mem : t -> string -> bool

  val bindings : t -> (string * Denot.t) list
  (** All bindings, most recent first (diagnostics, VIF export). *)
end

module Env_list : S
(** The paper's simple variant: a linked list searched linearly. *)

module Env_tree : S
(** The "applicative forms of balanced trees" variant (Myers 1984 in the
    paper's references): a persistent balanced map. *)

(** The front end uses the balanced-tree form; {!Env_list} exists for the
    ABL-ENV experiment. *)
include S with type t = Env_tree.t
