(** Compiled design units — the content of the VIF.

    One value of {!compiled_unit} is what the compiler writes to the design
    library for each successfully analyzed unit, and what a *foreign
    reference* reads back (paper §2.2: the VIF "is generated for each
    separately-compilable unit and read in when that unit is referenced
    from another"). *)

type binding = {
  b_library : string;
  b_entity : string;
  b_arch : string option; (* None: default rule (latest compiled arch) *)
}

(** Configuration specification: binds instances of a component to an
    entity/architecture (paper §3.3's second generic layer). *)
type config_spec = {
  cs_scope : [ `Labels of string list | `All | `Others ];
  cs_component : string;
  cs_binding : binding;
}

type entity_info = {
  en_name : string;
  en_generics : Kir.generic_decl list;
  en_ports : Kir.port_decl list;
  en_context : (string * Denot.t) list;
      (* what the entity's context clause made visible: inherited by its
         architecture bodies (LRM 11.3) *)
}

type arch_info = {
  ar_name : string;
  ar_entity : string;
  ar_constants : (string * Types.t * Kir.expr) list;
      (* elaboration-time constants (initializers may reference generics) *)
  ar_signals : Kir.signal_decl list; (* indices continue after the entity ports *)
  ar_components : (string * Kir.generic_decl list * Kir.port_decl list) list;
  ar_subprograms : Kir.subprogram list;
  ar_body : Kir.concurrent list;
  ar_config_specs : config_spec list;
}

type package_info = {
  pk_name : string;
  (* exported visibility: what USE lib.pkg.X / .ALL imports *)
  pk_exports : (string * Denot.t) list; (* oldest first *)
  pk_signals : Kir.signal_decl list; (* global signals *)
  pk_subprogram_decls : Denot.subprog_sig list;
}

type package_body_info = {
  pb_name : string;
  pb_subprograms : Kir.subprogram list; (* bodies for the spec's decls *)
  pb_deferred : (string * Value.t) list;
      (* full declarations for the spec's deferred constants, "PKG.NAME" *)
}

type config_info = {
  cf_name : string;
  cf_entity : string;
  cf_arch : string;
  cf_specs : config_spec list; (* flattened block configuration *)
}

type info =
  | Uentity of entity_info
  | Uarch of arch_info
  | Upackage of package_info
  | Upackage_body of package_body_info
  | Uconfig of config_info

type compiled_unit = {
  u_library : string; (* library the unit was compiled into *)
  u_key : string; (* unique key within the library, see [key_of] *)
  u_info : info;
  u_deps : (string * string) list; (* foreign references: (library, key) *)
  u_source_lines : int; (* stripped source line count, for the benches *)
  u_sequence : int; (* compilation order stamp: drives the default
                       latest-architecture binding rule *)
}

let key_of = function
  | Uentity e -> "entity:" ^ e.en_name
  | Uarch a -> Printf.sprintf "arch:%s(%s)" a.ar_entity a.ar_name
  | Upackage p -> "package:" ^ p.pk_name
  | Upackage_body b -> "body:" ^ b.pb_name
  | Uconfig c -> "config:" ^ c.cf_name

let name_of = function
  | Uentity e -> e.en_name
  | Uarch a -> a.ar_name
  | Upackage p -> p.pk_name
  | Upackage_body b -> b.pb_name
  | Uconfig c -> c.cf_name

let describe = function
  | Uentity _ -> "entity"
  | Uarch _ -> "architecture"
  | Upackage _ -> "package"
  | Upackage_body _ -> "package body"
  | Uconfig _ -> "configuration"
