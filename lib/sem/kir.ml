(** KIR — the kernel intermediate representation.

    The paper's compiler emits C source that is compiled by the host system
    and linked with the Vantage simulation kernel.  Our substitution keeps
    the same phase structure: the front end emits KIR, the "link" step binds
    KIR references to runtime objects, and the kernel interprets it.  See
    DESIGN.md for why this preserves the behaviours under study.

    References are symbolic enough to survive the VIF (separate
    compilation): variables are (level, index) frame slots — which directly
    supports VHDL's up-level references from nested subprograms, the feature
    the paper notes C lacks — signals are indices into the enclosing
    design-unit's signal table, and user subprograms are referenced by
    mangled qualified name. *)

type dir = Types.dir =
  | To
  | Downto

type binop =
  | Band
  | Bor
  | Bnand
  | Bnor
  | Bxor
  | Beq
  | Bneq
  | Blt
  | Ble
  | Bgt
  | Bge
  | Badd
  | Bsub
  | Bconcat
  | Bmul
  | Bdiv
  | Bmod
  | Brem
  | Bexp

type unop =
  | Uneg
  | Uplus
  | Uabs
  | Unot

(** Signal references, resolved at elaboration time. *)
type sig_ref =
  | Sig_local of int (* index into the design unit's signal table (ports first) *)
  | Sig_guard (* the implicit GUARD signal of the enclosing block *)
  | Sig_global of { package : string; name : string }
  | Sig_param of int
      (* signal-class subprogram parameter: index into the signals bound at
         the enclosing procedure call *)

type sattr =
  | Sa_event
  | Sa_active
  | Sa_last_value
  | Sa_stable
  | Sa_last_event (* time elapsed since the last event *)

type func_ref =
  | F_user of string (* mangled qualified name *)

type expr =
  | Elit of Value.t
  | Evar of { level : int; index : int; name : string }
      (* negative index: for-loop variable slot -(index+1) *)
  | Egeneric of { index : int; name : string } (* substituted at elaboration *)
  | Eunit_const of { name : string }
      (* architecture-level constant whose initializer depends on generics;
         substituted at elaboration *)
  | Esig of sig_ref
  | Esig_attr of sig_ref * sattr
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Eindex of expr * expr
  | Eslice of expr * (expr * dir * expr)
  | Efield of expr * string
  | Eaggregate of agg_element list * agg_shape
  | Ecall of func_ref * expr list
  | Econvert of conv * expr
  (* array attributes that may be dynamic (unconstrained formals) *)
  | Earray_attr of expr * array_attr
  | Enew of Types.t * expr option
      (* allocator (LRM 7.3.6): new T, or new T'(e) with an initial value *)
  | Ederef of expr (* .all: the designated object of an access value *)
  | Enull (* the null access literal *)

and agg_element =
  | Ag_pos of expr
  | Ag_named of int * expr (* index choice (static) *)
  | Ag_field of string * expr
  | Ag_others of expr

and agg_shape =
  | Sh_array of (int * dir * int) option (* static bounds if known *)
  | Sh_record of string list (* field names in declaration order *)

and conv =
  | To_integer
  | To_float
  | To_pos (* T'POS: enumeration/discrete value to its position number *)
  | To_val of Types.t (* T'VAL: position number to a value of T, range checked *)

and array_attr =
  | At_left
  | At_right
  | At_high
  | At_low
  | At_length

type target =
  | Tderef of target (* assignment through an access value: p.all := e *)
  | Tvar of { level : int; index : int; name : string }
  | Tindex of target * expr
  | Tslice of target * (expr * dir * expr)
  | Tfield of target * string

type sig_target =
  | Ts_sig of sig_ref
  | Ts_index of sig_target * expr
  | Ts_slice of sig_target * (expr * dir * expr)
  | Ts_field of sig_target * string

type delay_mode =
  | Inertial
  | Transport

type waveform_element = {
  wv_value : expr option; (* None = null transaction: disconnect (LRM 8.3) *)
  wv_after : expr option; (* TIME expression; None = delta *)
}

type proc_ref =
  | P_user of string

type stmt =
  | Snull
  | Sassign of target * expr * Types.t option
      (* target subtype, when constrained: drives the runtime range check
         on variable assignment (LRM 8.4) *)
  | Ssig_assign of {
      target : sig_target;
      mode : delay_mode;
      waveform : waveform_element list;
      guarded : bool; (* emit disconnect when the block guard is false *)
      line : int;
    }
  | Sif of (expr * stmt list) list * stmt list (* (cond, then)+ , else *)
  | Scase of expr * (case_choice list * stmt list) list
  | Sfor of {
      var : int; (* loop-variable slot in the current frame *)
      var_name : string;
      range : expr * dir * expr;
      body : stmt list;
      loop_label : string option;
    }
  | Swhile of expr * stmt list * string option
  | Sloop of stmt list * string option
  | Sexit of { cond : expr option; label : string option }
  | Snext of { cond : expr option; label : string option }
  | Swait of {
      on : sig_ref list;
      until : expr option;
      for_ : expr option;
      line : int;
    }
  | Sdisconnect of sig_target (* guarded assignment with a false guard *)
  | Sreturn of expr option
  | Sassert of {
      cond : expr;
      report : expr option;
      severity : expr option;
      line : int;
    }
  | Scall of proc_ref * call_arg list

and case_choice =
  | Ch_value of Value.t
  | Ch_range of int * dir * int
  | Ch_others

and call_arg = {
  ca_mode : arg_mode;
  ca_expr : expr; (* for In *)
  ca_target : target option; (* copy-back destination for Out/Inout *)
  ca_signal : sig_ref option;
      (* for signal-class parameters: the actual signal (drivers belong to
         the calling process, LRM 2.1.1.2) *)
}

and arg_mode =
  | Arg_in
  | Arg_out
  | Arg_inout

(** A local in a frame: name, type, optional initializer. *)
type local = {
  l_name : string;
  l_ty : Types.t;
  l_init : expr option;
}

type subprogram = {
  sub_name : string; (* mangled qualified name *)
  sub_kind : [ `Function | `Procedure ];
  sub_params : local list; (* first slots of the frame, in order *)
  sub_param_modes : arg_mode list;
  sub_locals : local list; (* remaining slots *)
  sub_ret : Types.t option;
  sub_level : int; (* static nesting level of the frame *)
  sub_body : stmt list;
}

type process = {
  proc_label : string;
  proc_sensitivity : sig_ref list;
  proc_locals : local list;
  proc_body : stmt list;
  proc_postponed_wait : bool;
      (* true when the process has an explicit sensitivity list: the kernel
         appends the implicit "wait on <list>;" at the end of the body *)
}

(** Signal declared by an architecture (ports occupy the first indices). *)
type signal_decl = {
  sd_name : string;
  sd_ty : Types.t;
  sd_init : expr option;
  sd_resolution : func_ref option; (* bus resolution function *)
  sd_kind : [ `Plain | `Bus | `Register ];
  sd_disconnect : expr option;
      (* disconnection specification (LRM 5.3): time before a guarded
         disconnect of this signal's drivers takes effect *)
}

type port_decl = {
  pd_name : string;
  pd_mode : arg_mode;
  pd_ty : Types.t;
  pd_default : expr option;
}

type generic_decl = {
  gd_name : string;
  gd_ty : Types.t;
  gd_default : expr option;
}

(** Association in a generic or port map. *)
type actual =
  | Act_open
  | Act_expr of expr (* generics, or expression actuals *)
  | Act_signal of sig_ref (* parent-scope signal *)
  | Act_signal_index of sig_ref * expr
  | Act_signal_slice of sig_ref * (expr * Types.dir * expr)
      (* slice association: the formal connects to a static slice of the
         parent signal via implicit connector processes *)
      (* element association, e.g. [q => taps(i)]: connected through an
         implicit connector process at elaboration *)

type instance = {
  inst_label : string;
  inst_component : string; (* component name resolved in the arch env *)
  inst_generic_map : (string * actual) list; (* formal name -> actual *)
  inst_port_map : (string * actual) list;
}

(** Concurrent statements after translation: everything becomes processes
    and instances; blocks contribute a guard expression evaluated in a
    dedicated implicit process. *)
type concurrent =
  | C_process of process
  | C_instance of instance
  | C_block of {
      blk_label : string;
      blk_guard : expr option; (* drives the implicit GUARD signal *)
      blk_body : concurrent list;
    }
  | C_generate of {
      gen_label : string;
      gen_var : string; (* rides through the code as a unit constant *)
      gen_range : expr * dir * expr;
      gen_body : concurrent list;
    }
  | C_if_generate of {
      ig_label : string;
      ig_cond : expr; (* static at elaboration *)
      ig_body : concurrent list;
    }

let rec pp_expr fmt = function
  | Elit v -> Value.pp fmt v
  | Evar { name; level; index } -> Format.fprintf fmt "%s@[<h>{%d.%d}@]" name level index
  | Egeneric { name; _ } -> Format.fprintf fmt "generic:%s" name
  | Eunit_const { name } -> Format.fprintf fmt "const:%s" name
  | Esig (Sig_local i) -> Format.fprintf fmt "sig#%d" i
  | Esig Sig_guard -> Format.pp_print_string fmt "GUARD"
  | Esig (Sig_global { package; name }) -> Format.fprintf fmt "sig:%s.%s" package name
  | Esig (Sig_param i) -> Format.fprintf fmt "sigparam#%d" i
  | Enew (ty, init) ->
    Format.fprintf fmt "new %s" (Types.short_name ty);
    Option.iter (fun e -> Format.fprintf fmt "'(%a)" pp_expr e) init
  | Ederef e -> Format.fprintf fmt "%a.all" pp_expr e
  | Enull -> Format.pp_print_string fmt "null"
  | Esig_attr (s, a) ->
    pp_expr fmt (Esig s);
    Format.pp_print_string fmt
      (match a with
      | Sa_event -> "'EVENT"
      | Sa_active -> "'ACTIVE"
      | Sa_last_value -> "'LAST_VALUE"
      | Sa_stable -> "'STABLE"
      | Sa_last_event -> "'LAST_EVENT")
  | Ebin (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a
      (match op with
      | Band -> "and"
      | Bor -> "or"
      | Bnand -> "nand"
      | Bnor -> "nor"
      | Bxor -> "xor"
      | Beq -> "="
      | Bneq -> "/="
      | Blt -> "<"
      | Ble -> "<="
      | Bgt -> ">"
      | Bge -> ">="
      | Badd -> "+"
      | Bsub -> "-"
      | Bconcat -> "&"
      | Bmul -> "*"
      | Bdiv -> "/"
      | Bmod -> "mod"
      | Brem -> "rem"
      | Bexp -> "**")
      pp_expr b
  | Eun (op, a) ->
    Format.fprintf fmt "(%s %a)"
      (match op with
      | Uneg -> "-"
      | Uplus -> "+"
      | Uabs -> "abs"
      | Unot -> "not")
      pp_expr a
  | Eindex (a, i) -> Format.fprintf fmt "%a(%a)" pp_expr a pp_expr i
  | Eslice (a, (l, d, r)) ->
    Format.fprintf fmt "%a(%a %s %a)" pp_expr a pp_expr l
      (match d with To -> "to" | Downto -> "downto")
      pp_expr r
  | Efield (a, f) -> Format.fprintf fmt "%a.%s" pp_expr a f
  | Eaggregate (_, _) -> Format.pp_print_string fmt "<aggregate>"
  | Ecall (F_user f, args) ->
    Format.fprintf fmt "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_expr)
      args
  | Econvert (To_integer, e) -> Format.fprintf fmt "integer(%a)" pp_expr e
  | Econvert (To_float, e) -> Format.fprintf fmt "real(%a)" pp_expr e
  | Econvert (To_pos, e) -> Format.fprintf fmt "pos(%a)" pp_expr e
  | Econvert (To_val ty, e) -> Format.fprintf fmt "%s'val(%a)" (Types.short_name ty) pp_expr e
  | Earray_attr (e, a) ->
    Format.fprintf fmt "%a'%s" pp_expr e
      (match a with
      | At_left -> "LEFT"
      | At_right -> "RIGHT"
      | At_high -> "HIGH"
      | At_low -> "LOW"
      | At_length -> "LENGTH")
