(** The predefined STD.STANDARD package.

    Every VHDL design unit has the implicit context [LIBRARY STD, WORK;
    USE STD.STANDARD.ALL;] (the paper's footnote 4 notes the WORK half).
    This module defines the STANDARD types and the environment bindings
    they contribute. *)

let q name = "STD.STANDARD." ^ name

let boolean : Types.t =
  { Types.base = q "BOOLEAN"; kind = Types.Kenum [| "FALSE"; "TRUE" |]; constr = None }

let bit : Types.t =
  { Types.base = q "BIT"; kind = Types.Kenum [| "'0'"; "'1'" |]; constr = None }

let severity_level : Types.t =
  {
    Types.base = q "SEVERITY_LEVEL";
    kind = Types.Kenum [| "NOTE"; "WARNING"; "ERROR"; "FAILURE" |];
    constr = None;
  }

(* ASCII character set; control characters use their standard names,
   graphic characters the quoted form. *)
let character_literals =
  let controls =
    [|
      "NUL"; "SOH"; "STX"; "ETX"; "EOT"; "ENQ"; "ACK"; "BEL"; "BS"; "HT"; "LF";
      "VT"; "FF"; "CR"; "SO"; "SI"; "DLE"; "DC1"; "DC2"; "DC3"; "DC4"; "NAK";
      "SYN"; "ETB"; "CAN"; "EM"; "SUB"; "ESC"; "FSP"; "GSP"; "RSP"; "USP";
    |]
  in
  Array.init 128 (fun i ->
      if i < 32 then controls.(i)
      else if i = 127 then "DEL"
      else Printf.sprintf "'%c'" (Char.chr i))

let character : Types.t =
  { Types.base = q "CHARACTER"; kind = Types.Kenum character_literals; constr = None }

let integer : Types.t =
  {
    Types.base = q "INTEGER";
    kind = Types.Kint;
    constr = Some (Types.Crange (min_int + 1, Types.To, max_int));
  }

let natural : Types.t = { integer with constr = Some (Types.Crange (0, Types.To, max_int)) }

let positive : Types.t = { integer with constr = Some (Types.Crange (1, Types.To, max_int)) }

let real : Types.t = { Types.base = q "REAL"; kind = Types.Kfloat; constr = None }

(* TIME in femtoseconds. *)
let time_units =
  [
    ("FS", 1);
    ("PS", 1_000);
    ("NS", 1_000_000);
    ("US", 1_000_000_000);
    ("MS", 1_000_000_000_000);
    ("SEC", 1_000_000_000_000_000);
    ("MIN", 60_000_000_000_000_000);
    ("HR", 3_600_000_000_000_000_000);
  ]

let time : Types.t =
  {
    Types.base = q "TIME";
    kind = Types.Kphys time_units;
    constr = Some (Types.Crange (min_int + 1, Types.To, max_int));
  }

let string_ty : Types.t =
  {
    Types.base = q "STRING";
    kind = Types.Karray { index = positive; elem = character };
    constr = None;
  }

let bit_vector : Types.t =
  {
    Types.base = q "BIT_VECTOR";
    kind = Types.Karray { index = natural; elem = bit };
    constr = None;
  }

let all_types =
  [
    ("BOOLEAN", boolean);
    ("BIT", bit);
    ("CHARACTER", character);
    ("SEVERITY_LEVEL", severity_level);
    ("INTEGER", integer);
    ("REAL", real);
    ("TIME", time);
    ("STRING", string_ty);
    ("BIT_VECTOR", bit_vector);
  ]

let enum_literal_bindings (ty : Types.t) =
  match Types.enum_literals ty with
  | None -> []
  | Some lits ->
    List.init (Array.length lits) (fun pos ->
        let image = lits.(pos) in
        (image, Denot.Denum_lit { ty; pos; image }))

(** Environment with everything STANDARD makes visible. *)
let env () =
  let binds =
    List.concat
      [
        List.map (fun (n, t) -> (n, Denot.Dtype t)) all_types;
        [ ("NATURAL", Denot.Dsubtype natural); ("POSITIVE", Denot.Dsubtype positive) ];
        enum_literal_bindings boolean;
        enum_literal_bindings bit;
        enum_literal_bindings severity_level;
        enum_literal_bindings character;
        List.map
          (fun (u, scale) -> (u, Denot.Dphys_unit { ty = time; scale; image = u }))
          time_units;
      ]
  in
  (* oldest binding first so nothing here hides anything else unexpectedly *)
  Env.extend_many Env.empty (List.rev binds)

(** Convert a string to a STANDARD.STRING value (1 to n). *)
let string_value s =
  Value.Varray
    {
      bounds = (1, Types.To, String.length s);
      elems = Array.init (String.length s) (fun i -> Value.Venum (Char.code s.[i]));
    }

(** Convert a STANDARD.STRING value back to an OCaml string. *)
let value_string = function
  | Value.Varray { elems; _ } ->
    String.init (Array.length elems)
      (fun i ->
        match elems.(i) with
        | Value.Venum c when c >= 0 && c < 256 -> Char.chr c
        | _ -> '?')
  | _ -> invalid_arg "Std.value_string"

(** A bit-string literal as a BIT_VECTOR value. *)
let bit_vector_value bits =
  Value.Varray
    {
      bounds = (0, Types.To, String.length bits - 1);
      elems =
        Array.init (String.length bits) (fun i ->
            Value.Venum (if bits.[i] = '1' then 1 else 0));
    }
