(** KIR traversals shared by the front end and the elaborator. *)

(* ------------------------------------------------------------------ *)
(* Signals read by an expression: the implicit sensitivity of concurrent
   signal assignments and until-clauses. *)

let rec signals_read_expr_acc acc (e : Kir.expr) =
  match e with
  | Kir.Elit _ | Kir.Evar _ | Kir.Egeneric _ | Kir.Eunit_const _ | Kir.Enull -> acc
  | Kir.Enew (_, e) -> (
    match e with Some e -> signals_read_expr_acc acc e | None -> acc)
  | Kir.Ederef e -> signals_read_expr_acc acc e
  | Kir.Esig sref -> if List.mem sref acc then acc else sref :: acc
  | Kir.Esig_attr (sref, _) -> if List.mem sref acc then acc else sref :: acc
  | Kir.Ebin (_, a, b) -> signals_read_expr_acc (signals_read_expr_acc acc a) b
  | Kir.Eun (_, a) -> signals_read_expr_acc acc a
  | Kir.Eindex (a, i) -> signals_read_expr_acc (signals_read_expr_acc acc a) i
  | Kir.Eslice (a, (l, _, r)) ->
    signals_read_expr_acc (signals_read_expr_acc (signals_read_expr_acc acc a) l) r
  | Kir.Efield (a, _) -> signals_read_expr_acc acc a
  | Kir.Eaggregate (els, _) ->
    List.fold_left
      (fun acc el ->
        match el with
        | Kir.Ag_pos e | Kir.Ag_named (_, e) | Kir.Ag_field (_, e) | Kir.Ag_others e ->
          signals_read_expr_acc acc e)
      acc els
  | Kir.Ecall (_, args) -> List.fold_left signals_read_expr_acc acc args
  | Kir.Econvert (_, a) -> signals_read_expr_acc acc a
  | Kir.Earray_attr (a, _) -> signals_read_expr_acc acc a

let signals_read_expr e = List.rev (signals_read_expr_acc [] e)

let signals_read_exprs es = List.rev (List.fold_left signals_read_expr_acc [] es)

(* ------------------------------------------------------------------ *)
(* Substitution of elaboration-time values (generics, unit constants):
   performed once per instance when the code is "linked" with the kernel. *)

type subst = {
  generic : int -> Value.t option;
  unit_const : string -> Value.t option;
}

let rec subst_expr (s : subst) (e : Kir.expr) : Kir.expr =
  match e with
  | Kir.Elit _ | Kir.Evar _ | Kir.Esig _ | Kir.Esig_attr _ | Kir.Enull -> e
  | Kir.Enew (ty, init) -> Kir.Enew (ty, Option.map (subst_expr s) init)
  | Kir.Ederef a -> Kir.Ederef (subst_expr s a)
  | Kir.Egeneric { index; name } -> (
    match s.generic index with
    | Some v -> Kir.Elit v
    | None -> Kir.Egeneric { index; name })
  | Kir.Eunit_const { name } -> (
    match s.unit_const name with
    | Some v -> Kir.Elit v
    | None -> Kir.Eunit_const { name })
  | Kir.Ebin (op, a, b) -> Kir.Ebin (op, subst_expr s a, subst_expr s b)
  | Kir.Eun (op, a) -> Kir.Eun (op, subst_expr s a)
  | Kir.Eindex (a, i) -> Kir.Eindex (subst_expr s a, subst_expr s i)
  | Kir.Eslice (a, (l, d, r)) -> Kir.Eslice (subst_expr s a, (subst_expr s l, d, subst_expr s r))
  | Kir.Efield (a, f) -> Kir.Efield (subst_expr s a, f)
  | Kir.Eaggregate (els, shape) ->
    Kir.Eaggregate
      ( List.map
          (fun el ->
            match el with
            | Kir.Ag_pos e -> Kir.Ag_pos (subst_expr s e)
            | Kir.Ag_named (i, e) -> Kir.Ag_named (i, subst_expr s e)
            | Kir.Ag_field (f, e) -> Kir.Ag_field (f, subst_expr s e)
            | Kir.Ag_others e -> Kir.Ag_others (subst_expr s e))
          els,
        shape )
  | Kir.Ecall (f, args) -> Kir.Ecall (f, List.map (subst_expr s) args)
  | Kir.Econvert (c, a) -> Kir.Econvert (c, subst_expr s a)
  | Kir.Earray_attr (a, at) -> Kir.Earray_attr (subst_expr s a, at)

let rec subst_target (s : subst) (t : Kir.target) : Kir.target =
  match t with
  | Kir.Tvar _ -> t
  | Kir.Tderef t' -> Kir.Tderef (subst_target s t')
  | Kir.Tindex (t', i) -> Kir.Tindex (subst_target s t', subst_expr s i)
  | Kir.Tslice (t', (l, d, r)) ->
    Kir.Tslice (subst_target s t', (subst_expr s l, d, subst_expr s r))
  | Kir.Tfield (t', f) -> Kir.Tfield (subst_target s t', f)

let rec subst_sig_target (s : subst) (t : Kir.sig_target) : Kir.sig_target =
  match t with
  | Kir.Ts_sig _ -> t
  | Kir.Ts_index (t', i) -> Kir.Ts_index (subst_sig_target s t', subst_expr s i)
  | Kir.Ts_slice (t', (l, d, r)) ->
    Kir.Ts_slice (subst_sig_target s t', (subst_expr s l, d, subst_expr s r))
  | Kir.Ts_field (t', f) -> Kir.Ts_field (subst_sig_target s t', f)

let rec subst_stmt (s : subst) (st : Kir.stmt) : Kir.stmt =
  match st with
  | Kir.Snull -> st
  | Kir.Sassign (t, e, ty) -> Kir.Sassign (subst_target s t, subst_expr s e, ty)
  | Kir.Ssig_assign { target; mode; waveform; guarded; line } ->
    Kir.Ssig_assign
      {
        target = subst_sig_target s target;
        mode;
        waveform =
          List.map
            (fun (w : Kir.waveform_element) ->
              {
                Kir.wv_value = Option.map (subst_expr s) w.Kir.wv_value;
                wv_after = Option.map (subst_expr s) w.Kir.wv_after;
              })
            waveform;
        guarded;
        line;
      }
  | Kir.Sif (arms, els) ->
    Kir.Sif
      ( List.map (fun (c, body) -> (subst_expr s c, List.map (subst_stmt s) body)) arms,
        List.map (subst_stmt s) els )
  | Kir.Scase (e, alts) ->
    Kir.Scase
      ( subst_expr s e,
        List.map (fun (cs, body) -> (cs, List.map (subst_stmt s) body)) alts )
  | Kir.Sfor { var; var_name; range = l, d, r; body; loop_label } ->
    Kir.Sfor
      {
        var;
        var_name;
        range = (subst_expr s l, d, subst_expr s r);
        body = List.map (subst_stmt s) body;
        loop_label;
      }
  | Kir.Swhile (c, body, lbl) -> Kir.Swhile (subst_expr s c, List.map (subst_stmt s) body, lbl)
  | Kir.Sloop (body, lbl) -> Kir.Sloop (List.map (subst_stmt s) body, lbl)
  | Kir.Sexit { cond; label } -> Kir.Sexit { cond = Option.map (subst_expr s) cond; label }
  | Kir.Snext { cond; label } -> Kir.Snext { cond = Option.map (subst_expr s) cond; label }
  | Kir.Swait { on; until; for_; line } ->
    Kir.Swait
      { on; until = Option.map (subst_expr s) until; for_ = Option.map (subst_expr s) for_; line }
  | Kir.Sdisconnect t -> Kir.Sdisconnect (subst_sig_target s t)
  | Kir.Sreturn e -> Kir.Sreturn (Option.map (subst_expr s) e)
  | Kir.Sassert { cond; report; severity; line } ->
    Kir.Sassert
      {
        cond = subst_expr s cond;
        report = Option.map (subst_expr s) report;
        severity = Option.map (subst_expr s) severity;
        line;
      }
  | Kir.Scall (p, args) ->
    Kir.Scall
      ( p,
        List.map
          (fun (a : Kir.call_arg) ->
            {
              a with
              Kir.ca_expr = subst_expr s a.Kir.ca_expr;
              ca_target = Option.map (subst_target s) a.Kir.ca_target;
            })
          args )

let subst_stmts s = List.map (subst_stmt s)

(* ------------------------------------------------------------------ *)
(* Driven signals of a process body: the kernel creates one driver per
   (process, signal) pair (LRM 12: "a driver for each signal assigned by the
   process"). *)

let rec sig_target_root (t : Kir.sig_target) : Kir.sig_ref =
  match t with
  | Kir.Ts_sig sref -> sref
  | Kir.Ts_index (t', _) | Kir.Ts_slice (t', _) | Kir.Ts_field (t', _) -> sig_target_root t'

let rec driven_signals_stmt acc (st : Kir.stmt) =
  match st with
  | Kir.Ssig_assign { target; _ } | Kir.Sdisconnect target ->
    let root = sig_target_root target in
    if List.mem root acc then acc else root :: acc
  | Kir.Sif (arms, els) ->
    let acc = List.fold_left (fun acc (_, body) -> List.fold_left driven_signals_stmt acc body) acc arms in
    List.fold_left driven_signals_stmt acc els
  | Kir.Scase (_, alts) ->
    List.fold_left (fun acc (_, body) -> List.fold_left driven_signals_stmt acc body) acc alts
  | Kir.Sfor { body; _ } | Kir.Swhile (_, body, _) | Kir.Sloop (body, _) ->
    List.fold_left driven_signals_stmt acc body
  | Kir.Snull | Kir.Sassign _ | Kir.Sexit _ | Kir.Snext _ | Kir.Swait _ | Kir.Sreturn _
  | Kir.Sassert _ | Kir.Scall _ ->
    acc

let driven_signals body = List.rev (List.fold_left driven_signals_stmt [] body)

(* Maximum for-loop nesting depth: sizes the loop-variable stack of a frame. *)
let rec loop_depth_stmt (st : Kir.stmt) =
  match st with
  | Kir.Sfor { body; var; _ } ->
    max (var + 1) (List.fold_left (fun m s -> max m (loop_depth_stmt s)) 0 body)
  | Kir.Sif (arms, els) ->
    let m = List.fold_left (fun m (_, body) -> max m (loop_depth body)) 0 arms in
    max m (loop_depth els)
  | Kir.Scase (_, alts) -> List.fold_left (fun m (_, body) -> max m (loop_depth body)) 0 alts
  | Kir.Swhile (_, body, _) | Kir.Sloop (body, _) -> loop_depth body
  | Kir.Snull | Kir.Sassign _ | Kir.Ssig_assign _ | Kir.Sexit _ | Kir.Snext _ | Kir.Swait _
  | Kir.Sdisconnect _ | Kir.Sreturn _ | Kir.Sassert _ | Kir.Scall _ ->
    0

and loop_depth body = List.fold_left (fun m s -> max m (loop_depth_stmt s)) 0 body

(* Does a body contain a wait statement (needed for process legality and
   kernel setup)? *)
let rec has_wait_stmt (st : Kir.stmt) =
  match st with
  | Kir.Swait _ -> true
  | Kir.Sif (arms, els) -> List.exists (fun (_, b) -> has_wait b) arms || has_wait els
  | Kir.Scase (_, alts) -> List.exists (fun (_, b) -> has_wait b) alts
  | Kir.Sfor { body; _ } | Kir.Swhile (_, body, _) | Kir.Sloop (body, _) -> has_wait body
  | Kir.Snull | Kir.Sassign _ | Kir.Ssig_assign _ | Kir.Sexit _ | Kir.Snext _
  | Kir.Sdisconnect _ | Kir.Sreturn _ | Kir.Sassert _ | Kir.Scall _ ->
    false

and has_wait body = List.exists has_wait_stmt body

(* Conservative form: procedure calls may wait inside the callee, so they
   count as possible waits (used for the no-sensitivity-no-wait warning). *)
let rec may_wait_stmt (st : Kir.stmt) =
  match st with
  | Kir.Swait _ | Kir.Scall _ -> true
  | Kir.Sif (arms, els) -> List.exists (fun (_, b) -> may_wait b) arms || may_wait els
  | Kir.Scase (_, alts) -> List.exists (fun (_, b) -> may_wait b) alts
  | Kir.Sfor { body; _ } | Kir.Swhile (_, body, _) | Kir.Sloop (body, _) -> may_wait body
  | Kir.Snull | Kir.Sassign _ | Kir.Ssig_assign _ | Kir.Sexit _ | Kir.Snext _
  | Kir.Sdisconnect _ | Kir.Sreturn _ | Kir.Sassert _ ->
    false

and may_wait body = List.exists may_wait_stmt body

(* ------------------------------------------------------------------ *)
(* Anonymous-label normalization *)

(* Rename the '%'-prefixed gensym labels of anonymous concurrent statements
   (see Conc_sem.fresh_label) to "<prefix>_<k>" with [k] counted per prefix
   in traversal (source) order.  Attribute evaluation order — demand vs
   staged — reaches the gensym in different sequences; renaming here makes
   the compiled unit independent of it. *)
let normalize_labels (concs : Kir.concurrent list) =
  let counts = Hashtbl.create 8 in
  let rename label =
    if String.length label > 1 && label.[0] = '%' then begin
      let prefix =
        match String.rindex_opt label '_' with
        | Some i when i > 1 -> String.sub label 1 (i - 1)
        | _ -> String.sub label 1 (String.length label - 1)
      in
      let k = Option.value (Hashtbl.find_opt counts prefix) ~default:0 + 1 in
      Hashtbl.replace counts prefix k;
      Printf.sprintf "%s_%d" prefix k
    end
    else label
  in
  let rec conc (c : Kir.concurrent) =
    match c with
    | Kir.C_process p -> Kir.C_process { p with Kir.proc_label = rename p.Kir.proc_label }
    | Kir.C_instance i ->
      Kir.C_instance { i with Kir.inst_label = rename i.Kir.inst_label }
    | Kir.C_block { blk_label; blk_guard; blk_body } ->
      Kir.C_block
        { blk_label = rename blk_label; blk_guard; blk_body = List.map conc blk_body }
    | Kir.C_generate { gen_label; gen_var; gen_range; gen_body } ->
      Kir.C_generate
        {
          gen_label = rename gen_label;
          gen_var;
          gen_range;
          gen_body = List.map conc gen_body;
        }
    | Kir.C_if_generate { ig_label; ig_cond; ig_body } ->
      Kir.C_if_generate
        { ig_label = rename ig_label; ig_cond; ig_body = List.map conc ig_body }
  in
  List.map conc concs
