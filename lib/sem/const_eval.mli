(** Static evaluation of KIR expressions.

    Used for constant declarations, type ranges, case choices, and generic
    defaults at analysis time, and again at elaboration time once generic
    actuals are known.  Signals and user subprogram calls are not static in
    this subset. *)

exception Not_static of string
(** Raised by {!eval} when the expression depends on a signal, an unbound
    generic, or anything else only known at simulation time. *)

type ctx = {
  generics : (int * Value.t) list;  (** generic index -> value *)
  frame : Value.t option array list;  (** innermost first; loop vars etc. *)
}

val empty : ctx

val with_generics : (int * Value.t) list -> ctx
(** An elaboration-time context: generic actuals known, no frame. *)

val eval : ctx -> Kir.expr -> Value.t
(** @raise Not_static when the expression is not locally static.
    @raise Value_ops.Runtime_error on dynamic errors in static operands
      (division by zero in a constant, out-of-range index, ...). *)

val fold : ctx -> Kir.expr -> Kir.expr
(** Best-effort fold: a literal when static, the original expression
    otherwise.  Never raises. *)

val eval_opt : ctx -> Kir.expr -> Value.t option
(** [Some] iff {!eval} succeeds.  Never raises. *)
