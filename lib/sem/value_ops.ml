(** Runtime support: the predefined VHDL operations.

    This is the paper's "runtime support functions [that] perform all the
    predefined VHDL operations" — one of the four modules of the target
    virtual machine.  Both the constant folder and the simulation kernel
    evaluate KIR operators through this module. *)

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

(* VHDL mod: result has the sign of the divisor; rem: sign of the dividend. *)
let vhdl_mod a b =
  if b = 0 then fail "mod by zero"
  else
    let r = a mod b in
    if r <> 0 && (r < 0) <> (b < 0) then r + b else r

let vhdl_rem a b = if b = 0 then fail "rem by zero" else a mod b

let int_pow base exp =
  if exp < 0 then fail "negative exponent for integer **"
  else begin
    let rec go acc base exp =
      if exp = 0 then acc
      else if exp land 1 = 1 then go (acc * base) (base * base) (exp asr 1)
      else go acc (base * base) (exp asr 1)
    in
    go 1 base exp
  end

let logical name f a b =
  match (a, b) with
  | Value.Venum x, Value.Venum y ->
    (* BOOLEAN and BIT are both two-valued enumerations with FALSE/'0' at
       position 0, so the boolean tables apply to both *)
    Value.Venum (if f (x = 1) (y = 1) then 1 else 0)
  | Value.Varray { bounds; elems = xs }, Value.Varray { elems = ys; _ } ->
    if Array.length xs <> Array.length ys then
      fail "%s: arrays of different lengths" name
    else
      Value.Varray
        {
          bounds;
          elems =
            Array.init (Array.length xs) (fun i ->
                match (xs.(i), ys.(i)) with
                | Value.Venum x, Value.Venum y ->
                  Value.Venum (if f (x = 1) (y = 1) then 1 else 0)
                | _ -> fail "%s: non-logical array elements" name);
        }
  | _ -> fail "%s: operands must be boolean, bit, or arrays thereof" name

let concat a b =
  match (a, b) with
  | Value.Varray { bounds = l, d, _; elems = xs }, Value.Varray { elems = ys; _ } ->
    let n = Array.length xs + Array.length ys in
    let bounds =
      match d with
      | Value.To -> (l, Value.To, l + n - 1)
      | Value.Downto -> (l, Value.Downto, l - n + 1)
    in
    Value.Varray { bounds; elems = Array.append xs ys }
  | Value.Varray { bounds = l, d, r; elems = xs }, elem ->
    ignore r;
    let n = Array.length xs + 1 in
    let bounds =
      match d with
      | Value.To -> (l, Value.To, l + n - 1)
      | Value.Downto -> (l, Value.Downto, l - n + 1)
    in
    Value.Varray { bounds; elems = Array.append xs [| elem |] }
  | elem, Value.Varray { bounds = _, d, _; elems = ys } ->
    let n = Array.length ys + 1 in
    (* result uses the default 1-based positional bounds on the left operand's
       direction, mirroring LRM 7.2.3 closely enough for the subset *)
    let bounds =
      match d with
      | Value.To -> (1, Value.To, n)
      | Value.Downto -> (n, Value.Downto, 1)
    in
    Value.Varray { bounds; elems = Array.append [| elem |] ys }
  | a, b ->
    Value.Varray { bounds = (1, Value.To, 2); elems = [| a; b |] }

let arith name fi ff a b =
  match (a, b) with
  | Value.Vint x, Value.Vint y -> Value.Vint (fi x y)
  | Value.Vfloat x, Value.Vfloat y -> Value.Vfloat (ff x y)
  | Value.Vphys x, Value.Vphys y -> Value.Vphys (fi x y)
  | _ -> fail "%s: numeric operands required" name

let binop (op : Kir.binop) a b =
  match op with
  | Kir.Band -> logical "and" ( && ) a b
  | Kir.Bor -> logical "or" ( || ) a b
  | Kir.Bnand -> logical "nand" (fun x y -> not (x && y)) a b
  | Kir.Bnor -> logical "nor" (fun x y -> not (x || y)) a b
  | Kir.Bxor -> logical "xor" ( <> ) a b
  | Kir.Beq -> Value.vbool (Value.equal a b)
  | Kir.Bneq -> Value.vbool (not (Value.equal a b))
  | Kir.Blt -> Value.vbool (Value.compare_v a b < 0)
  | Kir.Ble -> Value.vbool (Value.compare_v a b <= 0)
  | Kir.Bgt -> Value.vbool (Value.compare_v a b > 0)
  | Kir.Bge -> Value.vbool (Value.compare_v a b >= 0)
  | Kir.Badd -> (
    (* physical * abstract mixing is handled before we get here; +/- on
       same-type operands only *)
    match (a, b) with
    | Value.Venum _, _ | _, Value.Venum _ -> fail "+: numeric operands required"
    | _ -> arith "+" ( + ) ( +. ) a b)
  | Kir.Bsub -> arith "-" ( - ) ( -. ) a b
  | Kir.Bmul -> (
    match (a, b) with
    | Value.Vphys x, Value.Vint y -> Value.Vphys (x * y)
    | Value.Vint x, Value.Vphys y -> Value.Vphys (x * y)
    | Value.Vphys x, Value.Vfloat y -> Value.Vphys (int_of_float (float_of_int x *. y))
    | Value.Vfloat x, Value.Vphys y -> Value.Vphys (int_of_float (x *. float_of_int y))
    | _ -> arith "*" ( * ) ( *. ) a b)
  | Kir.Bdiv -> (
    match (a, b) with
    | Value.Vphys x, Value.Vint y ->
      if y = 0 then fail "division by zero" else Value.Vphys (x / y)
    | Value.Vphys x, Value.Vphys y ->
      if y = 0 then fail "division by zero" else Value.Vint (x / y)
    | Value.Vint _, Value.Vint 0 -> fail "division by zero"
    | _ -> arith "/" ( / ) ( /. ) a b)
  | Kir.Bmod -> (
    match (a, b) with
    | Value.Vint x, Value.Vint y -> Value.Vint (vhdl_mod x y)
    | _ -> fail "mod: integer operands required")
  | Kir.Brem -> (
    match (a, b) with
    | Value.Vint x, Value.Vint y -> Value.Vint (vhdl_rem x y)
    | _ -> fail "rem: integer operands required")
  | Kir.Bexp -> (
    match (a, b) with
    | Value.Vint x, Value.Vint y -> Value.Vint (int_pow x y)
    | Value.Vfloat x, Value.Vint y -> Value.Vfloat (x ** float_of_int y)
    | _ -> fail "**: invalid operands")
  | Kir.Bconcat -> concat a b

let unop (op : Kir.unop) a =
  match op with
  | Kir.Uneg -> (
    match a with
    | Value.Vint x -> Value.Vint (-x)
    | Value.Vfloat x -> Value.Vfloat (-.x)
    | Value.Vphys x -> Value.Vphys (-x)
    | _ -> fail "unary -: numeric operand required")
  | Kir.Uplus -> (
    match a with
    | Value.Vint _ | Value.Vfloat _ | Value.Vphys _ -> a
    | _ -> fail "unary +: numeric operand required")
  | Kir.Uabs -> (
    match a with
    | Value.Vint x -> Value.Vint (abs x)
    | Value.Vfloat x -> Value.Vfloat (abs_float x)
    | Value.Vphys x -> Value.Vphys (abs x)
    | _ -> fail "abs: numeric operand required")
  | Kir.Unot -> (
    match a with
    | Value.Venum x -> Value.Venum (1 - x)
    | Value.Varray { bounds; elems } ->
      Value.Varray
        {
          bounds;
          elems =
            Array.map
              (function
                | Value.Venum x -> Value.Venum (1 - x)
                | _ -> fail "not: non-logical array element")
              elems;
        }
    | _ -> fail "not: boolean, bit, or array thereof required")

(** Index an array value, with bounds checking. *)
let index v i =
  match Value.array_get v i with
  | Some e -> e
  | None -> fail "array index %d out of bounds" i

(** Slice an array value. *)
let slice v (l, d, r) =
  match v with
  | Value.Varray { bounds; elems } ->
    let idxs = Value.range_indices (l, d, r) in
    let picked =
      List.map
        (fun i ->
          match Value.array_offset bounds i with
          | Some off -> elems.(off)
          | None -> fail "slice index %d out of bounds" i)
        idxs
    in
    Value.Varray { bounds = (l, d, r); elems = Array.of_list picked }
  | _ -> fail "slice of a non-array value"

let field v name =
  match v with
  | Value.Vrecord fields -> (
    match List.assoc_opt name fields with
    | Some x -> x
    | None -> fail "no record field %s" name)
  | _ -> fail "field selection on a non-record value"

(** Functional update at an array index. *)
let update_index v i e =
  match v with
  | Value.Varray { bounds; elems } -> (
    match Value.array_offset bounds i with
    | Some off ->
      let elems = Array.copy elems in
      elems.(off) <- e;
      Value.Varray { bounds; elems }
    | None -> fail "array index %d out of bounds in assignment" i)
  | _ -> fail "indexed assignment to a non-array value"

let update_slice v (l, d, r) rhs =
  match (v, rhs) with
  | Value.Varray { bounds; elems }, Value.Varray { elems = src; _ } ->
    let idxs = Value.range_indices (l, d, r) in
    if List.length idxs <> Array.length src then fail "slice assignment length mismatch"
    else begin
      let elems = Array.copy elems in
      List.iteri
        (fun k i ->
          match Value.array_offset bounds i with
          | Some off -> elems.(off) <- src.(k)
          | None -> fail "slice index %d out of bounds in assignment" i)
        idxs;
      Value.Varray { bounds; elems }
    end
  | _ -> fail "slice assignment requires array values"

let update_field v name e =
  match v with
  | Value.Vrecord fields ->
    if not (List.mem_assoc name fields) then fail "no record field %s" name
    else Value.Vrecord (List.map (fun (n, x) -> if n = name then (n, e) else (n, x)) fields)
  | _ -> fail "field assignment to a non-record value"

(** Subtype constraint check on assignment (LRM 3: range checks). *)
let check_constraint (ty : Types.t) v =
  match (ty.Types.constr, v) with
  | Some (Types.Crange (a, d, b)), (Value.Vint _ | Value.Venum _ | Value.Vphys _) ->
    let x = Value.as_int v in
    let lo, hi = match d with Types.To -> (a, b) | Types.Downto -> (b, a) in
    if x < lo || x > hi then
      fail "value %d out of range %d %s %d" x a
        (match d with Types.To -> "to" | Types.Downto -> "downto")
        b
  | Some (Types.Cfloat_range (a, d, b)), Value.Vfloat x ->
    let lo, hi = match d with Types.To -> (a, b) | Types.Downto -> (b, a) in
    if x < lo || x > hi then fail "value %g out of range" x
  | _ -> ()
