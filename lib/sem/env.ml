(** Applicative environments (the paper's ENV attribute, §4.3).

    "To build a new ENV value that binds ID to some other object(s) we
    create a new ENV node and insert it at the front of the tree so that it
    will be found first by the search rule, but so that the old ENV value is
    not changed."

    Two implementations behind one signature:

    - {!Env_list} — the paper's simple variant: a linked list searched
      linearly, extension is consing.
    - {!Env_tree} — the "applicative forms of balanced trees" variant
      (Myers 1984 in the paper); we use the stdlib's persistent AVL map.

    Lookup returns the denotations visible for a name: the most recent
    non-overloadable binding hides older ones; overloadable bindings
    (subprograms, enumeration literals) accumulate. *)

module type S = sig
  type t

  val empty : t
  val extend : t -> string -> Denot.t -> t
  val extend_many : t -> (string * Denot.t) list -> t
  val lookup : t -> string -> Denot.t list
  val mem : t -> string -> bool

  (** All bindings, most recent first (diagnostics, VIF export). *)
  val bindings : t -> (string * Denot.t) list
end

(* Shared visibility rule: given candidate denotations newest-first,
   keep overloadables until the first non-overloadable (inclusive). *)
let visible newest_first =
  let rec go acc = function
    | [] -> List.rev acc
    | d :: rest ->
      if Denot.overloadable d then go (d :: acc) rest
      else List.rev (d :: acc)
  in
  go [] newest_first

module Env_list : S = struct
  type t = (string * Denot.t) list (* newest first *)

  let empty = []
  let extend t name d = (name, d) :: t
  let extend_many t binds = List.fold_left (fun t (n, d) -> extend t n d) t binds

  let lookup t name =
    List.filter_map (fun (n, d) -> if String.equal n name then Some d else None) t
    |> visible

  let mem t name = List.exists (fun (n, _) -> String.equal n name) t
  let bindings t = t
end

module Env_tree : S = struct
  module M = Map.Make (String)

  type t = {
    map : Denot.t list M.t; (* newest first per name *)
    order : (string * Denot.t) list; (* newest first, for [bindings] *)
  }

  let empty = { map = M.empty; order = [] }

  let extend t name d =
    let existing = Option.value (M.find_opt name t.map) ~default:[] in
    { map = M.add name (d :: existing) t.map; order = (name, d) :: t.order }

  let extend_many t binds = List.fold_left (fun t (n, d) -> extend t n d) t binds

  let lookup t name =
    match M.find_opt name t.map with
    | None -> []
    | Some ds -> visible ds

  let mem t name = M.mem name t.map
  let bindings t = t.order
end

(* The front end uses the balanced-tree form by default; Env_list exists for
   the ABL-ENV experiment. *)
include Env_tree
