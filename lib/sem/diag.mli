(** Compiler diagnostics — the values of the ubiquitous MSGS attribute,
    "concatenated with other messages and propagated to the root of the
    semantic tree" by the MSGS merge class. *)

type severity =
  | Note
  | Warning
  | Error

(** Where a diagnostic came from: [User] diagnostics describe the source
    text; [Internal] ones are compiler defects the exception firewall
    contained; [Budget] ones report an exhausted resource budget.  The
    latter two carry the pipeline phase and, when known, the design unit
    being processed. *)
type origin =
  | User
  | Internal of { phase : string; unit_name : string option }
  | Budget of { phase : string; unit_name : string option }

type t = {
  line : int;
  severity : severity;
  message : string;
  origin : origin;
}

val make :
  ?severity:severity ->
  ?origin:origin ->
  line:int ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val error : line:int -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : line:int -> ('a, Format.formatter, unit, t) format4 -> 'a

val internal_error :
  phase:string ->
  ?unit_name:string ->
  line:int ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** An [Internal]-origin error: an escape the firewall converted into a
    report. *)

val budget_error :
  phase:string ->
  ?unit_name:string ->
  line:int ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** A [Budget]-origin error: a resource budget ran out. *)

val is_error : t -> bool
val is_internal : t -> bool
val is_budget : t -> bool
val severity_string : severity -> string
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
val has_errors : t list -> bool
val has_internal : t list -> bool
val has_budget : t list -> bool
