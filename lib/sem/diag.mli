(** Compiler diagnostics — the values of the ubiquitous MSGS attribute,
    "concatenated with other messages and propagated to the root of the
    semantic tree" by the MSGS merge class. *)

type severity =
  | Note
  | Warning
  | Error

type t = {
  line : int;
  severity : severity;
  message : string;
}

val make : ?severity:severity -> line:int -> ('a, Format.formatter, unit, t) format4 -> 'a
val error : line:int -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : line:int -> ('a, Format.formatter, unit, t) format4 -> 'a
val is_error : t -> bool
val severity_string : severity -> string
val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
val has_errors : t list -> bool
