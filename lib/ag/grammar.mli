(** Attribute grammars: symbols, attributes, productions, semantic rules.

    The formalism of the paper's Linguist system: a context-free grammar
    whose nonterminals carry inherited and synthesized attributes defined by
    semantic rules attached to productions, extended with *attribute
    classes* (paper §4.2) whose missing rules are completed implicitly by
    copy / unit-element / merge-function defaults.

    Polymorphic in the attribute-value type ['v]: the engine never inspects
    values, only moves them through semantic functions. *)

module Interner = Vhdl_util.Interner

type direction =
  | Inherited
  | Synthesized

val pp_direction : Format.formatter -> direction -> unit

(** An attribute occurrence inside a production: position 0 is the
    left-hand side, positions 1..n the right-hand-side symbols in order. *)
type occurrence = { pos : int; attr : int }

(** Implicit-rule policy of an attribute class: [Copy] threads a value
    unchanged, [Const u] supplies the unit element, [Merge (m, u)] folds an
    associative dyadic [m] over the right-hand-side occurrences. *)
type 'v default =
  | Copy
  | Const of 'v
  | Merge of ('v -> 'v -> 'v) * 'v

type 'v attr_decl = {
  attr_name : string;
  attr_id : int;
  dir : direction;
  default : 'v default option; (* Some _ iff the attribute is a class *)
}

type provenance =
  | Explicit
  | Implicit (* supplied by attribute-class completion *)

type 'v rule = {
  target : occurrence;
  deps : occurrence list;
  compute : 'v list -> 'v;
  provenance : provenance;
  copy_of : occurrence option;
      (** [Some src] iff the rule is a pure copy of [src].  Tagged at
          {!Builder.freeze} (implicit [Copy] completion, inherited [Merge]
          copy-down, explicit {!Builder.copy}) so plan-based evaluation can
          move the value by reference — {!Evaluator}'s copy elision. *)
}

type 'v production = {
  prod_id : int;
  prod_name : string;
  lhs : int;
  rhs : int array;
  rules : 'v rule array;
}

type 'v t = {
  symbols : Interner.t;
  attrs : 'v attr_decl array;
  attr_ids : (string, int) Hashtbl.t;
  is_terminal : bool array;
  sym_attrs : int list array;
  productions : 'v production array;
  prods_of : int list array;
  start : int;
  token_value_attr : int; (* the implicit VAL attribute of every terminal *)
  token_line_attr : int; (* the implicit LINE attribute of every terminal *)
}

val symbol_name : 'v t -> int -> string
val attr_name : 'v t -> int -> string
val attr_dir : 'v t -> int -> direction
val is_terminal : 'v t -> int -> bool
val production : 'v t -> int -> 'v production
val n_symbols : 'v t -> int
val n_productions : 'v t -> int
val attrs_of : 'v t -> int -> int list
val productions_of : 'v t -> int -> int list
val find_symbol : 'v t -> string -> int
val find_attr : 'v t -> string -> int

val token_value_name : string
(** Name of the implicit token-value attribute of every terminal — the
    mechanism the paper uses to attach symbol-table entries to LEF tokens. *)

val token_line_name : string

type 'v grammar = 'v t

exception Ill_formed of string
(** Raised at {!Builder.freeze} for malformed grammars: missing or
    duplicate rules, bad positions, terminals with attributes, etc. *)

module Builder : sig
  type 'v rule_spec
  type 'v t

  val create : unit -> 'v t
  val terminal : 'v t -> string -> int
  val nonterminal : 'v t -> string -> int

  val attr : 'v t -> sym:string -> name:string -> dir:direction -> unit
  (** Declare a plain attribute on a symbol: every production of (or
      around) the symbol must define it explicitly. *)

  val attr_class : 'v t -> name:string -> dir:direction -> default:'v default -> unit
  (** Declare an attribute class (paper §4.2): missing rules are completed
      per [default] at freeze time. *)

  val attr_member : 'v t -> sym:string -> cls:string -> unit

  val rule :
    target:int * string -> deps:(int * string) list -> ('v list -> 'v) -> 'v rule_spec
  (** A semantic rule: [target] receives the result of applying the
      function to the dependency values, in order.  Targets must be
      synthesized-of-LHS or inherited-of-RHS; dependencies may reference
      any occurrence (local chaining included). *)

  val const : target:int * string -> 'v -> 'v rule_spec
  val copy : target:int * string -> from:int * string -> 'v rule_spec

  val production :
    'v t -> name:string -> lhs:string -> rhs:string list -> rules:'v rule_spec list -> unit

  val freeze : 'v t -> start:string -> 'v grammar
  (** Validate, complete implicit rules, and seal the grammar.
      @raise Ill_formed on any inconsistency. *)
end

val pp_production : 'v t -> Format.formatter -> 'v production -> unit
val pp : Format.formatter -> 'v t -> unit
