(** Attribute evaluation over derivation trees.

    The workhorse is a demand-driven, memoizing evaluator: asking for any
    attribute of any node triggers exactly the semantic-rule applications its
    value transitively depends on, each at most once.  This realizes the
    paper's observation that the AG author "only describes what information
    we want to know" and scheduling is the evaluator's problem.

    A staged evaluator is also provided: it forces attributes pass by pass
    following the visit partitions computed by {!Analysis}, which is how a
    plan-based (Linguist-style) evaluator would proceed.  Both produce
    identical values; the staged form exists for the visit statistics and
    the evaluator-strategy bench. *)

module Tm = Vhdl_telemetry.Telemetry

let m_memo_hits = Tm.counter "ag.memo_hits"
let m_attrs_evaluated = Tm.counter "ag.attrs_evaluated"
let m_rule_applications = Tm.counter "ag.rule_applications"
let m_copy_elisions = Tm.counter "ag.copy_elisions"
let m_staged_passes = Tm.counter "ag.staged_passes"
let m_staged_visits = Tm.counter "ag.staged_visits"
let m_visits_per_pass = Tm.histogram "ag.visits_per_pass"

exception Cycle of { prod_name : string; attr_name : string }

exception
  Missing_rule of {
    prod_name : string;
    attr_name : string;
    pos : int;
  }

exception Fuel_exhausted of { applications : int; limit : int }

type 'v node = {
  n_id : int; (* unique across every tree in the process (provenance) *)
  n_prod : int; (* -1 for leaves *)
  n_term : int; (* -1 for internal nodes *)
  n_value : 'v option; (* token value for leaves *)
  n_line : int; (* leaves: token line; interior: first leaf's line *)
  n_children : 'v node array;
  mutable n_parent : ('v node * int) option; (* parent and our index therein *)
  n_cache : (int, 'v cell) Hashtbl.t; (* attr id -> state *)
}

and 'v cell =
  | In_progress
  | Done of 'v

(** Provenance hook: the recorder, the AG's label in the records, and a
    compact value summarizer.  [None] (the default) keeps the fast path: the
    only residue is one option test per attribute evaluation. *)
type 'v provenance = Provenance.t * string * ('v -> string)

type 'v t = {
  grammar : 'v Grammar.t;
  root : 'v node;
  root_inherited : (int * 'v) list;
  token_line : (int -> 'v) option; (* injects a token's LINE into 'v *)
  (* (production, position, attribute) -> rule, built on demand: rule lookup
     is on every attribute evaluation, so linear scans add up *)
  rule_index : (int * int * int, 'v Grammar.rule) Hashtbl.t;
  mutable rule_applications : int; (* instrumentation for the benches *)
  mutable fuel : int option; (* rule-application budget, None = unlimited *)
  tick : unit -> unit; (* periodic hook (deadline checks), every 256 rules *)
  prov : 'v provenance option;
  copy_elide : bool;
      (* move copy-rule values by reference instead of applying the rule;
         off for the differential oracle's reference side *)
}

(* Node ids are process-global so records from several trees (the main AG
   plus every cascade re-parse) share one id space in a recorder. *)
let node_ids = ref 0

let next_node_id () =
  incr node_ids;
  !node_ids

let rec attach grammar tree =
  match tree with
  | Tree.Leaf { term; value; line } ->
    {
      n_id = next_node_id ();
      n_prod = -1;
      n_term = term;
      n_value = Some value;
      n_line = line;
      n_children = [||];
      n_parent = None;
      n_cache = Hashtbl.create 4;
    }
  | Tree.Node { prod; children } ->
    let kids = Array.map (attach grammar) children in
    let node =
      {
        n_id = next_node_id ();
        n_prod = prod;
        n_term = -1;
        n_value = None;
        n_line = (if Array.length kids > 0 then kids.(0).n_line else 0);
        n_children = kids;
        n_parent = None;
        n_cache = Hashtbl.create 8;
      }
    in
    Array.iteri (fun i kid -> kid.n_parent <- Some (node, i)) kids;
    node

(** [create grammar ~root_inherited tree] prepares [tree] for evaluation.
    [root_inherited] supplies the inherited attributes of the root (by
    attribute name); [token_line] injects a token's source line into the
    value type for rules that depend on the LINE token attribute;
    [provenance] arms the attribute-dependency recorder. *)
let create ?token_line ?fuel ?(tick = fun () -> ()) ?provenance
    ?(copy_elide = true) grammar ~root_inherited tree =
  let root = attach grammar tree in
  let root_inherited =
    List.map (fun (name, v) -> (Grammar.find_attr grammar name, v)) root_inherited
  in
  {
    grammar;
    root;
    root_inherited;
    token_line;
    rule_index = Hashtbl.create 256;
    rule_applications = 0;
    fuel;
    tick;
    prov = provenance;
    copy_elide;
  }

let set_fuel t fuel = t.fuel <- fuel

let find_rule t prod_id (target : Grammar.occurrence) =
  let key = (prod_id, target.Grammar.pos, target.Grammar.attr) in
  match Hashtbl.find_opt t.rule_index key with
  | Some r -> r
  | None ->
    let p = Grammar.production t.grammar prod_id in
    let rec scan i =
      if i >= Array.length p.Grammar.rules then
        raise
          (Missing_rule
             {
               prod_name = p.Grammar.prod_name;
               attr_name = Grammar.attr_name t.grammar target.Grammar.attr;
               pos = target.Grammar.pos;
             })
      else
        let r = p.Grammar.rules.(i) in
        if r.Grammar.target.Grammar.pos = target.Grammar.pos
           && r.Grammar.target.Grammar.attr = target.Grammar.attr
        then begin
          Hashtbl.replace t.rule_index key r;
          r
        end
        else scan (i + 1)
    in
    scan 0

let node_label t node =
  if node.n_prod >= 0 then
    (Grammar.production t.grammar node.n_prod).Grammar.prod_name
  else Grammar.symbol_name t.grammar node.n_term

(* Evaluate attribute [attr] of [node].  For synthesized attributes the
   defining rule lives in the node's own production; for inherited ones it
   lives in the parent's production (or in [root_inherited] at the root). *)
let rec eval_node t node attr =
  match Hashtbl.find_opt node.n_cache attr with
  | Some (Done v) ->
    Tm.incr m_memo_hits;
    (match t.prov with
    | Some (rc, _, _) ->
      Provenance.memo_hit rc ~node:node.n_id ~attr:(Grammar.attr_name t.grammar attr)
    | None -> ());
    v
  | Some In_progress ->
    raise
      (Cycle
         { prod_name = node_label t node; attr_name = Grammar.attr_name t.grammar attr })
  | None ->
    Tm.incr m_attrs_evaluated;
    Hashtbl.replace node.n_cache attr In_progress;
    let v =
      match t.prov with
      | None -> compute_attr t node attr
      | Some (rc, ag, summarize) -> (
        let r =
          Provenance.begin_instance rc ~ag ~prod:(node_label t node) ~node:node.n_id
            ~attr:(Grammar.attr_name t.grammar attr) ~line:node.n_line
        in
        match compute_attr t node attr with
        | v ->
          Provenance.finish rc r ~value:(summarize v);
          v
        | exception exn ->
          Provenance.abort rc r;
          raise exn)
    in
    Hashtbl.replace node.n_cache attr (Done v);
    v

and compute_attr t node attr =
  if node.n_prod < 0 then begin
    (match t.prov with Some (rc, _, _) -> Provenance.note_token rc | None -> ());
    eval_token t node attr
  end
  else
    match Grammar.attr_dir t.grammar attr with
    | Grammar.Synthesized ->
      let rule = find_rule t node.n_prod { Grammar.pos = 0; attr } in
      apply_or_elide t node rule
    | Grammar.Inherited -> (
      match node.n_parent with
      | Some (parent, idx) ->
        let rule = find_rule t parent.n_prod { Grammar.pos = idx + 1; attr } in
        apply_or_elide t parent rule
      | None -> (
        match List.assoc_opt attr t.root_inherited with
        | Some v ->
          (match t.prov with
          | Some (rc, _, _) -> Provenance.note_root_inherited rc
          | None -> ());
          v
        | None ->
          invalid_arg
            (Printf.sprintf "no value supplied for root inherited attribute %s"
               (Grammar.attr_name t.grammar attr))))

and eval_token t node attr =
  if attr = t.grammar.Grammar.token_value_attr then
    match node.n_value with
    | Some v -> v
    | None -> assert false
  else if attr = t.grammar.Grammar.token_line_attr then
    match t.token_line with
    | Some inject -> inject node.n_line
    | None ->
      invalid_arg "token LINE attribute used but no token_line injection supplied"
  else
    invalid_arg
      (Printf.sprintf "token %s has no attribute %s"
         (Grammar.symbol_name t.grammar node.n_term)
         (Grammar.attr_name t.grammar attr))

and arg_of t at_node (occ : Grammar.occurrence) =
  if occ.Grammar.pos = 0 then eval_node t at_node occ.Grammar.attr
  else
    let child = at_node.n_children.(occ.Grammar.pos - 1) in
    if child.n_prod < 0 && occ.Grammar.attr = t.grammar.Grammar.token_line_attr then
      (* token LINE is produced by the scanner, not by a semantic rule;
         expose it through the same mechanism *)
      eval_token t child occ.Grammar.attr
    else eval_node t child occ.Grammar.attr

(* Copy elision: a rule tagged [copy_of] moves its source's value by
   reference — no argument list, no application count, no fuel.  More than
   half of all rules are generator-supplied copies (paper §4.1), so chains
   of them collapse to pointer moves.  With a recorder armed the instance
   is still classified ([note_copy]) and the read of the source adds the
   collapsed dependency edge, keeping explain chains truthful. *)
and apply_or_elide t at_node rule =
  match rule.Grammar.copy_of with
  | Some src when t.copy_elide ->
    Tm.incr m_copy_elisions;
    (match t.prov with
    | Some (rc, _, _) ->
      Provenance.note_copy rc
        ~defining_prod:(Grammar.production t.grammar at_node.n_prod).Grammar.prod_name
        ~implicit:(rule.Grammar.provenance = Grammar.Implicit)
    | None -> ());
    arg_of t at_node src
  | _ -> apply_rule t at_node rule

and apply_rule t at_node rule =
  let args = List.map (arg_of t at_node) rule.Grammar.deps in
  t.rule_applications <- t.rule_applications + 1;
  Tm.incr m_rule_applications;
  (match t.prov with
  | Some (rc, _, _) ->
    (* the open record is the rule's target instance (for inherited
       attributes that is the child's instance; the defining production is
       this node's) *)
    Provenance.note_rule rc
      ~defining_prod:(Grammar.production t.grammar at_node.n_prod).Grammar.prod_name
      ~implicit:(rule.Grammar.provenance = Grammar.Implicit)
  | None -> ());
  (match t.fuel with
  | Some limit when t.rule_applications > limit ->
    raise (Fuel_exhausted { applications = t.rule_applications; limit })
  | _ -> ());
  if t.rule_applications land 255 = 0 then t.tick ();
  rule.Grammar.compute args

(** Value of synthesized attribute [name] at the root — the paper's "goal
    attributes" that constitute the result of the translation. *)
let goal t name =
  let attr = Grammar.find_attr t.grammar name in
  eval_node t t.root attr

(** Number of semantic-rule applications so far (bench instrumentation). *)
let rule_applications t = t.rule_applications

(* ------------------------------------------------------------------ *)
(* Staged (pass-based) evaluation *)

(** Force every attribute of every node, proceeding bottom-up pass by pass
    over partitions: partition [k] of each symbol is forced during pass [k].
    [partitions] maps a symbol id to the list of (attr, pass) assignments as
    computed by {!Analysis.visit_partitions}.  Returns the number of passes
    executed. *)
let evaluate_staged t ~partitions =
  let max_pass = ref 1 in
  Array.iter
    (fun assignments ->
      List.iter (fun (_, pass) -> if pass > !max_pass then max_pass := pass) assignments)
    partitions;
  for pass = 1 to !max_pass do
    Tm.incr m_staged_passes;
    let visits = ref 0 in
    let rec walk node =
      Array.iter walk node.n_children;
      if node.n_prod >= 0 then begin
        incr visits;
        let p = Grammar.production t.grammar node.n_prod in
        let sym = p.Grammar.lhs in
        List.iter
          (fun (attr, attr_pass) ->
            if attr_pass = pass then ignore (eval_node t node attr))
          partitions.(sym)
      end
    in
    walk t.root;
    Tm.add m_staged_visits !visits;
    Tm.observe m_visits_per_pass (float_of_int !visits)
  done;
  !max_pass

(* ------------------------------------------------------------------ *)
(* Plan-based evaluation *)

(** Drive evaluation from a static plan ({!Analysis.plan}): pass by pass,
    bottom-up, forcing per production exactly the non-copy synthesized
    attributes the plan assigned to the pass.  Copy targets and inherited
    attributes are filled on demand — copies by reference (elision), the
    rest through ordinary memoized recursion — so the walk does no
    per-node list scans and manufactures no rule applications.  [site]
    restricts the walk to a subtree (the per-design-unit entry point of the
    supervisor, so work and failures still attribute to their unit).
    Returns the number of passes run. *)
let evaluate_plan ?site t ~(plan : Analysis.plan) =
  let root = match site with Some s -> s | None -> t.root in
  for pass = 1 to plan.Analysis.pl_passes do
    Tm.incr m_staged_passes;
    let visits = ref 0 in
    let rec walk node =
      Array.iter walk node.n_children;
      if node.n_prod >= 0 then begin
        incr visits;
        Array.iter
          (fun attr -> ignore (eval_node t node attr))
          plan.Analysis.pl_force.(node.n_prod).(pass - 1)
      end
    in
    walk root;
    Tm.add m_staged_visits !visits;
    Tm.observe m_visits_per_pass (float_of_int !visits)
  done;
  plan.Analysis.pl_passes

(* ------------------------------------------------------------------ *)
(* Per-region evaluation (the exception firewall's view of the tree) *)

type 'v site = 'v node

(** Interior nodes whose production's left-hand side is [symbol], in source
    order — the per-design-unit entry points of the supervisor. *)
let sites t ~symbol =
  let sym = Grammar.find_symbol t.grammar symbol in
  let acc = ref [] in
  let rec walk node =
    if node.n_prod >= 0 then begin
      if (Grammar.production t.grammar node.n_prod).Grammar.lhs = sym then
        acc := node :: !acc;
      Array.iter walk node.n_children
    end
  in
  walk t.root;
  List.rev !acc

(** Value of attribute [name] at [site]; inherited attributes resolve
    through the parent chain exactly as at the root. *)
let eval_at t site name =
  let attr = Grammar.find_attr t.grammar name in
  eval_node t site attr

(** Provenance node id of [site] — the address [vhdlc explain] resolves a
    unit's goal attributes at. *)
let site_id (site : 'v site) = site.n_id

(** Source line of the first token under [site] (0 if the region is
    empty). *)
let site_line site =
  let rec scan node =
    if node.n_prod < 0 then Some node.n_line
    else
      Array.fold_left
        (fun acc kid -> match acc with Some _ -> acc | None -> scan kid)
        None node.n_children
  in
  Option.value (scan site) ~default:0

(** Token values of the first [limit] leaves under [site], in source order
    — enough for a caller to label the region (e.g. "entity ADDER"). *)
let site_leaf_values ?(limit = 64) site =
  let acc = ref [] in
  let n = ref 0 in
  let rec walk node =
    if !n < limit then
      if node.n_prod < 0 then (
        (match node.n_value with
        | Some v ->
          acc := v :: !acc;
          incr n
        | None -> ()))
      else Array.iter walk node.n_children
  in
  walk site;
  List.rev !acc

(** Drop every [In_progress] cell left behind by an evaluation that
    escaped mid-rule, so sibling regions do not see phantom cycles.
    Completed ([Done]) values are kept — they are still valid. *)
let clear_in_progress t =
  let rec walk node =
    let stale =
      Hashtbl.fold
        (fun attr cell acc ->
          match cell with
          | In_progress -> attr :: acc
          | Done _ -> acc)
        node.n_cache []
    in
    List.iter (Hashtbl.remove node.n_cache) stale;
    Array.iter walk node.n_children
  in
  walk t.root

(** Force every declared attribute of every node (demand order). *)
let evaluate_all t =
  let g = t.grammar in
  let rec walk node =
    Array.iter walk node.n_children;
    if node.n_prod >= 0 then begin
      let p = Grammar.production g node.n_prod in
      List.iter (fun attr -> ignore (eval_node t node attr)) (Grammar.attrs_of g p.Grammar.lhs)
    end
  in
  walk t.root
