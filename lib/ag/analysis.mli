(** Static dependency analysis: the classical machinery the paper relies on
    Linguist for.

    - per-production local dependency graphs;
    - the IO/OI induced-dependency fixpoint giving the polynomial
      {e strong noncircularity} test;
    - per-symbol visit partitions, yielding the "max visits" statistic of
      the paper's §4.1 table and driving {!Evaluator.evaluate_staged}. *)

type 'v t

exception
  Circular of {
    prod_name : string;
    cycle : (int * string) list; (* (position, attribute) along the cycle *)
  }

exception Not_orderable of { symbol : string }

val compute : 'v Grammar.t -> 'v t
(** Run the IO/OI fixpoints.  @raise Circular if the grammar fails the
    strong-noncircularity test (the paper's §5.2: a far-removed rule change
    "can combine ... to produce a circularity"). *)

val visit_partitions : 'v t -> (int * int) list array
(** For each symbol id, the [(attribute id, visit number)] assignment of
    the eager partition.  @raise Not_orderable when a symbol's combined
    IO/OI relation is cyclic (demand evaluation may still succeed). *)

type plan = {
  pl_passes : int;  (** number of passes (the partition's max visit) *)
  pl_force : int array array array;
      (** production id -> pass-1 -> synthesized attribute ids to force *)
  pl_copy_targets : int;
      (** copy-rule targets detected (and excluded from forcing) at plan
          time, summed over productions *)
}
(** A static evaluation plan: per production and pass, the synthesized
    attributes a plan-driven evaluator forces ({!Evaluator.evaluate_plan}).
    Copy chains are detected at plan-construction time and left out — their
    values move by reference when a real rule reads them — and inherited
    attributes are pulled on demand through the parent chain. *)

val plan : 'v t -> plan
(** Compute the plan (once per grammar; sharing it mirrors Linguist
    generating the evaluator once).
    @raise Not_orderable as {!visit_partitions}. *)

val plan_passes : plan -> int
val plan_copy_targets : plan -> int

val max_visits : 'v t -> int
(** The paper's "max visits" row. *)

val visits_of : 'v t -> string -> int
(** Visits needed for one symbol, by name. *)

val io_pairs : 'v t -> int -> (int * int) list
(** IO(symbol): (inherited, synthesized) induced dependencies. *)

val oi_pairs : 'v t -> int -> (int * int) list
