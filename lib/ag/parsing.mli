(** From attribute grammar to LALR(1) parser (Linguist's parser half).

    The same machinery serves the principal VHDL grammar (tokens from the
    file scanner) and the expression grammar (tokens from a LEF list fed by
    the trivial list scanner of cascaded evaluation). *)

type 'v t = {
  grammar : 'v Grammar.t;
  table : Vhdl_lalr.Table.t;
  eof : int;
}

exception
  Conflicts of {
    grammar_name : string;
    report : string;
  }

val cfg_of_grammar : 'v Grammar.t -> eof:string -> Vhdl_lalr.Cfg.t
(** The underlying context-free grammar; [eof] names a declared terminal
    the lexer emits at end of input. *)

val create : ?allow_conflicts:bool -> ?name:string -> 'v Grammar.t -> eof:string -> 'v t
(** Build the LALR(1) tables.  @raise Conflicts unless [allow_conflicts]
    (the paper's authors had to track conflict resolution by hand when
    uniting productions; we reject instead). *)

val conflicts : 'v t -> Vhdl_lalr.Table.conflict list

val parse : 'v t -> lexer:(unit -> 'v Vhdl_lalr.Driver.token) -> 'v Tree.t
(** Parse a token stream into a derivation tree. *)

val parse_list : 'v t -> eof_value:'v -> 'v Vhdl_lalr.Driver.token list -> 'v Tree.t
(** Parse a pre-materialized token list (the LEF case: the scanner "just
    takes the next LEF token off the front of the list"). *)

val parse_list_recovering :
  ?max_errors:int ->
  ?max_depth:int ->
  'v t ->
  eof_value:'v ->
  checkpoint:(int -> bool) ->
  classify:(int -> Vhdl_lalr.Driver.sync_class) ->
  'v Vhdl_lalr.Driver.token list ->
  'v Tree.t Vhdl_lalr.Driver.recovery
(** Parse a token list with panic-mode error recovery: all syntax errors
    are reported in one run, and design units outside the damaged regions
    survive into the salvaged derivation tree. *)
