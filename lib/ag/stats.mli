(** Grammar statistics in the shape of the paper's §4.1 table
    (productions / symbols / attributes / rules (implicit) / max visits). *)

type t = {
  name : string;
  productions : int;
  symbols : int;
  attributes : int; (* attribute instances summed over symbols *)
  rules_total : int;
  rules_implicit : int;
  max_visits : int; (* -1 when the AG is not orderable by a fixed plan *)
}

val of_grammar : name:string -> 'v Grammar.t -> t

val implicit_fraction : t -> float
(** Fraction of rules supplied by attribute-class completion — the §4.2
    "more than half of all the rules" claim. *)

val pp_table : Format.formatter -> t list -> unit
(** Print several grammars side by side, like the paper's table. *)

val to_json : t -> string
(** One grammar's statistics as a JSON object ([max_visits] is [null] when
    the AG is not orderable by a fixed plan). *)

val table_json : t list -> string
(** The whole table as a JSON array — [vhdlc stats --json]. *)
