(** Grammar statistics in the shape of the paper's §4.1 table
    (productions / symbols / attributes / rules (implicit) / max visits). *)

type t = {
  name : string;
  productions : int;
  symbols : int;
  attributes : int; (* attribute instances summed over symbols *)
  rules_total : int;
  rules_implicit : int;
  rules_copy : int; (* rules tagged as pure copies, elided by the plan *)
  max_visits : int; (* -1 when the AG is not orderable by a fixed plan *)
}

val of_grammar : name:string -> 'v Grammar.t -> t

val implicit_fraction : t -> float
(** Fraction of rules supplied by attribute-class completion — the §4.2
    "more than half of all the rules" claim. *)

val pp_table : Format.formatter -> t list -> unit
(** Print several grammars side by side, like the paper's table. *)

val to_json : t -> string
(** One grammar's statistics as a JSON object ([max_visits] is [null] when
    the AG is not orderable by a fixed plan). *)

val table_json : t list -> string
(** The whole table as a JSON array — [vhdlc stats --json]. *)

(** {1 Hot-rule profiler}

    Rendering for {!Provenance.profile} — the dynamic counterpart of the
    static table above: which rules actually fired, how often, and what
    they cost ([vhdlc compile --profile-rules], [vhdlc stats FILE]). *)

val pp_profile : ?limit:int -> Format.formatter -> Provenance.profile_row list -> unit
(** Hottest rows first, up to [limit] (default 24, 0 = all), with a totals
    footer whose applications column equals the [ag.rule_applications]
    telemetry counter over the recorded period. *)

val profile_json : Provenance.profile_row list -> string
