(** Derivation trees of an attribute grammar: produced by the LALR driver,
    decorated by the evaluator.  Leaves carry token values — the paper's
    mechanism for attaching symbol-table entries to LEF tokens. *)

type 'v t =
  | Node of { prod : int; children : 'v t array }
  | Leaf of { term : int; value : 'v; line : int }

val node : int -> 'v t list -> 'v t
val leaf : term:int -> value:'v -> line:int -> 'v t
val size : 'v t -> int
val depth : 'v t -> int

val first_line : 'v t -> int option
(** First token line in the subtree, for error positions. *)

val pp : 'v Grammar.t -> Format.formatter -> 'v t -> unit
