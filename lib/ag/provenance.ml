(** Attribute provenance: the dynamic attribute dependency graph.

    The recorder is a side store the evaluator writes through three hooks —
    begin/finish/abort around each attribute-instance computation — plus a
    memo-hit hook for reads served from the cache.  Dependency edges and
    self-time accounting both fall out of a stack of open computations: a
    new (or memoized) read is an edge from the top of the stack, and a
    finished computation's duration is charged to its parent's child-time.

    Because the stack lives in the recorder rather than in any one
    evaluator, a nested evaluator sharing the recorder (the expression-AG
    cascade) links its records under the principal-AG instance that invoked
    it — the explain chain crosses the cascade boundary with no extra
    wiring. *)

module Tm = Vhdl_telemetry.Telemetry

let m_records = Tm.counter "provenance.records"
let m_edges = Tm.counter "provenance.edges"
let m_memo_edges = Tm.counter "provenance.memo_edges"

let now_s () = Tm.now_s () (* monotonic wall clock, same base as spans *)

type kind =
  | Rule of Grammar.provenance
  | Copy of Grammar.provenance
  | Token
  | Root_inherited
  | Unknown

let kind_label = function
  | Rule Grammar.Explicit -> "rule"
  | Rule Grammar.Implicit -> "implicit rule"
  | Copy Grammar.Explicit -> "elided copy"
  | Copy Grammar.Implicit -> "elided implicit copy"
  | Token -> "token"
  | Root_inherited -> "root inherited"
  | Unknown -> "aborted"

type record = {
  r_id : int;
  r_ag : string;
  r_prod : string;
  r_node : int;
  r_attr : string;
  r_line : int;
  mutable r_kind : kind;
  mutable r_rule : string option;
  mutable r_value : string;
  mutable r_self_s : float;
  mutable r_total_s : float;
  mutable r_self_aw : float; (* minor words allocated, children excluded *)
  mutable r_total_aw : float;
  mutable r_memo_hits : int;
  mutable r_applications : int;
  mutable r_deps : int list; (* newest first while open, read order once done *)
  mutable r_aborted : bool;
}

(* One open computation: the record under construction, its start time, and
   the accumulated duration of the computations it (transitively) demanded,
   to be subtracted for self-time. *)
type frame = {
  f_record : record;
  f_start : float;
  f_start_aw : float; (* minor-words snapshot at open (allocation-free) *)
  mutable f_child_s : float;
  mutable f_child_aw : float;
}

type t = {
  by_id : (int, record) Hashtbl.t;
  index : (int * string, int) Hashtbl.t; (* (node, attr) -> latest record *)
  mutable order : record list; (* newest first *)
  mutable next_id : int;
  mutable stack : frame list;
}

let create () =
  {
    by_id = Hashtbl.create 1024;
    index = Hashtbl.create 1024;
    order = [];
    next_id = 0;
    stack = [];
  }

let records t = List.rev t.order
let size t = t.next_id
let get t id = Hashtbl.find_opt t.by_id id

let find t ~node ~attr =
  Option.bind (Hashtbl.find_opt t.index (node, attr)) (get t)

let instances_at t ~node =
  List.filter (fun r -> r.r_node = node && not r.r_aborted) (records t)

(* dependency edge: the open computation read record [id] *)
let add_edge t id =
  match t.stack with
  | top :: _ ->
    top.f_record.r_deps <- id :: top.f_record.r_deps;
    Tm.incr m_edges
  | [] -> ()

let begin_instance t ~ag ~prod ~node ~attr ~line =
  let r =
    {
      r_id = t.next_id;
      r_ag = ag;
      r_prod = prod;
      r_node = node;
      r_attr = attr;
      r_line = line;
      r_kind = Unknown;
      r_rule = None;
      r_value = "";
      r_self_s = 0.0;
      r_total_s = 0.0;
      r_self_aw = 0.0;
      r_total_aw = 0.0;
      r_memo_hits = 0;
      r_applications = 0;
      r_deps = [];
      r_aborted = false;
    }
  in
  t.next_id <- t.next_id + 1;
  Tm.incr m_records;
  Hashtbl.add t.by_id r.r_id r;
  t.order <- r :: t.order;
  add_edge t r.r_id;
  t.stack <-
    {
      f_record = r;
      f_start = now_s ();
      f_start_aw = Tm.minor_words_now ();
      f_child_s = 0.0;
      f_child_aw = 0.0;
    }
    :: t.stack;
  r

(* Close the open computation for [r].  The stack top must be [r]'s frame:
   finish/abort mirror begin_instance exactly (the evaluator brackets every
   computation, exceptions included), so anything else is a recorder bug. *)
let close t r ~aborted ~value =
  match t.stack with
  | frame :: rest when frame.f_record == r ->
    t.stack <- rest;
    let total_aw = Tm.minor_words_now () -. frame.f_start_aw in
    let total = now_s () -. frame.f_start in
    r.r_total_s <- total;
    r.r_self_s <- Float.max 0.0 (total -. frame.f_child_s);
    r.r_total_aw <- total_aw;
    r.r_self_aw <- Float.max 0.0 (total_aw -. frame.f_child_aw);
    r.r_value <- value;
    r.r_aborted <- aborted;
    r.r_deps <- List.rev r.r_deps;
    (match rest with
    | parent :: _ ->
      parent.f_child_s <- parent.f_child_s +. total;
      parent.f_child_aw <- parent.f_child_aw +. total_aw
    | [] -> ());
    if not aborted then Hashtbl.replace t.index (r.r_node, r.r_attr) r.r_id
  | _ -> invalid_arg "Provenance: finish/abort does not match the open record"

let finish t r ~value = close t r ~aborted:false ~value
let abort t r = close t r ~aborted:true ~value:"<escaped>"

let memo_hit t ~node ~attr =
  match Hashtbl.find_opt t.index (node, attr) with
  | Some id ->
    (match get t id with
    | Some r -> r.r_memo_hits <- r.r_memo_hits + 1
    | None -> ());
    add_edge t id;
    Tm.incr m_memo_edges
  | None -> () (* computed before the recorder was armed, or aborted *)

let with_top t f =
  match t.stack with
  | top :: _ -> f top.f_record
  | [] -> ()

let note_rule t ~defining_prod ~implicit =
  with_top t (fun r ->
      r.r_kind <- Rule (if implicit then Grammar.Implicit else Grammar.Explicit);
      r.r_rule <- Some defining_prod;
      r.r_applications <- r.r_applications + 1)

(* A copy rule elided by the evaluator: the value moved by reference, no
   semantic function was applied ([r_applications] stays 0 — the profiler's
   telemetry cross-check counts real applications only).  The collapsed
   dependency edge to the source instance arrives separately, through the
   ordinary [begin_instance]/[memo_hit] path when the source is read. *)
let note_copy t ~defining_prod ~implicit =
  with_top t (fun r ->
      r.r_kind <- Copy (if implicit then Grammar.Implicit else Grammar.Explicit);
      r.r_rule <- Some defining_prod)

let note_token t = with_top t (fun r -> r.r_kind <- Token)
let note_root_inherited t = with_top t (fun r -> r.r_kind <- Root_inherited)

(* ------------------------------------------------------------------ *)
(* Ambient recorder *)

let ambient_recorder : t option ref = ref None
let ambient () = !ambient_recorder

let with_ambient t f =
  let saved = !ambient_recorder in
  ambient_recorder := Some t;
  Fun.protect ~finally:(fun () -> ambient_recorder := saved) f

(* ------------------------------------------------------------------ *)
(* Why-chain printing *)

let ms s = Printf.sprintf "%.2fms" (s *. 1000.0)

let describe r =
  let rule =
    match r.r_rule with
    | Some p when p <> r.r_prod -> Printf.sprintf " <- rule in %s" p
    | _ -> ""
  in
  let memo = if r.r_memo_hits > 0 then Printf.sprintf ", memo x%d" r.r_memo_hits else "" in
  let line = if r.r_line > 0 then Printf.sprintf ", line %d" r.r_line else "" in
  Printf.sprintf "n%d.%s @ %s (%s%s) = %s  [%s%s%s, self %s, alloc %.0fw]"
    r.r_node r.r_attr r.r_prod r.r_ag line r.r_value (kind_label r.r_kind) rule
    memo (ms r.r_self_s) r.r_self_aw

(** The why-chain: the record, then (indented) the records it read,
    transitively, down to [depth].  A record already printed is referenced
    back by id rather than re-expanded, so shared subgraphs stay readable
    and the traversal terminates on any DAG. *)
let pp_why_chain ?(depth = 6) ?(max_deps = 16) t fmt root =
  let seen = Hashtbl.create 64 in
  let rec go fmt prefix id level =
    match get t id with
    | None -> Format.fprintf fmt "%s<unknown record %d>@," prefix id
    | Some r ->
      if Hashtbl.mem seen id then
        Format.fprintf fmt "%s(n%d.%s: see above)@," prefix r.r_node r.r_attr
      else begin
        Hashtbl.add seen id ();
        Format.fprintf fmt "%s%s@," prefix (describe r);
        if level < depth then begin
          let deps = r.r_deps in
          let shown, dropped =
            if List.length deps <= max_deps then (deps, 0)
            else (List.filteri (fun i _ -> i < max_deps) deps, List.length deps - max_deps)
          in
          List.iter (fun d -> go fmt (prefix ^ "  ") d (level + 1)) shown;
          if dropped > 0 then
            Format.fprintf fmt "%s  ... %d more dependencies@," prefix dropped
        end
        else if r.r_deps <> [] then
          Format.fprintf fmt "%s  ... %d dependencies below the depth bound@," prefix
            (List.length r.r_deps)
      end
  in
  Format.fprintf fmt "@[<v>";
  go fmt "" root 0;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* DOT export *)

let dot_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(depth = 6) t ~root =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph provenance {\n";
  Buffer.add_string buf "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  let seen = Hashtbl.create 64 in
  let rec go id level =
    if not (Hashtbl.mem seen id) then
      match get t id with
      | None -> ()
      | Some r ->
        Hashtbl.add seen id ();
        let fill = if r.r_ag = "expr" then "lightblue" else "lightyellow" in
        let label =
          Printf.sprintf "%s @ %s\\nn%d%s\\n= %s" r.r_attr r.r_prod r.r_node
            (if r.r_line > 0 then Printf.sprintf " line %d" r.r_line else "")
            (dot_escape r.r_value)
        in
        Buffer.add_string buf
          (Printf.sprintf "  r%d [label=\"%s\", style=filled, fillcolor=%s%s];\n"
             r.r_id label fill
             (if r.r_aborted then ", color=red" else ""));
        if level < depth then
          List.iter
            (fun d ->
              go d (level + 1);
              if Hashtbl.mem seen d then
                Buffer.add_string buf (Printf.sprintf "  r%d -> r%d;\n" r.r_id d))
            r.r_deps
  in
  go root 0;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Hot-rule profiler *)

type profile_row = {
  p_ag : string;
  p_prod : string;
  p_attr : string;
  p_count : int;
  p_applications : int;
  p_memo_hits : int;
  p_self_s : float;
  p_self_aw : float; (* summed self-allocated minor words *)
}

(** Aggregate by (AG, defining production, attribute).  Instances not
    produced by a rule group under ["<token>"] / ["<root>"], so every
    record is accounted for and the applications column sums to the
    evaluators' rule-application count. *)
let profile t =
  let acc = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let prod =
        match (r.r_kind, r.r_rule) with
        | (Rule _ | Copy _), Some p -> p
        | (Rule _ | Copy _), None -> r.r_prod
        | Token, _ -> "<token>"
        | Root_inherited, _ -> "<root>"
        | Unknown, _ -> "<aborted>"
      in
      let key = (r.r_ag, prod, r.r_attr) in
      let row =
        match Hashtbl.find_opt acc key with
        | Some row -> row
        | None ->
          let row =
            ref
              {
                p_ag = r.r_ag;
                p_prod = prod;
                p_attr = r.r_attr;
                p_count = 0;
                p_applications = 0;
                p_memo_hits = 0;
                p_self_s = 0.0;
                p_self_aw = 0.0;
              }
          in
          Hashtbl.add acc key row;
          row
      in
      row :=
        {
          !row with
          p_count = !row.p_count + 1;
          p_applications = !row.p_applications + r.r_applications;
          p_memo_hits = !row.p_memo_hits + r.r_memo_hits;
          p_self_s = !row.p_self_s +. r.r_self_s;
          p_self_aw = !row.p_self_aw +. r.r_self_aw;
        })
    t.order;
  Hashtbl.fold (fun _ row acc -> !row :: acc) acc []
  |> List.sort (fun a b ->
         match compare b.p_self_s a.p_self_s with
         | 0 -> (
           match compare b.p_applications a.p_applications with
           | 0 -> compare (a.p_ag, a.p_prod, a.p_attr) (b.p_ag, b.p_prod, b.p_attr)
           | c -> c)
         | c -> c)
