(** Attribute grammars: symbols, attributes, productions, semantic rules.

    This is the formalism of the paper's Linguist system: a context-free
    grammar whose nonterminals carry inherited and synthesized attributes
    defined by semantic rules attached to productions, extended with
    *attribute classes* (paper §4.2) whose missing rules are completed
    implicitly by copy / unit-element / merge-function defaults.

    The module is polymorphic in the attribute-value type ['v]: the engine
    never inspects values, it only moves them through semantic functions
    (the paper's "undistinguished, user-declared attributes"). *)

module Interner = Vhdl_util.Interner

type direction =
  | Inherited
  | Synthesized

let pp_direction fmt = function
  | Inherited -> Format.pp_print_string fmt "inherited"
  | Synthesized -> Format.pp_print_string fmt "synthesized"

(** An attribute occurrence inside a production: position 0 is the left-hand
    side, positions 1..n are the right-hand-side symbols in order. *)
type occurrence = { pos : int; attr : int }

(** Implicit-rule policy of an attribute class (paper §4.2): [Copy] threads a
    value unchanged, [Const u] supplies the unit element [u], and
    [Merge (m, u)] folds an associative dyadic [m] over all right-hand-side
    occurrences (with unit [u] when there are none). *)
type 'v default =
  | Copy
  | Const of 'v
  | Merge of ('v -> 'v -> 'v) * 'v

type 'v attr_decl = {
  attr_name : string;
  attr_id : int;
  dir : direction;
  default : 'v default option; (* Some _ iff the attribute is a class *)
}

type provenance =
  | Explicit
  | Implicit (* supplied by attribute-class completion *)

type 'v rule = {
  target : occurrence;
  deps : occurrence list;
  compute : 'v list -> 'v;
  provenance : provenance;
  copy_of : occurrence option;
      (* [Some src] iff the rule is a pure copy of [src] — the target's
         value IS the source's value.  Tagged at freeze time (implicit Copy
         completion, inherited Merge copy-down, and explicit [Builder.copy])
         so a plan-based evaluator can move the value by reference instead
         of applying the rule ({!Evaluator}'s copy elision). *)
}

type 'v production = {
  prod_id : int;
  prod_name : string;
  lhs : int;
  rhs : int array;
  rules : 'v rule array;
}

type 'v t = {
  symbols : Interner.t; (* terminals and nonterminals share one id space *)
  attrs : 'v attr_decl array;
  attr_ids : (string, int) Hashtbl.t;
  is_terminal : bool array;
  (* attributes declared on each symbol, by symbol id *)
  sym_attrs : int list array;
  productions : 'v production array;
  (* productions with a given lhs, by symbol id *)
  prods_of : int list array;
  start : int;
  token_value_attr : int; (* the implicit VAL attribute of every terminal *)
  token_line_attr : int; (* the implicit LINE attribute of every terminal *)
}

let symbol_name g id = Interner.name g.symbols id
let attr_name g id = g.attrs.(id).attr_name
let attr_dir g id = g.attrs.(id).dir
let is_terminal g id = g.is_terminal.(id)
let production g id = g.productions.(id)
let n_symbols g = Interner.count g.symbols
let n_productions g = Array.length g.productions
let attrs_of g sym = g.sym_attrs.(sym)
let productions_of g sym = g.prods_of.(sym)

let find_symbol g name =
  match Interner.find_opt g.symbols name with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Grammar.find_symbol: unknown symbol %s" name)

let find_attr g name =
  match Hashtbl.find_opt g.attr_ids name with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Grammar.find_attr: unknown attribute %s" name)

(** Name of the implicit token-value attribute carried by every terminal
    (the mechanism the paper uses to attach symbol-table entries to LEF
    tokens). *)
let token_value_name = "VAL"

let token_line_name = "LINE"

type 'v grammar = 'v t
(* alias so Builder's signature can name the sealed grammar type *)

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

(* ------------------------------------------------------------------ *)
(* Builder *)

module Builder = struct
  type 'v rule_spec = {
    s_target : int * string;
    s_deps : (int * string) list;
    s_fn : 'v list -> 'v;
    s_copy : bool; (* built by {!copy}: the function is the identity *)
  }

  type 'v prod_spec = {
    p_name : string;
    p_lhs : string;
    p_rhs : string list;
    p_rules : 'v rule_spec list;
  }

  type 'v b = {
    b_symbols : Interner.t;
    mutable b_terminals : (int, unit) Hashtbl.t;
    mutable b_attrs : 'v attr_decl list; (* reverse order *)
    b_attr_ids : (string, int) Hashtbl.t;
    mutable b_next_attr : int;
    (* symbol id -> attr ids *)
    b_sym_attrs : (int, int list ref) Hashtbl.t;
    mutable b_prods : 'v prod_spec list; (* reverse order *)
  }

  type 'v t = 'v b

  let create () =
    let b =
      {
        b_symbols = Interner.create ();
        b_terminals = Hashtbl.create 64;
        b_attrs = [];
        b_attr_ids = Hashtbl.create 64;
        b_next_attr = 0;
        b_sym_attrs = Hashtbl.create 64;
        b_prods = [];
      }
    in
    b

  let declare_attr b ~name ~dir ~default =
    match Hashtbl.find_opt b.b_attr_ids name with
    | Some id ->
      let existing = List.find (fun a -> a.attr_id = id) b.b_attrs in
      if existing.dir <> dir then
        ill_formed "attribute %s redeclared with a different direction" name;
      id
    | None ->
      let id = b.b_next_attr in
      b.b_next_attr <- id + 1;
      Hashtbl.add b.b_attr_ids name id;
      b.b_attrs <- { attr_name = name; attr_id = id; dir; default } :: b.b_attrs;
      id

  let terminal b name =
    let id = Interner.intern b.b_symbols name in
    Hashtbl.replace b.b_terminals id ();
    id

  let nonterminal b name = Interner.intern b.b_symbols name

  (** Declare a plain attribute [name] on symbol [sym]. *)
  let attr b ~sym ~name ~dir =
    let sym_id = nonterminal b sym in
    let attr_id = declare_attr b ~name ~dir ~default:None in
    let cell =
      match Hashtbl.find_opt b.b_sym_attrs sym_id with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add b.b_sym_attrs sym_id c;
        c
    in
    if not (List.mem attr_id !cell) then cell := attr_id :: !cell

  (** Declare an attribute class (paper §4.2).  Associating it with symbols
      is done with {!attr_member}. *)
  let attr_class b ~name ~dir ~default =
    ignore (declare_attr b ~name ~dir ~default:(Some default))

  (** Associate the class [cls] with symbol [sym]. *)
  let attr_member b ~sym ~cls =
    let sym_id = nonterminal b sym in
    let attr_id =
      match Hashtbl.find_opt b.b_attr_ids cls with
      | Some id -> id
      | None -> ill_formed "attr_member: unknown attribute class %s" cls
    in
    let cell =
      match Hashtbl.find_opt b.b_sym_attrs sym_id with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add b.b_sym_attrs sym_id c;
        c
    in
    if not (List.mem attr_id !cell) then cell := attr_id :: !cell

  let rule ~target ~deps fn =
    { s_target = target; s_deps = deps; s_fn = fn; s_copy = false }

  (** A rule with no dependencies (a constant). *)
  let const ~target v = rule ~target ~deps:[] (fun _ -> v)

  (** A copy rule — tagged so the evaluator may elide it (move the value by
      reference instead of applying the identity). *)
  let copy ~target ~from =
    {
      s_target = target;
      s_deps = [ from ];
      s_fn =
        (function
          | [ v ] -> v
          | _ -> assert false);
      s_copy = true;
    }

  let production b ~name ~lhs ~rhs ~rules =
    ignore (nonterminal b lhs);
    List.iter (fun s -> ignore (Interner.intern b.b_symbols s)) rhs;
    b.b_prods <- { p_name = name; p_lhs = lhs; p_rhs = rhs; p_rules = rules } :: b.b_prods

  (* ---- completion: implicit rules per attribute class (paper §4.2) ---- *)

  let freeze b ~start =
    let n_syms = Interner.count b.b_symbols in
    let is_terminal = Array.make n_syms false in
    Hashtbl.iter (fun id () -> is_terminal.(id) <- true) b.b_terminals;
    let attrs_list = List.rev b.b_attrs in
    (* add the implicit token attributes *)
    let token_value_attr = b.b_next_attr in
    let token_line_attr = b.b_next_attr + 1 in
    let attrs =
      Array.of_list
        (attrs_list
        @ [
            {
              attr_name = token_value_name;
              attr_id = token_value_attr;
              dir = Synthesized;
              default = None;
            };
            {
              attr_name = token_line_name;
              attr_id = token_line_attr;
              dir = Synthesized;
              default = None;
            };
          ])
    in
    Hashtbl.replace b.b_attr_ids token_value_name token_value_attr;
    Hashtbl.replace b.b_attr_ids token_line_name token_line_attr;
    let sym_attrs = Array.make n_syms [] in
    Hashtbl.iter (fun sym cell -> sym_attrs.(sym) <- List.rev !cell) b.b_sym_attrs;
    for sym = 0 to n_syms - 1 do
      if is_terminal.(sym) then begin
        if sym_attrs.(sym) <> [] then
          ill_formed "terminal %s may not declare attributes" (Interner.name b.b_symbols sym);
        sym_attrs.(sym) <- [ token_value_attr; token_line_attr ]
      end
    done;
    let has_attr sym a = List.mem a sym_attrs.(sym) in
    let resolve_attr name =
      match Hashtbl.find_opt b.b_attr_ids name with
      | Some id -> id
      | None -> ill_formed "rule references unknown attribute %s" name
    in
    let specs = Array.of_list (List.rev b.b_prods) in
    let productions =
      Array.mapi
        (fun prod_id spec ->
          let lhs = Interner.intern b.b_symbols spec.p_lhs in
          if is_terminal.(lhs) then ill_formed "terminal %s used as lhs" spec.p_lhs;
          let rhs = Array.of_list (List.map (Interner.intern b.b_symbols) spec.p_rhs) in
          let arity = Array.length rhs in
          let occ_sym pos = if pos = 0 then lhs else rhs.(pos - 1) in
          let check_occ ~what { pos; attr } =
            if pos < 0 || pos > arity then
              ill_formed "%s: position %d out of range in production %s" what pos spec.p_name;
            let sym = occ_sym pos in
            if not (has_attr sym attr) then
              ill_formed "%s: symbol %s has no attribute %s (production %s)" what
                (Interner.name b.b_symbols sym)
                attrs.(attr).attr_name spec.p_name
          in
          let mk_rule s =
            let target = { pos = fst s.s_target; attr = resolve_attr (snd s.s_target) } in
            let deps =
              List.map (fun (pos, a) -> { pos; attr = resolve_attr a }) s.s_deps
            in
            check_occ ~what:"rule target" target;
            List.iter (check_occ ~what:"rule dependency") deps;
            (* well-formedness: targets are syn(lhs) or inh(rhs);
               dependencies are inh(lhs), syn(rhs), or token values *)
            let tdir = attrs.(target.attr).dir in
            (match (target.pos, tdir) with
            | 0, Synthesized -> ()
            | 0, Inherited ->
              ill_formed "rule may not define inherited attribute of the lhs (%s in %s)"
                attrs.(target.attr).attr_name spec.p_name
            | _, Inherited -> ()
            | p, Synthesized ->
              if is_terminal.(rhs.(p - 1)) then
                ill_formed "rule may not define token attribute (%s in %s)"
                  attrs.(target.attr).attr_name spec.p_name
              else
                ill_formed
                  "rule may not define synthesized attribute of an rhs symbol (%s in %s)"
                  attrs.(target.attr).attr_name spec.p_name);
            (* Dependencies may reference any occurrence: inh(lhs) and
               syn(rhs) are the classical ones; syn(lhs) and inh(rhs) give
               local attribute chaining (all are computable within the
               production; circularity is caught by analysis/evaluation). *)
            let copy_of =
              match (s.s_copy, deps) with
              | true, [ src ] -> Some src
              | _ -> None
            in
            { target; deps; compute = s.s_fn; provenance = Explicit; copy_of }
          in
          let explicit = List.map mk_rule spec.p_rules in
          (* duplicate-definition check *)
          let seen = Hashtbl.create 16 in
          List.iter
            (fun r ->
              let key = (r.target.pos, r.target.attr) in
              if Hashtbl.mem seen key then
                ill_formed "attribute %s at position %d defined twice in production %s"
                  attrs.(r.target.attr).attr_name r.target.pos spec.p_name;
              Hashtbl.add seen key ())
            explicit;
          (* required targets: syn attrs of lhs, inh attrs of each rhs nonterminal *)
          let required = ref [] in
          List.iter
            (fun a -> if attrs.(a).dir = Synthesized then required := { pos = 0; attr = a } :: !required)
            sym_attrs.(lhs);
          Array.iteri
            (fun i sym ->
              if not is_terminal.(sym) then
                List.iter
                  (fun a ->
                    if attrs.(a).dir = Inherited then
                      required := { pos = i + 1; attr = a } :: !required)
                  sym_attrs.(sym))
            rhs;
          let implicit =
            List.filter_map
              (fun occ ->
                if Hashtbl.mem seen (occ.pos, occ.attr) then None
                else begin
                  let decl = attrs.(occ.attr) in
                  let other_occurrences () =
                    (* occurrences of the same attribute elsewhere in the
                       production that a copy/merge rule may read from *)
                    let occs = ref [] in
                    (* rhs occurrences, synthesized only (valid deps) *)
                    for i = arity downto 1 do
                      let sym = rhs.(i - 1) in
                      if (not is_terminal.(sym)) && has_attr sym occ.attr
                         && decl.dir = Synthesized
                      then occs := { pos = i; attr = occ.attr } :: !occs
                    done;
                    (* lhs occurrence, inherited only *)
                    if decl.dir = Inherited && has_attr lhs occ.attr && occ.pos <> 0 then
                      occs := { pos = 0; attr = occ.attr } :: !occs;
                    !occs
                  in
                  match decl.default with
                  | None ->
                    ill_formed "production %s: no rule for %s of %s at position %d"
                      spec.p_name decl.attr_name
                      (Interner.name b.b_symbols (occ_sym occ.pos))
                      occ.pos
                  | Some Copy -> (
                    match other_occurrences () with
                    | src :: _ ->
                      Some
                        {
                          target = occ;
                          deps = [ src ];
                          compute =
                            (function
                              | [ v ] -> v
                              | _ -> assert false);
                          provenance = Implicit;
                          copy_of = Some src;
                        }
                    | [] ->
                      ill_formed
                        "production %s: copy class %s has no source occurrence for %s"
                        spec.p_name decl.attr_name
                        (Interner.name b.b_symbols (occ_sym occ.pos)))
                  | Some (Const u) ->
                    Some
                      {
                        target = occ;
                        deps = [];
                        compute = (fun _ -> u);
                        provenance = Implicit;
                        copy_of = None;
                      }
                  | Some (Merge (m, u)) ->
                    if decl.dir = Inherited then (
                      (* inherited merge class behaves as copy-down *)
                      match other_occurrences () with
                      | src :: _ ->
                        Some
                          {
                            target = occ;
                            deps = [ src ];
                            compute =
                              (function
                                | [ v ] -> v
                                | _ -> assert false);
                            provenance = Implicit;
                            copy_of = Some src;
                          }
                      | [] ->
                        Some
                          {
                            target = occ;
                            deps = [];
                            compute = (fun _ -> u);
                            provenance = Implicit;
                            copy_of = None;
                          })
                    else begin
                      let sources =
                        List.filter (fun o -> o.pos > 0) (other_occurrences ())
                      in
                      match sources with
                      | [] ->
                        Some
                          {
                            target = occ;
                            deps = [];
                            compute = (fun _ -> u);
                            provenance = Implicit;
                            copy_of = None;
                          }
                      | [ src ] ->
                        (* a one-source merge is a copy: fold of one *)
                        Some
                          {
                            target = occ;
                            deps = [ src ];
                            compute =
                              (function
                                | [] -> u
                                | v :: vs -> List.fold_left m v vs);
                            provenance = Implicit;
                            copy_of = Some src;
                          }
                      | deps ->
                        Some
                          {
                            target = occ;
                            deps;
                            compute =
                              (function
                                | [] -> u
                                | v :: vs -> List.fold_left m v vs);
                            provenance = Implicit;
                            copy_of = None;
                          }
                    end
                end)
              (List.rev !required)
          in
          {
            prod_id;
            prod_name = spec.p_name;
            lhs;
            rhs;
            rules = Array.of_list (explicit @ implicit);
          })
        specs
    in
    let prods_of = Array.make n_syms [] in
    Array.iter
      (fun p -> prods_of.(p.lhs) <- p.prod_id :: prods_of.(p.lhs))
      productions;
    Array.iteri (fun i l -> prods_of.(i) <- List.rev l) prods_of;
    let start =
      match Interner.find_opt b.b_symbols start with
      | Some id when not is_terminal.(id) -> id
      | Some _ -> ill_formed "start symbol %s is a terminal" start
      | None -> ill_formed "start symbol %s is not defined" start
    in
    (* every nonterminal must have a production *)
    for sym = 0 to n_syms - 1 do
      if (not is_terminal.(sym)) && prods_of.(sym) = [] then
        ill_formed "nonterminal %s has no productions" (Interner.name b.b_symbols sym)
    done;
    {
      symbols = b.b_symbols;
      attrs;
      attr_ids = b.b_attr_ids;
      is_terminal;
      sym_attrs;
      productions;
      prods_of;
      start;
      token_value_attr;
      token_line_attr;
    }
end

let pp_production g fmt p =
  Format.fprintf fmt "%s ::= %s" (symbol_name g p.lhs)
    (if Array.length p.rhs = 0 then "<empty>"
     else String.concat " " (Array.to_list (Array.map (symbol_name g) p.rhs)))

let pp fmt g =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun p ->
      Format.fprintf fmt "[%d] %a  (%d rules)@," p.prod_id (pp_production g) p
        (Array.length p.rules))
    g.productions;
  Format.fprintf fmt "@]"
