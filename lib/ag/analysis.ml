(** Static dependency analysis of an attribute grammar.

    Implements the classical machinery the paper relies on Linguist for:

    - per-production local dependency graphs,
    - the IO/OI induced-dependency fixpoint, giving the polynomial
      *strong noncircularity* test (a circular AG is rejected here, which is
      the paper's §5.2 "a change in one production can combine with a far
      removed production to produce a circularity"),
    - per-symbol visit partitions, giving the "max visits" statistic of the
      §4.1 table and driving the staged evaluator. *)

type occ = Grammar.occurrence

module Occ_set = Set.Make (struct
  type t = occ

  let compare (a : occ) (b : occ) =
    match compare a.Grammar.pos b.Grammar.pos with
    | 0 -> compare a.Grammar.attr b.Grammar.attr
    | c -> c
end)

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type 'v t = {
  grammar : 'v Grammar.t;
  (* io.(sym): (inherited attr, synthesized attr) pairs *)
  io : Pair_set.t array;
  (* oi.(sym): (synthesized attr, inherited attr) pairs *)
  oi : Pair_set.t array;
}

exception
  Circular of {
    prod_name : string;
    cycle : (int * string) list; (* (position, attribute name) along the cycle *)
  }

(* ------------------------------------------------------------------ *)
(* Local dependency graphs *)

(** Direct dependency edges of a production: dep -> target for each rule. *)
let local_edges (p : 'v Grammar.production) =
  Array.to_list p.Grammar.rules
  |> List.concat_map (fun r ->
         List.map (fun d -> (d, r.Grammar.target)) r.Grammar.deps)

(* Transitive closure over a small occurrence graph, as adjacency sets. *)
let closure edges =
  let adj = Hashtbl.create 32 in
  let add_edge a b =
    let set = Option.value (Hashtbl.find_opt adj a) ~default:Occ_set.empty in
    Hashtbl.replace adj a (Occ_set.add b set)
  in
  List.iter (fun (a, b) -> add_edge a b) edges;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun a succs ->
        let extended =
          Occ_set.fold
            (fun b acc ->
              match Hashtbl.find_opt adj b with
              | Some bs -> Occ_set.union acc bs
              | None -> acc)
            succs succs
        in
        if not (Occ_set.equal extended succs) then begin
          Hashtbl.replace adj a extended;
          changed := true
        end)
      adj
  done;
  adj

(* Edges of production p augmented with the current IO approximation for its
   right-hand-side nonterminals and the OI approximation for its lhs. *)
let augmented_edges g io ?oi (p : 'v Grammar.production) =
  let base = local_edges p in
  let rhs_induced =
    Array.to_list p.Grammar.rhs
    |> List.mapi (fun i sym -> (i + 1, sym))
    |> List.concat_map (fun (pos, sym) ->
           if Grammar.is_terminal g sym then []
           else
             Pair_set.elements io.(sym)
             |> List.map (fun (a, b) ->
                    ({ Grammar.pos; attr = a }, { Grammar.pos; attr = b })))
  in
  let lhs_induced =
    match oi with
    | None -> []
    | Some oi ->
      Pair_set.elements oi.(p.Grammar.lhs)
      |> List.map (fun (a, b) ->
             ({ Grammar.pos = 0; attr = a }, { Grammar.pos = 0; attr = b }))
  in
  base @ rhs_induced @ lhs_induced

(* ------------------------------------------------------------------ *)
(* IO / OI fixpoints *)

let compute g =
  let n = Grammar.n_symbols g in
  let io = Array.make n Pair_set.empty in
  (* IO fixpoint: dependencies inherited->synthesized at the lhs induced by
     each production, given the IO of the rhs symbols. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for pid = 0 to Grammar.n_productions g - 1 do
      let p = Grammar.production g pid in
      let adj = closure (augmented_edges g io p) in
      let lhs_attrs = Grammar.attrs_of g p.Grammar.lhs in
      List.iter
        (fun a ->
          if Grammar.attr_dir g a = Grammar.Inherited then
            match Hashtbl.find_opt adj { Grammar.pos = 0; attr = a } with
            | None -> ()
            | Some succs ->
              Occ_set.iter
                (fun o ->
                  if o.Grammar.pos = 0
                     && Grammar.attr_dir g o.Grammar.attr = Grammar.Synthesized
                     && List.mem o.Grammar.attr lhs_attrs
                  then begin
                    let pair = (a, o.Grammar.attr) in
                    if not (Pair_set.mem pair io.(p.Grammar.lhs)) then begin
                      io.(p.Grammar.lhs) <- Pair_set.add pair io.(p.Grammar.lhs);
                      changed := true
                    end
                  end)
                succs)
        lhs_attrs
    done
  done;
  (* Circularity check: with IO edges added, no production graph may have a
     cycle.  We detect a cycle as an occurrence reachable from itself. *)
  for pid = 0 to Grammar.n_productions g - 1 do
    let p = Grammar.production g pid in
    let adj = closure (augmented_edges g io p) in
    Hashtbl.iter
      (fun a succs ->
        if Occ_set.mem a succs then
          raise
            (Circular
               {
                 prod_name = p.Grammar.prod_name;
                 cycle =
                   Occ_set.elements succs
                   |> List.filter (fun b ->
                          match Hashtbl.find_opt adj b with
                          | Some bs -> Occ_set.mem a bs
                          | None -> false)
                   |> List.map (fun o -> (o.Grammar.pos, Grammar.attr_name g o.Grammar.attr));
               }))
      adj
  done;
  (* OI fixpoint: dependencies synthesized->inherited at an rhs occurrence
     induced by the context.  Mirrors IO, using the lhs' OI. *)
  let oi = Array.make n Pair_set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for pid = 0 to Grammar.n_productions g - 1 do
      let p = Grammar.production g pid in
      let adj = closure (augmented_edges g io ~oi p) in
      Array.iteri
        (fun i sym ->
          if not (Grammar.is_terminal g sym) then begin
            let pos = i + 1 in
            let attrs = Grammar.attrs_of g sym in
            List.iter
              (fun a ->
                if Grammar.attr_dir g a = Grammar.Synthesized then
                  match Hashtbl.find_opt adj { Grammar.pos; attr = a } with
                  | None -> ()
                  | Some succs ->
                    Occ_set.iter
                      (fun o ->
                        if o.Grammar.pos = pos
                           && Grammar.attr_dir g o.Grammar.attr = Grammar.Inherited
                        then begin
                          let pair = (a, o.Grammar.attr) in
                          if not (Pair_set.mem pair oi.(sym)) then begin
                            oi.(sym) <- Pair_set.add pair oi.(sym);
                            changed := true
                          end
                        end)
                      succs)
              attrs
          end)
        p.Grammar.rhs
    done
  done;
  { grammar = g; io; oi }

(* ------------------------------------------------------------------ *)
(* Visit partitions *)

exception Not_orderable of { symbol : string }

(** Assign each attribute of each symbol to a visit number (starting at 1).
    A visit supplies a batch of inherited attributes and receives a batch of
    synthesized ones; the greedy eager partition below minimizes the number
    of visits for the per-symbol dependency order induced by IO ∪ OI.

    Returns an array indexed by symbol id of [(attr, visit)] lists; terminals
    get the empty list.  Raises {!Not_orderable} if a symbol's combined
    IO/OI relation is cyclic (the AG is then not evaluable by a fixed visit
    plan, though the demand evaluator may still succeed). *)
let visit_partitions t =
  let g = t.grammar in
  let n = Grammar.n_symbols g in
  let partitions = Array.make n [] in
  for sym = 0 to n - 1 do
    if not (Grammar.is_terminal g sym) then begin
      let attrs = Grammar.attrs_of g sym in
      (* predecessor map over this symbol's attributes *)
      let preds = Hashtbl.create 8 in
      List.iter (fun a -> Hashtbl.replace preds a []) attrs;
      let add_edge (a, b) =
        if List.mem a attrs && List.mem b attrs then
          Hashtbl.replace preds b (a :: Hashtbl.find preds b)
      in
      Pair_set.iter add_edge t.io.(sym);
      Pair_set.iter add_edge t.oi.(sym);
      let remaining = ref attrs in
      let assigned = Hashtbl.create 8 in
      let visit = ref 0 in
      while !remaining <> [] do
        incr visit;
        let ready dir a =
          Grammar.attr_dir g a = dir
          && List.for_all (fun p -> Hashtbl.mem assigned p) (Hashtbl.find preds a)
        in
        let take dir =
          let moved = ref true in
          let any = ref false in
          while !moved do
            moved := false;
            let now, later = List.partition (ready dir) !remaining in
            if now <> [] then begin
              moved := true;
              any := true;
              List.iter (fun a -> Hashtbl.replace assigned a !visit) now;
              remaining := later
            end
          done;
          !any
        in
        let got_inh = take Grammar.Inherited in
        let got_syn = take Grammar.Synthesized in
        if (not got_inh) && not got_syn then
          raise (Not_orderable { symbol = Grammar.symbol_name g sym })
      done;
      partitions.(sym) <- List.map (fun a -> (a, Hashtbl.find assigned a)) attrs
    end
  done;
  partitions

(* ------------------------------------------------------------------ *)
(* Static evaluation plans *)

(** A static evaluation plan, computed once per grammar: for every
    production, the synthesized attributes of its left-hand side to force
    during each pass, as dense arrays a plan-driven evaluator iterates
    without per-node list scans.

    Copy chains are detected here: a synthesized attribute whose defining
    rule in the production is a pure copy ([Grammar.rule.copy_of]) is left
    out of the force lists — its value moves by reference the moment a real
    rule reads it (the evaluator's copy elision), so forcing it would only
    manufacture rule applications.  Inherited attributes are never forced
    either: demand evaluation pulls exactly the ones the forced synthesized
    attributes transitively need, through the parent chain. *)
type plan = {
  pl_passes : int; (* number of passes (the partition's max visit) *)
  pl_force : int array array array;
      (* production id -> pass-1 -> synthesized attr ids to force *)
  pl_copy_targets : int;
      (* copy-rule targets detected (and excluded) at plan time, summed
         over productions — the §4.1 "more than half of all rules" *)
}

let plan t =
  let g = t.grammar in
  let partitions = visit_partitions t in
  let passes =
    Array.fold_left
      (fun acc l -> List.fold_left (fun acc (_, v) -> max acc v) acc l)
      1 partitions
  in
  let copy_targets = ref 0 in
  let force =
    Array.init (Grammar.n_productions g) (fun pid ->
        let p = Grammar.production g pid in
        let per_pass = Array.make passes [] in
        List.iter
          (fun (attr, pass) ->
            if Grammar.attr_dir g attr = Grammar.Synthesized then begin
              let rule =
                (* completion guarantees every syn(lhs) attribute a rule *)
                Array.to_seq p.Grammar.rules
                |> Seq.find (fun (r : 'v Grammar.rule) ->
                       r.Grammar.target.Grammar.pos = 0
                       && r.Grammar.target.Grammar.attr = attr)
              in
              match rule with
              | Some r when r.Grammar.copy_of <> None -> incr copy_targets
              | _ -> per_pass.(pass - 1) <- attr :: per_pass.(pass - 1)
            end)
          partitions.(p.Grammar.lhs);
        Array.map (fun l -> Array.of_list (List.rev l)) per_pass)
  in
  { pl_passes = passes; pl_force = force; pl_copy_targets = !copy_targets }

let plan_passes p = p.pl_passes
let plan_copy_targets p = p.pl_copy_targets

(** Maximum number of visits over all symbols — the paper's "max visits". *)
let max_visits t =
  let parts = visit_partitions t in
  Array.fold_left
    (fun acc l -> List.fold_left (fun acc (_, v) -> max acc v) acc l)
    1 parts

(** Visits needed for one particular symbol. *)
let visits_of t sym_name =
  let parts = visit_partitions t in
  let sym = Grammar.find_symbol t.grammar sym_name in
  List.fold_left (fun acc (_, v) -> max acc v) 1 parts.(sym)

let io_pairs t sym = Pair_set.elements t.io.(sym)
let oi_pairs t sym = Pair_set.elements t.oi.(sym)
