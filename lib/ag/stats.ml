(** Grammar statistics in the shape of the paper's §4.1 table:

    {v
                     VHDL AG   expr AG
    productions        503       160
    symbols            355       101
    attributes        3509       446
    rules(implicit)   8862(6...) 2132(1061)
    max visits           3         4
    v} *)

type t = {
  name : string;
  productions : int;
  symbols : int;
  attributes : int; (* attribute instances summed over symbols *)
  rules_total : int;
  rules_implicit : int;
  rules_copy : int; (* rules tagged as pure copies, elided by the plan *)
  max_visits : int; (* -1 when the AG is not orderable by a fixed plan *)
}

let of_grammar ~name g =
  let productions = Grammar.n_productions g in
  let symbols = Grammar.n_symbols g in
  let attributes =
    let total = ref 0 in
    for sym = 0 to symbols - 1 do
      if not (Grammar.is_terminal g sym) then
        total := !total + List.length (Grammar.attrs_of g sym)
    done;
    !total
  in
  let rules_total = ref 0 and rules_implicit = ref 0 and rules_copy = ref 0 in
  for pid = 0 to productions - 1 do
    let p = Grammar.production g pid in
    Array.iter
      (fun r ->
        incr rules_total;
        if r.Grammar.copy_of <> None then incr rules_copy;
        match r.Grammar.provenance with
        | Grammar.Implicit -> incr rules_implicit
        | Grammar.Explicit -> ())
      p.Grammar.rules
  done;
  let max_visits =
    match Analysis.visit_partitions (Analysis.compute g) with
    | parts ->
      Array.fold_left
        (fun acc l -> List.fold_left (fun acc (_, v) -> max acc v) acc l)
        1 parts
    | exception Analysis.Not_orderable _ -> -1
  in
  {
    name;
    productions;
    symbols;
    attributes;
    rules_total = !rules_total;
    rules_implicit = !rules_implicit;
    rules_copy = !rules_copy;
    max_visits;
  }

let implicit_fraction t =
  if t.rules_total = 0 then 0.0
  else float_of_int t.rules_implicit /. float_of_int t.rules_total

let to_json t =
  let module J = Vhdl_telemetry.Telemetry.Json in
  J.obj
    [
      ("name", J.str t.name);
      ("productions", J.int t.productions);
      ("symbols", J.int t.symbols);
      ("attributes", J.int t.attributes);
      ("rules_total", J.int t.rules_total);
      ("rules_implicit", J.int t.rules_implicit);
      ("rules_copy", J.int t.rules_copy);
      ("implicit_fraction", J.float (implicit_fraction t));
      ( "max_visits",
        if t.max_visits < 0 then "null" else J.int t.max_visits );
    ]

let table_json stats =
  Vhdl_telemetry.Telemetry.Json.arr (List.map to_json stats)

(* ------------------------------------------------------------------ *)
(* Hot-rule profiler table, from the provenance recorder's aggregation *)

(** Print the hot-rule table: one row per (AG, defining production,
    attribute), hottest first, to [limit] rows (0 = all), with a totals
    footer.  The applications total equals the [ag.rule_applications]
    telemetry counter over the recorded period — the cross-check the
    provenance tests hold it to. *)
let pp_profile ?(limit = 24) fmt (rows : Provenance.profile_row list) =
  let shown, dropped =
    if limit <= 0 || List.length rows <= limit then (rows, 0)
    else
      ( List.filteri (fun i _ -> i < limit) rows,
        List.length rows - limit )
  in
  let kb aw =
    aw *. float_of_int Vhdl_telemetry.Telemetry.bytes_per_word /. 1024.0
  in
  Format.fprintf fmt "@[<v>%-5s %-34s %-10s %8s %8s %8s %10s %10s@," "ag"
    "production" "attribute" "evals" "apps" "memo" "self-ms" "alloc-kb";
  List.iter
    (fun (r : Provenance.profile_row) ->
      Format.fprintf fmt "%-5s %-34s %-10s %8d %8d %8d %10.2f %10.1f@,"
        r.Provenance.p_ag r.Provenance.p_prod r.Provenance.p_attr
        r.Provenance.p_count r.Provenance.p_applications r.Provenance.p_memo_hits
        (r.Provenance.p_self_s *. 1000.0)
        (kb r.Provenance.p_self_aw))
    shown;
  if dropped > 0 then Format.fprintf fmt "... %d cooler rows not shown@," dropped;
  let tc, ta, tm, ts, taw =
    List.fold_left
      (fun (c, a, m, s, aw) (r : Provenance.profile_row) ->
        ( c + r.Provenance.p_count,
          a + r.Provenance.p_applications,
          m + r.Provenance.p_memo_hits,
          s +. r.Provenance.p_self_s,
          aw +. r.Provenance.p_self_aw ))
      (0, 0, 0, 0.0, 0.0) rows
  in
  Format.fprintf fmt "%-5s %-34s %-10s %8d %8d %8d %10.2f %10.1f@]" "total"
    (Printf.sprintf "(%d rows)" (List.length rows))
    "" tc ta tm (ts *. 1000.0) (kb taw)

let profile_json (rows : Provenance.profile_row list) =
  let module J = Vhdl_telemetry.Telemetry.Json in
  J.arr
    (List.map
       (fun (r : Provenance.profile_row) ->
         J.obj
           [
             ("ag", J.str r.Provenance.p_ag);
             ("production", J.str r.Provenance.p_prod);
             ("attribute", J.str r.Provenance.p_attr);
             ("evals", J.int r.Provenance.p_count);
             ("applications", J.int r.Provenance.p_applications);
             ("memo_hits", J.int r.Provenance.p_memo_hits);
             ("self_s", J.float r.Provenance.p_self_s);
             ( "self_alloc_b",
               J.float
                 (r.Provenance.p_self_aw
                 *. float_of_int Vhdl_telemetry.Telemetry.bytes_per_word) );
           ])
       rows)

let pp_table fmt stats =
  let columns = List.map (fun s -> s.name) stats in
  Format.fprintf fmt "@[<v>%-18s" "";
  List.iter (fun c -> Format.fprintf fmt " %12s" c) columns;
  Format.fprintf fmt "@,";
  let row label f =
    Format.fprintf fmt "%-18s" label;
    List.iter (fun s -> Format.fprintf fmt " %12s" (f s)) stats;
    Format.fprintf fmt "@,"
  in
  row "productions" (fun s -> string_of_int s.productions);
  row "symbols" (fun s -> string_of_int s.symbols);
  row "attributes" (fun s -> string_of_int s.attributes);
  row "rules(implicit)" (fun s -> Printf.sprintf "%d(%d)" s.rules_total s.rules_implicit);
  row "copy rules" (fun s -> string_of_int s.rules_copy);
  row "max visits" (fun s -> if s.max_visits < 0 then "n/a" else string_of_int s.max_visits);
  Format.fprintf fmt "@]"
