(** Attribute evaluation over derivation trees.

    Demand-driven and memoizing: asking for any attribute triggers exactly
    the semantic-rule applications its value transitively depends on, each
    at most once.  A staged (plan-based) variant forces attributes pass by
    pass following {!Analysis.visit_partitions}, the way Linguist's
    generated evaluators proceed. *)

type 'v t

exception Cycle of { prod_name : string; attr_name : string }
(** Raised when demand evaluation encounters a genuine circularity (caught
    statically by {!Analysis.compute} for strongly noncircular grammars). *)

exception
  Missing_rule of {
    prod_name : string;
    attr_name : string;
    pos : int;
  }

exception Fuel_exhausted of { applications : int; limit : int }
(** Raised when the rule-application budget given to {!create} (or
    {!set_fuel}) runs out — the resource-containment hook: a runaway
    evaluation surfaces as a catchable, structured condition. *)

type 'v provenance = Provenance.t * string * ('v -> string)
(** A provenance hook: the recorder, the AG's label in the records (e.g.
    ["vhdl"], ["expr"]), and a compact value summarizer. *)

val create :
  ?token_line:(int -> 'v) ->
  ?fuel:int ->
  ?tick:(unit -> unit) ->
  ?provenance:'v provenance ->
  ?copy_elide:bool ->
  'v Grammar.t ->
  root_inherited:(string * 'v) list ->
  'v Tree.t ->
  'v t
(** Prepare a derivation tree for evaluation.  [root_inherited] supplies
    the root's inherited attributes by name; [token_line] injects a token's
    source line into the value type for rules depending on the LINE token
    attribute.  [fuel] bounds the total number of semantic-rule
    applications ({!Fuel_exhausted} beyond it); [tick] is called every 256
    applications — the wall-clock deadline hook.  [provenance] records
    every attribute-instance computation into the given recorder; without
    it the only residue is one option test per evaluation.  [copy_elide]
    (default [true]) moves copy-rule values by reference instead of
    applying the identity rule — see {!Grammar.rule.copy_of}; the
    differential oracle's reference side turns it off. *)

val set_fuel : 'v t -> int option -> unit

val goal : 'v t -> string -> 'v
(** Value of a synthesized attribute at the root — the paper's "goal
    attributes", the results of the translation. *)

val rule_applications : 'v t -> int
(** Semantic-rule applications so far (bench instrumentation). *)

val evaluate_staged : 'v t -> partitions:(int * int) list array -> int
(** Force every attribute pass by pass following per-symbol visit
    partitions; returns the number of passes run.  Values agree with demand
    evaluation.  (Superseded by {!evaluate_plan} on the hot path; kept for
    the visit statistics and the strategy-agreement tests.) *)

val evaluate_all : 'v t -> unit
(** Force every declared attribute of every node (demand order). *)

(** {1 Per-region evaluation}

    The exception firewall (lib/core/supervisor) evaluates each design
    unit's goal attributes at its own subtree root so one poisoned unit
    cannot take down its siblings. *)

type 'v site
(** An interior node of the decorated tree. *)

val sites : 'v t -> symbol:string -> 'v site list
(** Nodes whose production's left-hand side is [symbol], in source order. *)

val eval_at : 'v t -> 'v site -> string -> 'v
(** Value of attribute [name] at the site; inherited attributes resolve
    through the parent chain. *)

val evaluate_plan : ?site:'v site -> 'v t -> plan:Analysis.plan -> int
(** Drive evaluation from a static plan ({!Analysis.plan}): pass by pass,
    bottom-up over the tree (or the subtree under [site]), forcing per
    production exactly the non-copy synthesized attributes the plan
    assigned to the pass.  Copy targets move by reference on first read
    (elision); inherited attributes are pulled on demand.  Returns the
    number of passes run. *)

val site_id : 'v site -> int
(** Provenance node id of the site: the key under which the site's goal
    attributes appear in a {!Provenance} recorder. *)

val site_line : 'v site -> int
(** Source line of the site's first token (0 for an empty region). *)

val site_leaf_values : ?limit:int -> 'v site -> 'v list
(** Token values of the first [limit] (default 64) leaves under the site,
    in source order — for labelling the region in diagnostics. *)

val clear_in_progress : 'v t -> unit
(** Drop in-progress memo cells left by an evaluation that escaped
    mid-rule, so sibling regions do not see phantom cycles; completed
    values are kept. *)
