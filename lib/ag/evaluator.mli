(** Attribute evaluation over derivation trees.

    Demand-driven and memoizing: asking for any attribute triggers exactly
    the semantic-rule applications its value transitively depends on, each
    at most once.  A staged (plan-based) variant forces attributes pass by
    pass following {!Analysis.visit_partitions}, the way Linguist's
    generated evaluators proceed. *)

type 'v t

exception Cycle of { prod_name : string; attr_name : string }
(** Raised when demand evaluation encounters a genuine circularity (caught
    statically by {!Analysis.compute} for strongly noncircular grammars). *)

exception
  Missing_rule of {
    prod_name : string;
    attr_name : string;
    pos : int;
  }

val create :
  ?token_line:(int -> 'v) ->
  'v Grammar.t ->
  root_inherited:(string * 'v) list ->
  'v Tree.t ->
  'v t
(** Prepare a derivation tree for evaluation.  [root_inherited] supplies
    the root's inherited attributes by name; [token_line] injects a token's
    source line into the value type for rules depending on the LINE token
    attribute. *)

val goal : 'v t -> string -> 'v
(** Value of a synthesized attribute at the root — the paper's "goal
    attributes", the results of the translation. *)

val rule_applications : 'v t -> int
(** Semantic-rule applications so far (bench instrumentation). *)

val evaluate_staged : 'v t -> partitions:(int * int) list array -> int
(** Force every attribute pass by pass following per-symbol visit
    partitions; returns the number of passes run.  Values agree with demand
    evaluation. *)

val evaluate_all : 'v t -> unit
(** Force every declared attribute of every node (demand order). *)
