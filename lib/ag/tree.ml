(** Derivation trees of an attribute grammar.

    The LALR driver ({!Vhdl_lalr.Driver}) produces these; the evaluator
    ({!Evaluator}) decorates them.  Leaves carry the token value — the
    mechanism the paper uses to attach symbol-table entries to LEF tokens. *)

type 'v t =
  | Node of { prod : int; children : 'v t array }
  | Leaf of { term : int; value : 'v; line : int }

let node prod children = Node { prod; children = Array.of_list children }
let leaf ~term ~value ~line = Leaf { term; value; line }

let rec size = function
  | Leaf _ -> 1
  | Node { children; _ } -> Array.fold_left (fun acc c -> acc + size c) 1 children

let rec depth = function
  | Leaf _ -> 1
  | Node { children; _ } ->
    1 + Array.fold_left (fun acc c -> max acc (depth c)) 0 children

(** First token line in the subtree, if any: used for error positions. *)
let rec first_line = function
  | Leaf { line; _ } -> Some line
  | Node { children; _ } ->
    let rec scan i =
      if i >= Array.length children then None
      else
        match first_line children.(i) with
        | Some _ as l -> l
        | None -> scan (i + 1)
    in
    scan 0

let pp grammar fmt tree =
  let rec go fmt = function
    | Leaf { term; line; _ } ->
      Format.fprintf fmt "%s@%d" (Grammar.symbol_name grammar term) line
    | Node { prod; children } ->
      let p = Grammar.production grammar prod in
      Format.fprintf fmt "@[<v 2>(%s" p.Grammar.prod_name;
      Array.iter (fun c -> Format.fprintf fmt "@,%a" go c) children;
      Format.fprintf fmt ")@]"
  in
  go fmt tree
