(** Attribute provenance: the dynamic attribute dependency graph.

    When a recorder is armed, the evaluator records every attribute-instance
    computation as a {!record} — which production's rule fired, on which
    tree node, what it produced, what it cost — with edges to the attribute
    instances it read.  The result is the dynamic dependency graph of the
    evaluation as an immutable value next to the attribute values
    themselves: the debugging artifact of Ikezoe et al.'s "Systematic
    Debugging of Attribute Grammars", and the data source for the why-chain
    printer ([vhdlc explain]), the DOT exporter, and the hot-rule profiler.

    One recorder can span several evaluators: the cascade's expression AG
    ([exprEval]) picks up the {e ambient} recorder, so its records nest
    under the principal-AG instance whose rule invoked the cascade and the
    explain chain crosses the AG boundary. *)

(** How an attribute instance got its value. *)
type kind =
  | Rule of Grammar.provenance  (** a semantic rule fired (explicit or
                                    implicit attribute-class completion) *)
  | Copy of Grammar.provenance
      (** a copy rule the evaluator elided: the value moved by reference
          from its source instance (the collapsed dependency edge), no
          semantic function was applied *)
  | Token  (** a terminal's VAL or LINE attribute, supplied by the scanner *)
  | Root_inherited  (** an inherited attribute supplied at the tree root *)
  | Unknown  (** the computation escaped before it was classified *)

val kind_label : kind -> string

(** One attribute-instance computation. *)
type record = {
  r_id : int;  (** dense, unique within the recorder, in begin order *)
  r_ag : string;  (** which AG: ["vhdl"] or ["expr"] *)
  r_prod : string;  (** production (or terminal) of the instance's node *)
  r_node : int;  (** tree-node id, unique across all trees in the process *)
  r_attr : string;
  r_line : int;  (** source line of the node's first token (0 if none) *)
  mutable r_kind : kind;
  mutable r_rule : string option;
      (** defining production of the rule that fired — for inherited
          attributes this is the parent's production, not [r_prod] *)
  mutable r_value : string;  (** compact summary of the computed value *)
  mutable r_self_s : float;  (** cost minus the cost of its dependencies *)
  mutable r_total_s : float;
  mutable r_self_aw : float;
      (** minor-heap words allocated by this computation, its dependencies
          excluded — the allocation mirror of [r_self_s], snapshotted
          allocation-free ([Gc.minor_words]) so recording does not perturb
          what it measures *)
  mutable r_total_aw : float;
  mutable r_memo_hits : int;  (** later reads served from the memo cache *)
  mutable r_applications : int;  (** semantic-rule applications charged here *)
  mutable r_deps : int list;  (** record ids read, in read order *)
  mutable r_aborted : bool;  (** the computation escaped with an exception *)
}

type t
(** A recorder: an append-only store of records plus the open-computation
    stack that wires dependency edges and self-time accounting. *)

val create : unit -> t

val records : t -> record list
(** All records, oldest first. *)

val size : t -> int

val get : t -> int -> record option
(** Record by id. *)

val find : t -> node:int -> attr:string -> record option
(** Latest completed record for attribute [attr] of tree node [node]. *)

val instances_at : t -> node:int -> record list
(** All completed records sitting on tree node [node], oldest first. *)

(** {1 Evaluator-side API}

    Called by {!Evaluator} when a recorder is armed.  [begin_instance] /
    [finish] / [abort] bracket one attribute-instance computation;
    dependency edges and self-time flow through the recorder's stack, so
    nested evaluators (the cascade) link up automatically. *)

val begin_instance :
  t -> ag:string -> prod:string -> node:int -> attr:string -> line:int -> record

val finish : t -> record -> value:string -> unit

val abort : t -> record -> unit
(** Close a record whose computation escaped; it stays in the graph, marked
    aborted, so a crash's partial provenance is still explorable. *)

val memo_hit : t -> node:int -> attr:string -> unit
(** A read was served from the memo cache: add a dependency edge from the
    open computation to the instance's existing record. *)

val note_rule : t -> defining_prod:string -> implicit:bool -> unit
(** The open computation is about to apply a semantic rule living in
    [defining_prod]. *)

val note_copy : t -> defining_prod:string -> implicit:bool -> unit
(** The open computation is a copy rule the evaluator elided: its value
    moves by reference from the source instance, so no rule application is
    charged — only the collapsed dependency edge (recorded when the source
    is read) remains, keeping [vhdlc explain] chains truthful. *)

val note_token : t -> unit
val note_root_inherited : t -> unit

(** {1 Ambient recorder}

    The cascade boundary: [exprEval] is called from inside semantic rules
    with no handle on the compiler, so the recorder in force is published
    dynamically. *)

val with_ambient : t -> (unit -> 'a) -> 'a
val ambient : unit -> t option

(** {1 Consumers} *)

val pp_why_chain :
  ?depth:int -> ?max_deps:int -> t -> Format.formatter -> int -> unit
(** Print the transitive provenance slice (the why-chain) rooted at a
    record id: the instance, its value, its cost, and — indented — the
    instances it read, to [depth] levels (default 6).  Repeated records are
    referenced back instead of re-expanded; [max_deps] (default 16) bounds
    the fan-out printed per record. *)

val to_dot : ?depth:int -> t -> root:int -> string
(** The same slice as a GraphViz digraph (records as boxes, reads as
    edges), for [dot -Tsvg].  Expression-AG records are shaded so the
    cascade boundary is visible. *)

(** {1 Hot-rule profiler} *)

(** Aggregation of the records by (AG, defining production, attribute). *)
type profile_row = {
  p_ag : string;
  p_prod : string;  (** defining production, or ["<token>"]/["<root>"] *)
  p_attr : string;
  p_count : int;  (** instances computed *)
  p_applications : int;  (** semantic-rule applications *)
  p_memo_hits : int;
  p_self_s : float;  (** summed self-cost *)
  p_self_aw : float;  (** summed self-allocated minor words *)
}

val profile : t -> profile_row list
(** Rows sorted hottest first (self-cost, then applications).  The sum of
    [p_applications] over all rows equals the evaluators' rule-application
    count for the recorded period — the telemetry cross-check. *)
