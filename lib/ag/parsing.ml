(** From attribute grammar to LALR(1) parser.

    The paper's Linguist generates an LALR parser from the AG's underlying
    context-free grammar and an attribute evaluator from its semantic rules;
    this module is that first half.  The same machinery serves both the
    principal VHDL grammar (tokens from the file scanner) and the expression
    grammar (tokens from a LEF list). *)

module Cfg = Vhdl_lalr.Cfg
module Table = Vhdl_lalr.Table
module Driver = Vhdl_lalr.Driver

type 'v t = {
  grammar : 'v Grammar.t;
  table : Table.t;
  eof : int;
}

exception
  Conflicts of {
    grammar_name : string;
    report : string;
  }

(** Underlying CFG of an attribute grammar.  [eof] names a declared terminal
    that the lexer emits at end of input. *)
let cfg_of_grammar (g : 'v Grammar.t) ~eof =
  let eof_id = Grammar.find_symbol g eof in
  let n = Grammar.n_symbols g in
  let is_terminal = Array.init n (Grammar.is_terminal g) in
  let productions =
    Array.init (Grammar.n_productions g) (fun id ->
        let p = Grammar.production g id in
        { Cfg.id; lhs = p.Grammar.lhs; rhs = p.Grammar.rhs })
  in
  Cfg.create ~n_symbols:n ~is_terminal ~productions ~start:g.Grammar.start ~eof:eof_id
    ~symbol_name:(Grammar.symbol_name g)

(** Build the parser.  By default any LALR conflict is an error (the AG
    author must resolve it by restructuring, per the paper's discussion);
    pass [~allow_conflicts:true] to accept the yacc-style resolution. *)
let create ?(allow_conflicts = false) ?(name = "grammar") (g : 'v Grammar.t) ~eof =
  let cfg = cfg_of_grammar g ~eof in
  let table = Table.build cfg in
  if (not allow_conflicts) && table.Table.conflicts <> [] then begin
    let report =
      Format.asprintf "@[<v>%a@]"
        (Format.pp_print_list (Table.pp_conflict table))
        table.Table.conflicts
    in
    raise (Conflicts { grammar_name = name; report })
  end;
  { grammar = g; table; eof = Grammar.find_symbol g eof }

let conflicts t = t.table.Table.conflicts

(** Parse a token stream into a derivation tree of the AG. *)
let parse t ~lexer =
  Driver.parse t.table ~lexer
    ~shift:(fun term value line -> Tree.leaf ~term ~value ~line)
    ~reduce:(fun prod children -> Tree.node prod children)

let list_lexer t ~eof_value tokens =
  let remaining = ref tokens in
  let last_line = ref 0 in
  fun () ->
    match !remaining with
    | tok :: rest ->
      remaining := rest;
      last_line := tok.Driver.t_line;
      tok
    | [] -> { Driver.t_sym = t.eof; t_value = eof_value; t_line = !last_line }

(** Parse a pre-materialized token list (the LEF case: the scanner "just
    takes the next LEF token off the front of the list"). *)
let parse_list t ~eof_value tokens =
  parse t ~lexer:(list_lexer t ~eof_value tokens)

(** Parse a token list with panic-mode error recovery (see
    {!Vhdl_lalr.Driver.parse_recovering}): every syntax error in the list
    is reported, and the well-formed regions between the checkpoints
    survive into the returned derivation tree. *)
let parse_list_recovering ?max_errors ?max_depth t ~eof_value ~checkpoint
    ~classify tokens : 'v Tree.t Driver.recovery =
  Driver.parse_recovering ?max_errors ?max_depth t.table
    ~lexer:(list_lexer t ~eof_value tokens)
    ~eof:t.eof
    ~shift:(fun term value line -> Tree.leaf ~term ~value ~line)
    ~reduce:(fun prod children -> Tree.node prod children)
    ~checkpoint ~classify
