(** Phase attribution: maps the compiler's prose phase names to the
    short ["ph_<name>"] event fields, renders "p99 driven by" strings,
    and decides the adaptive slow-request (exemplar) threshold.
    Microseconds throughout. *)

val short_phase : string -> string
(** ["attribute evaluation"] → ["attrs"], ["codegen+link (elaboration)"]
    → ["elaborate"], …; unknown names are sanitized to [[A-Za-z0-9_]]. *)

val with_other : service_us:float -> (string * float) list -> (string * float) list
(** Short-named positive phase self-times plus the ["other"] residual
    (service time no compiler phase claimed), summing to [service_us]. *)

val fields : (string * float) list -> (string * Obs_event.field_value) list
(** One numeric ["ph_<name>"] event field per phase. *)

val with_other_alloc :
  alloc_b:float -> (string * float) list -> (string * float) list
(** The allocation twin of {!with_other}: short-named positive per-phase
    self-allocated bytes plus the ["other"] residual, summing to
    [alloc_b]. *)

val fields_alloc : (string * float) list -> (string * Obs_event.field_value) list
(** One numeric ["al_<name>"] event field (bytes) per phase. *)

val attribution : ?top:int -> (string * float) list -> string
(** ["elaborate 48%, cascade 31%"] — the largest [top] (default 3)
    shares, sub-1% shares elided; [""] when nothing to attribute. *)

val exemplar_threshold_us :
  objectives:Obs_slo.objectives ->
  summary:Obs_slo.summary ->
  k:float ->
  min_observed:int ->
  float option
(** Latency above which a finished request earns an exemplar dump: the
    p99 objective when one is configured, else [k] × the window p50
    once the window holds [min_observed] measured requests ([None]
    before that — no defensible baseline, no dumping). *)
