(** The observability hub a daemon carries: every emitted event goes to
    the always-on flight-recorder ring and, when configured, to the
    append-only JSONL sink; flight dumps serialize the ring (plus a full
    metrics snapshot and the SLO window) to a timestamped file.

    The sink is line-buffered and flushed per event: an event line is
    durable once {!emit} returns, so a log read after a clean drain — or
    after a crash — never ends mid-line.  The write is one small
    [output_string] on a buffered channel; the serve smoke test gates
    its cost on the warm request path. *)

module Tm = Vhdl_telemetry.Telemetry

let m_events = Tm.counter "serve.events"
let m_dumps = Tm.counter "serve.flight_dumps"
let m_exemplars = Tm.counter "serve.exemplars"
let m_exemplars_suppressed = Tm.counter "serve.exemplars_suppressed"
let m_dumps_pruned = Tm.counter "serve.dumps_pruned"

type config = {
  o_events_out : string option; (* JSONL sink; None = ring only *)
  o_ring_events : int; (* flight-recorder event capacity *)
  o_ring_requests : int; (* per-request counter-delta capacity *)
  o_flight_dir : string; (* where flight dumps land *)
  o_max_dumps : int; (* retention cap on dump files; 0 = unlimited *)
  o_exemplar_min_gap_s : float; (* rate limit between exemplar dumps *)
}

let default_config =
  {
    o_events_out = None;
    o_ring_events = 256;
    o_ring_requests = 32;
    o_flight_dir = ".";
    o_max_dumps = 32;
    o_exemplar_min_gap_s = 1.0;
  }

type t = {
  cfg : config;
  ring : Obs_ring.t;
  sink : out_channel option;
  mutable dump_seq : int;
  mutable last_exemplar_s : float; (* telemetry clock of the last one *)
}

let create (cfg : config) =
  let sink =
    match cfg.o_events_out with
    | None -> None
    | Some path ->
      Some (open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 path)
  in
  {
    cfg;
    ring = Obs_ring.create ~events:cfg.o_ring_events ~requests:cfg.o_ring_requests ();
    sink;
    dump_seq = 0;
    last_exemplar_s = neg_infinity;
  }

let ring t = t.ring

(** Record an event: always into the ring, and durably onto the JSONL
    sink when one is configured.  A sink that went away (disk error,
    already-closed channel during double shutdown) degrades to
    ring-only; observability must never kill the daemon. *)
let emit t (e : Obs_event.t) =
  Tm.incr m_events;
  Obs_ring.push t.ring e;
  match t.sink with
  | None -> ()
  | Some oc -> (
    try
      output_string oc (Obs_event.to_line e);
      flush oc
    with Sys_error _ -> ())

(** Convenience: build and emit in one step. *)
let event t ?rid ?fields kind = emit t (Obs_event.make ?rid ?fields kind)

let note_request_delta t ~rid counters =
  Obs_ring.note_request_delta t.ring ~rid counters

(* ------------------------------------------------------------------ *)
(* Flight dumps *)

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* retention only touches files this module wrote *)
let is_dump_file name =
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  (has_prefix "flight-" || has_prefix "exemplar-")
  && Filename.check_suffix name ".json"

(** Enforce [o_max_dumps]: delete the oldest dump files (flight and
    exemplar alike) until at most the cap remain, so a flapping firewall
    or a sustained slow spell cannot fill the disk.  Oldest = smallest
    mtime, file name as the tiebreak (the UTC-timestamped names sort
    chronologically).  Best-effort: a dump directory that cannot be
    listed or a file that cannot be removed is not worth failing the
    daemon over. *)
let prune_dumps t =
  if t.cfg.o_max_dumps > 0 then
    match Sys.readdir t.cfg.o_flight_dir with
    | exception Sys_error _ -> ()
    | names ->
      let dumps =
        List.filter_map
          (fun name ->
            if not (is_dump_file name) then None
            else
              let path = Filename.concat t.cfg.o_flight_dir name in
              match Unix.stat path with
              | st -> Some (st.Unix.st_mtime, name, path)
              | exception Unix.Unix_error _ -> None)
          (Array.to_list names)
      in
      let excess = List.length dumps - t.cfg.o_max_dumps in
      if excess > 0 then
        List.iteri
          (fun i (_, _, path) ->
            if i < excess then (
              try
                Sys.remove path;
                Tm.incr m_dumps_pruned
              with Sys_error _ -> ()))
          (List.sort compare dumps)

(** Write a flight dump: the ring (events + per-request counter deltas),
    the reason and implicated request id, a full metrics snapshot, and
    any extra top-level fields — to
    [FLIGHT_DIR/flight-<utc>-<pid>-<seq>[-rid<N>]-<reason>.json].
    Returns the path written. *)
let dump_flight t ?(extra = []) ~reason ?rid () : (string, string) result =
  t.dump_seq <- t.dump_seq + 1;
  let name =
    Printf.sprintf "flight-%s-%d-%03d%s-%s.json" (timestamp ()) (Unix.getpid ())
      t.dump_seq
      (match rid with Some r -> Printf.sprintf "-rid%d" r | None -> "")
      reason
  in
  let path = Filename.concat t.cfg.o_flight_dir name in
  let body =
    Obs_ring.dump_json
      ~extra:(("metrics", Tm.metrics_json ()) :: extra)
      ~reason ?rid t.ring
  in
  match
    Vhdl_util.Unix_compat.mkdir_p t.cfg.o_flight_dir;
    Vhdl_util.Unix_compat.write_file path body
  with
  | () ->
    Tm.incr m_dumps;
    prune_dumps t;
    Ok path
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Exemplar dumps: the full story of one slow request *)

type exemplar = {
  x_rid : int;
  x_verb : string;
  x_status : string;
  x_service_us : float;
  x_threshold_us : float; (* what made it slow *)
  x_phases_us : (string * float) list; (* short-named, with "other" *)
  x_trace : string; (* Chrome trace-event JSON of the request's spans *)
  x_spans_dropped : int; (* spans past the per-request buffer cap *)
}

module Json = Tm.Json

(** Write a slow-request exemplar to
    [FLIGHT_DIR/exemplar-<utc>-<pid>-<seq>-rid<N>.json]: the request's
    own span tree as an embedded Chrome trace, its phase breakdown, the
    threshold it exceeded, and its recorded counter delta.  Rate-limited
    to one per [o_exemplar_min_gap_s] on the telemetry clock ([Ok None]
    when suppressed — a slow spell is a handful of exemplars, not one
    dump per slow request) and subject to the same retention cap as
    flight dumps. *)
let dump_exemplar ?now t (x : exemplar) : (string option, string) result =
  let now = match now with Some s -> s | None -> Tm.now_s () in
  if now -. t.last_exemplar_s < t.cfg.o_exemplar_min_gap_s then begin
    Tm.incr m_exemplars_suppressed;
    Ok None
  end
  else begin
    t.last_exemplar_s <- now;
    t.dump_seq <- t.dump_seq + 1;
    let name =
      Printf.sprintf "exemplar-%s-%d-%03d-rid%d.json" (timestamp ())
        (Unix.getpid ()) t.dump_seq x.x_rid
    in
    let path = Filename.concat t.cfg.o_flight_dir name in
    let counters =
      match Obs_ring.find_request_delta t.ring ~rid:x.x_rid with
      | Some d ->
        Json.obj
          (List.map (fun (k, v) -> (k, Json.int v)) d.Obs_ring.rd_counters)
      | None -> "null"
    in
    let body =
      Json.obj
        [
          ("dumped_at_s", Json.float now);
          ("reason", Json.str "exemplar");
          ("rid", Json.int x.x_rid);
          ("verb", Json.str x.x_verb);
          ("status", Json.str x.x_status);
          ("service_us", Json.float x.x_service_us);
          ("threshold_us", Json.float x.x_threshold_us);
          ( "phases_us",
            Json.obj (List.map (fun (k, v) -> (k, Json.float v)) x.x_phases_us)
          );
          ("spans_dropped", Json.int x.x_spans_dropped);
          ("counters", counters);
          ("trace", x.x_trace);
        ]
    in
    match
      Vhdl_util.Unix_compat.mkdir_p t.cfg.o_flight_dir;
      Vhdl_util.Unix_compat.write_file path body
    with
    | () ->
      Tm.incr m_exemplars;
      prune_dumps t;
      Ok (Some path)
    | exception Sys_error msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  end

let close t =
  match t.sink with
  | None -> ()
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
