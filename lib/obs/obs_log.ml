(** The observability hub a daemon carries: every emitted event goes to
    the always-on flight-recorder ring and, when configured, to the
    append-only JSONL sink; flight dumps serialize the ring (plus a full
    metrics snapshot and the SLO window) to a timestamped file.

    The sink is line-buffered and flushed per event: an event line is
    durable once {!emit} returns, so a log read after a clean drain — or
    after a crash — never ends mid-line.  The write is one small
    [output_string] on a buffered channel; the serve smoke test gates
    its cost on the warm request path. *)

module Tm = Vhdl_telemetry.Telemetry

let m_events = Tm.counter "serve.events"
let m_dumps = Tm.counter "serve.flight_dumps"

type config = {
  o_events_out : string option; (* JSONL sink; None = ring only *)
  o_ring_events : int; (* flight-recorder event capacity *)
  o_ring_requests : int; (* per-request counter-delta capacity *)
  o_flight_dir : string; (* where flight dumps land *)
}

let default_config =
  {
    o_events_out = None;
    o_ring_events = 256;
    o_ring_requests = 32;
    o_flight_dir = ".";
  }

type t = {
  cfg : config;
  ring : Obs_ring.t;
  sink : out_channel option;
  mutable dump_seq : int;
}

let create (cfg : config) =
  let sink =
    match cfg.o_events_out with
    | None -> None
    | Some path ->
      Some (open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 path)
  in
  {
    cfg;
    ring = Obs_ring.create ~events:cfg.o_ring_events ~requests:cfg.o_ring_requests ();
    sink;
    dump_seq = 0;
  }

let ring t = t.ring

(** Record an event: always into the ring, and durably onto the JSONL
    sink when one is configured.  A sink that went away (disk error,
    already-closed channel during double shutdown) degrades to
    ring-only; observability must never kill the daemon. *)
let emit t (e : Obs_event.t) =
  Tm.incr m_events;
  Obs_ring.push t.ring e;
  match t.sink with
  | None -> ()
  | Some oc -> (
    try
      output_string oc (Obs_event.to_line e);
      flush oc
    with Sys_error _ -> ())

(** Convenience: build and emit in one step. *)
let event t ?rid ?fields kind = emit t (Obs_event.make ?rid ?fields kind)

let note_request_delta t ~rid counters =
  Obs_ring.note_request_delta t.ring ~rid counters

(* ------------------------------------------------------------------ *)
(* Flight dumps *)

let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(** Write a flight dump: the ring (events + per-request counter deltas),
    the reason and implicated request id, a full metrics snapshot, and
    any extra top-level fields — to
    [FLIGHT_DIR/flight-<utc>-<pid>-<seq>[-rid<N>]-<reason>.json].
    Returns the path written. *)
let dump_flight t ?(extra = []) ~reason ?rid () : (string, string) result =
  t.dump_seq <- t.dump_seq + 1;
  let name =
    Printf.sprintf "flight-%s-%d-%03d%s-%s.json" (timestamp ()) (Unix.getpid ())
      t.dump_seq
      (match rid with Some r -> Printf.sprintf "-rid%d" r | None -> "")
      reason
  in
  let path = Filename.concat t.cfg.o_flight_dir name in
  let body =
    Obs_ring.dump_json
      ~extra:(("metrics", Tm.metrics_json ()) :: extra)
      ~reason ?rid t.ring
  in
  match
    Vhdl_util.Unix_compat.mkdir_p t.cfg.o_flight_dir;
    Vhdl_util.Unix_compat.write_file path body
  with
  | () ->
    Tm.incr m_dumps;
    Ok path
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close t =
  match t.sink with
  | None -> ()
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
