(** The observability hub a daemon carries: events go to the always-on
    flight-recorder ring and, when configured, to a per-event-flushed
    append-only JSONL sink; {!dump_flight} serializes the ring plus a
    metrics snapshot to a timestamped file for post-mortems. *)

type config = {
  o_events_out : string option; (* JSONL sink; None = ring only *)
  o_ring_events : int; (* flight-recorder event capacity *)
  o_ring_requests : int; (* per-request counter-delta capacity *)
  o_flight_dir : string; (* where flight dumps land *)
  o_max_dumps : int; (* retention cap on dump files; 0 = unlimited *)
  o_exemplar_min_gap_s : float; (* rate limit between exemplar dumps *)
}

val default_config : config

type t

val create : config -> t
(** Opens the sink in append mode when [o_events_out] is set. *)

val ring : t -> Obs_ring.t

val emit : t -> Obs_event.t -> unit
(** Ring push + durable JSONL line (flushed before returning). *)

val event :
  t -> ?rid:int -> ?fields:(string * Obs_event.field_value) list ->
  Obs_event.kind -> unit
(** Build with the telemetry clock and emit in one step. *)

val note_request_delta : t -> rid:int -> (string * int) list -> unit

val dump_flight :
  t -> ?extra:(string * string) list -> reason:string -> ?rid:int -> unit ->
  (string, string) result
(** Write [FLIGHT_DIR/flight-<utc>-<pid>-<seq>[-rid<N>]-<reason>.json]
    containing the ring, a metrics snapshot, and [extra] top-level
    fields; returns the path written.  Retention ([o_max_dumps]) is
    enforced after every write. *)

type exemplar = {
  x_rid : int;
  x_verb : string;
  x_status : string;
  x_service_us : float;
  x_threshold_us : float; (* what made it slow *)
  x_phases_us : (string * float) list; (* short-named, with "other" *)
  x_trace : string; (* Chrome trace-event JSON of the request's spans *)
  x_spans_dropped : int; (* spans past the per-request buffer cap *)
}

val dump_exemplar : ?now:float -> t -> exemplar -> (string option, string) result
(** Write a slow-request exemplar to
    [FLIGHT_DIR/exemplar-<utc>-<pid>-<seq>-rid<N>.json] — the request's
    span tree as an embedded Chrome trace, its phase breakdown, its
    counter delta from the flight-recorder ring.  Rate-limited to one
    per [o_exemplar_min_gap_s] ([Ok None] when suppressed); retention
    ([o_max_dumps]) is enforced after every write.  [now] overrides the
    telemetry clock (tests). *)

val prune_dumps : t -> unit
(** Enforce the retention cap now (also runs after every dump). *)

val close : t -> unit
