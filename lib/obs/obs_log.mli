(** The observability hub a daemon carries: events go to the always-on
    flight-recorder ring and, when configured, to a per-event-flushed
    append-only JSONL sink; {!dump_flight} serializes the ring plus a
    metrics snapshot to a timestamped file for post-mortems. *)

type config = {
  o_events_out : string option; (* JSONL sink; None = ring only *)
  o_ring_events : int; (* flight-recorder event capacity *)
  o_ring_requests : int; (* per-request counter-delta capacity *)
  o_flight_dir : string; (* where flight dumps land *)
}

val default_config : config

type t

val create : config -> t
(** Opens the sink in append mode when [o_events_out] is set. *)

val ring : t -> Obs_ring.t

val emit : t -> Obs_event.t -> unit
(** Ring push + durable JSONL line (flushed before returning). *)

val event :
  t -> ?rid:int -> ?fields:(string * Obs_event.field_value) list ->
  Obs_event.kind -> unit
(** Build with the telemetry clock and emit in one step. *)

val note_request_delta : t -> rid:int -> (string * int) list -> unit

val dump_flight :
  t -> ?extra:(string * string) list -> reason:string -> ?rid:int -> unit ->
  (string, string) result
(** Write [FLIGHT_DIR/flight-<utc>-<pid>-<seq>[-rid<N>]-<reason>.json]
    containing the ring, a metrics snapshot, and [extra] top-level
    fields; returns the path written. *)

val close : t -> unit
