(** Typed events of the compile-service event log: the unit of the JSONL
    sink and of the in-memory flight recorder.  Request-correlated events
    carry the request id that the daemon also echoes in the response
    header and threads into telemetry spans.

    Request lifecycle grammar, validated by {!check_log}:
    [accept (admit start finish | shed | reject)]. *)

type kind =
  | Accept (* connection accepted; the request id is assigned here *)
  | Admit (* past admission control, into the queue *)
  | Shed (* admission rejection: overload or draining *)
  | Start (* response computation begins *)
  | Finish (* response delivered (or the client was gone) *)
  | Reject (* frame never became a request; no response was owed *)
  | Recycle (* the warm worker was replaced *)
  | Drain (* lifecycle: drain begins / daemon stopped *)
  | Breach (* a rolling SLO objective was violated *)
  | Heap_breach (* the heap-health watchdog detected sustained growth *)
  | Dump (* a flight-recorder dump was written *)
  | Flush (* periodic metrics flush *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type field_value =
  | S of string
  | I of int
  | F of float

type t = {
  e_ts : float; (* seconds since process start (the telemetry clock) *)
  e_kind : kind;
  e_rid : int option; (* request id, when the event is about one *)
  e_fields : (string * field_value) list;
}

val make : ?rid:int -> ?fields:(string * field_value) list -> kind -> t
(** Stamp an event with the telemetry clock. *)

val field : t -> string -> field_value option
val field_str : t -> string -> string option

val field_num : t -> string -> float option
(** Numeric field ([F] or [I]); [None] for strings and absences. *)

val phase_prefix : string
(** ["ph_"] — the field-name prefix of per-phase attribution. *)

val phase_fields : t -> (string * float) list
(** The phase breakdown a finish event carries: [(short name,
    microseconds)] for every numeric ["ph_<name>"] field. *)

val alloc_prefix : string
(** ["al_"] — the field-name prefix of per-phase allocation attribution
    (bytes).  Distinct from the ["alloc_b"]/["alloc_minor_b"]/
    ["alloc_major_b"] totals, which do not start with ["al_"]. *)

val alloc_fields : t -> (string * float) list
(** The allocation breakdown a finish event carries: [(short name,
    bytes)] for every numeric ["al_<name>"] field. *)

val to_json : t -> string
val to_line : t -> string
(** One flat JSON object, newline-terminated. *)

val of_line : string -> (t, string) result

val read_log : string -> (t list * string list, string) result
(** Parse a whole JSONL event log.  A malformed {e final} line (crash
    mid-write) is skipped and reported as a warning in the second
    component; malformed lines with well-formed lines after them are
    real corruption and fail the read. *)

val check_log : t list -> string list
(** Violations of the request-lifecycle grammar: monotone accept rids,
    exactly one start/finish pair per substantive response, no orphan
    rids, and — on finish events carrying both — the per-phase
    attribution summing to within 10% of [service_us], and the [al_*]
    allocation attribution summing to within 10% of [alloc_b] (4 KiB
    floor).  Empty means well-formed. *)
