(** The flight recorder's memory: fixed-size rings of the last N events
    and the per-request telemetry-counter deltas of the last M requests.
    Always on (a push is an array store), dumped on demand. *)

type t

type request_delta = {
  rd_rid : int;
  rd_counters : (string * int) list; (* telemetry counters this request moved *)
}

val create : ?events:int -> ?requests:int -> unit -> t
(** Capacities: last [events] events (default 256), last [requests]
    per-request counter deltas (default 32). *)

val push : t -> Obs_event.t -> unit
val note_request_delta : t -> rid:int -> (string * int) list -> unit

val events : t -> Obs_event.t list
(** Recorded window, oldest first. *)

val request_deltas : t -> request_delta list

val find_request_delta : t -> rid:int -> request_delta option
(** The recorded counter delta of request [rid], newest match first —
    what an exemplar dump embeds. *)

val pushed : t -> int
(** Total events ever pushed (≥ the recorded window). *)

val dump_json :
  ?extra:(string * string) list -> reason:string -> ?rid:int -> t -> string
(** Render the recorder as a self-contained flight-dump JSON document;
    [extra] adds top-level fields (metrics snapshot, SLO summary). *)
