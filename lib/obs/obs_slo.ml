(** Rolling SLO windows: time-sliced summaries of service latency, shed
    rate, and contained-escape ([internal]) rate, checked against
    configurable objectives.

    The telemetry histograms (PR 3) summarize a whole process lifetime;
    a service needs "the last minute".  The window here is a ring of
    fixed-width time buckets: observing a request lands it in the bucket
    of [now / bucket width], reusing slots ring-wise and resetting a
    slot whose epoch has passed — O(1) per observation, constant
    memory, and no timer thread (expiry happens lazily on the next
    observe/summary touching a stale slot).

    Latency inside each bucket uses the same power-of-two buckets as
    {!Vhdl_telemetry.Telemetry}'s histograms, so a window that spans the
    whole run reports the very percentiles the process-lifetime
    histogram does — the chaos campaign checks that agreement
    end-to-end. *)

module Tm = Vhdl_telemetry.Telemetry

let hist_buckets = Tm.histogram_buckets

type bucket = {
  mutable b_epoch : int; (* absolute bucket index; -1 = never used *)
  mutable b_requests : int;
  mutable b_shed : int;
  mutable b_internal : int;
  mutable b_observed : int; (* latency samples *)
  mutable b_min : float;
  mutable b_max : float;
  b_hist : int array;
  b_phase : (string, float ref) Hashtbl.t; (* per-phase self-time, us *)
  b_alloc : (string, float ref) Hashtbl.t; (* per-phase allocation, bytes *)
  mutable b_alloc_b : float; (* total request allocation, bytes *)
}

type t = {
  bucket_s : float;
  buckets : bucket array;
}

let window_s t = t.bucket_s *. float_of_int (Array.length t.buckets)

(** [create ~window_s ~buckets ()] — a sliding window of [window_s]
    seconds (default 60) sliced into [buckets] slots (default 12, i.e.
    5-second granularity at the default width). *)
let create ?(window_s = 60.0) ?(buckets = 12) () =
  let buckets = max 1 buckets and window_s = Float.max window_s 1e-3 in
  {
    bucket_s = window_s /. float_of_int buckets;
    buckets =
      Array.init buckets (fun _ ->
          {
            b_epoch = -1;
            b_requests = 0;
            b_shed = 0;
            b_internal = 0;
            b_observed = 0;
            b_min = infinity;
            b_max = neg_infinity;
            b_hist = Array.make hist_buckets 0;
            b_phase = Hashtbl.create 8;
            b_alloc = Hashtbl.create 8;
            b_alloc_b = 0.0;
          });
  }

let reset_bucket b epoch =
  b.b_epoch <- epoch;
  b.b_requests <- 0;
  b.b_shed <- 0;
  b.b_internal <- 0;
  b.b_observed <- 0;
  b.b_min <- infinity;
  b.b_max <- neg_infinity;
  Array.fill b.b_hist 0 hist_buckets 0;
  Hashtbl.reset b.b_phase;
  Hashtbl.reset b.b_alloc;
  b.b_alloc_b <- 0.0

let slot_for t ~now =
  let epoch = int_of_float (now /. t.bucket_s) in
  let b = t.buckets.(epoch mod Array.length t.buckets) in
  if b.b_epoch <> epoch then reset_bucket b epoch;
  b

(** Record one request outcome.  [latency_us] is given for requests that
    ran (the same value the [serve.latency_us] telemetry histogram
    observes); sheds have no service latency.  [phases] is the request's
    per-phase attribution [(phase, microseconds)] and [allocs] its
    allocation twin [(phase, bytes)], [alloc_b] the request's total
    allocated bytes — all aggregated per bucket so the window can say
    where its time {e and} its memory went. *)
let observe t ~now ?latency_us ?(phases = []) ?(allocs = []) ?(alloc_b = 0.0)
    ~shed ~internal () =
  let b = slot_for t ~now in
  b.b_requests <- b.b_requests + 1;
  if shed then b.b_shed <- b.b_shed + 1;
  if internal then b.b_internal <- b.b_internal + 1;
  List.iter
    (fun (name, us) ->
      match Hashtbl.find_opt b.b_phase name with
      | Some r -> r := !r +. us
      | None -> Hashtbl.add b.b_phase name (ref us))
    phases;
  List.iter
    (fun (name, bytes) ->
      match Hashtbl.find_opt b.b_alloc name with
      | Some r -> r := !r +. bytes
      | None -> Hashtbl.add b.b_alloc name (ref bytes))
    allocs;
  b.b_alloc_b <- b.b_alloc_b +. alloc_b;
  match latency_us with
  | None -> ()
  | Some x ->
    b.b_observed <- b.b_observed + 1;
    if x < b.b_min then b.b_min <- x;
    if x > b.b_max then b.b_max <- x;
    let i = Tm.bucket_of x in
    b.b_hist.(i) <- b.b_hist.(i) + 1

(* ------------------------------------------------------------------ *)
(* Summaries *)

type summary = {
  s_window_s : float;
  s_requests : int;
  s_observed : int; (* requests with a measured service latency *)
  s_shed : int;
  s_internal : int;
  s_p50_us : float;
  s_p95_us : float;
  s_p99_us : float;
  s_shed_pct : float; (* shed / requests, as a percentage *)
  s_internal_pct : float;
  s_phase_us : (string * float) list; (* per-phase self-time, largest first *)
  s_alloc_b : float; (* total request allocation in the window, bytes *)
  s_alloc_phase_b : (string * float) list; (* per-phase allocation, largest first *)
}

(* merged percentile over live buckets: same walk as
   Telemetry.percentile, clamped to the observed min/max *)
let percentile_merged ~count ~min_v ~max_v hist p =
  if count = 0 then 0.0
  else begin
    let target = max 1 (int_of_float (Float.ceil (p *. float_of_int count))) in
    let target = min target count in
    let rec walk i cum =
      if i >= hist_buckets then max_v
      else
        let cum = cum + hist.(i) in
        if cum >= target then if i = 0 then 1.0 else Float.pow 2.0 (float_of_int i)
        else walk (i + 1) cum
    in
    Float.min max_v (Float.max min_v (walk 0 0))
  end

(** Summarize the buckets still inside the window ending at [now]. *)
let summary t ~now : summary =
  let now_epoch = int_of_float (now /. t.bucket_s) in
  let n = Array.length t.buckets in
  let requests = ref 0 and observed = ref 0 and shed = ref 0 and internal = ref 0 in
  let min_v = ref infinity and max_v = ref neg_infinity in
  let hist = Array.make hist_buckets 0 in
  let phase = Hashtbl.create 8 in
  let alloc = Hashtbl.create 8 in
  let alloc_b = ref 0.0 in
  Array.iter
    (fun b ->
      if b.b_epoch >= 0 && now_epoch - b.b_epoch < n then begin
        requests := !requests + b.b_requests;
        observed := !observed + b.b_observed;
        shed := !shed + b.b_shed;
        internal := !internal + b.b_internal;
        if b.b_min < !min_v then min_v := b.b_min;
        if b.b_max > !max_v then max_v := b.b_max;
        Array.iteri (fun i k -> hist.(i) <- hist.(i) + k) b.b_hist;
        Hashtbl.iter
          (fun name r ->
            Hashtbl.replace phase name
              (!r +. Option.value (Hashtbl.find_opt phase name) ~default:0.0))
          b.b_phase;
        Hashtbl.iter
          (fun name r ->
            Hashtbl.replace alloc name
              (!r +. Option.value (Hashtbl.find_opt alloc name) ~default:0.0))
          b.b_alloc;
        alloc_b := !alloc_b +. b.b_alloc_b
      end)
    t.buckets;
  let pct k = if !requests = 0 then 0.0 else 100.0 *. float_of_int k /. float_of_int !requests in
  let pc p = percentile_merged ~count:!observed ~min_v:!min_v ~max_v:!max_v hist p in
  {
    s_window_s = window_s t;
    s_requests = !requests;
    s_observed = !observed;
    s_shed = !shed;
    s_internal = !internal;
    s_p50_us = pc 0.50;
    s_p95_us = pc 0.95;
    s_p99_us = pc 0.99;
    s_shed_pct = pct !shed;
    s_internal_pct = pct !internal;
    s_phase_us =
      List.sort
        (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun name us acc -> (name, us) :: acc) phase []);
    s_alloc_b = !alloc_b;
    s_alloc_phase_b =
      List.sort
        (fun (_, a) (_, b) -> compare b a)
        (Hashtbl.fold (fun name bts acc -> (name, bts) :: acc) alloc []);
  }

(* ------------------------------------------------------------------ *)
(* Objectives *)

type objectives = {
  o_p99_ms : float option; (* window p99 service latency must stay below *)
  o_shed_pct : float option; (* window shed rate must stay below *)
}

let no_objectives = { o_p99_ms = None; o_shed_pct = None }

type breach = {
  br_metric : string; (* "p99_ms" | "shed_pct" *)
  br_value : float;
  br_objective : float;
}

(** Objectives violated by [s].  Latency objectives need at least one
    observed request; rate objectives need at least one request in the
    window (an empty window breaches nothing). *)
let breaches (o : objectives) (s : summary) : breach list =
  List.concat
    [
      (match o.o_p99_ms with
      | Some limit when s.s_observed > 0 && s.s_p99_us /. 1000.0 > limit ->
        [ { br_metric = "p99_ms"; br_value = s.s_p99_us /. 1000.0; br_objective = limit } ]
      | _ -> []);
      (match o.o_shed_pct with
      | Some limit when s.s_requests > 0 && s.s_shed_pct > limit ->
        [ { br_metric = "shed_pct"; br_value = s.s_shed_pct; br_objective = limit } ]
      | _ -> []);
    ]

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_summary fmt (s : summary) =
  Format.fprintf fmt
    "window %.0fs: %d requests (%d measured) — p50 %.0fus p95 %.0fus p99 %.0fus, \
     shed %.1f%%, internal %.1f%%, alloc %.0fkB"
    s.s_window_s s.s_requests s.s_observed s.s_p50_us s.s_p95_us s.s_p99_us
    s.s_shed_pct s.s_internal_pct (s.s_alloc_b /. 1024.0)

let summary_json (s : summary) =
  let j = Tm.Json.float in
  Tm.Json.obj
    [
      ("window_s", j s.s_window_s);
      ("requests", Tm.Json.int s.s_requests);
      ("observed", Tm.Json.int s.s_observed);
      ("shed", Tm.Json.int s.s_shed);
      ("internal", Tm.Json.int s.s_internal);
      ("p50_us", j s.s_p50_us);
      ("p95_us", j s.s_p95_us);
      ("p99_us", j s.s_p99_us);
      ("shed_pct", j s.s_shed_pct);
      ("internal_pct", j s.s_internal_pct);
      ( "phase_us",
        Tm.Json.obj (List.map (fun (name, us) -> (name, j us)) s.s_phase_us) );
      ("alloc_b", j s.s_alloc_b);
      ( "alloc_phase_b",
        Tm.Json.obj
          (List.map (fun (name, bts) -> (name, j bts)) s.s_alloc_phase_b) );
    ]
