(** Phase attribution: the vocabulary connecting the compiler's
    {!Vhdl_util.Phase_timer} phase names, the ["ph_<name>"] fields a
    finish event carries, the per-phase window aggregation in
    {!Obs_slo}, and the "p99 driven by: elaborate 48%" line operators
    read.

    The compiler's phase names are prose ("attribute evaluation",
    "codegen+link (elaboration)"); events want short stable field names
    ("attrs", "elaborate").  The map lives here, in one place, so the
    worker stamping phases, the breach event naming a culprit, and
    [vhdlc analyze] tabulating a log all agree.

    Attribution is in microseconds throughout — the unit of
    [service_us] and the SLO window.  The ["other"] pseudo-phase holds
    whatever service time no compiler phase claimed (queue-adjacent
    work, protocol framing, response delivery), which is what makes the
    per-event invariant "phase sum ≈ latency" hold by construction:
    phases measure self time {e inside} the worker, latency is measured
    around the whole request. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(** Short, stable field name of a compiler phase. *)
let short_phase = function
  | "scanner" -> "scan"
  | "parser" -> "parse"
  | "attribute evaluation" -> "attrs"
  | "expression evaluation (cascade)" -> "cascade"
  | "VIF read" -> "vif_read"
  | "VIF write" -> "vif_write"
  | "codegen+link (elaboration)" -> "elaborate"
  | "simulation" -> "simulate"
  | other -> sanitize other

(** Short-named phase attribution of one request: positive phase
    self-times (microseconds) plus the ["other"] residual, summing to
    [service_us] exactly as long as the phases fit inside the latency
    (they do — self time nests inside the request's wall clock). *)
let with_other ~service_us (phases_us : (string * float) list) =
  let named =
    List.filter_map
      (fun (name, us) ->
        if us > 0.0 then Some (short_phase name, us) else None)
      phases_us
  in
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 named in
  named @ [ ("other", Float.max 0.0 (service_us -. sum)) ]

(** The event fields of an attribution: one numeric ["ph_<name>"] per
    phase. *)
let fields (phases_us : (string * float) list) =
  List.map
    (fun (name, us) -> (Obs_event.phase_prefix ^ name, Obs_event.F us))
    phases_us

(** The allocation twin of {!with_other}: short-named positive per-phase
    self-allocated bytes plus the ["other"] residual (request allocation
    no compiler phase claimed — protocol framing, span bookkeeping), so
    the ["al_*"] fields sum to [alloc_b] by construction. *)
let with_other_alloc ~alloc_b (allocs_b : (string * float) list) =
  let named =
    List.filter_map
      (fun (name, b) -> if b > 0.0 then Some (short_phase name, b) else None)
      allocs_b
  in
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 named in
  named @ [ ("other", Float.max 0.0 (alloc_b -. sum)) ]

(** One numeric ["al_<name>"] event field (bytes) per phase. *)
let fields_alloc (allocs_b : (string * float) list) =
  List.map
    (fun (name, b) -> (Obs_event.alloc_prefix ^ name, Obs_event.F b))
    allocs_b

(** ["elaborate 48%, cascade 31%"] — the largest [top] shares of a
    phase table, shares below 1% elided; [""] when there is nothing to
    attribute. *)
let attribution ?(top = 3) (phases_us : (string * float) list) =
  let total = List.fold_left (fun a (_, v) -> a +. v) 0.0 phases_us in
  if total <= 0.0 then ""
  else begin
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) phases_us in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    take top sorted
    |> List.filter_map (fun (name, us) ->
           let pct = 100.0 *. us /. total in
           if pct < 1.0 then None
           else Some (Printf.sprintf "%s %.0f%%" name pct))
    |> String.concat ", "
  end

(** The adaptive slow-request threshold: above it, a finished request
    earns an exemplar dump.  With a p99 objective configured the
    operator has already said what "slow" means — the objective itself.
    Without one, slow is [k]× the window's p50, once the window holds
    at least [min_observed] measured requests (an empty or near-empty
    window has no defensible p50; no threshold, no exemplars, rather
    than dumping on the first warm-up request). *)
let exemplar_threshold_us ~(objectives : Obs_slo.objectives)
    ~(summary : Obs_slo.summary) ~k ~min_observed : float option =
  match objectives.Obs_slo.o_p99_ms with
  | Some p99_ms -> Some (p99_ms *. 1000.0)
  | None ->
    if summary.Obs_slo.s_observed >= min_observed && summary.Obs_slo.s_p50_us > 0.0
    then Some (k *. summary.Obs_slo.s_p50_us)
    else None
