(** Offline analytics over a serve event log — the engine behind
    [vhdlc analyze].  Percentiles replay the events through {!Obs_slo}
    so the offline numbers use the live window's own bucketized
    estimator; {!against} diffs two logs with the perf library's
    noise-aware significance rule. *)

type slow = {
  sl_rid : int;
  sl_verb : string;
  sl_status : string;
  sl_service_us : float;
  sl_phases_us : (string * float) list;
}

type slice = {
  c_start_s : float; (* offset from the log's first event *)
  c_summary : Obs_slo.summary;
}

type report = {
  a_events : int;
  a_span_s : float; (* last ts - first ts *)
  a_finishes : int;
  a_sheds : int;
  a_rejects : int;
  a_recycles : int;
  a_breaches : int;
  a_heap_breaches : int;
  a_dumps : int;
  a_statuses : (string * int) list; (* finish statuses, most common first *)
  a_shed_reasons : (string * int) list;
  a_summary : Obs_slo.summary; (* whole-log window, incl. phase table *)
  a_tail_phase_us : (string * float) list; (* slowest decile only *)
  a_slowest : slow list; (* top-K by service latency *)
  a_slices : slice list; (* per-window timeline *)
}

val analyze : ?window_s:float -> ?top_k:int -> Obs_event.t list -> report
(** Aggregate a parsed log: whole-log window summary with phase
    attribution, tail (slowest-decile) attribution, the [top_k]
    (default 5) slowest requests, and a timeline of [window_s] (default
    60) slices. *)

val series_of : Obs_event.t list -> (string * float array) list
(** Named sample series in seconds: ["service"] plus one series per
    phase — what {!against} feeds the perf diff. *)

val against :
  ?threshold:float ->
  ?min_samples:int ->
  base:Obs_event.t list ->
  cur:Obs_event.t list ->
  unit ->
  Vhdl_perf.Perf.Diff.row list
(** Diff two logs' latency and per-phase series with the bench gate's
    rule: regression only when the median ratio clears [threshold] and
    the bootstrap CIs are disjoint. *)

val pp : Format.formatter -> report -> unit
val to_json : report -> string
