(** Rolling SLO windows: a ring of fixed-width time buckets summarizing
    the last window of service latency (p50/p95/p99), shed rate, and
    contained-escape rate, checked against configurable objectives.
    Latency uses the same power-of-two buckets as the telemetry
    histograms, so a window spanning the whole run agrees with the
    process-lifetime percentiles. *)

type t

val create : ?window_s:float -> ?buckets:int -> unit -> t
(** A sliding window of [window_s] seconds (default 60) sliced into
    [buckets] slots (default 12).  Expiry is lazy; no timer thread. *)

val window_s : t -> float

val observe :
  t ->
  now:float ->
  ?latency_us:float ->
  ?phases:(string * float) list ->
  ?allocs:(string * float) list ->
  ?alloc_b:float ->
  shed:bool ->
  internal:bool ->
  unit ->
  unit
(** Record one request outcome into the bucket holding [now].
    [latency_us] is supplied for requests that ran (the same value the
    [serve.latency_us] histogram observes); sheds have none.  [phases]
    is the request's per-phase attribution [(phase, microseconds)],
    [allocs] its allocation twin [(phase, bytes)], and [alloc_b] the
    request's total allocated bytes — all aggregated per bucket. *)

type summary = {
  s_window_s : float;
  s_requests : int;
  s_observed : int; (* requests with a measured service latency *)
  s_shed : int;
  s_internal : int;
  s_p50_us : float;
  s_p95_us : float;
  s_p99_us : float;
  s_shed_pct : float;
  s_internal_pct : float;
  s_phase_us : (string * float) list; (* per-phase self-time, largest first *)
  s_alloc_b : float; (* total request allocation in the window, bytes *)
  s_alloc_phase_b : (string * float) list; (* per-phase allocation, largest first *)
}

val summary : t -> now:float -> summary
(** Merge the buckets still inside the window ending at [now]. *)

type objectives = {
  o_p99_ms : float option; (* window p99 service latency must stay below *)
  o_shed_pct : float option; (* window shed rate must stay below *)
}

val no_objectives : objectives

type breach = {
  br_metric : string; (* "p99_ms" | "shed_pct" *)
  br_value : float;
  br_objective : float;
}

val breaches : objectives -> summary -> breach list
(** Objectives violated by a summary; an empty window breaches nothing. *)

val pp_summary : Format.formatter -> summary -> unit
val summary_json : summary -> string
