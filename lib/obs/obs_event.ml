(** Typed events of the compile-service event log.

    One event is one line of the append-only JSONL sink ([serve.events])
    and one slot of the in-memory flight recorder.  Every event that is
    about a particular request carries that request's id — the same id
    the daemon echoes in the [vhdl-serve/1] response header and threads
    into telemetry spans, so a request's log lines, trace, and
    client-visible response all correlate on one number.

    The vocabulary is deliberately small and the life of a request is a
    fixed grammar over it:

    {v
      accept (admit start finish | shed | reject)
    v}

    - a request that gets a substantive response (any status except the
      admission sheds) has exactly one [start] and one [finish];
    - an admission rejection (queue full, draining) is a [shed];
    - a frame that never became a request (client vanished mid-frame)
      is a [reject].

    [recycle], [drain], [breach], [dump] and [flush] are daemon-level
    events; they carry a request id only when one is implicated (the
    request whose escape tripped the firewall, for instance).

    Encoding is one flat JSON object per line —
    [{"ts":1.042,"ev":"finish","rid":7,"status":"ok",...}] — readable by
    humans, greppable by shell, and parsed back by {!of_line} for the
    validators (the chaos campaign and the test battery check the
    grammar above over a real log). *)

module Tm = Vhdl_telemetry.Telemetry

type kind =
  | Accept (* connection accepted; the request id is assigned here *)
  | Admit (* past admission control, into the queue *)
  | Shed (* admission rejection: overload or draining *)
  | Start (* response computation begins *)
  | Finish (* response delivered (or the client was gone) *)
  | Reject (* frame never became a request; no response was owed *)
  | Recycle (* the warm worker was replaced *)
  | Drain (* lifecycle: drain begins / daemon stopped *)
  | Breach (* a rolling SLO objective was violated *)
  | Heap_breach (* the heap-health watchdog detected sustained growth *)
  | Dump (* a flight-recorder dump was written *)
  | Flush (* periodic metrics flush *)

let kind_name = function
  | Accept -> "accept"
  | Admit -> "admit"
  | Shed -> "shed"
  | Start -> "start"
  | Finish -> "finish"
  | Reject -> "reject"
  | Recycle -> "recycle"
  | Drain -> "drain"
  | Breach -> "breach"
  | Heap_breach -> "heap_breach"
  | Dump -> "dump"
  | Flush -> "flush"

let kind_of_name = function
  | "accept" -> Some Accept
  | "admit" -> Some Admit
  | "shed" -> Some Shed
  | "start" -> Some Start
  | "finish" -> Some Finish
  | "reject" -> Some Reject
  | "recycle" -> Some Recycle
  | "drain" -> Some Drain
  | "breach" -> Some Breach
  | "heap_breach" -> Some Heap_breach
  | "dump" -> Some Dump
  | "flush" -> Some Flush
  | _ -> None

(* kind-specific payload: strings stay strings, measurements stay
   numbers, so the JSONL is directly loadable into anything columnar *)
type field_value =
  | S of string
  | I of int
  | F of float

type t = {
  e_ts : float; (* seconds since process start (the telemetry clock) *)
  e_kind : kind;
  e_rid : int option; (* request id, when the event is about one *)
  e_fields : (string * field_value) list;
}

let make ?rid ?(fields = []) kind =
  { e_ts = Tm.now_s (); e_kind = kind; e_rid = rid; e_fields = fields }

let field t name = List.assoc_opt name t.e_fields

let field_str t name =
  match field t name with
  | Some (S s) -> Some s
  | Some (I n) -> Some (string_of_int n)
  | Some (F x) -> Some (Printf.sprintf "%g" x)
  | None -> None

let field_num t name =
  match field t name with
  | Some (F x) -> Some x
  | Some (I n) -> Some (float_of_int n)
  | Some (S _) | None -> None

(* the per-phase attribution a finish event carries: one ["ph_<name>"]
   numeric field (microseconds of self time) per phase, "other" holding
   whatever service time no compiler phase claimed; the allocation twin
   is one ["al_<name>"] field (bytes of self-allocation) per phase.
   "al_" cannot collide with the "alloc_b"/"alloc_minor_b" totals: those
   continue "all…", not "al_". *)
let phase_prefix = "ph_"
let alloc_prefix = "al_"

let prefixed_fields prefix t : (string * float) list =
  List.filter_map
    (fun (k, v) ->
      let p = String.length prefix in
      if String.length k > p && String.sub k 0 p = prefix then
        match v with
        | F x -> Some (String.sub k p (String.length k - p), x)
        | I n -> Some (String.sub k p (String.length k - p), float_of_int n)
        | S _ -> None
      else None)
    t.e_fields

let phase_fields t = prefixed_fields phase_prefix t
let alloc_fields t = prefixed_fields alloc_prefix t

(* ------------------------------------------------------------------ *)
(* JSONL encoding *)

let json_of_value = function
  | S s -> Tm.Json.str s
  | I n -> Tm.Json.int n
  | F x -> Tm.Json.float x

let to_json t =
  Tm.Json.obj
    (List.concat
       [
         [ ("ts", Tm.Json.float t.e_ts); ("ev", Tm.Json.str (kind_name t.e_kind)) ];
         (match t.e_rid with Some r -> [ ("rid", Tm.Json.int r) ] | None -> []);
         List.map (fun (k, v) -> (k, json_of_value v)) t.e_fields;
       ])

let to_line t = to_json t ^ "\n"

(* ------------------------------------------------------------------ *)
(* Decoding, for the validators.  Built on the perf library's JSON
   reader — the inverse of the Telemetry.Json builder used above. *)

module J = Vhdl_perf.Perf.Json_in

let of_json (j : J.t) : (t, string) result =
  match j with
  | J.Obj fields -> (
    let ts =
      match List.assoc_opt "ts" fields with
      | Some (J.Num x) -> Some x
      | _ -> None
    in
    let ev =
      match List.assoc_opt "ev" fields with
      | Some (J.Str s) -> kind_of_name s
      | _ -> None
    in
    match (ts, ev) with
    | None, _ -> Error "event without a numeric ts"
    | _, None -> Error "event without a known ev kind"
    | Some ts, Some kind ->
      let rid =
        match List.assoc_opt "rid" fields with
        | Some (J.Num x) -> Some (int_of_float x)
        | _ -> None
      in
      let rest =
        List.filter_map
          (fun (k, v) ->
            if k = "ts" || k = "ev" || k = "rid" then None
            else
              match v with
              | J.Str s -> Some (k, S s)
              | J.Num x ->
                if Float.is_integer x && Float.abs x < 1e15 then
                  Some (k, I (int_of_float x))
                else Some (k, F x)
              | _ -> None)
          fields
      in
      Ok { e_ts = ts; e_kind = kind; e_rid = rid; e_fields = rest })
  | _ -> Error "event line is not a JSON object"

let of_line line =
  match J.parse line with
  | Error e -> Error e
  | Ok j -> of_json j

(** Parse a whole event log (one JSON object per line; blank lines
    ignored).  A malformed {e final} line is the signature of a crash
    mid-write (the sink flushes per event, so only the very last line
    can be torn): it is skipped with a counted warning rather than
    failing the read, so post-mortem analytics still run on a log whose
    writer died.  A malformed line {e followed by} well-formed ones is
    real corruption and still fails — a log that does not parse
    end-to-end is itself a finding. *)
let read_log path : (t list * string list, string) result =
  let text = Vhdl_util.Unix_compat.read_file path in
  let lines = String.split_on_char '\n' text in
  let rec go n acc warnings = function
    | [] -> Ok (List.rev acc, List.rev warnings)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" then go (n + 1) acc warnings rest
      else (
        match of_line trimmed with
        | Ok e -> go (n + 1) (e :: acc) warnings rest
        | Error msg ->
          if List.exists (fun l -> String.trim l <> "") rest then
            Error (Printf.sprintf "%s:%d: %s" path n msg)
          else
            go (n + 1) acc
              (Printf.sprintf "%s:%d: skipped truncated trailing line (%s)"
                 path n msg
              :: warnings)
              rest)
  in
  go 1 [] [] lines

(* ------------------------------------------------------------------ *)
(* Log invariants — the request-lifecycle grammar, checked over a real
   log by the chaos campaign, the smoke script, and the test battery. *)

(** Violations of the event grammar over a parsed log:
    - request ids are assigned monotonically (strictly increasing across
      [accept] events);
    - every [start] has exactly one [finish] with the same rid, and vice
      versa;
    - every [admit], [shed], [start], [finish] and [reject] names a rid
      that some [accept] assigned.
    Returns human-readable violation strings; empty means the log is
    well-formed. *)
let check_log (events : t list) : string list =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let accepts = Hashtbl.create 64 in
  let last_accept = ref min_int in
  let starts = Hashtbl.create 64 and finishes = Hashtbl.create 64 in
  let count tbl rid = Hashtbl.replace tbl rid (1 + Option.value (Hashtbl.find_opt tbl rid) ~default:0) in
  List.iter
    (fun e ->
      match (e.e_kind, e.e_rid) with
      | Accept, Some rid ->
        if rid <= !last_accept then
          bad "accept rid %d not monotone (previous accept was %d)" rid !last_accept;
        last_accept := rid;
        Hashtbl.replace accepts rid ()
      | Accept, None -> bad "accept event without a rid"
      | (Admit | Shed | Start | Finish | Reject), None ->
        bad "%s event without a rid" (kind_name e.e_kind)
      | (Admit | Shed | Start | Finish | Reject), Some rid ->
        if not (Hashtbl.mem accepts rid) then
          bad "%s names rid %d that no accept assigned" (kind_name e.e_kind) rid;
        if e.e_kind = Start then count starts rid;
        if e.e_kind = Finish then begin
          count finishes rid;
          (* phase attribution must account for the latency it explains:
             a finish that carries both service_us and ph_* fields has
             their sum within 10% of the latency (1us floor so a
             sub-microsecond daemon-verb answer never false-positives) *)
          (match field_num e "service_us" with
          | None -> ()
          | Some svc -> (
            match phase_fields e with
            | [] -> ()
            | phases ->
              let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 phases in
              let tolerance = Float.max (0.10 *. svc) 1.0 in
              if Float.abs (sum -. svc) > tolerance then
                bad
                  "rid %d finish: phase sum %.0fus disagrees with service_us \
                   %.0fus (tolerance %.0fus)"
                  rid sum svc tolerance));
          (* allocation attribution must likewise account for the total
             it explains: al_* bytes sum to alloc_b within 10%, with a
             page-ish floor so GC-counter granularity on a tiny request
             never false-positives *)
          match field_num e "alloc_b" with
          | None -> ()
          | Some total -> (
            match alloc_fields e with
            | [] -> ()
            | allocs ->
              let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 allocs in
              let tolerance = Float.max (0.10 *. total) 4096.0 in
              if Float.abs (sum -. total) > tolerance then
                bad
                  "rid %d finish: alloc sum %.0fB disagrees with alloc_b \
                   %.0fB (tolerance %.0fB)"
                  rid sum total tolerance)
        end
      | (Recycle | Drain | Breach | Heap_breach | Dump | Flush), _ -> ())
    events;
  Hashtbl.iter
    (fun rid n ->
      let m = Option.value (Hashtbl.find_opt finishes rid) ~default:0 in
      if n <> 1 then bad "rid %d has %d start events" rid n;
      if m <> n then bad "rid %d has %d start but %d finish events" rid n m)
    starts;
  Hashtbl.iter
    (fun rid m ->
      if not (Hashtbl.mem starts rid) then
        bad "rid %d has %d finish events but no start" rid m)
    finishes;
  List.rev !violations
