(** Offline analytics over a serve event log — the engine behind
    [vhdlc analyze EVENTS.jsonl].

    The summary percentiles deliberately run through {!Obs_slo} itself:
    the finish/shed events are replayed into a window wide enough to
    hold the whole log, so [analyze] reports the {e same} bucketized
    p50/p95/p99 a live daemon's window would — an operator can diff the
    offline number against the [slo] verb's live one without chasing
    estimator skew (exact sample percentiles vs power-of-two buckets
    can legitimately disagree by up to 2x at bucket edges).  The chaos
    campaign asserts this agreement end to end.

    Everything else — the phase-attribution tables, the tail breakdown,
    the top-K slowest requests, the timeline slices — is plain
    aggregation over the typed events.  Comparison between two runs
    ({!against}) reuses the perf library's noise-aware diff so a real
    phase regression is flagged while scheduler jitter is not. *)

module Perf = Vhdl_perf.Perf
module Json = Vhdl_telemetry.Telemetry.Json

(* one finished request, as reassembled from its start/finish events *)
type request = {
  rq_rid : int;
  rq_ts : float;
  rq_verb : string;
  rq_status : string;
  rq_service_us : float option;
  rq_phases_us : (string * float) list;
  rq_allocs_b : (string * float) list;
  rq_alloc_b : float option;
}

type slow = {
  sl_rid : int;
  sl_verb : string;
  sl_status : string;
  sl_service_us : float;
  sl_phases_us : (string * float) list;
}

type slice = {
  c_start_s : float; (* offset from the log's first event *)
  c_summary : Obs_slo.summary;
}

type report = {
  a_events : int;
  a_span_s : float; (* last ts - first ts *)
  a_finishes : int;
  a_sheds : int;
  a_rejects : int;
  a_recycles : int;
  a_breaches : int;
  a_heap_breaches : int;
  a_dumps : int;
  a_statuses : (string * int) list; (* finish statuses, most common first *)
  a_shed_reasons : (string * int) list;
  a_summary : Obs_slo.summary; (* whole-log window, incl. phase table *)
  a_tail_phase_us : (string * float) list; (* slowest decile only *)
  a_slowest : slow list; (* top-K by service latency *)
  a_slices : slice list; (* per-window timeline *)
}

(* (ts, latency, phases, allocs, alloc_b, shed, internal) — the
   observable outcome of one request, ready to replay into an Obs_slo
   window *)
type outcome =
  float
  * float option
  * (string * float) list
  * (string * float) list
  * float
  * bool
  * bool

let count_into tbl key =
  Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         if a <> b then compare b a else compare ka kb)

let sum_phases (requests : request list) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      List.iter
        (fun (name, us) ->
          Hashtbl.replace tbl name
            (us +. Option.value (Hashtbl.find_opt tbl name) ~default:0.0))
        r.rq_phases_us)
    requests;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* replay outcomes into a fresh window wide enough to hold them all, so
   the percentiles are the daemon's own bucketized estimator *)
let replay_window (outcomes : outcome list) =
  let first, last =
    List.fold_left
      (fun (lo, hi) (ts, _, _, _, _, _, _) -> (Float.min lo ts, Float.max hi ts))
      (infinity, neg_infinity) outcomes
  in
  let first = if first = infinity then 0.0 else first in
  let last = if last = neg_infinity then 0.0 else last in
  let span_s = Float.max 0.0 (last -. first) in
  let slo = Obs_slo.create ~window_s:(Float.max 1.0 ((span_s +. 1.0) *. 2.0)) () in
  List.iter
    (fun (ts, latency_us, phases, allocs, alloc_b, shed, internal) ->
      Obs_slo.observe slo ~now:ts ?latency_us ~phases ~allocs ~alloc_b ~shed
        ~internal ())
    outcomes;
  Obs_slo.summary slo ~now:last

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let analyze ?(window_s = 60.0) ?(top_k = 5) (events : Obs_event.t list) : report =
  let first_ts = match events with [] -> 0.0 | e :: _ -> e.Obs_event.e_ts in
  let last_ts =
    List.fold_left (fun acc e -> Float.max acc e.Obs_event.e_ts) first_ts events
  in
  (* rid -> verb, learned from start events (finish events carry status,
     not verb — the pair is the request) *)
  let verbs = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match (e.Obs_event.e_kind, e.Obs_event.e_rid) with
      | Obs_event.Start, Some rid -> (
        match Obs_event.field_str e "verb" with
        | Some v -> Hashtbl.replace verbs rid v
        | None -> ())
      | _ -> ())
    events;
  let statuses = Hashtbl.create 8 and shed_reasons = Hashtbl.create 8 in
  let finishes = ref [] in
  let shed_outcomes = ref [] in
  let rejects = ref 0 and recycles = ref 0 and breaches = ref 0 and dumps = ref 0 in
  let heap_breaches = ref 0 in
  List.iter
    (fun e ->
      match e.Obs_event.e_kind with
      | Obs_event.Finish ->
        let status = Option.value (Obs_event.field_str e "status") ~default:"?" in
        count_into statuses status;
        let rid = Option.value e.Obs_event.e_rid ~default:(-1) in
        finishes :=
          {
            rq_rid = rid;
            rq_ts = e.Obs_event.e_ts;
            rq_verb = Option.value (Hashtbl.find_opt verbs rid) ~default:"?";
            rq_status = status;
            rq_service_us = Obs_event.field_num e "service_us";
            rq_phases_us = Obs_event.phase_fields e;
            rq_allocs_b = Obs_event.alloc_fields e;
            rq_alloc_b = Obs_event.field_num e "alloc_b";
          }
          :: !finishes
      | Obs_event.Shed ->
        count_into shed_reasons
          (Option.value (Obs_event.field_str e "reason") ~default:"?");
        shed_outcomes :=
          (e.Obs_event.e_ts, None, [], [], 0.0, true, false) :: !shed_outcomes
      | Obs_event.Reject -> incr rejects
      | Obs_event.Recycle -> incr recycles
      | Obs_event.Breach -> incr breaches
      | Obs_event.Heap_breach -> incr heap_breaches
      | Obs_event.Dump -> incr dumps
      | _ -> ())
    events;
  let finishes = List.rev !finishes in
  (* the daemon answers these inline and keeps their (sub-microsecond)
     latencies out of the SLO window's sample; the replay must do the
     same or the offline p99 drifts from the live one *)
  let inline_verb = function
    | "stats" | "slo" | "shutdown" | "invalid" -> true
    | _ -> false
  in
  let outcomes : outcome list =
    List.map
      (fun r ->
        let inline = inline_verb r.rq_verb in
        ( r.rq_ts,
          (if inline then None else r.rq_service_us),
          (if inline then [] else r.rq_phases_us),
          (if inline then [] else r.rq_allocs_b),
          (if inline then 0.0 else Option.value r.rq_alloc_b ~default:0.0),
          false,
          r.rq_status = "internal" ))
      finishes
    @ List.rev !shed_outcomes
  in
  let a_summary = replay_window outcomes in
  let measured =
    List.filter (fun r -> r.rq_service_us <> None) finishes
    |> List.sort (fun a b ->
           compare
             (Option.value b.rq_service_us ~default:0.0)
             (Option.value a.rq_service_us ~default:0.0))
  in
  let a_tail_phase_us =
    match measured with
    | [] -> []
    | _ -> sum_phases (take (max 1 ((List.length measured + 9) / 10)) measured)
  in
  let a_slowest =
    List.map
      (fun r ->
        {
          sl_rid = r.rq_rid;
          sl_verb = r.rq_verb;
          sl_status = r.rq_status;
          sl_service_us = Option.value r.rq_service_us ~default:0.0;
          sl_phases_us = r.rq_phases_us;
        })
      (take top_k measured)
  in
  (* timeline: fixed [window_s] slices from the first event, each
     summarized by the same replay estimator *)
  let window_s = Float.max 1e-3 window_s in
  let slice_tbl = Hashtbl.create 8 in
  List.iter
    (fun ((ts, _, _, _, _, _, _) as o) ->
      let i = int_of_float ((ts -. first_ts) /. window_s) in
      Hashtbl.replace slice_tbl i
        (o :: Option.value (Hashtbl.find_opt slice_tbl i) ~default:[]))
    outcomes;
  let a_slices =
    Hashtbl.fold (fun i os acc -> (i, os) :: acc) slice_tbl []
    |> List.sort compare
    |> List.map (fun (i, os) ->
           {
             c_start_s = float_of_int i *. window_s;
             c_summary = replay_window os;
           })
  in
  {
    a_events = List.length events;
    a_span_s = Float.max 0.0 (last_ts -. first_ts);
    a_finishes = List.length finishes;
    a_sheds = List.length !shed_outcomes;
    a_rejects = !rejects;
    a_recycles = !recycles;
    a_breaches = !breaches;
    a_heap_breaches = !heap_breaches;
    a_dumps = !dumps;
    a_statuses = sorted_counts statuses;
    a_shed_reasons = sorted_counts shed_reasons;
    a_summary;
    a_tail_phase_us;
    a_slowest;
    a_slices;
  }

(* ------------------------------------------------------------------ *)
(* Comparison: two runs' logs through the perf library's noise gate *)

(** Named sample series of a log, in seconds: ["service"] is every
    measured finish latency; each phase contributes its per-request
    self-time series under its short name.  What {!against} diffs. *)
let series_of (events : Obs_event.t list) : (string * float array) list =
  let service = ref [] in
  let phase_tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if e.Obs_event.e_kind = Obs_event.Finish then begin
        (match Obs_event.field_num e "service_us" with
        | Some us -> service := (us *. 1e-6) :: !service
        | None -> ());
        List.iter
          (fun (name, us) ->
            match Hashtbl.find_opt phase_tbl name with
            | Some r -> r := (us *. 1e-6) :: !r
            | None -> Hashtbl.add phase_tbl name (ref [ us *. 1e-6 ]))
          (Obs_event.phase_fields e)
      end)
    events;
  ("service", Array.of_list (List.rev !service))
  :: (Hashtbl.fold (fun name r acc -> (name, Array.of_list (List.rev !r)) :: acc)
        phase_tbl []
     |> List.sort compare)

(** Diff two logs with the bench gate's significance rule: a series
    regresses only when its median ratio clears the threshold {e and}
    the bootstrap CIs are disjoint. *)
let against ?threshold ?min_samples ~(base : Obs_event.t list)
    ~(cur : Obs_event.t list) () : Perf.Diff.row list =
  Perf.Diff.compare_series ?threshold ?min_samples ~base:(series_of base)
    ~cur:(series_of cur) ()

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_us fmt us =
  if us >= 1e6 then Format.fprintf fmt "%.2fs" (us *. 1e-6)
  else if us >= 1e3 then Format.fprintf fmt "%.1fms" (us *. 1e-3)
  else Format.fprintf fmt "%.0fus" us

let pp_counts fmt counts =
  Format.fprintf fmt "%s"
    (String.concat ", "
       (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) counts))

let pp fmt (r : report) =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt
    "event log: %d events over %.1fs — %d finishes, %d sheds, %d rejects, %d \
     recycles, %d breaches, %d heap breaches, %d dumps@,"
    r.a_events r.a_span_s r.a_finishes r.a_sheds r.a_rejects r.a_recycles
    r.a_breaches r.a_heap_breaches r.a_dumps;
  Format.fprintf fmt "%a@," Obs_slo.pp_summary r.a_summary;
  (match Obs_attr.attribution ~top:4 r.a_summary.Obs_slo.s_phase_us with
  | "" -> ()
  | s -> Format.fprintf fmt "phase attribution (all): %s@," s);
  (match Obs_attr.attribution ~top:4 r.a_tail_phase_us with
  | "" -> ()
  | s -> Format.fprintf fmt "tail attribution (slowest 10%%): %s@," s);
  (match Obs_attr.attribution ~top:4 r.a_summary.Obs_slo.s_alloc_phase_b with
  | "" -> ()
  | s -> Format.fprintf fmt "allocated by: %s@," s);
  if r.a_statuses <> [] then
    Format.fprintf fmt "statuses: %a@," pp_counts r.a_statuses;
  if r.a_shed_reasons <> [] then
    Format.fprintf fmt "shed reasons: %a@," pp_counts r.a_shed_reasons;
  if r.a_slowest <> [] then begin
    Format.fprintf fmt "slowest requests:@,";
    List.iter
      (fun s ->
        Format.fprintf fmt "  rid %-6d %-9s %-12s %a  %s@," s.sl_rid s.sl_verb
          s.sl_status pp_us s.sl_service_us
          (Obs_attr.attribution s.sl_phases_us))
      r.a_slowest
  end;
  if List.length r.a_slices > 1 then begin
    Format.fprintf fmt "timeline:@,";
    List.iter
      (fun c ->
        Format.fprintf fmt
          "  +%-6.0fs %5d requests  p50 %a  p99 %a  shed %.1f%%@," c.c_start_s
          c.c_summary.Obs_slo.s_requests pp_us c.c_summary.Obs_slo.s_p50_us
          pp_us c.c_summary.Obs_slo.s_p99_us c.c_summary.Obs_slo.s_shed_pct)
      r.a_slices
  end;
  Format.fprintf fmt "@]"

let to_json (r : report) =
  let phases_obj ps =
    Json.obj (List.map (fun (k, v) -> (k, Json.float v)) ps)
  in
  let counts_obj cs = Json.obj (List.map (fun (k, n) -> (k, Json.int n)) cs) in
  Json.obj
    [
      ("schema", Json.str "vhdl-analyze/1");
      ("events", Json.int r.a_events);
      ("span_s", Json.float r.a_span_s);
      ("finishes", Json.int r.a_finishes);
      ("sheds", Json.int r.a_sheds);
      ("rejects", Json.int r.a_rejects);
      ("recycles", Json.int r.a_recycles);
      ("breaches", Json.int r.a_breaches);
      ("heap_breaches", Json.int r.a_heap_breaches);
      ("dumps", Json.int r.a_dumps);
      ("statuses", counts_obj r.a_statuses);
      ("shed_reasons", counts_obj r.a_shed_reasons);
      ("summary", Obs_slo.summary_json r.a_summary);
      ("tail_phase_us", phases_obj r.a_tail_phase_us);
      ( "slowest",
        Json.arr
          (List.map
             (fun s ->
               Json.obj
                 [
                   ("rid", Json.int s.sl_rid);
                   ("verb", Json.str s.sl_verb);
                   ("status", Json.str s.sl_status);
                   ("service_us", Json.float s.sl_service_us);
                   ("phases_us", phases_obj s.sl_phases_us);
                 ])
             r.a_slowest) );
      ( "timeline",
        Json.arr
          (List.map
             (fun c ->
               Json.obj
                 [
                   ("start_s", Json.float c.c_start_s);
                   ("summary", Obs_slo.summary_json c.c_summary);
                 ])
             r.a_slices) );
    ]
