(** The flight recorder's memory: two fixed-size rings — the last N
    events, and the per-request telemetry-counter deltas of the last M
    requests.

    The ring is always on: pushing is an array store and an index bump,
    so the daemon records continuously without the cost (or the disk) of
    always-on logging.  The recorded window only leaves memory when a
    dump is asked for — on a firewall trip, a watchdog fire, or
    SIGUSR1 — which is exactly when the last few hundred events and the
    counter profile of the offending request are the evidence a
    post-mortem needs. *)

type 'a ring = {
  slots : 'a option array;
  mutable next : int; (* total pushes; next mod capacity is the slot *)
}

let ring_create capacity = { slots = Array.make (max 1 capacity) None; next = 0 }

let ring_push r x =
  r.slots.(r.next mod Array.length r.slots) <- Some x;
  r.next <- r.next + 1

(* oldest first *)
let ring_to_list r =
  let n = Array.length r.slots in
  let start = if r.next <= n then 0 else r.next - n in
  List.filter_map
    (fun i -> r.slots.(i mod n))
    (List.init (r.next - start) (fun k -> start + k))

type request_delta = {
  rd_rid : int;
  rd_counters : (string * int) list; (* telemetry counters this request moved *)
}

type t = {
  events : Obs_event.t ring;
  deltas : request_delta ring;
}

let create ?(events = 256) ?(requests = 32) () =
  { events = ring_create events; deltas = ring_create requests }

let push t e = ring_push t.events e

let note_request_delta t ~rid counters =
  ring_push t.deltas { rd_rid = rid; rd_counters = counters }

let events t = ring_to_list t.events
let request_deltas t = ring_to_list t.deltas

(* newest match wins: a rid can recur across a very long run once the
   (monotone) daemon counter wraps a restart — the recent one is the one
   an exemplar is about *)
let find_request_delta t ~rid =
  List.find_opt (fun d -> d.rd_rid = rid) (List.rev (ring_to_list t.deltas))

let pushed t = t.events.next

(* ------------------------------------------------------------------ *)
(* Dump rendering: one self-contained JSON document *)

module Json = Vhdl_telemetry.Telemetry.Json

(** Render the recorder's state as the body of a flight dump: the reason
    and implicated request id, the recorded event window (oldest first),
    the per-request counter deltas, plus whatever extra top-level fields
    the caller supplies (a metrics snapshot, an SLO summary). *)
let dump_json ?(extra = []) ~reason ?rid t =
  Json.obj
    (List.concat
       [
         [
           ("dumped_at_s", Json.float (Vhdl_telemetry.Telemetry.now_s ()));
           ("reason", Json.str reason);
         ];
         (match rid with Some r -> [ ("rid", Json.int r) ] | None -> []);
         [
           ("events_recorded", Json.int (pushed t));
           ( "events",
             Json.arr (List.map (fun e -> Obs_event.to_json e) (events t)) );
           ( "request_deltas",
             Json.arr
               (List.map
                  (fun d ->
                    Json.obj
                      [
                        ("rid", Json.int d.rd_rid);
                        ( "counters",
                          Json.obj
                            (List.map
                               (fun (k, v) -> (k, Json.int v))
                               d.rd_counters) );
                      ])
                  (request_deltas t)) );
         ];
         extra;
       ])
