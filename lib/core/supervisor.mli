(** Crash containment: the per-unit exception firewall and resource
    budgets.

    {!guard} runs one phase of work for one design unit and converts every
    internal escape ([Pval.Internal], [Grammar.Ill_formed], evaluator
    cycles, [Stack_overflow], [Failure], ...) into a structured {!Diag.t}
    with an [Internal] origin, and every budget exhaustion
    ([Evaluator.Fuel_exhausted], [Elaborate.Budget_exhausted],
    {!Deadline}) into one with a [Budget] origin — both tagged with the
    phase and unit.  Fatal conditions ([Out_of_memory], [Sys.Break]) and
    unrecognized exceptions still propagate. *)

type phase =
  | Scan
  | Parse
  | Analysis
  | Elaboration
  | Simulation

val phase_name : phase -> string

(** Optional resource limits; [None] means unlimited. *)
type budgets = {
  eval_fuel : int option; (* semantic-rule applications per compile *)
  elab_steps : int option; (* signals + processes + instances elaborated *)
  deadline_s : float option; (* wall-clock seconds per compile *)
  sim_step_fuel : int option; (* process resumptions per simulated instant *)
}

val no_budgets : budgets
(** All limits off — the default everywhere. *)

exception Deadline of { seconds : float; elapsed_s : float }
(** The configured limit and the wall time actually spent when the clock
    tripped — both surface in the [budget:…] diagnostic so deadline
    responses are self-describing. *)

type clock
(** A started deadline clock. *)

val start_clock : ?deadline_s:float -> unit -> clock

val check : clock -> unit
(** @raise Deadline once the clock's limit has passed.  Cheap; called from
    the evaluator's tick hook. *)

val guard :
  phase:phase -> ?unit_name:string -> ?line:int -> (unit -> 'a) -> ('a, Diag.t) result
(** Run [f] under the firewall (see the module description). *)

val diag_of_exn :
  phase:phase ->
  ?unit_name:string ->
  ?elapsed_s:float ->
  line:int ->
  exn ->
  Diag.t option
(** The classification [guard] uses; [None] for exceptions the firewall
    does not contain.  [elapsed_s] (wall time spent in the guarded work)
    is appended to budget diagnostics so they report both the configured
    limit and the time actually consumed. *)

(** {1 Partial-result reporting} *)

type unit_status =
  | Compiled (* analysis succeeded *)
  | Errored (* user-level errors in the unit *)
  | Poisoned (* the firewall contained an internal escape here *)
  | Skipped (* not attempted: a budget died before reaching it *)

val status_name : unit_status -> string

val count_status : unit_status -> unit
(** Bump the [supervisor.units_*] telemetry counter for a status — called
    once per design unit as its report line is recorded. *)

type unit_report = {
  ur_name : string;
  ur_line : int;
  ur_status : unit_status;
  ur_node : int;
      (** provenance node id of the unit's site — where [vhdlc explain]
          resolves the unit's goal attributes *)
  ur_counters : (string * int) list;
      (** telemetry-counter delta across this unit's analysis: the
          supervisor snapshots at the unit boundary, so a failing unit's
          report line carries the counts of the work that failed *)
}

val pp_report : Format.formatter -> unit_report list -> unit
(** One line per unit — status, name, line, and the headline counter
    deltas ([rules]/[attrs]/[cascade]) when non-zero. *)
