(** Crash containment: the per-unit exception firewall and resource budgets.

    The paper's compiler was a batch tool — an internal error killed the
    run.  This module keeps one poisoned design unit (or one exhausted
    budget) from taking the whole compilation down: {!guard} runs a phase
    of work for one unit and converts every internal escape into a
    structured {!Diag.t} with an [Internal] or [Budget] origin, tagged with
    the phase and the unit being processed.

    Resource budgets are a record of optional limits; [None] means
    unlimited, and {!no_budgets} (the default everywhere) disables all of
    them, so the ordinary pipeline pays nothing. *)

module Tm = Vhdl_telemetry.Telemetry

let m_units_compiled = Tm.counter "supervisor.units_compiled"
let m_units_errored = Tm.counter "supervisor.units_errored"
let m_units_poisoned = Tm.counter "supervisor.units_poisoned"
let m_units_skipped = Tm.counter "supervisor.units_skipped"
let m_budget_exhaustions = Tm.counter "supervisor.budget_exhaustions"
let m_internal_escapes = Tm.counter "supervisor.internal_escapes"

(** Pipeline phases, for tagging diagnostics. *)
type phase =
  | Scan
  | Parse
  | Analysis
  | Elaboration
  | Simulation

let phase_name = function
  | Scan -> "scan"
  | Parse -> "parse"
  | Analysis -> "analysis"
  | Elaboration -> "elaboration"
  | Simulation -> "simulation"

(** Optional resource limits; [None] everywhere means "no budget". *)
type budgets = {
  eval_fuel : int option; (* semantic-rule applications per compile *)
  elab_steps : int option; (* signals + processes + instances elaborated *)
  deadline_s : float option; (* wall-clock seconds per compile *)
  sim_step_fuel : int option; (* process resumptions per simulated instant *)
}

let no_budgets =
  { eval_fuel = None; elab_steps = None; deadline_s = None; sim_step_fuel = None }

exception Deadline of { seconds : float; elapsed_s : float }

(** A started deadline clock.  [check] is cheap enough to call from the
    evaluator's tick hook (every 256 rule applications). *)
type clock = {
  c_start : float;
  c_limit : float option;
}

let start_clock ?deadline_s () =
  { c_start = Vhdl_util.Unix_compat.now (); c_limit = deadline_s }

let check clock =
  match clock.c_limit with
  | None -> ()
  | Some limit ->
    let elapsed = Vhdl_util.Unix_compat.now () -. clock.c_start in
    if elapsed > limit then raise (Deadline { seconds = limit; elapsed_s = elapsed })

(* ------------------------------------------------------------------ *)
(* The firewall proper *)

(* exceptions the firewall must never swallow: resource death the process
   cannot recover from, interactive interrupts, and the compiler's own
   already-structured error carriers *)
let is_fatal = function
  | Out_of_memory | Sys.Break -> true
  | _ -> false

let diag_of_exn ~phase ?unit_name ?elapsed_s ~line exn : Diag.t option =
  let p = phase_name phase in
  let internal msg =
    Tm.incr m_internal_escapes;
    Some (Diag.internal_error ~phase:p ?unit_name ~line "%s" msg)
  in
  (* budget diagnostics are self-describing: they name the configured limit
     and — when the caller timed the guarded work — the wall time spent
     before the budget died, so a shed/deadline response from a long-lived
     service needs no daemon-side context to interpret *)
  let elapsed_suffix =
    match elapsed_s with
    | Some e -> Printf.sprintf "; %.3fs elapsed" e
    | None -> ""
  in
  let budget_plain msg =
    Tm.incr m_budget_exhaustions;
    Some (Diag.budget_error ~phase:p ?unit_name ~line "%s" msg)
  in
  let budget msg = budget_plain (msg ^ elapsed_suffix) in
  match exn with
  (* budgets *)
  | Evaluator.Fuel_exhausted { applications; limit } ->
    budget
      (Printf.sprintf
         "evaluation fuel exhausted after %d rule applications (limit %d)"
         applications limit)
  | Elaborate.Budget_exhausted { steps; limit } ->
    budget
      (Printf.sprintf "elaboration budget exhausted after %d steps (limit %d)"
         steps limit)
  | Deadline { seconds; elapsed_s } ->
    (* the deadline exception carries its own wall-time measurement, taken
       at the clock that tripped — more precise than the guard's *)
    budget_plain
      (Printf.sprintf "compilation deadline of %gs exceeded after %.3fs of wall time"
         seconds elapsed_s)
  (* internal escapes *)
  | Pval.Internal msg -> internal (Printf.sprintf "internal error: %s" msg)
  | Grammar.Ill_formed msg ->
    internal (Printf.sprintf "internal error: ill-formed grammar: %s" msg)
  | Evaluator.Cycle { prod_name; attr_name } ->
    internal
      (Printf.sprintf "internal error: attribute cycle at %s.%s" prod_name attr_name)
  | Evaluator.Missing_rule { prod_name; attr_name; pos } ->
    internal
      (Printf.sprintf "internal error: missing rule for %s at position %d of %s"
         attr_name pos prod_name)
  | Stack_overflow -> internal "internal error: stack overflow"
  | Failure msg -> internal (Printf.sprintf "internal error: %s" msg)
  | Invalid_argument msg -> internal (Printf.sprintf "internal error: %s" msg)
  | Not_found -> internal "internal error: uncaught Not_found"
  | Assert_failure (file, ln, _) ->
    internal (Printf.sprintf "internal error: assertion failed at %s:%d" file ln)
  | _ -> None

(** Run [f] under the firewall.  Internal escapes and budget exhaustions
    become [Error diag]; fatal conditions and unrecognized exceptions
    propagate. *)
let guard ~phase ?unit_name ?(line = 0) f : ('a, Diag.t) result =
  let start = Vhdl_util.Unix_compat.now () in
  try Ok (f ())
  with exn when not (is_fatal exn) -> (
    let elapsed_s = Vhdl_util.Unix_compat.now () -. start in
    match diag_of_exn ~phase ?unit_name ~elapsed_s ~line exn with
    | Some d -> Error d
    | None -> raise exn)

(* ------------------------------------------------------------------ *)
(* Partial-result reporting *)

type unit_status =
  | Compiled (* analysis succeeded *)
  | Errored (* user-level errors in the unit *)
  | Poisoned (* the firewall contained an internal escape here *)
  | Skipped (* not attempted: a budget died before reaching it *)

let status_name = function
  | Compiled -> "compiled"
  | Errored -> "errored"
  | Poisoned -> "poisoned"
  | Skipped -> "skipped"

(** Bump the per-unit outcome counter for [status] — called once per design
    unit as its report line is recorded. *)
let count_status = function
  | Compiled -> Tm.incr m_units_compiled
  | Errored -> Tm.incr m_units_errored
  | Poisoned -> Tm.incr m_units_poisoned
  | Skipped -> Tm.incr m_units_skipped

(** One line of the per-compile partial-result report.  [ur_counters] is
    the telemetry-counter delta across this unit's analysis (snapshot at
    the unit boundary, so counts attribute to the unit that did the work,
    not to the whole run); [ur_node] is the unit site's provenance node id,
    the address [vhdlc explain] resolves goal attributes at. *)
type unit_report = {
  ur_name : string;
  ur_line : int;
  ur_status : unit_status;
  ur_node : int;
  ur_counters : (string * int) list;
}

(* the headline subset of a unit's counter delta shown in the report line *)
let headline_counters =
  [
    ("ag.rule_applications", "rules");
    ("ag.attrs_evaluated", "attrs");
    ("cascade.evaluations", "cascade");
  ]

let pp_report fmt (rs : unit_report list) =
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %s (line %d)" (status_name r.ur_status) r.ur_name
        r.ur_line;
      let shown =
        List.filter_map
          (fun (name, label) ->
            match List.assoc_opt name r.ur_counters with
            | Some n when n <> 0 -> Some (Printf.sprintf "%s %d" label n)
            | _ -> None)
          headline_counters
      in
      if shown <> [] then Format.fprintf fmt "  [%s]" (String.concat ", " shown);
      Format.fprintf fmt "@.")
    rs
