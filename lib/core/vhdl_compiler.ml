(** The public compiler facade.

    Ties the pieces together exactly as Figure 1 of the paper organizes
    them: scanner and LALR parser feed the attribute evaluator generated
    from the principal AG; [exprEval] cascades into the expression AG;
    foreign references go through the VIF library manager; the "link" step
    (our analog of compiling the generated C) elaborates the design against
    the simulation kernel.

    Unlike the paper's batch compiler, compilation is crash-contained:
    the parser performs panic-mode error recovery so every syntax error in
    a file is reported in one run, each design unit's analysis runs under
    the {!Supervisor} exception firewall so one poisoned unit cannot take
    its siblings down, and optional {!Supervisor.budgets} bound evaluation
    fuel, elaboration steps, wall-clock time, and simulation steps.

    {[
      let c = Vhdl_compiler.create () in
      let _ = Vhdl_compiler.compile c source in
      let sim = Vhdl_compiler.elaborate c ~top:"TB" () in
      let _ = Vhdl_compiler.run sim ~max_ns:1000 in
      Vhdl_compiler.history sim ":tb:Q"
    ]} *)

module Timer = Vhdl_util.Phase_timer
module Driver = Vhdl_lalr.Driver
module Telemetry = Vhdl_telemetry.Telemetry

let m_compiles_demand = Telemetry.counter "compile.runs_demand"
let m_compiles_staged = Telemetry.counter "compile.runs_staged"

(** How the principal AG is evaluated during [compile].  [Staged] (the
    default) drives each design unit through the static plan computed once
    per grammar by {!Analysis.plan} — copy rules elided, the cascade's
    LEF→tree memo warm — the way a Linguist-generated (plan-based)
    evaluator proceeds.  [Demand] is the reference path: goal-directed
    memoizing evaluation with copy elision off and the cascade memo
    bypassed, demoted to the fuzz-oracle role.  Both must produce identical
    results — the differential fuzzer ([lib/difftest]) holds them to
    that. *)
type strategy =
  | Demand
  | Staged

type t = {
  work : Library.t;
  timer : Timer.t;
  strategy : strategy;
  mutable budgets : Supervisor.budgets;
      (* re-settable so a long-lived compiler (the serve daemon's warm
         worker) can apply per-request limits; read at each compile start *)
  provenance : Provenance.t option; (* attribute-dependency recorder *)
  mutable compiled_units : int;
  mutable compiled_lines : int;
  mutable diagnostics : Diag.t list; (* newest first *)
  mutable last_report : Supervisor.unit_report list;
}

exception Compile_error of Diag.t list

(* The static evaluation plan of the principal AG, computed once per
   process (the analysis walks every production; sharing it mirrors
   Linguist generating the evaluator once). *)
let principal_plan =
  lazy (Analysis.plan (Analysis.compute (Main_grammar.grammar ())))

(** Create a compiler.  [work_dir] makes the working library disk-backed
    (separate compilation across compiler instances); without it, the
    library lives in memory.  [budgets] turns on resource containment
    (default: everything unlimited).  [provenance] arms the
    attribute-dependency recorder: every compile records its dynamic
    dependency graph there (both AGs — the cascade records into the same
    recorder), feeding [vhdlc explain] and the hot-rule profiler. *)
let create ?work_dir ?(strategy = Staged) ?(budgets = Supervisor.no_budgets)
    ?provenance () =
  {
    work = Library.create ?dir:work_dir ~name:"WORK" ();
    timer = Timer.create ();
    strategy;
    budgets;
    provenance;
    compiled_units = 0;
    compiled_lines = 0;
    diagnostics = [];
    last_report = [];
  }

(** Attach a read-only reference library (the paper's second library
    argument). *)
let add_reference_library t ~name ~dir =
  let lib = Library.create ~dir ~name () in
  Library.add_reference t.work ~as_name:name lib

let session t : Session.t =
  {
    Session.work_library = "WORK";
    find_unit = (fun ~library ~key -> Library.find t.work ~library ~key);
    insert = (fun u -> Library.insert t.work u);
    known_library =
      (fun lib -> lib = "WORK" || lib = "STD" || Library.resolve_library t.work lib <> None);
    subprogs = Hashtbl.create 64;
  }

let work_library t = t.work
let timer t = t.timer
let strategy t = t.strategy
let budgets t = t.budgets
let set_budgets t budgets = t.budgets <- budgets
let provenance t = t.provenance
let diagnostics t = List.rev t.diagnostics
let last_report t = t.last_report

(* ------------------------------------------------------------------ *)
(* Parser error recovery *)

(* Recovery checkpoints are the design-unit-list reduces: restoring the
   parse stack there leaves the parser ready to accept a fresh design unit,
   so the units before AND after a damaged region survive.  Sync tokens are
   the design-unit starters plus the "end ... ;" pair. *)
let recovery_hooks =
  lazy
    (let g = Main_grammar.grammar () in
     let checkpoint =
       Array.init (Grammar.n_productions g) (fun id ->
           match (Grammar.production g id).Grammar.prod_name with
           | "design_units_one" | "design_units_more" -> true
           | _ -> false)
     in
     let starters =
       [ "entity"; "architecture"; "package"; "configuration"; "library"; "use" ]
     in
     let classify =
       Array.init (Grammar.n_symbols g) (fun id ->
           if not (Grammar.is_terminal g id) then Driver.Sync_other
           else
             match Grammar.symbol_name g id with
             | "end" -> Driver.Sync_end
             | ";" -> Driver.Sync_semi
             | s when List.mem s starters -> Driver.Sync_start
             | _ -> Driver.Sync_other)
     in
     ((fun p -> checkpoint.(p)), fun s -> classify.(s)))

let diag_of_parse_error (e : Driver.error) =
  if e.Driver.e_skipped = 0 then
    Diag.error ~line:e.Driver.e_line "syntax error: unexpected %s" e.Driver.e_found
  else
    Diag.error ~line:e.Driver.e_line
      "syntax error: unexpected %s (skipped %d tokens to resynchronize)"
      e.Driver.e_found e.Driver.e_skipped

(* ------------------------------------------------------------------ *)
(* Per-unit analysis under the firewall *)

(* Label a design-unit region for diagnostics by its leading tokens,
   e.g. "entity COUNTER" (a design_unit site may start with context
   clauses, so scan forward for the library-unit keyword). *)
let unit_label site =
  let rec scan = function
    | Pval.Tok (Token.Tkw "package") :: Pval.Tok (Token.Tkw "body")
      :: Pval.Tok (Token.Tid id) :: _ ->
      Some ("package body " ^ id)
    | Pval.Tok (Token.Tkw kw) :: Pval.Tok (Token.Tid id) :: _
      when List.mem kw [ "entity"; "architecture"; "package"; "configuration" ] ->
      Some (kw ^ " " ^ id)
    | _ :: rest -> scan rest
    | [] -> None
  in
  match scan (Evaluator.site_leaf_values site) with
  | Some label -> label
  | None -> Printf.sprintf "unit@line %d" (Evaluator.site_line site)

(* Evaluate UNITS and MSGS per design-unit site so an escape in one unit is
   contained there: siblings still analyze (they communicate only through
   the session library, never through shared attributes).  Once a budget
   diagnostic appears (fuel, deadline) the budget is dead for the whole
   compile, so the remaining units are reported as skipped rather than
   producing one exhaustion diagnostic each. *)
let analyze_units t ev =
  (match t.strategy with
  | Demand -> Telemetry.incr m_compiles_demand
  | Staged -> Telemetry.incr m_compiles_staged);
  let budget_dead = ref false in
  let units = ref [] in
  let msgs = ref [] in
  let report = ref [] in
  List.iter
    (fun site ->
      let line = Evaluator.site_line site in
      let name = unit_label site in
      (* counter snapshot at the unit boundary: the report line carries the
         delta, so work (and failures) attribute to the unit that did it *)
      let snap = Telemetry.snapshot () in
      let record status =
        Supervisor.count_status status;
        report :=
          {
            Supervisor.ur_name = name;
            ur_line = line;
            ur_status = status;
            ur_node = Evaluator.site_id site;
            ur_counters = Telemetry.delta snap;
          }
          :: !report
      in
      if !budget_dead then record Supervisor.Skipped
      else
        match
          Supervisor.guard ~phase:Supervisor.Analysis ~unit_name:name ~line (fun () ->
              Telemetry.with_span ~cat:"unit" name (fun () ->
                  (* plan-based pass over this unit's subtree first: forces
                     every non-copy synthesized attribute pass by pass, so
                     the goal pulls below find everything memoized.  Running
                     it inside the unit's guard keeps firewall containment
                     and counter attribution per unit. *)
                  (match t.strategy with
                  | Demand -> ()
                  | Staged ->
                    ignore
                      (Evaluator.evaluate_plan ~site ev
                         ~plan:(Lazy.force principal_plan)));
                  let us = Pval.as_units (Evaluator.eval_at ev site "UNITS") in
                  let ms = Pval.as_msgs (Evaluator.eval_at ev site "MSGS") in
                  (us, ms)))
        with
        | Ok (us, ms) ->
          units := List.rev_append us !units;
          msgs := List.rev_append ms !msgs;
          record (if Diag.has_errors ms then Supervisor.Errored else Supervisor.Compiled)
        | Error d ->
          msgs := d :: !msgs;
          Evaluator.clear_in_progress ev;
          if Diag.is_budget d then begin
            budget_dead := true;
            record Supervisor.Skipped
          end
          else record Supervisor.Poisoned)
    (Evaluator.sites ev ~symbol:"design_unit");
  (List.rev !units, List.rev !msgs, List.rev !report)

(** Compile one source text into the working library.  Phases are timed
    individually for the PERF-PHASE experiment.  Returns the compiled
    units; diagnostics accumulate on the compiler ([diagnostics]) and a
    per-unit partial-result report on [last_report].  Raises
    {!Compile_error} when nothing parses, or when [fail_on_error] (the
    default) and errors of any origin exist. *)
let compile ?(fail_on_error = true) t source : Unit_info.compiled_unit list =
  let session = session t in
  Session.with_session session (fun () ->
      Telemetry.with_span ~cat:"pipeline" "compile" @@ fun () ->
      let grammar = Main_grammar.grammar () in
      let parser_ = Main_grammar.parser_ () in
      let source_lines = Lexer.source_lines source in
      let clock = Supervisor.start_clock ?deadline_s:t.budgets.Supervisor.deadline_s () in
      (* phase 1: scanning *)
      let tokens =
        Timer.time t.timer "scanner" (fun () ->
            try Analyze.tokens_of_source source
            with Lexer.Lex_error { line; msg } ->
              raise (Compile_error [ Diag.error ~line "%s" msg ]))
      in
      (* phase 2: LALR parsing with panic-mode recovery: every syntax error
         in the file is reported, and well-formed design units on either
         side of a damaged region survive into the tree *)
      let checkpoint, classify = Lazy.force recovery_hooks in
      let recovery =
        Timer.time t.timer "parser" (fun () ->
            Parsing.parse_list_recovering parser_ ~eof_value:Pval.Unit ~checkpoint
              ~classify tokens)
      in
      let parse_diags = List.map diag_of_parse_error recovery.Driver.r_errors in
      match recovery.Driver.r_root with
      | None ->
        (* nothing parsed at all: no units to analyze *)
        let parse_diags =
          if parse_diags <> [] then parse_diags
          else [ Diag.error ~line:0 "empty design file" ]
        in
        t.diagnostics <- List.rev_append parse_diags t.diagnostics;
        t.last_report <- [];
        raise (Compile_error parse_diags)
      | Some tree ->
        (* phases 3+4: attribute evaluation; the expression-AG cascade and
           the VIF I/O charge their own nested phase frames, so the timer's
           self-time accounting separates them without any bookkeeping
           here *)
        Library.reset_io_stats t.work;
        let ev =
          Evaluator.create
            ~token_line:(fun n -> Pval.Int n)
            ?fuel:t.budgets.Supervisor.eval_fuel
            ~tick:(fun () -> Supervisor.check clock)
            ~copy_elide:(t.strategy = Staged)
            ?provenance:
              (Option.map (fun r -> (r, "vhdl", Pval.summary)) t.provenance)
            grammar
            ~root_inherited:
              [
                ("ENV", Pval.Env Env.empty);
                ("LEVEL", Pval.Int (-1));
                ("UNITNAME", Pval.Str "WORK.%FILE%");
                ("CTX", Pval.Str "arch");
                ("SLOTBASE", Pval.Int 0);
                ("SIGBASE", Pval.Int 0);
                ("LOOPDEPTH", Pval.Int 0);
                ("RETTY", Pval.Opt None);
                ("CTXOUT", Pval.Out Pval.out_empty);
                ("NLINES", Pval.Int source_lines);
              ]
            tree
        in
        let units, msgs, report =
          Timer.time t.timer "attribute evaluation" (fun () ->
              (* a Demand compiler is the differential oracle's reference
                 side: it must not share cached cascade artifacts (or copy
                 elision) with the fast path it is checked against *)
              let cascade_mode f =
                match t.strategy with
                | Demand -> Expr_eval.with_cold_cascade f
                | Staged -> f ()
              in
              cascade_mode @@ fun () ->
              (* with a recorder armed, make it ambient for the whole
                 evaluation so the expression-AG cascade records into it
                 too — the explain chain crosses the AG boundary *)
              match t.provenance with
              | None -> analyze_units t ev
              | Some r -> Provenance.with_ambient r (fun () -> analyze_units t ev))
        in
        let all_msgs = parse_diags @ msgs in
        t.compiled_units <- t.compiled_units + List.length units;
        t.compiled_lines <- t.compiled_lines + source_lines;
        t.diagnostics <- List.rev_append all_msgs t.diagnostics;
        t.last_report <- report;
        if fail_on_error && Diag.has_errors all_msgs then
          raise (Compile_error (List.filter Diag.is_error all_msgs));
        units)

let compile_file ?fail_on_error t path =
  compile ?fail_on_error t (Vhdl_util.Unix_compat.read_file path)

(* ------------------------------------------------------------------ *)
(* Elaboration and simulation *)

type simulation = {
  model : Elaborate.model;
  mutable messages : (Rt.time * int * string) list; (* newest first *)
}

let library_view t : Elaborate.library_view =
  {
    Elaborate.lv_find = (fun ~library ~key -> Library.find t.work ~library ~key);
    lv_all = (fun () -> Library.all t.work);
  }

(** Elaborate [top] (an entity name, optionally with [~arch], or
    [~configuration]) — the paper's link step, timed as "codegen+link".
    Runs under the firewall: internal escapes and an exhausted elaboration
    budget become {!Compile_error} with a structured diagnostic
    ([Elaboration_error], the expected user-level failure, still raises
    as itself). *)
let elaborate ?arch ?configuration ?(trace = true) t ~top () : simulation =
  Telemetry.with_span ~cat:"pipeline" "elaborate" @@ fun () ->
  let target =
    match configuration with
    | Some c -> Elaborate.Top_configuration c
    | None -> Elaborate.Top_entity { entity = String.uppercase_ascii top; arch }
  in
  Library.reset_io_stats t.work;
  (* elaboration's own foreign-reference reads charge the nested "VIF read"
     phase frames the library opens, so they never pollute this phase *)
  let model =
    Timer.time t.timer "codegen+link (elaboration)" (fun () ->
        match
          Supervisor.guard ~phase:Supervisor.Elaboration ~unit_name:top (fun () ->
              Elaborate.elaborate ~trace_signals:trace
                ?step_budget:t.budgets.Supervisor.elab_steps (library_view t) target)
        with
        | Ok model -> model
        | Error d ->
          t.diagnostics <- d :: t.diagnostics;
          raise (Compile_error [ d ]))
  in
  Kernel.set_step_fuel model.Elaborate.m_kernel t.budgets.Supervisor.sim_step_fuel;
  let sim = { model; messages = [] } in
  Kernel.set_message_handler model.Elaborate.m_kernel (fun time ~severity msg ->
      sim.messages <- (time, severity, msg) :: sim.messages);
  sim

(** Run the simulation for [max_ns] nanoseconds of simulated time. *)
let run t sim ~max_ns =
  Telemetry.with_span ~cat:"pipeline" "simulate" @@ fun () ->
  Timer.time t.timer "simulation" (fun () ->
      Kernel.run sim.model.Elaborate.m_kernel ~max_time:(max_ns * Rt.ns))

let kernel sim = sim.model.Elaborate.m_kernel
let name_server sim = sim.model.Elaborate.m_ns
let trace sim = sim.model.Elaborate.m_trace

(** assert/report messages so far, oldest first: (time, severity, text). *)
let messages sim = List.rev sim.messages

(** Signal-change history by hierarchical path, e.g. [":tb:Q"]. *)
let history sim path = Trace.history sim.model.Elaborate.m_trace ~path

(** Current value of a signal by path. *)
let value sim path =
  Option.map (fun s -> s.Rt.current) (Name_server.find_signal sim.model.Elaborate.m_ns path)

let stats t = (t.compiled_units, t.compiled_lines)
