(** The public compiler facade.

    Ties the pieces together exactly as Figure 1 of the paper organizes
    them: scanner and LALR parser feed the attribute evaluator generated
    from the principal AG; [exprEval] cascades into the expression AG;
    foreign references go through the VIF library manager; the "link" step
    (our analog of compiling the generated C) elaborates the design against
    the simulation kernel.

    {[
      let c = Vhdl_compiler.create () in
      let _ = Vhdl_compiler.compile c source in
      let sim = Vhdl_compiler.elaborate c ~top:"TB" () in
      let _ = Vhdl_compiler.run sim ~max_ns:1000 in
      Vhdl_compiler.history sim ":tb:Q"
    ]} *)

module Timer = Vhdl_util.Phase_timer

(** How the principal AG is evaluated during [compile].  [Demand] asks only
    for the goal attributes and lets memoization pull in what they need;
    [Staged] additionally forces every attribute pass by pass following
    {!Analysis.visit_partitions}, the way a Linguist-generated (plan-based)
    evaluator proceeds.  Both must produce identical results — the
    differential fuzzer ([lib/difftest]) holds them to that. *)
type strategy =
  | Demand
  | Staged

type t = {
  work : Library.t;
  timer : Timer.t;
  strategy : strategy;
  mutable compiled_units : int;
  mutable compiled_lines : int;
  mutable diagnostics : Diag.t list; (* newest first *)
}

exception Compile_error of Diag.t list

(* The visit partitions of the principal AG, computed once per process (the
   analysis walks every production; sharing it mirrors Linguist generating
   the evaluator once). *)
let principal_partitions =
  lazy (Analysis.visit_partitions (Analysis.compute (Main_grammar.grammar ())))

(** Create a compiler.  [work_dir] makes the working library disk-backed
    (separate compilation across compiler instances); without it, the
    library lives in memory. *)
let create ?work_dir ?(strategy = Demand) () =
  {
    work = Library.create ?dir:work_dir ~name:"WORK" ();
    timer = Timer.create ();
    strategy;
    compiled_units = 0;
    compiled_lines = 0;
    diagnostics = [];
  }

(** Attach a read-only reference library (the paper's second library
    argument). *)
let add_reference_library t ~name ~dir =
  let lib = Library.create ~dir ~name () in
  Library.add_reference t.work ~as_name:name lib

let session t : Session.t =
  {
    Session.work_library = "WORK";
    find_unit = (fun ~library ~key -> Library.find t.work ~library ~key);
    insert = (fun u -> Library.insert t.work u);
    known_library =
      (fun lib -> lib = "WORK" || lib = "STD" || Library.resolve_library t.work lib <> None);
    subprogs = Hashtbl.create 64;
  }

let work_library t = t.work
let timer t = t.timer
let strategy t = t.strategy
let diagnostics t = List.rev t.diagnostics

(** Compile one source text into the working library.  Phases are timed
    individually for the PERF-PHASE experiment.  Returns the compiled
    units; diagnostics accumulate on the compiler ([diagnostics]).
    Raises {!Compile_error} on syntax errors or when [fail_on_error] (the
    default) and semantic errors exist. *)
let compile ?(fail_on_error = true) t source : Unit_info.compiled_unit list =
  let session = session t in
  Session.with_session session (fun () ->
      let grammar = Main_grammar.grammar () in
      let parser_ = Main_grammar.parser_ () in
      let source_lines = Lexer.source_lines source in
      (* phase 1: scanning *)
      let tokens =
        Timer.time t.timer "scanner" (fun () ->
            try Analyze.tokens_of_source source
            with Lexer.Lex_error { line; msg } ->
              raise (Compile_error [ Diag.error ~line "%s" msg ]))
      in
      (* phase 2: LALR parsing *)
      let tree =
        Timer.time t.timer "parser" (fun () ->
            try Parsing.parse_list parser_ ~eof_value:Pval.Unit tokens
            with Vhdl_lalr.Driver.Syntax_error { line; found; _ } ->
              raise (Compile_error [ Diag.error ~line "syntax error: unexpected %s" found ]))
      in
      (* phases 3+4: attribute evaluation, with the expression-AG cascade
         accounted separately *)
      Expr_eval.reset_counters ();
      Library.reset_io_stats t.work;
      let ev =
        Evaluator.create
          ~token_line:(fun n -> Pval.Int n)
          grammar
          ~root_inherited:
            [
              ("ENV", Pval.Env Env.empty);
              ("LEVEL", Pval.Int (-1));
              ("UNITNAME", Pval.Str "WORK.%FILE%");
              ("CTX", Pval.Str "arch");
              ("SLOTBASE", Pval.Int 0);
              ("SIGBASE", Pval.Int 0);
              ("LOOPDEPTH", Pval.Int 0);
              ("RETTY", Pval.Opt None);
              ("CTXOUT", Pval.Out Pval.out_empty);
              ("NLINES", Pval.Int source_lines);
            ]
          tree
      in
      let units, msgs =
        Timer.time t.timer "attribute evaluation" (fun () ->
            (match t.strategy with
            | Demand -> ()
            | Staged ->
              ignore
                (Evaluator.evaluate_staged ev
                   ~partitions:(Lazy.force principal_partitions)));
            let units = Pval.as_units (Evaluator.goal ev "UNITS") in
            let msgs = Pval.as_msgs (Evaluator.goal ev "MSGS") in
            (units, msgs))
      in
      (* carve the cascade and the VIF I/O out of the evaluation phase *)
      Timer.add t.timer "attribute evaluation" (-.(!Expr_eval.seconds));
      Timer.add t.timer "expression evaluation (cascade)" !Expr_eval.seconds;
      let io = Library.io_stats t.work in
      Timer.add t.timer "attribute evaluation"
        (-.(io.Library.io_read_seconds +. io.Library.io_write_seconds));
      Timer.add t.timer "VIF read" io.Library.io_read_seconds;
      Timer.add t.timer "VIF write" io.Library.io_write_seconds;
      t.compiled_units <- t.compiled_units + List.length units;
      t.compiled_lines <- t.compiled_lines + source_lines;
      t.diagnostics <- List.rev_append msgs t.diagnostics;
      if fail_on_error && Diag.has_errors msgs then
        raise (Compile_error (List.filter Diag.is_error msgs));
      units)

let compile_file ?fail_on_error t path =
  compile ?fail_on_error t (Vhdl_util.Unix_compat.read_file path)

(* ------------------------------------------------------------------ *)
(* Elaboration and simulation *)

type simulation = {
  model : Elaborate.model;
  mutable messages : (Rt.time * int * string) list; (* newest first *)
}

let library_view t : Elaborate.library_view =
  {
    Elaborate.lv_find = (fun ~library ~key -> Library.find t.work ~library ~key);
    lv_all = (fun () -> Library.all t.work);
  }

(** Elaborate [top] (an entity name, optionally with [~arch], or
    [~configuration]) — the paper's link step, timed as "codegen+link". *)
let elaborate ?arch ?configuration ?(trace = true) t ~top () : simulation =
  let target =
    match configuration with
    | Some c -> Elaborate.Top_configuration c
    | None -> Elaborate.Top_entity { entity = String.uppercase_ascii top; arch }
  in
  Library.reset_io_stats t.work;
  let model =
    Timer.time t.timer "codegen+link (elaboration)" (fun () ->
        Elaborate.elaborate ~trace_signals:trace (library_view t) target)
  in
  (* elaboration's own foreign-reference reads belong to the VIF phase *)
  let io = Library.io_stats t.work in
  Timer.add t.timer "codegen+link (elaboration)" (-.io.Library.io_read_seconds);
  Timer.add t.timer "VIF read" io.Library.io_read_seconds;
  let sim = { model; messages = [] } in
  Kernel.set_message_handler model.Elaborate.m_kernel (fun time ~severity msg ->
      sim.messages <- (time, severity, msg) :: sim.messages);
  sim

(** Run the simulation for [max_ns] nanoseconds of simulated time. *)
let run t sim ~max_ns =
  Timer.time t.timer "simulation" (fun () ->
      Kernel.run sim.model.Elaborate.m_kernel ~max_time:(max_ns * Rt.ns))

let kernel sim = sim.model.Elaborate.m_kernel
let name_server sim = sim.model.Elaborate.m_ns
let trace sim = sim.model.Elaborate.m_trace

(** assert/report messages so far, oldest first: (time, severity, text). *)
let messages sim = List.rev sim.messages

(** Signal-change history by hierarchical path, e.g. [":tb:Q"]. *)
let history sim path = Trace.history sim.model.Elaborate.m_trace ~path

(** Current value of a signal by path. *)
let value sim path =
  Option.map (fun s -> s.Rt.current) (Name_server.find_signal sim.model.Elaborate.m_ns path)

let stats t = (t.compiled_units, t.compiled_lines)
