(** The public compiler and simulator API.

    Mirrors Figure 1 of the paper: source text flows through the scanner,
    the LALR parser, and the attribute evaluator generated from the
    principal AG (with [exprEval] cascading into the expression AG); the
    resulting design units are placed in the working library as VIF;
    elaboration links them against the simulation kernel.

    {[
      let c = Vhdl_compiler.create () in
      ignore (Vhdl_compiler.compile c source);
      let sim = Vhdl_compiler.elaborate c ~top:"tb" () in
      ignore (Vhdl_compiler.run c sim ~max_ns:1000);
      Vhdl_compiler.history sim ":tb:Q"
    ]} *)

type t
(** A compiler instance: a working library plus phase instrumentation. *)

exception Compile_error of Diag.t list
(** Raised when nothing in a source parses, on semantic errors unless
    [~fail_on_error:false], and on contained internal errors or exhausted
    budgets (diagnostics with [Internal] / [Budget] origins). *)

(** Attribute-evaluation strategy used by [compile].  [Staged] (the
    default) drives each design unit through the static evaluation plan
    ({!Analysis.plan}) with copy rules elided and the cascade's LEF→tree
    memo warm — the way a plan-based (Linguist-style) evaluator proceeds.
    [Demand] is the reference path: goal-directed memoizing evaluation
    with elision off and the memo bypassed, kept as the fuzz oracle.  The
    two must agree — the differential fuzzer ([lib/difftest],
    [bin/vhdlfuzz]) checks it. *)
type strategy =
  | Demand
  | Staged

val create :
  ?work_dir:string ->
  ?strategy:strategy ->
  ?budgets:Supervisor.budgets ->
  ?provenance:Provenance.t ->
  unit ->
  t
(** Create a compiler.  With [work_dir] the working library is disk-backed
    (one VIF file per unit, shared across compiler instances); without it
    the library lives in memory.  [strategy] defaults to [Staged];
    [budgets] turns on resource containment (default: unlimited).
    [provenance] arms the attribute-dependency recorder: every compile
    records its dynamic dependency graph there — both AGs, the cascade
    records into the same recorder — feeding [vhdlc explain] and the
    hot-rule profiler. *)

val strategy : t -> strategy
val budgets : t -> Supervisor.budgets

val set_budgets : t -> Supervisor.budgets -> unit
(** Replace the resource budgets.  They are read at the start of each
    [compile] / [elaborate] / [run], so a long-lived compiler — the serve
    daemon's warm worker — can apply per-request limits without rebuilding
    its working library. *)

val provenance : t -> Provenance.t option
(** The recorder passed at [create], if any. *)

val add_reference_library : t -> name:string -> dir:string -> unit
(** Attach a read-only reference library under logical [name] (the paper's
    second library argument). *)

val compile : ?fail_on_error:bool -> t -> string -> Unit_info.compiled_unit list
(** Compile one source text (possibly several design units) into the
    working library.  Diagnostics accumulate on the compiler.  The parser
    recovers from syntax errors (all are reported in one run; well-formed
    sibling units still analyze), and each design unit's analysis runs
    under the {!Supervisor} firewall. *)

val compile_file : ?fail_on_error:bool -> t -> string -> Unit_info.compiled_unit list

val diagnostics : t -> Diag.t list
(** All diagnostics so far, oldest first. *)

val last_report : t -> Supervisor.unit_report list
(** Per-unit partial-result report of the most recent [compile]: which
    design units compiled, errored, were poisoned by a contained internal
    error, or were skipped after a budget died. *)

val session : t -> Session.t
(** The session view the semantic rules use to reach foreign units. *)

val work_library : t -> Library.t

val timer : t -> Vhdl_util.Phase_timer.t
(** Per-phase wall-clock accounting (the PERF-PHASE experiment). *)

val library_view : t -> Elaborate.library_view

(** {1 Elaboration and simulation} *)

type simulation = {
  model : Elaborate.model;
  mutable messages : (Rt.time * int * string) list; (* newest first *)
}

val elaborate :
  ?arch:string ->
  ?configuration:string ->
  ?trace:bool ->
  t ->
  top:string ->
  unit ->
  simulation
(** Elaborate entity [top] (with [?arch], defaulting to the latest compiled
    architecture — the paper's §3.3 rule) or a [?configuration] unit.
    [?trace:false] disables the waveform observers. *)

val run : t -> simulation -> max_ns:int -> Kernel.outcome
(** Run the simulation up to [max_ns] nanoseconds of simulated time. *)

val kernel : simulation -> Kernel.t
val name_server : simulation -> Name_server.t
val trace : simulation -> Trace.t

val messages : simulation -> (Rt.time * int * string) list
(** assert/report output so far, oldest first: (time, severity, text). *)

val history : simulation -> string -> (Rt.time * Value.t) list
(** Signal-change history by hierarchical path, e.g. [":tb:Q"]. *)

val value : simulation -> string -> Value.t option
(** Current value of a signal by path. *)

val stats : t -> int * int
(** (units compiled, source lines compiled) so far. *)
