(** Table-driven LALR(1) parser, agnostic to what it builds.

    The AG layer instantiates [shift]/[reduce] with derivation-tree
    constructors, so the same driver parses VHDL source (fed by the file
    scanner) and LEF token lists (fed by the trivial list scanner of
    cascaded evaluation). *)

type 'v token = {
  t_sym : int;
  t_value : 'v;
  t_line : int;
}

exception
  Syntax_error of {
    line : int;
    found : string;
    expected : string list;
  }

val parse :
  Table.t ->
  lexer:(unit -> 'v token) ->
  shift:(int -> 'v -> int -> 'n) ->
  reduce:(int -> 'n list -> 'n) ->
  'n
(** [parse tbl ~lexer ~shift ~reduce] runs the automaton: [shift sym value
    line] builds a leaf, [reduce prod children] a node (children in source
    order). *)
