(** Table-driven LALR(1) parser, agnostic to what it builds.

    The AG layer instantiates [shift]/[reduce] with derivation-tree
    constructors, so the same driver parses VHDL source (fed by the file
    scanner) and LEF token lists (fed by the trivial list scanner of
    cascaded evaluation). *)

type 'v token = {
  t_sym : int;
  t_value : 'v;
  t_line : int;
}

exception
  Syntax_error of {
    line : int;
    found : string;
    expected : string list;
  }

val default_max_depth : int
(** Default parse-stack depth bound (see [?max_depth] below). *)

val parse :
  ?max_depth:int ->
  Table.t ->
  lexer:(unit -> 'v token) ->
  shift:(int -> 'v -> int -> 'n) ->
  reduce:(int -> 'n list -> 'n) ->
  'n
(** [parse tbl ~lexer ~shift ~reduce] runs the automaton: [shift sym value
    line] builds a leaf, [reduce prod children] a node (children in source
    order).  Stops at the first error.  [max_depth] bounds the parse stack
    so pathological nesting (thousands of unclosed parentheses) becomes a
    {!Syntax_error} instead of an eventual [Stack_overflow] downstream. *)

(** {1 Panic-mode error recovery} *)

(** How a terminal behaves during resynchronization: [Sync_start] tokens
    may begin a fresh segment (design-unit starters); an ["end" ... ";"]
    pair ([Sync_end] then [Sync_semi]) also closes a skipped region. *)
type sync_class =
  | Sync_start
  | Sync_end
  | Sync_semi
  | Sync_other

type error = {
  e_line : int;
  e_found : string;
  e_expected : string list;
  e_skipped : int; (* tokens discarded while resynchronizing *)
}

type 'n recovery = {
  r_root : 'n option; (* the salvaged derivation, if any prefix accepted *)
  r_errors : error list; (* oldest first *)
}

val default_max_errors : int

val parse_recovering :
  ?max_errors:int ->
  ?max_depth:int ->
  Table.t ->
  lexer:(unit -> 'v token) ->
  eof:int ->
  shift:(int -> 'v -> int -> 'n) ->
  reduce:(int -> 'n list -> 'n) ->
  checkpoint:(int -> bool) ->
  classify:(int -> sync_class) ->
  'n recovery
(** Parse with phrase-level panic-mode recovery: on error, record a
    located diagnostic, restore the stack to the last reduce of a
    [checkpoint] production (for a design file: the design-unit list, so
    well-formed sibling units survive), discard tokens to a synchronizing
    point per [classify], and resume.  Cascade errors that follow a
    resynchronization without any input progress are suppressed.  Collects
    at most [max_errors] diagnostics. *)
