(** Dense bit sets over [0, n).  Terminal sets in the LALR construction. *)

type t = { bits : Bytes.t; width : int }

let create width = { bits = Bytes.make ((width + 7) / 8) '\000'; width }

let copy t = { t with bits = Bytes.copy t.bits }

let mem t i =
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let add t i =
  let byte = i lsr 3 in
  Bytes.set t.bits byte (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl (i land 7))))

(** [union_into ~into from] adds all elements of [from] to [into]; returns
    [true] if [into] changed. *)
let union_into ~into from =
  let changed = ref false in
  for b = 0 to Bytes.length into.bits - 1 do
    let old = Char.code (Bytes.get into.bits b) in
    let nw = old lor Char.code (Bytes.get from.bits b) in
    if nw <> old then begin
      Bytes.set into.bits b (Char.chr nw);
      changed := true
    end
  done;
  !changed

let iter t f =
  for i = 0 to t.width - 1 do
    if mem t i then f i
  done

let elements t =
  let acc = ref [] in
  for i = t.width - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let is_empty t =
  let rec scan b = b >= Bytes.length t.bits || (Bytes.get t.bits b = '\000' && scan (b + 1)) in
  scan 0

let cardinal t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n
