(** Nullability and FIRST sets of a context-free grammar. *)

type t = {
  nullable : bool array; (* by symbol id *)
  first : Bitset.t array; (* by symbol id; terminal-id members *)
}

let compute (g : Cfg.t) =
  let nullable = Array.make g.Cfg.n_symbols false in
  let first = Array.init g.Cfg.n_symbols (fun _ -> Bitset.create g.Cfg.n_symbols) in
  for s = 0 to g.Cfg.n_symbols - 1 do
    if g.Cfg.is_terminal.(s) then Bitset.add first.(s) s
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (p : Cfg.production) ->
        (* nullability *)
        if (not nullable.(p.Cfg.lhs))
           && Array.for_all (fun s -> nullable.(s)) p.Cfg.rhs
        then begin
          nullable.(p.Cfg.lhs) <- true;
          changed := true
        end;
        (* FIRST *)
        let rec absorb i =
          if i < Array.length p.Cfg.rhs then begin
            let s = p.Cfg.rhs.(i) in
            if Bitset.union_into ~into:first.(p.Cfg.lhs) first.(s) then changed := true;
            if nullable.(s) then absorb (i + 1)
          end
        in
        absorb 0)
      g.Cfg.productions
  done;
  { nullable; first }

let nullable t s = t.nullable.(s)

(** [nullable_seq t rhs i] — is the suffix [rhs.(i)..] entirely nullable? *)
let nullable_seq t rhs i =
  let rec go i = i >= Array.length rhs || (t.nullable.(rhs.(i)) && go (i + 1)) in
  go i

(** FIRST of a sentential suffix [rhs.(i)..], as a fresh bitset. *)
let first_seq t ~width rhs i =
  let acc = Bitset.create width in
  let rec go i =
    if i < Array.length rhs then begin
      ignore (Bitset.union_into ~into:acc t.first.(rhs.(i)));
      if t.nullable.(rhs.(i)) then go (i + 1)
    end
  in
  go i;
  acc
