(** Nullability and FIRST sets. *)

type t = {
  nullable : bool array; (* by symbol id *)
  first : Bitset.t array; (* terminal members, by symbol id *)
}

val compute : Cfg.t -> t
val nullable : t -> int -> bool

val nullable_seq : t -> int array -> int -> bool
(** Is the suffix [rhs.(i)..] entirely nullable? *)

val first_seq : t -> width:int -> int array -> int -> Bitset.t
(** FIRST of a sentential suffix, as a fresh set. *)
