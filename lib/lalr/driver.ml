(** Table-driven LALR(1) parser.

    The driver is agnostic to what it builds: [shift] turns a token into a
    semantic node, [reduce] combines children.  The AG layer instantiates
    these with {!Vhdl_ag_engine.Tree} constructors, so the same driver parses
    both VHDL source (fed by the file scanner) and LEF token lists (fed by
    the trivial list scanner of the cascaded expression evaluator — the
    paper's [scanner(){ X = car(L); L = cdr(L); return X; }]). *)

type 'v token = {
  t_sym : int;
  t_value : 'v;
  t_line : int;
}

exception
  Syntax_error of {
    line : int;
    found : string;
    expected : string list;
  }

let parse (tbl : Table.t) ~(lexer : unit -> 'v token)
    ~(shift : int -> 'v -> int -> 'n) ~(reduce : int -> 'n list -> 'n) : 'n =
  let cfg = tbl.Table.cfg in
  let states = ref [ 0 ] in
  let values : 'n list ref = ref [] in
  let lookahead = ref (lexer ()) in
  let rec loop () =
    let state = List.hd !states in
    let tok = !lookahead in
    match tbl.Table.action.(state).(tok.t_sym) with
    | Table.Shift st' ->
      states := st' :: !states;
      values := shift tok.t_sym tok.t_value tok.t_line :: !values;
      lookahead := lexer ();
      loop ()
    | Table.Reduce prod_id ->
      let p = Cfg.production cfg prod_id in
      let arity = Array.length p.Cfg.rhs in
      (* pop [arity] states and values; children come out in source order *)
      let pop_n n =
        let children = ref [] in
        for _ = 1 to n do
          (match !values with
          | v :: vs ->
            children := v :: !children;
            values := vs
          | [] -> assert false);
          match !states with
          | _ :: sts -> states := sts
          | [] -> assert false
        done;
        !children
      in
      let children = pop_n arity in
      let node = reduce prod_id children in
      let state' = List.hd !states in
      let goto = tbl.Table.goto.(state').(p.Cfg.lhs) in
      if goto < 0 then assert false;
      states := goto :: !states;
      values := node :: !values;
      loop ()
    | Table.Accept -> (
      match !values with
      | [ v ] -> v
      | _ -> assert false)
    | Table.Error ->
      raise
        (Syntax_error
           {
             line = tok.t_line;
             found = cfg.Cfg.symbol_name tok.t_sym;
             expected = Table.expected_terminals tbl state;
           })
  in
  loop ()
