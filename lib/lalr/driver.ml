(** Table-driven LALR(1) parser.

    The driver is agnostic to what it builds: [shift] turns a token into a
    semantic node, [reduce] combines children.  The AG layer instantiates
    these with {!Vhdl_ag_engine.Tree} constructors, so the same driver parses
    both VHDL source (fed by the file scanner) and LEF token lists (fed by
    the trivial list scanner of the cascaded expression evaluator — the
    paper's [scanner(){ X = car(L); L = cdr(L); return X; }]).

    Two entry points share the automaton loop: {!parse} stops at the first
    error (the cascade's LEF re-parse wants that — a malformed expression is
    a single diagnostic), while {!parse_recovering} performs phrase-level
    panic-mode recovery so one source file yields all of its syntax errors
    in a single run and the well-formed design units survive. *)

type 'v token = {
  t_sym : int;
  t_value : 'v;
  t_line : int;
}

module Tm = Vhdl_telemetry.Telemetry

let m_shifts = Tm.counter "lalr.shifts"
let m_reduces = Tm.counter "lalr.reduces"
let m_errors = Tm.counter "lalr.errors"
let m_resyncs = Tm.counter "lalr.resyncs"
let m_skipped = Tm.counter "lalr.tokens_skipped"
let m_conflict_hits = Tm.counter "lalr.conflict_hits"

(* Runtime conflict accounting: when the table was built with yacc-style
   resolution, count each consultation of a cell that had a conflict.  The
   common conflict-free table pays one list test per parse, nothing per
   token. *)
let conflict_probe (tbl : Table.t) =
  if tbl.Table.conflicts = [] then None
  else begin
    let cells = Hashtbl.create 16 in
    List.iter
      (fun c -> Hashtbl.replace cells (c.Table.c_state, c.Table.c_terminal) ())
      tbl.Table.conflicts;
    Some (fun state sym -> if Hashtbl.mem cells (state, sym) then Tm.incr m_conflict_hits)
  end

exception
  Syntax_error of {
    line : int;
    found : string;
    expected : string list;
  }

(* A runaway right-nesting (thousands of unclosed parentheses) would push
   the parse stack — and therefore the derivation tree and every recursive
   pass over it — arbitrarily deep.  Bounding the stack here turns the
   eventual Stack_overflow into an ordinary syntax diagnostic at the point
   where the nesting became unreasonable. *)
let default_max_depth = 5_000

let too_deep line max_depth =
  Syntax_error
    {
      line;
      found = Printf.sprintf "nesting deeper than %d levels" max_depth;
      expected = [];
    }

let parse ?(max_depth = default_max_depth) (tbl : Table.t)
    ~(lexer : unit -> 'v token) ~(shift : int -> 'v -> int -> 'n)
    ~(reduce : int -> 'n list -> 'n) : 'n =
  let cfg = tbl.Table.cfg in
  let probe = conflict_probe tbl in
  let states = ref [ 0 ] in
  let depth = ref 1 in
  let values : 'n list ref = ref [] in
  let lookahead = ref (lexer ()) in
  let rec loop () =
    let state = List.hd !states in
    let tok = !lookahead in
    (match probe with Some p -> p state tok.t_sym | None -> ());
    match tbl.Table.action.(state).(tok.t_sym) with
    | Table.Shift st' ->
      if !depth >= max_depth then raise (too_deep tok.t_line max_depth);
      Tm.incr m_shifts;
      states := st' :: !states;
      incr depth;
      values := shift tok.t_sym tok.t_value tok.t_line :: !values;
      lookahead := lexer ();
      loop ()
    | Table.Reduce prod_id ->
      Tm.incr m_reduces;
      let p = Cfg.production cfg prod_id in
      let arity = Array.length p.Cfg.rhs in
      (* pop [arity] states and values; children come out in source order *)
      let pop_n n =
        let children = ref [] in
        for _ = 1 to n do
          (match !values with
          | v :: vs ->
            children := v :: !children;
            values := vs
          | [] -> assert false);
          match !states with
          | _ :: sts -> states := sts
          | [] -> assert false
        done;
        !children
      in
      let children = pop_n arity in
      depth := !depth - arity;
      let node = reduce prod_id children in
      let state' = List.hd !states in
      let goto = tbl.Table.goto.(state').(p.Cfg.lhs) in
      if goto < 0 then assert false;
      states := goto :: !states;
      incr depth;
      values := node :: !values;
      loop ()
    | Table.Accept -> (
      match !values with
      | [ v ] -> v
      | _ -> assert false)
    | Table.Error ->
      Tm.incr m_errors;
      raise
        (Syntax_error
           {
             line = tok.t_line;
             found = cfg.Cfg.symbol_name tok.t_sym;
             expected = Table.expected_terminals tbl state;
           })
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Panic-mode error recovery *)

type sync_class =
  | Sync_start (* may begin a fresh recovery segment (design-unit starter) *)
  | Sync_end (* "end": arms the end-of-construct resync *)
  | Sync_semi (* ";": closes an armed "end ... ;" resync *)
  | Sync_other

type error = {
  e_line : int;
  e_found : string;
  e_expected : string list;
  e_skipped : int; (* tokens discarded while resynchronizing *)
}

type 'n recovery = {
  r_root : 'n option; (* the salvaged derivation, if any prefix accepted *)
  r_errors : error list; (* oldest first *)
}

let default_max_errors = 25

(** Parse with phrase-level panic-mode recovery.

    On a syntax error the driver records a located diagnostic, restores the
    parse stack to the most recent {e checkpoint} (a reduce of a production
    the caller marks with [checkpoint] — for a design file, the reduce that
    closes the design-unit list, so everything parsed so far is preserved),
    and discards input up to a synchronizing token: either a [Sync_start]
    terminal (a design-unit starter keyword) or the token following an
    ["end" ... ";"] sequence.  Parsing then resumes; at end of input the
    driver makes one final attempt to accept the salvaged prefix.

    Diagnostics for cascade errors (a resynchronization that immediately
    fails again without consuming input) are suppressed, the classic
    "no message until real progress" rule.  The derivation tree contains
    only the well-formed regions; each skipped region is represented by its
    error record ([e_skipped] tokens wide) rather than by an error node,
    because the attribute evaluator requires derivations of the actual
    grammar. *)
let parse_recovering ?(max_errors = default_max_errors)
    ?(max_depth = default_max_depth) (tbl : Table.t)
    ~(lexer : unit -> 'v token) ~eof ~(shift : int -> 'v -> int -> 'n)
    ~(reduce : int -> 'n list -> 'n) ~(checkpoint : int -> bool)
    ~(classify : int -> sync_class) : 'n recovery =
  let cfg = tbl.Table.cfg in
  let probe = conflict_probe tbl in
  let states = ref [ 0 ] in
  let depth = ref 1 in
  let values : 'n list ref = ref [] in
  let saved = ref ([ 0 ], [], 1) in
  let errors = ref [] in (* newest first *)
  let shifts_since_recovery = ref max_int in (* start counts as progress *)
  let lookahead = ref (lexer ()) in
  let result = ref None in
  let eof_salvage_tried = ref false in
  let running = ref true in
  let record line found expected =
    if !shifts_since_recovery > 0 then
      errors :=
        { e_line = line; e_found = found; e_expected = expected; e_skipped = 0 }
        :: !errors
  in
  let add_skipped n =
    match !errors with
    | e :: rest when n > 0 -> errors := { e with e_skipped = e.e_skipped + n } :: rest
    | _ -> ()
  in
  (* discard the offending token, then scan to a synchronizing point *)
  let skip_to_sync () =
    let skipped = ref 0 in
    let seen_end = ref false in
    let stop = ref false in
    while not !stop do
      let tok = !lookahead in
      if tok.t_sym = eof then stop := true
      else if !skipped > 0 && classify tok.t_sym = Sync_start then stop := true
      else begin
        incr skipped;
        (match classify tok.t_sym with
        | Sync_end -> seen_end := true
        | Sync_semi -> if !seen_end then stop := true
        | Sync_start | Sync_other -> ());
        lookahead := lexer ()
      end
    done;
    Tm.add m_skipped !skipped;
    add_skipped !skipped
  in
  let recover line found expected =
    let progressed = !shifts_since_recovery > 0 in
    Tm.incr m_errors;
    Tm.incr m_resyncs;
    record line found expected;
    if List.length !errors >= max_errors then running := false
    else begin
      let ss, vs, d = !saved in
      states := ss;
      values := vs;
      depth := d;
      shifts_since_recovery := 0;
      let tok = !lookahead in
      if tok.t_sym = eof then begin
        (* final salvage: try to accept what we have, exactly once *)
        if !eof_salvage_tried then running := false
        else eof_salvage_tried := true
      end
      else if progressed && classify tok.t_sym = Sync_start then
        (* already standing on a fresh unit starter: retry it as-is *)
        ()
      else skip_to_sync ()
    end
  in
  while !running do
    let state = List.hd !states in
    let tok = !lookahead in
    (match probe with Some p -> p state tok.t_sym | None -> ());
    match tbl.Table.action.(state).(tok.t_sym) with
    | Table.Shift st' ->
      if !depth >= max_depth then
        recover tok.t_line
          (Printf.sprintf "nesting deeper than %d levels" max_depth)
          []
      else begin
        Tm.incr m_shifts;
        states := st' :: !states;
        incr depth;
        values := shift tok.t_sym tok.t_value tok.t_line :: !values;
        if !shifts_since_recovery < max_int then incr shifts_since_recovery;
        lookahead := lexer ()
      end
    | Table.Reduce prod_id ->
      Tm.incr m_reduces;
      let p = Cfg.production cfg prod_id in
      let arity = Array.length p.Cfg.rhs in
      let pop_n n =
        let children = ref [] in
        for _ = 1 to n do
          (match !values with
          | v :: vs ->
            children := v :: !children;
            values := vs
          | [] -> assert false);
          match !states with
          | _ :: sts -> states := sts
          | [] -> assert false
        done;
        !children
      in
      let children = pop_n arity in
      depth := !depth - arity;
      let node = reduce prod_id children in
      let state' = List.hd !states in
      let goto = tbl.Table.goto.(state').(p.Cfg.lhs) in
      if goto < 0 then assert false;
      states := goto :: !states;
      incr depth;
      values := node :: !values;
      if checkpoint prod_id then saved := (!states, !values, !depth)
    | Table.Accept ->
      (match !values with
      | [ v ] -> result := Some v
      | _ -> ());
      running := false
    | Table.Error ->
      recover tok.t_line (cfg.Cfg.symbol_name tok.t_sym)
        (Table.expected_terminals tbl state)
  done;
  { r_root = !result; r_errors = List.rev !errors }
