(** LALR(1) lookahead sets via the DeRemer–Pennello relations
    (reads / includes / lookback) and the digraph algorithm — the efficient
    construction a production table builder uses, rather than merging
    canonical LR(1) states. *)

type t

val digraph : n:int -> edges:(int -> int list) -> init:Bitset.t array -> Bitset.t array
(** The generic digraph algorithm (DeRemer & Pennello 1982): propagate the
    [init] sets along [edges], handling cycles as SCCs.  [init] is mutated
    in place and returned. *)

val compute : Lr0.t -> First.t -> t

val la : t -> state:int -> prod:int -> int list
(** Lookahead terminals of reduction [prod] in [state]. *)
