(** Context-free grammars for the LALR(1) generator.  Symbols are dense
    integer ids supplied by the caller (the AG layer shares its interner);
    [eof] is a distinguished terminal the lexer emits at end of input. *)

type production = {
  id : int;
  lhs : int;
  rhs : int array;
}

type t = {
  n_symbols : int;
  is_terminal : bool array;
  productions : production array;
  prods_of : int list array;
  start : int;
  eof : int;
  symbol_name : int -> string;
}

val create :
  n_symbols:int ->
  is_terminal:bool array ->
  productions:production array ->
  start:int ->
  eof:int ->
  symbol_name:(int -> string) ->
  t

val production : t -> int -> production
val n_productions : t -> int
val pp_production : t -> Format.formatter -> production -> unit
