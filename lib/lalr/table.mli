(** LALR(1) parse tables with conflict reporting.

    Conflicts are resolved yacc-style (shift over reduce; earlier production
    for reduce/reduce) and recorded for the grammar author — the paper's
    §4.1 complains about exactly this bookkeeping when uniting
    productions. *)

type action =
  | Shift of int
  | Reduce of int
  | Accept
  | Error

type conflict = {
  c_state : int;
  c_terminal : int;
  c_kind : [ `Shift_reduce of int (* losing production *) | `Reduce_reduce of int * int ];
}

type t = {
  cfg : Cfg.t;
  action : action array array; (* state x symbol (terminals used) *)
  goto : int array array; (* state x symbol (nonterminals used), -1 = none *)
  conflicts : conflict list;
  n_states : int;
}

val build : Cfg.t -> t

val expected_terminals : t -> int -> string list
(** Terminal names with a non-error action in a state (error messages). *)

val pp_conflict : t -> Format.formatter -> conflict -> unit
