(** Context-free grammars for the LALR(1) generator.

    Symbols are dense integer ids supplied by the caller (the AG layer shares
    its interner).  The grammar is augmented internally: production [-1] is
    the virtual [S' ::= start] and [eof] is a distinguished terminal that the
    caller's lexer must emit at end of input. *)

type production = {
  id : int;
  lhs : int;
  rhs : int array;
}

type t = {
  n_symbols : int;
  is_terminal : bool array;
  productions : production array;
  prods_of : int list array; (* productions by lhs *)
  start : int;
  eof : int;
  symbol_name : int -> string;
}

let create ~n_symbols ~is_terminal ~productions ~start ~eof ~symbol_name =
  if not is_terminal.(eof) then invalid_arg "Cfg.create: eof must be a terminal";
  if is_terminal.(start) then invalid_arg "Cfg.create: start must be a nonterminal";
  let prods_of = Array.make n_symbols [] in
  Array.iter (fun p -> prods_of.(p.lhs) <- p.id :: prods_of.(p.lhs)) productions;
  Array.iteri (fun i l -> prods_of.(i) <- List.rev l) prods_of;
  { n_symbols; is_terminal; productions; prods_of; start; eof; symbol_name }

let production g id = g.productions.(id)
let n_productions g = Array.length g.productions

let pp_production g fmt (p : production) =
  Format.fprintf fmt "%s ::=%s" (g.symbol_name p.lhs)
    (if Array.length p.rhs = 0 then " <empty>"
     else
       Array.to_list p.rhs
       |> List.map (fun s -> " " ^ g.symbol_name s)
       |> String.concat "")
