(** LALR(1) lookahead sets via the DeRemer–Pennello relations
    (reads / includes / lookback) and the digraph algorithm.

    This is the efficient construction a production table builder (like the
    one inside the paper's Linguist) would use, rather than merging canonical
    LR(1) states. *)

type t = {
  lr0 : Lr0.t;
  (* one entry per nonterminal transition *)
  nt_trans : (int * int) array; (* (state, nonterminal) *)
  follow : Bitset.t array; (* indexed like nt_trans *)
  (* (state, production) -> lookahead terminals *)
  la : (int * int, Bitset.t) Hashtbl.t;
}

(* Generic digraph algorithm (DeRemer & Pennello 1982).  [edges x] lists the
   nodes whose sets flow into [x]'s; [init] gives each node's initial set,
   which is mutated in place to become the result. *)
let digraph ~n ~edges ~(init : Bitset.t array) =
  let mark = Array.make n 0 in
  let stack = ref [] in
  let depth = ref 0 in
  let rec traverse x =
    stack := x :: !stack;
    incr depth;
    let d = !depth in
    mark.(x) <- d;
    List.iter
      (fun y ->
        if mark.(y) = 0 then traverse y;
        if mark.(y) < mark.(x) then mark.(x) <- mark.(y);
        ignore (Bitset.union_into ~into:init.(x) init.(y)))
      (edges x);
    if mark.(x) = d then begin
      let rec pop () =
        match !stack with
        | [] -> assert false
        | top :: rest ->
          stack := rest;
          decr depth;
          mark.(top) <- max_int;
          if top <> x then begin
            ignore (Bitset.union_into ~into:init.(top) init.(x));
            pop ()
          end
      in
      pop ()
    end
  in
  for x = 0 to n - 1 do
    if mark.(x) = 0 then traverse x
  done;
  init

let compute (lr0 : Lr0.t) (fi : First.t) =
  let cfg = lr0.Lr0.cfg in
  let width = cfg.Cfg.n_symbols in
  (* enumerate nonterminal transitions *)
  let nt_trans = ref [] in
  for st = lr0.Lr0.n_states - 1 downto 0 do
    List.iter
      (fun (sym, _) -> if not cfg.Cfg.is_terminal.(sym) then nt_trans := (st, sym) :: !nt_trans)
      lr0.Lr0.transitions.(st)
  done;
  let nt_trans = Array.of_list !nt_trans in
  let n = Array.length nt_trans in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i key -> Hashtbl.replace index key i) nt_trans;
  (* DR: terminals readable directly after the transition *)
  let dr =
    Array.map
      (fun (st, a) ->
        let set = Bitset.create width in
        (* the augmented production is S' ::= start, so end-of-input is
           readable after the initial transition on the start symbol *)
        if st = 0 && a = cfg.Cfg.start then Bitset.add set cfg.Cfg.eof;
        (match Lr0.goto lr0 st a with
        | None -> assert false
        | Some r ->
          List.iter
            (fun (sym, _) -> if cfg.Cfg.is_terminal.(sym) then Bitset.add set sym)
            lr0.Lr0.transitions.(r));
        set)
      nt_trans
  in
  (* reads *)
  let reads i =
    let st, a = nt_trans.(i) in
    match Lr0.goto lr0 st a with
    | None -> []
    | Some r ->
      List.filter_map
        (fun (sym, _) ->
          if (not cfg.Cfg.is_terminal.(sym)) && fi.First.nullable.(sym) then
            Hashtbl.find_opt index (r, sym)
          else None)
        lr0.Lr0.transitions.(r)
  in
  let read_sets = digraph ~n ~edges:reads ~init:(Array.map Bitset.copy dr) in
  (* includes and lookback, computed by walking each production from each
     transition on its lhs *)
  let includes = Array.make n [] in
  let lookback : (int * int, int list) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun ti (p_state, b) ->
      List.iter
        (fun pid ->
          let rhs = (Cfg.production cfg pid).Cfg.rhs in
          let state = ref p_state in
          Array.iteri
            (fun i sym ->
              if (not cfg.Cfg.is_terminal.(sym)) && First.nullable_seq fi rhs (i + 1) then begin
                match Hashtbl.find_opt index (!state, sym) with
                | Some si -> includes.(si) <- ti :: includes.(si)
                | None -> ()
              end;
              match Lr0.goto lr0 !state sym with
              | Some next -> state := next
              | None -> invalid_arg "Lookahead.compute: automaton is missing a transition")
            rhs;
          let key = (!state, pid) in
          let prev = Option.value (Hashtbl.find_opt lookback key) ~default:[] in
          Hashtbl.replace lookback key (ti :: prev))
        cfg.Cfg.prods_of.(b))
    nt_trans;
  let follow = digraph ~n ~edges:(fun i -> includes.(i)) ~init:read_sets in
  let la = Hashtbl.create 256 in
  Hashtbl.iter
    (fun key tis ->
      let set = Bitset.create width in
      List.iter (fun ti -> ignore (Bitset.union_into ~into:set follow.(ti))) tis;
      Hashtbl.replace la key set)
    lookback;
  { lr0; nt_trans; follow; la }

(** Lookahead terminals of reduction [prod] in [state]. *)
let la t ~state ~prod =
  match Hashtbl.find_opt t.la (state, prod) with
  | Some set -> Bitset.elements set
  | None -> []
