(** LR(0) automaton construction.

    Items are packed into single integers: [prod_id * stride + dot], with a
    virtual augmented production standing for [S' ::= start].  States are
    canonical sorted arrays of kernel items; the closure is recomputed on
    demand (cheap, and keeps states small and hashable). *)

type item = int

type t = {
  cfg : Cfg.t;
  stride : int;
  aug_prod : int;  (** id of the virtual production [S' ::= start] *)
  states : item array array;  (** kernel item sets *)
  transitions : (int * int) list array;  (** state -> (symbol, next state) *)
  n_states : int;
}

val item : stride:int -> int -> int -> item
val item_prod : stride:int -> item -> int
val item_dot : stride:int -> item -> int

val prod_rhs : t -> int -> int array
(** Right-hand side of a production; the augmented production yields
    [[| start |]]. *)

val build : Cfg.t -> t
(** The canonical LR(0) collection by worklist over kernel item sets. *)

val goto : t -> int -> int -> int option
(** [goto t state symbol] — the successor state, if any. *)

val items : t -> int -> item list
(** Kernel plus closure items of a state, sorted. *)

val reductions : t -> int -> int list
(** Complete items (dot at end) of a state, as production ids. *)

val pp_item : t -> Format.formatter -> item -> unit
(** ["expr ::= expr . + term"] — for conflict reports and debugging. *)
