(** Dense bit sets over [0, n): terminal sets in the LALR construction. *)

type t

val create : int -> t
val copy : t -> t
val mem : t -> int -> bool
val add : t -> int -> unit

val union_into : into:t -> t -> bool
(** Add all elements of the second set; [true] if the target changed. *)

val iter : t -> (int -> unit) -> unit
val elements : t -> int list
val is_empty : t -> bool
val cardinal : t -> int
