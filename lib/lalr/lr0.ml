(** LR(0) automaton construction.

    Items are packed into single integers: [prod_id * stride + dot], with a
    virtual augmented production [n_productions] standing for [S' ::= start].
    States are canonical sorted arrays of kernel items; the closure is
    recomputed on demand (cheap, and keeps states small and hashable). *)

type item = int

type t = {
  cfg : Cfg.t;
  stride : int;
  aug_prod : int; (* id of the virtual production S' ::= start *)
  states : item array array; (* kernel item sets *)
  transitions : (int * int) list array; (* state -> (symbol, next state) *)
  n_states : int;
}

let item ~stride prod dot = (prod * stride) + dot
let item_prod ~stride it = it / stride
let item_dot ~stride it = it mod stride

let prod_rhs t p =
  if p = t.aug_prod then [| t.cfg.Cfg.start |] else (Cfg.production t.cfg p).Cfg.rhs

(* Closure of an item set: the nonterminals after the dot, expanded.  We
   return the set of productions whose initial items join the closure; full
   items are reconstructed as (prod, 0). *)
let closure_nonkernel (cfg : Cfg.t) ~stride ~aug_prod kernel =
  let added = Hashtbl.create 16 in
  let queue = Queue.create () in
  let consider_symbol s =
    if (not cfg.Cfg.is_terminal.(s)) && not (Hashtbl.mem added s) then begin
      Hashtbl.add added s ();
      Queue.add s queue
    end
  in
  Array.iter
    (fun it ->
      let p = item_prod ~stride it in
      let dot = item_dot ~stride it in
      let rhs = if p = aug_prod then [| cfg.Cfg.start |] else (Cfg.production cfg p).Cfg.rhs in
      if dot < Array.length rhs then consider_symbol rhs.(dot))
    kernel;
  let prods = ref [] in
  while not (Queue.is_empty queue) do
    let nt = Queue.pop queue in
    List.iter
      (fun pid ->
        prods := pid :: !prods;
        let rhs = (Cfg.production cfg pid).Cfg.rhs in
        if Array.length rhs > 0 then consider_symbol rhs.(0))
      cfg.Cfg.prods_of.(nt)
  done;
  !prods

let build (cfg : Cfg.t) =
  let aug_prod = Cfg.n_productions cfg in
  let stride =
    1
    + Array.fold_left
        (fun acc (p : Cfg.production) -> max acc (Array.length p.Cfg.rhs))
        1 cfg.Cfg.productions
  in
  let state_ids : (item array, int) Hashtbl.t = Hashtbl.create 256 in
  let states = ref [] in
  let n_states = ref 0 in
  let get_state kernel =
    match Hashtbl.find_opt state_ids kernel with
    | Some id -> (id, false)
    | None ->
      let id = !n_states in
      incr n_states;
      Hashtbl.add state_ids kernel id;
      states := kernel :: !states;
      (id, true)
  in
  let initial = [| item ~stride aug_prod 0 |] in
  let _, _ = get_state initial in
  let work = Queue.create () in
  Queue.add (0, initial) work;
  let trans_acc = Hashtbl.create 256 in
  while not (Queue.is_empty work) do
    let state_id, kernel = Queue.pop work in
    (* successor kernels by symbol *)
    let succ : (int, item list ref) Hashtbl.t = Hashtbl.create 16 in
    let shift_item it =
      let p = item_prod ~stride it in
      let dot = item_dot ~stride it in
      let rhs =
        if p = aug_prod then [| cfg.Cfg.start |] else (Cfg.production cfg p).Cfg.rhs
      in
      if dot < Array.length rhs then begin
        let s = rhs.(dot) in
        let cell =
          match Hashtbl.find_opt succ s with
          | Some c -> c
          | None ->
            let c = ref [] in
            Hashtbl.add succ s c;
            c
        in
        cell := item ~stride p (dot + 1) :: !cell
      end
    in
    Array.iter shift_item kernel;
    List.iter
      (fun pid -> shift_item (item ~stride pid 0))
      (closure_nonkernel cfg ~stride ~aug_prod kernel);
    let edges = ref [] in
    Hashtbl.iter
      (fun sym items ->
        let kernel' = Array.of_list (List.sort_uniq compare !items) in
        let id', fresh = get_state kernel' in
        if fresh then Queue.add (id', kernel') work;
        edges := (sym, id') :: !edges)
      succ;
    Hashtbl.replace trans_acc state_id !edges
  done;
  let states_arr = Array.of_list (List.rev !states) in
  let transitions_arr = Array.make !n_states [] in
  Hashtbl.iter (fun id edges -> transitions_arr.(id) <- edges) trans_acc;
  { cfg; stride; aug_prod; states = states_arr; transitions = transitions_arr; n_states = !n_states }

let goto t state sym = List.assoc_opt sym t.transitions.(state)

(** All items (kernel + nonkernel) of a state. *)
let items t state =
  let kernel = Array.to_list t.states.(state) in
  let nonkernel =
    closure_nonkernel t.cfg ~stride:t.stride ~aug_prod:t.aug_prod t.states.(state)
    |> List.map (fun pid -> item ~stride:t.stride pid 0)
  in
  List.sort_uniq compare (kernel @ nonkernel)

(** Complete items (dot at end) of a state, as production ids. *)
let reductions t state =
  items t state
  |> List.filter_map (fun it ->
         let p = item_prod ~stride:t.stride it in
         let dot = item_dot ~stride:t.stride it in
         let rhs = prod_rhs t p in
         if dot = Array.length rhs then Some p else None)

let pp_item t fmt it =
  let p = item_prod ~stride:t.stride it in
  let dot = item_dot ~stride:t.stride it in
  let rhs = prod_rhs t p in
  let lhs_name =
    if p = t.aug_prod then "S'" else t.cfg.Cfg.symbol_name (Cfg.production t.cfg p).Cfg.lhs
  in
  Format.fprintf fmt "%s ::=" lhs_name;
  Array.iteri
    (fun i s ->
      if i = dot then Format.pp_print_string fmt " .";
      Format.fprintf fmt " %s" (t.cfg.Cfg.symbol_name s))
    rhs;
  if dot = Array.length rhs then Format.pp_print_string fmt " ."
