(** LALR(1) parse tables with conflict reporting.

    Conflicts are resolved yacc-style (shift over reduce; earlier production
    for reduce/reduce) and recorded, so grammar authors can inspect them —
    the paper's §4.1 complains precisely about having to "keep track of the
    parsing conflicts and ensure they were resolved correctly" when uniting
    productions, which is what the LEF cascade avoids. *)

type action =
  | Shift of int
  | Reduce of int
  | Accept
  | Error

type conflict = {
  c_state : int;
  c_terminal : int;
  c_kind : [ `Shift_reduce of int (* losing production *) | `Reduce_reduce of int * int ];
}

type t = {
  cfg : Cfg.t;
  action : action array array; (* state x symbol (terminals used) *)
  goto : int array array; (* state x symbol (nonterminals used), -1 = none *)
  conflicts : conflict list;
  n_states : int;
}

let build (cfg : Cfg.t) =
  let lr0 = Lr0.build cfg in
  let fi = First.compute cfg in
  let look = Lookahead.compute lr0 fi in
  let n_states = lr0.Lr0.n_states in
  let n_symbols = cfg.Cfg.n_symbols in
  let action = Array.init n_states (fun _ -> Array.make n_symbols Error) in
  let goto = Array.init n_states (fun _ -> Array.make n_symbols (-1)) in
  let conflicts = ref [] in
  for st = 0 to n_states - 1 do
    List.iter
      (fun (sym, st') ->
        if cfg.Cfg.is_terminal.(sym) then action.(st).(sym) <- Shift st'
        else goto.(st).(sym) <- st')
      lr0.Lr0.transitions.(st);
    (* accept: item [S' ::= start .] *)
    let accepts =
      Array.exists
        (fun it ->
          Lr0.item_prod ~stride:lr0.Lr0.stride it = lr0.Lr0.aug_prod
          && Lr0.item_dot ~stride:lr0.Lr0.stride it = 1)
        lr0.Lr0.states.(st)
    in
    if accepts then action.(st).(cfg.Cfg.eof) <- Accept;
    List.iter
      (fun prod ->
        if prod <> lr0.Lr0.aug_prod then
          List.iter
            (fun t ->
              match action.(st).(t) with
              | Error -> action.(st).(t) <- Reduce prod
              | Shift _ ->
                (* keep the shift *)
                conflicts :=
                  { c_state = st; c_terminal = t; c_kind = `Shift_reduce prod } :: !conflicts
              | Reduce other ->
                let keep = min other prod and lose = max other prod in
                action.(st).(t) <- Reduce keep;
                conflicts :=
                  { c_state = st; c_terminal = t; c_kind = `Reduce_reduce (keep, lose) }
                  :: !conflicts
              | Accept -> ())
            (Lookahead.la look ~state:st ~prod))
      (Lr0.reductions lr0 st)
  done;
  { cfg; action; goto; conflicts = List.rev !conflicts; n_states }

let expected_terminals t state =
  let acc = ref [] in
  for sym = t.cfg.Cfg.n_symbols - 1 downto 0 do
    if t.cfg.Cfg.is_terminal.(sym) then
      match t.action.(state).(sym) with
      | Error -> ()
      | Shift _ | Reduce _ | Accept -> acc := t.cfg.Cfg.symbol_name sym :: !acc
  done;
  !acc

let pp_conflict t fmt c =
  let term = t.cfg.Cfg.symbol_name c.c_terminal in
  match c.c_kind with
  | `Shift_reduce prod ->
    Format.fprintf fmt "state %d on %s: shift/reduce (reduce %a loses)" c.c_state term
      (Cfg.pp_production t.cfg) (Cfg.production t.cfg prod)
  | `Reduce_reduce (keep, lose) ->
    Format.fprintf fmt "state %d on %s: reduce/reduce (%a wins over %a)" c.c_state term
      (Cfg.pp_production t.cfg) (Cfg.production t.cfg keep) (Cfg.pp_production t.cfg)
      (Cfg.production t.cfg lose)
