(** VHDL tokens (IEEE 1076-1987 lexical elements). *)

type t =
  | Tid of string (* identifier, normalized to upper case *)
  | Tkw of string (* reserved word, lower case *)
  | Tint of int
  | Treal of float
  | Tchar of string (* image including the quotes: "'a'" *)
  | Tstring of string (* contents, quotes stripped, "" unescaped *)
  | Tbitstr of string (* expanded to binary digits *)
  | Tpunct of string
  | Teof

(* VHDL-87 reserved words. *)
let reserved_words =
  [
    "abs"; "access"; "after"; "alias"; "all"; "and"; "architecture"; "array";
    "assert"; "attribute"; "begin"; "block"; "body"; "buffer"; "bus"; "case";
    "component"; "configuration"; "constant"; "disconnect"; "downto"; "else";
    "elsif"; "end"; "entity"; "exit"; "file"; "for"; "function"; "generate";
    "generic"; "guarded"; "if"; "in"; "inout"; "is"; "label"; "library";
    "linkage"; "loop"; "map"; "mod"; "nand"; "new"; "next"; "nor"; "not";
    "null"; "of"; "on"; "open"; "or"; "others"; "out"; "package"; "port";
    "procedure"; "process"; "range"; "record"; "register"; "rem"; "report";
    "return"; "select"; "severity"; "signal"; "subtype"; "then"; "to";
    "transport"; "type"; "units"; "until"; "use"; "variable"; "wait"; "when";
    "while"; "with"; "xor";
  ]

let reserved = Hashtbl.create 101

let () = List.iter (fun w -> Hashtbl.replace reserved w ()) reserved_words

let is_reserved w = Hashtbl.mem reserved w

(** Terminal-symbol name used in the principal grammar for this token. *)
let terminal_name = function
  | Tid _ -> "ID"
  | Tkw kw -> kw
  | Tint _ -> "INT"
  | Treal _ -> "REAL"
  | Tchar _ -> "CHAR"
  | Tstring _ -> "STRING"
  | Tbitstr _ -> "BITSTR"
  | Tpunct p -> p
  | Teof -> "EOF"

(** All punctuation terminals of the grammar. *)
let punct_terminals =
  [
    "("; ")"; ","; ";"; ":"; "."; "&"; "'"; "|"; "+"; "-"; "*"; "/"; "=";
    "<"; ">"; "**"; ":="; "<="; ">="; "=>"; "/="; "<>";
  ]

let describe = function
  | Tid s -> Printf.sprintf "identifier %s" s
  | Tkw kw -> Printf.sprintf "keyword %s" kw
  | Tint n -> Printf.sprintf "integer literal %d" n
  | Treal x -> Printf.sprintf "real literal %g" x
  | Tchar c -> Printf.sprintf "character literal %s" c
  | Tstring s -> Printf.sprintf "string literal \"%s\"" s
  | Tbitstr s -> Printf.sprintf "bit-string literal %s" s
  | Tpunct p -> Printf.sprintf "'%s'" p
  | Teof -> "end of file"
