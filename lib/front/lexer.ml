(** VHDL scanner (IEEE 1076-1987 lexical rules).

    Identifiers are case-insensitive and normalized to upper case; reserved
    words to lower case.  Abstract literals support underscores, based
    notation (16#FF#) and exponents.  The tick character is disambiguated
    between character literals and attribute/qualified-expression marks by
    the previous token, as in conventional VHDL scanners. *)

exception Lex_error of { line : int; msg : string }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable prev : Token.t; (* previous significant token, for tick rule *)
}

let make src = { src; pos = 0; line = 1; prev = Token.Teof }

let error st fmt =
  Format.kasprintf (fun msg -> raise (Lex_error { line = st.line; msg })) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let peek3 st =
  if st.pos + 2 < String.length st.src then Some st.src.[st.pos + 2] else None

let advance st =
  (match peek st with
  | Some '\n' -> st.line <- st.line + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_letter c || is_digit c || c = '_'

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some _ | None -> ()

let scan_identifier st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let raw = String.sub st.src start (st.pos - start) in
  let lower = String.lowercase_ascii raw in
  if Token.is_reserved lower then Token.Tkw lower else Token.Tid (String.uppercase_ascii raw)

(* digits with optional underscores; returns the digit string *)
let scan_digits st =
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some c when is_digit c ->
      Buffer.add_char buf c;
      advance st;
      go ()
    | Some '_' ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  Buffer.contents buf

let scan_based st base_digits =
  (* we are just past the '#'; base_digits is the base *)
  let base =
    match int_of_string_opt base_digits with
    | Some b when b >= 2 && b <= 16 -> b
    | _ -> error st "invalid base %s" base_digits
  in
  let digit_value c =
    if is_digit c then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'f' then 10 + Char.code c - Char.code 'a'
    else if c >= 'A' && c <= 'F' then 10 + Char.code c - Char.code 'A'
    else -1
  in
  let value = ref 0 in
  let any = ref false in
  let rec go () =
    match peek st with
    | Some '_' ->
      advance st;
      go ()
    | Some c when digit_value c >= 0 && digit_value c < base ->
      value := (!value * base) + digit_value c;
      any := true;
      advance st;
      go ()
    | Some '#' -> advance st
    | Some c -> error st "invalid character %c in based literal" c
    | None -> error st "unterminated based literal"
  in
  go ();
  if not !any then error st "empty based literal";
  Token.Tint !value

let scan_number st =
  let int_part = scan_digits st in
  match peek st with
  | Some '#' ->
    advance st;
    scan_based st int_part
  | Some '.' when (match peek2 st with Some c -> is_digit c | None -> false) ->
    advance st;
    let frac = scan_digits st in
    let exp =
      match peek st with
      | Some ('e' | 'E') ->
        advance st;
        let sign =
          match peek st with
          | Some '-' ->
            advance st;
            "-"
          | Some '+' ->
            advance st;
            ""
          | _ -> ""
        in
        "e" ^ sign ^ scan_digits st
      | _ -> ""
    in
    Token.Treal (float_of_string (int_part ^ "." ^ frac ^ exp))
  | Some ('e' | 'E') ->
    (* integer with exponent: 1E6 *)
    advance st;
    let sign =
      match peek st with
      | Some '+' ->
        advance st;
        1
      | Some '-' -> error st "negative exponent in integer literal"
      | _ -> 1
    in
    ignore sign;
    let e = int_of_string (scan_digits st) in
    let rec pow10 acc n = if n = 0 then acc else pow10 (acc * 10) (n - 1) in
    Token.Tint (int_of_string int_part * pow10 1 e)
  | _ -> Token.Tint (int_of_string int_part)

let scan_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' when peek2 st = Some '"' ->
      Buffer.add_char buf '"';
      advance st;
      advance st;
      go ()
    | Some '"' -> advance st
    | Some '\n' -> error st "string literal crosses a line boundary"
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Token.Tstring (Buffer.contents buf)

let scan_bit_string st base_char =
  advance st (* base char *);
  advance st (* opening quote *);
  let bits_per, digit_bits =
    match Char.lowercase_ascii base_char with
    | 'b' -> (1, fun c -> if c = '0' then Some "0" else if c = '1' then Some "1" else None)
    | 'o' ->
      ( 3,
        fun c ->
          if c >= '0' && c <= '7' then begin
            let v = Char.code c - Char.code '0' in
            Some (Printf.sprintf "%d%d%d" ((v lsr 2) land 1) ((v lsr 1) land 1) (v land 1))
          end
          else None )
    | 'x' ->
      ( 4,
        fun c ->
          let v =
            if is_digit c then Some (Char.code c - Char.code '0')
            else if c >= 'a' && c <= 'f' then Some (10 + Char.code c - Char.code 'a')
            else if c >= 'A' && c <= 'F' then Some (10 + Char.code c - Char.code 'A')
            else None
          in
          Option.map
            (fun v ->
              String.concat ""
                (List.init 4 (fun i -> string_of_int ((v lsr (3 - i)) land 1))))
            v )
    | _ -> error st "invalid bit-string base %c" base_char
  in
  ignore bits_per;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated bit-string literal"
    | Some '"' -> advance st
    | Some '_' ->
      advance st;
      go ()
    | Some c -> (
      match digit_bits c with
      | Some bits ->
        Buffer.add_string buf bits;
        advance st;
        go ()
      | None -> error st "invalid character %c in bit-string literal" c)
  in
  go ();
  Token.Tbitstr (Buffer.contents buf)

(* A tick starts a character literal iff it is followed by <char>' and the
   previous token cannot end a name or an expression (in which case the tick
   is an attribute mark or qualified-expression mark). *)
let tick_is_char_literal st =
  peek3 st = Some '\''
  &&
  match st.prev with
  | Token.Tid _ | Token.Tpunct ")" | Token.Tpunct "]" -> false
  | Token.Tkw "all" -> false
  | _ -> true

let scan_punct st =
  let two c1 c2 = peek st = Some c1 && peek2 st = Some c2 in
  let take2 p =
    advance st;
    advance st;
    Token.Tpunct p
  in
  let take1 p =
    advance st;
    Token.Tpunct p
  in
  if two '*' '*' then take2 "**"
  else if two ':' '=' then take2 ":="
  else if two '<' '=' then take2 "<="
  else if two '>' '=' then take2 ">="
  else if two '=' '>' then take2 "=>"
  else if two '/' '=' then take2 "/="
  else if two '<' '>' then take2 "<>"
  else
    match peek st with
    | Some (( '(' | ')' | ',' | ';' | ':' | '.' | '&' | '\'' | '|' | '+' | '-' | '*'
            | '/' | '=' | '<' | '>' ) as c) ->
      take1 (String.make 1 c)
    | Some c -> error st "unexpected character %c" c
    | None -> Token.Teof

(** Next token with its source line. *)
let next st =
  skip_trivia st;
  let line = st.line in
  let tok =
    match peek st with
    | None -> Token.Teof
    | Some c when is_letter c ->
      (* bit-string literal B"0101" looks like an identifier first *)
      if (c = 'b' || c = 'B' || c = 'o' || c = 'O' || c = 'x' || c = 'X')
         && peek2 st = Some '"'
      then scan_bit_string st c
      else scan_identifier st
    | Some c when is_digit c -> scan_number st
    | Some '"' -> scan_string st
    | Some '\'' ->
      if tick_is_char_literal st then begin
        advance st;
        let c =
          match peek st with
          | Some c -> c
          | None -> error st "unterminated character literal"
        in
        advance st;
        (match peek st with
        | Some '\'' -> advance st
        | _ -> error st "unterminated character literal");
        Token.Tchar (Printf.sprintf "'%c'" c)
      end
      else scan_punct st
    | Some _ -> scan_punct st
  in
  st.prev <- tok;
  (tok, line)

module Tm = Vhdl_telemetry.Telemetry

let m_tokens = Tm.counter "lexer.tokens"
let m_lines = Tm.counter "lexer.lines"

(** Scan a whole source text. *)
let tokenize src =
  let st = make src in
  let rec go acc =
    match next st with
    | Token.Teof, line ->
      Tm.add m_lines st.line;
      List.rev ((Token.Teof, line) :: acc)
    | tok ->
      Tm.incr m_tokens;
      go (tok :: acc)
  in
  go []

(** Stripped source-line count, VHDL comment convention (Figure 2's "text
    that has been stripped of blank lines and comments"). *)
let source_lines src = Vhdl_util.Unix_compat.stripped_line_count ~comment_prefixes:[ "--" ] src
