(** Out-of-line semantic functions of the expression AG.

    The paper keeps complex semantic rules in "out-of-line,
    separately-compiled functions" (18% of the original compiler); these are
    ours for expression typing: candidate-set construction, operator typing,
    overload resolution, aggregate coercion, and attribute evaluation. *)

open Pval

(** Type used to keep going after an error has been reported; compatible
    with everything so one mistake produces one message. *)
let error_ty : Types.t = { Types.base = "%ERROR%"; kind = Types.Kint; constr = None }

let is_error_ty (ty : Types.t) = ty.Types.base = "%ERROR%"

let compat a b = is_error_ty a || is_error_ty b || Types.compatible a b

let error_cand = Cv { ty = error_ty; code = Kir.Elit (Value.Vint 0); static = None }

(** Pseudo-type of a procedure call "expression": lets procedure-call
    statements reuse the expression AG for argument matching. *)
let void_ty : Types.t = { Types.base = "%VOID%"; kind = Types.Kint; constr = None }

let cv ty code static =
  match static with
  | Some v -> Cv { ty; code = Kir.Elit v; static }
  | None -> Cv { ty; code; static }

let cand_ty = function
  | Cv { ty; _ } -> Some ty
  | Cagg _ | Cstr _ | Crng _ -> None

(* ------------------------------------------------------------------ *)
(* Candidate sets for LEF head tokens *)

let head_cands ~level (tok : Lef.tok) : cand list =
  match tok.Lef.l_kind with
  | Lef.Kvar { ty; level = abs_level; index; name } ->
    [ Cv { ty; code = Kir.Evar { level = level - abs_level; index; name }; static = None } ]
  | Lef.Ksig { ty; sref; _ } -> [ Cv { ty; code = Kir.Esig sref; static = None } ]
  | Lef.Kconst_val { ty; value; _ } ->
    [ Cv { ty; code = Kir.Elit value; static = Some value } ]
  | Lef.Kgeneric { ty; index; name } ->
    [ Cv { ty; code = Kir.Egeneric { index; name }; static = None } ]
  | Lef.Kunitconst { ty; name } ->
    [ Cv { ty; code = Kir.Eunit_const { name }; static = None } ]
  | Lef.Kattrval { ty; value } -> [ Cv { ty; code = Kir.Elit value; static = Some value } ]
  | _ -> [ error_cand ]

let literal_cands (tok : Lef.tok) : cand list =
  match tok.Lef.l_kind with
  | Lef.Kint n -> [ Cv { ty = Std.integer; code = Kir.Elit (Value.Vint n); static = Some (Value.Vint n) } ]
  | Lef.Kreal x ->
    [ Cv { ty = Std.real; code = Kir.Elit (Value.Vfloat x); static = Some (Value.Vfloat x) } ]
  | Lef.Kphys { value; ty } ->
    [ Cv { ty; code = Kir.Elit (Value.Vphys value); static = Some (Value.Vphys value) } ]
  | Lef.Kstr s ->
    let as_string = Std.string_value s in
    let base =
      [ Cv { ty = Std.string_ty; code = Kir.Elit as_string; static = Some as_string } ]
    in
    let base =
      if String.for_all (fun c -> c = '0' || c = '1') s && s <> "" then
        let bv = Std.bit_vector_value s in
        Cv { ty = Std.bit_vector; code = Kir.Elit bv; static = Some bv } :: base
      else base
    in
    base @ [ Cstr s ]
  | Lef.Kbitstr s ->
    let bv = Std.bit_vector_value s in
    [ Cv { ty = Std.bit_vector; code = Kir.Elit bv; static = Some bv }; Cstr s ]
  | Lef.Kenum cands ->
    List.map
      (fun (ty, pos, _) ->
        Cv { ty; code = Kir.Elit (Value.Venum pos); static = Some (Value.Venum pos) })
      cands
  | _ -> [ error_cand ]

(* ------------------------------------------------------------------ *)
(* Static folding *)

let try_fold_bin op code_a code_b =
  match (code_a, code_b) with
  | Kir.Elit va, Kir.Elit vb -> (
    match Value_ops.binop op va vb with
    | v -> Some v
    | exception Value_ops.Runtime_error _ -> None)
  | _ -> None

let try_fold_un op code =
  match code with
  | Kir.Elit v -> (
    match Value_ops.unop op v with
    | v -> Some v
    | exception Value_ops.Runtime_error _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Operator typing (LRM 7.2) *)

let is_logical_ty (ty : Types.t) =
  Types.same_base ty Std.boolean || Types.same_base ty Std.bit
  ||
  match ty.Types.kind with
  | Types.Karray { elem; _ } ->
    Types.same_base elem Std.boolean || Types.same_base elem Std.bit
  | _ -> false

let is_numeric_ty (ty : Types.t) =
  match ty.Types.kind with
  | Types.Kint | Types.Kfloat | Types.Kphys _ -> true
  | _ -> false

let is_discrete_array (ty : Types.t) =
  match ty.Types.kind with
  | Types.Karray { elem; _ } -> Types.is_scalar elem
  | _ -> false

let kir_binop = function
  | "and" -> Kir.Band
  | "or" -> Kir.Bor
  | "nand" -> Kir.Bnand
  | "nor" -> Kir.Bnor
  | "xor" -> Kir.Bxor
  | "=" -> Kir.Beq
  | "/=" -> Kir.Bneq
  | "<" -> Kir.Blt
  | "<=" -> Kir.Ble
  | ">" -> Kir.Bgt
  | ">=" -> Kir.Bge
  | "+" -> Kir.Badd
  | "-" -> Kir.Bsub
  | "&" -> Kir.Bconcat
  | "*" -> Kir.Bmul
  | "/" -> Kir.Bdiv
  | "mod" -> Kir.Bmod
  | "rem" -> Kir.Brem
  | "**" -> Kir.Bexp
  | op -> internal "unknown binary operator %s" op

(* unconstrained version of an array type, for & results *)
let unconstrained (ty : Types.t) = { ty with Types.constr = None }

let binop_result op (ta : Types.t) (tb : Types.t) : Types.t option =
  match op with
  | "and" | "or" | "nand" | "nor" | "xor" ->
    if compat ta tb && is_logical_ty ta then Some ta else None
  | "=" | "/=" ->
    let access_compat =
      (* access equality: same access type, or either side is null or an
         allocator adapting to the other (LRM 3.3) *)
      match (ta.Types.kind, tb.Types.kind) with
      | Types.Kaccess _, Types.Kaccess _ ->
        compat ta tb
        || ta.Types.base = "%NULL%" || tb.Types.base = "%NULL%"
        || ta.Types.base = "%ACCESS%" || tb.Types.base = "%ACCESS%"
      | _ -> false
    in
    if compat ta tb || access_compat then Some Std.boolean else None
  | "<" | "<=" | ">" | ">=" ->
    if compat ta tb && (Types.is_scalar ta || is_discrete_array ta) then Some Std.boolean
    else None
  | "+" | "-" -> if compat ta tb && is_numeric_ty ta then Some ta else None
  | "&" -> (
    match (ta.Types.kind, tb.Types.kind) with
    | Types.Karray { elem = ea; _ }, Types.Karray _ when compat ta tb ->
      ignore ea;
      Some (unconstrained ta)
    | Types.Karray { elem; _ }, _ when compat elem tb -> Some (unconstrained ta)
    | _, Types.Karray { elem; _ } when compat ta elem -> Some (unconstrained tb)
    | _ -> None)
  | "*" | "/" -> (
    match (ta.Types.kind, tb.Types.kind) with
    | Types.Kphys _, Types.Kint -> Some ta
    | Types.Kint, Types.Kphys _ when op = "*" -> Some tb
    | Types.Kphys _, Types.Kphys _ when op = "/" && compat ta tb -> Some Std.integer
    | (Types.Kint | Types.Kfloat), _ when compat ta tb -> Some ta
    | _ -> None)
  | "mod" | "rem" -> (
    match (ta.Types.kind, tb.Types.kind) with
    | Types.Kint, Types.Kint when compat ta tb -> Some ta
    | _ -> None)
  | "**" -> (
    match (ta.Types.kind, tb.Types.kind) with
    | Types.Kint, Types.Kint -> Some ta
    | Types.Kfloat, Types.Kint -> Some ta
    | _ -> None)
  | _ -> None

(* Turn candidates into plain value candidates (drop ranges, aggregates are
   kept: operators reject them; function sets are not in operand position in
   this pass because heads become calls in apply_args). *)
let value_cands cands =
  List.filter (function Cv _ -> true | Cagg _ | Cstr _ | Crng _ -> false) cands

let apply_binop_predefined ~line op lcands rcands : cand list * Diag.t list =
  let results = ref [] in
  List.iter
    (fun lc ->
      List.iter
        (fun rc ->
          match (lc, rc) with
          | Cv { ty = ta; code = ca; _ }, Cv { ty = tb; code = cb; _ } -> (
            match binop_result op ta tb with
            | Some rty ->
              if is_error_ty ta || is_error_ty tb then results := error_cand :: !results
              else begin
                let kop = kir_binop op in
                let static = try_fold_bin kop ca cb in
                results := cv rty (Kir.Ebin (kop, ca, cb)) static :: !results
              end
            | None -> ())
          | _ -> ())
        rcands)
    lcands;
  match !results with
  | [] ->
    if lcands = [] || rcands = [] then ([ error_cand ], [])
    else
      ( [ error_cand ],
        [
          Diag.error ~line "operator \"%s\" is not defined for these operand types%s" op
            (match (value_cands lcands, value_cands rcands) with
            | Cv { ty = a; _ } :: _, Cv { ty = b; _ } :: _ ->
              Printf.sprintf " (%s, %s)" (Types.short_name a) (Types.short_name b)
            | _ -> "");
        ] )
  | cands -> (List.rev cands, [])

let kir_unop = function
  | "-" -> Kir.Uneg
  | "+" -> Kir.Uplus
  | "abs" -> Kir.Uabs
  | "not" -> Kir.Unot
  | op -> internal "unknown unary operator %s" op

let apply_unop_predefined ~line op cands : cand list * Diag.t list =
  let results =
    List.filter_map
      (fun c ->
        match c with
        | Cv { ty; code; _ } ->
          let ok =
            match op with
            | "-" | "+" | "abs" -> is_numeric_ty ty
            | "not" -> is_logical_ty ty
            | _ -> false
          in
          if not ok then None
          else if is_error_ty ty then Some error_cand
          else begin
            let kop = kir_unop op in
            let static = try_fold_un kop code in
            Some (cv ty (Kir.Eun (kop, code)) static)
          end
        | Cagg _ | Cstr _ | Crng _ -> None)
      cands
  in
  match results with
  | [] ->
    if cands = [] then ([ error_cand ], [])
    else
      ([ error_cand ], [ Diag.error ~line "operator \"%s\" is not defined for this operand" op ])
  | _ -> (results, [])

(* ------------------------------------------------------------------ *)
(* Coercion of a candidate set to an expected type *)

let static_int cands =
  List.find_map
    (function
      | Cv { static = Some v; ty; _ } when Types.is_discrete ty || is_error_ty ty ->
        Some (Value.as_int v)
      | _ -> None)
    cands

(* a string literal as a value of any 1-D array-of-enumeration type: each
   character must be a literal of the element type (LRM 7.3.1) *)
let string_literal_value ~(expected : Types.t) (s : string) : Value.t option =
  match expected.Types.kind with
  | Types.Karray { elem; _ } -> (
    match Types.enum_literals elem with
    | None -> None
    | Some lits ->
      let pos_of c =
        let image = Printf.sprintf "'%c'" c in
        let rec scan i =
          if i >= Array.length lits then None
          else if lits.(i) = image then Some i
          else scan (i + 1)
        in
        scan 0
      in
      let rec build i acc =
        if i >= String.length s then Some (List.rev acc)
        else
          match pos_of s.[i] with
          | Some p -> build (i + 1) (Value.Venum p :: acc)
          | None -> None
      in
      Option.map
        (fun elems ->
          let n = List.length elems in
          let bounds =
            match Types.range expected with
            | Some (l, d, r) when Value.range_length (l, d, r) = n -> (l, d, r)
            | _ -> (
              match Types.bounds (Option.value (Types.index_type expected) ~default:Std.integer) with
              | Some (lo, _) -> (lo, Types.To, lo + n - 1)
              | None -> (1, Types.To, n))
          in
          Value.Varray { bounds; elems = Array.of_list elems })
        (build 0 [])
    )
  | _ -> None

(* ---- access types (LRM 3.3): null, allocators, dereference ---- *)

(* [null] and allocators denote "some access type" until the context picks
   one; these anonymous bases are recognized by [coerce] *)
let null_ty = { Types.base = "%NULL%"; kind = Types.Kaccess error_ty; constr = None }

let anon_access_ty designated =
  { Types.base = "%ACCESS%"; kind = Types.Kaccess designated; constr = None }

let null_cand = Cv { ty = null_ty; code = Kir.Enull; static = None }

let is_adaptable_access ~(expected : Types.t) (ty : Types.t) =
  match expected.Types.kind with
  | Types.Kaccess designated -> (
    match ty.Types.base, ty.Types.kind with
    | "%NULL%", _ -> true
    | "%ACCESS%", Types.Kaccess d -> compat d designated
    | _ -> false)
  | _ -> false

(* Subtype conversion of a statically known array value (LRM 3.2.1.1):
   when the context's subtype is constrained, the value's index bounds
   become the subtype's — a string literal for [bit_vector (3 to 6)] has
   left bound 3, and so do its runtime attributes. *)
let rebound_static ~(expected : Types.t) (code, static) =
  match (static, Types.range expected) with
  | Some (Value.Varray { bounds; elems }), Some (l, d, r)
    when Value.range_length (l, d, r) = Array.length elems && bounds <> (l, d, r) ->
    let v = Value.Varray { bounds = (l, d, r); elems } in
    (Kir.Elit v, Some v)
  | _ -> (code, static)

let rec coerce ~line ~(expected : Types.t) (cands : cand list) :
    (Kir.expr * Value.t option, Diag.t) result =
  if is_error_ty expected then Ok (Kir.Elit (Value.Vint 0), None)
  else begin
    let matches =
      List.filter_map
        (fun c ->
          match c with
          | Cv { ty; code; static } ->
            if is_error_ty ty then Some (Kir.Elit (Value.Vint 0), None)
            else if compat ty expected then Some (rebound_static ~expected (code, static))
            else if is_adaptable_access ~expected ty then Some (code, static)
            else if
              (* universal literals (LRM 7.3.5): a locally static INTEGER or
                 REAL expression converts implicitly to any type of the same
                 abstract numeric class — [0] is a legal sat value *)
              static <> None
              && ((ty.Types.base = "STD.STANDARD.INTEGER"
                  && (match expected.Types.kind with Types.Kint -> true | _ -> false))
                 || (ty.Types.base = "STD.STANDARD.REAL"
                    && (match expected.Types.kind with Types.Kfloat -> true | _ -> false)))
            then Some (code, static)
            else None
          | Cagg items -> (
            match coerce_aggregate ~line ~expected items with
            | Ok pair -> Some pair
            | Error _ -> None)
          | Cstr s -> (
            match string_literal_value ~expected s with
            | Some v -> Some (Kir.Elit v, Some v)
            | None -> None)
          | Crng _ -> None)
        cands
    in
    match matches with
    | [ m ] -> Ok m
    | m :: _ ->
      (* several candidates of the same base type are interchangeable after
         base-type filtering; anything else is a genuine ambiguity *)
      Ok m
    | [] -> (
      match cands with
      | [ Cagg items ] -> (
        match coerce_aggregate ~line ~expected items with
        | Ok pair -> Ok pair
        | Error d -> Error d)
      | _ ->
        Error
          (Diag.error ~line "expression does not match expected type %s"
             (Types.short_name expected)))
  end

and coerce_aggregate ~line ~expected items =
  match expected.Types.kind with
  | Types.Karray { elem; index } -> (
    ignore index;
    let errors = ref [] in
    let elem_expr cands =
      match coerce ~line ~expected:elem cands with
      | Ok (code, _) -> code
      | Error d ->
        errors := d :: !errors;
        Kir.Elit (Value.Vint 0)
    in
    let elements = ref [] in
    let named_indices = ref [] in
    let positional_count = ref 0 in
    List.iter
      (fun item ->
        match item with
        | Ipos cands ->
          incr positional_count;
          elements := Kir.Ag_pos (elem_expr cands) :: !elements
        | Inamed (choices, cands) ->
          let e = elem_expr cands in
          List.iter
            (fun choice ->
              match choice with
              | Cothers -> elements := Kir.Ag_others e :: !elements
              | Cexpr ch_cands -> (
                match static_int ch_cands with
                | Some i ->
                  named_indices := i :: !named_indices;
                  elements := Kir.Ag_named (i, e) :: !elements
                | None ->
                  errors := Diag.error ~line "aggregate choice is not static" :: !errors)
              | Cchoice_range (lo, d, hi) -> (
                match (static_int lo, static_int hi) with
                | Some l, Some h ->
                  let idxs = Value.range_indices (l, d, h) in
                  named_indices := idxs @ !named_indices;
                  List.iter (fun i -> elements := Kir.Ag_named (i, e) :: !elements) idxs
                | _ -> errors := Diag.error ~line "aggregate range choice is not static" :: !errors)
              | Cident _ ->
                errors :=
                  Diag.error ~line "named aggregate choice is not valid for an array" :: !errors)
            choices)
      items;
    let shape =
      match Types.range expected with
      | Some (l, d, r) -> Kir.Sh_array (Some (l, d, r))
      | None ->
        if !named_indices <> [] && !positional_count = 0 then begin
          let lo = List.fold_left min max_int !named_indices in
          let hi = List.fold_left max min_int !named_indices in
          Kir.Sh_array (Some (lo, Types.To, hi))
        end
        else Kir.Sh_array None
    in
    match !errors with
    | [] ->
      let agg = Kir.Eaggregate (List.rev !elements, shape) in
      let static = Const_eval.eval_opt Const_eval.empty agg in
      let code = match static with Some v -> Kir.Elit v | None -> agg in
      Ok (code, static)
    | d :: _ -> Error d)
  | Types.Krecord fields -> (
    let errors = ref [] in
    let elements = ref [] in
    let positional = ref 0 in
    List.iter
      (fun item ->
        match item with
        | Ipos cands ->
          (* positional record element: by field order *)
          (match List.nth_opt fields !positional with
          | Some (fname, fty) -> (
            match coerce ~line ~expected:fty cands with
            | Ok (code, _) -> elements := Kir.Ag_field (fname, code) :: !elements
            | Error d -> errors := d :: !errors)
          | None -> errors := Diag.error ~line "too many elements in record aggregate" :: !errors);
          incr positional
        | Inamed (choices, cands) ->
          List.iter
            (fun choice ->
              match choice with
              | Cident fname -> (
                match List.assoc_opt fname fields with
                | Some fty -> (
                  match coerce ~line ~expected:fty cands with
                  | Ok (code, _) -> elements := Kir.Ag_field (fname, code) :: !elements
                  | Error d -> errors := d :: !errors)
                | None ->
                  errors :=
                    Diag.error ~line "record type %s has no field %s"
                      (Types.short_name expected) fname
                    :: !errors)
              | Cothers ->
                (* others covers all remaining fields *)
                let covered =
                  List.filter_map
                    (function Kir.Ag_field (f, _) -> Some f | _ -> None)
                    !elements
                in
                List.iter
                  (fun (fname, fty) ->
                    if not (List.mem fname covered) then
                      match coerce ~line ~expected:fty cands with
                      | Ok (code, _) -> elements := Kir.Ag_field (fname, code) :: !elements
                      | Error d -> errors := d :: !errors)
                  fields
              | Cexpr _ | Cchoice_range _ ->
                errors := Diag.error ~line "invalid choice in record aggregate" :: !errors)
            choices)
      items;
    match !errors with
    | [] ->
      let agg =
        Kir.Eaggregate (List.rev !elements, Kir.Sh_record (List.map fst fields))
      in
      let static = Const_eval.eval_opt Const_eval.empty agg in
      let code = match static with Some v -> Kir.Elit v | None -> agg in
      Ok (code, static)
    | d :: _ -> Error d)
  | _ -> Error (Diag.error ~line "aggregate used where %s is expected" (Types.short_name expected))

(* ------------------------------------------------------------------ *)
(* Indexing / slicing / calls: pname ( items ) *)

let mangle_call (s : Denot.subprog_sig) args = Kir.Ecall (Kir.F_user s.Denot.ss_mangled, args)

(** Match an argument list against a subprogram signature; returns the
    argument expressions in parameter order. *)
let match_call ~line (s : Denot.subprog_sig) (items : aitem list) :
    (Kir.expr list, Diag.t) result =
  let params = s.Denot.ss_params in
  let positional = List.filter_map (function Ipos c -> Some c | _ -> None) items in
  let named =
    List.concat_map
      (function
        | Inamed (choices, cands) ->
          List.filter_map
            (function Cident f -> Some (f, cands) | _ -> None)
            choices
        | Ipos _ -> [])
      items
  in
  let n_items =
    List.length positional + List.length named
  in
  if n_items > List.length params then Error (Diag.error ~line "too many arguments to %s" s.Denot.ss_name)
  else begin
    let rec build i params acc =
      match params with
      | [] -> Ok (List.rev acc)
      | (p : Denot.param) :: rest -> (
        let cands =
          if i < List.length positional then Some (List.nth positional i)
          else
            match List.assoc_opt p.Denot.p_name named with
            | Some c -> Some c
            | None -> None
        in
        match cands with
        | Some cands -> (
          match coerce ~line ~expected:p.Denot.p_ty cands with
          | Ok (code, _) -> build (i + 1) rest (code :: acc)
          | Error _ ->
            Error
              (Diag.error ~line "argument %s of %s has the wrong type" p.Denot.p_name
                 s.Denot.ss_name))
        | None -> (
          match p.Denot.p_default with
          | Some d -> build (i + 1) rest (d :: acc)
          | None ->
            Error (Diag.error ~line "missing argument %s of %s" p.Denot.p_name s.Denot.ss_name)))
    in
    build 0 params []
  end

(* ---- operator application, predefined + user overloads ----
   A string-designator function [function "+" (...) return ...] reaches the
   expression AG as candidates riding on the operator token (Kop_user).
   Matching ones become call candidates alongside the predefined operators;
   the usual expected-type filtering picks the survivor. *)

let is_error_cand = function
  | Cv { ty; _ } -> is_error_ty ty
  | Cagg _ | Cstr _ | Crng _ -> false

let user_op_cands ~line (user : Denot.subprog_sig list) (items : aitem list) : cand list =
  List.filter_map
    (fun (s : Denot.subprog_sig) ->
      match (s.Denot.ss_kind, s.Denot.ss_ret) with
      | `Function, Some rty -> (
        match match_call ~line s items with
        | Ok args -> Some (Cv { ty = rty; code = mangle_call s args; static = None })
        | Error _ -> None)
      | _ -> None)
    user

let apply_binop ~line ?(user = []) op lcands rcands : cand list * Diag.t list =
  let ucands = user_op_cands ~line user [ Ipos lcands; Ipos rcands ] in
  let pre, msgs = apply_binop_predefined ~line op lcands rcands in
  match ucands with
  | [] -> (pre, msgs)
  | _ ->
    (* a user overload matched: predefined failures are no longer errors *)
    let pre_ok = List.filter (fun c -> not (is_error_cand c)) pre in
    (ucands @ pre_ok, [])

let apply_unop ~line ?(user = []) op cands : cand list * Diag.t list =
  let ucands = user_op_cands ~line user [ Ipos cands ] in
  let pre, msgs = apply_unop_predefined ~line op cands in
  match ucands with
  | [] -> (pre, msgs)
  | _ ->
    let pre_ok = List.filter (fun c -> not (is_error_cand c)) pre in
    (ucands @ pre_ok, [])

(** Candidates for a parameterless subprogram reference. *)
let func_cands ~line (sigs : Denot.subprog_sig list) : cand list * Diag.t list =
  let callable =
    List.filter_map
      (fun s ->
        match match_call ~line s [] with
        | Ok args -> (
          match (s.Denot.ss_kind, s.Denot.ss_ret) with
          | `Function, Some rty -> Some (Cv { ty = rty; code = mangle_call s args; static = None })
          | `Procedure, _ -> Some (Cv { ty = void_ty; code = mangle_call s args; static = None })
          | `Function, None -> None)
        | Error _ -> None)
      sigs
  in
  match callable with
  | [] -> ([ error_cand ], [ Diag.error ~line "subprogram requires arguments" ])
  | _ -> (callable, [])

(** The range denoted by an item, for slicing. *)
let item_range item : ((Kir.expr * Types.dir * Kir.expr) * Types.t option) option =
  match item with
  | Ipos cands ->
    List.find_map (function Crng (r, ity) -> Some (r, ity) | _ -> None) cands
  | Inamed _ -> None

let apply_args ~line (head_tok : Lef.tok option) (cands : cand list) (items : aitem list) :
    cand list * Diag.t list =
  (* function heads: resolve overloads *)
  let func_results =
    match head_tok with
    | Some { Lef.l_kind = Lef.Kfunc sigs | Lef.Kproc sigs; _ } ->
      List.filter_map
        (fun s ->
          match match_call ~line s items with
          | Ok args -> (
            match (s.Denot.ss_kind, s.Denot.ss_ret) with
            | `Function, Some rty -> Some (Cv { ty = rty; code = mangle_call s args; static = None })
            | `Procedure, _ -> Some (Cv { ty = void_ty; code = mangle_call s args; static = None })
            | `Function, None -> None)
          | Error _ -> None)
        sigs
    | _ -> []
  in
  (* array heads: index or slice *)
  let array_results = ref [] in
  let array_errors = ref [] in
  List.iter
    (fun c ->
      match c with
      | Cv { ty; code; _ } when Types.is_array ty -> (
        let elem = Option.get (Types.element_type ty) in
        let index_ty = Option.get (Types.index_type ty) in
        match items with
        | [ item ] -> (
          let folded kexpr kty =
            let static = Const_eval.eval_opt Const_eval.empty kexpr in
            let kexpr = match static with Some v -> Kir.Elit v | None -> kexpr in
            Cv { ty = kty; code = kexpr; static }
          in
          match item_range item with
          | Some ((lo, d, hi), _) ->
            array_results := folded (Kir.Eslice (code, (lo, d, hi))) ty :: !array_results
          | None -> (
            match item with
            | Ipos icands -> (
              match coerce ~line ~expected:index_ty icands with
              | Ok (icode, _) ->
                array_results := folded (Kir.Eindex (code, icode)) elem :: !array_results
              | Error d -> array_errors := d :: !array_errors)
            | Inamed _ -> ()))
        | _ when List.for_all (function Ipos _ -> true | _ -> false) items ->
          (* multi-dimensional indexing on nested arrays: m(i, j) = m(i)(j) *)
          let folded kexpr kty =
            let static = Const_eval.eval_opt Const_eval.empty kexpr in
            let kexpr = match static with Some v -> Kir.Elit v | None -> kexpr in
            Cv { ty = kty; code = kexpr; static }
          in
          let rec go ty code = function
            | [] -> array_results := folded code ty :: !array_results
            | Ipos icands :: rest when Types.is_array ty -> (
              let elem = Option.get (Types.element_type ty) in
              let index_ty = Option.get (Types.index_type ty) in
              match coerce ~line ~expected:index_ty icands with
              | Ok (icode, _) -> go elem (Kir.Eindex (code, icode)) rest
              | Error d -> array_errors := d :: !array_errors)
            | _ :: _ ->
              array_errors :=
                Diag.error ~line "too many indices for this array" :: !array_errors
          in
          go ty code items
        | _ ->
          array_errors :=
            Diag.error ~line "only positional indices are supported here"
            :: !array_errors)
      | _ -> ())
    cands;
  let results = func_results @ List.rev !array_results in
  match results with
  | [] ->
    let msg =
      match !array_errors with
      | d :: _ -> d
      | [] -> (
        match head_tok with
        | Some { Lef.l_kind = Lef.Kfunc (s :: _); _ } ->
          Diag.error ~line "no overload of %s matches these arguments" s.Denot.ss_name
        | _ -> Diag.error ~line "this name cannot be indexed, sliced, or called")
    in
    ([ error_cand ], [ msg ])
  | _ -> (results, [])

(* ------------------------------------------------------------------ *)
(* Selection (record fields), attributes, conversions *)

let select_field ~line cands fname : cand list * Diag.t list =
  let results =
    List.filter_map
      (fun c ->
        match c with
        | Cv { ty; code; _ } -> (
          match Types.field_type ty fname with
          | Some fty -> Some (Cv { ty = fty; code = Kir.Efield (code, fname); static = None })
          | None -> None)
        | _ -> None)
      cands
  in
  match results with
  | [] -> ([ error_cand ], [ Diag.error ~line "no record field named %s" fname ])
  | _ -> (results, [])

let scalar_type_attr ~line (ty : Types.t) attr : cand list * Diag.t list =
  let static_scalar v =
    let value =
      match ty.Types.kind with
      | Types.Kenum _ -> Value.Venum v
      | Types.Kphys _ -> Value.Vphys v
      | _ -> Value.Vint v
    in
    ([ Cv { ty; code = Kir.Elit value; static = Some value } ], [])
  in
  match Types.range ty with
  | Some (l, d, r) -> (
    match attr with
    | "LEFT" -> static_scalar l
    | "RIGHT" -> static_scalar r
    | "HIGH" -> static_scalar (match d with Types.To -> r | Types.Downto -> l)
    | "LOW" -> static_scalar (match d with Types.To -> l | Types.Downto -> r)
    | "RANGE" ->
      ([ Crng ((Kir.Elit (Value.Vint l), d, Kir.Elit (Value.Vint r)), Some ty) ], [])
    | "REVERSE_RANGE" ->
      let d' = match d with Types.To -> Types.Downto | Types.Downto -> Types.To in
      ([ Crng ((Kir.Elit (Value.Vint r), d', Kir.Elit (Value.Vint l)), Some ty) ], [])
    | _ -> ([ error_cand ], [ Diag.error ~line "unknown attribute '%s for this type" attr ])
  )
  | None -> (
    match (ty.Types.kind, attr) with
    | Types.Kenum lits, "LEFT" | Types.Kenum lits, "LOW" ->
      ignore lits;
      ([ Cv { ty; code = Kir.Elit (Value.Venum 0); static = Some (Value.Venum 0) } ], [])
    | Types.Kenum lits, ("RIGHT" | "HIGH") ->
      let v = Value.Venum (Array.length lits - 1) in
      ([ Cv { ty; code = Kir.Elit v; static = Some v } ], [])
    | Types.Kenum lits, "RANGE" ->
      ( [
          Crng
            ( (Kir.Elit (Value.Vint 0), Types.To, Kir.Elit (Value.Vint (Array.length lits - 1))),
              Some ty );
        ],
        [] )
    | _ -> ([ error_cand ], [ Diag.error ~line "attribute '%s is not defined for this type" attr ]))

(** [T'POS(x)], [T'VAL(n)], [T'SUCC(x)], [T'PRED(x)] are attribute
    functions; they surface as TYPE ' ATTR followed by an argument list and
    are resolved in {!apply_type_attr_args}. *)
let type_attr_is_function = function
  | "POS" | "VAL" | "SUCC" | "PRED" | "LEFTOF" | "RIGHTOF" -> true
  | _ -> false

let apply_type_attr_args ~line (ty : Types.t) attr (items : aitem list) :
    cand list * Diag.t list =
  match items with
  | [ Ipos cands ] -> (
    let arg_expected = if attr = "VAL" then Std.integer else ty in
    match coerce ~line ~expected:arg_expected cands with
    | Ok (code, _) -> (
      let pos_code = if attr = "VAL" then code else Kir.Econvert (Kir.To_pos, code) in
      match attr with
      | "POS" -> ([ Cv { ty = Std.integer; code = pos_code; static = None } ], [])
      | "VAL" -> ([ Cv { ty; code = Kir.Econvert (Kir.To_val ty, code); static = None } ], [])
      | "SUCC" | "RIGHTOF" ->
        let succ = Kir.Ebin (Kir.Badd, pos_code, Kir.Elit (Value.Vint 1)) in
        ([ Cv { ty; code = Kir.Econvert (Kir.To_val ty, succ); static = None } ], [])
      | "PRED" | "LEFTOF" ->
        let pred = Kir.Ebin (Kir.Bsub, pos_code, Kir.Elit (Value.Vint 1)) in
        ([ Cv { ty; code = Kir.Econvert (Kir.To_val ty, pred); static = None } ], [])
      | _ -> ([ error_cand ], [ Diag.error ~line "unknown attribute function '%s" attr ]))
    | Error d -> ([ error_cand ], [ d ]))
  | _ -> ([ error_cand ], [ Diag.error ~line "attribute '%s takes one argument" attr ])

(** Attributes applied to a name (signal attributes, array attributes). *)
let apply_name_attr ~line cands attr : cand list * Diag.t list =
  let signal_ref =
    List.find_map
      (function
        | Cv { code = Kir.Esig sref; ty; _ } -> Some (sref, ty)
        | _ -> None)
      cands
  in
  let array_cand =
    List.find_map
      (function
        | Cv { ty; code; _ } when Types.is_array ty -> Some (ty, code)
        | _ -> None)
      cands
  in
  match attr with
  | "EVENT" | "ACTIVE" | "STABLE" -> (
    match signal_ref with
    | Some (sref, _) ->
      let sa =
        match attr with
        | "EVENT" -> Kir.Sa_event
        | "ACTIVE" -> Kir.Sa_active
        | _ -> Kir.Sa_stable
      in
      ([ Cv { ty = Std.boolean; code = Kir.Esig_attr (sref, sa); static = None } ], [])
    | None -> ([ error_cand ], [ Diag.error ~line "'%s requires a signal" attr ]))
  | "LAST_VALUE" -> (
    match signal_ref with
    | Some (sref, ty) ->
      ([ Cv { ty; code = Kir.Esig_attr (sref, Kir.Sa_last_value); static = None } ], [])
    | None -> ([ error_cand ], [ Diag.error ~line "'LAST_VALUE requires a signal" ]))
  | "LAST_EVENT" -> (
    match signal_ref with
    | Some (sref, _) ->
      ([ Cv { ty = Std.time; code = Kir.Esig_attr (sref, Kir.Sa_last_event); static = None } ], [])
    | None -> ([ error_cand ], [ Diag.error ~line "'LAST_EVENT requires a signal" ]))
  | "LEFT" | "RIGHT" | "HIGH" | "LOW" | "LENGTH" -> (
    match array_cand with
    | Some (ty, code) -> (
      let at =
        match attr with
        | "LEFT" -> Kir.At_left
        | "RIGHT" -> Kir.At_right
        | "HIGH" -> Kir.At_high
        | "LOW" -> Kir.At_low
        | _ -> Kir.At_length
      in
      (* static when the array subtype is constrained *)
      match Types.range ty with
      | Some (l, d, r) ->
        let v =
          match at with
          | Kir.At_left -> l
          | Kir.At_right -> r
          | Kir.At_high -> ( match d with Types.To -> r | Types.Downto -> l)
          | Kir.At_low -> ( match d with Types.To -> l | Types.Downto -> r)
          | Kir.At_length -> Value.range_length (l, d, r)
        in
        ([ Cv { ty = Std.integer; code = Kir.Elit (Value.Vint v); static = Some (Value.Vint v) } ], [])
      | None ->
        ([ Cv { ty = Std.integer; code = Kir.Earray_attr (code, at); static = None } ], []))
    | None -> ([ error_cand ], [ Diag.error ~line "'%s requires an array" attr ]))
  | "RANGE" | "REVERSE_RANGE" -> (
    match array_cand with
    | Some (ty, code) -> (
      let index_ty = Types.index_type ty in
      match Types.range ty with
      | Some (l, d, r) ->
        let d = if attr = "RANGE" then d else match d with Types.To -> Types.Downto | Types.Downto -> Types.To in
        let l, r = if attr = "RANGE" then (l, r) else (r, l) in
        ([ Crng ((Kir.Elit (Value.Vint l), d, Kir.Elit (Value.Vint r)), index_ty) ], [])
      | None ->
        let lo = Kir.Earray_attr (code, Kir.At_left)
        and hi = Kir.Earray_attr (code, Kir.At_right) in
        let rng =
          if attr = "RANGE" then (lo, Types.To, hi) (* direction unknown: assume to *)
          else (hi, Types.Downto, lo)
        in
        ([ Crng (rng, index_ty) ], []))
    | None -> ([ error_cand ], [ Diag.error ~line "'%s requires an array" attr ]))
  | _ -> ([ error_cand ], [ Diag.error ~line "unknown attribute '%s" attr ])

let conversion ~line (target : Types.t) cands : cand list * Diag.t list =
  let results =
    List.filter_map
      (fun c ->
        match c with
        | Cv { ty; code; static } ->
          if compat ty target then Some (cv target code static) (* identity / subtype *)
          else begin
            match (ty.Types.kind, target.Types.kind) with
            | Types.Kint, Types.Kfloat ->
              Some (Cv { ty = target; code = Kir.Econvert (Kir.To_float, code); static = None })
            | Types.Kfloat, Types.Kint ->
              Some (Cv { ty = target; code = Kir.Econvert (Kir.To_integer, code); static = None })
            (* LRM 7.3.5: any two abstract numeric types are convertible *)
            | Types.Kint, Types.Kint | Types.Kfloat, Types.Kfloat ->
              Some (cv target code static)
            | Types.Karray { elem = ea; _ }, Types.Karray { elem = eb; _ }
              when compat ea eb ->
              Some (cv target code static)
            | _ -> None
          end
        | _ -> None)
      cands
  in
  match results with
  | [] -> ([ error_cand ], [ Diag.error ~line "invalid type conversion to %s" (Types.short_name target) ])
  | _ -> (results, [])

(* [.all]: the designated object of an access value *)
let deref ~line cands : cand list * Diag.t list =
  let results =
    List.filter_map
      (function
        | Cv { ty; code; _ } -> (
          match ty.Types.kind with
          | Types.Kaccess designated ->
            Some (Cv { ty = designated; code = Kir.Ederef code; static = None })
          | _ -> None)
        | _ -> None)
      cands
  in
  match results with
  | [] -> ([ error_cand ], [ Diag.error ~line ".all requires an access value" ])
  | _ -> (results, [])

let qualified ~line (target : Types.t) cands : cand list * Diag.t list =
  match coerce ~line ~expected:target cands with
  | Ok (code, static) -> ([ cv target code static ], [])
  | Error d -> ([ error_cand ], [ d ])

(* ------------------------------------------------------------------ *)
(* Final selection at the root of the expression AG *)

let select ~line ~(expected : Types.t option) (cands : cand list) msgs : xres =
  let fail d =
    { x_ty = error_ty; x_code = Kir.Elit (Value.Vint 0); x_static = None; x_msgs = msgs @ [ d ] }
  in
  match expected with
  | Some ty -> (
    match coerce ~line ~expected:ty cands with
    | Ok (code, static) -> { x_ty = ty; x_code = code; x_static = static; x_msgs = msgs }
    | Error d -> fail d)
  | None -> (
    let values =
      List.filter_map
        (function
          | Cv { ty; code; static } -> Some (ty, code, static)
          | Cagg _ | Cstr _ | Crng _ -> None)
        cands
    in
    (* distinct base types = ambiguity; same base = interchangeable *)
    let distinct =
      List.sort_uniq compare (List.map (fun (ty, _, _) -> ty.Types.base) values)
    in
    match (values, distinct) with
    | (ty, code, static) :: _, [ _ ] ->
      { x_ty = ty; x_code = code; x_static = static; x_msgs = msgs }
    | _ :: _, _ -> fail (Diag.error ~line "ambiguous expression; use a qualified expression")
    | [], _ ->
      if msgs <> [] then
        { x_ty = error_ty; x_code = Kir.Elit (Value.Vint 0); x_static = None; x_msgs = msgs }
      else fail (Diag.error ~line "cannot resolve this expression"))

(** The range denoted by an expression's candidates (for discrete ranges). *)
let select_range ~line (cands : cand list) msgs :
    (Kir.expr * Types.dir * Kir.expr) * Types.t option * Diag.t list =
  match List.find_map (function Crng (r, ity) -> Some (r, ity) | _ -> None) cands with
  | Some (r, ity) -> (r, ity, msgs)
  | None ->
    ( (Kir.Elit (Value.Vint 0), Types.To, Kir.Elit (Value.Vint 0)),
      None,
      msgs @ [ Diag.error ~line "a range is required here" ] )
