(** Attribute values of the two VHDL attribute grammars.

    One sum type serves both the principal AG and the expression AG: the AG
    engine is polymorphic in the value type and never inspects these.  The
    accessors ([as_*]) raise {!Internal} on a constructor mismatch, which
    indicates a bug in the grammar's semantic rules, never a user error. *)

exception Internal of string

let internal fmt = Format.kasprintf (fun s -> raise (Internal s)) fmt

(** An expression candidate: one possible meaning of an expression, before
    overload resolution picks the survivor.

    [Cagg] defers an aggregate until the context supplies its type (VHDL
    aggregates are typed top-down); [Crng] is a range (from [A'RANGE] or
    [l to r]) usable as a slice bound or discrete range but not as a
    value. *)
type cand =
  | Cv of { ty : Types.t; code : Kir.expr; static : Value.t option }
  | Cagg of aitem list
  | Cstr of string (* string/bit-string literal awaiting its array type *)
  | Crng of (Kir.expr * Types.dir * Kir.expr) * Types.t option

(** Aggregate/argument-list items of the expression AG. *)
and aitem =
  | Ipos of cand list (* positional element (candidate set) *)
  | Inamed of achoice list * cand list (* choices => expr *)

and achoice =
  | Cident of string (* formal name / record field *)
  | Cexpr of cand list
  | Cchoice_range of cand list * Types.dir * cand list
  | Cothers

(** Result of evaluating one maximal expression (the return value of the
    paper's [exprEval]). *)
type xres = {
  x_ty : Types.t;
  x_code : Kir.expr;
  x_static : Value.t option;
  x_msgs : Diag.t list;
}

(** What a declarative region contributes; a monoid merged upward by the
    OUT attribute class. *)
type decl_out = {
  o_binds : (string * Denot.t) list; (* oldest first *)
  o_signals : Kir.signal_decl list;
  o_locals : Kir.local list;
  o_subprograms : Kir.subprogram list;
  o_components : (string * Kir.generic_decl list * Kir.port_decl list) list;
  o_config_specs : Unit_info.config_spec list;
  o_deps : (string * string) list; (* foreign references: (library, key) *)
  o_deferred : (string * Value.t) list;
  o_disconnects : (string * Kir.expr) list;
      (* disconnection specifications: signal name -> delay expression *)
      (* package constants with their static values, qualified "PKG.NAME";
         a package body exports these so deferred constants (LRM 4.3.1.1)
         resolve at elaboration *)
}

let out_empty =
  {
    o_binds = [];
    o_signals = [];
    o_locals = [];
    o_subprograms = [];
    o_components = [];
    o_config_specs = [];
    o_deps = [];
    o_deferred = [];
    o_disconnects = [];
  }

let out_append a b =
  {
    o_binds = a.o_binds @ b.o_binds;
    o_signals = a.o_signals @ b.o_signals;
    o_locals = a.o_locals @ b.o_locals;
    o_deferred = a.o_deferred @ b.o_deferred;
    o_disconnects = a.o_disconnects @ b.o_disconnects;
    o_subprograms = a.o_subprograms @ b.o_subprograms;
    o_components = a.o_components @ b.o_components;
    o_config_specs = a.o_config_specs @ b.o_config_specs;
    o_deps = a.o_deps @ b.o_deps;
  }

(** Interface element (ports, generics, subprogram parameters). *)
type iface = {
  if_names : (string * int) list; (* (name, line) *)
  if_class : Denot.obj_class option;
  if_mode : Kir.arg_mode option;
  if_ty : Types.t;
  if_resolution : Denot.subprog_sig option;
  if_default : Kir.expr option;
  if_bus : bool;
}

(** Waveform element, unevaluated (LEF) until the target type is known. *)
type wave_src = {
  w_value : Lef.tok list;
  w_after : Lef.tok list option;
  w_line : int;
}

(** Choice as collected by the principal AG (case alternatives, selected
    assignments). *)
type choice_src =
  | CSlef of Lef.tok list
  | CSrange of Lef.tok list * Types.dir * Lef.tok list
  | CSothers

(** Association-list element of generic/port maps. *)
type assoc_src = {
  a_formal : Lef.tok list option;
  a_actual : [ `Lef of Lef.tok list | `Open ];
  a_line : int;
}

type subprog_spec = {
  sp_kind : [ `Function | `Procedure ];
  sp_name : string;
  sp_line : int;
  sp_params : iface list;
  sp_ret : Types.t option;
}

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Tok of Token.t (* principal-grammar token value *)
  | Ltok of Lef.tok (* expression-grammar token value *)
  | Msgs of Diag.t list
  | Env of Env.t
  | Lef of Lef.tok list
  | Lefs of Lef.tok list list (* name lists (sensitivity etc.) *)
  | Ids of (string * int) list
  | Cands of cand list
  | Xres of xres
  | Aitems of aitem list
  | Achoices of achoice list
  | Out of decl_out
  | Ifaces of iface list
  | Sty of { ty : Types.t; resolution : Denot.subprog_sig option }
  | Tydef of (string -> Types.t * (string * Denot.t) list)
      (* type definition awaiting its name: returns the type and extra
         bindings (enumeration literals, physical units) *)
  | Stmts of Kir.stmt list
  | Waves of wave_src list
  | Choices of choice_src list
  | Assocs of assoc_src list
  | Concs of Kir.concurrent list
  | Spec of subprog_spec
  | Units of Unit_info.compiled_unit list
  | Arms of (Lef.tok list * Kir.stmt list) list (* elsif chains *)
  | Cwaves of (wave_src list * Lef.tok list option) list (* conditional waveforms *)
  | Swaves of (wave_src list * choice_src list) list (* selected waveforms *)
  | Alts of (choice_src list * Kir.stmt list) list (* case alternatives *)
  | Rng of [ `Bounds of Lef.tok list * Types.dir * Lef.tok list | `Lef of Lef.tok list ]
      (* discrete range, unevaluated *)
  | Phys_units of (string * int * string option * int) list
      (* physical-type units: (name, multiplier, base unit, line) *)
  | Opt of t option
  | Pair of t * t
  | Plist of t list

let as_bool = function Bool b -> b | _ -> internal "expected Bool"
let as_plist = function Plist l -> l | _ -> internal "expected Plist"
let as_int = function Int n -> n | _ -> internal "expected Int"
let as_str = function Str s -> s | _ -> internal "expected Str"
let as_tok = function Tok t -> t | _ -> internal "expected Tok"
let as_ltok = function Ltok t -> t | _ -> internal "expected Ltok"
let as_msgs = function Msgs m -> m | _ -> internal "expected Msgs"
let as_env = function Env e -> e | _ -> internal "expected Env"
let as_lef = function Lef l -> l | _ -> internal "expected Lef"
let as_lefs = function Lefs l -> l | _ -> internal "expected Lefs"
let as_ids = function Ids l -> l | _ -> internal "expected Ids"
let as_cands = function Cands c -> c | _ -> internal "expected Cands"
let as_xres = function Xres x -> x | _ -> internal "expected Xres"
let as_aitems = function Aitems l -> l | _ -> internal "expected Aitems"
let as_achoices = function Achoices l -> l | _ -> internal "expected Achoices"
let as_out = function Out o -> o | _ -> internal "expected Out"
let as_ifaces = function Ifaces l -> l | _ -> internal "expected Ifaces"

let as_sty = function
  | Sty { ty; resolution } -> (ty, resolution)
  | _ -> internal "expected Sty"

let as_tydef = function Tydef f -> f | _ -> internal "expected Tydef"
let as_stmts = function Stmts s -> s | _ -> internal "expected Stmts"
let as_waves = function Waves w -> w | _ -> internal "expected Waves"
let as_choices = function Choices c -> c | _ -> internal "expected Choices"
let as_assocs = function Assocs a -> a | _ -> internal "expected Assocs"
let as_concs = function Concs c -> c | _ -> internal "expected Concs"
let as_spec = function Spec s -> s | _ -> internal "expected Spec"
let as_units = function Units u -> u | _ -> internal "expected Units"
let as_rng = function Rng r -> r | _ -> internal "expected Rng"
let as_arms = function Arms a -> a | _ -> internal "expected Arms"
let as_phys_units = function Phys_units u -> u | _ -> internal "expected Phys_units"
let as_cwaves = function Cwaves c -> c | _ -> internal "expected Cwaves"
let as_swaves = function Swaves s -> s | _ -> internal "expected Swaves"
let as_alts = function Alts a -> a | _ -> internal "expected Alts"
let as_opt = function Opt o -> o | _ -> internal "expected Opt"
let as_pair = function Pair (a, b) -> (a, b) | _ -> internal "expected Pair"

(* Token-payload accessors used all over the semantic rules. *)
let tok_id v =
  match as_tok v with
  | Token.Tid s -> s
  | t -> internal "expected identifier token, got %s" (Token.describe t)

(* ------------------------------------------------------------------ *)
(* Compact value summaries for the provenance recorder: one short line per
   attribute value, enough to read a why-chain, never the whole payload. *)

let clip n s = if String.length s <= n then s else String.sub s 0 n ^ "..."

let rec summary ?(fuel = 2) v =
  match v with
  | Unit -> "()"
  | Bool b -> string_of_bool b
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" (clip 24 s)
  | Tok t -> "tok " ^ clip 24 (Token.describe t)
  | Ltok t -> "lef " ^ clip 24 (Lef.describe t)
  | Msgs [] -> "msgs[]"
  | Msgs (d :: _ as m) ->
    Printf.sprintf "msgs[%d: %s]" (List.length m)
      (clip 32 (Format.asprintf "%a" Diag.pp d))
  | Env _ -> "env"
  | Lef l -> Printf.sprintf "lef[%d]" (List.length l)
  | Lefs l -> Printf.sprintf "lefs[%d]" (List.length l)
  | Ids ids ->
    Printf.sprintf "ids[%s]" (clip 32 (String.concat "," (List.map fst ids)))
  | Cands c -> Printf.sprintf "cands[%d]" (List.length c)
  | Xres x -> "xres:" ^ x.x_ty.Types.base
  | Aitems l -> Printf.sprintf "aitems[%d]" (List.length l)
  | Achoices l -> Printf.sprintf "achoices[%d]" (List.length l)
  | Out o ->
    Printf.sprintf "out{binds %d, sigs %d, subprogs %d, concs -}"
      (List.length o.o_binds) (List.length o.o_signals)
      (List.length o.o_subprograms)
  | Ifaces l -> Printf.sprintf "ifaces[%d]" (List.length l)
  | Sty { ty; _ } -> "ty " ^ ty.Types.base
  | Tydef _ -> "tydef<fun>"
  | Stmts s -> Printf.sprintf "stmts[%d]" (List.length s)
  | Waves w -> Printf.sprintf "waves[%d]" (List.length w)
  | Choices c -> Printf.sprintf "choices[%d]" (List.length c)
  | Assocs a -> Printf.sprintf "assocs[%d]" (List.length a)
  | Concs c -> Printf.sprintf "concs[%d]" (List.length c)
  | Spec s -> "spec " ^ s.sp_name
  | Units us ->
    Printf.sprintf "units[%s]"
      (clip 48 (String.concat "," (List.map (fun u -> u.Unit_info.u_key) us)))
  | Arms a -> Printf.sprintf "arms[%d]" (List.length a)
  | Cwaves c -> Printf.sprintf "cwaves[%d]" (List.length c)
  | Swaves s -> Printf.sprintf "swaves[%d]" (List.length s)
  | Alts a -> Printf.sprintf "alts[%d]" (List.length a)
  | Rng _ -> "range"
  | Phys_units u -> Printf.sprintf "phys_units[%d]" (List.length u)
  | Opt None -> "none"
  | Opt (Some v) ->
    if fuel <= 0 then "some _" else "some " ^ summary ~fuel:(fuel - 1) v
  | Pair (a, b) ->
    if fuel <= 0 then "(_, _)"
    else
      Printf.sprintf "(%s, %s)" (summary ~fuel:(fuel - 1) a) (summary ~fuel:(fuel - 1) b)
  | Plist l -> Printf.sprintf "plist[%d]" (List.length l)

let summary v = summary v

(* merge functions for the attribute classes *)
let merge_msgs a b = Msgs (as_msgs a @ as_msgs b)
let merge_lef a b = Lef (as_lef a @ as_lef b)
let merge_stmts a b = Stmts (as_stmts a @ as_stmts b)
let merge_out a b = Out (out_append (as_out a) (as_out b))
let merge_concs a b = Concs (as_concs a @ as_concs b)
let merge_units a b = Units (as_units a @ as_units b)
