(** Standalone cascade driver: classify a raw token stream into LEF.

    This performs, as a plain function, the identifier resolution the
    principal AG's name productions do with ENV — so a single expression can
    be pushed through the cascade without building a whole design unit.
    Used by the ABL-CASCADE bench and the expression-level tests. *)

let keyword_ops = [ "and"; "or"; "nand"; "nor"; "xor"; "abs"; "not"; "mod"; "rem" ]

let punct_ops = [ "="; "/="; "<"; "<="; ">"; ">="; "+"; "-"; "&"; "*"; "/"; "**" ]

(** Translate [tokens] (from {!Lexer.tokenize}) to LEF under [env].
    Handles the expression subset: names with selection and attribute marks,
    literals (including physical literals), operators, and aggregate
    punctuation. *)
let classify_tokens ~env (tokens : (Token.t * int) list) : Lef.tok list =
  let rec go acc prev_base toks =
    match toks with
    | [] | (Token.Teof, _) :: _ -> List.rev acc
    | (Token.Tpunct ";", _) :: rest -> go acc prev_base rest
    | (Token.Tid id, line) :: rest ->
      let lef, _ = Decl_sem.classify ~env ~line id in
      go (List.rev_append lef acc) (Some id) rest
    | (Token.Tint n, line) :: (Token.Tid unit_name, _) :: rest ->
      let lef, _ = Decl_sem.classify_physical ~env ~line ~abstract:(`Int n) unit_name in
      go (List.rev_append lef acc) None rest
    | (Token.Treal x, line) :: (Token.Tid unit_name, _) :: rest ->
      let lef, _ = Decl_sem.classify_physical ~env ~line ~abstract:(`Real x) unit_name in
      go (List.rev_append lef acc) None rest
    | (Token.Tint n, line) :: rest ->
      go ({ Lef.l_kind = Lef.Kint n; l_line = line } :: acc) None rest
    | (Token.Treal x, line) :: rest ->
      go ({ Lef.l_kind = Lef.Kreal x; l_line = line } :: acc) None rest
    | (Token.Tstring s, line) :: rest ->
      go ({ Lef.l_kind = Lef.Kstr s; l_line = line } :: acc) None rest
    | (Token.Tbitstr s, line) :: rest ->
      go ({ Lef.l_kind = Lef.Kbitstr s; l_line = line } :: acc) None rest
    | (Token.Tchar image, line) :: rest ->
      let enums =
        List.filter_map
          (function
            | Denot.Denum_lit { ty; pos; image } -> Some (ty, pos, image)
            | _ -> None)
          (Env.lookup env image)
      in
      let kind =
        match enums with
        | [] -> Lef.Kident image
        | _ -> Lef.Kenum enums
      in
      go ({ Lef.l_kind = kind; l_line = line } :: acc) None rest
    | (Token.Tpunct ".", line) :: (Token.Tid id, _) :: rest -> (
      (* selected name: prefix is the most recent LEF token *)
      match acc with
      | prefix :: acc' ->
        let lef, _ = Decl_sem.classify_selected ~env ~line [ prefix ] id in
        go (List.rev_append lef acc') (Some id) rest
      | [] -> go ({ Lef.l_kind = Lef.Kident id; l_line = line } :: acc) None rest)
    | (Token.Tpunct "'", line) :: (Token.Tid id, _) :: rest -> (
      match (acc, prev_base) with
      | prefix :: acc', Some base ->
        let lef, _ = Decl_sem.classify_attribute ~env ~line ~base [ prefix ] id in
        go (List.rev_append lef acc') (Some base) rest
      | _ ->
        go
          ({ Lef.l_kind = Lef.Kattr id; l_line = line } :: Lef.punct ~line "'" :: acc)
          prev_base rest)
    | (Token.Tkw kw, line) :: rest when List.mem kw keyword_ops ->
      go (Decl_sem.classify_op ~env ~line kw :: acc) None rest
    | (Token.Tkw (("to" | "downto" | "others" | "open") as kw), line) :: rest ->
      go (Lef.punct ~line kw :: acc) None rest
    | (Token.Tpunct p, line) :: rest when List.mem p punct_ops ->
      go (Decl_sem.classify_op ~env ~line p :: acc) None rest
    | (Token.Tpunct (("(" | ")" | "," | "=>" | "|") as p), line) :: rest ->
      go (Lef.punct ~line p :: acc) None rest
    | (t, line) :: rest ->
      ignore t;
      go (Lef.punct ~line "(" :: acc) None rest (* unreachable for well-formed input *)
  in
  go [] None tokens
