(** Principal AG, sequential-statement region.

    Statement rules collect LEF for their expressions and call [exprEval]
    (through {!Stmt_sem}) exactly as the paper's if-statement example
    does. *)

open Pval
open Gram_util
module B = Grammar.Builder

let nonterminals =
  [
    "stmts"; "stmt"; "waveform"; "wave_elem"; "after_opt"; "transport_opt";
    "on_opt"; "until_opt"; "forts_opt"; "report_opt"; "severity_opt";
    "elsif_list"; "else_opt"; "case_alts"; "case_alt"; "when_opt";
  ]

let level_line_deps = [ (0, "LEVEL") ]

let add b =
  List.iter (fun n -> ignore (B.nonterminal b n)) nonterminals;
  let prod = B.production b in

  prod ~name:"stmts_empty" ~lhs:"stmts" ~rhs:[] ~rules:[];
  prod ~name:"stmts_more" ~lhs:"stmts" ~rhs:[ "stmts"; "stmt" ] ~rules:[];

  (* ---- assignments and calls (the name-headed statements) ---- *)
  prod ~name:"stmt_var_assign" ~lhs:"stmt" ~rhs:[ "name"; ":="; "expr"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:(level_line_deps @ [ (1, "LEF"); (2, "LINE"); (3, "LEF") ])
         ~msg_deps:[ 1; 3 ]
         (function
           | [ level; target; line; rhs ] ->
             Stmt_sem.build_var_assign ~level:(as_int level) ~line:(as_int line)
               (as_lef target) (as_lef rhs)
           | _ -> internal "stmt_var_assign"));
  prod ~name:"stmt_sig_assign" ~lhs:"stmt"
    ~rhs:[ "name"; "<="; "transport_opt"; "waveform"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:
           (level_line_deps
           @ [ (0, "RETTY"); (1, "LEF"); (2, "LINE"); (3, "BOOLV"); (4, "WAVES") ])
         ~msg_deps:[ 1; 4 ]
         (function
           | [ level; retty; target; line; transport; waves ] ->
             let stmts, msgs =
               Stmt_sem.build_signal_assign ~level:(as_int level) ~line:(as_int line)
                 ~transport:(as_bool transport) ~guarded:false (as_lef target)
                 (as_waves waves)
             in
             (* a function body may not assign signals (LRM purity) *)
             let msgs =
               match as_opt retty with
               | Some _ ->
                 msgs
                 @ [
                     Diag.error ~line:(as_int line)
                       "signal assignment is not allowed in a function";
                   ]
               | None -> msgs
             in
             (stmts, msgs)
           | _ -> internal "stmt_sig_assign"));
  prod ~name:"stmt_call" ~lhs:"stmt" ~rhs:[ "name"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:(level_line_deps @ [ (1, "LEF"); (2, "LINE") ])
         ~msg_deps:[ 1 ]
         (function
           | [ level; name; line ] ->
             Stmt_sem.build_proc_call ~level:(as_int level) ~line:(as_int line) (as_lef name)
           | _ -> internal "stmt_call"));
  prod ~name:"transport_none" ~lhs:"transport_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "BOOLV") ~deps:[] (fun _ -> Bool false) ];
  prod ~name:"transport_some" ~lhs:"transport_opt" ~rhs:[ "transport" ]
    ~rules:[ rule ~target:(0, "BOOLV") ~deps:[] (fun _ -> Bool true) ];

  (* ---- waveforms ---- *)
  prod ~name:"waveform_one" ~lhs:"waveform" ~rhs:[ "wave_elem" ] ~rules:[];
  prod ~name:"waveform_more" ~lhs:"waveform" ~rhs:[ "waveform"; ","; "wave_elem" ]
    ~rules:
      [
        rule ~target:(0, "WAVES") ~deps:[ (1, "WAVES"); (3, "WAVES") ] (function
          | [ a; c ] -> Waves (as_waves a @ as_waves c)
          | _ -> internal "waveform_more");
      ];
  prod ~name:"wave_elem" ~lhs:"wave_elem" ~rhs:[ "expr"; "after_opt" ]
    ~rules:
      [
        rule ~target:(0, "WAVES") ~deps:[ (1, "LEF"); (2, "OLEF") ] (function
          | [ value; after ] ->
            let lef = as_lef value in
            let line = match lef with t :: _ -> t.Lef.l_line | [] -> 0 in
            Waves
              [
                {
                  w_value = lef;
                  w_after = Option.map as_lef (as_opt after);
                  w_line = line;
                };
              ]
          | _ -> internal "wave_elem");
      ];
  prod ~name:"after_none" ~lhs:"after_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"after_some" ~lhs:"after_opt" ~rhs:[ "after"; "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "after_some");
      ];

  (* ---- wait ---- *)
  prod ~name:"stmt_wait" ~lhs:"stmt" ~rhs:[ "wait"; "on_opt"; "until_opt"; "forts_opt"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:
           (level_line_deps
           @ [ (0, "RETTY"); (1, "LINE"); (2, "LEFS"); (3, "OLEF"); (4, "OLEF") ])
         ~msg_deps:[ 2; 3; 4 ]
         (function
           | [ level; retty; line; on; until; for_ ] ->
             let stmts, msgs =
               Stmt_sem.build_wait ~level:(as_int level) ~line:(as_int line)
                 ~on:(as_lefs on)
                 ~until:(Option.map as_lef (as_opt until))
                 ~for_:(Option.map as_lef (as_opt for_))
             in
             let msgs =
               match as_opt retty with
               | Some _ ->
                 msgs
                 @ [
                     Diag.error ~line:(as_int line)
                       "wait statements are not allowed in a function";
                   ]
               | None -> msgs
             in
             (stmts, msgs)
           | _ -> internal "stmt_wait"));
  prod ~name:"on_none" ~lhs:"on_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "LEFS") ~deps:[] (fun _ -> Lefs []) ];
  prod ~name:"on_some" ~lhs:"on_opt" ~rhs:[ "on"; "name_list" ] ~rules:[];
  prod ~name:"until_none" ~lhs:"until_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"until_some" ~lhs:"until_opt" ~rhs:[ "until"; "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "until_some");
      ];
  prod ~name:"forts_none" ~lhs:"forts_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"forts_some" ~lhs:"forts_opt" ~rhs:[ "for"; "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "forts_some");
      ];

  (* ---- assert ---- *)
  prod ~name:"stmt_assert" ~lhs:"stmt"
    ~rhs:[ "assert"; "expr"; "report_opt"; "severity_opt"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:(level_line_deps @ [ (1, "LINE"); (2, "LEF"); (3, "OLEF"); (4, "OLEF") ])
         ~msg_deps:[ 2; 3; 4 ]
         (function
           | [ level; line; cond; report; severity ] ->
             Stmt_sem.build_assert ~level:(as_int level) ~line:(as_int line)
               ~cond:(as_lef cond)
               ~report:(Option.map as_lef (as_opt report))
               ~severity:(Option.map as_lef (as_opt severity))
           | _ -> internal "stmt_assert"));
  prod ~name:"report_none" ~lhs:"report_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"report_some" ~lhs:"report_opt" ~rhs:[ "report"; "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "report_some");
      ];
  prod ~name:"severity_none" ~lhs:"severity_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"severity_some" ~lhs:"severity_opt" ~rhs:[ "severity"; "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "severity_some");
      ];

  (* ---- if ---- *)
  prod ~name:"stmt_if" ~lhs:"stmt"
    ~rhs:[ "if"; "expr"; "then"; "stmts"; "elsif_list"; "else_opt"; "end"; "if"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:
           (level_line_deps
           @ [ (1, "LINE"); (2, "LEF"); (4, "CODE"); (5, "ARMS"); (6, "CODE") ])
         ~msg_deps:[ 2; 4; 5; 6 ]
         (function
           | [ level; line; cond; then_code; elsifs; else_code ] ->
             let arms = (as_lef cond, as_stmts then_code) :: as_arms elsifs in
             Stmt_sem.build_if ~level:(as_int level) ~line:(as_int line) ~arms
               ~else_:(as_stmts else_code)
           | _ -> internal "stmt_if"));
  prod ~name:"elsif_empty" ~lhs:"elsif_list" ~rhs:[]
    ~rules:[ rule ~target:(0, "ARMS") ~deps:[] (fun _ -> Arms []) ];
  prod ~name:"elsif_more" ~lhs:"elsif_list"
    ~rhs:[ "elsif_list"; "elsif"; "expr"; "then"; "stmts" ]
    ~rules:
      [
        rule ~target:(0, "ARMS") ~deps:[ (1, "ARMS"); (3, "LEF"); (5, "CODE") ] (function
          | [ prev; cond; code ] ->
            Arms (as_arms prev @ [ (as_lef cond, as_stmts code) ])
          | _ -> internal "elsif_more");
      ];
  prod ~name:"else_none" ~lhs:"else_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "CODE") ~deps:[] (fun _ -> Stmts []) ];
  prod ~name:"else_some" ~lhs:"else_opt" ~rhs:[ "else"; "stmts" ] ~rules:[];

  (* ---- case ---- *)
  prod ~name:"stmt_case" ~lhs:"stmt"
    ~rhs:[ "case"; "expr"; "is"; "case_alts"; "end"; "case"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:(level_line_deps @ [ (1, "LINE"); (2, "LEF"); (4, "ALTS") ])
         ~msg_deps:[ 2; 4 ]
         (function
           | [ level; line; sel; alts ] ->
             Stmt_sem.build_case ~level:(as_int level) ~line:(as_int line) (as_lef sel)
               (as_alts alts)
           | _ -> internal "stmt_case"));
  prod ~name:"case_alts_one" ~lhs:"case_alts" ~rhs:[ "case_alt" ] ~rules:[];
  prod ~name:"case_alts_more" ~lhs:"case_alts" ~rhs:[ "case_alts"; "case_alt" ]
    ~rules:
      [
        rule ~target:(0, "ALTS") ~deps:[ (1, "ALTS"); (2, "ALTS") ] (function
          | [ a; c ] -> Alts (as_alts a @ as_alts c)
          | _ -> internal "case_alts_more");
      ];
  prod ~name:"case_alt" ~lhs:"case_alt" ~rhs:[ "when"; "chlist"; "=>"; "stmts" ]
    ~rules:
      [
        rule ~target:(0, "ALTS") ~deps:[ (2, "CHS"); (4, "CODE") ] (function
          | [ chs; code ] -> Alts [ (as_choices chs, as_stmts code) ]
          | _ -> internal "case_alt");
      ];

  (* ---- loops; each form also exists with a loop label (exit/next can
     then target an outer loop by name) ---- *)
  let loop_prod ~labeled =
    let off = if labeled then 2 else 0 in
    let name = if labeled then "stmt_loop_labeled" else "stmt_loop" in
    let rhs =
      (if labeled then [ "ID"; ":" ] else [])
      @ [ "loop"; "stmts"; "end"; "loop" ]
      @ (if labeled then [ "opt_id" ] else [])
      @ [ ";" ]
    in
    prod ~name ~lhs:"stmt" ~rhs
      ~rules:
        (stmt_rules
           ~deps:((if labeled then [ (1, "VAL") ] else []) @ [ (off + 2, "CODE") ])
           ~msg_deps:[ off + 2 ]
           (fun vs ->
             let label, code =
               match vs with
               | [ lbl; code ] -> (Some (tok_id lbl), code)
               | [ code ] -> (None, code)
               | _ -> internal "stmt_loop"
             in
             ([ Kir.Sloop (as_stmts code, label) ], [])))
  in
  loop_prod ~labeled:false;
  loop_prod ~labeled:true;
  let while_prod ~labeled =
    let off = if labeled then 2 else 0 in
    let name = if labeled then "stmt_while_labeled" else "stmt_while" in
    let rhs =
      (if labeled then [ "ID"; ":" ] else [])
      @ [ "while"; "expr"; "loop"; "stmts"; "end"; "loop" ]
      @ (if labeled then [ "opt_id" ] else [])
      @ [ ";" ]
    in
    prod ~name ~lhs:"stmt" ~rhs
      ~rules:
        (stmt_rules
           ~deps:
             ((if labeled then [ (1, "VAL") ] else [])
             @ level_line_deps
             @ [ (off + 1, "LINE"); (off + 2, "LEF"); (off + 4, "CODE") ])
           ~msg_deps:[ off + 2; off + 4 ]
           (fun vs ->
             let label, vs =
               match vs with
               | lbl :: (_ :: _ :: _ :: _ as rest) when labeled -> (Some (tok_id lbl), rest)
               | vs -> (None, vs)
             in
             match vs with
             | [ level; line; cond; code ] ->
               let c, msgs =
                 Stmt_sem.boolean_cond ~level:(as_int level) ~line:(as_int line)
                   (as_lef cond)
               in
               ([ Kir.Swhile (c, as_stmts code, label) ], msgs)
             | _ -> internal "stmt_while"))
  in
  while_prod ~labeled:false;
  while_prod ~labeled:true;
  let for_prod ~labeled =
    let off = if labeled then 2 else 0 in
    let name = if labeled then "stmt_for_labeled" else "stmt_for" in
    let rhs =
      (if labeled then [ "ID"; ":" ] else [])
      @ [ "for"; "ID"; "in"; "discrete_range"; "loop"; "stmts"; "end"; "loop" ]
      @ (if labeled then [ "opt_id" ] else [])
      @ [ ";" ]
    in
    prod ~name ~lhs:"stmt" ~rhs
      ~rules:
        ([
           (* the loop variable is visible in the body with a loop-var slot *)
           rule ~target:(off + 6, "ENV")
             ~deps:
               [
                 (0, "ENV"); (0, "LEVEL"); (0, "LOOPDEPTH"); (off + 1, "LINE");
                 (off + 2, "VAL"); (off + 4, "RNG");
               ]
             (function
               | [ env; level; depth; line; v; rng ] ->
                 let name = tok_id v in
                 let ty =
                   Stmt_sem.for_var_type ~level:(as_int level) ~line:(as_int line)
                     ~range:(as_rng rng)
                 in
                 Env
                   (Env.extend (as_env env) name
                      (Denot.Dobject
                         {
                           name;
                           cls = Denot.Cconstant;
                           ty;
                           mode = None;
                           slot =
                             Denot.Sl_frame
                               { level = as_int level; index = -(as_int depth + 1) };
                         }))
               | _ -> internal "for env");
           rule ~target:(off + 6, "LOOPDEPTH") ~deps:[ (0, "LOOPDEPTH") ] (function
             | [ d ] -> Int (as_int d + 1)
             | _ -> internal "for depth");
         ]
        @ stmt_rules
            ~deps:
              ((if labeled then [ (1, "VAL") ] else [])
              @ level_line_deps
              @ [
                  (0, "LOOPDEPTH"); (off + 1, "LINE"); (off + 2, "VAL"); (off + 4, "RNG");
                  (off + 6, "CODE");
                ])
            ~msg_deps:[ off + 4; off + 6 ]
            (fun vs ->
              let label, vs =
                match vs with
                | lbl :: (_ :: _ :: _ :: _ :: _ :: _ as rest) when labeled ->
                  (Some (tok_id lbl), rest)
                | vs -> (None, vs)
              in
              match vs with
              | [ level; depth; line; v; rng; code ] ->
                Stmt_sem.build_for ?loop_label:label ~level:(as_int level)
                  ~line:(as_int line) ~loop_depth:(as_int depth) ~var_name:(tok_id v)
                  ~range:(as_rng rng) ~body:(as_stmts code) ()
              | _ -> internal "stmt_for"))
  in
  for_prod ~labeled:false;
  for_prod ~labeled:true;

  (* ---- next / exit / return / null ---- *)
  let exit_next_prod ~next =
    let kw = if next then "next" else "exit" in
    prod ~name:("stmt_" ^ kw) ~lhs:"stmt" ~rhs:[ kw; "opt_id"; "when_opt"; ";" ]
      ~rules:
        (stmt_rules
           ~deps:(level_line_deps @ [ (1, "LINE"); (2, "OID"); (3, "OLEF") ])
           ~msg_deps:[ 3 ]
           (function
             | [ level; line; oid; cond ] ->
               let label =
                 match as_opt oid with
                 | Some (Str s) -> Some s
                 | _ -> None
               in
               Stmt_sem.build_exit ?label ~level:(as_int level) ~line:(as_int line) ~next
                 (Option.map as_lef (as_opt cond))
                 ()
             | _ -> internal "stmt_exit_next"))
  in
  exit_next_prod ~next:true;
  exit_next_prod ~next:false;
  prod ~name:"when_none" ~lhs:"when_opt" ~rhs:[]
    ~rules:[ rule ~target:(0, "OLEF") ~deps:[] (fun _ -> Opt None) ];
  prod ~name:"when_some" ~lhs:"when_opt" ~rhs:[ "when"; "expr" ]
    ~rules:
      [
        rule ~target:(0, "OLEF") ~deps:[ (2, "LEF") ] (function
          | [ l ] -> Opt (Some l)
          | _ -> internal "when_some");
      ];
  prod ~name:"stmt_return" ~lhs:"stmt" ~rhs:[ "return"; "expr_opt"; ";" ]
    ~rules:
      (stmt_rules
         ~deps:(level_line_deps @ [ (0, "RETTY"); (1, "LINE"); (2, "OLEF") ])
         ~msg_deps:[ 2 ]
         (function
           | [ level; retty; line; value ] ->
             let ret_ty =
               match as_opt retty with
               | Some (Sty { ty; _ }) -> Some ty
               | _ -> None
             in
             Stmt_sem.build_return ~level:(as_int level) ~line:(as_int line) ~ret_ty
               (Option.map as_lef (as_opt value))
           | _ -> internal "stmt_return"));
  prod ~name:"stmt_null" ~lhs:"stmt" ~rhs:[ "null"; ";" ]
    ~rules:(stmt_rules ~deps:[] ~msg_deps:[] (fun _ -> ([ Kir.Snull ], [])))
