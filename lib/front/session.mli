(** Compilation session: how semantic rules reach foreign compilation units
    (the paper's working library + reference library arguments).

    The active session is installed around attribute evaluation; the
    compiler is single-threaded, as was the original. *)

type t = {
  work_library : string;
  find_unit : library:string -> key:string -> Unit_info.compiled_unit option;
  insert : Unit_info.compiled_unit -> unit;
  known_library : string -> bool;
  subprogs : (string, Denot.subprog_sig) Hashtbl.t;
}

val in_memory : ?work:string -> Unit_info.compiled_unit list -> t
(** A session over an in-memory unit list (tests, benches). *)

val with_session : t -> (unit -> 'a) -> 'a
val get : unit -> t

val find_unit : library:string -> key:string -> Unit_info.compiled_unit option
val work : unit -> string
val known_library : string -> bool

val insert_unit : Unit_info.compiled_unit -> unit
(** Called as each unit finishes analysis, so later units in the same file
    can reference it. *)

val insert_hook : (Unit_info.compiled_unit -> unit) ref
(** Observation / fault-injection point: invoked with each unit before
    {!insert_unit} stores it.  Default: no-op.  The differential-testing
    harness poisons selected units through it. *)

val register_subprog : Denot.subprog_sig -> unit
(** Record a signature by mangled name (procedure-call statements need
    parameter modes for copy-back). *)

val find_subprog : string -> Denot.subprog_sig option
