(** VHDL scanner (IEEE 1076-1987 lexical rules).

    Identifiers are case-insensitive and normalized to upper case, reserved
    words to lower case.  The tick character is disambiguated between
    character literals and attribute/qualified-expression marks by the
    previous token. *)

exception Lex_error of { line : int; msg : string }

type state

val make : string -> state
val next : state -> Token.t * int
(** Next token with its source line; [Token.Teof] at end. *)

val tokenize : string -> (Token.t * int) list
(** Scan a whole source text, ending with [Teof].
    @raise Lex_error on malformed lexical elements. *)

val source_lines : string -> int
(** Stripped line count (blank lines and [--] comments removed) — the
    convention of the paper's Figure 2. *)
