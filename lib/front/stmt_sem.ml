(** Out-of-line semantics for sequential statements (principal AG). *)

open Pval

(* ------------------------------------------------------------------ *)
(* Targets *)

let rec expr_to_target (e : Kir.expr) : Kir.target option =
  match e with
  | Kir.Ederef a -> Option.map (fun t -> Kir.Tderef t) (expr_to_target a)
  | _ -> expr_to_target_rest e

and expr_to_target_rest (e : Kir.expr) : Kir.target option =
  match e with
  | Kir.Evar { level; index; name } -> Some (Kir.Tvar { level; index; name })
  | Kir.Eindex (a, i) ->
    Option.map (fun t -> Kir.Tindex (t, i)) (expr_to_target a)
  | Kir.Eslice (a, r) -> Option.map (fun t -> Kir.Tslice (t, r)) (expr_to_target a)
  | Kir.Efield (a, f) -> Option.map (fun t -> Kir.Tfield (t, f)) (expr_to_target a)
  | _ -> None

let rec expr_to_sig_target (e : Kir.expr) : Kir.sig_target option =
  match e with
  | Kir.Esig sref -> Some (Kir.Ts_sig sref)
  | Kir.Eindex (a, i) -> Option.map (fun t -> Kir.Ts_index (t, i)) (expr_to_sig_target a)
  | Kir.Eslice (a, r) -> Option.map (fun t -> Kir.Ts_slice (t, r)) (expr_to_sig_target a)
  | Kir.Efield (a, f) -> Option.map (fun t -> Kir.Ts_field (t, f)) (expr_to_sig_target a)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Assignments *)

let rec target_root = function
  | Kir.Tvar { index; name; level } -> (index, name, level)
  | Kir.Tderef t ->
    (* the pointer may live anywhere; the designated object is heap-side *)
    let _, name, level = target_root t in
    (0, name, level)
  | Kir.Tindex (t, _) | Kir.Tslice (t, _) | Kir.Tfield (t, _) -> target_root t

let build_var_assign ~level ~line target_lef rhs_lef : Kir.stmt list * Diag.t list =
  let t = Expr_eval.eval ~level ~line target_lef in
  match expr_to_target t.x_code with
  | None when Expr_sem.is_error_ty t.x_ty -> ([], t.x_msgs)
  | None -> ([], t.x_msgs @ [ Diag.error ~line "target is not a variable" ])
  (* loop parameters live at negative frame indices and are constants
     (LRM 8.8): they cannot be assignment targets *)
  | Some target when (fun (i, _, _) -> i < 0) (target_root target) ->
    let _, name, _ = target_root target in
    ( [],
      t.x_msgs @ [ Diag.error ~line "%s is a loop parameter and cannot be assigned" name ]
    )
  | Some target ->
    let rhs = Expr_eval.eval ~expected:t.x_ty ~level ~line rhs_lef in
    let check_ty = if t.x_ty.Types.constr = None then None else Some t.x_ty in
    ([ Kir.Sassign (target, rhs.x_code, check_ty) ], t.x_msgs @ rhs.x_msgs)

let build_waveform ~level ~line:_ ~target_ty (waves : wave_src list) :
    Kir.waveform_element list * Diag.t list =
  let els, msgs, _ =
    List.fold_left
      (fun (els, msgs, prev_delay) w ->
        let value, vmsgs =
          match w.w_value with
          | [] | [ { Lef.l_kind = Lef.Knull; _ } ] ->
            (None, []) (* null waveform element: disconnect *)
          | lef ->
            let v = Expr_eval.eval ~expected:target_ty ~level ~line:w.w_line lef in
            (Some v.x_code, v.x_msgs)
        in
        let after, amsgs, delay =
          match w.w_after with
          | None -> (None, [], Some 0)
          | Some lef ->
            let a = Expr_eval.eval ~expected:Std.time ~level ~line:w.w_line lef in
            (Some a.x_code, a.x_msgs, Option.map Value.as_int a.x_static)
        in
        (* LRM 8.3: waveform elements must be in ascending time order *)
        let order_msgs =
          match (prev_delay, delay) with
          | Some p, Some d when d <= p ->
            [ Diag.error ~line:w.w_line "waveform elements must have ascending delays" ]
          | _ -> []
        in
        ( els @ [ { Kir.wv_value = value; wv_after = after } ],
          msgs @ vmsgs @ amsgs @ order_msgs,
          delay ))
      ([], [], None) waves
  in
  (els, msgs)

let build_signal_assign ~level ~line ~(transport : bool) ~(guarded : bool) target_lef
    (waves : wave_src list) : Kir.stmt list * Diag.t list =
  let t = Expr_eval.eval ~level ~line target_lef in
  match expr_to_sig_target t.x_code with
  | None when Expr_sem.is_error_ty t.x_ty -> ([], t.x_msgs)
  | None -> ([], t.x_msgs @ [ Diag.error ~line "target is not a signal" ])
  | Some target ->
    let waveform, msgs = build_waveform ~level ~line ~target_ty:t.x_ty waves in
    let mode = if transport then Kir.Transport else Kir.Inertial in
    let assign = Kir.Ssig_assign { target; mode; waveform; guarded; line } in
    let stmt =
      if guarded then
        Kir.Sif ([ (Kir.Esig Kir.Sig_guard, [ assign ]) ], [ Kir.Sdisconnect target ])
      else assign
    in
    ([ stmt ], t.x_msgs @ msgs)

(* ------------------------------------------------------------------ *)
(* Procedure calls *)

let rec build_proc_call ~level ~line name_lef : Kir.stmt list * Diag.t list =
  (* DEALLOCATE is implicitly declared for every access type (LRM 3.3.1):
     with garbage collection underneath, its effect is [p := null] *)
  match name_lef with
  | { Lef.l_kind = Lef.Kident "DEALLOCATE"; _ }
    :: { Lef.l_kind = Lef.Kpunct "("; _ }
    :: rest -> (
    let arg_lef = List.filteri (fun i _ -> i < List.length rest - 1) rest in
    let t = Expr_eval.eval ~level ~line arg_lef in
    match (expr_to_target t.x_code, t.x_ty.Types.kind) with
    | Some target, Types.Kaccess _ ->
      ([ Kir.Sassign (target, Kir.Enull, None) ], t.x_msgs)
    | _ ->
      ( [],
        t.x_msgs
        @ [ Diag.error ~line "deallocate requires an access-valued variable" ] ))
  | _ -> build_user_proc_call ~level ~line name_lef

and build_user_proc_call ~level ~line name_lef : Kir.stmt list * Diag.t list =
  (* the name (with its arguments) evaluates to a void call through the
     expression AG; rebuild the Scall with parameter modes for copy-back *)
  let r = Expr_eval.eval ~expected:Expr_sem.void_ty ~level ~line name_lef in
  match r.x_code with
  | Kir.Ecall (Kir.F_user mangled, args) -> (
    match Session.find_subprog mangled with
    | Some s ->
      let call_args =
        List.map2
          (fun (p : Denot.param) arg ->
            let is_signal = p.Denot.p_class = Denot.Csignal in
            {
              Kir.ca_mode = p.Denot.p_mode;
              ca_expr = arg;
              ca_target =
                (match p.Denot.p_mode with
                | Kir.Arg_in -> None
                | (Kir.Arg_out | Kir.Arg_inout) when is_signal -> None
                | Kir.Arg_out | Kir.Arg_inout -> expr_to_target arg);
              ca_signal =
                (if is_signal then
                   match arg with
                   | Kir.Esig sref -> Some sref
                   | _ -> None
                 else None);
            })
          s.Denot.ss_params args
      in
      let bad_out =
        List.exists2
          (fun (p : Denot.param) (a : Kir.call_arg) ->
            p.Denot.p_class <> Denot.Csignal
            && a.Kir.ca_mode <> Kir.Arg_in
            && a.Kir.ca_target = None)
          s.Denot.ss_params call_args
      in
      let bad_signal =
        List.exists2
          (fun (p : Denot.param) (a : Kir.call_arg) ->
            p.Denot.p_class = Denot.Csignal && a.Kir.ca_signal = None)
          s.Denot.ss_params call_args
      in
      if bad_out then
        ([], r.x_msgs @ [ Diag.error ~line "out parameter requires a variable actual" ])
      else if bad_signal then
        ( [],
          r.x_msgs @ [ Diag.error ~line "signal-class parameter requires a signal actual" ]
        )
      else ([ Kir.Scall (Kir.P_user mangled, call_args) ], r.x_msgs)
    | None -> ([], r.x_msgs @ [ Diag.error ~line "unknown procedure" ]))
  | _ when Expr_sem.is_error_ty r.x_ty -> ([], r.x_msgs)
  | _ -> ([], r.x_msgs @ [ Diag.error ~line "this name is not a procedure call" ])

(* ------------------------------------------------------------------ *)
(* Control flow *)

let boolean_cond ~level ~line lef =
  let r = Expr_eval.eval ~expected:Std.boolean ~level ~line lef in
  (r.x_code, r.x_msgs)

let build_if ~level ~line ~(arms : (Lef.tok list * Kir.stmt list) list)
    ~(else_ : Kir.stmt list) : Kir.stmt list * Diag.t list =
  let arms, msgs =
    List.fold_left
      (fun (arms, msgs) (cond_lef, body) ->
        let c, m = boolean_cond ~level ~line cond_lef in
        (arms @ [ (c, body) ], msgs @ m))
      ([], []) arms
  in
  ([ Kir.Sif (arms, else_) ], msgs)

let resolve_choice ~level ~line ~(selector_ty : Types.t) (c : choice_src) :
    Kir.case_choice * Diag.t list =
  match c with
  | CSothers -> (Kir.Ch_others, [])
  | CSlef lef -> (
    let r = Expr_eval.eval ~expected:selector_ty ~level ~line lef in
    match r.x_static with
    | Some v -> (Kir.Ch_value v, r.x_msgs)
    | None -> (Kir.Ch_others, r.x_msgs @ [ Diag.error ~line "case choice must be static" ]))
  | CSrange (lo_lef, d, hi_lef) -> (
    let expected = { selector_ty with Types.constr = None } in
    let lo = Expr_eval.eval ~expected ~level ~line lo_lef in
    let hi = Expr_eval.eval ~expected ~level ~line hi_lef in
    match (lo.x_static, hi.x_static) with
    | Some l, Some h -> (Kir.Ch_range (Value.as_int l, d, Value.as_int h), lo.x_msgs @ hi.x_msgs)
    | _ ->
      ( Kir.Ch_others,
        lo.x_msgs @ hi.x_msgs @ [ Diag.error ~line "case range choice must be static" ] ))

let build_case ~level ~line selector_lef (alts : (choice_src list * Kir.stmt list) list) :
    Kir.stmt list * Diag.t list =
  let sel = Expr_eval.eval ~level ~line selector_lef in
  let alts, msgs =
    List.fold_left
      (fun (alts, msgs) (choices, body) ->
        let choices, ms =
          List.fold_left
            (fun (cs, ms) c ->
              let c, m = resolve_choice ~level ~line ~selector_ty:sel.x_ty c in
              (cs @ [ c ], ms @ m))
            ([], []) choices
        in
        (alts @ [ (choices, body) ], msgs @ ms))
      ([], []) alts
  in
  (* completeness: others or full coverage — warn only (the kernel raises a
     runtime error on a fall-through, like the original simulator) *)
  let has_others =
    List.exists (fun (cs, _) -> List.exists (fun c -> c = Kir.Ch_others) cs) alts
  in
  let msgs =
    if has_others then msgs
    else begin
      match Types.bounds sel.x_ty with
      | Some (lo, hi) ->
        let covered = Hashtbl.create 16 in
        List.iter
          (fun (cs, _) ->
            List.iter
              (fun c ->
                match c with
                | Kir.Ch_value v -> Hashtbl.replace covered (Value.as_int v) ()
                | Kir.Ch_range (l, d, r) ->
                  List.iter
                    (fun i -> Hashtbl.replace covered i ())
                    (Value.range_indices (l, d, r))
                | Kir.Ch_others -> ())
              cs)
          alts;
        let missing = ref [] in
        if hi - lo >= 0 && hi - lo < 10000 then
          for i = hi downto lo do
            if not (Hashtbl.mem covered i) then missing := i :: !missing
          done;
        if !missing <> [] then
          msgs
          @ [
              Diag.error ~line "case statement does not cover all choices (missing %d values)"
                (List.length !missing);
            ]
        else msgs
      | None -> msgs
    end
  in
  ([ Kir.Scase (sel.x_code, alts) ], sel.x_msgs @ msgs)

(** Discrete range of a for loop: either explicit bounds or an attribute
    range. *)
let build_for ?loop_label ~level ~line ~loop_depth ~var_name
    ~(range : [ `Bounds of Lef.tok list * Types.dir * Lef.tok list | `Lef of Lef.tok list ])
    ~(body : Kir.stmt list) () : Kir.stmt list * Diag.t list =
  let (lo, d, hi), msgs =
    match range with
    | `Bounds (lo_lef, d, hi_lef) ->
      let lo = Expr_eval.eval ~level ~line lo_lef in
      let hi = Expr_eval.eval ~level ~line hi_lef in
      ((lo.x_code, d, hi.x_code), lo.x_msgs @ hi.x_msgs)
    | `Lef lef ->
      let r, _, msgs = Expr_eval.eval_range ~level ~line lef in
      (r, msgs)
  in
  ( [ Kir.Sfor { var = loop_depth; var_name; range = (lo, d, hi); body; loop_label } ],
    msgs )

(** Type of a for-loop variable given its range source. *)
let for_var_type ~level ~line
    ~(range : [ `Bounds of Lef.tok list * Types.dir * Lef.tok list | `Lef of Lef.tok list ]) :
    Types.t =
  match range with
  | `Bounds (lo_lef, _, _) ->
    let r = Expr_eval.eval ~level ~line lo_lef in
    if Expr_sem.is_error_ty r.x_ty then Std.integer else r.x_ty
  | `Lef lef -> (
    let _, ity, _ = Expr_eval.eval_range ~level ~line lef in
    match ity with
    | Some t -> t
    | None -> Std.integer)

(* ------------------------------------------------------------------ *)
(* Wait / assert / return *)

let sig_refs_of_name_lefs ~line (name_lefs : Lef.tok list list) :
    Kir.sig_ref list * Diag.t list =
  List.fold_left
    (fun (refs, msgs) lef ->
      match lef with
      | { Lef.l_kind = Lef.Ksig { sref; _ }; _ } :: _ -> (refs @ [ sref ], msgs)
      | _ -> (refs, msgs @ [ Diag.error ~line "a signal name is required here" ]))
    ([], []) name_lefs

let build_wait ~level ~line ~(on : Lef.tok list list) ~(until : Lef.tok list option)
    ~(for_ : Lef.tok list option) : Kir.stmt list * Diag.t list =
  let on_refs, msgs = sig_refs_of_name_lefs ~line on in
  let until_code, msgs =
    match until with
    | None -> (None, msgs)
    | Some lef ->
      let c, m = boolean_cond ~level ~line lef in
      (Some c, msgs @ m)
  in
  let for_code, msgs =
    match for_ with
    | None -> (None, msgs)
    | Some lef ->
      let r = Expr_eval.eval ~expected:Std.time ~level ~line lef in
      (Some r.x_code, msgs @ r.x_msgs)
  in
  (* an "until" with no "on" list is sensitive to the signals it reads *)
  let on_refs =
    if on_refs = [] then
      match until_code with
      | Some c -> Kir_util.signals_read_expr c
      | None -> []
    else on_refs
  in
  ([ Kir.Swait { on = on_refs; until = until_code; for_ = for_code; line } ], msgs)

let build_assert ~level ~line ~cond ~report ~severity : Kir.stmt list * Diag.t list =
  let c, msgs = boolean_cond ~level ~line cond in
  let report_code, msgs =
    match report with
    | None -> (None, msgs)
    | Some lef ->
      let r = Expr_eval.eval ~expected:Std.string_ty ~level ~line lef in
      (Some r.x_code, msgs @ r.x_msgs)
  in
  let severity_code, msgs =
    match severity with
    | None -> (None, msgs)
    | Some lef ->
      let r = Expr_eval.eval ~expected:Std.severity_level ~level ~line lef in
      (Some r.x_code, msgs @ r.x_msgs)
  in
  ([ Kir.Sassert { cond = c; report = report_code; severity = severity_code; line } ], msgs)

let build_return ~level ~line ~(ret_ty : Types.t option) (value : Lef.tok list option) :
    Kir.stmt list * Diag.t list =
  match (value, ret_ty) with
  | None, None -> ([ Kir.Sreturn None ], [])
  | None, Some _ -> ([], [ Diag.error ~line "function must return a value" ])
  | Some _, None -> ([], [ Diag.error ~line "return with a value is only valid in a function" ])
  | Some lef, Some ty ->
    let r = Expr_eval.eval ~expected:ty ~level ~line lef in
    ([ Kir.Sreturn (Some r.x_code) ], r.x_msgs)

let build_exit ?label ~level ~line ~next (cond : Lef.tok list option) () :
    Kir.stmt list * Diag.t list =
  let c, msgs =
    match cond with
    | None -> (None, [])
    | Some lef ->
      let c, m = boolean_cond ~level ~line lef in
      (Some c, m)
  in
  ( [
      (if next then Kir.Snext { cond = c; label } else Kir.Sexit { cond = c; label });
    ],
    msgs )
