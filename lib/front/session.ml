(** Compilation session: how the analyzer reaches foreign compilation units.

    The paper's compiler takes "a working library where the successfully
    compiled units are placed and a reference library which can be
    referenced... but not updated"; semantic rules resolve foreign
    references through this interface.  The VIF library manager implements
    it; tests may supply an in-memory map.

    The active session is installed by the pipeline around attribute
    evaluation (the compiler is single-threaded, as was the original). *)

type t = {
  work_library : string; (* logical name of the working library, e.g. WORK *)
  find_unit : library:string -> key:string -> Unit_info.compiled_unit option;
  insert : Unit_info.compiled_unit -> unit;
      (* called as each unit finishes analysis, so later units in the same
         file can reference it (the separate-compilation order rule) *)
  known_library : string -> bool;
  (* every subprogram signature seen during this session, by mangled name:
     procedure-call statements need parameter modes for copy-back *)
  subprogs : (string, Denot.subprog_sig) Hashtbl.t;
}

let in_memory ?(work = "WORK") units =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (u : Unit_info.compiled_unit) -> Hashtbl.replace tbl (u.Unit_info.u_library, u.Unit_info.u_key) u) units;
  {
    work_library = work;
    find_unit = (fun ~library ~key -> Hashtbl.find_opt tbl (library, key));
    insert =
      (fun u -> Hashtbl.replace tbl (u.Unit_info.u_library, u.Unit_info.u_key) u);
    known_library = (fun lib -> lib = work || lib = "STD");
    subprogs = Hashtbl.create 64;
  }

let current : t option ref = ref None

let with_session session f =
  let saved = !current in
  current := Some session;
  Fun.protect ~finally:(fun () -> current := saved) f

let get () =
  match !current with
  | Some s -> s
  | None -> Pval.internal "no active compilation session"

let find_unit ~library ~key = (get ()).find_unit ~library ~key
let work () = (get ()).work_library
let known_library lib = lib = "STD" || (get ()).known_library lib

(* observation / fault-injection point: called with each unit before it is
   inserted.  The difftest harness uses it to poison selected units; the
   default is a no-op. *)
let insert_hook : (Unit_info.compiled_unit -> unit) ref = ref (fun _ -> ())

let insert_unit u =
  !insert_hook u;
  (get ()).insert u

let register_subprog (s : Denot.subprog_sig) =
  Hashtbl.replace (get ()).subprogs s.Denot.ss_mangled s

let find_subprog mangled = Hashtbl.find_opt (get ()).subprogs mangled
