(** LEF — the intermediate language of cascaded evaluation (paper §4.1).

    "LEF consists of a flat list of tokens with no other structure imposed
    on them...  the symbol table is an attribute of the principal AG, not of
    the expression AG, and it is used to resolve identifiers so that ID is
    not a token of LEF; instead there are distinct tokens for variable,
    type, subprogram, attribute, enum_literal, etc."

    Each token carries the full denotation information through the
    token-value mechanism, so the expression AG never needs the symbol
    table. *)

type tok = {
  l_kind : kind;
  l_line : int;
}

and kind =
  | Kvar of { name : string; ty : Types.t; level : int; index : int }
  | Ksig of { name : string; ty : Types.t; sref : Kir.sig_ref; mode : Kir.arg_mode option }
  | Kconst_val of { name : string; ty : Types.t; value : Value.t }
  | Kgeneric of { name : string; ty : Types.t; index : int }
  | Kunitconst of { name : string; ty : Types.t }
      (* architecture constant whose value arrives at elaboration *)
  | Ktype of Types.t (* also subtypes: the constraint rides along *)
  | Kfunc of Denot.subprog_sig list (* overload candidate set *)
  | Kproc of Denot.subprog_sig list
  | Kenum of (Types.t * int * string) list (* candidate (type, pos, image) *)
  | Kattrval of { value : Value.t; ty : Types.t } (* user-defined attribute, resolved *)
  | Kint of int
  | Kreal of float
  | Kphys of { value : int; ty : Types.t } (* physical literal in primary units *)
  | Kstr of string
  | Kbitstr of string
  | Kident of string (* unresolved: formal names, record-field choices *)
  | Kattr of string (* attribute designator after the tick *)
  | Kop of string (* operator, lower case: and, or, =, <=, +, &, mod, ... *)
  | Kop_user of { op : string; cands : Denot.subprog_sig list }
      (* operator with user-defined overloads visible at this point; the
         candidate set rides along like Kfunc's (paper's token-value
         mechanism), so [apply_binop] can consider them without the
         symbol table *)
  | Knew (* allocator keyword in an expression *)
  | Knull (* the null access literal *)
  | Kpunct of string (* ( ) , => | ' . to downto others open all *)
  | Kscope of scope
      (* transient prefix during selected-name resolution in the principal
         AG; never legitimate inside a finished expression *)

and scope =
  | Slib of string
  | Sunit of { library : string; unit_name : string }

(** Terminal-symbol name in the expression grammar.  Operators collapse to
    precedence classes; the op itself rides in the token value. *)
let terminal_name tok =
  match tok.l_kind with
  | Kvar _ -> "VAR"
  | Ksig _ -> "SIG"
  | Kconst_val _ -> "CONSTV"
  | Kgeneric _ -> "GEN"
  | Kunitconst _ -> "GEN"
  | Ktype _ -> "TYPE"
  | Kfunc _ -> "FUNC"
  | Kproc _ -> "PROC"
  | Kenum _ -> "ENUMLIT"
  | Kattrval _ -> "ATTRVAL"
  | Kint _ -> "LINT"
  | Kreal _ -> "LREAL"
  | Kphys _ -> "LPHYS"
  | Kstr _ -> "LSTR"
  | Kbitstr _ -> "LBITSTR"
  | Kident _ -> "IDENT"
  | Kattr _ -> "ATTR"
  | Kop op | Kop_user { op; _ } -> (
    match op with
    | "and" | "or" | "nand" | "nor" | "xor" -> "LOGOP"
    | "=" | "/=" | "<" | "<=" | ">" | ">=" -> "RELOP"
    | "+" | "-" | "&" -> "ADDOP"
    | "*" | "/" | "mod" | "rem" -> "MULOP"
    | "**" -> "EXPOP"
    | "abs" -> "ABS"
    | "not" -> "NOT"
    | _ -> invalid_arg (Printf.sprintf "Lef.terminal_name: unknown operator %s" op))
  | Knew -> "NEW"
  | Knull -> "LNULL"
  | Kpunct p -> p
  | Kscope _ -> "IDENT" (* reaches the expression AG only on user error *)

(** All terminal names of the expression grammar. *)
let all_terminals =
  [
    "VAR"; "SIG"; "CONSTV"; "GEN"; "TYPE"; "FUNC"; "PROC"; "ENUMLIT"; "ATTRVAL";
    "LINT"; "LREAL"; "LPHYS"; "LSTR"; "LBITSTR"; "IDENT"; "ATTR"; "LOGOP";
    "RELOP"; "ADDOP"; "MULOP"; "EXPOP"; "ABS"; "NOT"; "("; ")"; ","; "=>"; "|";
    "'"; "."; "to"; "downto"; "others"; "open"; "all"; "NEW"; "LNULL"; "LEOF";
  ]

let punct ~line p = { l_kind = Kpunct p; l_line = line }
let op ~line o = { l_kind = Kop o; l_line = line }

(** The symbols that may name an operator function (LRM 2.1: a string
    literal used as a subprogram designator must be an operator symbol). *)
let operator_symbols =
  [
    "and"; "or"; "nand"; "nor"; "xor"; "="; "/="; "<"; "<="; ">"; ">="; "+";
    "-"; "&"; "*"; "/"; "mod"; "rem"; "**"; "abs"; "not";
  ]

(** Environment key an operator function is bound under: the quoted,
    lower-case symbol, so it can never collide with an identifier. *)
let operator_key o = "\"" ^ String.lowercase_ascii o ^ "\""

(** Content key of a LEF token list, for the LEF→parse-tree memo cache in
    {!Expr_eval}: two lists share a key iff they are structurally equal —
    terminal kinds, token payloads (denotations, types, literal values),
    and source lines all participate.  [keyspace] segregates caches that
    must not alias (the [eval] and [eval_range] entry points).

    Tokens are pure data all the way down (kinds embed {!Types.t},
    {!Denot.subprog_sig} — including parameter defaults as {!Kir.expr} —
    and {!Value.t}, none of which contain closures), so the structural
    serialization below is faithful; a payload that cannot be serialized
    (impossible today, a safety net against future closure-carrying kinds)
    yields [None] and the expression is simply not cached.  [Value.Vaccess]
    cells compare by contents here, not identity — harmless, because access
    values never appear in LEF (they exist only in variables at run time,
    never in constants or attribute values). *)
let content_key ~keyspace (lef : tok list) : string option =
  match Marshal.to_string lef [] with
  | bytes -> Some (keyspace ^ Digest.string bytes)
  | exception _ -> None

let describe tok =
  match tok.l_kind with
  | Kvar { name; _ } -> Printf.sprintf "variable %s" name
  | Ksig { name; _ } -> Printf.sprintf "signal %s" name
  | Kconst_val { name; _ } -> Printf.sprintf "constant %s" name
  | Kgeneric { name; _ } -> Printf.sprintf "generic %s" name
  | Kunitconst { name; _ } -> Printf.sprintf "constant %s" name
  | Ktype ty -> Printf.sprintf "type %s" (Types.short_name ty)
  | Kfunc (s :: _) -> Printf.sprintf "function %s" s.Denot.ss_name
  | Kfunc [] -> "function"
  | Kproc (s :: _) -> Printf.sprintf "procedure %s" s.Denot.ss_name
  | Kproc [] -> "procedure"
  | Kenum ((_, _, image) :: _) -> Printf.sprintf "enumeration literal %s" image
  | Kenum [] -> "enumeration literal"
  | Kattrval _ -> "attribute value"
  | Kint n -> string_of_int n
  | Kreal x -> Printf.sprintf "%g" x
  | Kphys { value; _ } -> Printf.sprintf "physical literal %d" value
  | Kstr s -> Printf.sprintf "string \"%s\"" s
  | Kbitstr s -> Printf.sprintf "bit string %s" s
  | Kident s -> Printf.sprintf "identifier %s" s
  | Kattr a -> Printf.sprintf "'%s" a
  | Knew -> "new"
  | Knull -> "null"
  | Kop o -> Printf.sprintf "operator %s" o
  | Kop_user { op; cands } ->
    Printf.sprintf "operator %s (%d user overload%s)" op (List.length cands)
      (if List.length cands = 1 then "" else "s")
  | Kpunct p -> Printf.sprintf "'%s'" p
  | Kscope (Slib l) -> Printf.sprintf "library %s" l
  | Kscope (Sunit { unit_name; _ }) -> Printf.sprintf "unit %s" unit_name
