(** Shared rule combinators for the principal AG.

    The principal grammar's productions follow a few stereotyped shapes; the
    combinators here build the hidden RES pair/triple and its projections so
    every production stays declarative. *)

open Pval
module B = Grammar.Builder

let rule = B.rule
let copy = B.copy

(* Standard context dependencies available to most semantic rules. *)
let ctx_deps = [ (0, "ENV"); (0, "LEVEL"); (0, "UNITNAME"); (0, "CTX"); (0, "SLOTBASE"); (0, "SIGBASE") ]

type ctx = {
  cx_env : Env.t;
  cx_level : int;
  cx_unit : string;
  cx_kind : string;
  cx_slot_base : int;
  cx_sig_base : int;
}

let ctx_of = function
  | env :: level :: unit_name :: ctx :: slot_base :: sig_base :: rest ->
    ( {
        cx_env = as_env env;
        cx_level = as_int level;
        cx_unit = as_str unit_name;
        cx_kind = as_str ctx;
        cx_slot_base = as_int slot_base;
        cx_sig_base = as_int sig_base;
      },
      rest )
  | _ -> internal "ctx_of: missing context dependencies"

let object_context (cx : ctx) : Decl_sem.object_context =
  {
    Decl_sem.oc_env = cx.cx_env;
    oc_level = cx.cx_level;
    oc_unit = cx.cx_unit;
    oc_kind =
      (match String.split_on_char ':' cx.cx_kind with
      | [ "package"; name ] -> `Package name
      | [ "arch" ] -> `Architecture
      | [ "process" ] -> `Process
      | [ "subprog" ] -> `Subprogram
      | [ "entity" ] -> `Entity
      | [ "block" ] -> `Block
      | _ -> `Architecture);
    oc_slot_base = cx.cx_slot_base;
    oc_sig_base = cx.cx_sig_base;
  }

(* projections *)
let fst_of = function
  | [ v ] -> fst (as_pair v)
  | _ -> internal "fst_of"

let snd_plus_msgs vs =
  match vs with
  | res :: children ->
    let _, m = as_pair res in
    Msgs (List.concat_map as_msgs children @ as_msgs m)
  | [] -> internal "snd_plus_msgs"

(** A statement production: [f] returns (stmts, diagnostics).  The hidden
    SRES attribute carries the pair; CODE and MSGS project it. *)
let stmt_rules ~deps ~msg_deps f =
  [
    rule ~target:(0, "SRES") ~deps (fun vs ->
        let stmts, msgs = f vs in
        Pair (Stmts stmts, Msgs msgs));
    rule ~target:(0, "CODE") ~deps:[ (0, "SRES") ] fst_of;
    rule ~target:(0, "MSGS")
      ~deps:((0, "SRES") :: List.map (fun p -> (p, "MSGS")) msg_deps)
      snd_plus_msgs;
  ]

(** A declaration production: [f] returns (decl_out, diagnostics). *)
let out_rules ~deps ~msg_deps f =
  [
    rule ~target:(0, "SRES") ~deps (fun vs ->
        let out, msgs = f vs in
        Pair (Out out, Msgs msgs));
    rule ~target:(0, "OUT") ~deps:[ (0, "SRES") ] fst_of;
    rule ~target:(0, "MSGS")
      ~deps:((0, "SRES") :: List.map (fun p -> (p, "MSGS")) msg_deps)
      snd_plus_msgs;
  ]

(** A concurrent-statement production: [f] returns (concs, out, msgs). *)
let conc_rules ~deps ~msg_deps f =
  [
    rule ~target:(0, "SRES") ~deps (fun vs ->
        let concs, out, msgs = f vs in
        Pair (Pair (Concs concs, Out out), Msgs msgs));
    rule ~target:(0, "CONCS") ~deps:[ (0, "SRES") ] (function
      | [ v ] -> fst (as_pair (fst (as_pair v)))
      | _ -> internal "conc CONCS");
    rule ~target:(0, "OUT") ~deps:[ (0, "SRES") ] (function
      | [ v ] -> snd (as_pair (fst (as_pair v)))
      | _ -> internal "conc OUT");
    rule ~target:(0, "MSGS")
      ~deps:((0, "SRES") :: List.map (fun p -> (p, "MSGS")) msg_deps)
      (fun vs ->
        match vs with
        | res :: children ->
          let _, m = as_pair res in
          Msgs (List.concat_map as_msgs children @ as_msgs m)
        | [] -> internal "conc MSGS");
  ]

(* token helpers *)
let id_of v = tok_id v

let line_of v =
  match v with
  | Int n -> n
  | _ -> internal "line_of: expected Int"

(** LEF-emitting leaf helpers. *)
let lef1 kind line = Lef [ { Lef.l_kind = kind; l_line = line } ]
